(* Computational biology: pathway graphs (the paper's second motivating
   domain — "modeling of biological pathways which represent the flow of
   molecular signals inside a cell").

   Synthetic scenario: genes encode proteins; proteins interact
   (activation/inhibition with confidence scores); proteins belong to
   pathways. Queries:
     1. the activation cascade downstream of a receptor (regex, 1+ hops
        over high-confidence activations),
     2. proteins sharing a pathway with a target (Q2-shaped similarity),
     3. pathway sizes (relational),
     4. genes whose proteins inhibit anything in the apoptosis pathway
        (multi-step path with and-composition).

   Run with: dune exec examples/bio_pathways.exe *)

module Rng = Graql_util.Rng

let n_genes = 80
let n_pathways = 8
let n_interactions = 400

let gen_genes rng =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "id,symbol,chromosome\n";
  for i = 0 to n_genes - 1 do
    Buffer.add_string buf
      (Printf.sprintf "g%d,GENE%d,chr%d\n" i i (1 + Rng.int rng 22))
  done;
  Buffer.contents buf

let gen_proteins () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "id,gene,kind\n";
  for i = 0 to n_genes - 1 do
    let kind =
      if i mod 10 = 0 then "receptor"
      else if i mod 10 = 1 then "kinase"
      else "effector"
    in
    Buffer.add_string buf (Printf.sprintf "pr%d,g%d,%s\n" i i kind)
  done;
  Buffer.contents buf

let gen_interactions rng =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "id,src,dst,mode,confidence\n";
  for i = 0 to n_interactions - 1 do
    (* Signal flows "downhill": sources biased toward receptors/kinases. *)
    let s = Rng.zipf rng ~n:n_genes ~s:0.9 in
    let d = (s + 1 + Rng.int rng (n_genes - 1)) mod n_genes in
    let mode = if Rng.int rng 4 = 0 then "inhibits" else "activates" in
    let confidence = 0.3 +. Rng.float rng 0.7 in
    Buffer.add_string buf
      (Printf.sprintf "i%d,pr%d,pr%d,%s,%.3f\n" i s d mode confidence)
  done;
  Buffer.contents buf

let gen_memberships rng =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "protein,pathway\n";
  for i = 0 to n_genes - 1 do
    let k = 1 + Rng.int rng 3 in
    let seen = Hashtbl.create 4 in
    for _ = 1 to k do
      let p = Rng.zipf rng ~n:n_pathways ~s:0.8 in
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.replace seen p ();
        Buffer.add_string buf (Printf.sprintf "pr%d,pw%d\n" i p)
      end
    done
  done;
  Buffer.contents buf

let gen_pathways () =
  let names =
    [| "apoptosis"; "glycolysis"; "mapk"; "wnt"; "p53"; "cellcycle"; "jak"; "notch" |]
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "id,name\n";
  Array.iteri
    (fun i n -> Buffer.add_string buf (Printf.sprintf "pw%d,%s\n" i n))
    names;
  Buffer.contents buf

let schema =
  {|
create table Genes(id varchar(10), symbol varchar(12), chromosome varchar(8))
create table Proteins(id varchar(10), gene varchar(10), kind varchar(10))
create table Interactions(id varchar(10), src varchar(10), dst varchar(10), mode varchar(10), confidence float)
create table Pathways(id varchar(10), name varchar(16))
create table Memberships(protein varchar(10), pathway varchar(10))

create vertex GeneVtx(id) from table Genes
create vertex ProteinVtx(id) from table Proteins
create vertex PathwayVtx(id) from table Pathways

create edge encodes with vertices (GeneVtx, ProteinVtx)
  where ProteinVtx.gene = GeneVtx.id

create edge interacts with vertices (ProteinVtx as A, ProteinVtx as B)
  from table Interactions
  where Interactions.src = A.id and Interactions.dst = B.id

create edge memberOf with vertices (ProteinVtx, PathwayVtx)
  from table Memberships
  where Memberships.protein = ProteinVtx.id and Memberships.pathway = PathwayVtx.id

ingest table Genes genes.csv
ingest table Proteins proteins.csv
ingest table Interactions interactions.csv
ingest table Pathways pathways.csv
ingest table Memberships memberships.csv
|}

let queries =
  [
    ( "signal cascade downstream of receptor pr0 (confident activations)",
      {|select * from graph
          ProteinVtx (id = 'pr0')
          ( --interacts(mode = 'activates' and confidence > 0.6)--> [ ] )+
        into subgraph cascade|} );
    ( "proteins sharing a pathway with pr0, by shared-pathway count",
      {|select y.id from graph
          ProteinVtx (id = 'pr0')
          --memberOf--> def w: PathwayVtx ( )
          <--memberOf-- def y: ProteinVtx (id != 'pr0')
        into table Shared

        select top 5 id, count(*) as pathways from table Shared
        group by id order by pathways desc|} );
    ( "pathway sizes",
      {|select pathway, count(*) as members from table Memberships
          group by pathway order by members desc|} );
    ( "genes encoding inhibitors of apoptosis members",
      {|select GeneVtx.symbol as gene from graph
          GeneVtx ( ) --encodes--> foreach p: ProteinVtx ( )
        and
          (p --interacts(mode = 'inhibits')--> ProteinVtx ( )
             --memberOf--> PathwayVtx (name = 'apoptosis'))
        into table Inhibitors

        select distinct gene from table Inhibitors order by gene|} );
  ]

let () =
  let rng = Rng.make 11 in
  let loader = function
    | "genes.csv" -> gen_genes (Rng.split rng)
    | "proteins.csv" -> gen_proteins ()
    | "interactions.csv" -> gen_interactions (Rng.split rng)
    | "pathways.csv" -> gen_pathways ()
    | "memberships.csv" -> gen_memberships (Rng.split rng)
    | f -> raise (Sys_error ("no such file: " ^ f))
  in
  let session = Graql.create_session () in
  ignore (Graql.run ~loader session schema);
  List.iter
    (fun (title, q) ->
      Printf.printf "=== %s ===\n" title;
      List.iter
        (fun (_, outcome) ->
          match outcome with
          | Graql.O_table t ->
              print_endline (Graql.Table.to_display_string ~max_rows:10 t)
          | Graql.O_subgraph sg -> print_endline (Graql.Subgraph.summary sg)
          | Graql.O_message m -> print_endline m
          | Graql.O_failed e -> print_endline ("error: " ^ Graql.Error.to_string e))
        (Graql.run session q);
      print_newline ())
    queries
