(* Operations walkthrough: the GEMS server-side machinery around the
   query language — user accounts and access control, the catalog and
   degree statistics, query plans, capacity planning, and export.

   Run with: dune exec examples/ops_console.exe *)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  (* The server owns the database; users connect to it. *)
  let server = Graql.Server.create () in
  Graql.Server.add_user server ~name:"dba" ~role:Graql.Server.Admin;
  Graql.Server.add_user server ~name:"ann" ~role:Graql.Server.Analyst;
  let session = Graql.Server.session server in

  section "dba provisions the Berlin database";
  Graql.Berlin.Gen.ingest_all ~scale:2 session;
  let db = Graql.Session.db session in
  Graql.Db.set_param db "Product1"
    (Graql.Value.Str (Graql.Berlin.Reference.most_offered_product ~scale:2 ()));
  print_endline "loaded scale 2 (~200 products)";

  section "catalog (served by the front-end, sizes kept current)";
  let _ = Graql.Db.graph db in
  List.iter
    (fun row -> print_endline ("  " ^ String.concat "  " row))
    (Graql.Session.catalog_rows session);

  section "degree statistics (dynamic analysis inputs, Sec. III-B)";
  List.iter
    (fun row ->
      match row with
      | [ name; out; _in ] -> Printf.printf "  %-10s out: %s\n" name out
      | _ -> ())
    (Graql.Session.degree_report session);

  section "an analyst can query...";
  let ann = Graql.Server.connect server ~user:"ann" in
  List.iter
    (fun (_, o) ->
      match o with
      | Graql.O_table t -> print_endline (Graql.Table.to_display_string ~max_rows:5 t)
      | _ -> ())
    (Graql.Server.run ann
       "select top 5 vendor, count(*) as offers from table Offers group by \
        vendor order by offers desc");

  section "...but not write";
  (try ignore (Graql.Server.run ann "create table Sneaky(x integer)")
   with Graql.Error.Error (Graql.Error.Denied msg) ->
     print_endline ("  denied: " ^ msg));

  section "query plan for a tail-selective path (graql explain)";
  (match
     Graql.Parser.parse_statement
       {|select * from graph OfferVtx ( ) --product-->
          ProductVtx (id = %Product1%) into subgraph G|}
   with
  | Graql.Ast.Select_graph { sg_path; _ } ->
      List.iter
        (fun plan -> print_endline (Graql.Explain.to_string plan))
        (Graql.Explain.explain_multipath ~db
           ~params:(fun p -> Graql.Db.find_param db p)
           sg_path)
  | _ -> assert false);

  section "capacity planning: does this fit on 4 nodes with 1 MB each?";
  print_endline
    (Graql.Cluster.report
       (Graql.Cluster.plan ~nodes:4 ~mem_per_node:1_000_000 db));

  section "audit trail";
  List.iteri
    (fun i (user, stmt) ->
      if i < 3 then
        Printf.printf "  %-4s %s\n" user
          (if String.length stmt > 60 then String.sub stmt 0 60 ^ "..." else stmt))
    (List.rev (Graql.Server.audit_log server));
  List.iter
    (fun (user, run, denied) ->
      Printf.printf "  %s: %d statements, %d denied\n" user run denied)
    (Graql.Server.user_stats server)
