(* Quickstart: a 40-line GraQL session over an org chart.

   Run with: dune exec examples/quickstart.exe *)

let people_csv =
  "id,name,dept,boss\n\
   e1,Ada,Research,\n\
   e2,Grace,Research,e1\n\
   e3,Alan,Research,e1\n\
   e4,Edsger,Systems,e2\n\
   e5,Barbara,Systems,e2\n\
   e6,Donald,Systems,e3\n"

let script =
  {|
create table People(id varchar(10), name varchar(20), dept varchar(20), boss varchar(10))

// Vertices are *views* over the table (Eq. 1 of the paper)...
create vertex PersonVtx(id) from table People

// ...and edges join view attributes (Eq. 2).
create edge reportsTo with vertices (PersonVtx as A, PersonVtx as B)
  where A.boss = B.id

ingest table People people.csv

// Who is in Ada's reporting tree, one or more levels down?
select A.name as report from graph
  def A: PersonVtx ( ) --reportsTo--> PersonVtx (name = 'Ada')

// Two levels down via a path regex:
select A.name as grandreport from graph
  def A: PersonVtx ( ) ( --reportsTo--> [ ] ){2}

// And the relational side: headcount per department.
select dept, count(*) as headcount from table People
  group by dept order by headcount desc
|}

let () =
  let session = Graql.create_session () in
  let loader = function
    | "people.csv" -> people_csv
    | f -> raise (Sys_error ("no such file: " ^ f))
  in
  let results = Graql.run ~loader session script in
  List.iter
    (fun (_, outcome) ->
      match outcome with
      | Graql.O_table t -> print_endline (Graql.Table.to_display_string t)
      | Graql.O_subgraph sg -> print_endline (Graql.Subgraph.summary sg)
      | Graql.O_message _ -> ()
      | Graql.O_failed e -> print_endline ("error: " ^ Graql.Error.to_string e))
    results
