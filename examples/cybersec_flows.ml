(* Cybersecurity: network interaction graphs (the paper's first motivating
   domain — "interaction graphs representing communication occurring over
   time between different hosts or devices on a network").

   Synthetic scenario: hosts on three subnets, NetFlow-style flow records,
   and an IDS alert table. Queries:
     1. which hosts talked to a flagged host (one hop),
     2. lateral-movement reach of the flagged host (regex, 1+ hops over
        high-volume flows),
     3. top talkers by bytes (relational side),
     4. alert-adjacent traffic captured as a subgraph and re-queried
        (Fig. 12 seeding).

   Run with: dune exec examples/cybersec_flows.exe *)

module Rng = Graql_util.Rng

let n_hosts = 60
let n_flows = 1200

let gen_hosts rng =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "ip,subnet,os,critical\n";
  for i = 0 to n_hosts - 1 do
    let subnet = [| "dmz"; "corp"; "lab" |].(Rng.int rng 3) in
    let os = [| "linux"; "windows"; "macos" |].(Rng.int rng 3) in
    let critical = if Rng.int rng 10 = 0 then "true" else "false" in
    Buffer.add_string buf
      (Printf.sprintf "10.0.%d.%d,%s,%s,%s\n" (i / 50) (i mod 50) subnet os
         critical)
  done;
  Buffer.contents buf

let gen_flows rng =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "id,src,dst,port,bytes,day\n";
  let host i = Printf.sprintf "10.0.%d.%d" (i / 50) (i mod 50) in
  for i = 0 to n_flows - 1 do
    (* A few chatty hosts (Zipf) talking to many others: realistic fan-out. *)
    let s = Rng.zipf rng ~n:n_hosts ~s:1.1 in
    let d = (s + 1 + Rng.int rng (n_hosts - 1)) mod n_hosts in
    let port = [| 22; 80; 443; 445; 3389 |].(Rng.int rng 5) in
    let bytes = 100 + Rng.int rng 1_000_000 in
    Buffer.add_string buf
      (Printf.sprintf "fl%d,%s,%s,%d,%d,2026-06-%02d\n" i (host s) (host d)
         port bytes
         (1 + Rng.int rng 28))
  done;
  Buffer.contents buf

let gen_alerts rng =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "id,host,kind,day\n";
  for i = 0 to 5 do
    let h = Rng.int rng n_hosts in
    Buffer.add_string buf
      (Printf.sprintf "a%d,10.0.%d.%d,beacon,2026-06-%02d\n" i (h / 50)
         (h mod 50)
         (1 + Rng.int rng 28))
  done;
  Buffer.contents buf

let schema =
  {|
create table Hosts(ip varchar(16), subnet varchar(8), os varchar(8), critical boolean)
create table Flows(id varchar(10), src varchar(16), dst varchar(16), port integer, bytes integer, day date)
create table Alerts(id varchar(10), host varchar(16), kind varchar(10), day date)

create vertex HostVtx(ip) from table Hosts
create vertex AlertVtx(id) from table Alerts

create edge talksTo with vertices (HostVtx as S, HostVtx as D)
  from table Flows
  where Flows.src = S.ip and Flows.dst = D.ip

create edge raisedOn with vertices (AlertVtx, HostVtx)
  where AlertVtx.host = HostVtx.ip

ingest table Hosts hosts.csv
ingest table Flows flows.csv
ingest table Alerts alerts.csv
|}

let queries =
  [
    ( "hosts that sent traffic to the flagged host",
      {|select S.ip as talker, S.subnet as subnet from graph
          def S: HostVtx ( ) --talksTo--> HostVtx (ip = %Flagged%)|} );
    ( "lateral-movement reach (1+ hops over >100kB flows)",
      {|select * from graph
          HostVtx (ip = %Flagged%) ( --talksTo(bytes > 100000)--> [ ] )+
        into subgraph lateral|} );
    ( "top talkers by total bytes sent",
      {|select src, count(*) as flows, sum(bytes) as total from table Flows
          group by src order by total desc|} );
    ( "critical hosts inside the lateral-movement reach (seeded re-query)",
      {|select HostVtx.ip as exposed from graph
          lateral.HostVtx (critical = true)|} );
    ( "hosts with alerts and the subnet they sit in",
      {|select AlertVtx.kind as kind, HostVtx.ip as host, HostVtx.subnet as subnet
        from graph AlertVtx ( ) --raisedOn--> HostVtx ( )|} );
  ]

let () =
  let rng = Rng.make 7 in
  let hosts = gen_hosts (Rng.split rng) in
  let flows = gen_flows (Rng.split rng) in
  let alerts = gen_alerts (Rng.split rng) in
  let loader = function
    | "hosts.csv" -> hosts
    | "flows.csv" -> flows
    | "alerts.csv" -> alerts
    | f -> raise (Sys_error ("no such file: " ^ f))
  in
  let session = Graql.create_session () in
  ignore (Graql.run ~loader session schema);
  (* Flag the most talkative host. *)
  let db = Graql.Session.db session in
  Graql.Db.set_param db "Flagged" (Graql.Value.Str "10.0.0.0");
  List.iter
    (fun (title, q) ->
      Printf.printf "=== %s ===\n" title;
      List.iter
        (fun (_, outcome) ->
          match outcome with
          | Graql.O_table t ->
              print_endline (Graql.Table.to_display_string ~max_rows:10 t)
          | Graql.O_subgraph sg -> print_endline (Graql.Subgraph.summary sg)
          | Graql.O_message m -> print_endline m
          | Graql.O_failed e -> print_endline ("error: " ^ Graql.Error.to_string e))
        (Graql.run session q);
      print_newline ())
    queries
