(* The full Berlin business-intelligence session from the paper: load the
   schema and a generated dataset, then run every query the figures show,
   with per-phase timing from the GEMS session (parse / static analysis /
   IR encode / IR decode / execute).

   Run with: dune exec examples/berlin_bi.exe -- [scale] *)

let () =
  let scale =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let pool = Graql.Domain_pool.create () in
  let session = Graql.create_session ~pool () in
  Printf.printf "loading Berlin at scale %d (~%d products)...\n%!" scale
    (100 * scale);
  Graql.Berlin.Gen.ingest_all ~scale session;

  print_endline "\n=== server catalog ===";
  print_endline
    (Graql_util.Text_table.render ~header:[ "kind"; "name"; "size" ]
       (Graql.Session.catalog_rows session));

  let db = Graql.Session.db session in
  let product = Graql.Berlin.Reference.most_offered_product ~scale () in
  Graql.Db.set_param db "Product1" (Graql.Value.Str product);
  Graql.Db.set_param db "Country1" (Graql.Value.Str "US");
  Graql.Db.set_param db "Country2" (Graql.Value.Str "DE");
  Printf.printf "\n%%Product1%% = %s, %%Country1%% = US, %%Country2%% = DE\n"
    product;

  List.iter
    (fun (name, q) ->
      Printf.printf "\n=== %s ===\n" name;
      let t0 = Unix.gettimeofday () in
      let results = Graql.run session q in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter
        (fun (_, outcome) ->
          match outcome with
          | Graql.O_table t ->
              print_endline (Graql.Table.to_display_string ~max_rows:10 t)
          | Graql.O_subgraph sg -> print_endline (Graql.Subgraph.summary sg)
          | Graql.O_message m -> print_endline m
          | Graql.O_failed e -> print_endline ("error: " ^ Graql.Error.to_string e))
        results;
      Printf.printf "(%.1f ms)\n" (dt *. 1000.0))
    Graql.Berlin.Queries.all;

  let t = Graql.Session.phase_times session in
  Printf.printf
    "\n=== session phase times ===\n\
     parse   %7.2f ms\n\
     check   %7.2f ms\n\
     encode  %7.2f ms (IR shipped: %d bytes)\n\
     decode  %7.2f ms\n\
     execute %7.2f ms\n"
    (1000.0 *. t.Graql.Session.t_parse)
    (1000.0 *. t.Graql.Session.t_check)
    (1000.0 *. t.Graql.Session.t_encode)
    (Graql.Session.ir_bytes_shipped session)
    (1000.0 *. t.Graql.Session.t_decode)
    (1000.0 *. t.Graql.Session.t_execute)
