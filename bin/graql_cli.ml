(* The GraQL command-line client: the simplest of the GEMS "clients"
   (Sec. III). Subcommands: run, check, ir, gen-berlin, berlin, snb, repl.

   Failures exit with the stable per-category codes of
   [Graql.Error.exit_code]: 2 parse, 3 analysis, 4 execution, 5 exhausted
   fault recovery, 6 deadline, 7 permission, 8 I/O. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  doc

let parse_param s =
  match String.index_opt s '=' with
  | Some i ->
      let name = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      let value =
        match int_of_string_opt v with
        | Some i -> Graql.Value.Int i
        | None -> (
            match float_of_string_opt v with
            | Some f -> Graql.Value.Float f
            | None -> (
                match Graql.Date.of_string_opt v with
                | Some d -> Graql.Value.Date d
                | None -> Graql.Value.Str v))
      in
      Ok (name, value)
  | None -> Error (`Msg (Printf.sprintf "bad parameter %S (want name=value)" s))

let param_conv = Arg.conv (parse_param, fun ppf (n, _) -> Format.fprintf ppf "%s" n)

let params_arg =
  Arg.(
    value & opt_all param_conv []
    & info [ "p"; "param" ] ~docv:"NAME=VALUE"
        ~doc:"Bind query parameter %NAME% to VALUE (repeatable).")

let domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Backend parallelism (number of domains). Default: cores, max 8.")

let seq_arg =
  Arg.(
    value & flag
    & info [ "seq" ] ~doc:"Disable parallel statement scheduling.")

let data_dir_arg =
  (* Plain string, not [Arg.dir]: with --wal a fresh directory is created
     on first use, so it need not exist yet. *)
  Arg.(
    value & opt (some string) None
    & info [ "data-dir" ] ~docv:"DIR"
        ~doc:"Directory ingest file names are resolved against; with --wal, \
              where the durable database lives (created if missing).")

let script_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT")

let deadline_arg =
  Arg.(
    value & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Abort backend execution after MS milliseconds; timed-out \
              statements report a timeout error and the process exits 6.")

let fault_seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Inject deterministic transient faults (seeded) into the \
              backend to exercise the recovery layer. Equivalent to \
              setting GRAQL_FAULT_SEED.")

let make_session ?domains ?fault_seed ?(params = []) ?durability () =
  let pool =
    Some (Graql.Domain_pool.create ?domains ())
  in
  let faults = Option.map (fun seed -> Graql.Fault.random ~seed ()) fault_seed in
  (* Slow statements (GRAQL_SLOW_MS / --slow-ms) go to stderr. *)
  Graql.Obs.Slow_log.set_sink
    (Some (fun e -> Printf.eprintf "%s\n%!" (Graql.Obs.Slow_log.to_string e)));
  let session = Graql.create_session ?pool ?faults ?durability () in
  List.iter (fun (n, v) -> Graql.Db.set_param (Graql.Session.db session) n v) params;
  session

(* -- observability flags (run, berlin, repl) ------------------------- *)

let metrics_dump_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-dump" ] ~docv:"FILE"
        ~doc:"After the run, write the metrics registry (counters, gauges, \
              histograms) to FILE in Prometheus text format.")

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Arm tracing and write the recorded spans to FILE as \
              Chrome-trace JSON (load in about:tracing or Perfetto).")

let slow_ms_arg =
  Arg.(
    value & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Log statements slower than MS milliseconds to stderr, with a \
              per-span time breakdown. Equivalent to GRAQL_SLOW_MS.")

let query_log_arg =
  Arg.(
    value & opt (some string) None
    & info [ "query-log" ] ~docv:"FILE"
        ~doc:"Append one JSON line per executed statement to FILE (query \
              id, user, statement kind, wall ms, rows, outcome, retry and \
              failover counts). Equivalent to GRAQL_QUERY_LOG.")

let listen_arg =
  Arg.(
    value & opt (some int) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:"Serve the operational HTTP endpoints (/metrics, /healthz, \
              /readyz, /stats, /slowlog, /traces) on 127.0.0.1:PORT for \
              the duration of the run. PORT 0 picks an ephemeral port; \
              the actual address is printed to stderr.")

let serve_ms_arg =
  Arg.(
    value & opt (some int) None
    & info [ "serve-ms" ] ~docv:"MS"
        ~doc:"With --listen: keep serving the HTTP endpoints for MS \
              milliseconds after the run completes before exiting (so \
              scrapers can collect the final state).")

let setup_obs ?query_log ~trace_out ~slow_ms () =
  (match slow_ms with
  | Some ms -> Graql.Obs.Slow_log.set_threshold_ms (Some ms)
  | None -> ());
  (match query_log with
  | Some path -> Graql.Obs.Query_log.open_file path
  | None -> ());
  if trace_out <> None then Graql.Obs.Trace.arm ()

(* --listen: mount the telemetry endpoints on the session. Started not
   ready; the caller flips readiness once recovery/ingest is done. *)
let start_telemetry listen session =
  match listen with
  | None -> None
  | Some port ->
      let tel = Graql.Telemetry.start ~ready:false ~port session in
      Printf.eprintf "listening on http://127.0.0.1:%d\n%!"
        (Graql.Telemetry.port tel);
      Some tel

let telemetry_ready tel =
  Option.iter (fun t -> Graql.Telemetry.set_ready t true) tel

let finish_telemetry ~serve_ms tel =
  match tel with
  | None -> ()
  | Some t ->
      (match serve_ms with
      | Some ms when ms > 0 ->
          Printf.eprintf "note: serving telemetry for %d ms more\n%!" ms;
          Unix.sleepf (float_of_int ms /. 1000.)
      | _ -> ());
      Graql.Telemetry.stop t

let finish_obs ?(trace_role = "cli") ~trace_out ~metrics_dump () =
  (match trace_out with
  | Some path ->
      Graql.Obs.Trace.write_chrome_json ~role:trace_role path;
      Printf.eprintf "note: wrote %d trace event(s) to %s\n%!"
        (List.length (Graql.Obs.Trace.events ()))
        path
  | None -> ());
  match metrics_dump with
  | Some path ->
      let oc = open_out path in
      output_string oc (Graql.Obs.Metrics.to_prometheus ());
      close_out oc;
      Printf.eprintf "note: wrote metrics to %s\n%!" path
  | None -> ()

(* Durability flags shared by run and repl. [--wal] turns the data
   directory into a durable database: existing state is recovered, new
   mutating statements are write-ahead-logged. [--recover] without
   [--wal] rebuilds the state read-only (nothing new is logged). *)
let wal_arg =
  Arg.(
    value & flag
    & info [ "wal" ]
        ~doc:"Durable mode: recover the database in --data-dir (checkpoint \
              + write-ahead log), then log every mutating statement — \
              fsync'd — before applying it.")

let recover_arg =
  Arg.(
    value & flag
    & info [ "recover" ]
        ~doc:"Recover the database state from --data-dir (latest checkpoint \
              plus WAL tail, truncating a torn tail) before running. \
              Implied by --wal; on its own, nothing new is logged.")

let replicate_arg =
  Arg.(
    value & opt (some int) None
    & info [ "replicate" ] ~docv:"PORT"
        ~doc:"With --wal: stream the write-ahead log to follower \
              processes from 127.0.0.1:PORT (0 picks an ephemeral port; \
              the actual address is printed to stderr). Followers attach \
              with $(b,graql follow HOST:PORT).")

(* --replicate: start the WAL-shipping primary on the session's log.
   Returns the handle so the caller can stop it after any --serve-ms
   grace (followers keep converging until then). *)
let start_replication replicate tel session =
  match replicate with
  | None -> None
  | Some port -> (
      match Graql.Session.wal session with
      | None ->
          prerr_endline "note: --replicate ignored without --wal";
          None
      | Some w ->
          let p = Graql.Repl.start_primary ~port w in
          Printf.eprintf "replicating on 127.0.0.1:%d\n%!"
            (Graql.Repl.primary_port p);
          Option.iter
            (fun t ->
              Graql.Telemetry.set_replication t
                (Some (fun () -> Graql.Repl.status_json p));
              (* /readyz body: report followers lagging past
                 GRAQL_REPL_MAX_LAG (status itself never flips). *)
              Graql.Telemetry.set_replication_health t
                (Some (fun () -> Graql.Repl.readyz_health p)))
            tel;
          Some p)

let durability_of ~wal data_dir =
  if wal then Some (Graql.Session.Wal_dir (Option.value data_dir ~default:"graql-data"))
  else None

let report_recovery session =
  match Graql.Session.last_recovery session with
  | Some r
    when r.Graql.Db_io.rec_checkpoint
         || r.Graql.Db_io.rec_replayed > 0
         || r.Graql.Db_io.rec_truncated > 0 ->
      Printf.eprintf
        "note: recovered%s, replayed %d WAL record(s)%s\n%!"
        (if r.Graql.Db_io.rec_checkpoint then
           Printf.sprintf " checkpoint %d" r.Graql.Db_io.rec_epoch
         else " (no checkpoint)")
        r.Graql.Db_io.rec_replayed
        (if r.Graql.Db_io.rec_truncated > 0 then
           Printf.sprintf ", dropped %d torn byte(s)" r.Graql.Db_io.rec_truncated
         else "")
  | _ -> ()

let recover_without_wal session data_dir =
  match data_dir with
  | Some dir ->
      let r = Graql.Db_io.recover (Graql.Session.db session) ~dir in
      Printf.eprintf "note: recovered%s, replayed %d WAL record(s)\n%!"
        (if r.Graql.Db_io.rec_checkpoint then
           Printf.sprintf " checkpoint %d" r.Graql.Db_io.rec_epoch
         else " (no checkpoint)")
        r.Graql.Db_io.rec_replayed
  | None ->
      Graql.Error.raise_error
        (Graql.Error.Io "--recover needs --data-dir (where the database lives)")

let loader_for data_dir =
  match data_dir with
  | Some d when Sys.file_exists (Filename.concat d Graql.Db_io.manifest_name)
    ->
      (* An exported directory: verify sizes + checksums on every load. *)
      Graql.Db_io.checked_loader ~dir:d
  | Some d -> fun name -> read_file (Filename.concat d name)
  | None -> read_file

(* Process exit code for a script whose pipeline succeeded: the first
   failed statement decides; 0 when everything ran. *)
let outcomes_exit_code results =
  List.fold_left
    (fun code (_, outcome) ->
      match outcome with
      | Graql.O_failed err when code = 0 -> Graql.Error.exit_code err
      | _ -> code)
    0 results

let print_outcomes results =
  List.iter
    (fun (stmt, outcome) ->
      (match stmt with
      | Graql.Ast.Select_graph _ | Graql.Ast.Select_table _ ->
          print_endline (Graql.outcome_to_string outcome)
      | _ -> print_endline (Graql.outcome_to_string outcome));
      print_newline ())
    results

let report_diags diags =
  List.iter
    (fun d -> prerr_endline (Graql.Diag.to_string d))
    diags

(* Run [f]; typed errors print to stderr and become their category's exit
   code, which [Cmd.eval'] passes through. *)
let with_typed_errors f =
  match f () with
  | code -> `Ok code
  | exception Graql.Error.Error e ->
      prerr_endline ("graql: " ^ Graql.Error.to_string e);
      `Ok (Graql.Error.exit_code e)

let dump_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dump" ] ~docv:"DIR"
        ~doc:"After the script runs, export every table as CSV plus a \
              reload script (schema.graql) into DIR.")

let checkpoint_flag_arg =
  Arg.(
    value & flag
    & info [ "checkpoint" ]
        ~doc:"After the script runs, fold the write-ahead log into a fresh \
              checkpoint snapshot (needs --wal).")

let run_cmd =
  let action script params domains seq data_dir dump deadline_ms fault_seed
      wal recover checkpoint replicate metrics_dump trace_out slow_ms
      query_log listen serve_ms =
    with_typed_errors (fun () ->
        setup_obs ?query_log ~trace_out ~slow_ms ();
        let session =
          make_session ?domains ?fault_seed ~params
            ?durability:(durability_of ~wal data_dir) ()
        in
        let tel = start_telemetry listen session in
        report_recovery session;
        if recover && not wal then recover_without_wal session data_dir;
        let primary = start_replication replicate tel session in
        telemetry_ready tel;
        let source = read_file script in
        let results =
          Graql.run ~loader:(loader_for data_dir) ~parallel:(not seq)
            ?deadline_ms session source
        in
        report_diags (Graql.Session.last_diagnostics session);
        print_outcomes results;
        let recovered = Graql.Session.recovered_faults session in
        if recovered > 0 then
          Printf.eprintf "note: recovered from %d injected fault(s)\n"
            recovered;
        if checkpoint then
          if Graql.Session.checkpoint session then
            Printf.printf "checkpointed database\n"
          else prerr_endline "note: --checkpoint ignored without --wal";
        (match dump with
        | Some dir ->
            Graql.Db_io.export (Graql.Session.db session) ~dir;
            Printf.printf "exported database to %s/\n" dir
        | None -> ());
        finish_obs ~trace_out ~metrics_dump ();
        (* --serve-ms also extends replication: followers keep draining
           the stream until the grace expires. *)
        (match primary with
        | Some _ when listen = None -> (
            match serve_ms with
            | Some ms when ms > 0 ->
                Printf.eprintf "note: replicating for %d ms more\n%!" ms;
                Unix.sleepf (float_of_int ms /. 1000.)
            | _ -> ())
        | _ -> ());
        finish_telemetry ~serve_ms tel;
        Option.iter Graql.Repl.stop_primary primary;
        Graql.Obs.Query_log.close ();
        Graql.Session.close session;
        outcomes_exit_code results)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a GraQL script")
    Term.(
      ret (const action $ script_arg $ params_arg $ domains_arg $ seq_arg
           $ data_dir_arg $ dump_arg $ deadline_arg $ fault_seed_arg
           $ wal_arg $ recover_arg $ checkpoint_flag_arg $ replicate_arg
           $ metrics_dump_arg $ trace_out_arg $ slow_ms_arg $ query_log_arg
           $ listen_arg $ serve_ms_arg))

let check_cmd =
  let action script params =
    with_typed_errors (fun () ->
        let session = make_session ~params () in
        let source = read_file script in
        let diags = Graql.check session source in
        report_diags diags;
        if Graql.Diag.has_errors diags then
          Graql.Error.exit_code (Graql.Error.Analysis (Graql.Diag.errors diags))
        else begin
          Printf.printf "ok: %d warning(s)\n"
            (List.length (Graql.Diag.warnings diags));
          0
        end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Static query analysis only (catalog metadata, no execution)")
    Term.(ret (const action $ script_arg $ params_arg))

let ir_cmd =
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write IR bytes to FILE.")
  in
  let decode_arg =
    Arg.(
      value & flag
      & info [ "decode" ]
          ~doc:"Treat SCRIPT as an IR file; decode and pretty-print it.")
  in
  let action script out decode =
    with_typed_errors (fun () ->
        if decode then begin
          let blob = Bytes.of_string (read_file script) in
          match Graql.Ir.decode_script blob with
          | ast ->
              print_endline (Graql.Pretty.script_to_string ast);
              0
          | exception Graql_ir.Wire.Corrupt msg ->
              Graql.Error.raise_error (Graql.Error.Io ("corrupt IR: " ^ msg))
        end
        else
          match Graql.Parser.parse_script (read_file script) with
          | ast -> (
              let blob = Graql.Ir.encode_script ast in
              match out with
              | Some path ->
                  let oc = open_out_bin path in
                  output_bytes oc blob;
                  close_out oc;
                  Printf.printf "wrote %d bytes to %s\n" (Bytes.length blob)
                    path;
                  0
              | None ->
                  Printf.printf "%d statements, %d IR bytes\n"
                    (List.length ast) (Bytes.length blob);
                  0)
          | exception Graql.Loc.Syntax_error (loc, msg) ->
              Graql.Error.raise_error (Graql.Error.Parse (loc, msg)))
  in
  Cmd.v
    (Cmd.info "ir" ~doc:"Compile a script to the binary IR (or decode one)")
    Term.(ret (const action $ script_arg $ out_arg $ decode_arg))

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"N" ~doc:"Dataset scale factor (1 = 100 products).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let gen_berlin_cmd =
  let out_arg =
    Arg.(
      value & opt string "berlin-data"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let action scale seed out =
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let files = Graql.Berlin.Gen.csv_files ~seed ~scale () in
    List.iter
      (fun (name, doc) ->
        let oc = open_out_bin (Filename.concat out name) in
        output_string oc doc;
        close_out oc)
      files;
    let ddl =
      Graql.Berlin.Schema_ddl.full_ddl ^ "\n"
      ^ Graql.Berlin.Schema_ddl.ingest_script Graql.Berlin.Gen.table_files
    in
    let oc = open_out (Filename.concat out "berlin.graql") in
    output_string oc ddl;
    output_char oc (Char.chr 10);
    close_out oc;
    Printf.printf "wrote %d CSV files + berlin.graql to %s/\n"
      (List.length files) out;
    `Ok 0
  in
  Cmd.v
    (Cmd.info "gen-berlin"
       ~doc:"Generate a Berlin (BSBM-style) dataset and its GraQL DDL")
    Term.(ret (const action $ scale_arg $ seed_arg $ out_arg))

let berlin_cmd =
  let query_arg =
    Arg.(
      value & opt string "q2"
      & info [ "query" ] ~docv:"NAME"
          ~doc:"One of: q1, q2, fig9_type_matching, fig10_regex, \
                fig11_subgraph_capture, fig12_seeded, fig13_into_table, \
                eq12_structural, all.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Also print the catalog and per-edge-type degree statistics.")
  in
  let action scale seed query domains params stats deadline_ms fault_seed
      metrics_dump trace_out slow_ms query_log listen serve_ms =
    with_typed_errors @@ fun () ->
    setup_obs ?query_log ~trace_out ~slow_ms ();
    let session = make_session ?domains ?fault_seed ~params () in
    (* Not ready until the Berlin data is ingested: /readyz answers 503
       while the tables load, then 200. *)
    let tel = start_telemetry listen session in
    Graql.Berlin.Gen.ingest_all ~seed ~scale session;
    telemetry_ready tel;
    if stats then begin
      (* Build the views first so the catalog shows real sizes. *)
      let degrees = Graql.Session.degree_report session in
      print_endline
        (Graql_util.Text_table.render ~header:[ "kind"; "name"; "size" ]
           (Graql.Session.catalog_rows session));
      print_endline
        (Graql_util.Text_table.render
           ~header:[ "edge type"; "out-degrees"; "in-degrees" ]
           degrees)
    end;
    let db = Graql.Session.db session in
    (* Sensible defaults for the paper's parameters when not provided. *)
    let default name value =
      if Graql.Db.find_param db name = None then
        Graql.Db.set_param db name value
    in
    default "Product1"
      (Graql.Value.Str (Graql.Berlin.Reference.most_offered_product ~seed ~scale ()));
    default "Country1" (Graql.Value.Str "US");
    default "Country2" (Graql.Value.Str "DE");
    let queries =
      if query = "all" then Graql.Berlin.Queries.all
      else
        match List.assoc_opt query Graql.Berlin.Queries.all with
        | Some q -> [ (query, q) ]
        | None -> []
    in
    if queries = [] then
      Graql.Error.raise_error
        (Graql.Error.Analysis
           [
             {
               Graql.Diag.severity = Graql.Diag.Error;
               loc = Graql.Loc.dummy;
               message = Printf.sprintf "unknown query %S" query;
             };
           ])
    else begin
      let code = ref 0 in
      List.iter
        (fun (name, q) ->
          Printf.printf "--- %s ---\n" name;
          let results = Graql.run ?deadline_ms session q in
          print_outcomes results;
          if !code = 0 then code := outcomes_exit_code results)
        queries;
      finish_obs ~trace_out ~metrics_dump ();
      finish_telemetry ~serve_ms tel;
      Graql.Obs.Query_log.close ();
      !code
    end
  in
  Cmd.v
    (Cmd.info "berlin" ~doc:"Generate, load and query the Berlin scenario")
    Term.(
      ret (const action $ scale_arg $ seed_arg $ query_arg $ domains_arg
           $ params_arg $ stats_arg $ deadline_arg $ fault_seed_arg
           $ metrics_dump_arg $ trace_out_arg $ slow_ms_arg $ query_log_arg
           $ listen_arg $ serve_ms_arg))

let snb_cmd =
  let query_arg =
    Arg.(
      value & opt string "q_knows_plus"
      & info [ "query" ] ~docv:"NAME"
          ~doc:"One of: q_knows_plus, q_knows_star_posts, q_fof_posts, \
                q_knows_knows_plus, q_reply_chain4, q_thread_root, \
                q_moderator_reach, all.")
  in
  let closure_arg =
    Arg.(
      value & flag
      & info [ "closure" ]
          ~doc:"Evaluate path regexes with the memoized-closure reference \
                path instead of the product-automaton engine.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"EXPLAIN ANALYZE each query instead of printing its rows: \
                per-automaton-state estimated vs actual frontier sizes and \
                per-operator wall times.")
  in
  let action scale seed query domains params closure profile deadline_ms
      fault_seed
      metrics_dump trace_out slow_ms query_log listen serve_ms =
    with_typed_errors @@ fun () ->
    setup_obs ?query_log ~trace_out ~slow_ms ();
    Graql.Path_exec.use_automaton := not closure;
    let session = make_session ?domains ?fault_seed ~params () in
    let tel = start_telemetry listen session in
    Graql.Snb.Gen.ingest_all ~seed ~scale session;
    telemetry_ready tel;
    let db = Graql.Session.db session in
    (* Sensible defaults for the workload parameters when not provided:
       the hub person and the deepest reply chain are where the star
       traversals have something to chew on. *)
    let default name value =
      if Graql.Db.find_param db name = None then
        Graql.Db.set_param db name value
    in
    default "Person1"
      (Graql.Value.Str (Graql.Snb.Reference.hub_person ~seed ~scale ()));
    default "Comment1"
      (Graql.Value.Str
         (fst (Graql.Snb.Reference.deepest_comment ~seed ~scale ())));
    default "Forum1" (Graql.Value.Str "fo0");
    let queries =
      if query = "all" then Graql.Snb.Queries.all
      else
        match List.assoc_opt query Graql.Snb.Queries.all with
        | Some q -> [ (query, q) ]
        | None -> []
    in
    if queries = [] then
      Graql.Error.raise_error
        (Graql.Error.Analysis
           [
             {
               Graql.Diag.severity = Graql.Diag.Error;
               loc = Graql.Loc.dummy;
               message = Printf.sprintf "unknown query %S" query;
             };
           ])
    else begin
      let code = ref 0 in
      List.iter
        (fun (name, q) ->
          Printf.printf "--- %s ---\n" name;
          if profile then
            List.iter
              (fun report ->
                print_endline (Graql.Profile_exec.render report))
              (Graql.Session.profile session q)
          else begin
            let results = Graql.run ?deadline_ms session q in
            print_outcomes results;
            if !code = 0 then code := outcomes_exit_code results
          end)
        queries;
      finish_obs ~trace_out ~metrics_dump ();
      finish_telemetry ~serve_ms tel;
      Graql.Obs.Query_log.close ();
      !code
    end
  in
  Cmd.v
    (Cmd.info "snb"
       ~doc:"Generate, load and query the SNB deep-traversal scenario")
    Term.(
      ret (const action $ scale_arg $ seed_arg $ query_arg $ domains_arg
           $ params_arg $ closure_arg $ profile_arg $ deadline_arg
           $ fault_seed_arg $ metrics_dump_arg $ trace_out_arg $ slow_ms_arg
           $ query_log_arg $ listen_arg $ serve_ms_arg))

(* repl `stats;` / `stats full;`: the metrics registry as text tables.
   The default view hides the scheduling-variant series (sched.*,
   fault.*, pool.*, WAL latency histograms); `stats full;` shows all. *)
let print_stats ~full session =
  print_string (Graql.Session.stats_tables ~full session)

(* repl `profile <query>;`: EXPLAIN ANALYZE through the session. *)
let run_repl_profile ~loader session source =
  try
    List.iter
      (fun report -> print_endline (Graql.Profile_exec.render report))
      (Graql.Session.profile ~loader session source)
  with
  | Graql.Error.Error (Graql.Error.Analysis diags) -> report_diags diags
  | Graql.Error.Error e -> Printf.eprintf "%s\n%!" (Graql.Error.to_string e)

let strip_profile_prefix source =
  (* The accumulated submission starts with the `profile` keyword;
     return the statement after it, without the trailing ';'. *)
  let t = String.trim source in
  if String.length t >= 8 && String.lowercase_ascii (String.sub t 0 8) = "profile "
  then
    let rest = String.sub t 8 (String.length t - 8) in
    let rest = String.trim rest in
    let rest =
      if rest <> "" && rest.[String.length rest - 1] = ';' then
        String.sub rest 0 (String.length rest - 1)
      else rest
    in
    Some rest
  else None

let repl_cmd =
  let action domains params data_dir wal slow_ms query_log listen =
    with_typed_errors @@ fun () ->
    setup_obs ?query_log ~trace_out:None ~slow_ms ();
    let session =
      make_session ?domains ~params ?durability:(durability_of ~wal data_dir) ()
    in
    report_recovery session;
    let telemetry = ref None in
    let stop_telemetry () =
      match !telemetry with
      | Some t ->
          Graql.Telemetry.stop t;
          telemetry := None;
          true
      | None -> false
    in
    let serve_port port =
      ignore (stop_telemetry ());
      match Graql.Telemetry.start ~ready:true ~port session with
      | t ->
          telemetry := Some t;
          Printf.printf "listening on http://127.0.0.1:%d\n"
            (Graql.Telemetry.port t)
      | exception Unix.Unix_error (err, _, _) ->
          Printf.printf "cannot listen on port %d: %s\n" port
            (Unix.error_message err)
    in
    Option.iter serve_port listen;
    print_endline
      "GraQL repl — end statements with ';' on their own line, Ctrl-D quits.";
    print_endline
      "Meta-commands: 'profile <query>;' (EXPLAIN ANALYZE), 'stats;' / \
       'stats full;' (metrics), 'serve <port>;' / 'unserve;' (HTTP \
       telemetry).";
    if wal then
      print_endline "Durable session: 'checkpoint;' folds the log into a snapshot.";
    let buf = Buffer.create 256 in
    (try
       while true do
         print_string (if Buffer.length buf = 0 then "graql> " else "  ...> ");
         flush stdout;
         let line = input_line stdin in
         let meta tl =
           (* A meta-command only counts at the start of a submission. *)
           if Buffer.length buf > 0 then None
           else
             let t = String.trim tl in
             let t =
               if t <> "" && t.[String.length t - 1] = ';' then
                 String.trim (String.sub t 0 (String.length t - 1))
               else t
             in
             Some t
         in
         let meta_checkpoint = meta line = Some "checkpoint" in
         let meta_stats = meta line = Some "stats" in
         let meta_stats_full = meta line = Some "stats full" in
         let meta_unserve = meta line = Some "unserve" in
         let meta_serve =
           match meta line with
           | Some t
             when String.length t > 6 && String.sub t 0 6 = "serve " ->
               int_of_string_opt (String.trim (String.sub t 6 (String.length t - 6)))
           | _ -> None
         in
         if meta_checkpoint then begin
           if Graql.Session.checkpoint session then
             print_endline "checkpointed database"
           else print_endline "no durability configured (start with --wal)"
         end
         else if meta_stats then print_stats ~full:false session
         else if meta_stats_full then print_stats ~full:true session
         else if meta_unserve then begin
           if stop_telemetry () then print_endline "stopped serving"
           else print_endline "not serving (start with 'serve <port>;')"
         end
         else if meta_serve <> None then
           serve_port (Option.get meta_serve)
         else if String.trim line = ";" || (String.trim line <> "" && String.length (String.trim line) > 0 && (let t = String.trim line in t.[String.length t - 1] = ';')) then begin
           Buffer.add_string buf line;
           let source = Buffer.contents buf in
           Buffer.clear buf;
           match strip_profile_prefix source with
           | Some query ->
               run_repl_profile ~loader:(loader_for data_dir) session query
           | None -> (
               try
                 print_outcomes
                   (Graql.run ~loader:(loader_for data_dir) session source)
               with
               | Graql.Error.Error (Graql.Error.Analysis diags) ->
                   report_diags diags
               | Graql.Error.Error e ->
                   Printf.eprintf "%s\n%!" (Graql.Error.to_string e)
               | Graql.Script_exec.Script_error (loc, msg) ->
                   Printf.eprintf "%s: %s\n%!" (Graql.Loc.to_string loc) msg)
         end
         else begin
           Buffer.add_string buf line;
           Buffer.add_char buf '\n'
         end
       done
     with End_of_file -> print_newline ());
    ignore (stop_telemetry ());
    Graql.Obs.Query_log.close ();
    Graql.Session.close session;
    0
  in
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive GraQL session")
    Term.(
      ret (const action $ domains_arg $ params_arg $ data_dir_arg $ wal_arg
           $ slow_ms_arg $ query_log_arg $ listen_arg))

let parse_host_port target =
  match String.rindex_opt target ':' with
  | Some i -> (
      let h = String.sub target 0 i in
      let p = String.sub target (i + 1) (String.length target - i - 1) in
      match int_of_string_opt p with
      | Some p -> ((if h = "" then "127.0.0.1" else h), p)
      | None ->
          Graql.Error.raise_error
            (Graql.Error.Io
               (Printf.sprintf "bad target %S (want HOST:PORT)" target)))
  | None ->
      Graql.Error.raise_error
        (Graql.Error.Io
           (Printf.sprintf "bad target %S (want HOST:PORT)" target))

let follow_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOST:PORT"
          ~doc:"The primary's replication address, as printed by \
                $(b,graql run --wal --replicate PORT).")
  in
  let max_lag_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-lag" ] ~docv:"N"
          ~doc:"Readiness bound: with --listen, /readyz answers 503 once \
                the follower is more than N records behind the primary. \
                Default: GRAQL_REPL_MAX_LAG, else 1000.")
  in
  let action target data_dir domains max_lag listen serve_ms =
    with_typed_errors @@ fun () ->
    let host, port = parse_host_port target in
    let dir = Option.value data_dir ~default:"graql-data" in
    let pool = Some (Graql.Domain_pool.create ?domains ()) in
    let follower = Graql.Follower.start ?pool ~host ?max_lag ~port ~dir () in
    Printf.eprintf "following %s:%d into %s/\n%!" host port dir;
    let tel =
      match listen with
      | None -> None
      | Some p ->
          let t = Graql.Telemetry.start_follower ~port:p follower in
          Printf.eprintf "listening on http://127.0.0.1:%d\n%!"
            (Graql.Telemetry.port t);
          Some t
    in
    let quit = Atomic.make false in
    let on_signal _ = Atomic.set quit true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.))
        serve_ms
    in
    let expired () =
      match deadline with
      | Some d -> Unix.gettimeofday () >= d
      | None -> false
    in
    while not (Atomic.get quit || expired ()) do
      try Unix.sleepf 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    Graql.Follower.stop follower;
    Option.iter Graql.Telemetry.stop tel;
    Printf.eprintf "stopped: %s\n%!" (Graql.Follower.status_json follower);
    0
  in
  Cmd.v
    (Cmd.info "follow"
       ~doc:"Run a read-only replication follower: mirror a --replicate \
             primary's write-ahead log into --data-dir (byte-identical, \
             fsync'd before each ack), apply it continuously, and fold \
             local checkpoints when the primary's log epoch advances. \
             Runs until SIGINT/SIGTERM (or --serve-ms expires); the data \
             directory is then a valid recovery source — promote the \
             follower by starting a primary on it.")
    Term.(
      ret (const action $ target_arg $ data_dir_arg $ domains_arg
           $ max_lag_arg $ listen_arg $ serve_ms_arg))

(* -- graql serve / graql connect: the IR wire server ----------------- *)

let user_conv =
  let parse s =
    match String.index_opt s ':' with
    | Some i -> (
        let name = String.sub s 0 i in
        let r = String.sub s (i + 1) (String.length s - i - 1) in
        match String.lowercase_ascii r with
        | "admin" -> Ok (name, Graql.Server.Admin)
        | "analyst" -> Ok (name, Graql.Server.Analyst)
        | _ ->
            Error
              (`Msg (Printf.sprintf "bad role %S (want admin or analyst)" r)))
    | None -> Error (`Msg (Printf.sprintf "bad user %S (want NAME:ROLE)" s))
  in
  Arg.conv (parse, fun ppf (n, _) -> Format.fprintf ppf "%s" n)

let serve_cmd =
  let dc = Graql.Serve.default_config in
  let port_arg =
    Arg.(
      value & opt int 7687
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port for the wire protocol (0 picks an ephemeral \
                port; the actual address is printed to stderr).")
  in
  let users_arg =
    Arg.(
      value & opt_all user_conv []
      & info [ "user" ] ~docv:"NAME:ROLE"
          ~doc:"Register a user account (repeatable; role is admin or \
                analyst). Default: admin:admin and analyst:analyst.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int dc.Graql.Serve.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Statements executing concurrently before new arrivals \
                queue.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int dc.Graql.Serve.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Statements waiting for an execution slot before arrivals \
                are shed with a typed error.")
  in
  let per_user_arg =
    Arg.(
      value & opt int dc.Graql.Serve.per_user_admitted
      & info [ "per-user" ] ~docv:"N"
          ~doc:"Per-user cap on queued plus executing statements.")
  in
  let max_connections_arg =
    Arg.(
      value & opt int dc.Graql.Serve.max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent client connections before new ones are \
                refused.")
  in
  let queue_wait_arg =
    Arg.(
      value & opt int dc.Graql.Serve.queue_wait_ms
      & info [ "queue-wait-ms" ] ~docv:"MS"
          ~doc:"Longest a statement waits for an execution slot before \
                it is shed.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float dc.Graql.Serve.idle_timeout_s
      & info [ "idle-timeout-s" ] ~docv:"S"
          ~doc:"Allowed silence between statements before the connection \
                is closed.")
  in
  let read_timeout_arg =
    Arg.(
      value & opt float dc.Graql.Serve.read_timeout_s
      & info [ "read-timeout-s" ] ~docv:"S"
          ~doc:"A started frame must arrive whole within this bound \
                (reaps byte-dribbling clients).")
  in
  let action port users data_dir wal max_inflight max_queue per_user
      max_connections queue_wait_ms default_deadline_ms idle_timeout_s
      read_timeout_s slow_ms query_log listen replicate =
    with_typed_errors @@ fun () ->
    setup_obs ?query_log ~trace_out:None ~slow_ms ();
    (* Pool-less on purpose: statements already run concurrently, one
       connection domain each, under the Db reader-writer lock. *)
    let server =
      Graql.Server.create ?durability:(durability_of ~wal data_dir) ()
    in
    let session = Graql.Server.session server in
    report_recovery session;
    let users =
      if users = [] then
        [ ("admin", Graql.Server.Admin); ("analyst", Graql.Server.Analyst) ]
      else users
    in
    List.iter
      (fun (name, role) -> Graql.Server.add_user server ~name ~role)
      users;
    let tel = start_telemetry listen session in
    let primary = start_replication replicate tel session in
    let config =
      {
        Graql.Serve.default_config with
        Graql.Serve.port;
        max_inflight;
        max_queue;
        per_user_admitted = per_user;
        max_connections;
        queue_wait_ms;
        idle_timeout_s;
        read_timeout_s;
        default_deadline_ms =
          Option.value default_deadline_ms ~default:0;
      }
    in
    let sv = Graql.Serve.start ~config server in
    Printf.eprintf "serving on 127.0.0.1:%d\n%!" (Graql.Serve.port sv);
    telemetry_ready tel;
    (* SIGINT/SIGTERM begin the drain; Serve.wait returns once draining
       and Serve.stop joins every connection with its in-flight result
       delivered — only then is the WAL closed. *)
    let on_signal _ = Graql.Serve.request_shutdown sv in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Graql.Serve.wait sv;
    Printf.eprintf "draining...\n%!";
    Graql.Serve.stop sv;
    Option.iter Graql.Repl.stop_primary primary;
    finish_telemetry ~serve_ms:None tel;
    Graql.Obs.Query_log.close ();
    Graql.Session.close session;
    Printf.eprintf "stopped\n%!";
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the database to concurrent network clients: compiled \
             IR statements over TCP (WAL-style framing), per-user \
             authentication, an admission controller that sheds load \
             with typed retryable errors past its in-flight and queue \
             bounds, and read statements running concurrently under the \
             database's reader-writer epoch. SIGINT/SIGTERM drain \
             in-flight statements before the WAL closes. Clients attach \
             with $(b,graql connect HOST:PORT).")
    Term.(
      ret (const action $ port_arg $ users_arg $ data_dir_arg $ wal_arg
           $ max_inflight_arg $ max_queue_arg $ per_user_arg
           $ max_connections_arg $ queue_wait_arg $ deadline_arg
           $ idle_timeout_arg $ read_timeout_arg $ slow_ms_arg
           $ query_log_arg $ listen_arg $ replicate_arg))

let connect_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"HOST:PORT"
          ~doc:"The server's wire address, as printed by $(b,graql serve).")
  in
  let script_arg =
    Arg.(
      value & pos 1 (some file) None
      & info [] ~docv:"SCRIPT" ~doc:"GraQL script to run remotely.")
  in
  let exec_arg =
    Arg.(
      value & opt (some string) None
      & info [ "e"; "exec" ] ~docv:"SOURCE"
          ~doc:"Run SOURCE instead of a script file.")
  in
  let user_arg =
    Arg.(
      value & opt string "admin"
      & info [ "user" ] ~docv:"NAME" ~doc:"Connect as this user account.")
  in
  let shutdown_arg =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"After running (or alone), ask the server to drain and \
                stop (admin only).")
  in
  let action target script exec user shutdown deadline_ms trace_out =
    with_typed_errors @@ fun () ->
    let host, port = parse_host_port target in
    let source =
      match (exec, script) with
      | Some src, _ -> Some src
      | None, Some path -> Some (read_file path)
      | None, None -> None
    in
    if source = None && not shutdown then
      Graql.Error.raise_error
        (Graql.Error.Io "nothing to do: give a SCRIPT, --exec or --shutdown");
    if trace_out <> None then Graql.Obs.Trace.arm ();
    let cl = Graql.Client.connect ~host ~port ~user () in
    Fun.protect ~finally:(fun () -> Graql.Client.close cl) @@ fun () ->
    let code =
      match source with
      | None -> 0
      | Some src -> (
          let reply =
            Graql.Client.run ?deadline_ms:(Option.map Fun.id deadline_ms) cl
              src
          in
          match reply with
          | Graql.Client.Ok { epoch; wal_records; outcomes } ->
              List.iter
                (fun o ->
                  print_endline o.Graql.Serve.Proto.ro_text;
                  print_newline ())
                outcomes;
              Printf.eprintf "note: epoch %d, %d WAL record(s)\n%!" epoch
                wal_records;
              Graql.Client.reply_exit_code reply
          | Graql.Client.Shed { reason; retry_after_ms } ->
              Printf.eprintf
                "graql: overloaded: %s (retry after %d ms)\n%!" reason
                retry_after_ms;
              Graql.Client.reply_exit_code reply
          | Graql.Client.Failed { msg; _ } ->
              Printf.eprintf "graql: %s\n%!" msg;
              Graql.Client.reply_exit_code reply
          | Graql.Client.Closing { msg } ->
              Printf.eprintf "graql: server closing: %s\n%!" msg;
              Graql.Client.reply_exit_code reply)
    in
    if shutdown then begin
      match Graql.Client.shutdown cl with
      | Graql.Client.Closing { msg } ->
          Printf.eprintf "note: server acknowledged shutdown: %s\n%!" msg
      | Graql.Client.Failed { msg; _ } ->
          Printf.eprintf "graql: shutdown refused: %s\n%!" msg
      | _ -> ()
    end;
    finish_obs ~trace_role:"client" ~trace_out ~metrics_dump:None ();
    code
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Run a script against a $(b,graql serve) server: the script \
             is parsed and compiled to binary IR locally, shipped over \
             the wire, and executed remotely under the connecting user's \
             role. Exit codes mirror $(b,graql run); a shed (overloaded) \
             reply exits 8 after printing the typed reason and \
             retry-after hint. With $(b,--trace-out) each statement \
             carries a fresh 128-bit trace id over the wire, so the \
             client dump can be $(b,graql trace-merge)d with the \
             server's and followers' $(b,/traces) dumps into one \
             stitched Perfetto view.")
    Term.(
      ret (const action $ target_arg $ script_arg $ exec_arg $ user_arg
           $ shutdown_arg $ deadline_arg $ trace_out_arg))

let explain_cmd =
  let action script params domains data_dir =
    with_typed_errors @@ fun () ->
    let session = make_session ?domains ~params () in
    let db = Graql.Session.db session in
    let source = read_file script in
    match Graql.Parser.parse_script source with
    | ast ->
        List.iter
          (fun stmt ->
            match stmt with
            | Graql.Ast.Select_graph { sg_path; _ } ->
                print_endline
                  (Graql.Pretty.stmt_to_string stmt);
                List.iter
                  (fun plan ->
                    print_endline (Graql.Explain.to_string plan);
                    print_newline ())
                  (Graql.Explain.explain_multipath ~db
                     ~params:(fun p -> Graql.Db.find_param db p)
                     sg_path)
            | Graql.Ast.Select_table st ->
                print_endline (Graql.Pretty.stmt_to_string stmt);
                (match
                   Graql.Table_plan.of_select ~db
                     ~params:(fun p -> Graql.Db.find_param db p)
                     st
                 with
                | plan ->
                    print_endline (Graql.Table_plan.to_string plan);
                    print_newline ()
                | exception Graql.Table_plan.Plan_error (loc, msg) ->
                    Printf.printf "%s: %s\n\n" (Graql.Loc.to_string loc) msg);
                (* Still execute: later statements may select from the
                   result state, matching the non-graph branch below. *)
                ignore
                  (Graql.Script_exec.exec_stmt
                     ~loader:(loader_for data_dir) db stmt)
            | _ ->
                (* DDL / ingest / set establish the state plans need. *)
                ignore
                  (Graql.Script_exec.exec_stmt
                     ~loader:(loader_for data_dir) db stmt))
          ast;
        0
    | exception Graql.Loc.Syntax_error (loc, msg) ->
        Graql.Error.raise_error (Graql.Error.Parse (loc, msg))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the query plan for each query in a script: direction, \
             seed strategy and cardinality estimates for graph queries; \
             statistics-driven join order, pushdown and cardinality \
             estimates for table selects")
    Term.(ret (const action $ script_arg $ params_arg $ domains_arg $ data_dir_arg))

let cluster_plan_cmd =
  let nodes_arg =
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let mem_arg =
    Arg.(
      value & opt float 1.0
      & info [ "mem-gb" ] ~docv:"GB" ~doc:"DRAM capacity per node, in GB.")
  in
  let shards_arg =
    Arg.(
      value & opt int 4
      & info [ "shards-per-table" ] ~docv:"K" ~doc:"Row-range shards per table.")
  in
  let action scale seed nodes mem_gb shards =
    with_typed_errors @@ fun () ->
    let session = make_session () in
    Graql.Berlin.Gen.ingest_all ~seed ~scale session;
    let plan =
      Graql.Cluster.plan ~shards_per_table:shards ~nodes
        ~mem_per_node:(int_of_float (mem_gb *. 1e9))
        (Graql.Session.db session)
    in
    print_endline (Graql.Cluster.report plan);
    0
  in
  Cmd.v
    (Cmd.info "cluster-plan"
       ~doc:"Estimate the Berlin database's DRAM footprint and place its \
             shards over a simulated cluster")
    Term.(
      ret (const action $ scale_arg $ seed_arg $ nodes_arg $ mem_arg $ shards_arg))

let trace_merge_cmd =
  let dumps_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"DUMP"
          ~doc:"Chrome-trace JSON dumps to merge — [--trace-out] files \
                and saved [GET /traces] bodies, one per process.")
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the merged dump to FILE instead of stdout.")
  in
  let action dumps output =
    with_typed_errors @@ fun () ->
    let merged = Graql.Obs.Trace.merge_dumps (List.map read_file dumps) in
    (match output with
    | Some path ->
        let oc = open_out path in
        output_string oc merged;
        close_out oc;
        Printf.eprintf "note: merged %d dump(s) into %s\n%!"
          (List.length dumps) path
    | None -> print_string merged);
    0
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:"Splice per-process Chrome-trace dumps (client --trace-out, \
             server and follower /traces) into one JSON array loadable \
             in Perfetto: each process keeps its own pid lane, and spans \
             of one statement share a trace id across lanes.")
    Term.(ret (const action $ dumps_arg $ output_arg))

let exits =
  Cmd.Exit.defaults
  @ [
      Cmd.Exit.info 2 ~doc:"on a parse error.";
      Cmd.Exit.info 3 ~doc:"on static analysis errors.";
      Cmd.Exit.info 4 ~doc:"on a statement execution error.";
      Cmd.Exit.info 5 ~doc:"when fault recovery was exhausted.";
      Cmd.Exit.info 6 ~doc:"when the --deadline-ms budget expired.";
      Cmd.Exit.info 7 ~doc:"on an authorization failure.";
      Cmd.Exit.info 8 ~doc:"on an I/O or data-integrity failure.";
    ]

let main =
  Cmd.group
    (Cmd.info "graql" ~version:"1.0.0" ~exits
       ~doc:"GraQL attributed graph database (GEMS reproduction)")
    [ run_cmd; check_cmd; ir_cmd; gen_berlin_cmd; berlin_cmd; snb_cmd;
      repl_cmd; follow_cmd; serve_cmd; connect_cmd; trace_merge_cmd;
      explain_cmd; cluster_plan_cmd ]

let () = exit (Cmd.eval' main)
