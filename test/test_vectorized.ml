(* Property tests for the batched execution path: every vectorized kernel
   (fast-pred scans, int/dict hash joins, batched aggregation) must be
   byte-identical to its row-at-a-time reference, for every domain count,
   over inputs that hit the awkward regimes — nulls, NaN/infinity floats,
   empty tables, dictionary-shared columns, dense vs sparse join keys,
   duplicate vs unique build keys. Plus planner tests: join order and
   hash build side must flip when table cardinalities flip. *)

module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Schema = Graql_storage.Schema
module Table = Graql_storage.Table
module Column = Graql_storage.Column
module Row_expr = Graql_relational.Row_expr
module Relop = Graql_relational.Relop
module Join = Graql_relational.Join
module Aggregate = Graql_relational.Aggregate
module Domain_pool = Graql_parallel.Domain_pool
module Db = Graql_engine.Db
module Ddl_exec = Graql_engine.Ddl_exec
module Script_exec = Graql_engine.Script_exec
module Table_plan = Graql_engine.Table_plan
module Parser = Graql_lang.Parser
module Ast = Graql_lang.Ast
module Intern = Graql_util.Intern
module Session = Graql_gems.Session
module Gen = Graql_berlin.Berlin_gen
module Queries = Graql_berlin.Berlin_queries
module Reference = Graql_berlin.Berlin_reference

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)

let with_flag flag v f =
  let saved = !flag in
  flag := v;
  Fun.protect ~finally:(fun () -> flag := saved) f

(* One pool per domain count, created once and reused across every
   (input, operator) combination — domain spawn is the expensive part. *)
let with_pools f =
  let pools =
    List.map (fun d -> (d, Domain_pool.create ~domains:d ())) [ 1; 2; 4; 8 ]
  in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (_, p) -> Domain_pool.shutdown p) pools)
    (fun () -> f ((0, None) :: List.map (fun (d, p) -> (d, Some p)) pools))

let check_tables_equal label expected got =
  Alcotest.(check int) (label ^ ": nrows") (Table.nrows expected)
    (Table.nrows got);
  let se = Table.schema expected in
  Alcotest.(check bool)
    (label ^ ": schema") true
    (Schema.equal se (Table.schema got));
  for r = 0 to Table.nrows expected - 1 do
    for c = 0 to Schema.arity se - 1 do
      let ve = Table.get expected ~row:r ~col:c
      and vg = Table.get got ~row:r ~col:c in
      if Value.compare ve vg <> 0 then
        Alcotest.failf "%s: cell (%d,%d): %s <> %s" label r c
          (Value.to_string ve) (Value.to_string vg)
    done
  done

let varchar_pool = [| "aa"; "bb"; "cc"; "dd"; "ee"; "ff"; "gg"; "hh" |]

(* Columns: id Int (dense 0..n), k Int (shape set by [key]), g Varchar
   with nulls, x Float with nulls / NaN / infinities. *)
let random_table st ~rows ~key name =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; dtype = Dtype.Int };
        { Schema.name = "k"; dtype = Dtype.Int };
        { Schema.name = "g"; dtype = Dtype.Varchar 8 };
        { Schema.name = "x"; dtype = Dtype.Float };
      ]
  in
  let row i =
    let g =
      if Random.State.int st 10 = 0 then Value.Null
      else
        Value.Str varchar_pool.(Random.State.int st (Array.length varchar_pool))
    in
    let x =
      match Random.State.int st 12 with
      | 0 -> Value.Null
      | 1 -> Value.Float Float.nan
      | 2 -> Value.Float Float.infinity
      | 3 -> Value.Float Float.neg_infinity
      | _ -> Value.Float (Random.State.float st 100.0 -. 50.0)
    in
    [ Value.Int i; key i; g; x ]
  in
  Table.of_rows ~name schema (List.init rows row)

let rand_key st span i =
  ignore i;
  if Random.State.int st 12 = 0 then Value.Null
  else Value.Int (Random.State.int st span)

(* ------------------------------------------------------------------ *)
(* Selection: batch predicate evaluation vs row-at-a-time              *)

let predicates =
  let open Row_expr in
  [
    ("k<const", Cmp (Lt, Col 1, Const (Value.Int 40)));
    ("g=bb", Cmp (Eq, Col 2, Const (Value.Str "bb")));
    ("x>=0", Cmp (Ge, Col 3, Const (Value.Float 0.0)));
    ("col-col", Cmp (Lt, Col 1, Col 0));
    ( "conj",
      And
        ( Cmp (Ge, Col 1, Const (Value.Int 10)),
          Cmp (Lt, Col 3, Const (Value.Float 20.0)) ) );
    ("like", Like (Col 2, "b%"));
    ("not", Not (Cmp (Eq, Col 2, Const (Value.Str "cc"))));
    ("isnull", IsNull (Col 3));
  ]

let test_select_equiv () =
  let st = Random.State.make [| 42 |] in
  with_pools (fun pools ->
      List.iter
        (fun rows ->
          let t =
            random_table st ~rows ~key:(rand_key st (max 1 rows)) "t"
          in
          List.iter
            (fun (pname, pred) ->
              let reference =
                with_flag Relop.vectorized false (fun () -> Relop.select t pred)
              in
              List.iter
                (fun (domains, pool) ->
                  let got =
                    with_flag Relop.vectorized true (fun () ->
                        Relop.select ?pool t pred)
                  in
                  check_tables_equal
                    (Printf.sprintf "select/%s rows=%d dom=%d" pname rows
                       domains)
                    reference got)
                pools)
            predicates)
        [ 0; 1; 17; 1000; 5000 ])

(* ------------------------------------------------------------------ *)
(* Join: batched int/dict kernels vs generic row path                  *)

(* Key regimes chosen to split across the kernel's internal paths:
   dense spans take the direct-address table, sparse spans the hash
   table; unique build keys take the pre-sized-output probe, duplicates
   the chain-walking fallback. *)
let key_regimes st rows =
  [
    ("dense-dup", rand_key st (max 1 (rows / 4)));
    ("dense-unique", fun i -> Value.Int (3 * i));
    ( "sparse-dup",
      fun i ->
        ignore i;
        if Random.State.int st 12 = 0 then Value.Null
        else Value.Int (1_000_000 * (1 + Random.State.int st 50)) );
    ("sparse-unique", fun i -> Value.Int (i * 1_000_003));
  ]

let join_reference ~left ~right ~on =
  with_flag Join.use_int_fast false (fun () ->
      Join.hash_join ~left ~right ~on ())

let test_join_equiv () =
  let st = Random.State.make [| 7 |] in
  with_pools (fun pools ->
      List.iter
        (fun (nl, nr) ->
          List.iter
            (fun (rname, key) ->
              let left = random_table st ~rows:nl ~key "l"
              and right = random_table st ~rows:nr ~key "r" in
              List.iter
                (fun (cname, on) ->
                  let reference = join_reference ~left ~right ~on in
                  List.iter
                    (fun (domains, pool) ->
                      let got =
                        with_flag Join.use_int_fast true (fun () ->
                            (* Force the pool paths even on small inputs. *)
                            with_flag Join.par_threshold 1 (fun () ->
                                Join.hash_join ?pool ~left ~right ~on ()))
                      in
                      check_tables_equal
                        (Printf.sprintf "join/%s/%s %dx%d dom=%d" rname cname
                           nl nr domains)
                        reference got)
                    pools)
                [
                  ("int", [ (1, 1) ]);
                  ("dict", [ (2, 2) ]);
                  ("multi", [ (1, 1); (2, 2) ]);
                ])
            (key_regimes st (max nl nr)))
        [ (0, 50); (50, 0); (1, 1); (200, 300); (1000, 400) ])

(* ------------------------------------------------------------------ *)
(* Aggregation: batched group-by / scalar vs generic accumulation      *)

let agg_specs =
  Aggregate.
    [
      (Count_star, "n");
      (Count 3, "cx");
      (Sum 3, "sx");
      (Avg 3, "ax");
      (Min 1, "mn");
      (Max 1, "mx");
    ]

let test_aggregate_equiv () =
  let st = Random.State.make [| 1301 |] in
  with_pools (fun pools ->
      List.iter
        (fun rows ->
          let t =
            random_table st ~rows ~key:(rand_key st (max 1 (rows / 8))) "t"
          in
          (* Small chunks force multi-chunk merges (and empty tail chunks)
             even on small inputs; the decomposition is identical on both
             paths so results stay bit-equal. *)
          with_flag Aggregate.chunk_rows 64 (fun () ->
              List.iter
                (fun (kname, keys) ->
                  let reference =
                    with_flag Aggregate.vectorized false (fun () ->
                        Aggregate.group_by t ~keys ~aggs:agg_specs)
                  in
                  List.iter
                    (fun (domains, pool) ->
                      let got =
                        with_flag Aggregate.vectorized true (fun () ->
                            Aggregate.group_by ?pool t ~keys ~aggs:agg_specs)
                      in
                      check_tables_equal
                        (Printf.sprintf "group_by/%s rows=%d dom=%d" kname
                           rows domains)
                        reference got)
                    pools)
                [ ("global", []); ("int-key", [ 1 ]); ("dict-key", [ 2 ]) ];
              List.iter
                (fun (agg, aname) ->
                  let reference =
                    with_flag Aggregate.vectorized false (fun () ->
                        Aggregate.scalar t agg)
                  in
                  List.iter
                    (fun (domains, pool) ->
                      let got =
                        with_flag Aggregate.vectorized true (fun () ->
                            Aggregate.scalar ?pool t agg)
                      in
                      if Value.compare reference got <> 0 then
                        Alcotest.failf "scalar/%s rows=%d dom=%d: %s <> %s"
                          aname rows domains
                          (Value.to_string reference)
                          (Value.to_string got))
                    pools)
                agg_specs))
        [ 0; 1; 17; 500; 9000 ])

(* Aggregating the output of a select: its Varchar column shares the
   source dictionary ({!Column.create_sized} [~share_dict_of]), which is
   the layout the dict-key batch kernel sees in real query plans. *)
let test_aggregate_dict_shared () =
  let st = Random.State.make [| 99 |] in
  let t = random_table st ~rows:2000 ~key:(rand_key st 100) "t" in
  let sub = Relop.select t Row_expr.(Cmp (Ge, Col 0, Const (Value.Int 500))) in
  let keys = [ 2 ] and aggs = agg_specs in
  let reference =
    with_flag Aggregate.vectorized false (fun () ->
        Aggregate.group_by sub ~keys ~aggs)
  in
  let got =
    with_flag Aggregate.vectorized true (fun () ->
        Aggregate.group_by sub ~keys ~aggs)
  in
  check_tables_equal "group_by over dict-shared select output" reference got

(* ------------------------------------------------------------------ *)
(* Berlin end-to-end: the acceptance criterion verbatim — vectorized
   and row-at-a-time paths produce byte-identical Berlin query results
   at 1/2/4/8 domains. The BI suite is the relational workload (joins,
   group-bys, float aggregates) the batch kernels actually carry. *)

let render_berlin pool =
  let s = Session.create ?pool () in
  Gen.ingest_all ~seed:42 ~scale:1 s;
  let db = Session.db s in
  Db.set_param db "Product1"
    (Value.Str (Reference.most_offered_product ~scale:1 ()));
  Db.set_param db "MaxPrice" (Value.Float 5000.0);
  List.map
    (fun (name, q) ->
      match List.rev (Session.run_script s q) with
      | (_, Script_exec.O_table t) :: _ ->
          (name, Table.to_display_string ~max_rows:1_000_000 t)
      | _ -> Alcotest.failf "%s did not end in a table" name)
    Queries.bi_all

let test_berlin_byte_identical () =
  let reference =
    with_flag Relop.vectorized false (fun () ->
        with_flag Join.use_int_fast false (fun () ->
            with_flag Aggregate.vectorized false (fun () ->
                render_berlin None)))
  in
  with_pools (fun pools ->
      List.iter
        (fun (domains, pool) ->
          match pool with
          | None -> ()
          | Some _ ->
              List.iter2
                (fun (qname, expected) (_, got) ->
                  if String.compare expected got <> 0 then
                    Alcotest.failf
                      "berlin %s: vectorized dom=%d differs from row path"
                      qname domains)
                reference (render_berlin pool))
        pools)

(* ------------------------------------------------------------------ *)
(* Planner: statistics must drive join order and build side            *)

let int_csv ~header rows cell =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  for i = 0 to rows - 1 do
    Buffer.add_string buf (cell i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let db_of ~script ~csvs =
  let db = Db.create () in
  Ddl_exec.install db;
  let loader name = List.assoc name csvs in
  ignore
    (Script_exec.exec_script ~loader ~parallel:false db
       (Parser.parse_script script));
  db

let plan_of db src =
  match Parser.parse_statement src with
  | Ast.Select_table st ->
      Table_plan.of_select ~db ~params:(fun _ -> None) st
  | _ -> Alcotest.fail "expected a table select"

let scan_order plan =
  List.map
    (fun (s : Table_plan.scan_step) -> Table_plan.rel_key s.Table_plan.sc_rel)
    plan.Table_plan.tp_scans

(* Two tables, same query text: the planner must scan the smaller one
   first regardless of from-clause order, so flipping which table is big
   flips the chosen order. *)
let test_planner_order_flips () =
  let mk ~nx ~ny =
    db_of
      ~script:
        {|
create table X(xk integer, xu integer)
create table Y(yk integer, yu integer)
ingest table X x.csv
ingest table Y y.csv
|}
      ~csvs:
        [
          ("x.csv", int_csv ~header:"xk,xu" nx (fun i -> Printf.sprintf "%d,%d" (i mod 7) i));
          ("y.csv", int_csv ~header:"yk,yu" ny (fun i -> Printf.sprintf "%d,%d" (i mod 7) i));
        ]
  in
  let q = "select xu from table X as x, Y as y where x.xk = y.yk" in
  let small_y = plan_of (mk ~nx:300 ~ny:10) q in
  Alcotest.(check (list string))
    "y first when y is small" [ "y"; "x" ] (scan_order small_y);
  let small_x = plan_of (mk ~nx:10 ~ny:300) q in
  Alcotest.(check (list string))
    "x first when x is small" [ "x"; "y" ] (scan_order small_x)

(* Three tables in a chain a-b-c. The a⋈b estimate blows up (both sides
   keyed on 5 distinct values), so a small incoming c should be picked
   as hash build side; a huge c should not. *)
let test_planner_build_side_flips () =
  let mk nc =
    db_of
      ~script:
        {|
create table A(ak integer, au integer)
create table B(bk integer, bu integer)
create table C(cu integer, cv integer)
ingest table A a.csv
ingest table B b.csv
ingest table C c.csv
|}
      ~csvs:
        [
          ("a.csv", int_csv ~header:"ak,au" 50 (fun i -> Printf.sprintf "%d,%d" (i mod 5) i));
          ("b.csv", int_csv ~header:"bk,bu" 60 (fun i -> Printf.sprintf "%d,%d" (i mod 5) i));
          ("c.csv", int_csv ~header:"cu,cv" nc (fun i -> Printf.sprintf "%d,%d" i i));
        ]
  in
  let q =
    "select au from table A as a, B as b, C as c \
     where a.ak = b.bk and b.bu = c.cu"
  in
  let build_side_of_c plan =
    match
      List.find_opt
        (fun (j : Table_plan.join_step) ->
          Table_plan.rel_key j.Table_plan.js_rel = "c")
        plan.Table_plan.tp_joins
    with
    | Some j -> j.Table_plan.js_build_right
    | None -> Alcotest.fail "c never joined"
  in
  let small_c = plan_of (mk 100) q in
  Alcotest.(check bool) "small c is the build side" true
    (build_side_of_c small_c);
  let big_c = plan_of (mk 5000) q in
  Alcotest.(check bool) "big c is the probe side" false
    (build_side_of_c big_c)

(* ------------------------------------------------------------------ *)
(* Statistics and intern-pool sizing                                   *)

let test_ingest_stats () =
  let db =
    db_of
      ~script:
        {|
create table S(v integer, w varchar(8))
ingest table S s.csv
|}
      ~csvs:
        [
          ( "s.csv",
            int_csv ~header:"v,w" 100 (fun i ->
                if i mod 10 = 0 then ",x"
                else Printf.sprintf "%d,%s" (i * 2) varchar_pool.(i mod 4)) );
        ]
  in
  let t = Db.find_table_exn db "S" in
  (match Column.stats (Table.column_by_name t "v") with
  | None -> Alcotest.fail "ingest must maintain int stats"
  | Some s ->
      Alcotest.(check int) "rows" 100 s.Column.st_rows;
      Alcotest.(check int) "nulls" 10 s.Column.st_nulls;
      Alcotest.(check (option int)) "min" (Some 2) s.Column.st_min;
      Alcotest.(check (option int)) "max" (Some 198) s.Column.st_max);
  match Column.stats (Table.column_by_name t "w") with
  | None -> Alcotest.fail "ingest must maintain varchar stats"
  | Some s ->
      Alcotest.(check int) "rows" 100 s.Column.st_rows;
      (* dict size is exact for Varchar: x plus four group strings *)
      Alcotest.(check int) "distinct" 5 (int_of_float s.Column.st_distinct)

let test_intern_reserve_keeps_ids () =
  let pool = Intern.create ~expected:4 () in
  let ids = List.init 100 (fun i -> Intern.intern pool (string_of_int i)) in
  Intern.reserve pool 100_000;
  List.iteri
    (fun i id ->
      Alcotest.(check (option int))
        "id stable across reserve" (Some id)
        (Intern.find_opt pool (string_of_int i)))
    ids;
  let fresh = Intern.intern pool "fresh" in
  Alcotest.(check int) "next id continues" (Intern.size pool - 1) fresh;
  Alcotest.(check string) "lookup round-trips" "fresh" (Intern.lookup pool fresh)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vectorized"
    [
      ( "kernels",
        [
          Alcotest.test_case "select: batch == row reference" `Slow
            test_select_equiv;
          Alcotest.test_case "join: batch == row reference" `Slow
            test_join_equiv;
          Alcotest.test_case "aggregate: batch == row reference" `Slow
            test_aggregate_equiv;
          Alcotest.test_case "aggregate over dict-shared column" `Quick
            test_aggregate_dict_shared;
          Alcotest.test_case "berlin BI results byte-identical" `Slow
            test_berlin_byte_identical;
        ] );
      ( "planner",
        [
          Alcotest.test_case "join order flips with cardinality" `Quick
            test_planner_order_flips;
          Alcotest.test_case "build side flips with cardinality" `Quick
            test_planner_build_side_flips;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "ingest maintains column stats" `Quick
            test_ingest_stats;
          Alcotest.test_case "intern reserve keeps ids" `Quick
            test_intern_reserve_keeps_ids;
        ] );
    ]
