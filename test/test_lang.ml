module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Token = Graql_lang.Token
module Lexer = Graql_lang.Lexer
module Parser = Graql_lang.Parser
module Pretty = Graql_lang.Pretty
module Dtype = Graql_storage.Dtype

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let tokens src = List.map fst (Lexer.tokenize src)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lex_arrows () =
  check "out arrow pieces" true
    (tokens "--feature-->"
    = [ Token.DASHDASH; Token.IDENT "feature"; Token.DASHDASHGT; Token.EOF ]);
  check "in arrow pieces" true
    (tokens "<--rev--"
    = [ Token.LTDASHDASH; Token.IDENT "rev"; Token.DASHDASH; Token.EOF ]);
  check "minus still minus" true
    (tokens "a - 1" = [ Token.IDENT "a"; Token.MINUS; Token.INT 1; Token.EOF ]);
  check "lt vs in-arrow" true
    (tokens "a < b" = [ Token.IDENT "a"; Token.LT; Token.IDENT "b"; Token.EOF ])

let test_lex_params () =
  check "param token" true (tokens "%Product1%" = [ Token.PARAM "Product1"; Token.EOF ]);
  check "modulo fallback" true
    (tokens "a % b" = [ Token.IDENT "a"; Token.PERCENT; Token.IDENT "b"; Token.EOF ])

let test_lex_literals () =
  check "ints floats" true (tokens "1 2.5" = [ Token.INT 1; Token.FLOAT 2.5; Token.EOF ]);
  check "single-quoted" true (tokens "'it''s'" = [ Token.STRING "it's"; Token.EOF ]);
  check "double-quoted" true (tokens "\"hi\"" = [ Token.STRING "hi"; Token.EOF ]);
  check "escapes" true (tokens "'a\\nb'" = [ Token.STRING "a\nb"; Token.EOF ])

let test_lex_comments () =
  check "line comment" true
    (tokens "a // hello\nb" = [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ]);
  check "block comment" true
    (tokens "a /* x\ny */ b" = [ Token.IDENT "a"; Token.IDENT "b"; Token.EOF ])

let test_lex_comparison_ops () =
  check "ne forms" true (tokens "!= <>" = [ Token.NE; Token.NE; Token.EOF ]);
  check "le ge" true (tokens "<= >=" = [ Token.LE; Token.GE; Token.EOF ])

let test_lex_errors () =
  (match Lexer.tokenize "'unterminated" with
  | _ -> Alcotest.fail "expected error"
  | exception Loc.Syntax_error (_, msg) ->
      check "message" true (msg = "unterminated string literal"));
  match Lexer.tokenize "@" with
  | _ -> Alcotest.fail "expected error"
  | exception Loc.Syntax_error (loc, _) -> check_int "column" 1 loc.Loc.col

let test_lex_positions () =
  let toks = Lexer.tokenize "ab\n  cd" in
  match toks with
  | [ (_, l1); (_, l2); _ ] ->
      check_int "line 1" 1 l1.Loc.line;
      check_int "line 2" 2 l2.Loc.line;
      check_int "col 3" 3 l2.Loc.col
  | _ -> Alcotest.fail "token count"

(* ------------------------------------------------------------------ *)
(* Parser: DDL                                                         *)

let test_parse_create_table () =
  match
    Parser.parse_statement
      "create table T(id varchar(10), n integer, f float, d date, b boolean)"
  with
  | Ast.Create_table { ct_name; ct_cols; _ } ->
      check_str "name" "T" ct_name;
      check_int "cols" 5 (List.length ct_cols);
      check "types" true
        (List.map (fun c -> c.Ast.cd_type) ct_cols
        = [ Dtype.Varchar 10; Dtype.Int; Dtype.Float; Dtype.Date; Dtype.Bool ])
  | _ -> Alcotest.fail "wrong statement"

let test_parse_create_vertex () =
  match
    Parser.parse_statement
      "create vertex V(id, country) from table T where score > 3"
  with
  | Ast.Create_vertex { cv_name; cv_key; cv_from; cv_where; _ } ->
      check_str "name" "V" cv_name;
      check "keys" true (cv_key = [ "id"; "country" ]);
      check_str "from" "T" cv_from;
      check "where present" true (cv_where <> None)
  | _ -> Alcotest.fail "wrong statement"

let test_parse_create_edge_aliases () =
  match
    Parser.parse_statement
      "create edge subclass with vertices (TypeVtx as A, TypeVtx as B) where A.subclassOf = B.id"
  with
  | Ast.Create_edge { ce_src; ce_dst; ce_from; _ } ->
      check "src alias" true (ce_src.Ast.ve_alias = Some "A");
      check "dst alias" true (ce_dst.Ast.ve_alias = Some "B");
      check "no assoc" true (ce_from = None)
  | _ -> Alcotest.fail "wrong statement"

let test_parse_create_edge_from_table () =
  match
    Parser.parse_statement
      "create edge t with vertices (A, B) from table R where R.x = A.id and R.y = B.id"
  with
  | Ast.Create_edge { ce_from; ce_where; _ } ->
      check "assoc" true (ce_from = Some "R");
      check "where is conjunction" true
        (match ce_where with
        | Some (Ast.E_binop (Ast.And, _, _, _)) -> true
        | _ -> false)
  | _ -> Alcotest.fail "wrong statement"

let test_parse_ingest () =
  (match Parser.parse_statement "ingest table Products products.csv" with
  | Ast.Ingest { ing_table; ing_file; _ } ->
      check_str "table" "Products" ing_table;
      check_str "file" "products.csv" ing_file
  | _ -> Alcotest.fail "wrong statement");
  match Parser.parse_statement "ingest table T 'dir with space/f.csv'" with
  | Ast.Ingest { ing_file; _ } ->
      check_str "quoted file" "dir with space/f.csv" ing_file
  | _ -> Alcotest.fail "wrong statement"

let test_parse_set_param () =
  match Parser.parse_statement "set %P% = 'x'" with
  | Ast.Set_param { sp_name; sp_value; _ } ->
      check_str "name" "P" sp_name;
      check "value" true (sp_value = Ast.L_string "x")
  | _ -> Alcotest.fail "wrong statement"

(* ------------------------------------------------------------------ *)
(* Parser: graph selects                                               *)

let parse_graph src =
  match Parser.parse_statement src with
  | Ast.Select_graph sg -> sg
  | _ -> Alcotest.fail "expected graph select"

let path_of = function
  | Ast.M_path p -> p
  | _ -> Alcotest.fail "expected simple path"

let test_parse_path_basic () =
  let sg =
    parse_graph
      "select y.id from graph A (x = 1) --e--> def y: B ( ) <--f-- C into table T"
  in
  let p = path_of sg.Ast.sg_path in
  check "head name" true (p.Ast.head.Ast.v_kind = Ast.V_named "A");
  check "head cond" true (p.Ast.head.Ast.v_cond <> None);
  check_int "segments" 2 (List.length p.Ast.segments);
  (match p.Ast.segments with
  | [ Ast.Seg_step (e1, v1); Ast.Seg_step (e2, _) ] ->
      check "e1 out" true (e1.Ast.e_dir = Ast.Out);
      check "label" true (v1.Ast.v_label = Some (Ast.Set_label "y"));
      check "empty parens = no cond" true (v1.Ast.v_cond = None);
      check "e2 in" true (e2.Ast.e_dir = Ast.In)
  | _ -> Alcotest.fail "segments shape");
  check "into" true (sg.Ast.sg_into = Ast.Into_table "T")

let test_parse_foreach_label () =
  let sg =
    parse_graph "select * from graph A ( ) --e--> foreach x: B ( ) into subgraph G"
  in
  let p = path_of sg.Ast.sg_path in
  match p.Ast.segments with
  | [ Ast.Seg_step (_, v) ] ->
      check "foreach" true (v.Ast.v_label = Some (Ast.Each_label "x"))
  | _ -> Alcotest.fail "shape"

let test_parse_type_matching () =
  let sg = parse_graph "select * from graph A (id = 1) <--[ ]-- [ ] into subgraph G" in
  let p = path_of sg.Ast.sg_path in
  match p.Ast.segments with
  | [ Ast.Seg_step (e, v) ] ->
      check "edge any" true (e.Ast.e_kind = Ast.E_any);
      check "edge in" true (e.Ast.e_dir = Ast.In);
      check "vertex any" true (v.Ast.v_kind = Ast.V_any)
  | _ -> Alcotest.fail "shape"

let test_parse_regex () =
  let sg =
    parse_graph
      "select * from graph A ( ) ( --[ ]--> [ ] )+ --e--> B ( --f--> C ){3} into subgraph G"
  in
  let p = path_of sg.Ast.sg_path in
  match p.Ast.segments with
  | [
   Ast.Seg_regex (body1, Ast.Rx_plus, _);
   Ast.Seg_step _;
   Ast.Seg_regex (body2, Ast.Rx_count 3, _);
  ] ->
      check_int "body1 pairs" 1 (List.length body1);
      check_int "body2 pairs" 1 (List.length body2)
  | _ -> Alcotest.fail "regex shape"

let test_parse_regex_star () =
  let sg = parse_graph "select * from graph A ( --e--> B )* into subgraph G" in
  let p = path_of sg.Ast.sg_path in
  match p.Ast.segments with
  | [ Ast.Seg_regex (_, Ast.Rx_star, _) ] -> ()
  | _ -> Alcotest.fail "star shape"

let test_parse_multipath () =
  let sg =
    parse_graph
      "select * from graph (A --e--> def y: B) and (y --f--> C) or D --g--> E into subgraph G"
  in
  match sg.Ast.sg_path with
  | Ast.M_or (Ast.M_and (_, _), Ast.M_path _) -> ()
  | _ -> Alcotest.fail "composition precedence"

let test_parse_seeded () =
  let sg = parse_graph "select * from graph res.V (a = 1) --e--> W into subgraph G" in
  let p = path_of sg.Ast.sg_path in
  check "seeded head" true (p.Ast.head.Ast.v_kind = Ast.V_seeded ("res", "V"))

let test_parse_edge_label () =
  let sg =
    parse_graph "select * from graph A --def E: e(w > 1)--> B into subgraph G"
  in
  let p = path_of sg.Ast.sg_path in
  (match p.Ast.segments with
  | [ Ast.Seg_step (e, _) ] ->
      check "edge label" true (e.Ast.e_label = Some (Ast.Set_label "E"));
      check "edge cond too" true (e.Ast.e_cond <> None)
  | _ -> Alcotest.fail "shape");
  let sg2 = parse_graph "select * from graph A <--foreach f: e-- B into subgraph G" in
  let p2 = path_of sg2.Ast.sg_path in
  match p2.Ast.segments with
  | [ Ast.Seg_step (e, _) ] ->
      check "foreach edge label" true (e.Ast.e_label = Some (Ast.Each_label "f"))
  | _ -> Alcotest.fail "shape"

let test_parse_edge_condition () =
  let sg = parse_graph "select * from graph A --e(w > 5)--> B into subgraph G" in
  let p = path_of sg.Ast.sg_path in
  match p.Ast.segments with
  | [ Ast.Seg_step (e, _) ] -> check "edge cond" true (e.Ast.e_cond <> None)
  | _ -> Alcotest.fail "shape"

(* ------------------------------------------------------------------ *)
(* Parser: table selects                                               *)

let parse_table src =
  match Parser.parse_statement src with
  | Ast.Select_table st -> st
  | _ -> Alcotest.fail "expected table select"

let test_parse_select_table_full () =
  let st =
    parse_table
      "select top 10 id, count(*) as groupCount from table T1 group by id order by groupCount desc"
  in
  check "top" true (st.Ast.st_top = Some 10);
  check_int "targets" 2 (List.length st.Ast.st_targets);
  check "group" true (st.Ast.st_group_by = [ (None, "id") ]);
  check_int "order" 1 (List.length st.Ast.st_order_by);
  check "desc" true (snd (List.hd st.Ast.st_order_by) = Ast.Desc)

let test_parse_select_distinct_star () =
  let st = parse_table "select distinct * from table T" in
  check "distinct" true st.Ast.st_distinct;
  check "star" true (st.Ast.st_targets = [ Ast.T_star ])

let test_parse_select_join () =
  let st = parse_table "select a.x from table A as a, B where a.k = B.k" in
  match st.Ast.st_from with
  | Ast.From_join ([ ("A", Some "a"); ("B", None) ], Some _) -> ()
  | _ -> Alcotest.fail "join sources"

let test_parse_expr_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 = 7 and not x > 1 or y < 2" in
  check "or at top" true
    (match e with Ast.E_binop (Ast.Or, _, _, _) -> true | _ -> false);
  let e2 = Parser.parse_expr "a.b is not null" in
  check "is not null" true
    (match e2 with Ast.E_is_null (_, true, _) -> true | _ -> false);
  let e3 = Parser.parse_expr "name like 'a%'" in
  check "like" true
    (match e3 with Ast.E_binop (Ast.Like, _, _, _) -> true | _ -> false)

let test_parse_errors_positions () =
  (match Parser.parse_script "create table (" with
  | _ -> Alcotest.fail "expected error"
  | exception Loc.Syntax_error (loc, _) -> check_int "line" 1 loc.Loc.line);
  (match Parser.parse_script "select from graph" with
  | _ -> Alcotest.fail "expected error"
  | exception Loc.Syntax_error _ -> ());
  (match Parser.parse_script "select * from graph A --e--> into subgraph G" with
  | _ -> Alcotest.fail "expected error: arrow without vertex"
  | exception Loc.Syntax_error _ -> ());
  match Parser.parse_script "select * from graph [ ] (x = 1) -- into" with
  | _ -> Alcotest.fail "expected error"
  | exception Loc.Syntax_error _ -> ()

let test_parse_statement_trailing () =
  match Parser.parse_statement "set %A% = 1 set %B% = 2" with
  | _ -> Alcotest.fail "expected trailing error"
  | exception Loc.Syntax_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trips                                          *)

let corpus =
  [
    "create table Products (id varchar(10), price float, added date)";
    "create vertex ProductVtx(id) from table Products where (price > 10)";
    "create edge producer with vertices (ProductVtx, ProducerVtx) where \
     (ProductVtx.producer = ProducerVtx.id)";
    "create edge type with vertices (ProductVtx, TypeVtx) from table \
     ProductTypes where ((ProductTypes.product = ProductVtx.id) and \
     (ProductTypes.type = TypeVtx.id))";
    "ingest table Products 'products.csv'";
    "set %Product1% = 'p42'";
    "select y.id from graph ProductVtx ((id = %Product1%)) --feature--> def \
     x: FeatureVtx <--feature-- def y: ProductVtx ((id != %Product1%)) into \
     table T1";
    "select top 10 id, count(*) as groupCount from table T1 group by id \
     order by groupCount desc";
    "select * from graph VertexA ((x > 3)) ( --[ ]--> [ ] )+ --e--> VertexB \
     into subgraph resQ";
    "select * from graph resQ.Vn ((a = 1)) --e1--> V2 into subgraph resQ2";
    "select E.w as w from graph V1 --def E: e1((w > 2))--> V2 into table TW";
    "select * from graph (PersonVtx <--reviewer-- ReviewVtx) and (y \
     --type--> TypeVtx) into table T2";
    "select distinct a, b from table T where ((a is not null) and (b like \
     'x%')) order by a asc, b desc";
  ]

let test_pretty_roundtrip () =
  List.iter
    (fun src ->
      let ast1 = Parser.parse_script src in
      let printed = Pretty.script_to_string ast1 in
      let ast2 = Parser.parse_script printed in
      let p1 = Pretty.script_to_string ast1
      and p2 = Pretty.script_to_string ast2 in
      if p1 <> p2 then
        Alcotest.failf "roundtrip mismatch for %S:\n%s\nvs\n%s" src p1 p2)
    corpus

(* Random expression generator for parse∘print stability. *)
let rec expr_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun i -> Ast.E_lit (Ast.L_int i, Loc.dummy)) small_nat;
        map (fun b -> Ast.E_lit (Ast.L_bool b, Loc.dummy)) bool;
        return (Ast.E_lit (Ast.L_null, Loc.dummy));
        map
          (fun s -> Ast.E_lit (Ast.L_string s, Loc.dummy))
          (string_size ~gen:(char_range 'a' 'z') (int_range 1 5));
        map
          (fun s -> Ast.E_param (s, Loc.dummy))
          (string_size ~gen:(char_range 'A' 'Z') (int_range 1 4));
        map
          (fun (q, a) -> Ast.E_attr (q, a, Loc.dummy))
          (pair
             (opt (string_size ~gen:(char_range 'a' 'z') (int_range 1 4)))
             (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)));
      ]
  else
    let sub = expr_gen (depth - 1) in
    oneof
      [
        expr_gen 0;
        map3
          (fun op a b -> Ast.E_binop (op, a, b, Loc.dummy))
          (oneofl
             [
               Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Add;
               Ast.Sub; Ast.Mul; Ast.Div; Ast.And; Ast.Or;
             ])
          sub sub;
        map (fun a -> Ast.E_unop (Ast.Not, a, Loc.dummy)) sub;
        map2 (fun a n -> Ast.E_is_null (a, n, Loc.dummy)) sub bool;
      ]

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"expr parse(print(e)) prints the same" ~count:300
    (QCheck.make ~print:Pretty.expr_to_string (expr_gen 3))
    (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.parse_expr printed with
      | e2 -> Pretty.expr_to_string e2 = printed
      | exception Loc.Syntax_error _ -> false)

(* ------------------------------------------------------------------ *)
(* Fuzzing: whatever bytes arrive, the front end either parses them or
   raises the typed [Loc.Syntax_error] — no assertion failure, no
   [Not_found], no infinite loop. Seeded, so failures reproduce. *)

let fuzz_corpus =
  [
    "create table Users(id varchar(8), name varchar(16), age integer)\n\
     create vertex UserVtx(id) from table Users\n\
     create edge follows with vertices (UserVtx as A, UserVtx as B)\n\
    \  where A.id = B.id\n\
     ingest table Users users.csv";
    "set %Product1% = 'p42'\n\
     select B.id, count(*) from graph UserVtx (id = %Product1%)\n\
    \  --follows--> def B: UserVtx (age > 3 + 4 * 2) : true";
    "select distinct name, age from table Users : age >= 30 order by age desc";
    "foreach x: UserVtx ( ) ( --[ ]--> [ ] )+ into table T1";
  ]

let fuzz_accepts src =
  (match Lexer.tokenize src with
  | (_ : (Token.t * Loc.t) list) -> ()
  | exception Loc.Syntax_error _ -> ()
  | exception e ->
      Alcotest.failf "lexer leaked %s on %S" (Printexc.to_string e) src);
  match Parser.parse_script src with
  | (_ : Ast.stmt list) -> ()
  | exception Loc.Syntax_error _ -> ()
  | exception e ->
      Alcotest.failf "parser leaked %s on %S" (Printexc.to_string e) src

let test_fuzz_random_bytes () =
  let st = Random.State.make [| 0xbeef |] in
  for _ = 1 to 500 do
    let len = Random.State.int st 80 in
    fuzz_accepts (String.init len (fun _ -> Char.chr (Random.State.int st 256)))
  done

let test_fuzz_random_printable () =
  (* Printable soup hits the parser proper far more often than raw bytes,
     which mostly die in the lexer. *)
  let alphabet =
    "abz_09 .,;:()[]{}<>=!+-*/%'\"\n\t|&^#@~?\\createselectfromwheregraph"
  in
  let st = Random.State.make [| 0xf00d |] in
  for _ = 1 to 500 do
    let len = Random.State.int st 120 in
    fuzz_accepts
      (String.init len (fun _ ->
           alphabet.[Random.State.int st (String.length alphabet)]))
  done

let test_fuzz_truncations () =
  (* A crash can hand the parser any prefix of a valid script (e.g. a
     half-written file): every truncation must fail cleanly or parse. *)
  List.iter
    (fun src ->
      for len = 0 to String.length src - 1 do
        fuzz_accepts (String.sub src 0 len)
      done)
    fuzz_corpus

let test_fuzz_mutations () =
  let st = Random.State.make [| 0xcafe |] in
  List.iter
    (fun src ->
      for _ = 1 to 200 do
        let b = Bytes.of_string src in
        for _ = 0 to Random.State.int st 3 do
          Bytes.set b
            (Random.State.int st (Bytes.length b))
            (Char.chr (Random.State.int st 256))
        done;
        fuzz_accepts (Bytes.to_string b)
      done)
    fuzz_corpus

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "arrows" `Quick test_lex_arrows;
          Alcotest.test_case "params vs modulo" `Quick test_lex_params;
          Alcotest.test_case "literals" `Quick test_lex_literals;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "comparison ops" `Quick test_lex_comparison_ops;
          Alcotest.test_case "errors" `Quick test_lex_errors;
          Alcotest.test_case "positions" `Quick test_lex_positions;
        ] );
      ( "ddl",
        [
          Alcotest.test_case "create table" `Quick test_parse_create_table;
          Alcotest.test_case "create vertex" `Quick test_parse_create_vertex;
          Alcotest.test_case "create edge aliases" `Quick test_parse_create_edge_aliases;
          Alcotest.test_case "create edge from table" `Quick
            test_parse_create_edge_from_table;
          Alcotest.test_case "ingest" `Quick test_parse_ingest;
          Alcotest.test_case "set param" `Quick test_parse_set_param;
        ] );
      ( "paths",
        [
          Alcotest.test_case "basic path" `Quick test_parse_path_basic;
          Alcotest.test_case "foreach label" `Quick test_parse_foreach_label;
          Alcotest.test_case "type matching" `Quick test_parse_type_matching;
          Alcotest.test_case "regex + and {n}" `Quick test_parse_regex;
          Alcotest.test_case "regex *" `Quick test_parse_regex_star;
          Alcotest.test_case "and/or precedence" `Quick test_parse_multipath;
          Alcotest.test_case "seeded head" `Quick test_parse_seeded;
          Alcotest.test_case "edge condition" `Quick test_parse_edge_condition;
          Alcotest.test_case "edge label" `Quick test_parse_edge_label;
        ] );
      ( "table-select",
        [
          Alcotest.test_case "full clause set" `Quick test_parse_select_table_full;
          Alcotest.test_case "distinct *" `Quick test_parse_select_distinct_star;
          Alcotest.test_case "join sources" `Quick test_parse_select_join;
          Alcotest.test_case "expr precedence" `Quick test_parse_expr_precedence;
          Alcotest.test_case "error positions" `Quick test_parse_errors_positions;
          Alcotest.test_case "trailing input" `Quick test_parse_statement_trailing;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "corpus roundtrip" `Quick test_pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "random bytes" `Quick test_fuzz_random_bytes;
          Alcotest.test_case "printable soup" `Quick test_fuzz_random_printable;
          Alcotest.test_case "truncated scripts" `Quick test_fuzz_truncations;
          Alcotest.test_case "mutated scripts" `Quick test_fuzz_mutations;
        ] );
    ]
