(* The wire server (DESIGN.md §14): protocol codec and framing under
   adversarial clients (dribbled bytes, mid-frame disconnects, oversized
   frames, slowloris stalls), the admission controller's typed sheds
   (queue_full / queue_wait / user_quota / connections / draining),
   per-statement deadlines, concurrent reads under the reader-writer
   epoch, and graceful drain.

   The headline drill floods a WAL-backed server past its admission
   limits with real client processes — some byte-dribbling, some
   SIGKILLed mid-statement — and then proves the overload contract:
   every client exits with either success or a typed shed code (no
   hangs), a shed writer left no trace, an accepted writer's effect is
   durable, and a fresh sequential replay of the accepted WAL reproduces
   the served state byte-for-byte. *)

module Db = Graql_engine.Db
module Db_io = Graql_engine.Db_io
module Wal = Graql_engine.Wal
module Ddl_exec = Graql_engine.Ddl_exec
module Graql_error = Graql_engine.Graql_error
module Session = Graql_gems.Session
module Server = Graql_gems.Server
module Serve = Graql_gems.Serve
module Client = Graql_gems.Client
module Repl = Graql_gems.Repl
module Proto = Graql_gems.Serve.Proto
module Metrics = Graql_obs.Metrics
module Value = Graql_storage.Value

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------- filesystem helpers ---------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "graql_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let write_file path doc =
  let oc = open_out_bin path in
  output_string oc doc;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  doc

let int_csv n =
  let b = Buffer.create (n * 8) in
  Buffer.add_string b "id\n";
  for i = 1 to n do
    Buffer.add_string b (string_of_int i);
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* ---------- polling / metrics ---------- *)

let wait_until ?(timeout_s = 60.0) ?(poll_s = 0.01) msg f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Unix.sleepf poll_s;
      go ()
    end
  in
  go ()

let counter_now name =
  Option.value ~default:0 (Metrics.find_counter (Metrics.snapshot ()) name)

(* Sum of the labeled serve.shed{reason=...} series. *)
let shed_total () =
  List.fold_left
    (fun acc (name, v) ->
      if String.length name >= 10 && String.sub name 0 10 = "serve.shed" then
        acc + v
      else acc)
    0 (Metrics.snapshot ()).Metrics.sn_counters

let gauge_now name = Metrics.gauge_value (Metrics.gauge name)

(* ---------- state fingerprinting ---------- *)

let digest db =
  Digest.to_hex
    (Digest.string (Db_io.manifest_of_files (Db_io.export_files db)))

let fresh_db () =
  let db = Db.create () in
  Ddl_exec.install db;
  db

let recovered dir =
  let db = fresh_db () in
  ignore (Db_io.recover db ~dir);
  db

(* ---------- server fixture ---------- *)

let default_users =
  [ ("admin", Server.Admin); ("analyst", Server.Analyst) ]

let with_server ?(users = default_users) ?durability ~config f =
  let server = Server.create ?durability () in
  List.iter (fun (name, role) -> Server.add_user server ~name ~role) users;
  let sv = Serve.start ~config server in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop sv;
      Session.close (Server.session server))
    (fun () -> f server sv)

let expect_ok label = function
  | Client.Ok { epoch; wal_records; outcomes } -> (epoch, wal_records, outcomes)
  | Client.Shed { reason; _ } -> Alcotest.failf "%s: shed (%s)" label reason
  | Client.Failed { msg; _ } -> Alcotest.failf "%s: failed (%s)" label msg
  | Client.Closing { msg } -> Alcotest.failf "%s: closing (%s)" label msg

(* ---------- raw-socket client (adversarial paths) ---------- *)

let dial port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let close_quiet fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let raw_hello fd user =
  Repl.write_frame fd (Proto.encode_client (Proto.C_hello { user }));
  match Option.map Proto.decode_server (Repl.read_frame fd) with
  | Some (Proto.S_hello _) -> ()
  | _ -> Alcotest.fail "raw hello: expected S_hello"

let recv_server fd = Option.map Proto.decode_server (Repl.read_frame fd)

(* ====================================================================
   Protocol codec
   ==================================================================== *)

let test_proto_codec () =
  let client_msgs =
    [
      Proto.C_hello { user = "alice" };
      Proto.C_stmt
        {
          id = 7;
          deadline_ms = 250;
          ir = Bytes.of_string "\x00\xff\x01ir";
          trace = "";
          parent_span = 0;
        };
      Proto.C_stmt
        { id = 0; deadline_ms = 0; ir = Bytes.create 0; trace = ""; parent_span = 0 };
      Proto.C_stmt
        {
          id = 11;
          deadline_ms = 0;
          ir = Bytes.of_string "ir";
          trace = "0123456789abcdef0123456789abcdef";
          parent_span = 42;
        };
      Proto.C_shutdown;
    ]
  in
  List.iter
    (fun m ->
      check_bool "client codec round-trip" true
        (Proto.decode_client (Proto.encode_client m) = m))
    client_msgs;
  let server_msgs =
    [
      Proto.S_hello { role = "analyst" };
      Proto.S_result
        {
          id = 3;
          epoch = 12;
          wal_records = 40;
          outcomes =
            [
              { Proto.ro_kind = Proto.K_table; ro_code = 0; ro_text = "t" };
              { Proto.ro_kind = Proto.K_subgraph; ro_code = 0; ro_text = "sg" };
              { Proto.ro_kind = Proto.K_message; ro_code = 0; ro_text = "ok" };
              { Proto.ro_kind = Proto.K_failed; ro_code = 6; ro_text = "late" };
            ];
        };
      Proto.S_error { id = 9; code = 8; msg = "torn" };
      Proto.S_shed { id = 2; reason = "queue_full"; retry_after_ms = 200 };
      Proto.S_bye { msg = "draining" };
    ]
  in
  List.iter
    (fun m ->
      check_bool "server codec round-trip" true
        (Proto.decode_server (Proto.encode_server m) = m))
    server_msgs;
  let expect_io label f =
    match f () with
    | _ -> Alcotest.failf "%s: expected a typed Io error" label
    | exception Graql_error.Error (Graql_error.Io _) -> ()
  in
  expect_io "garbage client payload" (fun () ->
      Proto.decode_client (Bytes.of_string "\xfe\xfe\xfe"));
  expect_io "server tag in client decoder" (fun () ->
      Proto.decode_client (Proto.encode_server (Proto.S_bye { msg = "x" })));
  expect_io "trailing bytes" (fun () ->
      Proto.decode_server
        (Bytes.cat (Proto.encode_server (Proto.S_bye { msg = "x" }))
           (Bytes.of_string "junk")))

(* ====================================================================
   Handshake, roles, typed statement failures
   ==================================================================== *)

let test_handshake_and_roles () =
  with_server ~config:Serve.default_config @@ fun _server sv ->
  let port = Serve.port sv in
  (match Client.connect ~port ~user:"nobody" () with
  | _ -> Alcotest.fail "unknown user: expected Denied"
  | exception Graql_error.Error (Graql_error.Denied _) -> ());
  let admin = Client.connect ~port ~user:"admin" () in
  let analyst = Client.connect ~port ~user:"analyst" () in
  Fun.protect
    ~finally:(fun () ->
      Client.close admin;
      Client.close analyst)
  @@ fun () ->
  check_str "admin role" "admin" (Client.role admin);
  check_str "analyst role" "analyst" (Client.role analyst);
  ignore (expect_ok "create" (Client.run admin "create table KV(id integer)"));
  (* Analysts may read but not define or ingest — typed Denied (7). *)
  (match Client.run analyst "create table Z(id integer)" with
  | Client.Failed { code; msg } ->
      check_int "analyst ddl code" 7 code;
      check_bool "denial names the user" true
        (String.length msg > 0 && code = 7)
  | _ -> Alcotest.fail "analyst ddl: expected Failed");
  (* Statements are typechecked against the live catalog — typed 3. *)
  (match Client.run admin "select id from table Nope" with
  | Client.Failed { code; _ } -> check_int "analysis code" 3 code
  | _ -> Alcotest.fail "bad select: expected Failed");
  (match Client.run analyst "select id from table KV where id > 0" with
  | Client.Ok { epoch; outcomes; _ } ->
      check_bool "read epoch pinned after one write" true (epoch >= 1);
      check_int "one outcome" 1 (List.length outcomes)
  | _ -> Alcotest.fail "analyst select: expected Ok");
  (* Shutdown is admin-only: the analyst gets a typed refusal and the
     connection stays usable. *)
  (match Client.shutdown analyst with
  | Client.Failed { code; _ } -> check_int "analyst shutdown code" 7 code
  | _ -> Alcotest.fail "analyst shutdown: expected Failed");
  ignore
    (expect_ok "analyst still served"
       (Client.run analyst "select id from table KV where id > 0"))

(* ====================================================================
   Framing under adversarial clients
   ==================================================================== *)

let test_raw_dribbled_statement () =
  with_server ~config:Serve.default_config @@ fun _server sv ->
  let fd = dial (Serve.port sv) in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  (* Hello, then a statement, both dripped one byte at a time: the
     server must reassemble the frames exactly (the per-frame deadline
     is generous; only *stalls* are reaped). *)
  let drip payload =
    let framed = Wal.frame payload in
    for i = 0 to Bytes.length framed - 1 do
      ignore (Unix.write fd framed i 1);
      if i land 7 = 0 then Unix.sleepf 0.001
    done
  in
  drip (Proto.encode_client (Proto.C_hello { user = "admin" }));
  (match recv_server fd with
  | Some (Proto.S_hello { role }) -> check_str "dribbled hello" "admin" role
  | _ -> Alcotest.fail "dribbled hello: expected S_hello");
  let ir = Graql_ir.Codec.encode_script
      (Graql_lang.Parser.parse_script "set %dribble% = 42")
  in
  drip
    (Proto.encode_client
       (Proto.C_stmt { id = 5; deadline_ms = 0; ir; trace = ""; parent_span = 0 }));
  match recv_server fd with
  | Some (Proto.S_result { id; outcomes; _ }) ->
      check_int "statement id echoed" 5 id;
      check_int "one outcome" 1 (List.length outcomes)
  | _ -> Alcotest.fail "dribbled statement: expected S_result"

let test_raw_mid_frame_disconnect () =
  with_server ~config:Serve.default_config @@ fun _server sv ->
  let port = Serve.port sv in
  let errors_before = counter_now "serve.protocol_errors" in
  let fd = dial port in
  raw_hello fd "admin";
  (* Half a frame header, then vanish. *)
  let framed =
    Wal.frame (Proto.encode_client Proto.C_shutdown)
  in
  ignore (Unix.write fd framed 0 5);
  close_quiet fd;
  wait_until "the torn frame to be counted" (fun () ->
      counter_now "serve.protocol_errors" > errors_before);
  (* The server shrugged it off: a well-behaved client is still served. *)
  let cl = Client.connect ~port ~user:"admin" () in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  ignore (expect_ok "still serviceable" (Client.run cl "set %fine% = 1"))

let test_raw_oversized_frame () =
  with_server ~config:Serve.default_config @@ fun _server sv ->
  let port = Serve.port sv in
  let fd = dial port in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  raw_hello fd "admin";
  let hdr = Bytes.create 8 in
  Bytes.set_int32_le hdr 0 (Int32.of_int (Proto.max_frame_bytes + 1));
  Bytes.set_int32_le hdr 4 0l;
  ignore (Unix.write fd hdr 0 8);
  (match recv_server fd with
  | Some (Proto.S_error { code; msg; _ }) ->
      check_int "oversized frame is typed Io" 8 code;
      check_bool "error names the cap" true
        (String.length msg > 0
        && Option.is_some
             (String.index_opt msg 'c' (* "cap" *)))
  | _ -> Alcotest.fail "oversized frame: expected S_error");
  (* The stream cannot be resynced: the server hangs up after the typed
     refusal. *)
  check_bool "connection closed after the refusal" true
    (Repl.read_frame fd = None);
  let cl = Client.connect ~port ~user:"admin" () in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  ignore (expect_ok "still serviceable" (Client.run cl "set %fine% = 2"))

let test_slowloris_reaped () =
  let config =
    { Serve.default_config with Serve.read_timeout_s = 0.3; idle_timeout_s = 10.0 }
  in
  with_server ~config @@ fun _server sv ->
  let reaps_before = counter_now "serve.slow_client_reaps" in
  let fd = dial (Serve.port sv) in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  raw_hello fd "admin";
  (* Three bytes of a frame, then silence: the frame-completion deadline
     must reap us — the idle allowance only covers the gap *between*
     frames. *)
  let framed = Wal.frame (Proto.encode_client Proto.C_shutdown) in
  ignore (Unix.write fd framed 0 3);
  (match recv_server fd with
  | Some (Proto.S_error { code; msg; _ }) ->
      check_int "slowloris reap is typed Io" 8 code;
      check_bool "reap names the timeout" true
        (String.length msg >= 9
        && String.sub msg (String.length msg - 9) 9 = "timed out")
  | _ -> Alcotest.fail "slowloris: expected S_error");
  check_bool "reap counted" true
    (counter_now "serve.slow_client_reaps" > reaps_before)

(* ====================================================================
   Admission control: deterministic sheds under a held write lock
   ==================================================================== *)

(* Holding [Db.write_locked] freezes every admitted statement at the
   database gate (readers wait out the writer, writers queue behind it),
   so admission decisions become fully deterministic: slots stay
   occupied exactly as long as the test wants. *)
let with_lock_held db f =
  let held = Atomic.make false and release = Atomic.make false in
  let occupier =
    Domain.spawn (fun () ->
        Db.write_locked db (fun () ->
            Atomic.set held true;
            while not (Atomic.get release) do
              Unix.sleepf 0.005
            done))
  in
  wait_until "the write lock to be held" (fun () -> Atomic.get held);
  Fun.protect
    ~finally:(fun () ->
      Atomic.set release true;
      Domain.join occupier)
    f

let test_admission_sheds () =
  let config =
    {
      Serve.default_config with
      Serve.max_inflight = 1;
      max_queue = 1;
      per_user_admitted = 1;
      queue_wait_ms = 250;
      retry_after_ms = 77;
    }
  in
  let users =
    [
      ("u1", Server.Admin); ("u2", Server.Admin); ("u3", Server.Admin);
      ("seed", Server.Admin);
    ]
  in
  with_server ~users ~config @@ fun server sv ->
  let port = Serve.port sv in
  let db = Session.db (Server.session server) in
  let seed = Client.connect ~port ~user:"seed" () in
  ignore (expect_ok "seed" (Client.run seed "create table KV(id integer)"));
  Client.close seed;
  let select = "select id from table KV where id > 0" in
  let admitted_before = counter_now "serve.admitted" in
  let full_before = counter_now {|serve.shed{reason="queue_full"}|} in
  let wait_before = counter_now {|serve.shed{reason="queue_wait"}|} in
  let quota_before = counter_now {|serve.shed{reason="user_quota"}|} in
  let c1 = Client.connect ~port ~user:"u1" () in
  let c2 = Client.connect ~port ~user:"u2" () in
  let c3 = Client.connect ~port ~user:"u3" () in
  let c4 = Client.connect ~port ~user:"u1" () in
  Fun.protect
    ~finally:(fun () -> List.iter Client.close [ c1; c2; c3; c4 ])
  @@ fun () ->
  let r1 = ref None and r2 = ref None in
  let d2 =
    with_lock_held db (fun () ->
        (* c1: admitted into the sole execution slot, parked at the db
           gate. *)
        let d1 = Domain.spawn (fun () -> r1 := Some (Client.run c1 select)) in
        wait_until "c1 to take the execution slot" (fun () ->
            counter_now "serve.admitted" > admitted_before);
        (* c2: queued (depth 1), where it will wait out queue_wait_ms. *)
        let d2 = Domain.spawn (fun () -> r2 := Some (Client.run c2 select)) in
        wait_until "c2 to queue" (fun () -> gauge_now "serve.queue_depth" >= 1.0);
        (* c3: the queue is full — typed immediate shed. *)
        (match Client.run c3 select with
        | Client.Shed { reason; retry_after_ms } ->
            check_str "queue_full shed" "queue_full" reason;
            check_int "retry-after hint" 77 retry_after_ms
        | _ -> Alcotest.fail "c3: expected Shed queue_full");
        (* c4: u1 already has its quota admitted — typed quota shed. *)
        (match Client.run c4 select with
        | Client.Shed { reason; _ } ->
            check_str "user_quota shed" "user_quota" reason
        | _ -> Alcotest.fail "c4: expected Shed user_quota");
        (* c2's wait deadline expires while the slot never frees. *)
        Domain.join d2;
        (match !r2 with
        | Some (Client.Shed { reason; _ }) ->
            check_str "queue_wait shed" "queue_wait" reason
        | _ -> Alcotest.fail "c2: expected Shed queue_wait");
        d1)
  in
  (* Lock released: c1's read completes and is delivered. *)
  Domain.join d2;
  (match !r1 with
  | Some (Client.Ok _) -> ()
  | _ -> Alcotest.fail "c1: expected Ok after the lock released");
  check_bool "shed counters tell the story" true
    (counter_now {|serve.shed{reason="queue_full"}|} > full_before
    && counter_now {|serve.shed{reason="queue_wait"}|} > wait_before
    && counter_now {|serve.shed{reason="user_quota"}|} > quota_before)

let test_connection_cap () =
  let config = { Serve.default_config with Serve.max_connections = 1 } in
  with_server ~config @@ fun _server sv ->
  let port = Serve.port sv in
  let shed_before = counter_now {|serve.shed{reason="connections"}|} in
  let cl = Client.connect ~port ~user:"admin" () in
  (* The second connection gets a typed S_shed at accept, not a RST. *)
  (match Client.connect ~port ~user:"admin" () with
  | _ -> Alcotest.fail "over-cap connect: expected a typed refusal"
  | exception Graql_error.Error (Graql_error.Io msg) ->
      check_bool "refusal names the reason" true
        (String.length msg > 0));
  check_bool "connection shed counted" true
    (counter_now {|serve.shed{reason="connections"}|} > shed_before);
  Client.close cl;
  wait_until "the slot to be recycled" (fun () -> Serve.connections sv = 0);
  let cl2 = Client.connect ~port ~user:"admin" () in
  Client.close cl2

(* ====================================================================
   Deadlines and concurrent reads
   ==================================================================== *)

let test_deadline_reaping () =
  with_temp_dir @@ fun base ->
  let csv = Filename.concat base "big.csv" in
  write_file csv (int_csv 200_000);
  with_server ~config:Serve.default_config @@ fun _server sv ->
  let cl = Client.connect ~port:(Serve.port sv) ~user:"admin" () in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  ignore (expect_ok "ddl" (Client.run cl "create table KV(id integer)"));
  (* The ingest burns far more than the budget; the statement *after* it
     must be reaped by the cooperative deadline with a typed timeout. *)
  let script =
    Printf.sprintf "ingest table KV '%s'\nset %%late%% = 1" csv
  in
  let reply = Client.run ~deadline_ms:40 cl script in
  (match reply with
  | Client.Ok { outcomes; _ } ->
      check_int "two outcomes" 2 (List.length outcomes);
      let last = List.nth outcomes 1 in
      check_bool "trailing statement failed" true
        (last.Proto.ro_kind = Proto.K_failed);
      check_int "typed timeout code" 6 last.Proto.ro_code
  | _ -> Alcotest.fail "deadline script: expected Ok with a failed tail");
  check_int "reply exit code is the timeout's" 6 (Client.reply_exit_code reply);
  (* The reaped statement left no trace; the connection is still good. *)
  match Client.run cl "select id from table KV where id < 3" with
  | Client.Ok _ -> ()
  | _ -> Alcotest.fail "post-deadline select: expected Ok"

let test_concurrent_reads_during_writes () =
  with_server ~config:Serve.default_config @@ fun _server sv ->
  let port = Serve.port sv in
  let admin = Client.connect ~port ~user:"admin" () in
  Fun.protect ~finally:(fun () -> Client.close admin) @@ fun () ->
  ignore (expect_ok "ddl" (Client.run admin "create table KV(id integer)"));
  let select = "select id from table KV where id > 0" in
  let reader i =
    Domain.spawn (fun () ->
        let cl = Client.connect ~port ~user:"analyst" () in
        Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
        let last_epoch = ref (-1) in
        for j = 1 to 12 do
          match Client.run cl select with
          | Client.Ok { epoch; _ } ->
              (* Pinned epochs only move forward: reads observe the
                 write order, never a rollback. *)
              if epoch < !last_epoch then
                Alcotest.failf "reader %d: epoch went backwards at %d" i j;
              last_epoch := epoch
          | Client.Shed _ -> ()
          | Client.Failed { msg; _ } ->
              Alcotest.failf "reader %d failed: %s" i msg
          | Client.Closing _ -> Alcotest.failf "reader %d: closed" i
        done)
  in
  let readers = List.init 3 reader in
  for i = 1 to 10 do
    ignore
      (expect_ok "interleaved write"
         (Client.run admin (Printf.sprintf "set %%w%% = %d" i)))
  done;
  List.iter Domain.join readers;
  match Client.run admin "select id from table KV where id > 0" with
  | Client.Ok { epoch; _ } ->
      check_bool "writes advanced the epoch" true (epoch >= 11)
  | _ -> Alcotest.fail "final select: expected Ok"

(* ====================================================================
   Graceful drain: acknowledged writes survive the WAL close
   ==================================================================== *)

let test_drain_preserves_acked () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  let server =
    Server.create ~durability:(Session.Wal_dir data) ()
  in
  List.iter
    (fun (name, role) -> Server.add_user server ~name ~role)
    default_users;
  let session = Server.session server in
  let sv = Serve.start ~config:Serve.default_config server in
  let port = Serve.port sv in
  let cl = Client.connect ~port ~user:"admin" () in
  let cl2 = Client.connect ~port ~user:"admin" () in
  Fun.protect
    ~finally:(fun () ->
      Client.close cl;
      Client.close cl2;
      Serve.stop sv)
  @@ fun () ->
  let _, logged, _ =
    expect_ok "acked write"
      (Client.run cl "create table KV(id integer)\nset %acked% = 1")
  in
  check_bool "acked write is in the log" true (logged > 0);
  (* An admin shutdown over the wire starts the drain. *)
  (match Client.shutdown cl2 with
  | Client.Closing { msg } -> check_str "drain announced" "draining" msg
  | _ -> Alcotest.fail "shutdown: expected Closing");
  (* Post-drain statements get a typed answer, never a hang: either the
     admission shed or the goodbye, depending on which side won the
     race. *)
  (match Client.run cl "set %late% = 9" with
  | Client.Shed { reason; _ } -> check_str "drain shed" "draining" reason
  | Client.Closing _ -> ()
  | Client.Ok _ -> Alcotest.fail "post-drain write was accepted"
  | Client.Failed { msg; _ } -> Alcotest.failf "post-drain: %s" msg);
  Serve.wait sv;
  Serve.stop sv;
  let served = digest (Session.db session) in
  Session.close session;
  let rdb = recovered data in
  check_str "drained state survives the WAL close byte-for-byte" served
    (digest rdb);
  check_bool "the acked write is durable" true
    (Db.find_param rdb "acked" = Some (Value.Int 1));
  check_bool "the shed write is not" true (Db.find_param rdb "late" = None)

(* ====================================================================
   The CLI surface: graql serve / graql connect, SIGTERM drain
   ==================================================================== *)

let graql_bin =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "graql_cli.exe")

let spawn_cli ~log argv =
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process graql_bin
      (Array.append [| graql_bin |] argv)
      null logfd logfd
  in
  Unix.close null;
  Unix.close logfd;
  pid

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  try ignore (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let reap_exit ?(timeout_s = 60.0) pid =
  let res = ref (-1) in
  wait_until ~timeout_s "a client process to exit" (fun () ->
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ -> false
      | _, Unix.WEXITED n ->
          res := n;
          true
      | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
          res := 255;
          true);
  !res

let find_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some i
    else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

(* The port `graql serve` announces on stderr ("serving on
   127.0.0.1:PORT"), as the CI soak scrapes it. *)
let announced_port log =
  if not (Sys.file_exists log) then None
  else
    let doc = read_file log in
    match find_sub doc "serving on 127.0.0.1:" with
    | None -> None
    | Some i ->
        let start = i + String.length "serving on 127.0.0.1:" in
        let b = Buffer.create 8 in
        let rec go j =
          if
            j < String.length doc
            && doc.[j] >= '0'
            && doc.[j] <= '9'
          then begin
            Buffer.add_char b doc.[j];
            go (j + 1)
          end
        in
        go start;
        int_of_string_opt (Buffer.contents b)

let connect_argv ~port ~user exec =
  [| "connect"; Printf.sprintf "127.0.0.1:%d" port; "--user"; user;
     "--exec"; exec |]

let test_cli_serve_sigterm_drain () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  let slog = Filename.concat base "serve.log" in
  let clog = Filename.concat base "clients.log" in
  let pid =
    spawn_cli ~log:slog
      [| "serve"; "--port"; "0"; "--wal"; "--data-dir"; data |]
  in
  Fun.protect ~finally:(fun () -> kill_and_reap pid) @@ fun () ->
  wait_until "the server to announce its port" (fun () ->
      announced_port slog <> None);
  let port = Option.get (announced_port slog) in
  let c1 =
    spawn_cli ~log:clog
      (connect_argv ~port ~user:"admin"
         "create table T(id integer)\nset %x% = 1")
  in
  check_int "admin write accepted" 0 (reap_exit c1);
  (* The default accounts are live: the analyst is typed-refused DDL
     over the wire, exit 7 end to end. *)
  let c2 =
    spawn_cli ~log:clog
      (connect_argv ~port ~user:"analyst" "create table Z(id integer)")
  in
  check_int "analyst ddl refused with 7" 7 (reap_exit c2);
  let c3 =
    spawn_cli ~log:clog
      (connect_argv ~port ~user:"analyst" "select id from table T where id > 0")
  in
  check_int "analyst read accepted" 0 (reap_exit c3);
  (* SIGTERM: drain, close the WAL, exit 0. *)
  Unix.kill pid Sys.sigterm;
  check_int "graceful exit" 0 (reap_exit pid);
  check_bool "drain announced" true (contains (read_file slog) "draining");
  let rdb = recovered data in
  check_bool "the acked write survived the drain" true
    (Db.find_param rdb "x" = Some (Value.Int 1))

(* ====================================================================
   Headline: the overload chaos drill
   ==================================================================== *)

let chaos_users =
  [ ("boss", Server.Admin); ("analyst", Server.Analyst);
    ("v1", Server.Admin); ("v2", Server.Admin) ]
  @ List.init 6 (fun i -> (Printf.sprintf "w%d" (i + 1), Server.Admin))
  @ List.init 4 (fun i -> (Printf.sprintf "r%d" (i + 1), Server.Analyst))

let test_overload_chaos () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  let clog = Filename.concat base "clients.log" in
  let small = Filename.concat base "small.csv" in
  write_file small (int_csv 2_000);
  let big = Filename.concat base "big.csv" in
  write_file big (int_csv 150_000);
  let config =
    {
      Serve.default_config with
      Serve.max_inflight = 2;
      max_queue = 2;
      per_user_admitted = 2;
      queue_wait_ms = 150;
      retry_after_ms = 50;
    }
  in
  let server = Server.create ~durability:(Session.Wal_dir data) () in
  List.iter
    (fun (name, role) -> Server.add_user server ~name ~role)
    chaos_users;
  let session = Server.session server in
  let db = Session.db session in
  let sv = Serve.start ~config server in
  let port = Serve.port sv in
  let live_pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill_and_reap !live_pids;
      Serve.stop sv)
  @@ fun () ->
  let boss = Client.connect ~port ~user:"boss" () in
  ignore (expect_ok "seed" (Client.run boss "create table KV(id integer)"));
  let spawn_connect ~user exec =
    let pid = spawn_cli ~log:clog (connect_argv ~port ~user exec) in
    live_pids := pid :: !live_pids;
    pid
  in
  (* ---- phase 1: flood a saturated server — typed sheds, no hangs ----
     With the write lock held, the two admitted statements park at the
     database gate and every other arrival must exhaust the queue and
     shed: each of the six clients exits either 0 (admitted, completed
     once the lock released) or 8 (typed shed) — nothing hangs, nothing
     crashes. *)
  let shed_before = shed_total () in
  let p1 =
    with_lock_held db (fun () ->
        let pids =
          List.init 6 (fun i ->
              let i = i + 1 in
              ( i,
                spawn_connect
                  ~user:(Printf.sprintf "w%d" i)
                  (Printf.sprintf "set %%p1_w%d%% = %d" i i) ))
        in
        wait_until "the overload to shed" (fun () -> shed_total () > shed_before);
        pids)
  in
  let p1 = List.map (fun (i, pid) -> (i, reap_exit pid)) p1 in
  List.iter
    (fun (i, code) ->
      if code <> 0 && code <> 8 then
        Alcotest.failf "phase-1 writer %d: untyped exit %d" i code)
    p1;
  check_bool "saturation produced typed sheds" true
    (List.exists (fun (_, code) -> code = 8) p1);
  check_bool "the lock's release drained the admitted writers" true
    (List.exists (fun (_, code) -> code = 0) p1);
  (* ---- phase 2: free-for-all with faults armed (GRAQL_FAULT_SEED
     propagates to the in-process session): slow ingests, readers,
     victims SIGKILLed mid-statement, and a client that tears a frame. *)
  let errors_before = counter_now "serve.protocol_errors" in
  let victims =
    List.map
      (fun i ->
        spawn_connect
          ~user:(Printf.sprintf "v%d" i)
          (Printf.sprintf "ingest table KV '%s'\nset %%v%d%% = 1" big i))
      [ 1; 2 ]
  in
  let writers =
    List.init 6 (fun i ->
        let i = i + 1 in
        ( i,
          spawn_connect
            ~user:(Printf.sprintf "w%d" i)
            (Printf.sprintf "ingest table KV '%s'\nset %%p2_w%d%% = %d" small
               i i) ))
  in
  let readers =
    List.init 4 (fun i ->
        spawn_connect
          ~user:(Printf.sprintf "r%d" (i + 1))
          "select id from table KV where id < 5")
  in
  (* A torn frame mid-flood: hello, half a header, gone. *)
  let drib = dial port in
  raw_hello drib "analyst";
  let framed = Wal.frame (Proto.encode_client Proto.C_shutdown) in
  ignore (Unix.write drib framed 0 5);
  Unix.sleepf 0.2;
  close_quiet drib;
  (* SIGKILL the victims mid-statement; the server must not notice
     beyond a failed reply send. *)
  List.iter
    (fun pid ->
      try Unix.kill pid Sys.sigkill
      with Unix.Unix_error (Unix.ESRCH, _, _) -> ())
    victims;
  List.iter kill_and_reap victims;
  let writers = List.map (fun (i, pid) -> (i, reap_exit pid)) writers in
  let readers = List.map reap_exit readers in
  List.iter
    (fun (i, code) ->
      if code <> 0 && code <> 8 then
        Alcotest.failf "phase-2 writer %d: untyped exit %d" i code)
    writers;
  List.iter
    (fun code ->
      if code <> 0 && code <> 8 then
        Alcotest.failf "reader: untyped exit %d" code)
    readers;
  wait_until "the torn frame to be counted" (fun () ->
      counter_now "serve.protocol_errors" > errors_before);
  (* ---- graceful shutdown: nothing acknowledged is lost ---- *)
  let boss2 = Client.connect ~port ~user:"boss" () in
  let rec fin attempts =
    match Client.run boss2 "set %fin% = 1" with
    | Client.Ok { wal_records; _ } -> wal_records
    | Client.Shed _ when attempts > 0 ->
        Unix.sleepf 0.1;
        fin (attempts - 1)
    | r -> Alcotest.failf "fin was not accepted (exit %d)" (Client.reply_exit_code r)
  in
  check_bool "fin is in the log" true (fin 50 > 0);
  (match Client.shutdown boss2 with
  | Client.Closing _ -> ()
  | _ -> Alcotest.fail "shutdown: expected Closing");
  (* The old boss connection gets a typed answer during the drain. *)
  (match Client.run boss "set %too_late% = 1" with
  | Client.Shed { reason; _ } -> check_str "drain shed" "draining" reason
  | Client.Closing _ -> ()
  | Client.Ok _ -> Alcotest.fail "post-drain write was accepted"
  | Client.Failed { msg; _ } -> Alcotest.failf "post-drain: %s" msg);
  Client.close boss;
  Client.close boss2;
  Serve.stop sv;
  let served = digest db in
  let wal_records =
    match Session.wal session with Some w -> Wal.records w | None -> 0
  in
  check_bool "the drill wrote a real log" true (wal_records > 0);
  Session.close session;
  (* THE invariant: a fresh, sequential replay of the accepted log
     reproduces exactly the state the concurrent server served. *)
  let rdb = recovered data in
  check_str "sequential replay of the accepted log = served state" served
    (digest rdb);
  (* Accepted ⟺ durable, per phase-1/2 writer (victims excluded: their
     acceptance raced the SIGKILL). *)
  List.iter
    (fun (prefix, outcomes) ->
      List.iter
        (fun (i, code) ->
          let param = Printf.sprintf "%s%d" prefix i in
          match code with
          | 0 ->
              check_bool (param ^ " accepted => durable") true
                (Db.find_param rdb param = Some (Value.Int i))
          | _ ->
              check_bool (param ^ " shed => no trace") true
                (Db.find_param rdb param = None))
        outcomes)
    [ ("p1_w", p1); ("p2_w", writers) ];
  check_bool "fin survived the drain" true
    (Db.find_param rdb "fin" = Some (Value.Int 1));
  check_bool "the post-drain write left no trace" true
    (Db.find_param rdb "too_late" = None)

(* ====================================================================
   Distributed tracing acceptance (DESIGN.md §16): one statement issued
   through the wire client against a replicating primary yields ONE
   trace id stitching client → admission → executor → WAL fsync →
   follower apply. Everything runs in-process here, so all five layers
   record into the same ring and parentage is directly checkable; the
   cross-process version of the same assertion (separate rings merged
   with [trace-merge]) lives in the CI trace-propagation job and the
   replication chaos drill. *)

module Follower = Graql_gems.Follower
module Trace = Graql_obs.Trace

let test_trace_stitching () =
  with_temp_dir @@ fun base ->
  let pdir = Filename.concat base "primary" in
  let server = Server.create ~durability:(Session.Wal_dir pdir) () in
  List.iter
    (fun (name, role) -> Server.add_user server ~name ~role)
    default_users;
  let session = Server.session server in
  let wal = Option.get (Session.wal session) in
  let p = Repl.start_primary ~port:0 wal in
  let f = Follower.start ~port:(Repl.primary_port p)
      ~dir:(Filename.concat base "follower") () in
  let sv = Serve.start ~config:Serve.default_config server in
  Trace.clear ();
  Trace.arm ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Follower.stop f;
      Repl.stop_primary p;
      Serve.stop sv;
      Session.close session)
  @@ fun () ->
  let cl = Client.connect ~port:(Serve.port sv) ~user:"admin" () in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  let trace = Trace.new_trace_id () in
  ignore (expect_ok "traced stmt" (Client.run ~trace cl "set %traced% = 1"));
  wait_until "the traced record to reach the follower" (fun () ->
      Follower.offset f = Wal.size wal && Follower.lag_records f = 0);
  let evs = Trace.events_of_trace trace in
  let find name =
    match List.find_opt (fun e -> e.Trace.ev_name = name) evs with
    | Some e -> e
    | None ->
        Alcotest.failf "span %S missing from trace %s (got: %s)" name trace
          (String.concat ", "
             (List.map (fun e -> e.Trace.ev_name) evs))
  in
  let client = find "client.stmt" in
  let admit = find "serve.admit" in
  let stmt = find "serve.stmt" in
  let exec =
    match
      List.find_opt
        (fun e ->
          String.length e.Trace.ev_name > 5
          && String.sub e.Trace.ev_name 0 5 = "stmt:")
        evs
    with
    | Some e -> e
    | None -> Alcotest.fail "executor stmt:* span missing from the trace"
  in
  let append = find "wal.append" in
  let fsync = find "wal.fsync" in
  let apply = find "repl.apply" in
  ignore (find "repl.ship");
  (* Parentage: the client span is the root; admission and execution
     hang off it; the fsync is a child of the append, which happened
     inside the executor's statement span. The follower's apply span
     has no in-ring parent (its parent lives across the "wire") but
     carries the same trace id — that is what stitches the lanes. *)
  check_int "client.stmt is the root" 0 client.Trace.ev_parent;
  check_int "serve.admit hangs off the client span" client.Trace.ev_id
    admit.Trace.ev_parent;
  check_int "serve.stmt hangs off the client span" client.Trace.ev_id
    stmt.Trace.ev_parent;
  check_int "wal.fsync is a child of wal.append" append.Trace.ev_id
    fsync.Trace.ev_parent;
  check_str "executor span carries the trace id" trace exec.Trace.ev_trace;
  check_str "follower apply carries the trace id" trace apply.Trace.ev_trace;
  (* The stitched dump: every span of this statement — and only this
     statement — is in the filtered Chrome-trace export, trace-id-tagged
     and role-labeled for the merged Perfetto view. *)
  let dump = Trace.to_chrome_json ~trace_id:trace ~role:"server" () in
  List.iter
    (fun name ->
      check_bool (Printf.sprintf "dump has %s" name) true
        (let re = Printf.sprintf "\"name\":\"%s\"" name in
         let rec scan i =
           i + String.length re <= String.length dump
           && (String.sub dump i (String.length re) = re || scan (i + 1))
         in
         scan 0))
    [ "client.stmt"; "serve.admit"; "serve.stmt"; "wal.fsync"; "repl.apply";
      "process_name" ];
  (* An untraced control statement must not leak into the trace. *)
  ignore (expect_ok "untraced stmt" (Client.run ~trace:"" cl "set %plain% = 2"));
  let evs' = Trace.events_of_trace trace in
  check_int "the untraced statement added nothing to the trace"
    (List.length evs) (List.length evs')

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "codec round-trips, typed corruption" `Quick
            test_proto_codec;
          Alcotest.test_case "handshake, roles, typed failures" `Quick
            test_handshake_and_roles;
        ] );
      ( "framing",
        [
          Alcotest.test_case "dribbled frames reassemble" `Quick
            test_raw_dribbled_statement;
          Alcotest.test_case "mid-frame disconnect is absorbed" `Quick
            test_raw_mid_frame_disconnect;
          Alcotest.test_case "oversized frame is typed and dropped" `Quick
            test_raw_oversized_frame;
          Alcotest.test_case "slowloris is reaped" `Quick test_slowloris_reaped;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue_full / queue_wait / user_quota" `Quick
            test_admission_sheds;
          Alcotest.test_case "connection cap" `Quick test_connection_cap;
        ] );
      ( "execution",
        [
          Alcotest.test_case "per-statement deadlines reap" `Quick
            test_deadline_reaping;
          Alcotest.test_case "reads run concurrently with writes" `Quick
            test_concurrent_reads_during_writes;
        ] );
      ( "drain",
        [
          Alcotest.test_case "acked writes survive the drain" `Quick
            test_drain_preserves_acked;
        ] );
      ( "cli",
        [
          Alcotest.test_case "serve + connect + SIGTERM drain" `Quick
            test_cli_serve_sigterm_drain;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "overload drill" `Quick test_overload_chaos;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "one trace id stitches client to follower"
            `Quick test_trace_stitching;
        ] );
    ]
