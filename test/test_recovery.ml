(* Deterministic crash-injection harness for the durability subsystem
   (DESIGN.md §9).

   The drill: run the Berlin DDL + ingest under a write-ahead log, then
   simulate a crash at EVERY record boundary — and at mid-record offsets —
   by truncating the log, recover into a fresh database, and require the
   recovered state to be byte-identical (manifest digest) to a clean
   database that applied the same WAL prefix. Corruption that the
   torn-tail rule cannot explain must raise the typed Io error instead of
   recovering silently. The whole matrix runs at 1 and 4 domains. *)

module Db = Graql_engine.Db
module Db_io = Graql_engine.Db_io
module Wal = Graql_engine.Wal
module Ddl_exec = Graql_engine.Ddl_exec
module Script_exec = Graql_engine.Script_exec
module Graql_error = Graql_engine.Graql_error
module Session = Graql_gems.Session
module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Pool = Graql_parallel.Domain_pool
module Berlin_schema = Graql_berlin.Berlin_schema
module Berlin_gen = Graql_berlin.Berlin_gen
module Berlin_queries = Graql_berlin.Berlin_queries
module Value = Graql_storage.Value

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- filesystem helpers ---------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "graql_recovery" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  doc

let write_file path doc =
  let oc = open_out_bin path in
  output_string oc doc;
  close_out oc

let rec copy_dir src dst =
  Sys.mkdir dst 0o700;
  Array.iter
    (fun f ->
      let s = Filename.concat src f and d = Filename.concat dst f in
      if Sys.is_directory s then copy_dir s d else write_file d (read_file s))
    (Sys.readdir src)

(* ---------- state fingerprinting ---------- *)

(* The manifest lists every exported file with its MD5 and size, so its
   digest is a byte-level fingerprint of the whole database state
   (tables, schema DDL, session parameters). *)
let digest db = Digest.to_hex (Digest.string (Db_io.manifest_of_files (Db_io.export_files db)))

let fresh_db () =
  let db = Db.create () in
  Ddl_exec.install db;
  db

let apply_record db = function
  | Wal.R_stmt stmt -> ignore (Script_exec.exec_stmt db stmt)
  | Wal.R_ingest { table; file; doc } ->
      ignore
        (Script_exec.exec_stmt
           ~loader:(fun _ -> doc)
           db
           (Ast.Ingest { ing_table = table; ing_file = file; ing_loc = Loc.dummy }))

(* ---------- the durable Berlin run ---------- *)

let berlin_script =
  Berlin_schema.full_ddl ^ "\n"
  ^ Berlin_schema.ingest_script Berlin_gen.table_files

(* Run the Berlin workload under durability and "crash": abandon the
   session without checkpoint or close, leaving exactly what a SIGKILL
   after the final statement would — every record fsync'd in the WAL. *)
let populate ~domains dir =
  let pool = Pool.create ~domains () in
  let session =
    Session.create ~pool ~durability:(Session.Wal_dir dir)
      ~checkpoint_bytes:max_int ()
  in
  let results =
    Session.run_script ~loader:(Berlin_gen.loader ~scale:1 ()) session
      berlin_script
  in
  List.iter
    (fun (_, outcome) ->
      match outcome with
      | Script_exec.O_failed e ->
          Alcotest.failf "Berlin statement failed: %s" (Graql_error.to_string e)
      | _ -> ())
    results;
  digest (Session.db session)

let wal_path_of dir = Filename.concat dir (Wal.file_name ~epoch:0)

let recover_dir dir =
  let db = fresh_db () in
  let r = Db_io.recover db ~dir in
  (db, r)

(* ---------- the crash matrix ---------- *)

let crash_matrix ~domains () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  let final_digest = populate ~domains data in
  let scan = Wal.scan_file (wal_path_of data) in
  let records = Array.of_list scan.Wal.s_records in
  let boundaries = Array.of_list scan.Wal.s_boundaries in
  check_int "no torn tail after a clean run" 0 scan.Wal.s_torn;
  check_int "one boundary per record, plus the header"
    (Array.length records + 1)
    (Array.length boundaries);
  (* Reference states: digests.(k) fingerprints a clean database that
     applied exactly the first k WAL records. *)
  let digests = Array.make (Array.length records + 1) "" in
  let ref_db = fresh_db () in
  digests.(0) <- digest ref_db;
  Array.iteri
    (fun i r ->
      apply_record ref_db r;
      digests.(i + 1) <- digest ref_db)
    records;
  check_str "replaying the whole log reproduces the session state"
    final_digest
    digests.(Array.length records);
  let crash_at ~label offset ~expect_replayed ~expect_torn =
    let scratch = Filename.concat base "crash" in
    copy_dir data scratch;
    Fun.protect ~finally:(fun () -> rm_rf scratch) @@ fun () ->
    Wal.truncate_file (wal_path_of scratch) offset;
    let db, r = recover_dir scratch in
    check_int (label ^ ": records replayed") expect_replayed
      r.Db_io.rec_replayed;
    if not expect_torn then
      check_int (label ^ ": nothing dropped") 0 r.Db_io.rec_truncated;
    if expect_torn then
      Alcotest.(check bool) (label ^ ": torn bytes dropped") true
        (r.Db_io.rec_truncated > 0);
    check_str
      (label ^ ": byte-identical to the clean prefix")
      digests.(expect_replayed) (digest db)
  in
  (* Every record boundary: a crash exactly between appends. *)
  Array.iteri
    (fun k offset ->
      crash_at
        ~label:(Printf.sprintf "boundary %d/%d" k (Array.length records))
        offset ~expect_replayed:k ~expect_torn:false)
    boundaries;
  (* Mid-record offsets: a crash mid-append leaves a torn tail that must
     be truncated back to the previous boundary. Cut inside the frame
     header, just into the payload, and mid-payload of several records. *)
  let n = Array.length records in
  let mid_cuts =
    List.concat_map
      (fun k ->
        let b = boundaries.(k) and e = boundaries.(k + 1) in
        [ (k, b + 3); (k, b + 9); (k, (b + e) / 2) ])
      [ 0; n / 2; n - 1 ]
  in
  List.iter
    (fun (k, offset) ->
      if offset > boundaries.(k) && offset < boundaries.(k + 1) then
        crash_at
          ~label:(Printf.sprintf "mid-record %d at %d" (k + 1) offset)
          offset ~expect_replayed:k ~expect_torn:true)
    mid_cuts;
  (* A crash inside the 13-byte file header: the partial header is torn
     bytes like any other tail, and recovery restarts empty. *)
  crash_at ~label:"torn header" (Wal.header_size / 2) ~expect_replayed:0
    ~expect_torn:true

(* ---------- corruption that is NOT a torn tail ---------- *)

let test_midfile_corruption () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  ignore (populate ~domains:1 data);
  let scan = Wal.scan_file (wal_path_of data) in
  let boundaries = Array.of_list scan.Wal.s_boundaries in
  Alcotest.(check bool) "enough records to corrupt mid-file" true
    (Array.length boundaries > 4);
  (* Flip one payload byte of the second record: its CRC now fails with
     more log data following — a crash cannot produce that, so recovery
     must refuse with the typed Io error, not silently drop the tail. *)
  let doc = read_file (wal_path_of data) in
  let pos = boundaries.(1) + 8 in
  let b = Bytes.of_string doc in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  write_file (wal_path_of data) (Bytes.to_string b);
  (match recover_dir data with
  | _ -> Alcotest.fail "recovery accepted mid-file corruption"
  | exception Graql_error.Error (Graql_error.Io _) -> ());
  (* Same flip in the header magic: also typed Io. *)
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  Bytes.set b 0 'X';
  write_file (wal_path_of data) (Bytes.to_string b);
  match recover_dir data with
  | _ -> Alcotest.fail "recovery accepted a mangled header"
  | exception Graql_error.Error (Graql_error.Io _) -> ()

(* ---------- checkpoints ---------- *)

let test_checkpoint_fold_and_crash () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  let final_digest = populate ~domains:1 data in
  (* Reopen, checkpoint, and keep going: the log folds into a snapshot,
     the epoch advances, superseded files disappear. *)
  let session =
    Session.create ~durability:(Session.Wal_dir data) ~checkpoint_bytes:max_int ()
  in
  check_str "recovery reproduced the session" final_digest
    (digest (Session.db session));
  Alcotest.(check bool) "checkpoint succeeds" true (Session.checkpoint session);
  Alcotest.(check bool) "epoch-0 WAL deleted" false
    (Sys.file_exists (wal_path_of data));
  Alcotest.(check bool) "epoch-1 WAL live" true
    (Sys.file_exists (Filename.concat data (Wal.file_name ~epoch:1)));
  ignore
    (Session.run_script session "set %after_checkpoint% = 1");
  Session.close session;
  (* Crash after the post-checkpoint statement: recovery = snapshot +
     one-record replay. *)
  let db, r = recover_dir data in
  Alcotest.(check bool) "recovered from the checkpoint" true
    r.Db_io.rec_checkpoint;
  check_int "checkpoint epoch" 1 r.Db_io.rec_epoch;
  check_int "tail replayed on top" 1 r.Db_io.rec_replayed;
  Alcotest.(check bool) "post-checkpoint parameter survives" true
    (Db.find_param db "after_checkpoint" = Some (Value.Int 1));
  (* Crash DURING the post-checkpoint append: truncate the epoch-1 log
     mid-record; state must fall back to exactly the checkpoint. *)
  let wal1 = Filename.concat data (Wal.file_name ~epoch:1) in
  Wal.truncate_file wal1 (Wal.header_size + 2);
  let db2, r2 = recover_dir data in
  check_int "no records survive the torn epoch-1 tail" 0 r2.Db_io.rec_replayed;
  check_str "checkpoint state intact" final_digest (digest db2)

(* ---------- kill after the final statement (acceptance criterion) ---------- *)

let test_kill_then_identical_queries () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  ignore (populate ~domains:1 data);
  (* Survivor: a brand-new durable session over the crashed directory. *)
  let survivor = Session.create ~durability:(Session.Wal_dir data) () in
  (* Clean twin: same workload, never crashed, never durable. *)
  let clean = Session.create () in
  ignore
    (Session.run_script ~loader:(Berlin_gen.loader ~scale:1 ()) clean
       berlin_script);
  List.iter
    (fun session ->
      let db = Session.db session in
      Db.set_param db "Country1" (Value.Str "US");
      Db.set_param db "Country2" (Value.Str "DE"))
    [ survivor; clean ];
  List.iter
    (fun (name, q) ->
      let render session =
        Session.run_script session q
        |> List.map (fun (_, o) ->
               match o with
               | Script_exec.O_table t -> Graql_storage.Table.to_display_string t
               | Script_exec.O_subgraph sg -> Graql_graph.Subgraph.summary sg
               | Script_exec.O_message m -> m
               | Script_exec.O_failed e -> Graql_error.to_string e)
        |> String.concat "\n"
      in
      check_str
        (Printf.sprintf "query %s: identical results after recovery" name)
        (render clean) (render survivor))
    [ ("q1", Berlin_queries.q1); ("eq12", Berlin_queries.eq12_structural) ];
  Session.close survivor

let () =
  Alcotest.run "recovery"
    [
      ( "crash-matrix",
        [
          Alcotest.test_case "1 domain" `Quick (crash_matrix ~domains:1);
          Alcotest.test_case "4 domains" `Quick (crash_matrix ~domains:4);
        ] );
      ( "corruption",
        [ Alcotest.test_case "mid-file" `Quick test_midfile_corruption ] );
      ( "checkpoint",
        [
          Alcotest.test_case "fold and crash" `Quick
            test_checkpoint_fold_and_crash;
        ] );
      ( "kill-after-final-statement",
        [
          Alcotest.test_case "identical Berlin query results" `Quick
            test_kill_then_identical_queries;
        ] );
    ]
