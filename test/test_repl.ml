(* WAL-shipping replication (DESIGN.md §13): socket framing under
   adversarial I/O, follower convergence, checkpoint folding across the
   wire, lag/readiness behaviour, and a kill-the-primary chaos harness
   that SIGKILLs a real primary process at seeded random points during
   the Berlin ingest, then restarts it or promotes the follower.

   Invariants the chaos rounds enforce, independent of the kill point:
   - the follower's log file is always a byte-prefix of the primary's
     valid (torn-tail-truncated) log — replication never invents bytes;
   - after the primary restarts, the follower converges to exactly the
     state a fresh recovery of the primary's directory produces — no
     acknowledged write is lost;
   - a promoted follower becomes a primary whose state is byte-identical
     to what it had applied, and the dead ex-primary can rejoin it: its
     divergent history (writes acknowledged but never shipped) is
     detected by the handshake prefix-CRC and discarded by a full
     snapshot resync. *)

module Db = Graql_engine.Db
module Db_io = Graql_engine.Db_io
module Wal = Graql_engine.Wal
module Ddl_exec = Graql_engine.Ddl_exec
module Graql_error = Graql_engine.Graql_error
module Session = Graql_gems.Session
module Repl = Graql_gems.Repl
module Follower = Graql_gems.Follower
module Telemetry = Graql_gems.Telemetry
module Metrics = Graql_obs.Metrics
module Berlin_schema = Graql_berlin.Berlin_schema
module Berlin_gen = Graql_berlin.Berlin_gen
module Value = Graql_storage.Value
module Rng = Graql_util.Rng
module Trace = Graql_obs.Trace
module Json = Graql_util.Json

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ---------- filesystem helpers ---------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "graql_repl" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  doc

let write_file path doc =
  let oc = open_out_bin path in
  output_string oc doc;
  close_out oc

let rec copy_dir src dst =
  Sys.mkdir dst 0o700;
  Array.iter
    (fun f ->
      let s = Filename.concat src f and d = Filename.concat dst f in
      if Sys.is_directory s then copy_dir s d else write_file d (read_file s))
    (Sys.readdir src)

let wal0 dir = Filename.concat dir (Wal.file_name ~epoch:0)

(* ---------- state fingerprinting ---------- *)

let digest db =
  Digest.to_hex
    (Digest.string (Db_io.manifest_of_files (Db_io.export_files db)))

let fresh_db () =
  let db = Db.create () in
  Ddl_exec.install db;
  db

(* The state a brand-new process would recover from [dir] — copied
   first, because recovery truncates torn tails in place. *)
let recovered_digest base dir =
  let scratch = Filename.concat base "recover_scratch" in
  if Sys.file_exists scratch then rm_rf scratch;
  copy_dir dir scratch;
  Fun.protect
    ~finally:(fun () -> rm_rf scratch)
    (fun () ->
      let db = fresh_db () in
      ignore (Db_io.recover db ~dir:scratch);
      digest db)

(* ---------- polling ---------- *)

let wait_until ?(timeout_s = 30.0) ?(poll_s = 0.01) msg f =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" msg
    else begin
      Unix.sleepf poll_s;
      go ()
    end
  in
  go ()

let counter_now name =
  Option.value ~default:0 (Metrics.find_counter (Metrics.snapshot ()) name)

(* ---------- a bare HTTP client (as in test_http) ---------- *)

let find_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.sub hay i n = needle then Some i
    else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let b = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd b 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf b 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let doc = Buffer.contents buf in
      let status = int_of_string (String.trim (String.sub doc 9 3)) in
      let body =
        match find_sub doc "\r\n\r\n" with
        | Some i -> String.sub doc (i + 4) (String.length doc - i - 4)
        | None -> ""
      in
      (status, body))

(* ====================================================================
   Socket framing: partial writes, short reads, torn streams
   ==================================================================== *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        [ a; b ])
    (fun () -> f a b)

let expect_io label f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a typed Io error" label
  | exception Graql_error.Error (Graql_error.Io _) -> ()

let test_frame_dribble () =
  with_socketpair @@ fun a b ->
  (* A writer that trickles one byte at a time, then a ~1 MiB payload
     through [write_frame] (forcing partial writes against the socket
     buffer): the reader must reassemble both frames exactly. *)
  let small = Bytes.of_string "hello, replication" in
  let big =
    Bytes.init 1_000_000 (fun i -> Char.chr ((i * 31 + (i / 7)) land 0xff))
  in
  let writer =
    Domain.spawn (fun () ->
        let framed = Wal.frame small in
        for i = 0 to Bytes.length framed - 1 do
          ignore (Unix.write a framed i 1)
        done;
        Repl.write_frame a big;
        Unix.close a)
  in
  (match Repl.read_frame b with
  | Some p -> check_str "dribbled frame" (Bytes.to_string small) (Bytes.to_string p)
  | None -> Alcotest.fail "dribbled frame: eof");
  (match Repl.read_frame b with
  | Some p ->
      check_bool "1 MiB frame round-trips" true (Bytes.equal big p)
  | None -> Alcotest.fail "big frame: eof");
  (* Writer closed: clean EOF between frames is None, not an error. *)
  check_bool "clean eof is None" true (Repl.read_frame b = None);
  Domain.join writer

let test_frame_mid_eof () =
  with_socketpair @@ fun a b ->
  let framed = Wal.frame (Bytes.of_string "doomed") in
  ignore (Unix.write a framed 0 5);
  Unix.close a;
  expect_io "eof mid-frame" (fun () -> Repl.read_frame b)

let test_frame_bad_crc () =
  with_socketpair @@ fun a b ->
  let framed = Wal.frame (Bytes.of_string "checksummed") in
  Bytes.set framed 8 (Char.chr (Char.code (Bytes.get framed 8) lxor 0xff));
  ignore (Unix.write a framed 0 (Bytes.length framed));
  Unix.close a;
  expect_io "corrupted crc" (fun () -> Repl.read_frame b)

let test_frame_oversize () =
  with_socketpair @@ fun a b ->
  let hdr = Bytes.create 8 in
  Bytes.set_int32_le hdr 0 (Int32.of_int (Repl.max_frame_bytes + 1));
  Bytes.set_int32_le hdr 4 0l;
  ignore (Unix.write a hdr 0 8);
  expect_io "oversized length" (fun () -> Repl.read_frame b)

let test_message_codec () =
  let messages =
    [
      Repl.Hello { epoch = 3; offset = 4096; crc = 0xDEADBEEFl };
      Repl.Hello { epoch = 0; offset = 0; crc = 0l };
      Repl.Wal_chunk
        { epoch = 1; offset = 13; records = 7; data = Bytes.of_string "\x00\xffpayload" };
      Repl.Wal_chunk { epoch = 0; offset = 13; records = 0; data = Bytes.create 0 };
      Repl.Advance { epoch = 2 };
      Repl.Snapshot
        {
          epoch = 5;
          files = [ ("checkpoint-000005/MANIFEST", "m\n"); ("wal-000005.log", "w") ];
        };
      Repl.Ack { epoch = 9; offset = 1 lsl 40 };
    ]
  in
  List.iter
    (fun m ->
      check_bool "codec round-trip" true
        (Repl.decode_message (Repl.encode_message m) = m))
    messages;
  (* And through a real socket. *)
  with_socketpair @@ fun a b ->
  List.iter (Repl.send_message a) messages;
  List.iter
    (fun m -> check_bool "socket round-trip" true (Repl.recv_message b = Some m))
    messages;
  Unix.close a;
  check_bool "socket eof" true (Repl.recv_message b = None);
  expect_io "garbage payload" (fun () ->
      Repl.decode_message (Bytes.of_string "\xff\xff\xff"))

(* ====================================================================
   Torn-tail observability (satellite: wal.torn_tail counter)
   ==================================================================== *)

let test_torn_tail_counter () =
  with_temp_dir @@ fun base ->
  let data = Filename.concat base "db" in
  let session =
    Session.create ~durability:(Session.Wal_dir data) ~checkpoint_bytes:max_int
      ()
  in
  ignore (Session.run_script session "set %a% = 1\nset %b% = 2");
  Session.close session;
  let scan = Wal.scan_file (wal0 data) in
  let last = scan.Wal.s_valid_end in
  Wal.truncate_file (wal0 data) (last - 3);
  let before = counter_now "wal.torn_tail" in
  let db = fresh_db () in
  let r = Db_io.recover db ~dir:data in
  check_bool "torn bytes dropped" true (r.Db_io.rec_truncated > 0);
  check_int "one record lost" 1 r.Db_io.rec_replayed;
  check_int "wal.torn_tail counted the truncation" (before + 1)
    (counter_now "wal.torn_tail")

(* ====================================================================
   In-process replication: stream, fold, resync, reconnect
   ==================================================================== *)

let berlin_script =
  Berlin_schema.full_ddl ^ "\n"
  ^ Berlin_schema.ingest_script Berlin_gen.table_files

let converged ~wal f =
  Follower.epoch f = Wal.epoch wal
  && Follower.offset f = Wal.size wal
  && Follower.lag_records f = 0
  && Follower.lag_bytes f = 0

let test_stream_fold_resync_reconnect () =
  with_temp_dir @@ fun base ->
  let pdir = Filename.concat base "primary" in
  let session =
    Session.create ~durability:(Session.Wal_dir pdir) ~checkpoint_bytes:max_int
      ()
  in
  let wal = Option.get (Session.wal session) in
  let p = ref (Repl.start_primary ~port:0 wal) in
  let followers = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter Follower.stop !followers;
      Repl.stop_primary !p;
      Session.close session)
  @@ fun () ->
  let port = Repl.primary_port !p in
  let fdir = Filename.concat base "f1" in
  let f1 = Follower.start ~port ~dir:fdir () in
  followers := [ f1 ];
  (* Live stream: the whole Berlin workload, shipped record by record. *)
  ignore
    (Session.run_script ~loader:(Berlin_gen.loader ~scale:1 ()) session
       berlin_script);
  wait_until "berlin to replicate" (fun () -> converged ~wal f1);
  check_str "replica state is byte-identical" (digest (Session.db session))
    (digest (Follower.db f1));
  check_str "log files are byte-identical" (read_file (wal0 pdir))
    (read_file (wal0 fdir));
  check_int "one follower" 1 (Repl.follower_count !p);
  let psize = Wal.size wal in
  wait_until "ack to drain" (fun () -> Repl.min_acked !p = Some (0, psize));
  let status = Repl.status_json !p in
  check_bool "primary status role" true (contains status "\"role\":\"primary\"");
  check_bool "primary status lists the follower" true
    (contains status "\"acked_offset\"");
  (* Checkpoint: the epoch advance ships as a marker and the follower
     folds its own copy — deterministic export, so the checkpoints are
     byte-identical, and the superseded log disappears on both sides. *)
  check_bool "checkpoint succeeds" true (Session.checkpoint session);
  wait_until "epoch to advance on the follower" (fun () ->
      Follower.epoch f1 = 1 && converged ~wal f1);
  let manifest dir =
    read_file
      (Filename.concat dir
         (Filename.concat (Db_io.checkpoint_dir_name ~epoch:1)
            Db_io.manifest_name))
  in
  check_str "checkpoint manifests are byte-identical" (manifest pdir)
    (manifest fdir);
  check_bool "superseded log deleted on the follower" false
    (Sys.file_exists (wal0 fdir));
  ignore (Session.run_script session "set %after_checkpoint% = 42");
  wait_until "post-checkpoint record" (fun () -> converged ~wal f1);
  check_bool "post-checkpoint write visible on the replica" true
    (Db.find_param (Follower.db f1) "after_checkpoint" = Some (Value.Int 42));
  (* Late joiner: empty directory at epoch 1 — must be served a full
     snapshot resync, and still end byte-identical. *)
  let snapshots_before = counter_now "repl.snapshots" in
  let f2 = Follower.start ~port ~dir:(Filename.concat base "f2") () in
  followers := f2 :: !followers;
  wait_until "late joiner to converge" (fun () ->
      Follower.epoch f2 = 1 && converged ~wal f2);
  check_str "late joiner state is byte-identical" (digest (Session.db session))
    (digest (Follower.db f2));
  check_bool "late joiner was snapshot-resynced" true
    (counter_now "repl.snapshots" > snapshots_before);
  check_int "two followers" 2 (Repl.follower_count !p);
  (* Primary restart: stop the replication endpoint, keep writing, bring
     it back on the same port — followers reconnect and catch up from
     their durable offset (the in-epoch, prefix-CRC-verified path). *)
  Repl.stop_primary !p;
  wait_until "followers to notice the outage" (fun () ->
      (not (Follower.connected f1)) && not (Follower.connected f2));
  ignore (Session.run_script session "set %while_down% = 7");
  p := Repl.start_primary ~port wal;
  wait_until "followers to reconnect and catch up" (fun () ->
      converged ~wal f1 && converged ~wal f2
      && Db.find_param (Follower.db f1) "while_down" = Some (Value.Int 7)
      && Db.find_param (Follower.db f2) "while_down" = Some (Value.Int 7));
  check_bool "f1 reconnected" true (Follower.connects f1 >= 2);
  check_str "states converge after the outage" (digest (Session.db session))
    (digest (Follower.db f1))

(* ---------- lag, readiness and the HTTP surface ---------- *)

let test_lag_readiness_endpoints () =
  with_temp_dir @@ fun base ->
  let pdir = Filename.concat base "primary" in
  let session =
    Session.create ~durability:(Session.Wal_dir pdir) ~checkpoint_bytes:max_int
      ()
  in
  let wal = Option.get (Session.wal session) in
  let p = Repl.start_primary ~port:0 wal in
  let f =
    Follower.start ~max_lag:2
      ~port:(Repl.primary_port p)
      ~dir:(Filename.concat base "f")
      ()
  in
  let ftel = Telemetry.start_follower ~port:0 f in
  let ptel = Telemetry.start ~port:0 session in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.stop ptel;
      Telemetry.stop ftel;
      Follower.stop f;
      Repl.stop_primary p;
      Session.close session)
  @@ fun () ->
  ignore (Session.run_script session "set %warmup% = 1");
  wait_until "warmup record" (fun () -> converged ~wal f);
  let st, _ = http_get (Telemetry.port ftel) "/readyz" in
  check_int "caught-up follower is ready" 200 st;
  (* /replication: live on the follower server; 404 on the primary's
     until a provider is installed. *)
  let st, body = http_get (Telemetry.port ftel) "/replication" in
  check_int "follower /replication" 200 st;
  check_bool "follower role in payload" true
    (contains body "\"role\":\"follower\"");
  let st, _ = http_get (Telemetry.port ptel) "/replication" in
  check_int "unconfigured /replication is 404" 404 st;
  Telemetry.set_replication ptel (Some (fun () -> Repl.status_json p));
  let st, body = http_get (Telemetry.port ptel) "/replication" in
  check_int "primary /replication" 200 st;
  check_bool "primary role in payload" true
    (contains body "\"role\":\"primary\"");
  (* Pause application: the mirror keeps acking (no durability gap) but
     state staleness grows past max_lag and readiness flips. *)
  Follower.pause f;
  ignore
    (Session.run_script session
       "set %l1% = 1\nset %l2% = 2\nset %l3% = 3\nset %l4% = 4\nset %l5% = 5");
  wait_until "lag to build up" (fun () ->
      Follower.lag_records f >= 5 && Follower.lag_bytes f = 0);
  check_bool "paused follower is stale" false (Follower.is_ready f);
  let st, body = http_get (Telemetry.port ftel) "/readyz" in
  check_int "lagging follower answers 503" 503 st;
  check_bool "503 body names the lag" true (contains body "lagging");
  let _, body = http_get (Telemetry.port ftel) "/metrics" in
  check_bool "lag gauge exported" true (contains body "graql_repl_lag_records");
  check_bool "applied counter exported" true
    (contains body "graql_repl_applied_records_total");
  (* Resume: buffered records apply in order; readiness returns. *)
  Follower.resume f;
  wait_until "resume to drain the buffer" (fun () ->
      Follower.is_ready f && converged ~wal f);
  let st, _ = http_get (Telemetry.port ftel) "/readyz" in
  check_int "ready again" 200 st;
  check_str "paused writes applied in order" (digest (Session.db session))
    (digest (Follower.db f))

(* ====================================================================
   Chaos: SIGKILL a real primary process at seeded random points
   ==================================================================== *)

let graql_bin =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "graql_cli.exe")

let reserve_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

(* Run the CLI as a real primary: recover [pdir], execute [script]
   (resolved against [pdir]), keep replicating for up to a minute.
   Auto-checkpointing is pushed out of the way so the chaos rounds stay
   in epoch 0 and the log comparisons are byte-for-byte. *)
let spawn_primary ~pdir ~port ~log script =
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let env =
    Array.append
      (Array.of_seq
         (Seq.filter
            (fun kv ->
              not (String.length kv >= 22
                   && String.sub kv 0 22 = "GRAQL_CHECKPOINT_BYTES"))
            (Array.to_seq (Unix.environment ()))))
      [| "GRAQL_CHECKPOINT_BYTES=1073741824";
         (* Arm tracing in the primary process: every statement gets a
            trace id, and WAL records ship it to the follower — the
            chaos rounds then assert the ids survive kills/failover. *)
         "GRAQL_TRACE=1" |]
  in
  let pid =
    Unix.create_process_env graql_bin
      [|
        graql_bin; "run";
        Filename.concat pdir script;
        "--data-dir"; pdir;
        "--wal";
        "--replicate"; string_of_int port;
        "--serve-ms"; "60000";
      |]
      env null logfd logfd
  in
  Unix.close null;
  Unix.close logfd;
  pid

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  try ignore (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let can_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
      | () -> true
      | exception Unix.Unix_error (_, _, _) -> false)

let wal_size_now path =
  match Unix.stat path with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0

(* The acked-prefix invariant: whatever the follower holds is a byte
   prefix of the primary's valid log region — shipping happens only
   after the primary's fsync, so a replica can trail but never invent. *)
let check_prefix_invariant ~pdir ~fdir =
  let pscan = Wal.scan_file (wal0 pdir) in
  let fbytes = if Sys.file_exists (wal0 fdir) then read_file (wal0 fdir) else "" in
  check_bool "follower never ahead of the primary's durable log" true
    (String.length fbytes <= pscan.Wal.s_valid_end);
  if String.length fbytes > 0 then
    check_str "follower log is a byte-prefix of the primary's"
      (String.sub (read_file (wal0 pdir)) 0 (String.length fbytes))
      fbytes

let test_chaos_kill_the_primary () =
  with_temp_dir @@ fun base ->
  (* Learn the clean run's log size so the kill threshold can land at a
     seeded random point in the middle of the ingest. *)
  let clean = Filename.concat base "clean" in
  let s =
    Session.create ~durability:(Session.Wal_dir clean)
      ~checkpoint_bytes:max_int ()
  in
  ignore
    (Session.run_script ~loader:(Berlin_gen.loader ~scale:1 ()) s berlin_script);
  Session.close s;
  let w_total = wal_size_now (wal0 clean) in
  check_bool "clean berlin run produced a log" true
    (w_total > 10 * Wal.header_size);
  let rng = Rng.make 0xC4A05 in
  let port = reserve_port () in
  let log = Filename.concat base "primary.log" in
  let pdir = Filename.concat base "primary" in
  Sys.mkdir pdir 0o700;
  List.iter
    (fun (name, doc) -> write_file (Filename.concat pdir name) doc)
    (Berlin_gen.csv_files ~scale:1 ());
  write_file (Filename.concat pdir "berlin.graql") berlin_script;
  write_file (Filename.concat pdir "again.graql") "set %restarted% = 1\n";
  write_file (Filename.concat pdir "orphan.graql") "set %orphan% = 1\n";
  let fdir = Filename.concat base "follower" in
  (* Trace the whole drill: the primary process runs with GRAQL_TRACE=1
     (statement trace ids ride its WAL records), and arming this
     process's ring makes the follower record [repl.apply] spans under
     those ids — crossing both the wire and the SIGKILL. *)
  Trace.clear ();
  Trace.arm ();
  let f = Follower.start ~port ~dir:fdir () in
  let live_pid = ref None in
  Fun.protect
    ~finally:(fun () ->
      Trace.disarm ();
      Option.iter kill_and_reap !live_pid;
      Follower.stop f)
  @@ fun () ->
  (* -------- round 1: SIGKILL mid-ingest, follower streaming -------- *)
  let threshold = Rng.int_in rng (w_total / 5) (4 * w_total / 5) in
  let pid = spawn_primary ~pdir ~port ~log "berlin.graql" in
  live_pid := Some pid;
  (* Arm the kill only once the follower is actually streaming, so the
     crash hits a live replication session, not an empty retry loop. *)
  wait_until "primary to bind its replication port" (fun () ->
      can_connect port);
  wait_until "follower to connect" (fun () -> Follower.connected f);
  wait_until ~poll_s:0.001
    (Printf.sprintf "log to reach the kill threshold (%d bytes)" threshold)
    (fun () -> wal_size_now (wal0 pdir) >= threshold);
  kill_and_reap pid;
  live_pid := None;
  wait_until "follower to notice the crash" (fun () ->
      not (Follower.connected f));
  check_prefix_invariant ~pdir ~fdir;
  (* -------- round 2: restart on the same port, converge -------- *)
  let pid = spawn_primary ~pdir ~port ~log "again.graql" in
  live_pid := Some pid;
  wait_until "follower to reconnect and replay the restart"
    (fun () ->
      Follower.connected f
      && Follower.lag_records f = 0
      && Follower.lag_bytes f = 0
      && Db.find_param (Follower.db f) "restarted" = Some (Value.Int 1));
  check_bool "at least one reconnect" true (Follower.connects f >= 2);
  (* No acknowledged write lost: the replica's state equals a fresh
     recovery of the primary's own directory, byte for byte. *)
  check_str "replica state = recovered primary state"
    (recovered_digest base pdir)
    (digest (Follower.db f));
  check_str "log files byte-identical after the restart"
    (read_file (wal0 pdir)) (read_file (wal0 fdir));
  kill_and_reap pid;
  live_pid := None;
  (* -------- round 3: diverge the dead primary, promote the follower
     -------- *)
  (* The ex-primary takes one more acknowledged write with nobody
     replicating it: that write is durable in pdir only. *)
  Follower.stop f;
  let size_before = wal_size_now (wal0 pdir) in
  let pid = spawn_primary ~pdir ~port ~log "orphan.graql" in
  live_pid := Some pid;
  wait_until "orphan write to land" (fun () ->
      wal_size_now (wal0 pdir) > size_before);
  kill_and_reap pid;
  live_pid := None;
  (* Promotion = plain recovery of the follower's directory. *)
  let before_promotion = digest (Follower.db f) in
  let promoted =
    Session.create ~durability:(Session.Wal_dir fdir) ~checkpoint_bytes:max_int
      ()
  in
  Fun.protect ~finally:(fun () -> Session.close promoted) @@ fun () ->
  check_str "promotion loses nothing the follower had applied"
    before_promotion
    (digest (Session.db promoted));
  ignore (Session.run_script promoted "set %promoted% = 1");
  let pwal = Option.get (Session.wal promoted) in
  let np = Repl.start_primary ~port:0 pwal in
  Fun.protect ~finally:(fun () -> Repl.stop_primary np) @@ fun () ->
  (* The dead ex-primary rejoins as a follower of its former replica.
     Same epoch, plausible offset — but its history diverged (the orphan
     write), so the handshake prefix-CRC must force a snapshot resync
     rather than splice two different histories. *)
  let snapshots_before = counter_now "repl.snapshots" in
  let f2 = Follower.start ~port:(Repl.primary_port np) ~dir:pdir () in
  Fun.protect ~finally:(fun () -> Follower.stop f2) @@ fun () ->
  wait_until "ex-primary to converge on the new primary" (fun () ->
      converged ~wal:pwal f2
      && Db.find_param (Follower.db f2) "promoted" = Some (Value.Int 1));
  check_bool "divergent history forced a snapshot resync" true
    (counter_now "repl.snapshots" > snapshots_before);
  check_bool "the unreplicated orphan write is gone" true
    (Db.find_param (Follower.db f2) "orphan" = None);
  check_str "old and new primaries converge"
    (digest (Session.db promoted))
    (digest (Follower.db f2));
  check_str "their log files converge too" (read_file (wal0 fdir))
    (read_file (wal0 pdir));
  (* -------- satellite: trace continuity across the kill --------
     Statements the SIGKILLed primary traced were applied here under
     the trace ids its WAL records carried. After the failover, one
     such id must still yield a parseable merged Chrome-trace dump
     whose events all carry that single id. *)
  let traced_applies =
    List.filter
      (fun e -> e.Trace.ev_name = "repl.apply" && e.Trace.ev_trace <> "")
      (Trace.events ())
  in
  if traced_applies = [] then begin
    let evs = Trace.events () in
    let applies =
      List.filter (fun e -> e.Trace.ev_name = "repl.apply") evs
    in
    Alcotest.failf
      "no traced repl.apply: %d events total, %d repl.apply, names: %s"
      (List.length evs) (List.length applies)
      (String.concat ","
         (List.sort_uniq compare (List.map (fun e -> e.Trace.ev_name) evs)))
  end;
  let tid = (List.hd traced_applies).Trace.ev_trace in
  let merged =
    Trace.merge_dumps
      [
        Trace.to_chrome_json ~trace_id:tid ~role:"follower" ();
        Trace.to_chrome_json ~trace_id:tid ~role:"promoted-primary" ();
      ]
  in
  let doc =
    match Json.parse merged with
    | Ok doc -> doc
    | Error msg -> Alcotest.failf "merged trace dump unparseable: %s" msg
  in
  let entries = Option.value (Json.to_list doc) ~default:[] in
  check_bool "merged dump has events" true (entries <> []);
  let stamped = ref 0 in
  List.iter
    (fun ev ->
      match
        Option.bind (Json.member "args" ev) (fun a -> Json.member "trace_id" a)
      with
      | Some t ->
          incr stamped;
          check_str "every merged event carries the one trace id" tid
            (Option.value (Json.to_string_opt t) ~default:"")
      | None -> () (* process_name metadata rows carry no trace id *))
    entries;
  check_bool "the merged dump contains the traced spans" true (!stamped > 0)

let () =
  Alcotest.run "repl"
    [
      ( "framing",
        [
          Alcotest.test_case "dribbled writes reassemble" `Quick
            test_frame_dribble;
          Alcotest.test_case "eof mid-frame is typed Io" `Quick
            test_frame_mid_eof;
          Alcotest.test_case "corrupted crc is typed Io" `Quick
            test_frame_bad_crc;
          Alcotest.test_case "oversized length is typed Io" `Quick
            test_frame_oversize;
          Alcotest.test_case "message codec round-trips" `Quick
            test_message_codec;
        ] );
      ( "torn-tail",
        [
          Alcotest.test_case "truncation is counted" `Quick
            test_torn_tail_counter;
        ] );
      ( "replication",
        [
          Alcotest.test_case "stream, fold, resync, reconnect" `Quick
            test_stream_fold_resync_reconnect;
          Alcotest.test_case "lag, readiness, endpoints" `Quick
            test_lag_readiness_endpoints;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill the primary" `Quick
            test_chaos_kill_the_primary;
        ] );
    ]
