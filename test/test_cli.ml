(* Golden tests for the CLI's stable per-class exit codes: every
   [Graql_error] class maps to a documented code (2 parse … 8 io), and the
   binary actually produces them — including the new Io corruption path a
   mangled write-ahead log must take. *)

module Graql_error = Graql_engine.Graql_error
module Loc = Graql_lang.Loc
module Server = Graql_gems.Server

let check_int = Alcotest.(check int)

(* The graql binary sits next to this test runner in the build tree:
   _build/default/test/test_cli.exe -> _build/default/bin/graql_cli.exe.
   The dune rule depends on it, so it is always built first. *)
let graql_bin =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "graql_cli.exe")

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "graql_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let write_file path doc =
  let oc = open_out_bin path in
  output_string oc doc;
  close_out oc

let run_graql args =
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  Sys.command
    (Filename.quote_command graql_bin ~stdout:null ~stderr:null args)

(* ---------- the mapping itself ---------- *)

let test_exit_code_mapping () =
  let cases =
    [
      (Graql_error.Parse (Loc.dummy, "x"), 2);
      (Graql_error.Analysis [], 3);
      (Graql_error.Exec (Loc.dummy, "x"), 4);
      (Graql_error.Exec_fault { site = "s/0"; attempts = 3 }, 5);
      (Graql_error.Timeout { deadline_ms = 1 }, 6);
      (Graql_error.Denied "x", 7);
      (Graql_error.Io "x", 8);
    ]
  in
  List.iter
    (fun (err, code) ->
      check_int (Graql_error.to_string err) code (Graql_error.exit_code err))
    cases

(* ---------- binary-level golden runs ---------- *)

let script dir name doc =
  let path = Filename.concat dir name in
  write_file path doc;
  path

let test_exit_ok () =
  with_temp_dir @@ fun dir ->
  write_file (Filename.concat dir "t.csv") "id\n1\n2\n";
  let s =
    script dir "ok.graql"
      "create table T(id integer)\n\
       ingest table T t.csv\n\
       select id from table T where id > 0\n"
  in
  check_int "clean run exits 0" 0 (run_graql [ "run"; s; "--data-dir"; dir ])

let test_exit_parse () =
  with_temp_dir @@ fun dir ->
  let s = script dir "bad.graql" "create banana;;\n" in
  check_int "parse error exits 2" 2 (run_graql [ "run"; s ])

let test_exit_analysis () =
  with_temp_dir @@ fun dir ->
  let s = script dir "bad.graql" "select x from table Nope where 1 = 1\n" in
  check_int "analysis error exits 3" 3 (run_graql [ "run"; s ])

let test_exit_exec () =
  with_temp_dir @@ fun dir ->
  (* The header does not match the declared schema: the statement fails
     at runtime, after analysis accepted it. *)
  write_file (Filename.concat dir "bad.csv") "id,unexpected\n1,2\n";
  let s =
    script dir "bad.graql"
      "create table T(id integer)\ningest table T bad.csv\n"
  in
  check_int "execution error exits 4" 4
    (run_graql [ "run"; s; "--data-dir"; dir ])

let test_exit_timeout () =
  check_int "expired deadline exits 6" 6
    (run_graql
       [ "berlin"; "--scale"; "1"; "--query"; "q1"; "--deadline-ms"; "1" ])

let test_exit_io_corrupt_wal () =
  with_temp_dir @@ fun dir ->
  let data = Filename.concat dir "db" in
  Sys.mkdir data 0o700;
  (* A log whose magic is mangled cannot be explained by a crash:
     session creation must refuse it with the Io exit code, not
     silently start an empty database over it. *)
  write_file
    (Filename.concat data "wal-000000.log")
    "XXXXXXXX\x01\x00\x00\x00\x00";
  let s = script dir "t.graql" "set %x% = 1\n" in
  check_int "corrupt WAL exits 8" 8
    (run_graql [ "run"; s; "--wal"; "--data-dir"; data ])

let test_wal_roundtrip_via_cli () =
  with_temp_dir @@ fun dir ->
  let data = Filename.concat dir "db" in
  let s1 = script dir "ddl.graql" "create table T(id integer)\n" in
  check_int "durable run exits 0" 0
    (run_graql [ "run"; s1; "--wal"; "--data-dir"; data ]);
  (* The second process recovers the WAL: re-declaring T must now be an
     analysis error — proof the state came back. *)
  check_int "recovered state rejects duplicate DDL" 3
    (run_graql [ "run"; s1; "--wal"; "--data-dir"; data ]);
  let s2 = script dir "more.graql" "set %x% = 1\n" in
  check_int "checkpoint flag exits 0" 0
    (run_graql [ "run"; s2; "--wal"; "--data-dir"; data; "--checkpoint" ]);
  check_int "post-checkpoint recovery still rejects duplicate DDL" 3
    (run_graql [ "run"; s1; "--wal"; "--data-dir"; data ])

let test_fault_seed_recovers () =
  with_temp_dir @@ fun dir ->
  write_file (Filename.concat dir "t.csv") "id\n1\n2\n3\n4\n";
  let s =
    script dir "t.graql"
      "create table T(id integer)\n\
       ingest table T t.csv\n\
       select id from table T where id > 1\n"
  in
  check_int "injected transient faults are absorbed (exit 0)" 0
    (run_graql [ "run"; s; "--data-dir"; dir; "--fault-seed"; "7" ])

(* Denied (7) has no CLI surface — roles exist only on the server API —
   so exercise the class end-to-end at the library level. *)
let test_denied_class () =
  let server = Server.create () in
  Server.add_user server ~name:"ana" ~role:Server.Analyst;
  let conn = Server.connect server ~user:"ana" in
  match Server.run conn "create table T(id integer)" with
  | _ -> Alcotest.fail "analyst ran DDL"
  | exception Graql_error.Error e ->
      check_int "denied maps to exit 7" 7 (Graql_error.exit_code e)

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "error class mapping" `Quick test_exit_code_mapping;
          Alcotest.test_case "0: success" `Quick test_exit_ok;
          Alcotest.test_case "2: parse" `Quick test_exit_parse;
          Alcotest.test_case "3: analysis" `Quick test_exit_analysis;
          Alcotest.test_case "4: execution" `Quick test_exit_exec;
          Alcotest.test_case "6: timeout" `Quick test_exit_timeout;
          Alcotest.test_case "7: denied (library)" `Quick test_denied_class;
          Alcotest.test_case "8: io / corrupt WAL" `Quick
            test_exit_io_corrupt_wal;
        ] );
      ( "durability",
        [
          Alcotest.test_case "wal round-trip across processes" `Quick
            test_wal_roundtrip_via_cli;
          Alcotest.test_case "fault seed absorbed" `Quick
            test_fault_seed_recovers;
        ] );
    ]
