(* The SNB deep-traversal scenario end-to-end: generator determinism,
   ingest shape, and the traversal queries' answers against independent
   CSV oracles — under both regex engines and at several domain counts. *)

module Session = Graql_gems.Session
module Db = Graql_engine.Db
module Script_exec = Graql_engine.Script_exec
module Path_exec = Graql_engine.Path_exec
module Pack = Graql_engine.Pack
module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Subgraph = Graql_graph.Subgraph
module Graph_store = Graql_graph.Graph_store
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Ast = Graql_lang.Ast
module Gen = Graql_snb.Snb_gen
module Queries = Graql_snb.Snb_queries
module Reference = Graql_snb.Snb_reference

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ids = Alcotest.(check (list string))

let sessions : (int * int, Session.t) Hashtbl.t = Hashtbl.create 4

let session ?(seed = 42) ~scale () =
  match Hashtbl.find_opt sessions (seed, scale) with
  | Some s -> s
  | None ->
      let s = Session.create () in
      Gen.ingest_all ~seed ~scale s;
      Hashtbl.replace sessions (seed, scale) s;
      s

let set_param s name v = Db.set_param (Session.db s) name (Value.Str v)

(* Run a path AST and return the sorted distinct key strings of the last
   slot (the regex endpoint / final step). *)
let endpoints_of db path ~edges_needed =
  let res =
    Path_exec.run_multipath ~db
      ~params:(fun _ -> None)
      ~mode:Path_exec.Keep_all ~edges_needed (Ast.M_path path)
  in
  match res.Path_exec.comps with
  | [ c ] ->
      let col = Array.length c.Path_exec.slots - 1 in
      let u = res.Path_exec.universe in
      List.sort_uniq compare
        (Array.to_list
           (Array.map
              (fun row ->
                let cell = row.(col) in
                Vset.key_string (Pack.vset_of u cell) (Pack.id cell))
              c.Path_exec.rows))
  | _ -> Alcotest.fail "one component expected"

(* Full observable state of a run: every row in display order, and the
   noted regex edges — the byte-parity unit for engine comparisons. The
   planner may reverse an endpoint-only regex traversal, which permutes
   the internal slot layout, so rows are normalised to display order
   (slot [s_step]) and sorted before comparison. *)
let raw_result db path ~edges_needed =
  let res =
    Path_exec.run_multipath ~db
      ~params:(fun _ -> None)
      ~mode:Path_exec.Keep_all ~edges_needed (Ast.M_path path)
  in
  let comps =
    List.map
      (fun (c : Path_exec.component) ->
        let order =
          List.sort
            (fun a b ->
              compare c.Path_exec.slots.(a).Path_exec.s_step
                c.Path_exec.slots.(b).Path_exec.s_step)
            (List.init (Array.length c.Path_exec.slots) Fun.id)
        in
        List.sort compare
          (Array.to_list
             (Array.map
                (fun row -> List.map (fun i -> row.(i)) order)
                c.Path_exec.rows)))
      res.Path_exec.comps
  in
  (* Noted edges are observable only when the query needs them (star
     subgraph capture); endpoint-only plans may legitimately skip the
     bookkeeping. *)
  ( comps,
    if edges_needed then List.sort compare res.Path_exec.regex_edges else [] )

let with_engine automaton f =
  let saved = !Path_exec.use_automaton in
  Path_exec.use_automaton := automaton;
  Fun.protect ~finally:(fun () -> Path_exec.use_automaton := saved) f

(* ------------------------------------------------------------------ *)

let test_generator_deterministic () =
  check "same seed identical" true
    (Gen.csv_files ~seed:1 ~scale:1 () = Gen.csv_files ~seed:1 ~scale:1 ());
  check "seed changes data" true
    (Gen.csv_files ~seed:1 ~scale:1 () <> Gen.csv_files ~seed:2 ~scale:1 ())

let test_ingest_counts () =
  let s = session ~scale:1 () in
  let db = Session.db s in
  let c = Gen.counts ~scale:1 in
  check_int "people" c.Gen.n_people
    (Table.nrows (Db.find_table_exn db "People"));
  check_int "posts" c.Gen.n_posts (Table.nrows (Db.find_table_exn db "Posts"));
  check_int "comments" c.Gen.n_comments
    (Table.nrows (Db.find_table_exn db "Comments"));
  let g = Db.graph db in
  check_int "person vertices" c.Gen.n_people
    (Vset.size (Graph_store.find_vset_exn g "Person"));
  check "knows edges exist" true
    (Eset.size (Graph_store.find_eset_exn g "knows") > 0);
  check "reply chains exist" true
    (Eset.size (Graph_store.find_eset_exn g "replyOfComment") > 0)

let test_knows_plus_vs_oracle () =
  let s = session ~scale:1 () in
  let db = Session.db s in
  let person = Reference.hub_person ~scale:1 () in
  let oracle = Reference.knows_plus ~scale:1 ~person () in
  check "oracle non-trivial" true (List.length oracle > 2);
  check_ids "knows+ (edges observed)" oracle
    (endpoints_of db (Queries.path_knows_plus ~person) ~edges_needed:true);
  check_ids "knows+ (endpoints only)" oracle
    (endpoints_of db (Queries.path_knows_plus ~person) ~edges_needed:false);
  check_ids "knows*" (Reference.knows_star ~scale:1 ~person ())
    (endpoints_of db (Queries.path_knows_star ~person) ~edges_needed:true)

let test_knows_knows_plus_vs_oracle () =
  let s = session ~scale:1 () in
  let db = Session.db s in
  let person = Reference.hub_person ~scale:1 () in
  let oracle = Reference.knows_knows_plus ~scale:1 ~person () in
  check "oracle non-trivial" true (oracle <> []);
  check_ids "(knows knows)+" oracle
    (endpoints_of db (Queries.path_knows_knows_plus ~person) ~edges_needed:true)

let test_reply_chain_vs_oracle () =
  let s = session ~scale:1 () in
  let db = Session.db s in
  let comment, depth = Reference.deepest_comment ~scale:1 () in
  check "chains are deep" true (depth >= 4);
  List.iter
    (fun n ->
      check_ids
        (Printf.sprintf "reply chain {%d}" n)
        (Reference.reply_chain ~scale:1 ~comment ~n ())
        (endpoints_of db
           (Queries.path_reply_chain ~comment ~n)
           ~edges_needed:true))
    [ 0; 1; 4; depth; depth + 1 ]

let test_thread_root_vs_oracle () =
  let s = session ~scale:1 () in
  let db = Session.db s in
  let comment, _ = Reference.deepest_comment ~scale:1 () in
  check_ids "thread root posts"
    (Reference.thread_root_posts ~scale:1 ~comment ())
    (endpoints_of db (Queries.path_thread_root ~comment) ~edges_needed:false)

let test_engines_byte_identical () =
  let s = session ~scale:1 () in
  let db = Session.db s in
  let person = Reference.hub_person ~scale:1 () in
  let comment, _ = Reference.deepest_comment ~scale:1 () in
  List.iter
    (fun (name, path) ->
      List.iter
        (fun edges_needed ->
          let auto =
            with_engine true (fun () -> raw_result db path ~edges_needed)
          in
          let closure =
            with_engine false (fun () -> raw_result db path ~edges_needed)
          in
          if auto <> closure then
            Alcotest.failf "%s (edges_needed=%b): engines disagree" name
              edges_needed)
        [ true; false ])
    [
      ("knows+", Queries.path_knows_plus ~person);
      ("knows*", Queries.path_knows_star ~person);
      ("(knows knows)+", Queries.path_knows_knows_plus ~person);
      ("chain{4}", Queries.path_reply_chain ~comment ~n:4);
      ("thread root", Queries.path_thread_root ~comment);
    ]

let test_domain_count_invariance () =
  (* Same data, pools of different sizes: byte-identical results. *)
  let person = Reference.hub_person ~scale:2 () in
  let path = Queries.path_knows_plus ~person in
  let results =
    List.map
      (fun domains ->
        let pool = Graql_parallel.Domain_pool.create ~domains () in
        let s = Session.create ~pool () in
        Gen.ingest_all ~seed:42 ~scale:2 s;
        raw_result (Session.db s) path ~edges_needed:true)
      [ 1; 2; 4; 8 ]
  in
  match results with
  | base :: rest ->
      List.iteri
        (fun i r ->
          if r <> base then
            Alcotest.failf "domain count %d changed the result"
              (List.nth [ 2; 4; 8 ] i))
        rest
  | [] -> assert false

let test_scripts_end_to_end () =
  let s = session ~scale:1 () in
  let person = Reference.hub_person ~scale:1 () in
  let comment, _ = Reference.deepest_comment ~scale:1 () in
  set_param s "Person1" person;
  set_param s "Comment1" comment;
  set_param s "Forum1" "fo0";
  List.iter
    (fun (name, q) ->
      List.iter
        (function
          | _, Script_exec.O_failed err ->
              Alcotest.failf "%s failed: %s" name
                (Graql_engine.Graql_error.to_string err)
          | _ -> ())
        (Session.run_script s q))
    Queries.all

let test_knows_plus_subgraph_matches_oracle () =
  let s = session ~scale:1 () in
  let person = Reference.hub_person ~scale:1 () in
  set_param s "Person1" person;
  match Session.run_script s Queries.q_knows_plus with
  | [ (_, Script_exec.O_subgraph sg) ] ->
      let g = Db.graph (Session.db s) in
      let vset = Graph_store.find_vset_exn g "Person" in
      let engine =
        List.sort compare
          (List.map (Vset.key_string vset) (Subgraph.vertex_list sg ~vtype:"Person"))
      in
      (* The captured subgraph holds the start, every endpoint, and the
         traversed edges' endpoints — for a one-atom [+] body that is
         exactly {start} ∪ closure. *)
      let oracle =
        List.sort_uniq compare
          (person :: Reference.knows_plus ~scale:1 ~person ())
      in
      check_ids "subgraph person set" oracle engine;
      check "edges captured" true (Subgraph.total_edges sg > 0)
  | _ -> Alcotest.fail "expected one subgraph"

let () =
  Alcotest.run "snb"
    [
      ( "load",
        [
          Alcotest.test_case "generator determinism" `Quick
            test_generator_deterministic;
          Alcotest.test_case "ingest counts" `Quick test_ingest_counts;
        ] );
      ( "traversals-vs-oracles",
        [
          Alcotest.test_case "knows closure" `Quick test_knows_plus_vs_oracle;
          Alcotest.test_case "two-atom closure" `Quick
            test_knows_knows_plus_vs_oracle;
          Alcotest.test_case "reply chains" `Quick test_reply_chain_vs_oracle;
          Alcotest.test_case "thread roots" `Quick test_thread_root_vs_oracle;
        ] );
      ( "engine-parity",
        [
          Alcotest.test_case "automaton = closure, byte-identical" `Quick
            test_engines_byte_identical;
          Alcotest.test_case "domain-count invariance" `Slow
            test_domain_count_invariance;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "all scripts run" `Quick test_scripts_end_to_end;
          Alcotest.test_case "knows+ subgraph vs oracle" `Quick
            test_knows_plus_subgraph_matches_oracle;
        ] );
    ]
