module Pool = Graql_parallel.Domain_pool
module Cancel = Graql_parallel.Cancel

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_pool ?domains f =
  let pool = Pool.create ?domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_run_tasks () =
  with_pool (fun pool ->
      let results = Array.make 20 0 in
      Pool.run_tasks pool
        (List.init 20 (fun i () -> results.(i) <- i * i));
      check "all tasks ran" true
        (Array.to_list results = List.init 20 (fun i -> i * i)))

let test_run_tasks_empty () =
  with_pool (fun pool -> Pool.run_tasks pool [])

let test_exception_propagates () =
  with_pool (fun pool ->
      match
        Pool.run_tasks pool
          [ (fun () -> ()); (fun () -> failwith "boom"); (fun () -> ()) ]
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_parallel_for () =
  with_pool (fun pool ->
      let out = Array.make 1000 0 in
      Pool.parallel_for pool ~lo:0 ~hi:1000 (fun i -> out.(i) <- i + 1);
      check_int "sum" (1000 * 1001 / 2) (Array.fold_left ( + ) 0 out))

let test_parallel_for_empty_range () =
  with_pool (fun pool ->
      let hit = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> hit := true);
      check "no iterations" false !hit)

let test_parallel_map () =
  with_pool (fun pool ->
      let a = Array.init 500 Fun.id in
      let b = Pool.parallel_map_array pool (fun x -> x * 2) a in
      check "mapped" true (b = Array.map (fun x -> x * 2) a))

let test_parallel_reduce_deterministic () =
  with_pool (fun pool ->
      (* Order-sensitive merge: string concatenation. Deterministic because
         chunk results merge in chunk order. *)
      let run () =
        Pool.parallel_reduce pool
          ~init:(fun () -> Buffer.create 16)
          ~body:(fun buf i -> Buffer.add_string buf (string_of_int i))
          ~merge:(fun a b ->
            Buffer.add_buffer a b;
            a)
          ~lo:0 ~hi:200
      in
      let expect = String.concat "" (List.init 200 string_of_int) in
      for _ = 1 to 5 do
        Alcotest.(check string) "stable across runs" expect (Buffer.contents (run ()))
      done)

let test_single_domain_pool () =
  with_pool ~domains:1 (fun pool ->
      check_int "size" 1 (Pool.size pool);
      let acc = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> acc := !acc + i);
      check_int "sequential fallback" 4950 !acc)

let test_nested_run_tasks () =
  (* Statement-level parallelism nests operation-level parallelism; the
     help-drain design must not deadlock. *)
  with_pool ~domains:4 (fun pool ->
      let results = Array.make 4 0 in
      Pool.run_tasks pool
        (List.init 4 (fun i () ->
             let acc = ref 0 in
             Pool.parallel_for pool ~lo:0 ~hi:100 (fun j -> acc := !acc + j);
             (* parallel_for chunks may interleave on this counter; use
                reduce for the checked value instead. *)
             let v =
               Pool.parallel_reduce pool
                 ~init:(fun () -> ref 0)
                 ~body:(fun a j -> a := !a + j)
                 ~merge:(fun a b ->
                   a := !a + !b;
                   a)
                 ~lo:0 ~hi:100
             in
             results.(i) <- !v));
      check "nested results" true (Array.for_all (fun v -> v = 4950) results))

let test_parallel_for_chunks_cover () =
  with_pool (fun pool ->
      let seen = Array.make 777 false in
      Pool.parallel_for_chunks pool ~lo:0 ~hi:777 (fun lo hi ->
          for i = lo to hi - 1 do
            seen.(i) <- true
          done);
      check "full coverage" true (Array.for_all Fun.id seen))

(* ------------------------------------------------------------------ *)
(* Worker exceptions keep their origin backtrace                       *)

(* The raise must be neither inlined nor in tail position, or the frame
   disappears from the trace before the latch ever sees it. *)
let[@inline never] deep_raiser () =
  if failwith "deep boom" then () else ()

let test_worker_backtrace_preserved () =
  let prev = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect ~finally:(fun () -> Printexc.record_backtrace prev) @@ fun () ->
  with_pool ~domains:2 (fun pool ->
      match
        Pool.run_tasks pool
          [ (fun () -> ()); (fun () -> deep_raiser ()); (fun () -> ()) ]
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg ->
          (* raise_with_backtrace carried the worker-side trace across the
             latch: the raising frame is still visible here. Read it
             before anything else runs and clobbers the buffer. *)
          let bt = Printexc.get_backtrace () in
          Alcotest.(check string) "message" "deep boom" msg;
          check "origin frame survives the hop" true
            (let needle = "deep_raiser" in
             let nl = String.length needle and hl = String.length bt in
             let rec go i =
               i + nl <= hl && (String.sub bt i nl = needle || go (i + 1))
             in
             go 0))

(* ------------------------------------------------------------------ *)
(* Fault hook: retry with backoff, then exhaustion                     *)

let test_fault_hook_retries_then_succeeds () =
  with_pool ~domains:2 (fun pool ->
      Pool.set_retry ~backoff_ms:0.0 pool;
      let hook ~label:_ ~index ~attempt =
        if index = 1 && attempt <= 2 then raise (Pool.Transient "site1")
      in
      Pool.set_fault_hook pool (Some hook);
      let ran = Array.make 3 0 in
      Pool.run_tasks pool
        (List.init 3 (fun i () -> ran.(i) <- ran.(i) + 1));
      (* Faults strike before the body: despite two failed attempts, every
         task body ran exactly once. *)
      check "bodies ran exactly once" true (ran = [| 1; 1; 1 |]);
      check_int "two retries recorded" 2 (Pool.fault_retries pool))

let test_fault_hook_exhaustion () =
  with_pool ~domains:2 (fun pool ->
      Pool.set_retry ~attempts:3 ~backoff_ms:0.0 pool;
      Pool.set_fault_hook pool
        (Some (fun ~label:_ ~index:_ ~attempt:_ -> raise (Pool.Transient "dead")));
      (match Pool.run_tasks pool [ (fun () -> ()) ] with
      | () -> Alcotest.fail "expected exhaustion"
      | exception Pool.Fault_exhausted { site; attempts } ->
          Alcotest.(check string) "site" "dead" site;
          check_int "attempt budget" 3 attempts);
      Pool.set_fault_hook pool None)

let test_fault_hook_sees_labels () =
  with_pool ~domains:1 (fun pool ->
      let seen = ref [] in
      Pool.set_fault_hook pool
        (Some (fun ~label ~index ~attempt:_ -> seen := (label, index) :: !seen));
      Pool.with_label "phase-a" (fun () ->
          Pool.run_tasks pool [ (fun () -> ()); (fun () -> ()) ]);
      check "labels attributed" true
        (List.sort compare !seen = [ ("phase-a", 0); ("phase-a", 1) ]))

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                            *)

let test_cancel_stops_chunks () =
  with_pool ~domains:2 (fun pool ->
      let token = Cancel.create () in
      Pool.set_cancel pool (Some token);
      let done_count = Atomic.make 0 in
      (match
         Pool.run_tasks pool
           (List.init 64 (fun i () ->
                if i = 0 then Cancel.cancel token
                else Atomic.incr done_count))
       with
      | () -> Alcotest.fail "expected cancellation"
      | exception Cancel.Cancelled _ -> ());
      (* Some tasks may have run before the flag flipped, but not all. *)
      check "later chunks skipped" true (Atomic.get done_count < 64);
      Pool.set_cancel pool None)

let test_deadline_token_expires () =
  let token = Cancel.with_deadline_ms 10 in
  check "fresh token live" false (Cancel.is_cancelled token);
  Unix.sleepf 0.03;
  check "expired after deadline" true (Cancel.is_cancelled token);
  (match Cancel.check token with
  | () -> Alcotest.fail "expected Cancelled"
  | exception Cancel.Cancelled budget -> check_int "budget carried" 10 budget);
  check "invalid budget rejected" true
    (match Cancel.with_deadline_ms 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "run_tasks" `Quick test_run_tasks;
          Alcotest.test_case "run_tasks empty" `Quick test_run_tasks_empty;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "reduce deterministic" `Quick
            test_parallel_reduce_deterministic;
          Alcotest.test_case "single-domain pool" `Quick test_single_domain_pool;
          Alcotest.test_case "nested tasks no deadlock" `Quick test_nested_run_tasks;
          Alcotest.test_case "chunk coverage" `Quick test_parallel_for_chunks_cover;
          Alcotest.test_case "worker backtrace preserved" `Quick
            test_worker_backtrace_preserved;
        ] );
      ( "faults",
        [
          Alcotest.test_case "retry then succeed" `Quick
            test_fault_hook_retries_then_succeeds;
          Alcotest.test_case "exhaustion" `Quick test_fault_hook_exhaustion;
          Alcotest.test_case "labels attributed" `Quick
            test_fault_hook_sees_labels;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "cancel stops chunks" `Quick
            test_cancel_stops_chunks;
          Alcotest.test_case "deadline token expires" `Quick
            test_deadline_token_expires;
        ] );
    ]
