(* The product-automaton RPQ engine: automaton shapes, parity with the
   memoized-closure engine and the naive reference fixpoint on seeded
   random graphs (byte-identical, at several domain counts), Kleene
   corner cases (empty frontiers, self-loops, {0}/{n}, dead states),
   determinization, the regex EXPLAIN plan node, and the static checks
   on regex bodies. *)

module Db = Graql_engine.Db
module Ddl_exec = Graql_engine.Ddl_exec
module Script_exec = Graql_engine.Script_exec
module Path_exec = Graql_engine.Path_exec
module Reference_exec = Graql_engine.Reference_exec
module Explain = Graql_engine.Explain
module Rpq = Graql_engine.Rpq
module Pack = Graql_engine.Pack
module Metrics = Graql_obs.Metrics
module Parser = Graql_lang.Parser
module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Meta = Graql_analysis.Meta
module Diag = Graql_analysis.Diag
module Typecheck = Graql_analysis.Typecheck
module Rng = Graql_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* A small two-type world: A vertices with an integer x, B vertices,    *)
(* edges A->A (eaa, self-loops allowed), A->B (eab), B->A (eba), each   *)
(* with a small integer weight w.                                       *)

let schema_script =
  {|
create table TA(id varchar(6), x integer)
create table TB(id varchar(6), x integer)
create table EAA(f varchar(6), t varchar(6), w integer)
create table EAB(f varchar(6), t varchar(6), w integer)
create table EBA(f varchar(6), t varchar(6), w integer)
create vertex A(id) from table TA
create vertex B(id) from table TB
create edge eaa with vertices (A as S, A as D) from table EAA
  where EAA.f = S.id and EAA.t = D.id
create edge eab with vertices (A, B) from table EAB
  where EAB.f = A.id and EAB.t = B.id
create edge eba with vertices (B, A) from table EBA
  where EBA.f = B.id and EBA.t = A.id
ingest table TA ta.csv
ingest table TB tb.csv
ingest table EAA eaa.csv
ingest table EAB eab.csv
ingest table EBA eba.csv
|}

type world = {
  na : int;
  nb : int;
  e_aa : (int * int) list;
  e_ab : (int * int) list;
  e_ba : (int * int) list;
}

let csv_vertices prefix n =
  "id,x\n"
  ^ String.concat ""
      (List.init n (fun i -> Printf.sprintf "%s%d,%d\n" prefix i i))

let csv_edges pf pt edges =
  "f,t,w\n"
  ^ String.concat ""
      (List.mapi
         (fun i (f, t) -> Printf.sprintf "%s%d,%s%d,%d\n" pf f pt t (i mod 5))
         edges)

let build_db ?pool w =
  let loader = function
    | "ta.csv" -> csv_vertices "a" w.na
    | "tb.csv" -> csv_vertices "b" w.nb
    | "eaa.csv" -> csv_edges "a" "a" w.e_aa
    | "eab.csv" -> csv_edges "a" "b" w.e_ab
    | "eba.csv" -> csv_edges "b" "a" w.e_ba
    | f -> raise (Sys_error f)
  in
  let db = Db.create ?pool () in
  Ddl_exec.install db;
  ignore
    (Script_exec.exec_script ~loader ~parallel:false db
       (Parser.parse_script schema_script));
  db

(* AST pieces *)

let v ?cond name =
  { Ast.v_kind = Ast.V_named name; v_label = None; v_cond = cond; v_loc = Loc.dummy }

let e ?cond ?(dir = Ast.Out) name =
  { Ast.e_kind = Ast.E_named name; e_dir = dir; e_label = None;
    e_cond = cond; e_loc = Loc.dummy }

let x_eq i =
  Ast.E_binop
    ( Ast.Eq,
      Ast.E_attr (None, "x", Loc.dummy),
      Ast.E_lit (Ast.L_int i, Loc.dummy),
      Loc.dummy )

let x_le i =
  Ast.E_binop
    ( Ast.Le,
      Ast.E_attr (None, "x", Loc.dummy),
      Ast.E_lit (Ast.L_int i, Loc.dummy),
      Loc.dummy )

let w_lt i =
  Ast.E_binop
    ( Ast.Lt,
      Ast.E_attr (None, "w", Loc.dummy),
      Ast.E_lit (Ast.L_int i, Loc.dummy),
      Loc.dummy )

let regex_path ~start ~body ~op =
  {
    Ast.head = v "A" ~cond:(x_eq start);
    segments = [ Ast.Seg_regex (body, op, Loc.dummy) ];
  }

(* ------------------------------------------------------------------ *)
(* Harness: rows in display order (stable under planner reversal)      *)

let with_engine automaton f =
  let saved = !Path_exec.use_automaton in
  Path_exec.use_automaton := automaton;
  Fun.protect ~finally:(fun () -> Path_exec.use_automaton := saved) f

let run_gen db path ~edges_needed ~keep =
  let res =
    Path_exec.run_multipath ~db
      ~params:(fun _ -> None)
      ~mode:Path_exec.Keep_all ~edges_needed (Ast.M_path path)
  in
  let rows =
    List.concat_map
      (fun (c : Path_exec.component) ->
        let order =
          List.sort
            (fun a b ->
              compare c.Path_exec.slots.(a).Path_exec.s_step
                c.Path_exec.slots.(b).Path_exec.s_step)
            (List.filter
               (fun i -> keep c.Path_exec.slots.(i))
               (List.init (Array.length c.Path_exec.slots) Fun.id))
        in
        Array.to_list
          (Array.map
             (fun row -> List.map (fun i -> row.(i)) order)
             c.Path_exec.rows))
      res.Path_exec.comps
  in
  (List.sort compare rows, List.sort compare res.Path_exec.regex_edges)

let run db path ~edges_needed = run_gen db path ~edges_needed ~keep:(fun _ -> true)

let run_proj db path ~edges_needed ~kind =
  fst
    (run_gen db path ~edges_needed ~keep:(fun s -> s.Path_exec.s_kind = kind))

let reference_rows db path =
  List.sort compare
    (List.map Array.to_list (Reference_exec.run_path ~db ~params:(fun _ -> None) path))

(* ------------------------------------------------------------------ *)
(* Shape units                                                          *)

let atom_aa = (e "eaa", v "A")

let test_shape_star () =
  let infos = Rpq.shape ~body:[ atom_aa ] ~op:Ast.Rx_star ~reversed:false in
  check_int "star k=1 has 2 states" 2 (Array.length infos);
  check "entry initial" true infos.(0).Rpq.si_initial;
  check "entry accepting (star)" true infos.(0).Rpq.si_accepting;
  check "loop state accepting" true infos.(1).Rpq.si_accepting;
  check "entry has no arriving edge" true (infos.(0).Rpq.si_estep = None);
  check "state 1 arrives via eaa" true (infos.(1).Rpq.si_estep <> None)

let test_shape_plus_two_atoms () =
  let infos =
    Rpq.shape
      ~body:[ (e "eab", v "B"); (e "eba", v "A") ]
      ~op:Ast.Rx_plus ~reversed:false
  in
  check_int "plus k=2 has 3 states" 3 (Array.length infos);
  check "entry not accepting (plus)" false infos.(0).Rpq.si_accepting;
  check "mid state not accepting" false infos.(1).Rpq.si_accepting;
  check "final state accepting" true infos.(2).Rpq.si_accepting

let test_shape_count () =
  let c3 = Rpq.shape ~body:[ atom_aa ] ~op:(Ast.Rx_count 3) ~reversed:false in
  check_int "{3} k=1 has 4 states" 4 (Array.length c3);
  check "only the last accepts" true
    (List.init 4 (fun s -> c3.(s).Rpq.si_accepting) = [ false; false; false; true ]);
  let c0 = Rpq.shape ~body:[ atom_aa ] ~op:(Ast.Rx_count 0) ~reversed:false in
  check_int "{0} degenerates to entry" 1 (Array.length c0);
  check "{0} accepts immediately" true c0.(0).Rpq.si_accepting;
  let neg = Rpq.shape ~body:[ atom_aa ] ~op:(Ast.Rx_count (-2)) ~reversed:false in
  check_int "negative count degrades, never raises" 1 (Array.length neg)

let test_shape_reversed () =
  let infos =
    Rpq.shape
      ~body:[ atom_aa; atom_aa ]
      ~op:Ast.Rx_star ~reversed:true
  in
  check_int "reversed star k=2 has 3 states" 3 (Array.length infos);
  check "forward-accepting states seed the reversal" true
    (infos.(0).Rpq.si_initial && infos.(2).Rpq.si_initial);
  check "forward entry accepts the reversal" true infos.(0).Rpq.si_accepting

(* ------------------------------------------------------------------ *)
(* Parity on seeded random graphs                                      *)

let random_world rng =
  let na = 3 + Rng.int rng 4 in
  let nb = 2 + Rng.int rng 3 in
  let edges n m count =
    List.init (Rng.int rng count) (fun _ -> (Rng.int rng n, Rng.int rng m))
  in
  {
    na;
    nb;
    e_aa = edges na na 16 (* includes self-loops *);
    e_ab = edges na nb 10;
    e_ba = edges nb na 10;
  }

let bodies rng =
  let vcond = if Rng.int rng 3 = 0 then Some (x_le (Rng.int rng 6)) else None in
  let econd = if Rng.int rng 3 = 0 then Some (w_lt (1 + Rng.int rng 4)) else None in
  [
    [ (e ?cond:econd "eaa", v ?cond:vcond "A") ];
    [ (e "eaa", v "A"); (e ?cond:econd "eaa", v ?cond:vcond "A") ];
    [ (e "eab", v "B"); (e "eba", v ?cond:vcond "A") ];
  ]

let ops = [ Ast.Rx_star; Ast.Rx_plus; Ast.Rx_count 0; Ast.Rx_count 1; Ast.Rx_count 3 ]

let op_name = function
  | Ast.Rx_star -> "*"
  | Ast.Rx_plus -> "+"
  | Ast.Rx_count n -> Printf.sprintf "{%d}" n

let test_parity_random_graphs () =
  for seed = 0 to 29 do
    let rng = Rng.make seed in
    let w = random_world rng in
    let db = build_db w in
    let start = Rng.int rng w.na in
    List.iteri
      (fun bi body ->
        List.iter
          (fun op ->
            let path = regex_path ~start ~body ~op in
            let what =
              Printf.sprintf "seed %d body %d op %s" seed bi (op_name op)
            in
            (* Automaton vs closure: byte-identical rows AND noted edges. *)
            let auto = with_engine true (fun () -> run db path ~edges_needed:true) in
            let closure =
              with_engine false (fun () -> run db path ~edges_needed:true)
            in
            if auto <> closure then
              Alcotest.failf "%s: automaton <> closure (edges observed)" what;
            (* Endpoint-only mode may reverse; row bags must still agree. *)
            let auto_rows =
              fst (with_engine true (fun () -> run db path ~edges_needed:false))
            in
            if auto_rows <> fst closure then
              Alcotest.failf "%s: endpoint-only rows diverge" what;
            (* And the naive reference fixpoint agrees. *)
            if fst auto <> reference_rows db path then
              Alcotest.failf "%s: automaton <> reference" what)
          ops)
      (bodies rng)
  done

let test_parity_star_then_step () =
  (* Regex followed by a plain step: exercises reversal with an exit
     filter on the regex, and mid-path automaton frontiers. *)
  for seed = 30 to 39 do
    let rng = Rng.make seed in
    let w = random_world rng in
    let db = build_db w in
    let start = Rng.int rng w.na in
    let path =
      {
        Ast.head = v "A" ~cond:(x_eq start);
        segments =
          [
            Ast.Seg_regex ([ atom_aa ], Ast.Rx_star, Loc.dummy);
            Ast.Seg_step (e "eab", v "B");
          ];
      }
    in
    List.iter
      (fun edges_needed ->
        let auto = with_engine true (fun () -> run db path ~edges_needed) in
        let closure = with_engine false (fun () -> run db path ~edges_needed) in
        if fst auto <> fst closure then
          Alcotest.failf "seed %d (edges_needed=%b): star-then-step diverges"
            seed edges_needed;
        if edges_needed && snd auto <> snd closure then
          Alcotest.failf "seed %d: noted edges diverge" seed)
      [ true; false ];
    (* The reference reports vertex positions only; drop edge slots. *)
    let vertex_rows =
      with_engine true (fun () -> run_proj db path ~edges_needed:true ~kind:`V)
    in
    if vertex_rows <> reference_rows db path then
      Alcotest.failf "seed %d: star-then-step <> reference" seed
  done

(* ------------------------------------------------------------------ *)
(* Corner cases                                                        *)

let test_empty_frontier () =
  (* a2 has no outgoing eaa edges at all. *)
  let w = { na = 3; nb = 1; e_aa = [ (0, 1) ]; e_ab = []; e_ba = [] } in
  let db = build_db w in
  let run_op op =
    fst
      (with_engine true (fun () ->
           run db (regex_path ~start:2 ~body:[ atom_aa ] ~op) ~edges_needed:true))
  in
  check_int "plus from a sink is empty" 0 (List.length (run_op Ast.Rx_plus));
  check_int "star from a sink is itself" 1 (List.length (run_op Ast.Rx_star));
  check_int "{2} from a sink is empty" 0 (List.length (run_op (Ast.Rx_count 2)))

let test_self_loop () =
  let w = { na = 2; nb = 1; e_aa = [ (0, 0); (0, 1) ]; e_ab = []; e_ba = [] } in
  let db = build_db w in
  let endpoints op =
    List.sort_uniq compare
      (List.map
         (fun row -> List.nth row 1)
         (fst
            (with_engine true (fun () ->
                 run db (regex_path ~start:0 ~body:[ atom_aa ] ~op)
                   ~edges_needed:true))))
  in
  check_int "plus over a self-loop reaches both" 2 (List.length (endpoints Ast.Rx_plus));
  check_int "{3} stays saturated" 2 (List.length (endpoints (Ast.Rx_count 3)))

let test_dead_states () =
  (* Second atom expects an A->B edge starting from B: structurally
     impossible, so states past it are dead. *)
  let w = { na = 3; nb = 2; e_aa = []; e_ab = [ (0, 0); (0, 1) ]; e_ba = [] } in
  let db = build_db w in
  let body = [ (e "eab", v "B"); (e "eab", v "B") ] in
  List.iter
    (fun op ->
      let path = regex_path ~start:0 ~body ~op in
      let auto = with_engine true (fun () -> run db path ~edges_needed:true) in
      let closure = with_engine false (fun () -> run db path ~edges_needed:true) in
      check (Printf.sprintf "dead states agree (%s)" (op_name op)) true
        (auto = closure);
      let n = List.length (fst auto) in
      match op with
      | Ast.Rx_star -> check_int "star: only the start" 1 n
      | _ -> check_int "plus/{n}: nothing" 0 n)
    [ Ast.Rx_star; Ast.Rx_plus; Ast.Rx_count 2 ]

(* ------------------------------------------------------------------ *)
(* Parallel evaluation and determinization                              *)

let test_domain_invariance_large_frontier () =
  (* A hub fanning out to thousands of vertices: level-1 frontier exceeds
     the chunk-parallel threshold, so pooled runs take the parallel
     branch; results must be byte-identical at every domain count. *)
  let n = 5000 in
  let w =
    {
      na = n;
      nb = 1;
      e_aa = List.init (n - 1) (fun i -> (0, i + 1)) @ [ (n - 1, 0) ];
      e_ab = [];
      e_ba = [];
    }
  in
  let path = regex_path ~start:0 ~body:[ atom_aa ] ~op:Ast.Rx_plus in
  let serial =
    let db = build_db w in
    with_engine true (fun () -> run db path ~edges_needed:true)
  in
  check_int "everything is reachable" n (List.length (fst serial));
  List.iter
    (fun domains ->
      let pool = Graql_parallel.Domain_pool.create ~domains () in
      let db = build_db ~pool w in
      let pooled = with_engine true (fun () -> run db path ~edges_needed:true) in
      Graql_parallel.Domain_pool.shutdown pool;
      if pooled <> serial then
        Alcotest.failf "domain count %d changed the result" domains)
    [ 2; 4; 8 ]

let test_determinize_parity () =
  let saved = !Path_exec.rpq_determinize in
  Fun.protect ~finally:(fun () -> Path_exec.rpq_determinize := saved)
    (fun () ->
      for seed = 40 to 49 do
        let rng = Rng.make seed in
        let w = random_world rng in
        let db = build_db w in
        let start = Rng.int rng w.na in
        List.iter
          (fun op ->
            let path =
              regex_path ~start ~body:[ atom_aa; atom_aa ] ~op
            in
            Path_exec.rpq_determinize := false;
            let nfa =
              with_engine true (fun () -> run db path ~edges_needed:false)
            in
            Path_exec.rpq_determinize := true;
            let dfa =
              with_engine true (fun () -> run db path ~edges_needed:false)
            in
            if fst nfa <> fst dfa then
              Alcotest.failf "seed %d %s: determinized run diverges" seed
                (op_name op))
          ops
      done)

(* ------------------------------------------------------------------ *)
(* EXPLAIN and observability                                           *)

let test_explain_regex_plan () =
  let w = { na = 4; nb = 2; e_aa = [ (0, 1); (1, 2) ]; e_ab = [ (2, 0) ]; e_ba = [] } in
  let db = build_db w in
  let path = regex_path ~start:0 ~body:[ atom_aa; atom_aa ] ~op:Ast.Rx_plus in
  let plans =
    with_engine true (fun () ->
        Explain.explain_multipath ~db ~params:(fun _ -> None) (Ast.M_path path))
  in
  match plans with
  | [ plan ] ->
      (* One row per automaton state (3 for a two-atom plus), then the
         segment summary row. *)
      check_int "per-state rows + summary" 4 (List.length plan.Explain.pl_steps);
      let labels = List.map (fun s -> s.Explain.sp_label) plan.Explain.pl_steps in
      let infos = Rpq.shape ~body:[ atom_aa; atom_aa ] ~op:Ast.Rx_plus ~reversed:false in
      Array.iteri
        (fun i info ->
          check (Printf.sprintf "state %d label matches executor" i) true
            (List.nth labels i = info.Rpq.si_label))
        infos;
      check "summary row last" true
        (String.length (List.nth labels 3) >= 9
        && String.sub (List.nth labels 3) 0 9 = "( regex )");
      (* The closure engine keeps the single summary row. *)
      let closure_plans =
        with_engine false (fun () ->
            Explain.explain_multipath ~db ~params:(fun _ -> None) (Ast.M_path path))
      in
      check_int "closure plan is one row"
        1
        (List.length (List.hd closure_plans).Explain.pl_steps)
  | _ -> Alcotest.fail "expected one plan"

let test_rpq_counters () =
  let w = { na = 3; nb = 1; e_aa = [ (0, 1); (1, 2) ]; e_ab = []; e_ba = [] } in
  let db = build_db w in
  let before =
    Option.value ~default:0
      (Metrics.find_counter (Metrics.snapshot ()) "rpq.evals")
  in
  ignore
    (with_engine true (fun () ->
         run db (regex_path ~start:0 ~body:[ atom_aa ] ~op:Ast.Rx_plus)
           ~edges_needed:true));
  let after =
    Option.value ~default:0
      (Metrics.find_counter (Metrics.snapshot ()) "rpq.evals")
  in
  check "rpq.evals incremented" true (after > before)

(* ------------------------------------------------------------------ *)
(* Static checks on regex bodies                                       *)

let run_check script = Typecheck.check_script (Meta.create ()) script

let has_error_containing diags fragment =
  List.exists
    (fun (d : Diag.t) ->
      let m = d.Diag.message in
      let rec contains i =
        i + String.length fragment <= String.length m
        && (String.sub m i (String.length fragment) = fragment || contains (i + 1))
      in
      d.Diag.severity = Diag.Error && contains 0)
    diags

(* Entity names are case-insensitive in the analyzer, so the runtime
   schema's table EAA would collide with edge eaa; the static tests use
   their own DDL with distinct names. *)
let static_ddl =
  {|
create table PeopleT(id varchar(6), x integer)
create table OtherT(id varchar(6), x integer)
create table KnowsT(f varchar(6), t varchar(6), w integer)
create vertex A(id) from table PeopleT
create vertex B(id) from table OtherT
create edge eaa with vertices (A as S, A as D) from table KnowsT
  where KnowsT.f = S.id and KnowsT.t = D.id
|}

let query_script query = static_ddl ^ "\n" ^ query

let test_static_label_in_regex () =
  let diags =
    run_check
      (Parser.parse_script
         (query_script
            "select * from graph A ( --eaa--> def X: A )+ into subgraph S1"))
  in
  check "labels inside regexes are an analysis error" true
    (has_error_containing diags "labels are not supported inside path regexes")

let test_static_negative_count () =
  (* The parser cannot produce a negative count; build it by rewriting a
     parsed {2}. The checker must reject it statically — the executor's
     own guard is unreachable through the front end. *)
  let script =
    Parser.parse_script
      (query_script "select * from graph A ( --eaa--> A ){2} into subgraph S2")
  in
  let rec rw_mp = function
    | Ast.M_path p ->
        Ast.M_path { p with Ast.segments = List.map rw_seg p.Ast.segments }
    | Ast.M_and (a, b) -> Ast.M_and (rw_mp a, rw_mp b)
    | Ast.M_or (a, b) -> Ast.M_or (rw_mp a, rw_mp b)
  and rw_seg = function
    | Ast.Seg_regex (b, Ast.Rx_count _, l) -> Ast.Seg_regex (b, Ast.Rx_count (-1), l)
    | s -> s
  in
  let script =
    List.map
      (function
        | Ast.Select_graph sg ->
            Ast.Select_graph { sg with Ast.sg_path = rw_mp sg.Ast.sg_path }
        | s -> s)
      script
  in
  check "negative counts are an analysis error" true
    (has_error_containing (run_check script) "non-negative")

let test_static_clean_regex () =
  let diags =
    run_check
      (Parser.parse_script
         (query_script "select * from graph A ( --eaa--> A )* into subgraph S3"))
  in
  check "well-formed regex stays clean" true
    (not (List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) diags))

let () =
  Alcotest.run "rpq"
    [
      ( "shape",
        [
          Alcotest.test_case "star" `Quick test_shape_star;
          Alcotest.test_case "plus, two atoms" `Quick test_shape_plus_two_atoms;
          Alcotest.test_case "counts" `Quick test_shape_count;
          Alcotest.test_case "reversed" `Quick test_shape_reversed;
        ] );
      ( "parity",
        [
          Alcotest.test_case "random graphs, three engines" `Slow
            test_parity_random_graphs;
          Alcotest.test_case "star then step" `Slow test_parity_star_then_step;
        ] );
      ( "corners",
        [
          Alcotest.test_case "empty frontier" `Quick test_empty_frontier;
          Alcotest.test_case "self loops" `Quick test_self_loop;
          Alcotest.test_case "dead states" `Quick test_dead_states;
        ] );
      ( "parallel-and-dfa",
        [
          Alcotest.test_case "domain invariance, big frontier" `Slow
            test_domain_invariance_large_frontier;
          Alcotest.test_case "determinize parity" `Slow test_determinize_parity;
        ] );
      ( "explain-and-obs",
        [
          Alcotest.test_case "regex plan node" `Quick test_explain_regex_plan;
          Alcotest.test_case "rpq counters" `Quick test_rpq_counters;
        ] );
      ( "static-checks",
        [
          Alcotest.test_case "label in regex" `Quick test_static_label_in_regex;
          Alcotest.test_case "negative count" `Quick test_static_negative_count;
          Alcotest.test_case "clean regex" `Quick test_static_clean_regex;
        ] );
    ]
