module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Schema = Graql_storage.Schema
module Table = Graql_storage.Table
module Row_expr = Graql_relational.Row_expr
module Relop = Graql_relational.Relop
module Join = Graql_relational.Join
module Aggregate = Graql_relational.Aggregate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let col n t = { Schema.name = n; dtype = t }
let vi i = Value.Int i
let vs s = Value.Str s
let vf f = Value.Float f

let nums_schema =
  Schema.make [ col "id" Dtype.Int; col "grp" (Dtype.Varchar 4); col "x" Dtype.Float ]

let mk_nums () =
  Table.of_rows ~name:"nums" nums_schema
    [
      [ vi 1; vs "a"; vf 10.0 ];
      [ vi 2; vs "b"; vf 20.0 ];
      [ vi 3; vs "a"; vf 30.0 ];
      [ vi 4; vs "b"; Value.Null ];
      [ vi 5; vs "a"; vf 50.0 ];
    ]

(* ------------------------------------------------------------------ *)
(* Row_expr evaluation                                                 *)

let eval_const e = Row_expr.eval (fun _ -> Value.Null) e

let test_expr_arith () =
  let open Row_expr in
  check "int add" true
    (eval_const (Arith (Add, Const (vi 2), Const (vi 3))) = vi 5);
  check "mixed mul" true
    (eval_const (Arith (Mul, Const (vi 2), Const (vf 1.5))) = vf 3.0);
  check "div by zero is null" true
    (eval_const (Arith (Div, Const (vi 1), Const (vi 0))) = Value.Null);
  check "date + int" true
    (eval_const (Arith (Add, Const (Value.Date 10), Const (vi 5)))
    = Value.Date 15);
  check "string concat" true
    (eval_const (Arith (Add, Const (vs "ab"), Const (vs "cd"))) = vs "abcd")

let test_expr_cmp_null () =
  let open Row_expr in
  check "null cmp is null" true
    (eval_const (Cmp (Eq, Const Value.Null, Const (vi 1))) = Value.Null);
  check "is_true null = false" false (is_true Value.Null);
  check "int/float cross cmp" true
    (eval_const (Cmp (Lt, Const (vi 1), Const (vf 1.5))) = Value.Bool true)

let test_expr_three_valued_logic () =
  let open Row_expr in
  let null = Const Value.Null
  and t = Const (Value.Bool true)
  and f = Const (Value.Bool false) in
  check "null and false = false" true (eval_const (And (null, f)) = Value.Bool false);
  check "null and true = null" true (eval_const (And (null, t)) = Value.Null);
  check "null or true = true" true (eval_const (Or (null, t)) = Value.Bool true);
  check "null or false = null" true (eval_const (Or (null, f)) = Value.Null);
  check "not null = null" true (eval_const (Not null) = Value.Null);
  check "is null" true (eval_const (IsNull null) = Value.Bool true)

let test_expr_like () =
  let open Row_expr in
  let m pat s = eval_const (Like (Const (vs s), pat)) = Value.Bool true in
  check "exact" true (m "abc" "abc");
  check "pct suffix" true (m "ab%" "abcdef");
  check "pct middle" true (m "a%c" "abbbc");
  check "underscore" true (m "a_c" "abc");
  check "no match" false (m "a_c" "abbc");
  check "pct matches empty" true (m "%" "");
  check "like null" true (eval_const (Like (Const Value.Null, "x")) = Value.Null)

let test_expr_columns_mapping () =
  let open Row_expr in
  let e = And (Cmp (Eq, Col 2, Col 0), Not (IsNull (Col 2))) in
  Alcotest.(check (list int)) "columns" [ 0; 2 ] (columns e);
  let e' = map_columns (fun i -> i + 10) e in
  Alcotest.(check (list int)) "remapped" [ 10; 12 ] (columns e')

(* ------------------------------------------------------------------ *)
(* Selection / projection / distinct / order / top                     *)

let test_select () =
  let t = mk_nums () in
  let r = Relop.select t Row_expr.(Cmp (Eq, Col 1, Const (vs "a"))) in
  check_int "3 a-rows" 3 (Table.nrows r);
  check "first id" true (Table.get r ~row:0 ~col:0 = vi 1)

let test_select_null_pred () =
  let t = mk_nums () in
  let r = Relop.select t Row_expr.(Cmp (Gt, Col 2, Const (vf 15.0))) in
  check_int "nulls excluded" 3 (Table.nrows r)

let test_select_parallel_matches_serial () =
  let schema = Schema.make [ col "v" Dtype.Int ] in
  let t = Table.create ~name:"big" schema in
  for i = 0 to 9999 do
    Table.append_row t [ vi (i mod 97) ]
  done;
  let pred = Row_expr.(Cmp (Lt, Col 0, Const (vi 13))) in
  let serial = Relop.select_indices t pred in
  let pool = Graql_parallel.Domain_pool.create ~domains:4 () in
  let parallel = Relop.select_indices ~pool t pred in
  Graql_parallel.Domain_pool.shutdown pool;
  check "same rows, same order" true (serial = parallel)

let test_project () =
  let t = mk_nums () in
  let r = Relop.project t [ 2; 0 ] in
  check_int "arity" 2 (Table.arity r);
  Alcotest.(check string) "col order" "x" (Schema.col_name (Table.schema r) 0);
  check "values" true (Table.get r ~row:0 ~col:1 = vi 1)

let test_project_named () =
  let t = mk_nums () in
  let r =
    Relop.project_named t
      [ ("double", Dtype.Float, Row_expr.(Arith (Mul, Col 2, Const (vi 2)))) ]
  in
  check "computed" true (Table.get r ~row:1 ~col:0 = vf 40.0);
  check "null propagates" true (Table.get r ~row:3 ~col:0 = Value.Null)

let test_distinct () =
  let t =
    Table.of_rows ~name:"d"
      (Schema.make [ col "a" Dtype.Int ])
      [ [ vi 1 ]; [ vi 2 ]; [ vi 1 ]; [ vi 3 ]; [ vi 2 ] ]
  in
  let r = Relop.distinct t in
  check_int "distinct" 3 (Table.nrows r);
  check "keeps first-seen order" true
    (List.init 3 (fun i -> Table.get r ~row:i ~col:0) = [ vi 1; vi 2; vi 3 ])

let test_order_by () =
  let t = mk_nums () in
  let r = Relop.order_by t [ (1, Relop.Asc); (2, Relop.Desc) ] in
  let grps = List.init 5 (fun i -> Table.get r ~row:i ~col:1) in
  check "groups ordered" true (grps = [ vs "a"; vs "a"; vs "a"; vs "b"; vs "b" ]);
  check "within group desc" true
    (Table.get r ~row:0 ~col:2 = vf 50.0 && Table.get r ~row:2 ~col:2 = vf 10.0);
  check "null last under desc" true (Table.get r ~row:4 ~col:2 = Value.Null)

let test_order_by_stable () =
  let schema = Schema.make [ col "k" Dtype.Int; col "pos" Dtype.Int ] in
  let t =
    Table.of_rows ~name:"s" schema
      [ [ vi 1; vi 0 ]; [ vi 1; vi 1 ]; [ vi 0; vi 2 ]; [ vi 1; vi 3 ] ]
  in
  let r = Relop.order_by t [ (0, Relop.Asc) ] in
  check "ties keep row order" true
    (List.init 4 (fun i -> Table.get r ~row:i ~col:1)
    = [ vi 2; vi 0; vi 1; vi 3 ])

let test_top_n () =
  let t = mk_nums () in
  let r = Relop.top_n t ~n:2 ~keys:[ (2, Relop.Desc) ] in
  check_int "two rows" 2 (Table.nrows r);
  check "largest first" true
    (Table.get r ~row:0 ~col:2 = vf 50.0 && Table.get r ~row:1 ~col:2 = vf 30.0)

let test_top_n_larger_than_table () =
  let t = mk_nums () in
  let r = Relop.top_n t ~n:100 ~keys:[ (0, Relop.Asc) ] in
  check_int "clamped" 5 (Table.nrows r)

let test_limit_union () =
  let t = mk_nums () in
  check_int "limit" 2 (Table.nrows (Relop.limit t 2));
  let u = Relop.union_all t (mk_nums ()) in
  check_int "union_all" 10 (Table.nrows u);
  let bad = Table.create ~name:"b" (Schema.make [ col "z" Dtype.Bool ]) in
  Alcotest.check_raises "arity mismatch" (Failure "union: arity mismatch")
    (fun () -> ignore (Relop.union_all t bad))

let prop_top_n_equals_sort_prefix =
  QCheck.Test.make ~name:"top_n = order_by + limit" ~count:100
    QCheck.(pair (int_bound 10) (list_of_size (QCheck.Gen.int_range 0 30) small_int))
    (fun (n, xs) ->
      let schema = Schema.make [ col "v" Dtype.Int ] in
      let t = Table.of_rows ~name:"t" schema (List.map (fun x -> [ vi x ]) xs) in
      let a = Relop.top_n t ~n ~keys:[ (0, Relop.Desc) ] in
      let b = Relop.limit (Relop.order_by t [ (0, Relop.Desc) ]) n in
      List.init (Table.nrows a) (fun i -> Table.get a ~row:i ~col:0)
      = List.init (Table.nrows b) (fun i -> Table.get b ~row:i ~col:0))

let prop_distinct_idempotent =
  QCheck.Test.make ~name:"distinct is idempotent" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 30) (int_bound 5))
    (fun xs ->
      let schema = Schema.make [ col "v" Dtype.Int ] in
      let t = Table.of_rows ~name:"t" schema (List.map (fun x -> [ vi x ]) xs) in
      let d1 = Relop.distinct t in
      let d2 = Relop.distinct d1 in
      Table.nrows d1 = Table.nrows d2
      && List.init (Table.nrows d1) (fun i -> Table.row d1 i)
         = List.init (Table.nrows d2) (fun i -> Table.row d2 i))

(* ------------------------------------------------------------------ *)
(* Fast-path predicate compilation                                     *)

module Fast_pred = Graql_relational.Fast_pred

let mixed_schema =
  Schema.make
    [
      col "i" Dtype.Int;
      col "f" Dtype.Float;
      col "s" (Dtype.Varchar 4);
      col "d" Dtype.Date;
      col "b" Dtype.Bool;
    ]

let mixed_row_gen =
  QCheck.Gen.(
    let opt_null g = frequency [ (4, g); (1, return Value.Null) ] in
    map
      (fun (i, f, s, d, b) -> [ i; f; s; d; b ])
      (tup5
         (opt_null (map (fun i -> vi i) (int_bound 9)))
         (opt_null (map (fun f -> vf (float_of_int f /. 2.0)) (int_bound 9)))
         (opt_null (map (fun c -> vs (String.make 1 c)) (char_range 'a' 'd')))
         (opt_null (map (fun d -> Value.Date d) (int_bound 9)))
         (opt_null (map (fun b -> Value.Bool b) bool))))

(* Random predicates in the fast fragment. *)
let fast_pred_gen =
  QCheck.Gen.(
    let cmp_op = oneofl Row_expr.[ Eq; Ne; Lt; Le; Gt; Ge ] in
    let atom =
      oneof
        [
          map2
            (fun op k -> Row_expr.Cmp (op, Row_expr.Col 0, Row_expr.Const (vi k)))
            cmp_op (int_bound 9);
          map2
            (fun op k ->
              Row_expr.Cmp
                (op, Row_expr.Const (vf (float_of_int k /. 2.0)), Row_expr.Col 1))
            cmp_op (int_bound 9);
          map2
            (fun eq c ->
              let op = if eq then Row_expr.Eq else Row_expr.Ne in
              Row_expr.Cmp (op, Row_expr.Col 2, Row_expr.Const (vs (String.make 1 c))))
            bool
            (char_range 'a' 'e') (* 'e' is never interned: absent-id path *);
          map2
            (fun op k ->
              Row_expr.Cmp (op, Row_expr.Col 3, Row_expr.Const (Value.Date k)))
            cmp_op (int_bound 9);
          map
            (fun b ->
              Row_expr.Cmp (Row_expr.Eq, Row_expr.Col 4, Row_expr.Const (Value.Bool b)))
            bool;
          map (fun i -> Row_expr.IsNull (Row_expr.Col i)) (int_bound 4);
          (* Column-column: int vs float crosses numerically; varchar
             against itself exercises the shared-dictionary id path. *)
          map
            (fun op -> Row_expr.Cmp (op, Row_expr.Col 0, Row_expr.Col 1))
            cmp_op;
          map
            (fun op -> Row_expr.Cmp (op, Row_expr.Col 3, Row_expr.Col 3))
            cmp_op;
          map
            (fun eq ->
              let op = if eq then Row_expr.Eq else Row_expr.Ne in
              Row_expr.Cmp (op, Row_expr.Col 2, Row_expr.Col 2))
            bool;
          map
            (fun p -> Row_expr.Like (Row_expr.Col 2, p))
            (oneofl [ "a%"; "%b"; "_"; "a"; "%"; "e" ]);
        ]
    in
    let rec tree depth =
      if depth = 0 then atom
      else
        oneof
          [
            atom;
            map2 (fun a b -> Row_expr.And (a, b)) (tree (depth - 1)) (tree (depth - 1));
            map2 (fun a b -> Row_expr.Or (a, b)) (tree (depth - 1)) (tree (depth - 1));
            map (fun a -> Row_expr.Not a) (tree (depth - 1));
          ]
    in
    tree 3)

let prop_fast_pred_equals_generic =
  QCheck.Test.make ~name:"fast predicate = generic evaluator" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 1 30) mixed_row_gen) fast_pred_gen))
    (fun (rows, pred) ->
      let t = Table.of_rows ~name:"m" mixed_schema rows in
      match Fast_pred.compile t pred with
      | None -> QCheck.Test.fail_report "fragment should compile"
      | Some fast ->
          List.for_all
            (fun i ->
              let get c = Table.get t ~row:i ~col:c in
              fast i = Row_expr.eval_bool get pred)
            (List.init (Table.nrows t) Fun.id))

let test_fast_pred_fragment () =
  let open Row_expr in
  check "col-const compilable" true
    (Fast_pred.compilable (Cmp (Eq, Col 0, Const (vi 1))));
  check "like on column compilable" true
    (Fast_pred.compilable (Like (Col 2, "a%")));
  check "like on expression not compilable" false
    (Fast_pred.compilable (Like (Arith (Add, Col 2, Col 2), "a%")));
  check "arith not compilable" false
    (Fast_pred.compilable
       (Cmp (Eq, Arith (Add, Col 0, Const (vi 1)), Const (vi 2))));
  check "col-col compilable" true
    (Fast_pred.compilable (Cmp (Eq, Col 0, Col 1)));
  (* Date column vs raw Int constant must fall back (rank semantics). *)
  let t = Table.of_rows ~name:"t" mixed_schema [] in
  check "date vs int falls back" true
    (Fast_pred.compile t (Cmp (Gt, Col 3, Const (vi 3))) = None)

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)

let left_schema = Schema.make [ col "k" Dtype.Int; col "l" (Dtype.Varchar 4) ]
let right_schema = Schema.make [ col "k" Dtype.Int; col "r" (Dtype.Varchar 4) ]

let test_hash_join_inner () =
  let l =
    Table.of_rows ~name:"l" left_schema
      [ [ vi 1; vs "a" ]; [ vi 2; vs "b" ]; [ vi 2; vs "b2" ]; [ vi 3; vs "c" ] ]
  in
  let r =
    Table.of_rows ~name:"r" right_schema
      [ [ vi 2; vs "x" ]; [ vi 3; vs "y" ]; [ vi 3; vs "y2" ]; [ vi 9; vs "z" ] ]
  in
  let j = Join.hash_join ~left:l ~right:r ~on:[ (0, 0) ] () in
  check_int "match count" 4 (Table.nrows j);
  check_int "arity" 4 (Table.arity j);
  Alcotest.(check string) "dup col renamed" "k'" (Schema.col_name (Table.schema j) 2)

let test_join_null_keys_never_match () =
  let l = Table.of_rows ~name:"l" left_schema [ [ Value.Null; vs "a" ] ] in
  let r = Table.of_rows ~name:"r" right_schema [ [ Value.Null; vs "x" ] ] in
  let j = Join.hash_join ~left:l ~right:r ~on:[ (0, 0) ] () in
  check_int "null keys don't join" 0 (Table.nrows j)

let test_join_multi_key () =
  let schema2 = Schema.make [ col "a" Dtype.Int; col "b" Dtype.Int ] in
  let l = Table.of_rows ~name:"l" schema2 [ [ vi 1; vi 1 ]; [ vi 1; vi 2 ] ] in
  let r = Table.of_rows ~name:"r" schema2 [ [ vi 1; vi 2 ]; [ vi 1; vi 3 ] ] in
  let j = Join.hash_join ~left:l ~right:r ~on:[ (0, 0); (1, 1) ] () in
  check_int "only (1,2)" 1 (Table.nrows j)

let test_semi_join () =
  let l =
    Table.of_rows ~name:"l" left_schema
      [ [ vi 1; vs "a" ]; [ vi 2; vs "b" ]; [ vi 3; vs "c" ] ]
  in
  let r =
    Table.of_rows ~name:"r" right_schema [ [ vi 2; vs "x" ]; [ vi 2; vs "y" ] ]
  in
  let rows = Join.semi_join_left ~left:l ~right:r ~on:[ (0, 0) ] () in
  check "only k=2, once" true (rows = [| 1 |])

let prop_join_matches_nested_loop =
  let row_gen = QCheck.Gen.(pair (int_bound 5) (int_bound 3)) in
  QCheck.Test.make ~name:"hash join = nested loop oracle" ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 15) (make row_gen))
        (list_of_size (QCheck.Gen.int_bound 15) (make row_gen)))
    (fun (ls, rs) ->
      let schema = Schema.make [ col "k" Dtype.Int; col "v" Dtype.Int ] in
      let mk name rows =
        Table.of_rows ~name schema (List.map (fun (k, v) -> [ vi k; vi v ]) rows)
      in
      let l = mk "l" ls and r = mk "r" rs in
      let pairs = Join.join_pairs ~left:l ~right:r ~on:[ (0, 0) ] () in
      let oracle =
        List.concat
          (List.mapi
             (fun i (lk, _) ->
               List.mapi (fun j (rk, _) -> if lk = rk then Some (i, j) else None) rs
               |> List.filter_map Fun.id)
             ls)
      in
      List.sort compare (Array.to_list pairs) = List.sort compare oracle)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)

let test_group_by () =
  let t = mk_nums () in
  let r =
    Aggregate.group_by t ~keys:[ 1 ]
      ~aggs:
        [
          (Aggregate.Count_star, "n");
          (Aggregate.Count 2, "nx");
          (Aggregate.Sum 2, "sum");
          (Aggregate.Avg 2, "avg");
          (Aggregate.Min 2, "min");
          (Aggregate.Max 2, "max");
        ]
  in
  check_int "2 groups" 2 (Table.nrows r);
  let row_of g =
    let rec go i = if Table.get r ~row:i ~col:0 = vs g then i else go (i + 1) in
    go 0
  in
  let a = row_of "a" and b = row_of "b" in
  check "a count" true (Table.get r ~row:a ~col:1 = vi 3);
  check "a sum" true (Table.get r ~row:a ~col:3 = vf 90.0);
  check "a avg" true (Table.get r ~row:a ~col:4 = vf 30.0);
  check "a min/max" true
    (Table.get r ~row:a ~col:5 = vf 10.0 && Table.get r ~row:a ~col:6 = vf 50.0);
  check "b count(*) counts null row" true (Table.get r ~row:b ~col:1 = vi 2);
  check "b count(x) skips null" true (Table.get r ~row:b ~col:2 = vi 1);
  check "b sum" true (Table.get r ~row:b ~col:3 = vf 20.0)

let test_group_by_empty_global () =
  let t = Table.create ~name:"e" nums_schema in
  let r =
    Aggregate.group_by t ~keys:[]
      ~aggs:[ (Aggregate.Count_star, "n"); (Aggregate.Sum 0, "s") ]
  in
  check_int "one global row" 1 (Table.nrows r);
  check "count 0" true (Table.get r ~row:0 ~col:0 = vi 0);
  check "sum of nothing is null" true (Table.get r ~row:0 ~col:1 = Value.Null)

let test_group_keys_with_null () =
  let t =
    Table.of_rows ~name:"g"
      (Schema.make [ col "k" (Dtype.Varchar 2); col "v" Dtype.Int ])
      [ [ vs "a"; vi 1 ]; [ Value.Null; vi 2 ]; [ Value.Null; vi 3 ] ]
  in
  let r = Aggregate.group_by t ~keys:[ 0 ] ~aggs:[ (Aggregate.Count_star, "n") ] in
  check_int "null forms its own group" 2 (Table.nrows r)

let test_scalar_aggs () =
  let t = mk_nums () in
  check "scalar count" true (Aggregate.scalar t Aggregate.Count_star = vi 5);
  check "scalar max int col" true (Aggregate.scalar t (Aggregate.Max 0) = vi 5);
  check "scalar avg" true (Aggregate.scalar t (Aggregate.Avg 2) = vf 27.5)

let test_int_sum_stays_int () =
  let schema = Schema.make [ col "v" Dtype.Int ] in
  let t = Table.of_rows ~name:"t" schema [ [ vi 1 ]; [ vi 2 ] ] in
  check "integer sum" true (Aggregate.scalar t (Aggregate.Sum 0) = vi 3)

let prop_group_count_total =
  QCheck.Test.make ~name:"group counts sum to row count" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (int_bound 5))
    (fun ks ->
      let schema = Schema.make [ col "k" Dtype.Int ] in
      let t = Table.of_rows ~name:"t" schema (List.map (fun k -> [ vi k ]) ks) in
      let r = Aggregate.group_by t ~keys:[ 0 ] ~aggs:[ (Aggregate.Count_star, "n") ] in
      let total = ref 0 in
      Table.iter_rows
        (fun i -> total := !total + Value.as_int (Table.get r ~row:i ~col:1))
        r;
      !total = List.length ks)

(* ------------------------------------------------------------------ *)
(* Parallel operators: byte-identical to sequential, any pool size      *)

let with_pool domains f =
  let pool = Graql_parallel.Domain_pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Graql_parallel.Domain_pool.shutdown pool)
    (fun () -> f pool)

let tables_equal a b =
  Table.nrows a = Table.nrows b
  && Table.arity a = Table.arity b
  &&
  let ok = ref true in
  for r = 0 to Table.nrows a - 1 do
    for c = 0 to Table.arity a - 1 do
      if Table.get a ~row:r ~col:c <> Table.get b ~row:r ~col:c then ok := false
    done
  done;
  !ok

(* Left 20k rows / right 5k rows, duplicate keys (mod 997), nulls
   sprinkled on both sides, an Int-key variant and a dict-Varchar-key
   variant. The join must produce the identical table with no pool and
   with pools of 1, 2, 4 and 8 domains. *)
let test_parallel_join_identical () =
  let big_tables key_of_l key_of_r kdtype =
    let lschema =
      Schema.make [ col "k" kdtype; col "a" Dtype.Int; col "x" Dtype.Float ]
    in
    let rschema = Schema.make [ col "k" kdtype; col "b" Dtype.Int ] in
    let l = Table.create ~name:"L" lschema in
    for i = 0 to 19_999 do
      Table.append_row l
        [
          (if i mod 13 = 0 then Value.Null else key_of_l i);
          vi i;
          (if i mod 17 = 0 then Value.Null else vf (float_of_int i /. 3.0));
        ]
    done;
    let r = Table.create ~name:"R" rschema in
    for i = 0 to 4_999 do
      Table.append_row r
        [ (if i mod 11 = 0 then Value.Null else key_of_r i); vi (i * 7) ]
    done;
    (l, r)
  in
  let run_case name (l, r) =
    let seq = Join.hash_join ~name:"j" ~left:l ~right:r ~on:[ (0, 0) ] () in
    check name true (Table.nrows seq > 0);
    List.iter
      (fun domains ->
        with_pool domains (fun pool ->
            let par =
              Join.hash_join ~pool ~name:"j" ~left:l ~right:r ~on:[ (0, 0) ] ()
            in
            check
              (Printf.sprintf "%s identical at %d domains" name domains)
              true (tables_equal seq par)))
      [ 1; 2; 4; 8 ]
  in
  run_case "int keys"
    (big_tables (fun i -> vi (i mod 997)) (fun i -> vi (i mod 1500)) Dtype.Int);
  run_case "varchar keys"
    (big_tables
       (fun i -> vs ("k" ^ string_of_int (i mod 499)))
       (fun i -> vs ("k" ^ string_of_int (i mod 750)))
       (Dtype.Varchar 8))

(* Group-by over int and float aggregates with null keys and null values:
   first-seen group order and every float bit must match the sequential
   result for every pool size. chunk_rows is dropped so even this small
   table crosses the parallel threshold. *)
let test_parallel_group_by_identical () =
  let saved = !Aggregate.chunk_rows in
  Fun.protect ~finally:(fun () -> Aggregate.chunk_rows := saved) @@ fun () ->
  Aggregate.chunk_rows := 16;
  let schema =
    Schema.make [ col "g" (Dtype.Varchar 4); col "v" Dtype.Int; col "x" Dtype.Float ]
  in
  let t = Table.create ~name:"t" schema in
  for i = 0 to 1_999 do
    Table.append_row t
      [
        (if i mod 31 = 0 then Value.Null else vs ("g" ^ string_of_int (i mod 23)));
        vi (i mod 100);
        (if i mod 7 = 0 then Value.Null else vf (float_of_int i /. 7.0));
      ]
  done;
  let aggs =
    [
      (Aggregate.Count_star, "n");
      (Aggregate.Sum 2, "sx");
      (Aggregate.Avg 2, "ax");
      (Aggregate.Min 1, "mn");
      (Aggregate.Max 2, "mx");
    ]
  in
  let seq = Aggregate.group_by t ~keys:[ 0 ] ~aggs in
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let par = Aggregate.group_by ~pool t ~keys:[ 0 ] ~aggs in
          check
            (Printf.sprintf "group_by identical at %d domains" domains)
            true (tables_equal seq par);
          check
            (Printf.sprintf "scalar identical at %d domains" domains)
            true
            (Aggregate.scalar ~pool t (Aggregate.Sum 2)
            = Aggregate.scalar t (Aggregate.Sum 2))))
    [ 1; 2; 4; 8 ]

(* Edge cases at a forced-parallel threshold: empty inputs, all-null
   keys, multi-column (generic string path) joins. *)
let prop_parallel_join_matches_sequential =
  let cell = QCheck.Gen.(map (fun k -> if k = 0 then None else Some k) (int_bound 5)) in
  let row_gen = QCheck.Gen.(pair cell (int_bound 3)) in
  QCheck.Test.make ~name:"parallel join = sequential (nulls, dups, empty)"
    ~count:60
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 20) (make row_gen))
        (list_of_size (QCheck.Gen.int_bound 20) (make row_gen)))
    (fun (ls, rs) ->
      let saved = !Join.par_threshold in
      Fun.protect ~finally:(fun () -> Join.par_threshold := saved) @@ fun () ->
      Join.par_threshold := 1;
      let schema = Schema.make [ col "k" Dtype.Int; col "v" Dtype.Int ] in
      let mk name rows =
        Table.of_rows ~name schema
          (List.map
             (fun (k, v) ->
               [ (match k with None -> Value.Null | Some k -> vi k); vi v ])
             rows)
      in
      let l = mk "l" ls and r = mk "r" rs in
      let on1 = [ (0, 0) ] and on2 = [ (0, 0); (1, 1) ] in
      let seq1 = Join.hash_join ~left:l ~right:r ~on:on1 () in
      let seq2 = Join.hash_join ~left:l ~right:r ~on:on2 () in
      with_pool 3 (fun pool ->
          tables_equal seq1 (Join.hash_join ~pool ~left:l ~right:r ~on:on1 ())
          && tables_equal seq2 (Join.hash_join ~pool ~left:l ~right:r ~on:on2 ())))

(* The semi-join int fast path must agree with a brute-force oracle, with
   and without a pool. *)
let prop_semi_join_matches_oracle =
  let cell = QCheck.Gen.(map (fun k -> if k = 0 then None else Some k) (int_bound 6)) in
  QCheck.Test.make ~name:"semi join fast path = oracle" ~count:60
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_bound 20) (make cell))
        (list_of_size (QCheck.Gen.int_bound 20) (make cell)))
    (fun (ls, rs) ->
      let saved = !Join.par_threshold in
      Fun.protect ~finally:(fun () -> Join.par_threshold := saved) @@ fun () ->
      Join.par_threshold := 1;
      let schema = Schema.make [ col "k" Dtype.Int ] in
      let mk name rows =
        Table.of_rows ~name schema
          (List.map
             (fun k -> [ (match k with None -> Value.Null | Some k -> vi k) ])
             rows)
      in
      let l = mk "l" ls and r = mk "r" rs in
      let oracle =
        List.mapi (fun i k -> (i, k)) ls
        |> List.filter_map (fun (i, k) ->
               match k with
               | Some k when List.mem (Some k) rs -> Some i
               | _ -> None)
        |> Array.of_list
      in
      let seq = Join.semi_join_left ~left:l ~right:r ~on:[ (0, 0) ] () in
      seq = oracle
      && with_pool 2 (fun pool ->
             Join.semi_join_left ~pool ~left:l ~right:r ~on:[ (0, 0) ] () = oracle))

let () =
  Alcotest.run "relational"
    [
      ( "row_expr",
        [
          Alcotest.test_case "arithmetic" `Quick test_expr_arith;
          Alcotest.test_case "null comparisons" `Quick test_expr_cmp_null;
          Alcotest.test_case "three-valued logic" `Quick test_expr_three_valued_logic;
          Alcotest.test_case "like patterns" `Quick test_expr_like;
          Alcotest.test_case "columns/map_columns" `Quick test_expr_columns_mapping;
        ] );
      ( "relop",
        [
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "select over nulls" `Quick test_select_null_pred;
          Alcotest.test_case "parallel select = serial" `Quick
            test_select_parallel_matches_serial;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "project computed" `Quick test_project_named;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "order by multi-key" `Quick test_order_by;
          Alcotest.test_case "order by is stable" `Quick test_order_by_stable;
          Alcotest.test_case "top n" `Quick test_top_n;
          Alcotest.test_case "top n clamps" `Quick test_top_n_larger_than_table;
          Alcotest.test_case "limit/union" `Quick test_limit_union;
          QCheck_alcotest.to_alcotest prop_top_n_equals_sort_prefix;
          QCheck_alcotest.to_alcotest prop_distinct_idempotent;
        ] );
      ( "fast_pred",
        [
          Alcotest.test_case "fragment boundaries" `Quick test_fast_pred_fragment;
          QCheck_alcotest.to_alcotest prop_fast_pred_equals_generic;
        ] );
      ( "join",
        [
          Alcotest.test_case "inner hash join" `Quick test_hash_join_inner;
          Alcotest.test_case "null keys" `Quick test_join_null_keys_never_match;
          Alcotest.test_case "multi-key" `Quick test_join_multi_key;
          Alcotest.test_case "semi join" `Quick test_semi_join;
          QCheck_alcotest.to_alcotest prop_join_matches_nested_loop;
        ] );
      ( "parallel_ops",
        [
          Alcotest.test_case "parallel join identical (1/2/4/8 domains)" `Slow
            test_parallel_join_identical;
          Alcotest.test_case "parallel group_by identical (1/2/4/8 domains)"
            `Quick test_parallel_group_by_identical;
          QCheck_alcotest.to_alcotest prop_parallel_join_matches_sequential;
          QCheck_alcotest.to_alcotest prop_semi_join_matches_oracle;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "group by all aggs" `Quick test_group_by;
          Alcotest.test_case "global over empty" `Quick test_group_by_empty_global;
          Alcotest.test_case "null group key" `Quick test_group_keys_with_null;
          Alcotest.test_case "scalar" `Quick test_scalar_aggs;
          Alcotest.test_case "int sum stays int" `Quick test_int_sum_stays_int;
          QCheck_alcotest.to_alcotest prop_group_count_total;
        ] );
    ]
