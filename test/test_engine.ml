(* End-to-end engine tests over a small social graph with known answers. *)

module Db = Graql_engine.Db
module Ddl_exec = Graql_engine.Ddl_exec
module Script_exec = Graql_engine.Script_exec
module Path_exec = Graql_engine.Path_exec
module Parser = Graql_lang.Parser
module Ast = Graql_lang.Ast
module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Subgraph = Graql_graph.Subgraph
module Graph_store = Graql_graph.Graph_store
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str_list = Alcotest.(check (list string))

let csvs =
  [
    ( "users.csv",
      "id,name,age,city\n\
       u1,ada,30,rome\nu2,bob,25,rome\nu3,cyd,35,paris\nu4,dan,40,paris\nu5,eve,20,oslo\n" );
    ( "follows.csv",
      "src,dst,weight\n\
       u1,u2,5\nu2,u1,3\nu2,u3,4\nu3,u2,1\nu3,u4,2\nu4,u5,9\nu1,u3,7\n" );
    ("posts.csv", "id,author,likes\np1,u1,10\np2,u1,3\np3,u2,5\np4,u4,8\n");
  ]

let schema_script =
  {|
create table Users(id varchar(8), name varchar(16), age integer, city varchar(8))
create table Follows(src varchar(8), dst varchar(8), weight integer)
create table Posts(id varchar(8), author varchar(8), likes integer)

create vertex UserVtx(id) from table Users
create vertex PostVtx(id) from table Posts
create vertex CityVtx(city) from table Users

create edge follows with vertices (UserVtx as A, UserVtx as B)
  from table Follows
  where Follows.src = A.id and Follows.dst = B.id

create edge wrote with vertices (UserVtx, PostVtx)
  where PostVtx.author = UserVtx.id

create edge livesIn with vertices (UserVtx, CityVtx)
  where UserVtx.city = CityVtx.city

ingest table Users users.csv
ingest table Follows follows.csv
ingest table Posts posts.csv
|}

let loader name = List.assoc name csvs

let fresh_db ?pool () =
  let db = Db.create ?pool () in
  Ddl_exec.install db;
  ignore
    (Script_exec.exec_script ~loader ~parallel:false db
       (Parser.parse_script schema_script));
  db

let run_one db src =
  match Script_exec.exec_stmt ~loader db (Parser.parse_statement src) with
  | outcome -> outcome

let run_table db src =
  match run_one db src with
  | Script_exec.O_table t -> t
  | _ -> Alcotest.fail "expected table outcome"

let run_subgraph db src =
  match run_one db src with
  | Script_exec.O_subgraph sg -> sg
  | _ -> Alcotest.fail "expected subgraph outcome"

let col_strings t name =
  List.init (Table.nrows t) (fun i ->
      Value.to_string (Table.get_by_name t ~row:i name))

(* ------------------------------------------------------------------ *)
(* DDL + ingest                                                        *)

let test_graph_built () =
  let db = fresh_db () in
  let g = Db.graph db in
  check_int "users" 5 (Vset.size (Graph_store.find_vset_exn g "UserVtx"));
  check_int "posts" 4 (Vset.size (Graph_store.find_vset_exn g "PostVtx"));
  check_int "cities" 3 (Vset.size (Graph_store.find_vset_exn g "CityVtx"));
  check_int "follows" 7 (Eset.size (Graph_store.find_eset_exn g "follows"));
  check_int "wrote" 4 (Eset.size (Graph_store.find_eset_exn g "wrote"));
  (* many-to-one livesIn edges dedupe to one per (user, city) *)
  check_int "livesIn" 5 (Eset.size (Graph_store.find_eset_exn g "livesIn"))

let test_ingest_rebuilds_views () =
  let db = fresh_db () in
  let g = Db.graph db in
  check_int "before" 5 (Vset.size (Graph_store.find_vset_exn g "UserVtx"));
  let loader _ = "id,name,age,city\nu6,fay,28,rome\n" in
  ignore
    (Script_exec.exec_stmt ~loader db
       (Parser.parse_statement "ingest table Users more.csv"));
  let g = Db.graph db in
  check_int "after ingest" 6 (Vset.size (Graph_store.find_vset_exn g "UserVtx"));
  (* u6 lives in rome: livesIn edge appears without re-declaring anything *)
  check_int "livesIn grew" 6 (Eset.size (Graph_store.find_eset_exn g "livesIn"))

let test_ingest_atomic_on_error () =
  let db = fresh_db () in
  let before = Table.nrows (Db.find_table_exn db "Users") in
  let loader _ = "id,name,age,city\nu7,gil,notanint,rome\n" in
  (match
     Script_exec.exec_stmt ~loader db
       (Parser.parse_statement "ingest table Users bad.csv")
   with
  | _ -> Alcotest.fail "expected ingest failure"
  | exception Script_exec.Script_error (_, msg) ->
      check "describes the cell" true
        (String.length msg > 0
        && String.length msg > 10));
  check_int "no partial rows" before (Table.nrows (Db.find_table_exn db "Users"))

let test_selective_view_maintenance () =
  let db = fresh_db () in
  let g1 = Db.graph db in
  (* Append one post: only Posts-dependent views may rebuild. *)
  let loader _ = "id,author,likes\np5,u1,2\n" in
  ignore
    (Script_exec.exec_stmt ~loader db
       (Parser.parse_statement "ingest table Posts more.csv"));
  let g2 = Db.graph db in
  check "UserVtx reused" true
    (Graph_store.find_vset_exn g1 "UserVtx" == Graph_store.find_vset_exn g2 "UserVtx");
  check "CityVtx reused" true
    (Graph_store.find_vset_exn g1 "CityVtx" == Graph_store.find_vset_exn g2 "CityVtx");
  check "follows reused" true
    (Graph_store.find_eset_exn g1 "follows" == Graph_store.find_eset_exn g2 "follows");
  check "livesIn reused" true
    (Graph_store.find_eset_exn g1 "livesIn" == Graph_store.find_eset_exn g2 "livesIn");
  check "PostVtx rebuilt" true
    (not (Graph_store.find_vset_exn g1 "PostVtx" == Graph_store.find_vset_exn g2 "PostVtx"));
  check_int "wrote grew" 5 (Eset.size (Graph_store.find_eset_exn g2 "wrote"));
  (* The selective build equals a from-scratch build. *)
  Db.set_view_fingerprints db [];
  Db.invalidate_graph db;
  let fresh = Db.graph db in
  List.iter
    (fun name ->
      check_int (name ^ " size matches full rebuild")
        (Vset.size (Graph_store.find_vset_exn fresh name))
        (Vset.size (Graph_store.find_vset_exn g2 name)))
    [ "UserVtx"; "PostVtx"; "CityVtx" ];
  List.iter
    (fun name ->
      let a = Graph_store.find_eset_exn fresh name in
      let b = Graph_store.find_eset_exn g2 name in
      check_int (name ^ " edges match") (Eset.size a) (Eset.size b);
      for e = 0 to Eset.size a - 1 do
        if Eset.src a e <> Eset.src b e || Eset.dst a e <> Eset.dst b e then
          Alcotest.failf "%s edge %d differs between selective and full" name e
      done)
    [ "follows"; "wrote"; "livesIn" ]

let test_edge_deps () =
  let db = fresh_db () in
  let dep_of name =
    let ed = List.find (fun (e : Db.edge_def) -> e.Db.ed_name = name) (Db.edge_defs db) in
    Ddl_exec.edge_deps db ed
  in
  check "follows deps" true (dep_of "follows" = [ "follows"; "users" ]);
  check "wrote deps" true (dep_of "wrote" = [ "posts"; "users" ]);
  check "livesIn deps" true (dep_of "livesIn" = [ "users" ])

let test_edge_ddl_error_paths () =
  let db = fresh_db () in
  (* Build lazily: errors surface when the graph is first accessed. *)
  let fresh_with_edge edge =
    let d = fresh_db () in
    ignore (run_one d edge);
    d
  in
  (* Self-edge without aliases: qualifying by the type name is ambiguous. *)
  let d =
    fresh_with_edge
      {|create edge loops with vertices (UserVtx, UserVtx)
        where UserVtx.id = UserVtx.name|}
  in
  (match Db.graph d with
  | _ -> Alcotest.fail "expected ambiguity error"
  | exception Graql_engine.Ddl_exec.Ddl_error (_, msg) ->
      check "mentions aliases" true
        (let n = String.length msg in
         n > 0 && String.sub msg (n - String.length "use 'as' aliases")
                    (String.length "use 'as' aliases") = "use 'as' aliases"));
  (* A where clause that never determines an endpoint key. *)
  let d2 =
    fresh_with_edge
      {|create edge broken with vertices (UserVtx as A, PostVtx as B)
        where A.age > 3|}
  in
  (match Db.graph d2 with
  | _ -> Alcotest.fail "expected key determination error"
  | exception Graql_engine.Ddl_exec.Ddl_error (_, msg) ->
      check "mentions the key" true
        (let frag = "never determines key" in
         let n = String.length frag in
         let rec go i =
           i + n <= String.length msg
           && (String.sub msg i n = frag || go (i + 1))
         in
         go 0));
  (* Disconnected multi-table join. *)
  let d3 =
    fresh_with_edge
      {|create edge disc with vertices (UserVtx as A, PostVtx as B)
        where A.id = Follows.src and B.id = Posts.id and A.age > Users.age|}
  in
  (match Db.graph d3 with
  | _ -> ()
  | exception Graql_engine.Ddl_exec.Ddl_error _ -> ());
  ignore db

let test_create_duplicate_table () =
  let db = fresh_db () in
  match run_one db "create table Users(id integer)" with
  | _ -> Alcotest.fail "expected duplicate error"
  | exception Script_exec.Script_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Basic path queries                                                  *)

let test_forward_step () =
  let db = fresh_db () in
  let t =
    run_table db "select B.id from graph UserVtx (id = 'u1') --follows--> def B: UserVtx ( )"
  in
  check_str_list "u1 follows" [ "u2"; "u3" ] (List.sort compare (col_strings t "id"))

let test_reverse_step () =
  let db = fresh_db () in
  let t =
    run_table db "select A.id from graph UserVtx (id = 'u2') <--follows-- def A: UserVtx ( )"
  in
  check_str_list "followers of u2" [ "u1"; "u3" ]
    (List.sort compare (col_strings t "id"))

let test_vertex_condition_mid_path () =
  let db = fresh_db () in
  let t =
    run_table db
      "select B.id from graph UserVtx (id = 'u1') --follows--> def B: UserVtx (age > 30)"
  in
  check_str_list "only cyd" [ "u3" ] (col_strings t "id")

let test_edge_condition () =
  let db = fresh_db () in
  let t =
    run_table db
      "select B.id from graph UserVtx (id = 'u1') --follows(weight > 5)--> def B: UserVtx ( )"
  in
  check_str_list "heavy edge only" [ "u3" ] (col_strings t "id")

let test_label_attr_in_condition () =
  let db = fresh_db () in
  (* Followees older than the follower. *)
  let t =
    run_table db
      {|select B.id from graph def A: UserVtx (id = 'u2') --follows-->
          def B: UserVtx (age > A.age)|}
  in
  check_str_list "older followees" [ "u1"; "u3" ]
    (List.sort compare (col_strings t "id"))

let test_empty_result () =
  let db = fresh_db () in
  let t =
    run_table db "select B.id from graph UserVtx (id = 'u5') --follows--> def B: UserVtx ( )"
  in
  check_int "u5 follows nobody" 0 (Table.nrows t)

let test_unknown_param_errors () =
  let db = fresh_db () in
  match run_one db "select B.id from graph UserVtx (id = %Nope%) --follows--> def B: UserVtx" with
  | _ -> Alcotest.fail "expected unbound param error"
  | exception Script_exec.Script_error (_, msg) ->
      check "names the param" true
        (msg = "unbound parameter %Nope%")

let test_three_hops () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select C.id from graph UserVtx (id = 'u1') --follows--> UserVtx ( )
          --follows--> UserVtx ( ) --follows--> def C: UserVtx ( )|}
  in
  (* u1->u2->u1->{u2,u3}, u1->u2->u3->{u2,u4}, u1->u3->u2->{u1,u3}, u1->u3->u4->u5 *)
  check_str_list "3-hop endpoints (bag)"
    [ "u1"; "u2"; "u2"; "u3"; "u3"; "u4"; "u5" ]
    (List.sort compare (col_strings t "id"))

(* ------------------------------------------------------------------ *)
(* Labels: set vs element-wise (Eq. 6 vs Eq. 8)                        *)

let test_foreach_matches_only_cycles () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select x.id from graph foreach x: UserVtx ( ) --follows--> UserVtx ( )
          --follows--> x|}
  in
  (* 2-cycles only: u1<->u2 and u2<->u3. *)
  check_str_list "cycle heads" [ "u1"; "u2"; "u2"; "u3" ]
    (List.sort compare (col_strings t "id"))

let test_set_label_superset_of_foreach () =
  let db = fresh_db () in
  let def_rows =
    Table.nrows
      (run_table db
         {|select X.id from graph def X: UserVtx ( ) --follows--> UserVtx ( )
             --follows--> X|})
  in
  let each_rows =
    Table.nrows
      (run_table db
         {|select x.id from graph foreach x: UserVtx ( ) --follows--> UserVtx ( )
             --follows--> x|})
  in
  check_int "foreach count" 4 each_rows;
  check_int "set-label count" 10 def_rows;
  check "set is superset" true (def_rows > each_rows)

let test_edge_label_in_targets () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select E.weight as w from graph UserVtx (id = 'u1')
          --def E: follows--> UserVtx ( )|}
  in
  check_str_list "edge attrs via label" [ "5"; "7" ]
    (List.sort compare (col_strings t "w"))

let test_edge_label_in_condition () =
  let db = fresh_db () in
  (* Two-hop walks with strictly increasing edge weight. *)
  let t =
    run_table db
      {|select C.id from graph UserVtx ( ) --def E: follows--> UserVtx ( )
          --follows(weight > E.weight)--> def C: UserVtx ( )|}
  in
  check_int "increasing-weight walks" 5 (Table.nrows t)

let test_edge_label_in_star_flatten () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select * from graph UserVtx (id = 'u4') --def F: wrote--> PostVtx ( )
        into table flatF|}
  in
  check "labeled edge column prefix" true
    (Graql_storage.Schema.find (Table.schema t) "F.author" <> None);
  check "edge attr value" true
    (Table.get_by_name t ~row:0 "F.author" = Value.Str "u4")

(* ------------------------------------------------------------------ *)
(* Multi-path composition                                              *)

let test_and_composition_join () =
  let db = fresh_db () in
  (* Users who follow someone AND wrote a post; one row per
     (follow edge, post) pair via the shared foreach label. *)
  let t =
    run_table db
      {|select u.id, PostVtx.id as post from graph
          (foreach u: UserVtx ( ) --follows--> UserVtx ( ))
        and
          (u --wrote--> PostVtx ( ))|}
  in
  (* u1: 2 followees x 2 posts = 4; u2: 2 x 1 = 2; u3: 0 posts; u4: 1 x 1 = 1 *)
  check_int "join multiplicity" 7 (Table.nrows t);
  let pairs =
    List.sort compare
      (List.init (Table.nrows t) (fun i ->
           ( Value.to_string (Table.get_by_name t ~row:i "id"),
             Value.to_string (Table.get_by_name t ~row:i "post") )))
  in
  check "u4 pair present" true (List.mem ("u4", "p4") pairs);
  check "u3 absent" true (not (List.exists (fun (u, _) -> u = "u3") pairs))

let test_or_composition_union () =
  let db = fresh_db () in
  let sg =
    run_subgraph db
      {|select * from graph UserVtx (id = 'u1') --follows--> UserVtx ( )
        or UserVtx (id = 'u4') --follows--> UserVtx ( )
        into subgraph either|}
  in
  check "u2 u3 u5 and heads" true
    (List.length (Subgraph.vertex_list sg ~vtype:"UserVtx") = 5);
  check_int "edges from both" 3 (Subgraph.total_edges sg)

let test_and_without_shared_label_fails () =
  let db = fresh_db () in
  match
    run_one db
      {|select * from graph (UserVtx --follows--> UserVtx)
        and (UserVtx --wrote--> PostVtx) into subgraph G|}
  with
  | _ -> Alcotest.fail "expected shared-label error"
  | exception Script_exec.Script_error (_, msg) ->
      check "mentions label" true
        (msg = "'and' composition requires a shared label between the operands")

(* ------------------------------------------------------------------ *)
(* Type matching and regexes                                           *)

let test_variant_edge_step () =
  let db = fresh_db () in
  let sg =
    run_subgraph db
      "select * from graph UserVtx (id = 'u1') --[ ]--> [ ] into subgraph out1"
  in
  (* u1: follows u2,u3; wrote p1,p2; livesIn rome = 5 edges, 5+1 vertices *)
  check_int "vertices" 6 (Subgraph.total_vertices sg);
  check_int "edges" 5 (Subgraph.total_edges sg)

let test_variant_constrained_by_next_type () =
  let db = fresh_db () in
  let t =
    run_table db
      "select P.id from graph UserVtx (id = 'u1') --[ ]--> def P: PostVtx ( )"
  in
  check_str_list "only posts" [ "p1"; "p2" ] (List.sort compare (col_strings t "id"))

let test_regex_plus_cycles_terminate () =
  let db = fresh_db () in
  (* The follows graph has cycles; closure must terminate. *)
  let sg =
    run_subgraph db
      "select * from graph UserVtx (id = 'u1') ( --follows--> [ ] )+ into subgraph reach"
  in
  (* From u1 everything is reachable: u2,u3 then u1,u4, then u5. *)
  check_int "reachable users" 5
    (List.length (Subgraph.vertex_list sg ~vtype:"UserVtx"))

let test_regex_star_includes_start () =
  let db = fresh_db () in
  let sg =
    run_subgraph db
      "select * from graph UserVtx (id = 'u5') ( --follows--> [ ] )* into subgraph r5"
  in
  (* u5 has no out-edges: star still matches zero repetitions. *)
  check "start included" true (Subgraph.vertex_list sg ~vtype:"UserVtx" <> [])

let test_regex_exact_count () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select E.id from graph UserVtx (id = 'u3') ( --follows--> [ ] ){3}
          --wrote--> def E: PostVtx ( )|}
  in
  (* 3 hops from u3: u3->u2->u1->{u2,u3}, u3->u2->u3->{u2,u4}, u3->u4->u5->X.
     Then wrote: u2 -> p3 (x2 paths to u2? u2 reached at level 3 via u1 and
     via u3: level sets dedupe per level => one u2), u4 -> p4. *)
  check_str_list "posts 3 hops out" [ "p3"; "p4" ]
    (List.sort compare (col_strings t "id"))

let test_regex_zero_count () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select B.id from graph UserVtx (id = 'u1') ( --follows--> [ ] ){0}
          --follows--> def B: UserVtx ( )|}
  in
  check_str_list "zero reps = stay" [ "u2"; "u3" ]
    (List.sort compare (col_strings t "id"))

let test_regex_with_condition_inside () =
  let db = fresh_db () in
  let sg =
    run_subgraph db
      {|select * from graph UserVtx (id = 'u1')
          ( --follows(weight > 3)--> UserVtx ( ) )+ into subgraph heavy|}
  in
  (* heavy edges: u1->u2 (5), u2->u3 (4), u4->u5 (9), u1->u3 (7).
     From u1: u2, u3; from u2: u3. No heavy edge out of u3. *)
  check_int "heavy reach" 3
    (List.length (Subgraph.vertex_list sg ~vtype:"UserVtx"))

(* ------------------------------------------------------------------ *)
(* Results                                                             *)

let test_into_subgraph_star_captures_edges () =
  let db = fresh_db () in
  let sg =
    run_subgraph db
      "select * from graph UserVtx (id = 'u1') --follows--> UserVtx ( ) into subgraph g1"
  in
  check_int "vertices" 3 (Subgraph.total_vertices sg);
  check_int "edges" 2 (Subgraph.total_edges sg);
  check "edge type" true (Subgraph.etypes sg = [ "follows" ])

let test_into_subgraph_endpoints_only () =
  let db = fresh_db () in
  let sg =
    run_subgraph db
      {|select PostVtx from graph UserVtx (id = 'u1') --wrote--> PostVtx ( )
        into subgraph posts1|}
  in
  check_int "only post endpoints" 2 (Subgraph.total_vertices sg);
  check_int "no edges" 0 (Subgraph.total_edges sg);
  check "only post type" true (Subgraph.vtypes sg = [ "postvtx" ])

let test_select_star_into_table_flattens () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select * from graph UserVtx (id = 'u1') --wrote--> PostVtx ( )
        into table flat|}
  in
  (* Users (4 cols) + wrote attrs (Posts driving: 3 cols) + Posts (3 cols) *)
  check_int "flattened arity" 10 (Table.arity t);
  check_int "two rows" 2 (Table.nrows t);
  let schema = Table.schema t in
  check "prefixed names" true
    (Graql_storage.Schema.find schema "UserVtx.id" <> None
    && Graql_storage.Schema.find schema "PostVtx.likes" <> None);
  (* and the follow-up table select can read the dotted columns *)
  let s =
    run_table db
      "select count(*) as n, sum(PostVtx.likes) as total from table flat"
  in
  check "post-processing" true
    (Table.get_by_name s ~row:0 "total" = Value.Int 13)

let test_seeded_query () =
  let db = fresh_db () in
  ignore
    (run_one db
       {|select UserVtx from graph UserVtx ( ) --livesIn--> CityVtx (city = 'rome')
         into subgraph romans|});
  let t =
    run_table db
      "select P.id from graph romans.UserVtx ( ) --wrote--> def P: PostVtx ( )"
  in
  (* romans = u1, u2 (u6 absent here); their posts: p1 p2 p3 *)
  check_str_list "roman posts" [ "p1"; "p2"; "p3" ]
    (List.sort compare (col_strings t "id"))

let test_seeded_with_condition () =
  let db = fresh_db () in
  ignore
    (run_one db
       "select UserVtx from graph UserVtx ( ) --follows--> UserVtx ( ) into subgraph f");
  let t =
    run_table db "select UserVtx.id from graph f.UserVtx (age > 30)"
  in
  check_str_list "filtered seed" [ "u3"; "u4" ]
    (List.sort compare (col_strings t "id"))

(* ------------------------------------------------------------------ *)
(* Table statements                                                    *)

let test_table_where_group_order_top () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select city, count(*) as n, avg(age) as avgAge from table Users
        where age >= 25 group by city order by n desc, city asc|}
  in
  check_int "rows" 2 (Table.nrows t);
  check "paris first (2 users >= 25)" true
    (Table.get_by_name t ~row:0 "city" = Value.Str "paris");
  check "avg age" true (Table.get_by_name t ~row:0 "avgAge" = Value.Float 37.5)

let test_table_top_without_order () =
  let db = fresh_db () in
  let t = run_table db "select top 2 id from table Users" in
  check_int "limit semantics" 2 (Table.nrows t)

let test_table_distinct () =
  let db = fresh_db () in
  let t = run_table db "select distinct city from table Users" in
  check_int "three cities" 3 (Table.nrows t)

let test_table_implicit_join () =
  let db = fresh_db () in
  let t =
    run_table db
      {|select name, likes from table Users as u, Posts as p
        where u.id = p.author order by likes desc|}
  in
  check_int "4 pairs" 4 (Table.nrows t);
  check "best post author" true (Table.get_by_name t ~row:0 "name" = Value.Str "ada")

let test_table_expression_targets () =
  let db = fresh_db () in
  let t =
    run_table db "select id, age * 2 as dbl from table Users where id = 'u1'"
  in
  check "computed col" true (Table.get_by_name t ~row:0 "dbl" = Value.Int 60)

let test_params_in_table_select () =
  let db = fresh_db () in
  ignore (run_one db "set %City% = 'rome'");
  let t = run_table db "select id from table Users where city = %City%" in
  check_int "two romans" 2 (Table.nrows t)

let test_global_aggregate_no_group () =
  let db = fresh_db () in
  let t = run_table db "select count(*) as n, max(age) as oldest from table Users" in
  check "count" true (Table.get_by_name t ~row:0 "n" = Value.Int 5);
  check "max" true (Table.get_by_name t ~row:0 "oldest" = Value.Int 40)

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let test_planner_direction () =
  let db = fresh_db () in
  let params _ = None in
  let path_of src =
    match Parser.parse_statement src with
    | Ast.Select_graph { sg_path = Ast.M_path p; _ } -> p
    | _ -> Alcotest.fail "expected simple path"
  in
  let fwd =
    path_of "select * from graph UserVtx (id = 'u1') --follows--> UserVtx ( ) into subgraph g"
  in
  check "selective head stays forward" true
    (Path_exec.chosen_direction fwd ~db ~params = `Forward);
  let bwd =
    path_of "select * from graph UserVtx ( ) --follows--> UserVtx (id = 'u5') into subgraph g"
  in
  check "selective tail reverses" true
    (Path_exec.chosen_direction bwd ~db ~params = `Backward)

let test_reversal_preserves_results () =
  let db = fresh_db () in
  let params _ = None in
  let mp =
    match
      Parser.parse_statement
        {|select * from graph UserVtx ( ) --follows--> UserVtx ( )
            --wrote--> PostVtx (likes > 4) into subgraph g|}
    with
    | Ast.Select_graph { sg_path; _ } -> sg_path
    | _ -> assert false
  in
  let collect auto =
    let res =
      Path_exec.run_multipath ~db ~params ~mode:Path_exec.Keep_all
        ~auto_reverse:auto mp
    in
    match res.Path_exec.comps with
    | [ c ] ->
        (* Backward execution lays columns out in reverse; normalize by the
           display order before comparing. *)
        let order =
          List.sort
            (fun a b ->
              compare c.Path_exec.slots.(a).Path_exec.s_step
                c.Path_exec.slots.(b).Path_exec.s_step)
            (List.init (Array.length c.Path_exec.slots) Fun.id)
        in
        List.sort compare
          (Array.to_list
             (Array.map (fun row -> List.map (fun i -> row.(i)) order)
                c.Path_exec.rows))
    | _ -> Alcotest.fail "one component expected"
  in
  check "reversed run equals forward run" true (collect true = collect false)

(* ------------------------------------------------------------------ *)
(* Intermediate-result budget                                           *)

let test_cell_budget_enforced () =
  let db = fresh_db () in
  let mp =
    match
      Parser.parse_statement
        {|select * from graph UserVtx ( ) --follows--> UserVtx ( )
            --follows--> UserVtx ( ) into table Big|}
    with
    | Ast.Select_graph { sg_path; _ } -> sg_path
    | _ -> assert false
  in
  let run max_cells =
    Path_exec.run_multipath ~db
      ~params:(fun _ -> None)
      ~mode:Path_exec.Keep_all ~max_cells mp
  in
  (* Generous budget: fine. *)
  ignore (run 1_000_000);
  (* Tiny budget: a clean, diagnosable error instead of blowing up. *)
  match run 10 with
  | _ -> Alcotest.fail "expected budget error"
  | exception Path_exec.Exec_error (_, msg) ->
      check "mentions the budget" true
        (String.length msg > 0 && String.sub msg 0 19 = "intermediate result")

(* ------------------------------------------------------------------ *)
(* Parallel frontier expansion                                          *)

let test_parallel_expansion_matches_serial () =
  (* Build a graph wide enough that the executor's parallel branch
     (frontier >= 2048 rows) actually runs: 60 users x 60 followees. *)
  let n = 60 in
  let users =
    "id,name,age,city\n"
    ^ String.concat ""
        (List.init n (fun i -> Printf.sprintf "w%d,u%d,%d,rome\n" i i (20 + (i mod 30))))
  in
  let follows =
    "src,dst,weight\n"
    ^ String.concat ""
        (List.concat_map
           (fun i ->
             List.init n (fun j ->
                 Printf.sprintf "w%d,w%d,%d\n" i j ((i + j) mod 10)))
           (List.init n Fun.id))
  in
  let loader = function
    | "users.csv" -> users
    | "follows.csv" -> follows
    | "posts.csv" -> "id,author,likes\n"
    | f -> raise (Sys_error f)
  in
  let run pool =
    let db = Db.create ?pool () in
    Ddl_exec.install db;
    ignore
      (Script_exec.exec_script ~loader ~parallel:false db
         (Parser.parse_script schema_script));
    let t =
      match
        Script_exec.exec_stmt db
          (Parser.parse_statement
             {|select C.id from graph UserVtx ( ) --follows--> UserVtx (age > 30)
                 --follows--> def C: UserVtx (age < 25) into table Wide|})
      with
      | Script_exec.O_table t -> t
      | _ -> Alcotest.fail "table expected"
    in
    List.sort compare (col_strings t "id")
  in
  let serial = run None in
  check "frontier is big enough to exercise the parallel branch" true
    (List.length serial > 2048);
  let pool = Graql_parallel.Domain_pool.create ~domains:4 () in
  let parallel = run (Some pool) in
  Graql_parallel.Domain_pool.shutdown pool;
  check "parallel expansion = serial" true (serial = parallel)

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)

module Explain = Graql_engine.Explain

let test_explain_plans () =
  let db = fresh_db () in
  let params _ = None in
  let mp src =
    match Parser.parse_statement src with
    | Ast.Select_graph { sg_path; _ } -> sg_path
    | _ -> assert false
  in
  (* Selective head: forward, key lookup seed. *)
  (match
     Explain.explain_multipath ~db ~params
       (mp "select * from graph UserVtx (id = 'u1') --follows--> UserVtx into subgraph G")
   with
  | [ plan ] ->
      check "forward" true (plan.Explain.pl_direction = `Forward);
      check "key seed" true
        (match plan.Explain.pl_seed with
        | Explain.Seed_key_lookup "u1" -> true
        | _ -> false);
      check "seed estimate 1" true (plan.Explain.pl_seed_estimate = 1.0);
      check_int "one step" 1 (List.length plan.Explain.pl_steps)
  | _ -> Alcotest.fail "one plan expected");
  (* Selective tail: planner reverses and the plan reports it. *)
  (match
     Explain.explain_multipath ~db ~params
       (mp "select * from graph UserVtx ( ) --follows--> UserVtx (id = 'u5') into subgraph G")
   with
  | [ plan ] ->
      check "backward" true (plan.Explain.pl_direction = `Backward);
      check "reversed seed is the tail" true
        (match plan.Explain.pl_seed with
        | Explain.Seed_key_lookup "u5" -> true
        | _ -> false)
  | _ -> Alcotest.fail "one plan expected");
  (* Multipath: one plan per operand. *)
  check_int "two plans" 2
    (List.length
       (Explain.explain_multipath ~db ~params
          (mp
             {|select * from graph (def u: UserVtx --follows--> UserVtx)
               and (u --wrote--> PostVtx) into subgraph G|})))

(* ------------------------------------------------------------------ *)
(* Export / reload                                                     *)

module Db_io = Graql_engine.Db_io

let test_export_reload_roundtrip () =
  let db = fresh_db () in
  ignore
    (run_one db
       {|select B.id from graph UserVtx (id = 'u1') --follows--> def B: UserVtx
         into table R1|});
  let files = Db_io.export_files db in
  let loader name =
    match List.assoc_opt name files with
    | Some doc -> doc
    | None -> raise (Sys_error name)
  in
  (* Reload from the dump into a fresh database. *)
  let db2 = Db.create () in
  Ddl_exec.install db2;
  ignore
    (Script_exec.exec_script ~loader ~parallel:false db2
       (Parser.parse_script (List.assoc "schema.graql" files)));
  (* Same table contents... *)
  List.iter
    (fun name ->
      let t1 = Db.find_table_exn db name and t2 = Db.find_table_exn db2 name in
      check_int (name ^ " rows") (Table.nrows t1) (Table.nrows t2);
      Table.iter_rows
        (fun i ->
          if Table.row t1 i <> Table.row t2 i then
            Alcotest.failf "%s row %d differs after reload" name i)
        t1)
    [ "Users"; "Follows"; "Posts"; "R1" ];
  (* ...and the same query answers on the rebuilt graph views. *)
  let q = "select B.id from graph UserVtx (id = 'u2') --follows--> def B: UserVtx ( )" in
  let t1 = run_table db q in
  let t2 =
    match Script_exec.exec_stmt db2 (Parser.parse_statement q) with
    | Script_exec.O_table t -> t
    | _ -> Alcotest.fail "table expected"
  in
  check "same answers after reload" true
    (List.sort compare (col_strings t1 "id")
    = List.sort compare (col_strings t2 "id"))

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "graql_export" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_export_manifest_verifies () =
  let db = fresh_db () in
  with_temp_dir (fun dir ->
      Db_io.export db ~dir;
      check "manifest written" true
        (Sys.file_exists (Filename.concat dir Db_io.manifest_name));
      (* No stray temp files: everything on disk is either the manifest or
         listed in it. *)
      let listed =
        List.map fst (Db_io.export_files db) @ [ Db_io.manifest_name ]
      in
      Array.iter
        (fun f -> check (f ^ " accounted for") true (List.mem f listed))
        (Sys.readdir dir);
      check "clean verify" true (Db_io.verify ~dir = []);
      (* The checking loader serves intact files... *)
      let loader = Db_io.checked_loader ~dir in
      check "loader serves schema" true
        (String.length (loader "schema.graql") > 0);
      (* ...and refuses corrupted ones. *)
      let victim = Filename.concat dir "users.csv" in
      let oc = open_out_gen [ Open_append ] 0o644 victim in
      output_string oc "tampered\n";
      close_out oc;
      (match Db_io.verify ~dir with
      | [ (name, _) ] -> Alcotest.(check string) "names victim" "users.csv" name
      | problems ->
          Alcotest.failf "expected exactly one problem, got %d"
            (List.length problems));
      match Db_io.checked_loader ~dir "users.csv" with
      | _ -> Alcotest.fail "expected integrity failure"
      | exception Graql_engine.Graql_error.Error (Graql_engine.Graql_error.Io _)
        ->
          ())

let test_export_manifest_checksum_catches_same_size () =
  let db = fresh_db () in
  with_temp_dir (fun dir ->
      Db_io.export db ~dir;
      (* Same-size corruption: flip one byte so only the checksum can tell. *)
      let victim = Filename.concat dir "users.csv" in
      let ic = open_in_bin victim in
      let doc = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string doc in
      Bytes.set b (Bytes.length b - 2)
        (if Bytes.get b (Bytes.length b - 2) = 'x' then 'y' else 'x');
      let oc = open_out_bin victim in
      output_bytes oc b;
      close_out oc;
      match Db_io.verify ~dir with
      | [ ("users.csv", reason) ] ->
          check "checksum mismatch reported" true
            (String.length reason > 0)
      | _ -> Alcotest.fail "expected checksum mismatch")

(* ------------------------------------------------------------------ *)
(* Script scheduling                                                   *)

let test_dependence_edges () =
  let script =
    Parser.parse_script
      {|create table A(x integer)
        ingest table A a.csv
        select x from table A into table B
        select x from table A into table C
        select x from table B into table D|}
  in
  let edges = Script_exec.dependence_edges script in
  let dep i j = List.mem (i, j) edges in
  check "ingest after create" true (dep 0 1);
  check "select after ingest" true (dep 1 2);
  check "D after B" true (dep 2 4);
  check "independent selects unordered" false (dep 2 3 || dep 3 2)

let test_parallel_script_equals_serial () =
  let pool = Graql_parallel.Domain_pool.create ~domains:4 () in
  let script =
    schema_script
    ^ {|
      select B.id from graph UserVtx (id = 'u1') --follows--> def B: UserVtx into table R1
      select A.id from graph UserVtx (id = 'u2') <--follows-- def A: UserVtx into table R2
      select city, count(*) as n from table Users group by city into table R3
      select id from table R1 order by id into table R1s
      |}
  in
  let run parallel =
    let db = Db.create ~pool () in
    Ddl_exec.install db;
    ignore (Script_exec.exec_script ~loader ~parallel db (Parser.parse_script script));
    List.map
      (fun name ->
        let t = Db.find_table_exn db name in
        List.init (Table.nrows t) (fun i ->
            Array.to_list (Array.map Value.to_string (Table.row t i))))
      [ "R1"; "R2"; "R3"; "R1s" ]
  in
  let serial = run false and parallel = run true in
  Graql_parallel.Domain_pool.shutdown pool;
  check "identical outputs" true (serial = parallel)

let () =
  Alcotest.run "engine"
    [
      ( "ddl-ingest",
        [
          Alcotest.test_case "views built" `Quick test_graph_built;
          Alcotest.test_case "ingest rebuilds views" `Quick test_ingest_rebuilds_views;
          Alcotest.test_case "ingest is atomic" `Quick test_ingest_atomic_on_error;
          Alcotest.test_case "selective maintenance" `Quick
            test_selective_view_maintenance;
          Alcotest.test_case "edge dependencies" `Quick test_edge_deps;
          Alcotest.test_case "edge DDL error paths" `Quick test_edge_ddl_error_paths;
          Alcotest.test_case "duplicate table" `Quick test_create_duplicate_table;
        ] );
      ( "paths",
        [
          Alcotest.test_case "forward step" `Quick test_forward_step;
          Alcotest.test_case "reverse step" `Quick test_reverse_step;
          Alcotest.test_case "vertex condition" `Quick test_vertex_condition_mid_path;
          Alcotest.test_case "edge condition" `Quick test_edge_condition;
          Alcotest.test_case "label attr in condition" `Quick
            test_label_attr_in_condition;
          Alcotest.test_case "empty result" `Quick test_empty_result;
          Alcotest.test_case "unbound parameter" `Quick test_unknown_param_errors;
          Alcotest.test_case "three hops (bag semantics)" `Quick test_three_hops;
        ] );
      ( "labels",
        [
          Alcotest.test_case "foreach = cycles only" `Quick
            test_foreach_matches_only_cycles;
          Alcotest.test_case "set label is superset" `Quick
            test_set_label_superset_of_foreach;
          Alcotest.test_case "edge label in targets" `Quick
            test_edge_label_in_targets;
          Alcotest.test_case "edge label in condition" `Quick
            test_edge_label_in_condition;
          Alcotest.test_case "edge label in select *" `Quick
            test_edge_label_in_star_flatten;
        ] );
      ( "multipath",
        [
          Alcotest.test_case "and joins on label" `Quick test_and_composition_join;
          Alcotest.test_case "or unions" `Quick test_or_composition_union;
          Alcotest.test_case "and needs shared label" `Quick
            test_and_without_shared_label_fails;
        ] );
      ( "variant-regex",
        [
          Alcotest.test_case "variant edge step" `Quick test_variant_edge_step;
          Alcotest.test_case "variant constrained by type" `Quick
            test_variant_constrained_by_next_type;
          Alcotest.test_case "plus over cycles" `Quick test_regex_plus_cycles_terminate;
          Alcotest.test_case "star includes start" `Quick test_regex_star_includes_start;
          Alcotest.test_case "exact {n}" `Quick test_regex_exact_count;
          Alcotest.test_case "{0} is identity" `Quick test_regex_zero_count;
          Alcotest.test_case "condition inside regex" `Quick
            test_regex_with_condition_inside;
        ] );
      ( "results",
        [
          Alcotest.test_case "subgraph * captures edges" `Quick
            test_into_subgraph_star_captures_edges;
          Alcotest.test_case "endpoint capture" `Quick test_into_subgraph_endpoints_only;
          Alcotest.test_case "select * flattens" `Quick
            test_select_star_into_table_flattens;
          Alcotest.test_case "seeded query" `Quick test_seeded_query;
          Alcotest.test_case "seeded with condition" `Quick test_seeded_with_condition;
        ] );
      ( "table-statements",
        [
          Alcotest.test_case "where/group/order" `Quick test_table_where_group_order_top;
          Alcotest.test_case "top without order" `Quick test_table_top_without_order;
          Alcotest.test_case "distinct" `Quick test_table_distinct;
          Alcotest.test_case "implicit join" `Quick test_table_implicit_join;
          Alcotest.test_case "expression targets" `Quick test_table_expression_targets;
          Alcotest.test_case "parameters" `Quick test_params_in_table_select;
          Alcotest.test_case "global aggregates" `Quick test_global_aggregate_no_group;
        ] );
      ( "planner",
        [
          Alcotest.test_case "direction choice" `Quick test_planner_direction;
          Alcotest.test_case "reversal preserves results" `Quick
            test_reversal_preserves_results;
        ] );
      ( "budget",
        [ Alcotest.test_case "cell budget enforced" `Quick test_cell_budget_enforced ] );
      ( "parallel-expansion",
        [
          Alcotest.test_case "pool = serial results" `Quick
            test_parallel_expansion_matches_serial;
        ] );
      ( "explain-export",
        [
          Alcotest.test_case "explain plans" `Quick test_explain_plans;
          Alcotest.test_case "export/reload roundtrip" `Quick
            test_export_reload_roundtrip;
          Alcotest.test_case "export manifest verifies" `Quick
            test_export_manifest_verifies;
          Alcotest.test_case "manifest catches same-size corruption" `Quick
            test_export_manifest_checksum_catches_same_size;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "dependence edges" `Quick test_dependence_edges;
          Alcotest.test_case "parallel = serial" `Quick
            test_parallel_script_equals_serial;
        ] );
    ]
