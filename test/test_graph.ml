module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Schema = Graql_storage.Schema
module Table = Graql_storage.Table
module Row_expr = Graql_relational.Row_expr
module Csr = Graql_graph.Csr
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Builder = Graql_graph.Builder
module Graph_store = Graql_graph.Graph_store
module Subgraph = Graql_graph.Subgraph
module Bitset = Graql_util.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let col n t = { Schema.name = n; dtype = t }
let vi i = Value.Int i
let vs s = Value.Str s

(* ------------------------------------------------------------------ *)
(* CSR                                                                 *)

let test_csr_basic () =
  let src = [| 0; 0; 1; 2; 2; 2 |] and dst = [| 1; 2; 2; 0; 1; 1 |] in
  let csr = Csr.build ~nvertices:3 ~src ~dst () in
  check_int "nvertices" 3 (Csr.nvertices csr);
  check_int "nedges" 6 (Csr.nedges csr);
  check_int "deg 0" 2 (Csr.degree csr 0);
  check_int "deg 2" 3 (Csr.degree csr 2);
  check_int "max degree" 3 (Csr.max_degree csr);
  check "avg degree" true (Csr.avg_degree csr = 2.0);
  let nbrs = Csr.neighbors csr 2 in
  check "neighbors with eids" true (nbrs = [| (0, 3); (1, 4); (1, 5) |])

let test_csr_isolated_and_empty () =
  let csr = Csr.build ~nvertices:4 ~src:[||] ~dst:[||] () in
  check_int "no edges" 0 (Csr.nedges csr);
  check_int "isolated degree" 0 (Csr.degree csr 3);
  Alcotest.check_raises "vertex out of range"
    (Invalid_argument "Csr.build: vertex out of range") (fun () ->
      ignore (Csr.build ~nvertices:2 ~src:[| 5 |] ~dst:[| 0 |] ()))

let test_csr_parallel_edges () =
  (* Multigraph: duplicate (src,dst) pairs must both be indexed. *)
  let csr = Csr.build ~nvertices:2 ~src:[| 0; 0 |] ~dst:[| 1; 1 |] () in
  check_int "both kept" 2 (Csr.degree csr 0)

let prop_csr_preserves_edges =
  QCheck.Test.make ~name:"csr indexes every edge exactly once" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_bound 50) (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let src = Array.of_list (List.map fst edges) in
      let dst = Array.of_list (List.map snd edges) in
      let csr = Csr.build ~nvertices:10 ~src ~dst () in
      let seen = Array.make (Array.length src) false in
      for v = 0 to 9 do
        Csr.iter_neighbors csr v (fun ~dst:d ~eid ->
            if seen.(eid) then failwith "duplicate eid";
            if src.(eid) <> v || dst.(eid) <> d then failwith "wrong endpoint";
            seen.(eid) <- true)
      done;
      Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Vertex building (Eq. 1)                                             *)

let people_schema =
  Schema.make
    [ col "id" (Dtype.Varchar 4); col "country" (Dtype.Varchar 4); col "score" Dtype.Int ]

let mk_people () =
  Table.of_rows ~name:"people" people_schema
    [
      [ vs "a"; vs "US"; vi 10 ];
      [ vs "b"; vs "IT"; vi 20 ];
      [ vs "c"; vs "US"; vi 30 ];
      [ vs "d"; Value.Null; vi 40 ];
    ]

let test_build_vertices_one_to_one () =
  let v = Builder.build_vertices ~name:"P" ~source:(mk_people ()) ~key_cols:[ 0 ] () in
  check_int "size" 4 (Vset.size v);
  check "one-to-one" true (Vset.one_to_one v);
  check "full attrs visible" true (Schema.arity (Vset.attr_schema v) = 3);
  check "find by key" true (Vset.find_by_key v [ vs "c" ] = Some 2);
  check "attr access" true (Vset.attr_by_name v ~vertex:2 "score" = vi 30)

let test_build_vertices_many_to_one () =
  (* Country vertices: distinct country codes; Null keys skipped. *)
  let v = Builder.build_vertices ~name:"C" ~source:(mk_people ()) ~key_cols:[ 1 ] () in
  check_int "two countries" 2 (Vset.size v);
  check "many-to-one" false (Vset.one_to_one v);
  check "key-only attrs" true (Schema.arity (Vset.attr_schema v) = 1);
  check "US exists" true (Vset.find_by_key v [ vs "US" ] <> None);
  check "null key skipped" true (Vset.find_by_key v [ Value.Null ] = None)

let test_build_vertices_with_condition () =
  let cond = Row_expr.(Cmp (Gt, Col 2, Const (vi 15))) in
  let v =
    Builder.build_vertices ~name:"P" ~source:(mk_people ()) ~key_cols:[ 0 ] ~cond ()
  in
  check_int "filtered" 3 (Vset.size v);
  check "a excluded" true (Vset.find_by_key v [ vs "a" ] = None)

let test_build_vertices_composite_key () =
  let v =
    Builder.build_vertices ~name:"CK" ~source:(mk_people ()) ~key_cols:[ 1; 2 ] ()
  in
  check_int "3 non-null combos" 3 (Vset.size v);
  check "lookup composite" true (Vset.find_by_key v [ vs "US"; vi 30 ] = Some 2)

(* ------------------------------------------------------------------ *)
(* Edge building (Eq. 2) — the Fig. 5 example verbatim                 *)

let fig5_producers () =
  (* id, country — Fig. 5 left table *)
  Table.of_rows ~name:"Producers"
    (Schema.make [ col "id" Dtype.Int; col "country" (Dtype.Varchar 2) ])
    [
      [ vi 1; vs "US" ];
      [ vi 2; vs "IT" ];
      [ vi 3; vs "FR" ];
      [ vi 4; vs "US" ];
    ]

let fig5_offers () =
  (* id, vendor(=country holder) — Fig. 5 right table, as (product producer,
     vendor country) pairs via the join below. We model the paper's
     4-row/4-row example with an explicit pairs table. *)
  Table.of_rows ~name:"Pairs"
    (Schema.make
       [ col "pcountry" (Dtype.Varchar 2); col "vcountry" (Dtype.Varchar 2) ])
    [
      [ vs "US"; vs "CA" ];
      [ vs "US"; vs "CA" ];
      [ vs "IT"; vs "CN" ];
      [ vs "IT"; vs "CN" ];
    ]

let test_fig5_many_to_one_edges () =
  let producers = fig5_producers () in
  let vendors =
    Table.of_rows ~name:"Vendors"
      (Schema.make [ col "id" Dtype.Int; col "country" (Dtype.Varchar 2) ])
      [ [ vi 1; vs "CA" ]; [ vi 2; vs "CN" ]; [ vi 3; vs "CA" ] ]
  in
  let pc = Builder.build_vertices ~name:"PC" ~source:producers ~key_cols:[ 1 ] () in
  let vc = Builder.build_vertices ~name:"VC" ~source:vendors ~key_cols:[ 1 ] () in
  let driving = fig5_offers () in
  let e =
    Builder.build_edges ~name:"export" ~src:pc ~dst:vc ~driving ~src_key:[ 0 ]
      ~dst_key:[ 1 ] ~dedupe:true ()
  in
  (* Fig. 5: "results in two edges created between the US and CA, and
     between IT and CN" — duplicates collapse under many-to-one. *)
  check_int "two edges" 2 (Eset.size e);
  let pair i = (Vset.key_string pc (Eset.src e i), Vset.key_string vc (Eset.dst e i)) in
  check "US->CA" true (List.mem ("US", "CA") [ pair 0; pair 1 ]);
  check "IT->CN" true (List.mem ("IT", "CN") [ pair 0; pair 1 ])

let test_edges_skip_missing_endpoints () =
  let people = mk_people () in
  let p = Builder.build_vertices ~name:"P" ~source:people ~key_cols:[ 0 ] () in
  let driving =
    Table.of_rows ~name:"rel"
      (Schema.make [ col "f" (Dtype.Varchar 4); col "t" (Dtype.Varchar 4) ])
      [
        [ vs "a"; vs "b" ];
        [ vs "a"; vs "zz" ] (* dangling: no vertex zz *);
        [ Value.Null; vs "b" ] (* null key *);
      ]
  in
  let e =
    Builder.build_edges ~name:"knows" ~src:p ~dst:p ~driving ~src_key:[ 0 ]
      ~dst_key:[ 1 ] ()
  in
  check_int "only the valid edge" 1 (Eset.size e);
  check "endpoints" true (Eset.src e 0 = 0 && Eset.dst e 0 = 1)

let test_edges_multigraph_and_attrs () =
  let people = mk_people () in
  let p = Builder.build_vertices ~name:"P" ~source:people ~key_cols:[ 0 ] () in
  let driving =
    Table.of_rows ~name:"rel"
      (Schema.make
         [ col "f" (Dtype.Varchar 4); col "t" (Dtype.Varchar 4); col "w" Dtype.Int ])
      [ [ vs "a"; vs "b"; vi 1 ]; [ vs "a"; vs "b"; vi 2 ] ]
  in
  let e =
    Builder.build_edges ~name:"knows" ~src:p ~dst:p ~driving ~src_key:[ 0 ]
      ~dst_key:[ 1 ] ()
  in
  check_int "parallel edges kept" 2 (Eset.size e);
  check "edge attrs" true (Eset.attr_by_name e ~edge:1 "w" = vi 2);
  (* forward + reverse CSR agree *)
  check_int "fwd degree" 2 (Csr.degree (Eset.forward e) 0);
  check_int "rev degree" 2 (Csr.degree (Eset.reverse e) 1)

let test_edges_with_condition () =
  let people = mk_people () in
  let p = Builder.build_vertices ~name:"P" ~source:people ~key_cols:[ 0 ] () in
  let driving =
    Table.of_rows ~name:"rel"
      (Schema.make
         [ col "f" (Dtype.Varchar 4); col "t" (Dtype.Varchar 4); col "w" Dtype.Int ])
      [ [ vs "a"; vs "b"; vi 1 ]; [ vs "b"; vs "c"; vi 9 ] ]
  in
  let cond = Row_expr.(Cmp (Gt, Col 2, Const (vi 5))) in
  let e =
    Builder.build_edges ~name:"knows" ~src:p ~dst:p ~driving ~src_key:[ 0 ]
      ~dst_key:[ 1 ] ~cond ()
  in
  check_int "filtered" 1 (Eset.size e);
  check "kept the heavy edge" true (Eset.attr_by_name e ~edge:0 "w" = vi 9)

(* ------------------------------------------------------------------ *)
(* Graph store                                                         *)

let small_store () =
  let people = mk_people () in
  let p = Builder.build_vertices ~name:"P" ~source:people ~key_cols:[ 0 ] () in
  let c = Builder.build_vertices ~name:"C" ~source:people ~key_cols:[ 1 ] () in
  let driving =
    Table.of_rows ~name:"rel"
      (Schema.make [ col "f" (Dtype.Varchar 4); col "t" (Dtype.Varchar 4) ])
      [ [ vs "a"; vs "US" ]; [ vs "b"; vs "IT" ] ]
  in
  let e =
    Builder.build_edges ~name:"livesIn" ~src:p ~dst:c ~driving ~src_key:[ 0 ]
      ~dst_key:[ 1 ] ()
  in
  let store = Graph_store.create () in
  Graph_store.add_vset store p;
  Graph_store.add_vset store c;
  Graph_store.add_eset store e;
  store

let test_graph_store () =
  let s = small_store () in
  check "find vset" true (Graph_store.find_vset s "p" <> None);
  check "find eset" true (Graph_store.find_eset s "LIVESIN" <> None);
  check_int "total vertices" 6 (Graph_store.total_vertices s);
  check_int "total edges" 2 (Graph_store.total_edges s);
  check_int "esets between" 1
    (List.length (Graph_store.esets_between s ~src:"P" ~dst:"C"));
  check_int "none reversed" 0
    (List.length (Graph_store.esets_between s ~src:"C" ~dst:"P"));
  Alcotest.check_raises "namespace shared"
    (Failure "graph entity \"P\" already exists") (fun () ->
      Graph_store.add_vset s
        (Builder.build_vertices ~name:"P" ~source:(mk_people ()) ~key_cols:[ 0 ] ()))

(* ------------------------------------------------------------------ *)
(* Subgraph                                                            *)

let test_subgraph () =
  let sg = Subgraph.empty "r" in
  Subgraph.add_vertex_list sg ~vtype:"P" [ 1; 3 ] ~size:10;
  Subgraph.add_vertex_list sg ~vtype:"P" [ 3; 5 ] ~size:10;
  Subgraph.add_edges sg ~etype:"e" [ 0; 2; 0 ];
  check_int "union of vertices" 3 (Subgraph.total_vertices sg);
  check "vertex list" true (Subgraph.vertex_list sg ~vtype:"p" = [ 1; 3; 5 ]);
  check "edges deduped" true (Subgraph.edges sg ~etype:"E" = [ 0; 2 ]);
  check "missing type" true (Subgraph.vertex_list sg ~vtype:"zz" = []);
  let sg2 = Subgraph.empty "r2" in
  Subgraph.add_vertex_list sg2 ~vtype:"Q" [ 0 ] ~size:4;
  let u = Subgraph.union ~name:"u" sg sg2 in
  check_int "union total" 4 (Subgraph.total_vertices u);
  check "union vtypes" true (Subgraph.vtypes u = [ "p"; "q" ])

(* ------------------------------------------------------------------ *)
(* Degree statistics                                                   *)

module Degree_stats = Graql_graph.Degree_stats

let test_degree_stats () =
  (* degrees: v0 -> 3 edges, v1 -> 1, v2 -> 0, v3 -> 0 *)
  let csr =
    Csr.build ~nvertices:4 ~src:[| 0; 0; 0; 1 |] ~dst:[| 1; 2; 3; 0 |] ()
  in
  let s = Degree_stats.of_csr csr in
  check_int "vertices" 4 s.Degree_stats.ds_vertices;
  check_int "edges" 4 s.Degree_stats.ds_edges;
  check_int "min" 0 s.Degree_stats.ds_min;
  check_int "max" 3 s.Degree_stats.ds_max;
  check "avg" true (s.Degree_stats.ds_avg = 1.0);
  check_int "isolated" 2 s.Degree_stats.ds_isolated;
  check_int "p50" 0 s.Degree_stats.ds_p50;
  check_int "p99" 3 s.Degree_stats.ds_p99

let test_degree_stats_empty_and_uniform () =
  let empty = Degree_stats.of_csr (Csr.build ~nvertices:0 ~src:[||] ~dst:[||] ()) in
  check_int "empty vertices" 0 empty.Degree_stats.ds_vertices;
  let ring_src = Array.init 10 Fun.id in
  let ring_dst = Array.init 10 (fun i -> (i + 1) mod 10) in
  let ring = Degree_stats.of_csr (Csr.build ~nvertices:10 ~src:ring_src ~dst:ring_dst ()) in
  check "uniform ring" true
    (ring.Degree_stats.ds_min = 1 && ring.Degree_stats.ds_max = 1
    && ring.Degree_stats.ds_p90 = 1)

let () =
  Alcotest.run "graph"
    [
      ( "csr",
        [
          Alcotest.test_case "basic" `Quick test_csr_basic;
          Alcotest.test_case "isolated/empty" `Quick test_csr_isolated_and_empty;
          Alcotest.test_case "parallel edges" `Quick test_csr_parallel_edges;
          QCheck_alcotest.to_alcotest prop_csr_preserves_edges;
        ] );
      ( "vertices",
        [
          Alcotest.test_case "one-to-one" `Quick test_build_vertices_one_to_one;
          Alcotest.test_case "many-to-one" `Quick test_build_vertices_many_to_one;
          Alcotest.test_case "with condition" `Quick test_build_vertices_with_condition;
          Alcotest.test_case "composite key" `Quick test_build_vertices_composite_key;
        ] );
      ( "edges",
        [
          Alcotest.test_case "fig5 many-to-one dedupe" `Quick test_fig5_many_to_one_edges;
          Alcotest.test_case "dangling/null endpoints" `Quick
            test_edges_skip_missing_endpoints;
          Alcotest.test_case "multigraph + attrs" `Quick test_edges_multigraph_and_attrs;
          Alcotest.test_case "edge condition" `Quick test_edges_with_condition;
        ] );
      ("store", [ Alcotest.test_case "registry" `Quick test_graph_store ]);
      ("subgraph", [ Alcotest.test_case "sets and union" `Quick test_subgraph ]);
      ( "degree_stats",
        [
          Alcotest.test_case "skewed" `Quick test_degree_stats;
          Alcotest.test_case "empty/uniform" `Quick test_degree_stats_empty_and_uniform;
        ] );
    ]
