(* Executable documentation: every ```graql block in docs/TUTORIAL.md runs,
   in order, against the standard tutorial session. A snippet that stops
   parsing, checking, or executing fails this suite. *)

module Session = Graql_gems.Session
module Db = Graql_engine.Db
module Value = Graql_storage.Value

let check = Alcotest.(check bool)

let tutorial_path =
  (* `dune runtest` runs with cwd = the test directory inside _build (the
     doc is a declared dependency, copied to ../docs); `dune exec` runs
     from the workspace root. Probe both. *)
  let candidates =
    [
      Filename.concat (Filename.concat ".." "docs") "TUTORIAL.md";
      Filename.concat "docs" "TUTORIAL.md";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path =
  let ic = open_in_bin path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  doc

(* Extract fenced ```graql blocks in order. *)
let graql_blocks doc =
  let lines = String.split_on_char '\n' doc in
  let rec go acc current lines =
    match (lines, current) with
    | [], None -> List.rev acc
    | [], Some _ -> failwith "unterminated code fence in TUTORIAL.md"
    | line :: rest, None ->
        if String.trim line = "```graql" then go acc (Some []) rest
        else go acc None rest
    | line :: rest, Some body ->
        if String.trim line = "```" then
          go (String.concat "\n" (List.rev body) :: acc) None rest
        else go acc (Some (line :: body)) rest
  in
  go [] None lines

let test_snippets () =
  let doc = read_file tutorial_path in
  let blocks = graql_blocks doc in
  check "tutorial has a healthy number of snippets" true
    (List.length blocks >= 12);
  let session = Session.create () in
  Graql_berlin.Berlin_gen.ingest_all ~seed:42 ~scale:1 session;
  let db = Session.db session in
  Db.set_param db "Product1" (Value.Str "p0");
  Db.set_param db "Country1" (Value.Str "US");
  Db.set_param db "Country2" (Value.Str "IT");
  List.iteri
    (fun i src ->
      match Session.run_script session src with
      | results ->
          (* Per-statement failures no longer raise: fail on any O_failed
             outcome so a broken snippet can't slip through. *)
          List.iter
            (fun (_, outcome) ->
              match outcome with
              | Graql_engine.Script_exec.O_failed err ->
                  Alcotest.failf "tutorial snippet %d failed: %s\n---\n%s"
                    (i + 1)
                    (Graql_engine.Graql_error.to_string err)
                    src
              | _ -> ())
            results
      | exception Graql_engine.Graql_error.Error err ->
          Alcotest.failf "tutorial snippet %d rejected: %s\n---\n%s" (i + 1)
            (Graql_engine.Graql_error.to_string err)
            src
      | exception Graql_engine.Script_exec.Script_error (loc, msg) ->
          Alcotest.failf "tutorial snippet %d failed (%s): %s\n---\n%s" (i + 1)
            (Graql_lang.Loc.to_string loc) msg src)
    blocks

let () =
  Alcotest.run "tutorial"
    [ ("snippets", [ Alcotest.test_case "all blocks execute" `Quick test_snippets ]) ]
