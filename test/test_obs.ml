(* The observability subsystem (DESIGN.md §10): metrics registry
   semantics, domain-count invariance of semantic counters, tracing span
   structure and Chrome-trace JSON dumps, EXPLAIN ANALYZE estimator
   accuracy on the Berlin workload, the slow-statement log, and the CLI
   dump flags.

   The registry is process-global, so every test that asserts on counter
   values starts from [Metrics.reset ()]; Alcotest runs tests
   sequentially in this process, so no two tests race on it. *)

module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Profile = Graql_obs.Profile
module Slow_log = Graql_obs.Slow_log
module Slo = Graql_obs.Slo
module Pool = Graql_parallel.Domain_pool
module Session = Graql_gems.Session
module Fault = Graql_gems.Fault
module Db = Graql_engine.Db
module Value = Graql_storage.Value

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- metrics registry ---------- *)

let test_counter_basics () =
  Metrics.reset ();
  let c = Metrics.counter "test.basics" in
  check_int "fresh counter" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.add c 41;
  check_int "incr + add" 42 (Metrics.counter_value c);
  let c' = Metrics.counter "test.basics" in
  Metrics.incr c';
  check_int "same name, same cell" 43 (Metrics.counter_value c);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 2.5;
  check "gauge holds last value" true (Metrics.gauge_value g = 2.5)

let test_kind_clash_rejected () =
  ignore (Metrics.counter "test.clash");
  check "counter name cannot become a histogram" true
    (try
       ignore (Metrics.histogram "test.clash");
       false
     with Invalid_argument _ -> true)

let test_histogram_buckets () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  (* Bucket i covers (2^(i-1), 2^i]: 3.0 lands in (2,4], 100.0 in
     (64,128], 0.5 in the ≤1 bucket. *)
  List.iter (Metrics.observe h) [ 0.5; 3.0; 3.5; 100.0 ];
  let sn = Metrics.snapshot () in
  let hs = List.assoc "test.hist" sn.Metrics.sn_histograms in
  check_int "count" 4 hs.Metrics.h_count;
  check "sum" true (abs_float (hs.Metrics.h_sum -. 107.0) < 1e-9);
  let bucket ub =
    match List.assoc_opt ub hs.Metrics.h_buckets with Some n -> n | None -> 0
  in
  check_int "(2,4] holds both 3.0 and 3.5" 2 (bucket 4.0);
  check_int "(64,128] holds 100.0" 1 (bucket 128.0);
  check_int "<=1 holds 0.5" 1 (bucket 1.0)

let test_counters_merge_across_domains () =
  Metrics.reset ();
  let c = Metrics.counter "test.par" in
  let pool = Pool.create ~domains:4 () in
  Pool.parallel_for pool ~lo:0 ~hi:10_000 (fun _ -> Metrics.incr c);
  check_int "10k increments from 4 domains" 10_000 (Metrics.counter_value c);
  Pool.shutdown pool

let test_prometheus_format () =
  Metrics.reset ();
  Metrics.add (Metrics.counter "test.prom") 7;
  Metrics.observe (Metrics.histogram "test.prom_us") 3.0;
  let text = Metrics.to_prometheus () in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check "counter line" true (has "graql_test_prom_total 7");
  check "histogram count line" true (has "graql_test_prom_us_count 1");
  check "cumulative +Inf bucket" true (has "le=\"+Inf\"")

let test_prometheus_escaping () =
  Alcotest.(check string)
    "HELP escapes backslash and newline" "a\\\\b\\nc"
    (Metrics.escape_help "a\\b\nc");
  Alcotest.(check string)
    "label value additionally escapes quotes" "say \\\"hi\\\"\\n\\\\"
    (Metrics.escape_label_value "say \"hi\"\n\\");
  Metrics.reset ();
  ignore
    (Metrics.counter "test.helped"
       ~help:"line one\nline two \\ \"quoted\"");
  let text = Metrics.to_prometheus () in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  check "HELP emitted escaped on one line" true
    (has "# HELP graql_test_helped_total line one\\nline two \\\\ \"quoted\"");
  check "build info present" true (has "graql_build_info{version=\"");
  check "ocaml release labelled" true (has "ocaml=\"");
  check "uptime present" true (has "graql_uptime_seconds");
  check "uptime is non-negative" true (Metrics.uptime_seconds () >= 0.0)

(* ---------- domain-count invariance on the Berlin workload ---------- *)

(* Counters outside sched.* / fault.* describe what the queries computed,
   not how the work was scheduled, so they must not move when the same
   workload runs on 1, 2, 4 or 8 domains (DESIGN.md §10). *)
let semantic_prefixes = [ "script."; "path."; "table."; "wal." ]

let semantic_counters sn =
  List.filter
    (fun (name, _) ->
      List.exists
        (fun p ->
          String.length name >= String.length p
          && String.sub name 0 (String.length p) = p)
        semantic_prefixes)
    sn.Metrics.sn_counters

let berlin_semantic_counters ~domains =
  Metrics.reset ();
  let pool = Pool.create ~domains () in
  let s = Session.create ~pool () in
  Session.set_faults s None;
  Graql_berlin.Berlin_gen.ingest_all ~scale:1 s;
  let db = Session.db s in
  Db.set_param db "Product1"
    (Value.Str (Graql_berlin.Berlin_reference.most_offered_product ~scale:1 ()));
  Db.set_param db "Country1" (Value.Str "US");
  Db.set_param db "Country2" (Value.Str "DE");
  List.iter
    (fun (_, q) -> ignore (Session.run_script ~parallel:true s q))
    Graql_berlin.Berlin_queries.all;
  let out = semantic_counters (Metrics.snapshot ()) in
  Pool.shutdown pool;
  out

let test_counters_invariant_across_domains () =
  let base = berlin_semantic_counters ~domains:1 in
  check "baseline counted something" true
    (List.exists (fun (_, v) -> v > 0) base);
  List.iter
    (fun domains ->
      let got = berlin_semantic_counters ~domains in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "semantic counters identical at %d domains" domains)
        base got)
    [ 2; 4; 8 ]

(* ---------- fault / scheduling counters ---------- *)

let test_fault_counters_count_recoveries () =
  Metrics.reset ();
  let pool = Pool.create ~domains:2 () in
  Pool.set_retry ~backoff_ms:0.0 pool;
  let s = Session.create ~pool ~faults:(Fault.fail_once ()) () in
  Session.set_faults s (Some (Fault.fail_once ()));
  Graql_berlin.Berlin_gen.ingest_all ~scale:1 s;
  let db = Session.db s in
  Db.set_param db "Product1" (Value.Str "p0");
  ignore
    (Session.run_script ~parallel:true s Graql_berlin.Berlin_queries.q2);
  let sn = Metrics.snapshot () in
  let counter name = Option.value ~default:0 (Metrics.find_counter sn name) in
  check "pool retries were counted" true
    (counter "sched.retries" = Session.recovered_faults s);
  check "retries happened at all" true (counter "sched.retries" > 0);
  check "tasks were counted" true (counter "sched.tasks" > 0);
  Pool.shutdown pool

(* ---------- tracing ---------- *)

let berlin_session () =
  let s = Session.create () in
  Session.set_faults s None;
  Graql_berlin.Berlin_gen.ingest_all ~scale:1 s;
  let db = Session.db s in
  Db.set_param db "Product1"
    (Value.Str (Graql_berlin.Berlin_reference.most_offered_product ~scale:1 ()));
  Db.set_param db "Country1" (Value.Str "US");
  Db.set_param db "Country2" (Value.Str "DE");
  s

let test_trace_spans_and_parents () =
  Trace.clear ();
  let s = berlin_session () in
  ignore (Session.run_script ~trace:true s Graql_berlin.Berlin_queries.q2);
  check "run_script ~trace:true restored the disarmed state" false
    (Trace.is_armed ());
  let evs = Trace.events () in
  check "events recorded" true (evs <> []);
  let stmt_spans =
    List.filter (fun e -> e.Trace.ev_cat = "script") evs
  in
  check "statement spans present" true (stmt_spans <> []);
  let ids = List.map (fun e -> e.Trace.ev_id) evs in
  check "ids unique" true
    (List.length ids = List.length (List.sort_uniq compare ids));
  List.iter
    (fun e ->
      check "parent is 0 or a recorded span" true
        (e.Trace.ev_parent = 0 || List.mem e.Trace.ev_parent ids);
      check "duration non-negative" true (e.Trace.ev_dur_us >= 0.0))
    evs;
  (* path.* spans must hang off a statement span, transitively. *)
  let path_spans = List.filter (fun e -> e.Trace.ev_cat = "path") evs in
  check "path spans present" true (path_spans <> []);
  List.iter
    (fun e -> check "path span has a parent" true (e.Trace.ev_parent <> 0))
    path_spans;
  (* Disarmed: nothing new is recorded. *)
  let n = List.length evs in
  ignore (Session.run_script s Graql_berlin.Berlin_queries.q2);
  check_int "disarmed run recorded nothing" n (List.length (Trace.events ()))

(* A minimal JSON reader — just enough to verify the Chrome-trace dump
   is well-formed without adding a JSON dependency. *)
let json_parse (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then incr pos else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> fail ()
  and literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then pos := !pos + String.length lit
    else fail ()
  and number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail ()
  and str () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail ()
      | Some '"' ->
          incr pos;
          fin := true
      | Some '\\' ->
          incr pos;
          if !pos >= n then fail () else incr pos
      | Some _ -> incr pos
    done
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let fin = ref false in
      while not !fin do
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
            incr pos;
            fin := true
        | _ -> fail ()
      done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let fin = ref false in
      while not !fin do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
            incr pos;
            fin := true
        | _ -> fail ()
      done
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_chrome_json_valid () =
  Trace.clear ();
  Trace.arm ();
  Trace.with_span ~cat:"test" ~args:[ ("k", "quote\"back\\slash") ] "outer"
    (fun () -> Trace.with_span ~cat:"test" "inner" (fun () -> ()));
  Trace.disarm ();
  let json = Trace.to_chrome_json () in
  check "chrome trace parses as JSON" true (json_parse (String.trim json));
  check "array form" true (String.length json > 0 && (String.trim json).[0] = '[');
  check "complete events" true
    (let has needle =
       let nl = String.length needle and tl = String.length json in
       let rec go i =
         i + nl <= tl && (String.sub json i nl = needle || go (i + 1))
       in
       go 0
     in
     has "\"ph\": \"X\"" || has "\"ph\":\"X\"")

let test_ring_wraparound () =
  Trace.set_capacity 8;
  Trace.arm ();
  for i = 0 to 19 do
    Trace.with_span ~cat:"test" (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Trace.disarm ();
  check_int "ring keeps only the last capacity events" 8
    (List.length (Trace.events ()));
  check_int "overwritten events are counted" 12 (Trace.dropped ());
  Trace.set_capacity 65536

(* ---------- EXPLAIN ANALYZE ---------- *)

let est_bound = 64.0
(* The Explain estimator works from average-degree statistics, so skew
   (hub products with far more reviews than the mean) can put actuals an
   order of magnitude off the estimate. A factor-64 envelope documents
   "right ballpark" while catching sign/unit regressions; the seed
   estimate for a key lookup must be exact. *)

let test_profile_estimates_vs_actuals () =
  let s = berlin_session () in
  let reports = Session.profile s Graql_berlin.Berlin_queries.q2 in
  check_int "q2 profiles both statements" 2 (List.length reports);
  let graph_report = List.hd reports in
  check "graph statement has a profiled path" true
    (graph_report.Graql_engine.Profile_exec.r_paths <> []);
  let plan, rows = List.hd graph_report.Graql_engine.Profile_exec.r_paths in
  check "plan attached" true (plan <> None);
  check_int "seed + two hops" 3 (List.length rows);
  let seed = List.hd rows in
  check "seed estimate is exact for a key lookup" true
    (seed.Graql_engine.Profile_exec.pr_est = Some 1.0
    && seed.Graql_engine.Profile_exec.pr_rows = 1);
  List.iter
    (fun r ->
      match r.Graql_engine.Profile_exec.pr_est with
      | None -> Alcotest.fail "every path step should carry an estimate"
      | Some est ->
          let actual = float_of_int r.Graql_engine.Profile_exec.pr_rows in
          let factor =
            if actual = 0.0 || est <= 0.0 then 1.0
            else if actual > est then actual /. est
            else est /. actual
          in
          check
            (Printf.sprintf "step %S within %.0fx (est %.1f actual %.0f)"
               r.Graql_engine.Profile_exec.pr_label est_bound est actual)
            true (factor <= est_bound))
    rows;
  (* The relational statement reports operator rows instead. *)
  let table_report = List.nth reports 1 in
  check "second statement records operators" true
    (table_report.Graql_engine.Profile_exec.r_ops <> []);
  (* And the rendering carries both columns. *)
  let rendered =
    Graql_engine.Profile_exec.render graph_report
  in
  let has needle =
    let nl = String.length needle and tl = String.length rendered in
    let rec go i =
      i + nl <= tl && (String.sub rendered i nl = needle || go (i + 1))
    in
    go 0
  in
  check "render shows estimates" true (has "est. rows");
  check "render shows actuals" true (has "actual")

let test_profile_failed_statement () =
  let s = Session.create ~strict:false () in
  let reports = Session.profile s "ingest table Missing nosuch.csv" in
  check_int "one report" 1 (List.length reports);
  match (List.hd reports).Graql_engine.Profile_exec.r_outcome with
  | Graql_engine.Script_exec.O_failed _ -> ()
  | _ -> Alcotest.fail "expected O_failed outcome"

(* ---------- slow-statement log ---------- *)

let test_slow_log_captures () =
  Slow_log.clear ();
  Slow_log.set_threshold_ms (Some 0.0);
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold_ms None;
      Trace.disarm ();
      Slow_log.clear ())
    (fun () ->
      let s = berlin_session () in
      Slow_log.clear ();
      ignore (Session.run_script s Graql_berlin.Berlin_queries.q2);
      let entries = Slow_log.entries () in
      check "threshold 0 logs every statement" true
        (List.length entries >= 2);
      let e = List.hd entries in
      check "wall time recorded" true (e.Slow_log.e_ms >= 0.0);
      check "statement text recorded" true (e.Slow_log.e_stmt <> "");
      check "span summary attached" true
        (List.exists (fun e -> e.Slow_log.e_spans <> []) entries);
      check "to_string renders" true
        (String.length (Slow_log.to_string e) > 0))

let test_slow_threshold_parsing () =
  check "plain number accepted" true (Slow_log.parse_threshold "5.5" = Some 5.5);
  check "zero accepted (log everything)" true
    (Slow_log.parse_threshold "0" = Some 0.0);
  check "integer accepted" true (Slow_log.parse_threshold "250" = Some 250.0);
  check "negative clamps to disabled" true
    (Slow_log.parse_threshold "-3" = None);
  check "non-numeric clamps to disabled" true
    (Slow_log.parse_threshold "fast" = None);
  check "empty clamps to disabled" true (Slow_log.parse_threshold "" = None);
  check "infinity clamps to disabled" true
    (Slow_log.parse_threshold "inf" = None);
  check "nan clamps to disabled" true (Slow_log.parse_threshold "nan" = None)

let test_slow_log_json () =
  Slow_log.clear ();
  Slow_log.set_threshold_ms (Some 0.0);
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold_ms None;
      Trace.disarm ();
      Slow_log.clear ())
    (fun () ->
      Slow_log.note ~stmt:"select \"quoted\"" ~ms:1.5
        ~spans:[ ("path.step", 3, 0.75) ] ();
      match Graql_util.Json.parse (Slow_log.to_json ()) with
      | Ok (Graql_util.Json.Arr [ entry ]) ->
          check "stmt survives JSON round trip" true
            (Option.bind
               (Graql_util.Json.member "stmt" entry)
               Graql_util.Json.to_string_opt
            = Some "select \"quoted\"");
          check "spans serialized" true
            (match Graql_util.Json.member "spans" entry with
            | Some (Graql_util.Json.Arr [ _ ]) -> true
            | _ -> false)
      | Ok _ -> Alcotest.fail "expected a one-entry array"
      | Error msg -> Alcotest.failf "slow log json: %s" msg)

(* ---------- SLO tracking ---------- *)

let test_slo_percentile () =
  Metrics.reset ();
  let h = Metrics.histogram "test.slo_hist" in
  (* 90 fast (≤1), 9 medium ((2,4]), 1 slow ((64,128]): p50 must land in
     the fast bucket, p95 in the medium one, p99... at rank 99 the
     cumulative count reaches 99 in the medium bucket. *)
  for _ = 1 to 90 do Metrics.observe h 1.0 done;
  for _ = 1 to 9 do Metrics.observe h 3.0 done;
  Metrics.observe h 100.0;
  let sn = Metrics.snapshot () in
  let hs = List.assoc "test.slo_hist" sn.Metrics.sn_histograms in
  check "p50 in fast bucket" true (Slo.percentile hs 0.5 = 1.0);
  check "p95 in medium bucket" true (Slo.percentile hs 0.95 = 4.0);
  check "p100 reaches the slow bucket" true (Slo.percentile hs 1.0 = 128.0);
  check "empty histogram yields nan" true
    (Float.is_nan
       (Slo.percentile { hs with Metrics.h_count = 0; h_buckets = [] } 0.5))

let test_slo_summary_and_breaches () =
  Metrics.reset ();
  Slo.set_objective_ms (Some 2.0);
  Fun.protect ~finally:(fun () -> Slo.set_objective_ms None) @@ fun () ->
  (* Latency data lives in script.stmt_us.<class> histograms (µs). *)
  let h = Metrics.histogram "script.stmt_us.select" in
  for _ = 1 to 99 do Metrics.observe h 500.0 done;
  Metrics.observe h 10_000.0;
  Slo.note ~class_:"select" 0.5;
  Slo.note ~class_:"select" 10.0;
  (* breach *)
  match Slo.summary () with
  | [ s ] ->
      Alcotest.(check string) "class name" "select" s.Slo.sc_class;
      check_int "count" 100 s.Slo.sc_count;
      check "p50 ≤ objective bucket" true (s.Slo.sc_p50_ms <= 2.0);
      check "p99 sees the slow tail" true (s.Slo.sc_p99_ms >= 0.512);
      check_int "one breach counted" 1 s.Slo.sc_breaches;
      check_int "global breach counter" 1
        (Metrics.counter_value (Metrics.counter "slo.breaches"));
      Slo.update_gauges ();
      let sn = Metrics.snapshot () in
      check "p50 gauge published" true
        (List.mem_assoc "slo.select.p50_ms" sn.Metrics.sn_gauges);
      check "objective gauge published" true
        (List.assoc_opt "slo.objective_ms" sn.Metrics.sn_gauges = Some 2.0)
  | l -> Alcotest.failf "expected one class, got %d" (List.length l)

(* ---------- overhead (opt-in: timing-sensitive) ---------- *)

let test_traced_overhead_bounded () =
  if Sys.getenv_opt "GRAQL_OBS_OVERHEAD_CHECK" = None then ()
  else begin
    let s = berlin_session () in
    let mix () =
      List.iter
        (fun (_, q) -> ignore (Session.run_script s q))
        Graql_berlin.Berlin_queries.all
    in
    let time f =
      (* Best of 5 after a warmup: robust against scheduler noise. *)
      f ();
      let best = ref infinity in
      for _ = 1 to 5 do
        let t0 = Unix.gettimeofday () in
        f ();
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then best := dt
      done;
      !best
    in
    let untraced = time mix in
    Trace.clear ();
    Trace.arm ();
    let traced = time (fun () -> mix ()) in
    Trace.disarm ();
    check
      (Printf.sprintf "traced %.2fms within 1.5x of untraced %.2fms"
         (traced *. 1000.) (untraced *. 1000.))
      true
      (traced <= 1.5 *. untraced +. 0.005)
  end

(* ---------- CLI dump flags ---------- *)

let graql_bin =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "graql_cli.exe")

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "graql_obs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cli_dump_flags () =
  with_temp_dir @@ fun dir ->
  let metrics = Filename.concat dir "metrics.txt" in
  let trace = Filename.concat dir "trace.json" in
  let null = if Sys.win32 then "NUL" else "/dev/null" in
  let code =
    Sys.command
      (Filename.quote_command graql_bin ~stdout:null ~stderr:null
         [
           "berlin"; "--scale"; "1"; "--query"; "q2"; "--domains"; "2";
           "--metrics-dump"; metrics; "--trace-out"; trace;
         ])
  in
  check_int "berlin run succeeded" 0 code;
  let prom = read_file metrics in
  let has hay needle =
    let nl = String.length needle and tl = String.length hay in
    let rec go i = i + nl <= tl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "metrics dump is prometheus text" true (has prom "graql_");
  check "semantic counters dumped" true (has prom "graql_path_steps_total");
  let json = read_file trace in
  check "trace dump is valid JSON" true (json_parse (String.trim json));
  check "trace dump is an array" true ((String.trim json).[0] = '[');
  check "trace has complete events" true
    (has json "\"ph\": \"X\"" || has json "\"ph\":\"X\"")

(* ---------- profile collector unit behaviour ---------- *)

let test_collector_scoping () =
  check "no ambient collector by default" true (Profile.current () = None);
  let c = Profile.create () in
  Profile.with_collector c (fun () ->
      check "ambient inside" true
        (match Profile.current () with Some c' -> c' == c | None -> false);
      Profile.begin_path c;
      Profile.note_step c ~label:"seed" ~rows:3 ~ms:0.1;
      Profile.note_step c ~label:"hop" ~rows:9 ~ms:0.2;
      Profile.begin_path c;
      Profile.note_step c ~label:"seed2" ~rows:1 ~ms:0.05;
      Profile.note_op c ~label:"join" ~rows:12 ~ms:0.3);
  check "ambient restored" true (Profile.current () = None);
  let paths = Profile.paths c in
  check_int "two paths" 2 (List.length paths);
  check_int "first path has two steps" 2 (List.length (List.hd paths));
  let first = List.hd (List.hd paths) in
  check "steps kept in order" true
    (first.Profile.sa_label = "seed" && first.Profile.sa_rows = 3);
  match Profile.ops c with
  | [ op ] -> check "op recorded" true (op.Profile.sa_label = "join")
  | _ -> Alcotest.fail "expected exactly one op"

(* ---------- distributed tracing, ledger, redaction (DESIGN.md §16) -- *)

module Ledger = Graql_obs.Ledger
module Redact = Graql_obs.Redact
module Query_log = Graql_obs.Query_log
module Http = Graql_obs.Http

let contains hay needle =
  let nl = String.length needle and tl = String.length hay in
  let rec go i = i + nl <= tl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_trace_ids () =
  Trace.clear ();
  Trace.arm ();
  Fun.protect ~finally:(fun () -> Trace.disarm ()) @@ fun () ->
  let t1 = Trace.new_trace_id () in
  let t2 = Trace.new_trace_id () in
  check_int "trace id is 32 chars" 32 (String.length t1);
  String.iter
    (fun c ->
      check "trace id is lowercase hex" true
        (match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
    t1;
  check "trace ids are unique" true (t1 <> t2);
  check "no ambient trace by default" true (Trace.current_trace () = "");
  Trace.with_trace t1 (fun () ->
      check "with_trace sets the ambient id" true (Trace.current_trace () = t1);
      Trace.with_span ~cat:"test" "one" (fun () ->
          Trace.with_span ~cat:"test" "one.child" (fun () -> ())));
  Trace.with_trace t2 (fun () ->
      Trace.with_span ~cat:"test" "two" (fun () -> ()));
  Trace.with_span ~cat:"test" "untraced" (fun () -> ());
  let of1 = Trace.events_of_trace t1 in
  check_int "trace 1 has its two spans" 2 (List.length of1);
  check "all filtered events carry the id" true
    (List.for_all (fun e -> e.Trace.ev_trace = t1) of1);
  (* Remote-context adoption: the receiving side of a traceparent. *)
  Trace.with_context ~trace:t2 ~parent:4242 (fun () ->
      Trace.with_span ~cat:"test" "adopted" (fun () -> ()));
  let adopted =
    List.find
      (fun e -> e.Trace.ev_name = "adopted")
      (Trace.events_of_trace t2)
  in
  check_int "adopted span hangs off the remote parent" 4242
    adopted.Trace.ev_parent;
  (* Filtered per-role dumps merge into one parseable array. *)
  let dump1 = Trace.to_chrome_json ~trace_id:t1 ~role:"server" () in
  check "filtered dump keeps the trace" true (contains dump1 "one.child");
  check "filtered dump drops other traces" false (contains dump1 "\"two\"");
  let merged =
    Trace.merge_dumps
      [ dump1; Trace.to_chrome_json ~trace_id:t2 ~role:"follower" () ]
  in
  check "merged dump parses as JSON" true (json_parse (String.trim merged));
  check "merged dump keeps both role labels" true
    (contains merged "\"server\"" && contains merged "\"follower\"")

let test_trace_drop_metrics () =
  Trace.set_capacity 8;
  Trace.arm ();
  for i = 0 to 19 do
    Trace.with_span ~cat:"test" (Printf.sprintf "d%d" i) (fun () -> ())
  done;
  Trace.disarm ();
  Trace.update_metrics ();
  let prom = Metrics.to_prometheus () in
  check "ring capacity gauge exposed" true
    (contains prom "graql_trace_ring_capacity 8");
  check "dropped counter exposed" true
    (contains prom "graql_trace_dropped_total 12");
  (* The counter is delta-fed: re-exposing without new drops must not
     double-count. *)
  Trace.update_metrics ();
  check "dropped counter is not double-counted" true
    (contains (Metrics.to_prometheus ()) "graql_trace_dropped_total 12");
  Trace.set_capacity 65536

let test_exemplar_exposition () =
  Metrics.reset ();
  let h = Metrics.histogram "test.exemplar_us" in
  let tid = Trace.new_trace_id () in
  Metrics.observe ~exemplar:tid h 100.0;
  Metrics.observe h 3.0 (* untraced: must not displace the exemplar *);
  let prom = Metrics.to_prometheus () in
  check "exemplar tail on a bucket line" true
    (contains prom (Printf.sprintf " # {trace_id=\"%s\"} 100" tid));
  (* At most one exemplar per histogram exposition. *)
  let occurrences =
    let re = "# {trace_id=" in
    let n = ref 0 in
    for i = 0 to String.length prom - String.length re do
      if String.sub prom i (String.length re) = re then incr n
    done;
    !n
  in
  check_int "exactly one exemplar tail" 1 occurrences;
  check "exposition still parses as prometheus text" true
    (contains prom "graql_test_exemplar_us_count 2")

let test_redaction () =
  Redact.set_enabled false;
  Fun.protect ~finally:(fun () -> Redact.set_enabled false) @@ fun () ->
  let stmt = "select name from table T where city = 'Palo Alto'" in
  check "redaction off: verbatim" true (Redact.statement stmt = stmt);
  Redact.set_enabled true;
  check "single-quoted literal elided" true
    (Redact.statement stmt
    = "select name from table T where city = '?'");
  check "double quotes too" true
    (Redact.statement {|set %x% = "secret"|} = {|set %x% = "?"|});
  check "doubled-quote escape stays inside the literal" true
    (Redact.statement "where a = 'it''s' and b = 2"
    = "where a = '?' and b = 2");
  check "unterminated literal elided to the end" true
    (Redact.statement "where a = 'oops" = "where a = '?");
  (* The query log passes statement text through redaction. *)
  let line =
    Query_log.json_of_record
      {
        Query_log.r_id = 7;
        r_ts = 0.0;
        r_user = Some "alice";
        r_trace = "cafe0000cafe0000cafe0000cafe0000";
        r_kind = "select:'secret'";
        r_ms = 1.5;
        r_rows = 3;
        r_outcome = Query_log.Ok;
        r_retries = 0;
        r_failovers = 0;
        r_error = None;
        r_ledger = None;
      }
  in
  check "query-log line is JSON" true (json_parse line);
  check "query-log line carries the user" true
    (contains line "\"user\": \"alice\"");
  check "query-log line carries the trace id" true
    (contains line "\"trace_id\": \"cafe0000cafe0000cafe0000cafe0000\"");
  check "query-log statement text is redacted" true
    (contains line "select:'?'" && not (contains line "secret"))

let test_parse_query () =
  Alcotest.(check (list (pair string string)))
    "empty" [] (Http.parse_query "");
  Alcotest.(check (list (pair string string)))
    "pairs, percent and plus decoding, bare keys"
    [ ("trace_id", "abc123"); ("q", "a b+c"); ("flag", "") ]
    (Http.parse_query "trace_id=abc123&q=a%20b%2Bc&flag")

let test_ledger_capture () =
  Metrics.reset ();
  check "not capturing by default" false (Ledger.capturing ());
  Ledger.note_scan_bytes 9999 (* ignored: no bracket open *);
  let snap = Ledger.start () in
  check "capturing inside a bracket" true (Ledger.capturing ());
  let rows = Metrics.counter "table.scan_rows" in
  Metrics.add rows 123;
  Ledger.note_scan_bytes 4096;
  let lg = Ledger.finish ~rows_out:7 snap in
  check "bracket closed" false (Ledger.capturing ());
  check_int "scan rows attributed" 123 lg.Ledger.lg_rows_scanned;
  check_int "scan bytes attributed" 4096 lg.Ledger.lg_bytes_scanned;
  check_int "rows out pass through" 7 lg.Ledger.lg_rows_out;
  check "allocation words recorded" true (lg.Ledger.lg_minor_words >= 0.0);
  let js = Ledger.to_json lg in
  check "ledger json parses" true (json_parse js);
  check "ledger json carries rows_scanned" true
    (contains js "\"rows_scanned\":123");
  check "summary mentions the scan" true
    (contains (Ledger.summary lg) "123")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind clash rejected" `Quick
            test_kind_clash_rejected;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "merge across domains" `Quick
            test_counters_merge_across_domains;
          Alcotest.test_case "prometheus format" `Quick test_prometheus_format;
          Alcotest.test_case "prometheus escaping" `Quick
            test_prometheus_escaping;
        ] );
      ( "slo",
        [
          Alcotest.test_case "percentile from log2 buckets" `Quick
            test_slo_percentile;
          Alcotest.test_case "summary and breaches" `Quick
            test_slo_summary_and_breaches;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "semantic counters invariant across domains"
            `Slow test_counters_invariant_across_domains;
          Alcotest.test_case "fault counters count recoveries" `Slow
            test_fault_counters_count_recoveries;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans and parents" `Quick
            test_trace_spans_and_parents;
          Alcotest.test_case "chrome json valid" `Quick test_chrome_json_valid;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        ] );
      ( "profile",
        [
          Alcotest.test_case "estimates vs actuals" `Quick
            test_profile_estimates_vs_actuals;
          Alcotest.test_case "failed statement" `Quick
            test_profile_failed_statement;
          Alcotest.test_case "collector scoping" `Quick test_collector_scoping;
        ] );
      ( "slow-log",
        [
          Alcotest.test_case "captures" `Quick test_slow_log_captures;
          Alcotest.test_case "threshold parsing clamps" `Quick
            test_slow_threshold_parsing;
          Alcotest.test_case "json dump" `Quick test_slow_log_json;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "traced within 1.5x (GRAQL_OBS_OVERHEAD_CHECK)"
            `Slow test_traced_overhead_bounded;
        ] );
      ( "cli",
        [ Alcotest.test_case "dump flags" `Slow test_cli_dump_flags ] );
      ( "distributed",
        [
          Alcotest.test_case "trace ids, filtering, merged dumps" `Quick
            test_trace_ids;
          Alcotest.test_case "drop counter and capacity gauge" `Quick
            test_trace_drop_metrics;
          Alcotest.test_case "openmetrics exemplars" `Quick
            test_exemplar_exposition;
          Alcotest.test_case "log redaction" `Quick test_redaction;
          Alcotest.test_case "query-string parsing" `Quick test_parse_query;
          Alcotest.test_case "resource ledger" `Quick test_ledger_capture;
        ] );
    ]
