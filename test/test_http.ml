(* The operational HTTP front door (DESIGN.md §11): raw-socket golden
   tests against the Telemetry endpoints (status codes, Prometheus
   exposition content, trace arm/disarm round trips, readiness
   toggling), concurrent scrapes while a Berlin workload runs, the
   structured query log's JSON and outcome classification, and the
   CLI --listen / --serve-ms flags at the binary level.

   Everything binds port 0 (ephemeral) so tests never collide with
   each other or the host. *)

module Http = Graql_obs.Http
module Metrics = Graql_obs.Metrics
module Trace = Graql_obs.Trace
module Slow_log = Graql_obs.Slow_log
module Query_log = Graql_obs.Query_log
module Json = Graql_util.Json
module Session = Graql_gems.Session
module Telemetry = Graql_gems.Telemetry
module Server = Graql_gems.Server
module Fault = Graql_gems.Fault
module Pool = Graql_parallel.Domain_pool
module Db = Graql_engine.Db
module Value = Graql_storage.Value
module Script_exec = Graql_engine.Script_exec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let find_sub hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

(* ---------- a raw HTTP/1.1 client ---------- *)

type reply = { status : int; headers : (string * string) list; body : string }

let request ?(meth = "GET") ?(body = "") ?(raw = "") port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req =
    if raw <> "" then raw
    else
      Printf.sprintf
        "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\
         Connection: close\r\n\r\n%s"
        meth path (String.length body) body
  in
  let pos = ref 0 in
  while !pos < String.length req do
    pos :=
      !pos
      + Unix.write_substring fd req !pos (String.length req - !pos)
  done;
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  let reply = Buffer.contents buf in
  match String.index_opt reply ' ' with
  | None -> Alcotest.failf "malformed reply: %S" reply
  | Some sp ->
      let status = int_of_string (String.sub reply (sp + 1) 3) in
      let header_end =
        match find_sub reply "\r\n\r\n" with
        | Some i -> i
        | None -> Alcotest.failf "no header terminator in %S" reply
      in
      let head = String.sub reply 0 header_end in
      let body =
        String.sub reply (header_end + 4) (String.length reply - header_end - 4)
      in
      let headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | Some i ->
                Some
                  ( String.lowercase_ascii (String.sub line 0 i),
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1)) )
            | None -> None)
          (String.split_on_char '\n' head)
      in
      { status; headers; body }

let with_telemetry ?(ready = true) session f =
  let tel = Telemetry.start ~ready ~port:0 session in
  Fun.protect ~finally:(fun () -> Telemetry.stop tel) (fun () -> f tel)

let quick_session () =
  let s = Session.create () in
  Session.set_faults s None;
  ignore
    (Session.run_script s
       {|create table Ht(id varchar(4), n integer)
         select count(*) as c from table Ht|});
  s

(* ---------- endpoint golden tests ---------- *)

let test_healthz () =
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let r = request (Telemetry.port tel) "/healthz" in
  check_int "200" 200 r.status;
  Alcotest.(check string) "body" "ok\n" r.body;
  check "content-length present" true
    (List.assoc_opt "content-length" r.headers = Some "3")

let test_metrics_exposition () =
  Metrics.reset ();
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let r = request (Telemetry.port tel) "/metrics" in
  check_int "200" 200 r.status;
  check "prometheus content type" true
    (match List.assoc_opt "content-type" r.headers with
    | Some ct -> contains ct "text/plain"
    | None -> false);
  check "build info gauge" true
    (contains r.body "graql_build_info{version=");
  check "uptime gauge" true (contains r.body "graql_uptime_seconds");
  check "help lines" true (contains r.body "# HELP");
  check "statement counter" true
    (contains r.body "graql_script_statements_total")

let test_unknown_path_404 () =
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let r = request (Telemetry.port tel) "/nope" in
  check_int "404" 404 r.status;
  check "error text" true (contains r.body "not found")

let test_wrong_method_405 () =
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let port = Telemetry.port tel in
  check_int "POST on a GET route" 405 (request ~meth:"POST" port "/healthz").status;
  check_int "GET on a POST route" 405 (request port "/traces/start").status;
  check_int "DELETE on /metrics" 405 (request ~meth:"DELETE" port "/metrics").status

let test_bad_request_400 () =
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let r = request ~raw:"this is not http\r\n\r\n" (Telemetry.port tel) "/" in
  check_int "400" 400 r.status

let test_readyz_toggles () =
  let s = quick_session () in
  with_telemetry ~ready:false s @@ fun tel ->
  let port = Telemetry.port tel in
  let r = request port "/readyz" in
  check_int "503 while starting" 503 r.status;
  check "starting body" true (contains r.body "starting");
  Telemetry.set_ready tel true;
  let r = request port "/readyz" in
  check_int "200 once ready" 200 r.status;
  check "ready body" true (contains r.body "ready");
  check "recovery summary attached" true (contains r.body "recovery:")

let test_stats_endpoint () =
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let r = request (Telemetry.port tel) "/stats" in
  check_int "200" 200 r.status;
  check "counter table rendered" true (contains r.body "counter")

let test_traces_roundtrip () =
  Trace.clear ();
  Trace.disarm ();
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let port = Telemetry.port tel in
  check "disarmed before" false (Trace.is_armed ());
  let r = request ~meth:"POST" port "/traces/start" in
  check_int "armed via POST" 200 r.status;
  check "armed" true (Trace.is_armed ());
  ignore (Session.run_script s "select count(*) as c from table Ht");
  let r = request port "/traces" in
  check_int "traces fetch" 200 r.status;
  check "json content type" true
    (List.assoc_opt "content-type" r.headers = Some "application/json");
  (match Json.parse (String.trim r.body) with
  | Ok (Json.Arr evs) -> check "span events recorded" true (evs <> [])
  | Ok _ -> Alcotest.fail "expected a JSON array"
  | Error msg -> Alcotest.failf "trace json: %s" msg);
  let r = request ~meth:"POST" port "/traces/stop" in
  check_int "disarmed via POST" 200 r.status;
  check "disarmed after" false (Trace.is_armed ())

let test_slowlog_endpoint () =
  Slow_log.clear ();
  Slow_log.set_threshold_ms (Some 0.0);
  Fun.protect
    ~finally:(fun () ->
      Slow_log.set_threshold_ms None;
      Trace.disarm ();
      Slow_log.clear ())
  @@ fun () ->
  let s = quick_session () in
  ignore (Session.run_script s "select count(*) as c from table Ht");
  with_telemetry s @@ fun tel ->
  let r = request (Telemetry.port tel) "/slowlog" in
  check_int "200" 200 r.status;
  match Json.parse (String.trim r.body) with
  | Ok (Json.Arr (entry :: _)) ->
      check "entry has stmt" true
        (Option.is_some (Json.member "stmt" entry));
      check "entry has wall_ms" true
        (Option.is_some (Json.member "wall_ms" entry))
  | Ok (Json.Arr []) -> Alcotest.fail "slow log empty at threshold 0"
  | Ok _ -> Alcotest.fail "expected a JSON array"
  | Error msg -> Alcotest.failf "slowlog json: %s" msg

(* Scrapes must stay valid while another domain runs the Berlin
   workload: the acceptance criterion for the tentpole. *)
let test_concurrent_scrapes () =
  Metrics.reset ();
  let s = Session.create () in
  Session.set_faults s None;
  Graql_berlin.Berlin_gen.ingest_all ~scale:1 s;
  Db.set_param (Session.db s) "Product1"
    (Value.Str
       (Graql_berlin.Berlin_reference.most_offered_product ~scale:1 ()));
  Db.set_param (Session.db s) "Country1" (Value.Str "US");
  Db.set_param (Session.db s) "Country2" (Value.Str "DE");
  with_telemetry s @@ fun tel ->
  let port = Telemetry.port tel in
  let worker =
    Domain.spawn (fun () ->
        for _ = 1 to 3 do
          List.iter
            (fun (_, q) -> ignore (Session.run_script s q))
            Graql_berlin.Berlin_queries.all
        done)
  in
  Fun.protect ~finally:(fun () -> Domain.join worker) @@ fun () ->
  for _ = 1 to 15 do
    let r = request port "/metrics" in
    check_int "scrape 200 mid-workload" 200 r.status;
    check "scrape has content" true
      (contains r.body "graql_build_info")
  done

let test_requests_counted () =
  let s = quick_session () in
  with_telemetry s @@ fun tel ->
  let before = Metrics.counter_value (Metrics.counter "http.requests") in
  ignore (request (Telemetry.port tel) "/healthz");
  ignore (request (Telemetry.port tel) "/nope");
  let after = Metrics.counter_value (Metrics.counter "http.requests") in
  check "http.requests counted both" true (after >= before + 2)

(* ---------- structured query log ---------- *)

let with_query_log f =
  let lines = ref [] in
  Query_log.set_sink (Some (fun line -> lines := line :: !lines));
  Fun.protect
    ~finally:(fun () -> Query_log.set_sink None)
    (fun () -> f (fun () -> List.rev !lines))

let parse_records lines =
  List.map
    (fun line ->
      match Json.parse line with
      | Ok json -> json
      | Error msg -> Alcotest.failf "query log line %S: %s" line msg)
    lines

let field name json =
  match Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "query log record lacks %S" name

let str_field name json =
  match Json.to_string_opt (field name json) with
  | Some s -> s
  | None -> Alcotest.failf "%S is not a string" name

let int_field name json =
  match Json.to_int (field name json) with
  | Some i -> i
  | None -> Alcotest.failf "%S is not an int" name

let test_query_log_ok_lines () =
  with_query_log @@ fun lines ->
  let s = quick_session () in
  ignore
    (Session.run_script s
       {|create table Ql(id varchar(4), n integer)
         select count(*) as c from table Ql|});
  let records = parse_records (lines ()) in
  check "one line per statement" true (List.length records >= 2);
  let ids = List.map (int_field "id") records in
  check "ids strictly increase" true
    (List.for_all2 ( < )
       (List.filteri (fun i _ -> i < List.length ids - 1) ids)
       (List.tl ids));
  List.iter
    (fun r ->
      Alcotest.(check string) "outcome ok" "ok" (str_field "outcome" r);
      check "wall_ms non-negative" true
        (match Json.to_float (field "wall_ms" r) with
        | Some ms -> ms >= 0.0
        | None -> false);
      check_int "no retries" 0 (int_field "retries" r);
      check "no error field on ok" true (Json.member "error" r = None))
    records;
  let kinds = List.map (str_field "stmt") records in
  check "create_table kind labelled" true
    (List.exists (fun k -> contains k "create_table:Ql") kinds);
  check "select rows counted" true
    (List.exists
       (fun r ->
         contains (str_field "stmt" r) "select" && int_field "rows" r >= 1)
       records)

let test_query_log_failed_and_timeout () =
  with_query_log @@ fun lines ->
  (* A failing ingest → "failed" with the error attached. *)
  let s = Session.create ~strict:false () in
  Session.set_faults s None;
  ignore (Session.run_script s "ingest table Missing nosuch.csv");
  (* A stalled shard under a tiny deadline → "timeout". *)
  let pool = Pool.create ~domains:1 () in
  let s2 = Session.create ~pool () in
  Pool.set_retry ~backoff_ms:0.0 pool;
  let loader _ =
    let buf = Buffer.create (1 lsl 16) in
    Buffer.add_string buf "id,n\n";
    for i = 0 to 4999 do
      Buffer.add_string buf (Printf.sprintf "r%d,%d\n" i (i mod 101))
    done;
    Buffer.contents buf
  in
  ignore
    (Session.run_script ~loader s2
       {|create table Big(id varchar(8), n integer)
         ingest table Big big.csv|});
  Session.set_faults s2 (Some (Fault.make [ Fault.rule (Fault.Slow 50) ]));
  ignore
    (Session.run_script ~deadline_ms:80 s2
       "select id from table Big where n < 10 into table C");
  Session.set_faults s2 None;
  Pool.shutdown pool;
  let records = parse_records (lines ()) in
  let with_outcome o =
    List.filter (fun r -> str_field "outcome" r = o) records
  in
  (match with_outcome "failed" with
  | r :: _ ->
      check "failed carries the error" true
        (contains (str_field "error" r) "no such table")
  | [] -> Alcotest.fail "no failed record");
  (match with_outcome "timeout" with
  | r :: _ ->
      check "timeout carries the budget" true
        (contains (str_field "error" r) "deadline")
  | [] -> Alcotest.fail "no timeout record");
  check "every line valid JSON (parse_records already proved it)" true
    (records <> [])

let test_query_log_degraded_on_retries () =
  with_query_log @@ fun lines ->
  let pool = Pool.create ~domains:2 () in
  Pool.set_retry ~backoff_ms:0.0 pool;
  let s = Session.create ~pool () in
  Session.set_faults s (Some (Fault.fail_once ()));
  Graql_berlin.Berlin_gen.ingest_all ~scale:1 s;
  Db.set_param (Session.db s) "Product1" (Value.Str "p0");
  ignore
    (Session.run_script ~parallel:true s Graql_berlin.Berlin_queries.q2);
  Pool.shutdown pool;
  let records = parse_records (lines ()) in
  check "some statement degraded by retries" true
    (List.exists
       (fun r ->
         str_field "outcome" r = "degraded" && int_field "retries" r > 0)
       records)

let test_query_log_user_attribution () =
  with_query_log @@ fun lines ->
  let srv = Server.create () in
  Server.add_user srv ~name:"ops" ~role:Server.Admin;
  let conn = Server.connect srv ~user:"ops" in
  ignore (Server.run conn "create table U(id varchar(4))");
  let records = parse_records (lines ()) in
  check "records attributed to the connection's user" true
    (List.exists
       (fun r ->
         match Json.member "user" r with
         | Some u -> Json.to_string_opt u = Some "ops"
         | None -> false)
       records);
  check "user cleared after the script" true (Query_log.current_user () = None)

(* ---------- CLI --listen / --serve-ms, at the binary level ---------- *)

let graql_bin =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "graql_cli.exe")

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "graql_http" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let wait_for ?(attempts = 100) f =
  let rec go n =
    if n = 0 then None
    else
      match f () with
      | Some v -> Some v
      | None ->
          Unix.sleepf 0.05;
          go (n - 1)
  in
  go attempts

let test_cli_listen_serves () =
  with_temp_dir @@ fun dir ->
  let script = Filename.concat dir "s.graql" in
  let oc = open_out script in
  output_string oc
    "create table L(id varchar(4), n integer)\n\
     select count(*) as c from table L\n";
  close_out oc;
  let qlog = Filename.concat dir "queries.jsonl" in
  let err = Filename.concat dir "stderr.txt" in
  let err_fd = Unix.openfile err [ Unix.O_WRONLY; Unix.O_CREAT ] 0o600 in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process graql_bin
      [|
        graql_bin; "run"; script; "--listen"; "0"; "--serve-ms"; "5000";
        "--query-log"; qlog;
      |]
      null null err_fd
  in
  Unix.close err_fd;
  Unix.close null;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
  @@ fun () ->
  (* The CLI announces the ephemeral port on stderr. *)
  let port =
    match
      wait_for (fun () ->
          let text = try read_file err with Sys_error _ -> "" in
          match find_sub text "listening on http://127.0.0.1:" with
          | Some i ->
              let rest =
                String.sub text
                  (i + String.length "listening on http://127.0.0.1:")
                  (String.length text - i
                  - String.length "listening on http://127.0.0.1:")
              in
              let digits = String.trim (List.hd (String.split_on_char '\n' rest)) in
              int_of_string_opt digits
          | None -> None)
    with
    | Some p -> p
    | None -> Alcotest.fail "CLI never announced its listen port"
  in
  (* Scrape while the CLI lingers in --serve-ms. *)
  let healthz =
    match
      wait_for (fun () ->
          match request port "/healthz" with
          | r -> Some r
          | exception Unix.Unix_error _ -> None)
    with
    | Some r -> r
    | None -> Alcotest.fail "CLI endpoint never answered"
  in
  check_int "healthz 200" 200 healthz.status;
  let metrics = request port "/metrics" in
  check_int "metrics 200" 200 metrics.status;
  check "metrics exposition served" true
    (contains metrics.body "graql_script_statements_total");
  let ready = request port "/readyz" in
  check_int "ready after the run" 200 ready.status;
  (* The query log landed one valid JSON line per statement. *)
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file qlog))
  in
  check_int "two statements logged" 2 (List.length lines);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "bad query log line %S: %s" l msg)
    lines

let () =
  Alcotest.run "http"
    [
      ( "endpoints",
        [
          Alcotest.test_case "healthz" `Quick test_healthz;
          Alcotest.test_case "metrics exposition" `Quick
            test_metrics_exposition;
          Alcotest.test_case "404 unknown path" `Quick test_unknown_path_404;
          Alcotest.test_case "405 wrong method" `Quick test_wrong_method_405;
          Alcotest.test_case "400 bad request" `Quick test_bad_request_400;
          Alcotest.test_case "readyz toggles" `Quick test_readyz_toggles;
          Alcotest.test_case "stats" `Quick test_stats_endpoint;
          Alcotest.test_case "traces round trip" `Quick test_traces_roundtrip;
          Alcotest.test_case "slowlog" `Quick test_slowlog_endpoint;
          Alcotest.test_case "requests counted" `Quick test_requests_counted;
          Alcotest.test_case "concurrent scrapes during Berlin" `Slow
            test_concurrent_scrapes;
        ] );
      ( "query-log",
        [
          Alcotest.test_case "ok lines" `Quick test_query_log_ok_lines;
          Alcotest.test_case "failed and timeout" `Slow
            test_query_log_failed_and_timeout;
          Alcotest.test_case "degraded on retries" `Slow
            test_query_log_degraded_on_retries;
          Alcotest.test_case "user attribution" `Quick
            test_query_log_user_attribution;
        ] );
      ( "cli",
        [
          Alcotest.test_case "--listen serves during --serve-ms" `Slow
            test_cli_listen_serves;
        ] );
    ]
