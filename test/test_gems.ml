(* GEMS pipeline tests: session flow (parse -> check -> IR -> execute),
   strict rejection, catalog service, sharded backend determinism, fault
   injection and recovery. *)

module Session = Graql_gems.Session
module Shard = Graql_gems.Shard
module Fault = Graql_gems.Fault
module Db = Graql_engine.Db
module Script_exec = Graql_engine.Script_exec
module Graql_error = Graql_engine.Graql_error
module Pool = Graql_parallel.Domain_pool
module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype
module Row_expr = Graql_relational.Row_expr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let mini_schema =
  {|
create table T(id varchar(8), n integer)
create vertex V(id) from table T
ingest table T t.csv
|}

let loader _ = "id,n\na,1\nb,2\nc,3\n"

(* ------------------------------------------------------------------ *)

let test_session_happy_path () =
  let s = Session.create () in
  let results = Session.run_script ~loader s mini_schema in
  check_int "four statements" 3 (List.length results);
  check "no diagnostics" true (Session.last_diagnostics s = []);
  check "ir was shipped" true (Session.ir_bytes_shipped s > 0);
  let times = Session.phase_times s in
  check "phases timed" true
    (times.Session.t_parse >= 0.0 && times.Session.t_execute >= 0.0)

let test_session_strict_rejection () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  match Session.run_script s "select zzz from table T" with
  | _ -> Alcotest.fail "expected rejection"
  | exception Graql_error.Error (Graql_error.Analysis diags) ->
      check "has errors" true (Graql_analysis.Diag.has_errors diags)

let test_session_nonstrict_mode () =
  (* Non-strict: static errors do not block; execution then fails (or not)
     on its own terms, surfacing as a typed per-statement outcome. *)
  let s = Session.create ~strict:false () in
  ignore (Session.run_script ~loader s mini_schema);
  match Session.run_script s "select zzz from table T" with
  | [ (_, Script_exec.O_failed (Graql_error.Exec _)) ] -> ()
  | _ -> Alcotest.fail "execution should still fail on unknown column"

let test_check_does_not_execute () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let before = Table.nrows (Db.find_table_exn (Session.db s) "T") in
  let diags = Session.check s "ingest table T t.csv" in
  check "check is clean" false (Graql_analysis.Diag.has_errors diags);
  check_int "no data touched" before
    (Table.nrows (Db.find_table_exn (Session.db s) "T"))

let test_run_ir_directly () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let blob =
    Graql_ir.Codec.encode_script
      (Graql_lang.Parser.parse_script "select id from table T where n > 1")
  in
  match Session.run_ir s blob with
  | [ (_, Script_exec.O_table t) ] -> check_int "two rows" 2 (Table.nrows t)
  | _ -> Alcotest.fail "expected one table"

let test_catalog_rows () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let rows = Session.catalog_rows s in
  check "table listed with size" true
    (List.exists (fun r -> r = [ "table"; "T"; "3" ]) rows);
  check "vertex listed" true
    (List.exists (function [ "vertex"; "V"; _ ] -> true | _ -> false) rows)

let test_session_warnings_do_not_block () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  (* An empty result table triggers a feasibility warning downstream. *)
  ignore
    (Session.run_script s
       "select id from table T where n > 100 into table Empty");
  match Session.run_script s "select id from table Empty" with
  | [ (_, Script_exec.O_table t) ] ->
      check_int "empty result, no rejection" 0 (Table.nrows t)
  | _ -> Alcotest.fail "expected table"

(* ------------------------------------------------------------------ *)
(* Server: access control, accounts, audit (Sec. III component 2)      *)

module Server = Graql_gems.Server

let test_server_roles () =
  let srv = Server.create () in
  Server.add_user srv ~name:"root" ~role:Server.Admin;
  Server.add_user srv ~name:"ann" ~role:Server.Analyst;
  let root = Server.connect srv ~user:"root" in
  let ann = Server.connect srv ~user:"ann" in
  (* Admin provisions the database. *)
  ignore (Server.run ~loader root mini_schema);
  (* Analyst may query... *)
  (match Server.run ann "select id from table T where n >= 2" with
  | [ (_, Script_exec.O_table t) ] -> check_int "analyst query" 2 (Table.nrows t)
  | _ -> Alcotest.fail "expected table");
  (* ...and bind parameters... *)
  ignore (Server.run ann "set %N% = 2");
  (* ...but not write. *)
  (match Server.run ~loader ann "ingest table T t.csv" with
  | _ -> Alcotest.fail "expected denial"
  | exception Graql_error.Error (Graql_error.Denied msg) ->
      check "names the user" true (String.length msg > 0));
  (* Authorization is all-or-nothing: the select before the ingest must
     not have executed either. *)
  (match
     Server.run ~loader ann
       {|select id from table T into table Leak
         ingest table T t.csv|}
   with
  | _ -> Alcotest.fail "expected denial"
  | exception Graql_error.Error (Graql_error.Denied _) ->
      check "nothing leaked" true
        (Db.find_table (Session.db (Server.session srv)) "Leak" = None));
  check_int "table untouched" 3
    (Table.nrows (Db.find_table_exn (Session.db (Server.session srv)) "T"))

let test_server_accounts_and_audit () =
  let srv = Server.create () in
  Server.add_user srv ~name:"root" ~role:Server.Admin;
  Server.add_user srv ~name:"ann" ~role:Server.Analyst;
  Alcotest.check_raises "duplicate user" (Failure "user \"ann\" already exists")
    (fun () -> Server.add_user srv ~name:"ann" ~role:Server.Admin);
  (match Server.connect srv ~user:"bob" with
  | _ -> Alcotest.fail "expected unknown user"
  | exception Server.Unknown_user u -> Alcotest.(check string) "user" "bob" u);
  let root = Server.connect srv ~user:"root" in
  ignore (Server.run ~loader root mini_schema);
  let ann = Server.connect srv ~user:"ann" in
  ignore (Server.run ann "select id from table T");
  (try ignore (Server.run ~loader ann "ingest table T t.csv")
   with Graql_error.Error (Graql_error.Denied _) -> ());
  let stats = Server.user_stats srv in
  check "ann stats" true (List.mem ("ann", 1, 1) stats);
  check "root stats" true (List.mem ("root", 3, 0) stats);
  let log = Server.audit_log srv in
  check_int "audit entries" 4 (List.length log);
  check "audit order" true (fst (List.hd log) = "root");
  check "last entry is ann's select" true
    (match List.rev log with ("ann", _) :: _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)

let test_loader_failure_mid_script () =
  let s = Session.create () in
  let flaky name = if name = "t.csv" then raise (Sys_error "disk gone") else "" in
  (* The failing ingest reports a typed per-statement outcome; the rest of
     the script still ran. *)
  (match Session.run_script ~loader:flaky s mini_schema with
  | results -> (
      check_int "all statements reported" 3 (List.length results);
      match List.rev results with
      | (_, Script_exec.O_failed (Graql_error.Exec (_, msg))) :: _ ->
          check "names the operation" true (contains ~needle:"ingest" msg)
      | _ -> Alcotest.fail "expected failed ingest outcome"));
  (* The DDL before the failing ingest took effect; the session recovers
     on the next script. *)
  check "table exists, empty" true
    (Table.nrows (Db.find_table_exn (Session.db s) "T") = 0);
  match Session.run_script ~loader s "ingest table T t.csv" with
  | [ (_, Script_exec.O_message _) ] ->
      check_int "recovered" 3 (Table.nrows (Db.find_table_exn (Session.db s) "T"))
  | _ -> Alcotest.fail "expected ingest message"

let test_parallel_script_failure_propagates () =
  let pool = Pool.create ~domains:2 () in
  let s = Session.create ~pool () in
  ignore (Session.run_script ~loader s mini_schema);
  (* Two independent statements; one dies at runtime (use an unbound
     parameter). Wave execution must surface the error as that
     statement's outcome — and still run its sibling. *)
  let results =
    Session.run_script ~parallel:true s
      {|select id from table T where n > 0 into table OK1
        select id from table T where n = %Unbound% into table BAD|}
  in
  let failed =
    List.filter_map
      (function
        | _, Script_exec.O_failed (Graql_error.Exec (_, msg)) -> Some msg
        | _ -> None)
      results
  in
  check "unbound param surfaced" true
    (failed = [ "unbound parameter %Unbound%" ]);
  check "sibling statement still ran" true
    (Db.find_table (Session.db s) "OK1" <> None);
  Pool.shutdown pool

let test_corrupt_ir_rejected_by_backend () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let blob =
    Graql_ir.Codec.encode_script
      (Graql_lang.Parser.parse_script "select id from table T")
  in
  Bytes.set blob (Bytes.length blob - 1) '\xff';
  match Session.run_ir s blob with
  | _ -> Alcotest.fail "expected corrupt IR"
  | exception Graql_error.Error (Graql_error.Io _) -> ()

(* ------------------------------------------------------------------ *)
(* Fault injection and recovery                                        *)

let big_table n =
  let schema = Schema.make [ { Schema.name = "v"; dtype = Dtype.Int } ] in
  let t = Table.create ~name:"big" schema in
  for i = 0 to n - 1 do
    Table.append_row t [ Value.Int (i mod 101) ]
  done;
  t

let render_outcomes results =
  String.concat "\n"
    (List.map
       (fun ((_ : Graql_lang.Ast.stmt), o) ->
         match o with
         | Script_exec.O_table t -> Table.to_display_string t
         | Script_exec.O_subgraph sg -> Graql_graph.Subgraph.summary sg
         | Script_exec.O_message m -> m
         | Script_exec.O_failed e -> "error: " ^ Graql_error.to_string e)
       results)

(* Run every Berlin query and render all outcomes to one string. *)
let berlin_run ~domains ?faults () =
  let pool = Pool.create ~domains () in
  let s = Session.create ~pool ?faults () in
  (* Pin the plan (possibly to none): the determinism matrix must not
     shift when CI exports GRAQL_FAULT_SEED for the whole suite. *)
  Session.set_faults s faults;
  Pool.set_retry ~backoff_ms:0.0 pool;
  Graql_berlin.Berlin_gen.ingest_all ~scale:1 s;
  let db = Session.db s in
  Db.set_param db "Product1"
    (Value.Str (Graql_berlin.Berlin_reference.most_offered_product ~scale:1 ()));
  Db.set_param db "Country1" (Value.Str "US");
  Db.set_param db "Country2" (Value.Str "DE");
  let out =
    String.concat "\n"
      (List.map
         (fun (name, q) ->
           name ^ "\n" ^ render_outcomes (Session.run_script ~parallel:true s q))
         Graql_berlin.Berlin_queries.all)
  in
  let recovered = Session.recovered_faults s in
  Pool.shutdown pool;
  (out, recovered)

let test_berlin_fault_free_determinism () =
  (* The recovery invariant's baseline: outcomes are byte-identical across
     domain counts even without faults. *)
  let base, _ = berlin_run ~domains:1 () in
  List.iter
    (fun domains ->
      let out, recovered = berlin_run ~domains () in
      check_int "no faults injected" 0 recovered;
      Alcotest.(check string)
        (Printf.sprintf "identical at %d domains" domains)
        base out)
    [ 2; 4 ]

let test_berlin_fail_once_recovers_identically () =
  (* Every parallel chunk of every Berlin query fails its first attempt;
     pool-level retry must absorb all of it without changing a byte. *)
  let base, _ = berlin_run ~domains:1 () in
  List.iter
    (fun domains ->
      let out, recovered =
        berlin_run ~domains ~faults:(Fault.fail_once ()) ()
      in
      Alcotest.(check string)
        (Printf.sprintf "recovered run identical at %d domains" domains)
        base out;
      if domains > 1 then
        check "faults were actually injected and recovered" true
          (recovered > 0))
    [ 1; 2; 4; 8 ]

let test_berlin_seeded_random_faults_deterministic () =
  (* A seeded random plan must strike the same sites on every run: two
     runs at the same domain count agree with each other and with the
     fault-free baseline. *)
  let base, _ = berlin_run ~domains:2 () in
  let a, _ = berlin_run ~domains:2 ~faults:(Fault.random ~seed:7 ()) () in
  let b, _ = berlin_run ~domains:2 ~faults:(Fault.random ~seed:7 ()) () in
  Alcotest.(check string) "recovered = fault-free" base a;
  Alcotest.(check string) "same seed, same run" a b

let big_script_loader _ =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "id,n\n";
  for i = 0 to 4999 do
    Buffer.add_string buf (Printf.sprintf "r%d,%d\n" i (i mod 101))
  done;
  Buffer.contents buf

let big_session ?faults ~domains () =
  let pool = Pool.create ~domains () in
  let s = Session.create ~pool ?faults () in
  Pool.set_retry ~backoff_ms:0.0 pool;
  ignore
    (Session.run_script ~loader:big_script_loader s
       {|create table Big(id varchar(8), n integer)
         ingest table Big big.csv|});
  (pool, s)

let test_dead_statement_isolated () =
  (* A permanently-dead site that only replica-less pool retry can reach:
     the targeted statement reports Exec_fault; its sibling completes. *)
  let faults = Fault.make [ Fault.rule ~label:"stmt0:" ~attempts:(-1) Fail ] in
  let pool, s = big_session ~faults ~domains:2 () in
  let results =
    Session.run_script s
      {|select id from table Big where n < 10 into table A
        select id from table Big where n > 90 into table B|}
  in
  (match results with
  | [ (_, Script_exec.O_failed (Graql_error.Exec_fault { site; attempts })) ; (_, ok) ] ->
      check "site names the statement" true (contains ~needle:"stmt0" site);
      check "attempts exhausted" true (attempts >= 1);
      check "sibling ok" true
        (match ok with Script_exec.O_failed _ -> false | _ -> true)
  | _ -> Alcotest.fail "expected [Exec_fault; ok] outcomes");
  check "failed statement produced nothing" true
    (Db.find_table (Session.db s) "A" = None);
  check "sibling statement landed" true
    (Db.find_table (Session.db s) "B" <> None);
  Pool.shutdown pool

let test_deadline_times_out_stalled_shard () =
  let pool, s = big_session ~domains:1 () in
  (* Every site stalls 50 ms; at 4+ chunks the 80 ms budget must expire
     at a chunk boundary and surface as a per-statement timeout. *)
  Session.set_faults s (Some (Fault.make [ Fault.rule (Fault.Slow 50) ]));
  let t0 = (Session.phase_times s).Session.t_execute in
  let results =
    Session.run_script ~deadline_ms:80 s
      "select id from table Big where n < 10 into table C"
  in
  (match results with
  | [ (_, Script_exec.O_failed (Graql_error.Timeout { deadline_ms })) ] ->
      check_int "budget reported" 80 deadline_ms
  | _ -> Alcotest.fail "expected timeout outcome");
  (* Partial phase timings survive the abort. *)
  check "execute phase was timed" true
    ((Session.phase_times s).Session.t_execute > t0);
  Session.set_faults s None;
  (match
     Session.run_script ~deadline_ms:60_000 s
       "select id from table Big where n < 10 into table C"
   with
  | [ (_, Script_exec.O_message _) ] | [ (_, Script_exec.O_table _) ] -> ()
  | _ -> Alcotest.fail "expected success after faults cleared");
  Pool.shutdown pool

let test_shard_failover_deterministic () =
  let pool = Pool.create ~domains:4 () in
  let t = big_table 5000 in
  let pred = Row_expr.(Cmp (Lt, Col 0, Const (Value.Int 13))) in
  let clean = Shard.create ~shards:4 pool in
  let base = Shard.parallel_select clean t pred in
  List.iter
    (fun shards ->
      (* Node 0 is permanently dead; with 2 replicas every shard has an
         alternative, so results never change. *)
      let faulty =
        Shard.create ~shards ~replicas:2 ~faults:(Fault.dead ~index:0 ())
          ~backoff_ms:0.0 pool
      in
      let r = Shard.parallel_select faulty t pred in
      check (Printf.sprintf "identical with dead node at %d shards" shards)
        true (r = base);
      check "failover actually happened" true (Shard.failovers faulty > 0))
    [ 2; 4; 8 ];
  Pool.shutdown pool

let test_shard_fail_once_recovers () =
  let pool = Pool.create ~domains:4 () in
  let t = big_table 5000 in
  let pred = Row_expr.(Cmp (Lt, Col 0, Const (Value.Int 13))) in
  let base = Shard.parallel_select (Shard.create ~shards:4 pool) t pred in
  let faulty =
    Shard.create ~shards:4 ~faults:(Fault.fail_once ()) ~backoff_ms:0.0 pool
  in
  let r = Shard.parallel_select faulty t pred in
  check "fail-once recovered identically" true (r = base);
  check_int "one retry per shard" 4 (Shard.retries faulty);
  check_int "no failover needed" 0 (Shard.failovers faulty);
  Pool.shutdown pool

let test_shard_dead_without_replica_exhausts () =
  let pool = Pool.create ~domains:2 () in
  let t = big_table 1000 in
  let backend =
    Shard.create ~shards:4 ~replicas:1 ~faults:(Fault.dead ~index:0 ())
      ~max_attempts:2 ~backoff_ms:0.0 pool
  in
  (match Shard.parallel_select backend t Row_expr.const_true with
  | _ -> Alcotest.fail "expected exhaustion"
  | exception Pool.Fault_exhausted { site; attempts } ->
      check "site recorded" true (String.length site > 0);
      check_int "attempt budget spent" 2 attempts);
  Pool.shutdown pool

let test_replica_placement_properties () =
  let weights = [| 50; 10; 40; 10; 30; 20; 5; 45 |] in
  let placed =
    Graql_gems.Cluster.replica_placement ~nodes:4 ~replicas:3 weights
  in
  check_int "row per item" (Array.length weights) (Array.length placed);
  Array.iter
    (fun nodes ->
      check_int "replica count" 3 (Array.length nodes);
      let sorted = Array.copy nodes in
      Array.sort compare sorted;
      check "distinct nodes" true
        (Array.for_all (fun i -> i >= 0 && i < 4) sorted
        && (sorted.(0) <> sorted.(1) && sorted.(1) <> sorted.(2))))
    placed;
  (* Deterministic: same inputs, same placement. *)
  check "stable placement" true
    (placed = Graql_gems.Cluster.replica_placement ~nodes:4 ~replicas:3 weights)

let test_server_audit_cap () =
  let srv = Server.create () in
  Server.add_user srv ~name:"root" ~role:Server.Admin;
  let root = Server.connect srv ~user:"root" in
  for i = 0 to 1099 do
    ignore (Server.run root (Printf.sprintf "set %%P%d%% = %d" i i))
  done;
  let log = Server.audit_log srv in
  check_int "capped at 1000" 1000 (List.length log);
  (* Oldest-first eviction: entries 0..99 are gone; the log now starts at
     statement #100 and still ends at #1099. *)
  check "oldest evicted" true (contains ~needle:"P100%" (snd (List.hd log)));
  check "newest kept" true
    (contains ~needle:"P1099%" (snd (List.nth log 999)));
  (* Counters keep counting past the cap. *)
  check "stats uncapped" true (List.mem ("root", 1100, 0) (Server.user_stats srv))

let test_shard_ranges_cover () =
  let pool = Pool.create ~domains:3 () in
  let t = big_table 1000 in
  List.iter
    (fun shards ->
      let backend = Shard.create ~shards pool in
      let ranges = Shard.ranges backend t in
      check_int "one range per shard" shards (List.length ranges);
      let covered =
        List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges
      in
      check_int "full coverage" 1000 covered;
      (* Contiguous and ordered *)
      ignore
        (List.fold_left
           (fun prev (lo, hi) ->
             check "contiguous" true (lo = prev);
             hi)
           0 ranges))
    [ 1; 2; 3; 7; 16 ];
  Pool.shutdown pool

let test_shard_select_deterministic_across_counts () =
  let pool = Pool.create ~domains:4 () in
  let t = big_table 5000 in
  let pred = Row_expr.(Cmp (Lt, Col 0, Const (Value.Int 13))) in
  let base = Shard.parallel_select (Shard.create ~shards:1 pool) t pred in
  List.iter
    (fun shards ->
      let r = Shard.parallel_select (Shard.create ~shards pool) t pred in
      check (Printf.sprintf "same result at %d shards" shards) true (r = base))
    [ 2; 4; 8 ];
  check_int "count agrees" (Array.length base)
    (Shard.parallel_count (Shard.create ~shards:4 pool) t pred);
  Pool.shutdown pool

let test_shard_scan_merge_order () =
  let pool = Pool.create ~domains:4 () in
  let t = big_table 257 in
  let backend = Shard.create ~shards:5 pool in
  let concat =
    Shard.parallel_scan backend t
      ~init:(fun () -> Buffer.create 64)
      ~row:(fun buf r -> Buffer.add_string buf (string_of_int r))
      ~merge:(fun a b ->
        Buffer.add_buffer a b;
        a)
  in
  let expect = String.concat "" (List.init 257 string_of_int) in
  Alcotest.(check string) "row order preserved" expect (Buffer.contents concat);
  Pool.shutdown pool

let test_shard_empty_table () =
  let pool = Pool.create ~domains:2 () in
  let schema = Schema.make [ { Schema.name = "v"; dtype = Dtype.Int } ] in
  let t = Table.create ~name:"empty" schema in
  let backend = Shard.create ~shards:4 pool in
  check_int "empty select" 0
    (Array.length (Shard.parallel_select backend t Row_expr.const_true));
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Cluster capacity planning                                           *)

module Cluster = Graql_gems.Cluster

let berlin_db scale =
  let s = Session.create () in
  Graql_berlin.Berlin_gen.ingest_all ~scale s;
  Session.db s

let test_cluster_items () =
  let db = berlin_db 1 in
  let items = Cluster.database_items ~shards_per_table:2 db in
  check "all bytes non-negative" true
    (List.for_all (fun i -> i.Cluster.it_bytes >= 0) items);
  (* 10 tables x 2 shards + 10 vertex views + 9 edge types *)
  check_int "item count" ((10 * 2) + 10 + 9) (List.length items);
  let total l = List.fold_left (fun a i -> a + i.Cluster.it_bytes) 0 l in
  let bigger = Cluster.database_items (berlin_db 4) in
  check "footprint grows with scale" true (total bigger > total items)

let test_cluster_lpt_balance () =
  let db = berlin_db 2 in
  let plan = Cluster.plan ~nodes:4 ~mem_per_node:max_int db in
  check "skew near 1 with many items" true (plan.Cluster.pl_skew < 1.5);
  check_int "loads cover total" plan.Cluster.pl_total_bytes
    (Array.fold_left ( + ) 0 plan.Cluster.pl_node_bytes);
  check "fits in unlimited memory" true plan.Cluster.pl_fits

let test_cluster_capacity_boundary () =
  let db = berlin_db 1 in
  let tight = Cluster.plan ~nodes:2 ~mem_per_node:1024 db in
  check "tiny nodes don't fit" false tight.Cluster.pl_fits;
  let roomy = Cluster.plan ~nodes:2 ~mem_per_node:(1 lsl 30) db in
  check "1GB nodes fit scale 1" true roomy.Cluster.pl_fits;
  check "report mentions verdict" true
    (String.length (Cluster.report tight) > 0)

let test_table_bytes_monotone () =
  let schema =
    Schema.make [ { Schema.name = "s"; dtype = Dtype.Varchar 16 } ]
  in
  let t = Table.create ~name:"m" schema in
  let before = Table.approx_bytes t in
  for i = 0 to 999 do
    Table.append_row t [ Value.Str (string_of_int i) ]
  done;
  check "bytes grow with rows" true (Table.approx_bytes t > before + 8000)

let () =
  Alcotest.run "gems"
    [
      ( "session",
        [
          Alcotest.test_case "happy path" `Quick test_session_happy_path;
          Alcotest.test_case "strict rejection" `Quick test_session_strict_rejection;
          Alcotest.test_case "non-strict mode" `Quick test_session_nonstrict_mode;
          Alcotest.test_case "check is static only" `Quick test_check_does_not_execute;
          Alcotest.test_case "run_ir backend entry" `Quick test_run_ir_directly;
          Alcotest.test_case "catalog listing" `Quick test_catalog_rows;
          Alcotest.test_case "warnings don't block" `Quick
            test_session_warnings_do_not_block;
        ] );
      ( "server",
        [
          Alcotest.test_case "roles enforced" `Quick test_server_roles;
          Alcotest.test_case "accounts and audit" `Quick
            test_server_accounts_and_audit;
          Alcotest.test_case "audit cap eviction" `Quick test_server_audit_cap;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "loader failure mid-script" `Quick
            test_loader_failure_mid_script;
          Alcotest.test_case "parallel failure propagates" `Quick
            test_parallel_script_failure_propagates;
          Alcotest.test_case "corrupt IR rejected" `Quick
            test_corrupt_ir_rejected_by_backend;
        ] );
      ( "fault-recovery",
        [
          Alcotest.test_case "berlin fault-free determinism" `Quick
            test_berlin_fault_free_determinism;
          Alcotest.test_case "berlin fail-once recovers identically" `Quick
            test_berlin_fail_once_recovers_identically;
          Alcotest.test_case "berlin seeded random faults deterministic"
            `Quick test_berlin_seeded_random_faults_deterministic;
          Alcotest.test_case "dead statement isolated" `Quick
            test_dead_statement_isolated;
          Alcotest.test_case "deadline times out stalled shard" `Quick
            test_deadline_times_out_stalled_shard;
          Alcotest.test_case "shard failover deterministic" `Quick
            test_shard_failover_deterministic;
          Alcotest.test_case "shard fail-once recovers" `Quick
            test_shard_fail_once_recovers;
          Alcotest.test_case "shard dead without replica exhausts" `Quick
            test_shard_dead_without_replica_exhausts;
          Alcotest.test_case "replica placement properties" `Quick
            test_replica_placement_properties;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "items inventory" `Quick test_cluster_items;
          Alcotest.test_case "LPT balance" `Quick test_cluster_lpt_balance;
          Alcotest.test_case "capacity boundary" `Quick test_cluster_capacity_boundary;
          Alcotest.test_case "table bytes monotone" `Quick test_table_bytes_monotone;
        ] );
      ( "shards",
        [
          Alcotest.test_case "ranges cover" `Quick test_shard_ranges_cover;
          Alcotest.test_case "deterministic across shard counts" `Quick
            test_shard_select_deterministic_across_counts;
          Alcotest.test_case "merge order" `Quick test_shard_scan_merge_order;
          Alcotest.test_case "empty table" `Quick test_shard_empty_table;
        ] );
    ]
