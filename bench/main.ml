(* Benchmark harness: regenerates every figure and table of the paper
   (see DESIGN.md's per-experiment index) plus the Sec. III performance
   machinery (planner direction ablation, multi-statement scheduling,
   shard-parallel backend scaling).

   Two kinds of output:
   - bechamel micro-benchmarks, one Test.make per paper artifact;
   - parameter-sweep tables (scale factors, domain counts), printed as
     rows, recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit

let bench_scale = 2 (* ~200 products: micro-benches stay sub-ms *)

(* ------------------------------------------------------------------ *)
(* Prepared state                                                      *)

let make_session ?(scale = bench_scale) () =
  let session = Graql.create_session () in
  Graql.Berlin.Gen.ingest_all ~scale session;
  let db = Graql.Session.db session in
  let product = Graql.Berlin.Reference.most_offered_product ~scale () in
  Graql.Db.set_param db "Product1" (Graql.Value.Str product);
  Graql.Db.set_param db "Country1" (Graql.Value.Str "US");
  Graql.Db.set_param db "Country2" (Graql.Value.Str "IT");
  session

let session = make_session ()
let db = Graql.Session.db session
let () = Graql.Db.set_param db "MaxPrice" (Graql.Value.Float 5000.0)
let _ = Graql.Db.graph db (* build views once up front *)

(* Tables-only database used by view-construction benches. *)
let tables_only_db () =
  let d = Graql.Db.create () in
  Graql.Ddl_exec.install d;
  let loader = Graql.Berlin.Gen.loader ~scale:bench_scale () in
  let ddl =
    Graql.Berlin.Schema_ddl.tables_ddl ^ "\n"
    ^ Graql.Berlin.Schema_ddl.ingest_script Graql.Berlin.Gen.table_files
  in
  List.iter
    (fun stmt -> ignore (Graql.Script_exec.exec_stmt ~loader d stmt))
    (Graql.Parser.parse_script ddl);
  d

let declare d ddl =
  List.iter
    (fun stmt -> ignore (Graql.Script_exec.exec_stmt d stmt))
    (Graql.Parser.parse_script ddl)

let vertex_db = tables_only_db ()
let () = declare vertex_db Graql.Berlin.Schema_ddl.vertices_ddl

let edge_db = tables_only_db ()
let () =
  declare edge_db Graql.Berlin.Schema_ddl.vertices_ddl;
  declare edge_db Graql.Berlin.Schema_ddl.edges_ddl

let country_db = tables_only_db ()
let () = declare country_db Graql.Berlin.Schema_ddl.country_ddl

let run_script src () = ignore (Graql.run session src)


(* ------------------------------------------------------------------ *)
(* Figure targets                                                      *)

let fig01_data_model () =
  (* Front-end cost of standing up the whole Berlin logical data model:
     parse + static checking of the full DDL against an empty catalog. *)
  let meta = Graql.Meta.create () in
  let ast = Graql.Parser.parse_script Graql.Berlin.Schema_ddl.full_ddl in
  ignore (Graql.Typecheck.check_script meta ast)

(* Clear the fingerprints so the timed rebuild is from scratch, not a
   selective reuse of the previous build. *)
let full_rebuild d () =
  Graql.Db.set_view_fingerprints d [];
  Graql.Db.invalidate_graph d;
  ignore (Graql.Db.graph d)

let fig02_vertex_decls = full_rebuild vertex_db
let fig03_edge_decls = full_rebuild edge_db
let fig04_many_to_one = full_rebuild country_db

let fig05_country_graph =
  (* The exact 4-producer / 3-vendor example of Fig. 5, end to end. *)
  let script =
    {|
create table P5(id integer, country varchar(2))
create table V5(id integer, country varchar(2))
create table O5(pid integer, vid integer)
create vertex PC5(country) from table P5
create vertex VC5(country) from table V5
create edge export5 with vertices (PC5 as A, VC5 as B)
  where O5.pid = P5.id and O5.vid = V5.id
  and A.country = P5.country and B.country = V5.country
ingest table P5 p5.csv
ingest table V5 v5.csv
ingest table O5 o5.csv
|}
  in
  let loader = function
    | "p5.csv" -> "id,country\n1,US\n2,IT\n3,FR\n4,US\n"
    | "v5.csv" -> "id,country\n1,CA\n2,CN\n3,CA\n"
    | "o5.csv" -> "pid,vid\n1,1\n4,3\n2,2\n2,2\n"
    | f -> raise (Sys_error f)
  in
  fun () ->
    let d = Graql.Db.create () in
    Graql.Ddl_exec.install d;
    List.iter
      (fun stmt -> ignore (Graql.Script_exec.exec_stmt ~loader d stmt))
      (Graql.Parser.parse_script script);
    ignore (Graql.Db.graph d)

let fig06_berlin_q2 = run_script Graql.Berlin.Queries.q2
let fig07_berlin_q1 = run_script Graql.Berlin.Queries.q1

let fig08_multipath =
  (* Q1's branch structure alone: the and-composition without the
     relational post-processing. *)
  run_script
    {|select TypeVtx.id from graph
        PersonVtx (country = %Country2%)
        <--reviewer-- ReviewVtx
        --reviewFor--> foreach y: ProductVtx
        --producer--> ProducerVtx (country = %Country1%)
      and
        (y --type--> TypeVtx ( ))
      into table Fig8T|}

let fig09_type_matching = run_script Graql.Berlin.Queries.fig9_type_matching
let fig10_path_regex = run_script Graql.Berlin.Queries.fig10_regex
let fig11_into_subgraph = run_script Graql.Berlin.Queries.fig11_subgraph_capture
let fig12_seeded_query = run_script Graql.Berlin.Queries.fig12_seeded
let fig13_into_table = run_script Graql.Berlin.Queries.fig13_into_table

(* ------------------------------------------------------------------ *)
(* Table I: one bench per relational operation                         *)

let tab1 =
  [
    ("select", "select id from table Products where propertyNumeric_1 > 1000");
    ("order_by", "select id from table Offers order by price desc");
    ( "group_by",
      "select vendor, count(*) as n from table Offers group by vendor" );
    ("distinct", "select distinct producer from table Products");
    ("count", "select count(*) as n from table Reviews");
    ("avg", "select avg(price) as p from table Offers");
    ("min", "select min(price) as p from table Offers");
    ("max", "select max(price) as p from table Offers");
    ("sum", "select sum(deliveryDays) as d from table Offers");
    ("top_n", "select top 10 id, price from table Offers order by price desc");
    ( "as_alias",
      "select o.id, o.price from table Offers as o where o.deliveryDays < 3" );
  ]

(* ------------------------------------------------------------------ *)
(* Sec. III targets                                                    *)

let s3a_static_analysis =
  let meta = Graql.Db.meta db in
  let ast =
    Graql.Parser.parse_script
      (Graql.Berlin.Queries.q1 ^ "\n" ^ Graql.Berlin.Queries.q2)
  in
  fun () ->
    ignore
      (Graql.Typecheck.check_script
         ~params:
           [
             ("Product1", Graql.Ast.L_string "p0");
             ("Country1", Graql.Ast.L_string "US");
             ("Country2", Graql.Ast.L_string "IT");
           ]
         meta ast)

let ir_ship =
  let ast =
    Graql.Parser.parse_script
      (Graql.Berlin.Schema_ddl.full_ddl ^ Graql.Berlin.Queries.q1
     ^ Graql.Berlin.Queries.q2)
  in
  fun () -> ignore (Graql.Ir.decode_script (Graql.Ir.encode_script ast))

(* Planner ablation: tail-selective path; forward scan vs planner choice. *)
let planner_query =
  match
    Graql.Parser.parse_statement
      {|select * from graph OfferVtx ( ) --product--> ProductVtx (id = %Product1%)
        into subgraph PlannerG|}
  with
  | Graql.Ast.Select_graph { sg_path; _ } -> sg_path
  | _ -> assert false

let run_planner auto () =
  ignore
    (Graql.Path_exec.run_multipath ~db
       ~params:(fun p -> Graql.Db.find_param db p)
       ~mode:(Graql.Path_exec.Keep_minimal []) ~auto_reverse:auto planner_query)

(* ------------------------------------------------------------------ *)
(* Bechamel driving                                                    *)

let tests =
  Test.make_grouped ~name:"graql"
    [
      Test.make ~name:"fig01_data_model" (Staged.stage fig01_data_model);
      Test.make ~name:"fig02_vertex_decls" (Staged.stage fig02_vertex_decls);
      Test.make ~name:"fig03_edge_decls" (Staged.stage fig03_edge_decls);
      Test.make ~name:"fig04_many_to_one" (Staged.stage fig04_many_to_one);
      Test.make ~name:"fig05_country_graph" (Staged.stage fig05_country_graph);
      Test.make ~name:"fig06_berlin_q2" (Staged.stage fig06_berlin_q2);
      Test.make ~name:"fig07_berlin_q1" (Staged.stage fig07_berlin_q1);
      Test.make ~name:"fig08_multipath" (Staged.stage fig08_multipath);
      Test.make ~name:"fig09_type_matching" (Staged.stage fig09_type_matching);
      Test.make ~name:"fig10_path_regex" (Staged.stage fig10_path_regex);
      Test.make ~name:"fig11_into_subgraph" (Staged.stage fig11_into_subgraph);
      Test.make ~name:"fig12_seeded_query" (Staged.stage fig12_seeded_query);
      Test.make ~name:"fig13_into_table" (Staged.stage fig13_into_table);
      Test.make_grouped ~name:"tab1"
        (List.map
           (fun (name, src) -> Test.make ~name (Staged.stage (run_script src)))
           tab1);
      Test.make_grouped ~name:"bi"
        (List.map
           (fun (name, q) ->
             Test.make ~name (Staged.stage (run_script q)))
           Graql.Berlin.Queries.bi_all);
      Test.make ~name:"s3a_static_analysis" (Staged.stage s3a_static_analysis);
      Test.make ~name:"s3a_ir_encode_decode" (Staged.stage ir_ship);
      Test.make ~name:"s3b_planner_forward" (Staged.stage (run_planner false));
      Test.make ~name:"s3b_planner_chosen" (Staged.stage (run_planner true));
    ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:false ~quota:(Time.second 0.25) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
              rows := (name, ns) :: !rows
          | _ -> ())
        tbl)
    merged;
  let rows = List.sort compare !rows in
  let fmt_ns ns =
    if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  print_endline "== micro-benchmarks (one per paper artifact) ==";
  print_endline
    (Graql_util.Text_table.render
       ~aligns:[| Graql_util.Text_table.Left; Graql_util.Text_table.Right |]
       ~header:[ "benchmark"; "time/run" ]
       (List.map (fun (n, ns) -> [ n; fmt_ns ns ]) rows))

(* ------------------------------------------------------------------ *)
(* Sweep tables                                                        *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let time_best ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to reps do
    best := min !best (time_once f)
  done;
  !best

let ms t = Printf.sprintf "%.2f" (t *. 1000.0)

let sweep_scales () =
  print_endline "\n== query latency vs dataset scale (ms, best of 3) ==";
  let rows =
    List.map
      (fun scale ->
        let s = make_session ~scale () in
        let _ = Graql.Db.graph (Graql.Session.db s) in
        let q1 = time_best (fun () -> ignore (Graql.run s Graql.Berlin.Queries.q1)) in
        let q2 = time_best (fun () -> ignore (Graql.run s Graql.Berlin.Queries.q2)) in
        let fig9 =
          time_best (fun () -> ignore (Graql.run s Graql.Berlin.Queries.fig9_type_matching))
        in
        let regex =
          time_best (fun () -> ignore (Graql.run s Graql.Berlin.Queries.fig10_regex))
        in
        [
          string_of_int scale;
          string_of_int (100 * scale);
          ms q1;
          ms q2;
          ms fig9;
          ms regex;
        ])
      [ 1; 2; 4; 8 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "scale"; "products"; "q1"; "q2"; "fig9"; "fig10" ]
       rows)

let sweep_view_build () =
  print_endline "\n== graph view construction vs scale (ms, best of 3) ==";
  let rows =
    List.map
      (fun scale ->
        let s = make_session ~scale () in
        let d = Graql.Session.db s in
        let t =
          time_best (fun () ->
              (* Clear fingerprints so nothing is selectively reused: this
                 measures a from-scratch rebuild. *)
              Graql.Db.set_view_fingerprints d [];
              Graql.Db.invalidate_graph d;
              ignore (Graql.Db.graph d))
        in
        let g = Graql.Db.graph d in
        [
          string_of_int scale;
          string_of_int (Graql.Graph_store.total_vertices g);
          string_of_int (Graql.Graph_store.total_edges g);
          ms t;
        ])
      [ 1; 2; 4; 8 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "scale"; "vertices"; "edges"; "build(ms)" ]
       rows)

let sweep_planner () =
  print_endline
    "\n== planner ablation: tail-selective path (Sec. III-B), ms best of 3 ==";
  let rows =
    List.map
      (fun scale ->
        let s = make_session ~scale () in
        let d = Graql.Session.db s in
        let _ = Graql.Db.graph d in
        let params p = Graql.Db.find_param d p in
        let mp =
          match
            Graql.Parser.parse_statement
              {|select * from graph OfferVtx ( ) --product-->
                 ProductVtx (id = %Product1%) into subgraph PG|}
          with
          | Graql.Ast.Select_graph { sg_path; _ } -> sg_path
          | _ -> assert false
        in
        let run auto () =
          ignore
            (Graql.Path_exec.run_multipath ~db:d ~params
               ~mode:(Graql.Path_exec.Keep_minimal []) ~auto_reverse:auto mp)
        in
        let fwd = time_best (run false) in
        let auto = time_best (run true) in
        [
          string_of_int scale;
          ms fwd;
          ms auto;
          Printf.sprintf "%.1fx" (fwd /. auto);
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "scale"; "forward(ms)"; "planner(ms)"; "speedup" ]
       rows)

let sweep_script_parallel () =
  print_endline
    "\n== multi-statement scheduling (Sec. III-B1): 8 independent selects ==";
  let stmts =
    String.concat "\n"
      (List.init 8 (fun i ->
           Printf.sprintf
             "select vendor, count(*) as n, avg(price) as p from table Offers \
              where deliveryDays >= %d group by vendor order by n desc into \
              table W%d"
             (i mod 6) i))
  in
  let scale = 8 in
  let rows =
    List.map
      (fun domains ->
        let pool = Graql.Domain_pool.create ~domains () in
        let s = Graql.create_session ~pool () in
        Graql.Berlin.Gen.ingest_all ~scale s;
        let serial =
          time_best ~reps:2 (fun () ->
              ignore (Graql.run ~parallel:false s stmts))
        in
        let parallel =
          time_best ~reps:2 (fun () -> ignore (Graql.run ~parallel:true s stmts))
        in
        Graql.Domain_pool.shutdown pool;
        [
          string_of_int domains;
          ms serial;
          ms parallel;
          Printf.sprintf "%.2fx" (serial /. parallel);
        ])
      [ 1; 2; 4 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "domains"; "serial(ms)"; "scheduled(ms)"; "speedup" ]
       rows)

let sweep_shards () =
  print_endline "\n== shard-parallel backend scan (GEMS substrate) ==";
  let scale = 64 in
  let s = make_session ~scale () in
  let offers = Graql.Db.find_table_exn (Graql.Session.db s) "Offers" in
  let pred =
    Graql.Row_expr.(
      And
        ( Cmp (Gt, Col 4, Const (Graql.Value.Float 5000.0)),
          Cmp (Lt, Col 7, Const (Graql.Value.Int 7)) ))
  in
  let pool = Graql.Domain_pool.create () in
  let base = ref 0.0 in
  let rows =
    List.map
      (fun shards ->
        let backend = Graql.Shard.create ~shards pool in
        let t =
          time_best ~reps:5 (fun () ->
              ignore (Graql.Shard.parallel_select backend offers pred))
        in
        if shards = 1 then base := t;
        [
          string_of_int shards;
          Printf.sprintf "%.3f" (t *. 1000.0);
          Printf.sprintf "%.2fx" (!base /. t);
        ])
      [ 1; 2; 4; 8 ]
  in
  Graql.Domain_pool.shutdown pool;
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "shards"; "scan(ms)"; "speedup" ]
       rows)

(* Cost of the recovery layer: the same sharded scan fault-free, with the
   retry machinery armed but idle, and with every shard failing its first
   attempt (fail-once plan -> one backoff+retry per shard). Results must
   be byte-identical across all three. *)
let sweep_fault_recovery () =
  print_endline "\n== fault recovery overhead (fail-once on every shard) ==";
  let scale = 64 in
  let s = make_session ~scale () in
  let offers = Graql.Db.find_table_exn (Graql.Session.db s) "Offers" in
  let pred =
    Graql.Row_expr.(
      And
        ( Cmp (Gt, Col 4, Const (Graql.Value.Float 5000.0)),
          Cmp (Lt, Col 7, Const (Graql.Value.Int 7)) ))
  in
  let pool = Graql.Domain_pool.create () in
  let rows =
    List.map
      (fun shards ->
        let clean = Graql.Shard.create ~shards pool in
        let faulty =
          Graql.Shard.create ~shards ~replicas:2
            ~faults:(Graql.Fault.fail_once ()) ~backoff_ms:0.0 pool
        in
        let expect = Graql.Shard.parallel_select clean offers pred in
        let got = Graql.Shard.parallel_select faulty offers pred in
        assert (expect = got);
        let t_clean =
          time_best ~reps:5 (fun () ->
              ignore (Graql.Shard.parallel_select clean offers pred))
        in
        let t_faulty =
          time_best ~reps:5 (fun () ->
              ignore (Graql.Shard.parallel_select faulty offers pred))
        in
        [
          string_of_int shards;
          Printf.sprintf "%.3f" (t_clean *. 1000.0);
          Printf.sprintf "%.3f" (t_faulty *. 1000.0);
          string_of_int (Graql.Shard.retries faulty);
        ])
      [ 1; 2; 4; 8 ]
  in
  Graql.Domain_pool.shutdown pool;
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "shards"; "clean(ms)"; "recovered(ms)"; "retries" ]
       rows)

(* Durability costs (DESIGN.md §9): run the Berlin ingest under a
   write-ahead log, then time cold recovery (full-log replay into a fresh
   database), the checkpoint fold, and restart-from-snapshot. Also the
   backing data for BENCH_recovery.json (--json mode). *)
let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let sweep_recovery ?(json = false) () =
  print_endline "\n== durability: WAL replay + checkpoint ==";
  let entries = ref [] in
  let recover_cold dir =
    let d = Graql.Db.create () in
    Graql.Ddl_exec.install d;
    ignore (Graql.Db_io.recover d ~dir)
  in
  let rows =
    List.map
      (fun scale ->
        let dir = Filename.temp_file "graql_bench_wal" "" in
        Sys.remove dir;
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let s =
          Graql.create_session ~durability:(Graql.Wal_dir dir)
            ~checkpoint_bytes:max_int ()
        in
        let ddl =
          Graql.Berlin.Schema_ddl.full_ddl ^ "\n"
          ^ Graql.Berlin.Schema_ddl.ingest_script Graql.Berlin.Gen.table_files
        in
        ignore (Graql.run ~loader:(Graql.Berlin.Gen.loader ~scale ()) s ddl);
        let wal_path = Filename.concat dir "wal-000000.log" in
        let wal_bytes = (Unix.stat wal_path).Unix.st_size in
        let n_records =
          List.length (Graql.Wal.scan_file wal_path).Graql.Wal.s_records
        in
        let t_replay = time_best ~reps:5 (fun () -> recover_cold dir) in
        (* Replication catch-up (DESIGN.md §13): a brand-new follower
           joins the live primary and must sync the whole epoch-0 log —
           handshake, resync transfer, fsync, replay — until its lag
           reaches zero. Best of 3 fresh followers against one primary. *)
        let t_repl =
          let wal = Option.get (Graql.Session.wal s) in
          let p = Graql.Repl.start_primary ~port:0 wal in
          Fun.protect ~finally:(fun () -> Graql.Repl.stop_primary p)
          @@ fun () ->
          let once i =
            let fdir = Printf.sprintf "%s.follower-%d" dir i in
            let t0 = Unix.gettimeofday () in
            let f =
              Graql.Follower.start
                ~port:(Graql.Repl.primary_port p)
                ~dir:fdir ()
            in
            Fun.protect
              ~finally:(fun () ->
                Graql.Follower.stop f;
                rm_rf fdir)
              (fun () ->
                let deadline = t0 +. 120.0 in
                while
                  (Graql.Follower.offset f <> Graql.Wal.size wal
                  || Graql.Follower.lag_records f <> 0)
                  && Unix.gettimeofday () < deadline
                do
                  Unix.sleepf 0.001
                done;
                Unix.gettimeofday () -. t0)
          in
          List.fold_left Float.min (once 0) [ once 1; once 2 ]
        in
        let t_checkpoint =
          time_once (fun () -> ignore (Graql.Session.checkpoint s))
        in
        let t_snapshot = time_best ~reps:3 (fun () -> recover_cold dir) in
        Graql.Session.close s;
        let mb = float_of_int wal_bytes /. 1048576.0 in
        entries :=
          (scale, n_records, wal_bytes, t_replay, t_checkpoint, t_snapshot,
           t_repl)
          :: !entries;
        [
          string_of_int scale;
          string_of_int n_records;
          Printf.sprintf "%.2f" mb;
          ms t_replay;
          Printf.sprintf "%.0f" (float_of_int n_records /. t_replay);
          Printf.sprintf "%.1f" (mb /. t_replay);
          ms t_checkpoint;
          ms t_snapshot;
          ms t_repl;
          Printf.sprintf "%.0f" (float_of_int n_records /. t_repl);
        ])
      [ 1; 2; 4 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:
         [
           "scale"; "records"; "wal(MB)"; "replay(ms)"; "rec/s"; "MB/s";
           "checkpoint(ms)"; "snapshot-restart(ms)"; "repl-sync(ms)";
           "repl rec/s";
         ]
       rows);
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i (scale, n, bytes, t_replay, t_ckpt, t_snap, t_repl) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "  {\"scale\": %d, \"wal_records\": %d, \"wal_bytes\": %d, \
              \"replay_ms\": %.3f, \"replay_records_per_s\": %.1f, \
              \"replay_mb_per_s\": %.3f, \"checkpoint_ms\": %.3f, \
              \"snapshot_restart_ms\": %.3f, \"repl_sync_ms\": %.3f, \
              \"repl_records_per_s\": %.1f, \"repl_mb_per_s\": %.3f}"
             scale n bytes (t_replay *. 1000.0)
             (float_of_int n /. t_replay)
             (float_of_int bytes /. 1048576.0 /. t_replay)
             (t_ckpt *. 1000.0) (t_snap *. 1000.0) (t_repl *. 1000.0)
             (float_of_int n /. t_repl)
             (float_of_int bytes /. 1048576.0 /. t_repl)))
      (List.rev !entries);
    Buffer.add_string buf "\n]\n";
    let oc = open_out "BENCH_recovery.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_recovery.json (%d entries)\n"
      (List.length !entries)
  end;
  List.rev !entries

(* Parallel partitioned join / parallel aggregation sweep. Also the
   backing data for BENCH_join.json (--json mode): mean/stddev over
   [reps] timed runs after one warmup. *)
let time_stats ?(reps = 5) ?(trim = 0) f =
  ignore (time_once f);
  let xs = Array.init reps (fun _ -> time_once f) in
  (* Timing noise on a shared machine is strictly additive, so dropping
     the slowest [trim] samples (a truncated mean) estimates the true
     cost far more stably than the plain mean — the regression gate
     compares these numbers across runs. *)
  Array.sort compare xs;
  let keep = max 1 (reps - trim) in
  let kept = Array.sub xs 0 keep in
  let mean = Array.fold_left ( +. ) 0.0 kept /. float_of_int keep in
  let var =
    Array.fold_left
      (fun a x -> a +. (((x -. mean) *. (x -. mean)) /. float_of_int keep))
      0.0 kept
  in
  (mean, sqrt var)

let join_bench_tables ~scale =
  let nl = 20_000 * scale and nr = 5_000 * scale in
  let open Graql in
  let lschema =
    Schema.make
      [
        { Schema.name = "k"; dtype = Dtype.Int };
        { Schema.name = "a"; dtype = Dtype.Int };
        { Schema.name = "grp"; dtype = Dtype.Varchar 8 };
      ]
  in
  let rschema =
    Schema.make
      [
        { Schema.name = "k"; dtype = Dtype.Int };
        { Schema.name = "b"; dtype = Dtype.Int };
      ]
  in
  let left = Table.create ~name:"bench_left" lschema in
  let state = ref 42 in
  let rand bound =
    (* Deterministic LCG so every run and every pool size joins the same
       data. *)
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for i = 0 to nl - 1 do
    Table.append_row left
      [
        Value.Int (rand nr);
        Value.Int i;
        Value.Str (Printf.sprintf "g%02d" (i mod 64));
      ]
  done;
  let right = Table.create ~name:"bench_right" rschema in
  for i = 0 to nr - 1 do
    Table.append_row right [ Value.Int i; Value.Int (i * 7) ]
  done;
  (left, right)

let sweep_join_parallel ?(json = false) () =
  print_endline
    "\n== shard-parallel partitioned join / aggregation (ms, mean of 5) ==";
  let scale = 8 in
  let left, right = join_bench_tables ~scale in
  let aggs =
    Graql.Aggregate.[ (Sum 1, "s"); (Count_star, "n"); (Avg 1, "avg") ]
  in
  let bench_join pool () =
    ignore (Graql.Join.hash_join ?pool ~name:"bj" ~left ~right ~on:[ (0, 0) ] ())
  in
  let bench_agg pool () =
    ignore (Graql.Aggregate.group_by ?pool ~name:"bg" left ~keys:[ 2 ] ~aggs)
  in
  let entries = ref [] in
  let record name domains (mean, sd) =
    entries := (name, domains, mean, sd) :: !entries
  in
  let jseq = time_stats ~reps:9 ~trim:4 (bench_join None) in
  let aseq = time_stats ~reps:9 ~trim:4 (bench_agg None) in
  record "hash_join" 0 jseq;
  record "group_by" 0 aseq;
  let rows =
    List.map
      (fun domains ->
        let pool = Graql.Domain_pool.create ~domains () in
        let j = time_stats ~reps:9 ~trim:4 (bench_join (Some pool)) in
        let a = time_stats ~reps:9 ~trim:4 (bench_agg (Some pool)) in
        Graql.Domain_pool.shutdown pool;
        record "hash_join" domains j;
        record "group_by" domains a;
        [
          string_of_int domains;
          ms (fst j);
          Printf.sprintf "%.2fx" (fst jseq /. fst j);
          ms (fst a);
          Printf.sprintf "%.2fx" (fst aseq /. fst a);
        ])
      [ 1; 2; 4 ]
  in
  let rows =
    [ "seq"; ms (fst jseq); "1.00x"; ms (fst aseq); "1.00x" ] :: rows
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "domains"; "join(ms)"; "speedup"; "group_by(ms)"; "speedup" ]
       rows);
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i (name, domains, mean, sd) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "  {\"name\": %S, \"domains\": %d, \"scale\": %d, \
              \"mean_ms\": %.3f, \"stddev_ms\": %.3f}"
             name domains scale (mean *. 1000.0) (sd *. 1000.0)))
      (List.rev !entries);
    Buffer.add_string buf "\n]\n";
    let oc = open_out "BENCH_join.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_join.json (%d entries)\n"
      (List.length !entries)
  end;
  List.rev !entries

(* Vectorized-execution ablation (DESIGN.md §12): the same scans,
   aggregations and joins through the batched kernels and through the
   row-at-a-time reference paths they replicate. Backing data for
   BENCH_scan.json (--json mode). *)
let scan_bench_table =
  lazy
    begin
      let open Graql in
      let schema =
        Schema.make
          [
            { Schema.name = "v"; dtype = Dtype.Int };
            { Schema.name = "g"; dtype = Dtype.Int };
            { Schema.name = "f"; dtype = Dtype.Float };
          ]
      in
      let t = Table.create ~name:"bench_scan" schema in
      let state = ref 7 in
      let rand bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      for i = 0 to 400_000 - 1 do
        Table.append_row t
          [
            Value.Int (rand 1000);
            Value.Int (i mod 64);
            Value.Float (float_of_int (rand 10_000) /. 7.0);
          ]
      done;
      t
    end

let with_row_path f =
  (* Force every reference path at once; the toggles are independent and
     each kernel consults its own. *)
  let rv = !Graql.Relop.vectorized
  and jv = !Graql.Join.use_int_fast
  and av = !Graql.Aggregate.vectorized in
  Graql.Relop.vectorized := false;
  Graql.Join.use_int_fast := false;
  Graql.Aggregate.vectorized := false;
  Fun.protect
    ~finally:(fun () ->
      Graql.Relop.vectorized := rv;
      Graql.Join.use_int_fast := jv;
      Graql.Aggregate.vectorized := av)
    f

let sweep_scan ?(json = false) () =
  print_endline
    "\n== vectorized kernels vs row-at-a-time reference (sequential, ms) ==";
  let t = Lazy.force scan_bench_table in
  let entries = ref [] in
  let bench name sel f =
    let vec, _ = time_stats ~reps:9 ~trim:4 f in
    let row, _ = time_stats ~reps:9 ~trim:4 (fun () -> with_row_path f) in
    entries := (name, sel, vec *. 1000.0, row *. 1000.0) :: !entries
  in
  List.iter
    (fun sel ->
      let pred =
        Graql.Row_expr.(Cmp (Lt, Col 0, Const (Graql.Value.Int (10 * sel))))
      in
      bench "select" sel (fun () -> ignore (Graql.Relop.select t pred)))
    [ 1; 10; 50; 90 ];
  let aggs =
    Graql.Aggregate.[ (Sum 0, "s"); (Count_star, "n"); (Avg 2, "avg") ]
  in
  bench "group_by" 100 (fun () ->
      ignore (Graql.Aggregate.group_by t ~keys:[ 1 ] ~aggs));
  bench "scalar_sum" 100 (fun () ->
      ignore (Graql.Aggregate.scalar t (Graql.Aggregate.Sum 0)));
  let left, right = join_bench_tables ~scale:8 in
  bench "hash_join" 100 (fun () ->
      ignore
        (Graql.Join.hash_join ~name:"bs" ~left ~right ~on:[ (0, 0) ] ()));
  let entries = List.rev !entries in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "kernel"; "sel(%)"; "row(ms)"; "vectorized(ms)"; "speedup" ]
       (List.map
          (fun (name, sel, vec, row) ->
            [
              name;
              string_of_int sel;
              Printf.sprintf "%.3f" row;
              Printf.sprintf "%.3f" vec;
              Printf.sprintf "%.1fx" (row /. vec);
            ])
          entries));
  (* Statistics-driven join order: the same logical query in both textual
     orders runs in the same time — the planner normalizes to the
     cardinality-chosen order either way. *)
  let ab =
    time_best (fun () ->
        ignore
          (Graql.run session
             "select o.price from table Offers as o, Products as p where \
              o.product = p.id and p.propertyNumeric_1 > 1900"))
  in
  let ba =
    time_best (fun () ->
        ignore
          (Graql.run session
             "select o.price from table Products as p, Offers as o where \
              o.product = p.id and p.propertyNumeric_1 > 1900"))
  in
  Printf.printf
    "planner order invariance: Offers,Products %s ms / Products,Offers %s ms\n"
    (ms ab) (ms ba);
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i (name, sel, vec, row) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "  {\"name\": %S, \"selectivity\": %d, \"vectorized_ms\": %.3f, \
              \"row_ms\": %.3f, \"speedup\": %.2f}"
             name sel vec row (row /. vec)))
      entries;
    Buffer.add_string buf "\n]\n";
    let oc = open_out "BENCH_scan.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_scan.json (%d entries)\n" (List.length entries)
  end;
  entries

(* Wire-server capacity (DESIGN.md §14): concurrent clients hammer one
   read-only statement over the TCP protocol, sweeping the client count
   through and past the admission capacity. Reported per client count:
   delivered throughput, p99 statement latency, and the shed rate; a
   final row overloads a deliberately small server at 2x its admission
   capacity to measure how much traffic the controller sheds to protect
   the rest. Backing data for BENCH_serve.json (--json mode). *)
let serve_bench_server () =
  let server = Graql.Server.create () in
  let session = Graql.Server.session server in
  Graql.Berlin.Gen.ingest_all ~scale:bench_scale session;
  let _ = Graql.Db.graph (Graql.Session.db session) in
  Graql.Server.add_user server ~name:"bench" ~role:Graql.Server.Analyst;
  server

let serve_bench_clients ~port ~clients ~per_client ir =
  let lats = Array.make clients [||] in
  let sheds = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init clients (fun ci ->
        Domain.spawn (fun () ->
            let c = Graql.Client.connect ~port ~user:"bench" () in
            Fun.protect ~finally:(fun () -> Graql.Client.close c) @@ fun () ->
            let mine = Array.make per_client nan in
            let completed = ref 0 in
            for _ = 1 to per_client do
              let s = Unix.gettimeofday () in
              match Graql.Client.run_ir c ir with
              | Graql.Client.Ok _ ->
                  mine.(!completed) <- Unix.gettimeofday () -. s;
                  incr completed
              | Graql.Client.Shed _ ->
                  Atomic.incr sheds;
                  Unix.sleepf 0.001
              | Graql.Client.Failed { msg; _ } -> failwith msg
              | Graql.Client.Closing _ -> ()
            done;
            lats.(ci) <- Array.sub mine 0 !completed))
  in
  List.iter Domain.join doms;
  let wall = Unix.gettimeofday () -. t0 in
  let all = Array.concat (Array.to_list lats) in
  Array.sort compare all;
  let n = Array.length all in
  let p99 = if n = 0 then nan else all.(min (n - 1) (n * 99 / 100)) in
  let sheds = Atomic.get sheds in
  let shed_rate =
    if n + sheds = 0 then 0.0
    else float_of_int sheds /. float_of_int (n + sheds)
  in
  (float_of_int n /. wall, p99, shed_rate)

let sweep_serve ?(json = false) () =
  print_endline
    "\n== wire server: throughput / p99 / shed rate vs concurrent clients ==";
  let ir =
    Graql.Ir.encode_script
      (Graql.Parser.parse_script
         "select vendor, count(*) as n from table Offers group by vendor")
  in
  let per_client = 150 in
  let entries = ref [] in
  let bench ~mode ~config clients =
    let server = serve_bench_server () in
    let sv = Graql.Serve.start ~config server in
    let result =
      Fun.protect
        ~finally:(fun () ->
          Graql.Serve.stop sv;
          Graql.Session.close (Graql.Server.session server))
        (fun () ->
          (* Warm the path (connection setup, first typecheck) off the
             clock. *)
          ignore
            (serve_bench_clients ~port:(Graql.Serve.port sv) ~clients:1
               ~per_client:10 ir);
          serve_bench_clients ~port:(Graql.Serve.port sv) ~clients ~per_client
            ir)
    in
    let tput, p99, shed_rate = result in
    entries := (mode, clients, tput, p99, shed_rate) :: !entries;
    [
      mode;
      string_of_int clients;
      Printf.sprintf "%.0f" tput;
      Printf.sprintf "%.2f" (p99 *. 1000.0);
      Printf.sprintf "%.0f%%" (shed_rate *. 100.0);
    ]
  in
  let rows =
    List.map
      (fun clients -> bench ~mode:"normal" ~config:Graql.Serve.default_config clients)
      [ 1; 2; 4; 8 ]
  in
  (* 2x saturation: capacity 2 in-flight + 2 queued, 8 clients. *)
  let overload_cfg =
    {
      Graql.Serve.default_config with
      Graql.Serve.max_inflight = 2;
      max_queue = 2;
      queue_wait_ms = 20;
      retry_after_ms = 1;
    }
  in
  let rows = rows @ [ bench ~mode:"overload" ~config:overload_cfg 8 ] in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "mode"; "clients"; "stmt/s"; "p99(ms)"; "shed" ]
       rows);
  let entries = List.rev !entries in
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i (mode, clients, tput, p99, shed_rate) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "  {\"name\": \"serve\", \"mode\": %S, \"clients\": %d, \
              \"throughput_stmt_per_s\": %.1f, \"p99_ms\": %.3f, \
              \"shed_rate\": %.3f}"
             mode clients tput (p99 *. 1000.0) shed_rate))
      entries;
    Buffer.add_string buf "\n]\n";
    let oc = open_out "BENCH_serve.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_serve.json (%d entries)\n" (List.length entries)
  end;
  entries

let sweep_baseline_vs_engine () =
  print_endline
    "\n== CSR-indexed executor vs brute-force baseline (Q2 core path) ==";
  let rows =
    List.map
      (fun scale ->
        let s = make_session ~scale () in
        let d = Graql.Session.db s in
        let _ = Graql.Db.graph d in
        let params p = Graql.Db.find_param d p in
        let path =
          match
            Graql.Parser.parse_statement
              {|select * from graph ProductVtx (id = %Product1%)
                 --feature--> FeatureVtx ( )
                 <--feature-- ProductVtx ( ) into table B|}
          with
          | Graql.Ast.Select_graph { sg_path = Graql.Ast.M_path p; _ } -> p
          | _ -> assert false
        in
        let engine =
          time_best (fun () ->
              ignore
                (Graql.Path_exec.run_multipath ~db:d ~params
                   ~mode:Graql.Path_exec.Keep_all (Graql.Ast.M_path path)))
        in
        let baseline =
          time_best ~reps:1 (fun () ->
              ignore (Graql.Reference_exec.run_path ~db:d ~params path))
        in
        [
          string_of_int scale;
          ms baseline;
          ms engine;
          Printf.sprintf "%.0fx" (baseline /. engine);
        ])
      [ 1; 2; 4 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "scale"; "baseline(ms)"; "engine(ms)"; "speedup" ]
       rows)

let sweep_seed_strategy () =
  print_endline
    "\n== seed strategy ablation: key-index probe vs filtered scan ==";
  (* The same logical query written so the key equality is (a) detectable
     and (b) hidden behind an expression the detector won't touch. *)
  let rows =
    List.map
      (fun scale ->
        let s = make_session ~scale () in
        let d = Graql.Session.db s in
        let _ = Graql.Db.graph d in
        let keyed =
          time_best (fun () ->
              ignore
                (Graql.run s
                   "select FeatureVtx.id from graph ProductVtx (id = \
                    %Product1%) --feature--> FeatureVtx ( )"))
        in
        let scanned =
          time_best (fun () ->
              ignore
                (Graql.run s
                   "select FeatureVtx.id from graph ProductVtx (id + '' = \
                    %Product1%) --feature--> FeatureVtx ( )"))
        in
        [
          string_of_int scale;
          ms scanned;
          ms keyed;
          Printf.sprintf "%.1fx" (scanned /. keyed);
        ])
      [ 1; 4; 16 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "scale"; "scan-seed(ms)"; "key-seed(ms)"; "speedup" ]
       rows)

let sweep_selective_maintenance () =
  print_endline
    "\n== selective view maintenance: single-table append, rebuild cost ==";
  let rows =
    List.map
      (fun scale ->
        let s = make_session ~scale () in
        let d = Graql.Session.db s in
        let _ = Graql.Db.graph d in
        let counter = ref 0 in
        let append () =
          incr counter;
          let one_review =
            Printf.sprintf
              "id,type,reviewFor,reviewer,reviewDate,title,text,ratings_1,ratings_2,ratings_3,ratings_4,publisher,date\n\
               rx%d,Review,p0,u0,2008-01-01,t,quite good,5,5,5,5,pub0,2008-01-01\n"
              !counter
          in
          ignore
            (Graql.Script_exec.exec_stmt
               ~loader:(fun _ -> one_review)
               d
               (Graql.Parser.parse_statement "ingest table Reviews extra.csv"))
        in
        (* Selective: only Reviews-derived views rebuild. *)
        append ();
        let selective = time_once (fun () -> ignore (Graql.Db.graph d)) in
        (* Full: wipe the fingerprints so nothing can be reused. *)
        append ();
        Graql.Db.set_view_fingerprints d [];
        let full = time_once (fun () -> ignore (Graql.Db.graph d)) in
        [
          string_of_int scale;
          ms full;
          ms selective;
          Printf.sprintf "%.1fx" (full /. selective);
        ])
      [ 1; 4; 16 ]
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "scale"; "full rebuild(ms)"; "selective(ms)"; "speedup" ]
       rows)

let sweep_fast_pred () =
  print_endline
    "\n== predicate fast path: unboxed column scan vs generic evaluator ==";
  let scale = 64 in
  let s = make_session ~scale () in
  let offers = Graql.Db.find_table_exn (Graql.Session.db s) "Offers" in
  let pred =
    Graql.Row_expr.(
      And
        ( Cmp (Gt, Col 4, Const (Graql.Value.Float 5000.0)),
          Cmp (Lt, Col 7, Const (Graql.Value.Int 7)) ))
  in
  let fast =
    match Graql_relational.Fast_pred.compile offers pred with
    | Some f -> f
    | None -> failwith "expected fast compile"
  in
  let n = Graql.Table.nrows offers in
  let run_fast () =
    let c = ref 0 in
    for i = 0 to n - 1 do
      if fast i then incr c
    done;
    !c
  in
  let run_generic () =
    let c = ref 0 in
    for i = 0 to n - 1 do
      let get col = Graql.Table.get offers ~row:i ~col in
      if Graql.Row_expr.eval_bool get pred then incr c
    done;
    !c
  in
  assert (run_fast () = run_generic ());
  let tf = time_best ~reps:5 (fun () -> ignore (run_fast ())) in
  let tg = time_best ~reps:5 (fun () -> ignore (run_generic ())) in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "rows"; "generic(ms)"; "fast(ms)"; "speedup" ]
       [
         [
           string_of_int n;
           Printf.sprintf "%.3f" (tg *. 1000.0);
           Printf.sprintf "%.3f" (tf *. 1000.0);
           Printf.sprintf "%.1fx" (tg /. tf);
         ];
       ])

let sweep_regex_depth () =
  print_endline "\n== path regex {n}: cost vs repetition count (fig 10) ==";
  let s = make_session ~scale:4 () in
  let d = Graql.Session.db s in
  let _ = Graql.Db.graph d in
  let rows =
    List.map
      (fun n ->
        let q =
          Printf.sprintf
            "select * from graph ProductVtx (id = %%Product1%%) ( --[ ]--> [ \
             ] ){%d} into subgraph RD%d"
            n n
        in
        let t = time_best (fun () -> ignore (Graql.run s q)) in
        [ string_of_int n; ms t ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  print_endline
    (Graql_util.Text_table.render ~header:[ "{n}"; "time(ms)" ] rows)

(* SNB deep traversals (DESIGN.md §15): the Kleene-star workload through
   the memoized-closure regex path and through the product-automaton
   engine, every answer checked against the CSV oracles before timing.
   Backing data for BENCH_snb.json (--json mode). *)
let sweep_snb ?(json = false) () =
  print_endline
    "\n== SNB deep traversals: memoized closure vs product automaton ==";
  let scale = 6 in
  let s = Graql.create_session () in
  Graql.Snb.Gen.ingest_all ~scale s;
  let d = Graql.Session.db s in
  let _ = Graql.Db.graph d in
  let person = Graql.Snb.Reference.hub_person ~scale () in
  let comment, _ = Graql.Snb.Reference.deepest_comment ~scale () in
  (* Endpoint ids of the final step, the unit the oracles speak. *)
  let endpoints path =
    let res =
      Graql.Path_exec.run_multipath ~db:d
        ~params:(fun _ -> None)
        ~mode:Graql.Path_exec.Keep_all ~edges_needed:false
        (Graql.Ast.M_path path)
    in
    match res.Graql.Path_exec.comps with
    | [ c ] ->
        let col = Array.length c.Graql.Path_exec.slots - 1 in
        let u = res.Graql.Path_exec.universe in
        List.sort_uniq compare
          (Array.to_list
             (Array.map
                (fun row ->
                  let cell = row.(col) in
                  Graql.Vset.key_string
                    (Graql.Pack.vset_of u cell)
                    (Graql.Pack.id cell))
                c.Graql.Path_exec.rows))
    | _ -> []
  in
  let with_engine automaton f =
    let saved = !Graql.Path_exec.use_automaton in
    Graql.Path_exec.use_automaton := automaton;
    Fun.protect
      ~finally:(fun () -> Graql.Path_exec.use_automaton := saved)
      f
  in
  let queries =
    [
      ( "knows_plus",
        Graql.Snb.Queries.path_knows_plus ~person,
        Graql.Snb.Reference.knows_plus ~scale ~person () );
      ( "knows_star",
        Graql.Snb.Queries.path_knows_star ~person,
        Graql.Snb.Reference.knows_star ~scale ~person () );
      ( "knows_knows_plus",
        Graql.Snb.Queries.path_knows_knows_plus ~person,
        Graql.Snb.Reference.knows_knows_plus ~scale ~person () );
      ( "reply_chain4",
        Graql.Snb.Queries.path_reply_chain ~comment ~n:4,
        Graql.Snb.Reference.reply_chain ~scale ~comment ~n:4 () );
      ( "thread_root",
        Graql.Snb.Queries.path_thread_root ~comment,
        Graql.Snb.Reference.thread_root_posts ~scale ~comment () );
    ]
  in
  let entries =
    List.map
      (fun (name, path, oracle) ->
        let closure_ans = with_engine false (fun () -> endpoints path) in
        let rpq_ans = with_engine true (fun () -> endpoints path) in
        if closure_ans <> oracle then
          failwith (Printf.sprintf "snb %s: closure answer != oracle" name);
        if rpq_ans <> oracle then
          failwith (Printf.sprintf "snb %s: automaton answer != oracle" name);
        let closure =
          with_engine false (fun () ->
              time_best (fun () -> ignore (endpoints path)))
        in
        let rpq =
          with_engine true (fun () ->
              time_best (fun () -> ignore (endpoints path)))
        in
        (name, closure, rpq))
      queries
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "traversal"; "closure(ms)"; "automaton(ms)"; "speedup" ]
       (List.map
          (fun (name, closure, rpq) ->
            [
              name;
              ms closure;
              ms rpq;
              Printf.sprintf "%.1fx" (closure /. rpq);
            ])
          entries));
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i (name, closure, rpq) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "  {\"name\": %S, \"scale\": %d, \"closure_ms\": %.3f, \
              \"rpq_ms\": %.3f, \"speedup\": %.2f}"
             name scale (closure *. 1000.0) (rpq *. 1000.0) (closure /. rpq)))
      entries;
    Buffer.add_string buf "\n]\n";
    let oc = open_out "BENCH_snb.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_snb.json (%d entries)\n" (List.length entries)
  end;
  entries

(* Observability sweep: run the Berlin figure queries with tracing armed
   and report the per-stage latency histograms the instrumentation
   collected, plus the tracing overhead (traced vs. untraced wall time
   for the same query mix). Backing data for BENCH_obs.json (--json
   mode). *)
let sweep_obs ?(json = false) () =
  print_endline
    "\n== observability: per-stage histograms, tracing overhead ==";
  let queries =
    [
      Graql.Berlin.Queries.q1;
      Graql.Berlin.Queries.q2;
      Graql.Berlin.Queries.fig9_type_matching;
      Graql.Berlin.Queries.fig10_regex;
    ]
  in
  let run_all () = List.iter (fun q -> ignore (Graql.run session q)) queries in
  (* The query mix is ~1 ms; at the default 5 reps the traced/untraced
     ratio is noise-dominated and flaps the regression gate. *)
  let untraced_mean = time_best ~reps:30 run_all in
  Graql.Obs.Trace.clear ();
  Graql.Obs.Trace.arm ();
  Graql.Obs.Metrics.reset ();
  let traced_mean = time_best ~reps:30 run_all in
  Graql.Obs.Trace.disarm ();
  let sn = Graql.Obs.Metrics.snapshot () in
  (* Percentile over a log-scale histogram: the smallest bucket upper
     bound at which the cumulative count reaches the target rank. *)
  let percentile h q =
    let total = h.Graql.Obs.Metrics.h_count in
    let rank = Float.of_int total *. q in
    let rec scan cum = function
      | [] -> nan
      | (ub, n) :: rest ->
          let cum = cum + n in
          if Float.of_int cum >= rank then ub else scan cum rest
    in
    scan 0 h.Graql.Obs.Metrics.h_buckets
  in
  let stages =
    List.filter
      (fun (_, h) -> h.Graql.Obs.Metrics.h_count > 0)
      sn.Graql.Obs.Metrics.sn_histograms
  in
  let stage_stats =
    List.map
      (fun (name, h) ->
        let mean =
          h.Graql.Obs.Metrics.h_sum
          /. Float.of_int h.Graql.Obs.Metrics.h_count
        in
        ( name,
          h.Graql.Obs.Metrics.h_count,
          mean,
          percentile h 0.5,
          percentile h 0.99 ))
      stages
  in
  print_endline
    (Graql_util.Text_table.render
       ~header:[ "stage"; "count"; "mean(us)"; "p50(us)<="; "p99(us)<=" ]
       (List.map
          (fun (name, count, mean, p50, p99) ->
            [
              name;
              string_of_int count;
              Printf.sprintf "%.1f" mean;
              Printf.sprintf "%.0f" p50;
              Printf.sprintf "%.0f" p99;
            ])
          stage_stats));
  Printf.printf
    "query mix untraced %s ms, traced %s ms (%.2fx overhead)\n"
    (ms untraced_mean) (ms traced_mean)
    (traced_mean /. untraced_mean);
  (* Traced-serve overhead: the same read statement over the wire
     protocol, with tracing off vs. every statement carrying a fresh
     trace id (client span, traceparent on the frame, server admission /
     executor spans, exemplars). DESIGN.md §16 budgets this end-to-end
     cost at 1.5x; --check enforces it from the baseline. *)
  let serve_untraced, serve_traced =
    let ir =
      Graql.Ir.encode_script
        (Graql.Parser.parse_script
           "select vendor, count(*) as n from table Offers group by vendor")
    in
    let server = serve_bench_server () in
    let sv = Graql.Serve.start server in
    Fun.protect
      ~finally:(fun () ->
        Graql.Serve.stop sv;
        Graql.Session.close (Graql.Server.session server))
      (fun () ->
        let cl =
          Graql.Client.connect ~port:(Graql.Serve.port sv) ~user:"bench" ()
        in
        Fun.protect ~finally:(fun () -> Graql.Client.close cl) @@ fun () ->
        let stmts = 40 in
        let pass () =
          for _ = 1 to stmts do
            match Graql.Client.run_ir cl ir with
            | Graql.Client.Ok _ -> ()
            | _ -> failwith "obs sweep: serve statement failed"
          done
        in
        pass () (* warm: connection, typecheck, first scan *);
        Graql.Obs.Trace.disarm ();
        let untraced = time_best ~reps:10 pass in
        Graql.Obs.Trace.arm ();
        let traced = time_best ~reps:10 pass in
        Graql.Obs.Trace.disarm ();
        (untraced, traced))
  in
  Printf.printf
    "serve mix (%s) untraced %s ms, traced %s ms (%.2fx overhead, budget \
     1.50x)\n"
    "40 stmts over the wire" (ms serve_untraced) (ms serve_traced)
    (serve_traced /. serve_untraced);
  if json then begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n  \"stages\": [\n";
    List.iteri
      (fun i (name, count, mean, p50, p99) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"stage\": %S, \"count\": %d, \"mean_us\": %.3f, \
              \"p50_us\": %.1f, \"p99_us\": %.1f}"
             name count mean p50 p99))
      stage_stats;
    Buffer.add_string buf
      (Printf.sprintf
         "\n  ],\n  \"overhead\": {\"untraced_ms\": %.3f, \"traced_ms\": \
          %.3f, \"ratio\": %.3f},\n  \"serve_overhead\": {\"untraced_ms\": \
          %.3f, \"traced_ms\": %.3f, \"ratio\": %.3f, \"budget\": 1.5}\n}\n"
         (untraced_mean *. 1000.0)
         (traced_mean *. 1000.0)
         (traced_mean /. untraced_mean)
         (serve_untraced *. 1000.0)
         (serve_traced *. 1000.0)
         (serve_traced /. serve_untraced));
    let oc = open_out "BENCH_obs.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_obs.json (%d stages)\n"
      (List.length stage_stats)
  end;
  (stage_stats, untraced_mean, traced_mean, serve_untraced, serve_traced)

(* ------------------------------------------------------------------ *)
(* Regression gate: bench --check [BASELINE.json ...]                  *)
(*                                                                     *)
(* Re-runs the sweeps behind the committed BENCH_*.json baselines and  *)
(* compares throughput (or its latency inverse) against them. Any      *)
(* metric more than GRAQL_BENCH_TOLERANCE (default 0.25 = 25%) worse   *)
(* than its baseline fails the gate: exit 9. Baselines are classified  *)
(* by JSON shape, so explicit file arguments can be given in any       *)
(* order; with no arguments all three defaults are checked (missing    *)
(* files warn and are skipped). Nothing is rewritten: --check never    *)
(* touches the baseline files.                                         *)

module Json = Graql_util.Json

let check_tolerance () =
  match Sys.getenv_opt "GRAQL_BENCH_TOLERANCE" with
  | None | Some "" -> 0.25
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 && Float.is_finite f -> f
      | _ ->
          Printf.eprintf
            "bench: warning: ignoring GRAQL_BENCH_TOLERANCE=%S (want a \
             positive number); using 0.25\n%!"
            s;
          0.25)

(* One comparison row. [higher_better] decides the direction of
   "worse": throughput regresses when it drops, latency when it rises. *)
type check_row = {
  ck_metric : string;
  ck_base : float;
  ck_cur : float;
  ck_higher_better : bool;
}

let row_regressed ~tolerance r =
  if r.ck_base <= 0.0 || not (Float.is_finite r.ck_base) then false
  else if r.ck_higher_better then r.ck_cur < r.ck_base *. (1.0 -. tolerance)
  else r.ck_cur > r.ck_base *. (1.0 +. tolerance)

let row_change r =
  if r.ck_base <= 0.0 then 0.0 else (r.ck_cur -. r.ck_base) /. r.ck_base

(* The current sweep results, computed at most once per gate run even
   when several baseline files map to the same sweep. *)
let current_join = lazy (sweep_join_parallel ())
let current_snb = lazy (sweep_snb ())
let current_recovery = lazy (sweep_recovery ())
let current_obs = lazy (sweep_obs ())
let current_scan = lazy (sweep_scan ())
let current_serve = lazy (sweep_serve ())

let num_field obj name =
  Option.bind (Json.member name obj) Json.to_float

let check_join baseline =
  let current = Lazy.force current_join in
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Json.member "name" entry) Json.to_string_opt,
          num_field entry "domains",
          num_field entry "mean_ms" )
      with
      | Some name, Some domains, Some base_ms -> (
          let domains = int_of_float domains in
          match
            List.find_opt (fun (n, d, _, _) -> n = name && d = domains) current
          with
          | Some (_, _, mean, _) ->
              Some
                {
                  ck_metric =
                    Printf.sprintf "join:%s/domains=%d mean_ms" name domains;
                  ck_base = base_ms;
                  ck_cur = mean *. 1000.0;
                  ck_higher_better = false;
                }
          | None -> None)
      | _ -> None)
    (Option.value (Json.to_list baseline) ~default:[])

(* The SNB sweep gates the automaton engine's latency per traversal; the
   closure timings are recorded for the speedup story, not gated (the
   closure path is the frozen reference implementation). *)
let check_snb baseline =
  let current = Lazy.force current_snb in
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Json.member "name" entry) Json.to_string_opt,
          num_field entry "rpq_ms" )
      with
      | Some name, Some base_ms -> (
          match List.find_opt (fun (n, _, _) -> n = name) current with
          | Some (_, _, rpq) ->
              Some
                {
                  ck_metric = Printf.sprintf "snb:%s rpq_ms" name;
                  ck_base = base_ms;
                  ck_cur = rpq *. 1000.0;
                  ck_higher_better = false;
                }
          | None -> None)
      | _ -> None)
    (Option.value (Json.to_list baseline) ~default:[])

let check_recovery baseline =
  let current = Lazy.force current_recovery in
  List.concat_map
    (fun entry ->
      match num_field entry "scale" with
      | None -> []
      | Some scale -> (
          let scale = int_of_float scale in
          match
            List.find_opt (fun (s, _, _, _, _, _, _) -> s = scale) current
          with
          | None -> []
          | Some (_, n, _, t_replay, _, _, t_repl) ->
              let replay =
                match num_field entry "replay_records_per_s" with
                | Some base_tput ->
                    [
                      {
                        ck_metric =
                          Printf.sprintf
                            "recovery:scale=%d replay_records_per_s" scale;
                        ck_base = base_tput;
                        ck_cur = float_of_int n /. t_replay;
                        ck_higher_better = true;
                      };
                    ]
                | None -> []
              in
              (* Baselines written before replication landed lack this
                 field; they gate only the replay metric. *)
              let repl =
                match num_field entry "repl_records_per_s" with
                | Some base_tput when t_repl > 0.0 ->
                    [
                      {
                        ck_metric =
                          Printf.sprintf
                            "recovery:scale=%d repl_records_per_s" scale;
                        ck_base = base_tput;
                        ck_cur = float_of_int n /. t_repl;
                        ck_higher_better = true;
                      };
                    ]
                | _ -> []
              in
              replay @ repl))
    (Option.value (Json.to_list baseline) ~default:[])

let check_obs baseline =
  let _, untraced, traced, serve_untraced, serve_traced =
    Lazy.force current_obs
  in
  let local =
    match
      Option.bind (Json.member "overhead" baseline) (fun o ->
          num_field o "ratio")
    with
    | Some base_ratio ->
        [
          {
            ck_metric = "obs:tracing overhead ratio";
            ck_base = base_ratio;
            ck_cur = traced /. untraced;
            ck_higher_better = false;
          };
        ]
    | None -> []
  in
  let serve =
    match Json.member "serve_overhead" baseline with
    | Some o ->
        let cur = serve_traced /. serve_untraced in
        let vs_base =
          match num_field o "ratio" with
          | Some base_ratio ->
              [
                {
                  ck_metric = "obs:traced-serve overhead ratio";
                  (* A sub-1.0 baseline means the traced pass happened
                     to beat the untraced one — wire-latency noise, not
                     a real negative cost. Clamp so drift is judged
                     against parity, not against a lucky run. *)
                  ck_base = Float.max base_ratio 1.0;
                  ck_cur = cur;
                  ck_higher_better = false;
                };
              ]
          | None -> []
        in
        (* The 1.5x budget is absolute, not drift-relative: scale the
           row's base so [row_regressed]'s (1 + tolerance) slack lands
           exactly on the budget — the gate fails iff cur > budget. *)
        let vs_budget =
          match num_field o "budget" with
          | Some budget when budget > 0.0 ->
              [
                {
                  ck_metric =
                    Printf.sprintf "obs:traced-serve budget %.2fx" budget;
                  ck_base = budget /. (1.0 +. check_tolerance ());
                  ck_cur = cur;
                  ck_higher_better = false;
                };
              ]
          | _ -> []
        in
        vs_base @ vs_budget
    | None -> []
  in
  local @ serve

let check_scan baseline =
  let current = Lazy.force current_scan in
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Json.member "name" entry) Json.to_string_opt,
          num_field entry "selectivity",
          num_field entry "vectorized_ms" )
      with
      | Some name, Some sel, Some base_ms -> (
          let sel = int_of_float sel in
          match
            List.find_opt (fun (n, s, _, _) -> n = name && s = sel) current
          with
          | Some (_, _, vec_ms, _) ->
              Some
                {
                  ck_metric =
                    Printf.sprintf "scan:%s/sel=%d vectorized_ms" name sel;
                  ck_base = base_ms;
                  ck_cur = vec_ms;
                  ck_higher_better = false;
                }
          | None -> None)
      | _ -> None)
    (Option.value (Json.to_list baseline) ~default:[])

(* The serve sweep gates delivered throughput on the normal-mode rows
   only: the overload row's shed rate is deliberately load-shaped and
   recorded for the record, not gated. *)
let check_serve baseline =
  let current = Lazy.force current_serve in
  List.filter_map
    (fun entry ->
      match
        ( Option.bind (Json.member "mode" entry) Json.to_string_opt,
          num_field entry "clients",
          num_field entry "throughput_stmt_per_s" )
      with
      | Some "normal", Some clients, Some base_tput -> (
          let clients = int_of_float clients in
          match
            List.find_opt
              (fun (mode, c, _, _, _) -> mode = "normal" && c = clients)
              current
          with
          | Some (_, _, tput, _, _) ->
              Some
                {
                  ck_metric =
                    Printf.sprintf "serve:clients=%d throughput_stmt_per_s"
                      clients;
                  ck_base = base_tput;
                  ck_cur = tput;
                  ck_higher_better = true;
                }
          | None -> None)
      | _ -> None)
    (Option.value (Json.to_list baseline) ~default:[])

(* A baseline file is classified by shape, not by name: an object with
   "overhead" is the obs sweep; an array whose entries carry
   "wal_records" is the recovery sweep; an array with "selectivity" is
   the vectorized-kernel sweep; an array with "domains" is the join
   sweep. *)
let classify_baseline json =
  match json with
  | Json.Obj _ when Json.member "overhead" json <> None -> Some `Obs
  | Json.Arr (first :: _) when Json.member "wal_records" first <> None ->
      Some `Recovery
  | Json.Arr (first :: _) when Json.member "selectivity" first <> None ->
      Some `Scan
  | Json.Arr (first :: _) when Json.member "clients" first <> None ->
      Some `Serve
  | Json.Arr (first :: _) when Json.member "rpq_ms" first <> None ->
      Some `Snb
  | Json.Arr (first :: _) when Json.member "domains" first <> None ->
      Some `Join
  | _ -> None

let run_check baselines =
  let tolerance = check_tolerance () in
  Printf.printf "\n== regression gate (tolerance %.0f%%) ==\n"
    (tolerance *. 100.0);
  let rows =
    List.concat_map
      (fun path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "bench: warning: baseline %s missing, skipped\n%!"
            path;
          []
        end
        else
          let doc =
            let ic = open_in_bin path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s
          in
          match Json.parse doc with
          | Error msg ->
              Printf.eprintf "bench: warning: baseline %s unreadable (%s), \
                              skipped\n%!"
                path msg;
              []
          | Ok json -> (
              match classify_baseline json with
              | Some `Join -> check_join json
              | Some `Recovery -> check_recovery json
              | Some `Obs -> check_obs json
              | Some `Scan -> check_scan json
              | Some `Serve -> check_serve json
              | Some `Snb -> check_snb json
              | None ->
                  Printf.eprintf
                    "bench: warning: baseline %s has an unknown shape, \
                     skipped\n%!"
                    path;
                  []))
      baselines
  in
  if rows = [] then begin
    Printf.eprintf "bench: no baseline metrics compared\n%!";
    1
  end
  else begin
    let regressed = List.filter (row_regressed ~tolerance) rows in
    print_endline
      (Graql_util.Text_table.render
         ~header:[ "metric"; "baseline"; "current"; "change"; "status" ]
         (List.map
            (fun r ->
              [
                r.ck_metric;
                Printf.sprintf "%.3f" r.ck_base;
                Printf.sprintf "%.3f" r.ck_cur;
                Printf.sprintf "%+.1f%%" (row_change r *. 100.0);
                (if row_regressed ~tolerance r then "REGRESSED" else "ok");
              ])
            rows));
    if regressed = [] then begin
      Printf.printf "gate passed: %d metric(s) within %.0f%% of baseline\n"
        (List.length rows) (tolerance *. 100.0);
      0
    end
    else begin
      Printf.printf "gate FAILED: %d of %d metric(s) regressed > %.0f%%\n"
        (List.length regressed) (List.length rows) (tolerance *. 100.0);
      9
    end
  end

let default_baselines =
  [
    "BENCH_join.json"; "BENCH_recovery.json"; "BENCH_obs.json";
    "BENCH_scan.json"; "BENCH_serve.json"; "BENCH_snb.json";
  ]

let () =
  Printf.printf "GraQL benchmark harness — scale %d (%d products), %s\n\n"
    bench_scale (100 * bench_scale)
    (Printf.sprintf "%d domains available" (Domain.recommended_domain_count ()));
  let argv = Array.to_list Sys.argv in
  if List.mem "--check" argv then begin
    (* Regression gate: compare fresh sweeps against committed baselines
       (positional arguments after --check, or the default three). *)
    let baselines =
      List.filter
        (fun a ->
          not (String.length a >= 2 && String.sub a 0 2 = "--"))
        (List.tl argv)
    in
    let baselines = if baselines = [] then default_baselines else baselines in
    exit (run_check baselines)
  end;
  if List.mem "--json" argv then begin
    (* Machine-readable sweeps only: one BENCH_*.json per gated sweep. *)
    ignore (sweep_join_parallel ~json:true ());
    ignore (sweep_recovery ~json:true ());
    ignore (sweep_obs ~json:true ());
    ignore (sweep_scan ~json:true ());
    ignore (sweep_serve ~json:true ());
    ignore (sweep_snb ~json:true ());
    exit 0
  end;
  run_bechamel ();
  sweep_scales ();
  sweep_view_build ();
  sweep_planner ();
  sweep_script_parallel ();
  sweep_shards ();
  sweep_fault_recovery ();
  ignore (sweep_recovery ());
  ignore (sweep_join_parallel ());
  ignore (sweep_scan ());
  ignore (sweep_serve ());
  sweep_baseline_vs_engine ();
  sweep_seed_strategy ();
  sweep_fast_pred ();
  sweep_selective_maintenance ();
  sweep_regex_depth ();
  ignore (sweep_snb ());
  ignore (sweep_obs ());
  print_endline "\ndone."
