module Wire = Graql_ir.Wire
module Codec = Graql_ir.Codec
module Ast = Graql_lang.Ast
module Parser = Graql_lang.Parser
module Pretty = Graql_lang.Pretty

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Wire primitives                                                     *)

let test_varint_roundtrip () =
  let cases = [ 0; 1; 127; 128; 300; 65535; 1 lsl 40; max_int / 2 ] in
  List.iter
    (fun n ->
      let w = Wire.writer () in
      Wire.varint w n;
      let r = Wire.reader (Wire.contents w) in
      check_int (Printf.sprintf "varint %d" n) n (Wire.read_varint r);
      check "consumed" true (Wire.at_end r))
    cases

let test_zigzag_roundtrip () =
  List.iter
    (fun n ->
      let w = Wire.writer () in
      Wire.zigzag w n;
      let r = Wire.reader (Wire.contents w) in
      check_int (Printf.sprintf "zigzag %d" n) n (Wire.read_zigzag r))
    [ 0; -1; 1; -1000000; 1000000; min_int / 4; max_int / 4 ]

let test_float_string_bool () =
  let w = Wire.writer () in
  Wire.float64 w 3.14159;
  Wire.string w "héllo\x00world";
  Wire.bool w true;
  let r = Wire.reader (Wire.contents w) in
  check "float" true (Wire.read_float64 r = 3.14159);
  check "string with nul" true (Wire.read_string r = "héllo\x00world");
  check "bool" true (Wire.read_bool r)

let test_wire_corrupt () =
  let r = Wire.reader (Bytes.of_string "") in
  (match Wire.read_varint r with
  | _ -> Alcotest.fail "expected corrupt"
  | exception Wire.Corrupt _ -> ());
  (* String length overruns buffer. *)
  let w = Wire.writer () in
  Wire.varint w 100;
  let r = Wire.reader (Wire.contents w) in
  match Wire.read_string r with
  | _ -> Alcotest.fail "expected corrupt"
  | exception Wire.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Script roundtrips                                                   *)

let roundtrip src =
  let ast = Parser.parse_script src in
  let blob = Codec.encode_script ast in
  let ast2 = Codec.decode_script blob in
  (ast, ast2, blob)

let corpus =
  [
    "create table T (id varchar(10), n integer, f float, d date, b boolean)";
    "create vertex V(id, b) from table T where ((n > 3) and (f < 1.5))";
    "create edge e with vertices (V as A, V as B) from table R where (A.id = B.id)";
    "ingest table T 'data.csv'";
    "set %P% = 'x'";
    "set %N% = -42";
    "set %F% = 1.25";
    "set %B% = true";
    "set %Z% = null";
    "select * from graph V ((id = %P%)) --e--> def x: V <--e-- foreach y: V \
     into subgraph G";
    "select x.id, y.id as other from graph (V --e--> def x: V) and (x --e--> \
     def y: V) or V --e--> V into table T2";
    "select * from graph V ( --[ ]--> [ ] )+ --e--> V ( --e--> V ){4} into \
     subgraph R";
    "select * from graph R.V ((id is not null)) --e(w > 2)--> V into subgraph R2";
    "select E.w from graph V --def E: e--> V <--foreach f: e-- V into table TE";
    "select distinct top 5 id, count(*) as n, avg(f) as a from table T where \
     (id like 'x%') group by id order by n desc, id asc into table Out";
    "select a.x from table A as a, B as b where (a.k = b.k)";
  ]

let test_corpus_roundtrip () =
  List.iter
    (fun src ->
      let ast, ast2, _ = roundtrip src in
      (* Locations survive too, so structural equality must hold. *)
      if ast <> ast2 then
        Alcotest.failf "IR roundtrip changed AST for %S:\n%s\nvs\n%s" src
          (Pretty.script_to_string ast)
          (Pretty.script_to_string ast2))
    corpus

let test_whole_berlin_roundtrip () =
  let src =
    String.concat "\n"
      (Graql_berlin.Berlin_schema.full_ddl
      :: List.map snd
           (Graql_berlin.Berlin_queries.all @ Graql_berlin.Berlin_queries.bi_all))
  in
  let ast, ast2, blob = roundtrip src in
  check "berlin roundtrip" true (ast = ast2);
  check "non-trivial size" true (Bytes.length blob > 500)

let test_header_checks () =
  let ast = Parser.parse_script "set %A% = 1" in
  let blob = Codec.encode_script ast in
  (* Corrupt the magic *)
  let bad = Bytes.copy blob in
  Bytes.set bad 0 'X';
  (match Codec.decode_script bad with
  | _ -> Alcotest.fail "expected corrupt magic"
  | exception Wire.Corrupt msg -> check "magic msg" true (msg = "bad IR magic"));
  (* Truncate *)
  let short = Bytes.sub blob 0 (Bytes.length blob - 2) in
  (match Codec.decode_script short with
  | _ -> Alcotest.fail "expected truncation error"
  | exception Wire.Corrupt _ -> ());
  (* Trailing garbage *)
  let long = Bytes.cat blob (Bytes.of_string "zz") in
  match Codec.decode_script long with
  | _ -> Alcotest.fail "expected trailing error"
  | exception Wire.Corrupt msg -> check "trailing" true (msg = "trailing bytes in IR")

let test_decode_random_bytes_never_crashes () =
  (* Fuzzing the decoder: must raise Corrupt (or succeed), never crash. *)
  let rng = Graql_util.Rng.make 5 in
  for _ = 1 to 500 do
    let len = Graql_util.Rng.int rng 64 in
    let b =
      Bytes.init len (fun _ -> Char.chr (Graql_util.Rng.int rng 256))
    in
    match Codec.decode_script b with
    | _ -> ()
    | exception Wire.Corrupt _ -> ()
  done

let test_expr_codec () =
  let e = Parser.parse_expr "((a.b + 1) * 2 >= %P%) and (c like 'x%') or q is null" in
  let e2 = Codec.decode_expr (Codec.encode_expr e) in
  check "expr roundtrip" true (e = e2)

(* Random statement generator: reuse the corpus pieces with random params
   spliced in to get variety. *)
let prop_script_roundtrip =
  QCheck.Test.make ~name:"random script subsets roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 8) (int_bound (List.length corpus - 1)))
    (fun picks ->
      let src = String.concat "\n" (List.map (List.nth corpus) picks) in
      (* Renumber duplicate definitions away by parsing directly. *)
      let ast = Parser.parse_script src in
      Codec.decode_script (Codec.encode_script ast) = ast)

let () =
  Alcotest.run "ir"
    [
      ( "wire",
        [
          Alcotest.test_case "varint" `Quick test_varint_roundtrip;
          Alcotest.test_case "zigzag" `Quick test_zigzag_roundtrip;
          Alcotest.test_case "float/string/bool" `Quick test_float_string_bool;
          Alcotest.test_case "corrupt detection" `Quick test_wire_corrupt;
        ] );
      ( "codec",
        [
          Alcotest.test_case "corpus roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "berlin script" `Quick test_whole_berlin_roundtrip;
          Alcotest.test_case "header checks" `Quick test_header_checks;
          Alcotest.test_case "fuzz decode" `Quick test_decode_random_bytes_never_crashes;
          Alcotest.test_case "expr codec" `Quick test_expr_codec;
          QCheck_alcotest.to_alcotest prop_script_roundtrip;
        ] );
    ]
