(* Static query analysis (Sec. III-A): the checks the paper lists must be
   caught from catalog metadata alone. *)

module Meta = Graql_analysis.Meta
module Diag = Graql_analysis.Diag
module Typecheck = Graql_analysis.Typecheck
module Parser = Graql_lang.Parser

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A catalog with the Berlin-like shape, built through the checker itself
   (create statements register their definitions). *)
let base_ddl =
  {|
create table Products(id varchar(10), label varchar(20), producer varchar(10),
                      price float, added date)
create table Producers(id varchar(10), country varchar(10))
create table Reviews(id varchar(10), reviewFor varchar(10), rating integer)
create vertex ProductVtx(id) from table Products
create vertex ProducerVtx(id) from table Producers
create vertex ReviewVtx(id) from table Reviews
create edge producer with vertices (ProductVtx, ProducerVtx)
  where ProductVtx.producer = ProducerVtx.id
create edge reviewFor with vertices (ReviewVtx, ProductVtx)
  where ReviewVtx.reviewFor = ProductVtx.id
|}

let run_check ?(params = []) extra =
  let meta = Meta.create () in
  Typecheck.check_script ~params meta (Parser.parse_script (base_ddl ^ "\n" ^ extra))

let errors_of diags = List.map (fun d -> d.Diag.message) (Diag.errors diags)

let expect_clean extra =
  let diags = run_check extra in
  if Diag.has_errors diags then
    Alcotest.failf "unexpected errors: %s"
      (String.concat "; " (errors_of diags))

let expect_error_containing extra fragment =
  let diags = run_check extra in
  let msgs = errors_of diags in
  if
    not
      (List.exists
         (fun m ->
           let rec contains i =
             i + String.length fragment <= String.length m
             && (String.sub m i (String.length fragment) = fragment
                || contains (i + 1))
           in
           contains 0)
         msgs)
  then
    Alcotest.failf "no error containing %S among [%s]" fragment
      (String.concat "; " msgs)

(* ------------------------------------------------------------------ *)
(* The paper's own examples                                            *)

let test_clean_schema () = expect_clean ""

let test_date_vs_float () =
  (* "comparing a date to a floating-point number" *)
  expect_error_containing "select id from table Products where added > 1.5"
    "cannot compare"

let test_date_vs_int_in_path () =
  expect_error_containing
    "select ProductVtx.id from graph ProductVtx (added = 7) into table X"
    "cannot compare"

let test_date_vs_string_ok () =
  (* Date literals are written as strings; this must pass. *)
  expect_clean "select id from table Products where added > '2008-01-01'"

let test_vertex_where_table_required () =
  (* "a table name should be used when a table is required, rather than a
     vertex type name" *)
  expect_error_containing "select id from table ProductVtx" "is not a table";
  expect_error_containing "ingest table ProductVtx x.csv" "is not a table";
  expect_error_containing
    "create vertex V2(id) from table ProductVtx" "is not a table"

let test_table_where_vertex_required () =
  expect_error_containing
    "select * from graph Products --producer--> ProducerVtx into subgraph G"
    "is not a vertex type";
  expect_error_containing
    "create edge e2 with vertices (Products, ProducerVtx) where Products.id = ProducerVtx.id"
    "is not a vertex type"

let test_unknown_entities () =
  expect_error_containing "select id from table Nope" "no such table";
  expect_error_containing
    "select * from graph NopeVtx --producer--> ProducerVtx into subgraph G"
    "no such vertex type";
  expect_error_containing
    "select * from graph ProductVtx --nope--> ProducerVtx into subgraph G"
    "no such edge type"

(* ------------------------------------------------------------------ *)
(* Path well-formedness                                                *)

let test_edge_direction_mismatch () =
  (* producer goes Product -> Producer; using it the wrong way round. *)
  expect_error_containing
    "select * from graph ProducerVtx --producer--> ProductVtx into subgraph G"
    "but the path has";
  (* correct direction via in-edge is fine *)
  expect_clean
    "select * from graph ProducerVtx <--producer-- ProductVtx into subgraph G"

let test_conditions_on_variant_steps () =
  expect_error_containing
    "select * from graph ProductVtx <--[ ](rating = 1)-- [ ] into subgraph G"
    "not allowed on type-matching";
  expect_error_containing
    "select * from graph ProductVtx <--[ ]-- [ ] (rating = 1) into subgraph G"
    "not allowed on type-matching"

let test_unknown_attribute_in_condition () =
  expect_error_containing
    "select * from graph ProductVtx (zzz = 1) into subgraph G"
    "has no attribute";
  expect_error_containing
    "select id from table Products where zzz = 1" "unknown column"

let test_label_scoping () =
  (* Reference before definition / unlabeled cross-step reference. *)
  expect_error_containing
    "select * from graph ProductVtx (id = nolabel.id) into subgraph G"
    "unknown qualifier";
  (* Cross-step by type name needs a label *)
  expect_error_containing
    {|select * from graph ProductVtx --producer--> ProducerVtx (id = ProductVtx.producer)
      into subgraph G|}
    "label it";
  (* Proper label reference passes *)
  expect_clean
    {|select * from graph def p: ProductVtx ( ) --producer-->
        ProducerVtx (id = p.producer) into subgraph G|}

let test_edge_labels () =
  (* Conditions and targets may reference edge labels... *)
  expect_clean
    {|select E.id as eid from graph ReviewVtx ( ) --def E: reviewFor-->
        ProductVtx (id = E.reviewFor) into table T|};
  (* ...but an edge label is not a step. *)
  expect_error_containing
    {|select * from graph ReviewVtx --def E: reviewFor--> ProductVtx
        --producer--> E into subgraph G|}
    "labels an edge";
  expect_error_containing
    {|select * from graph def E: ReviewVtx --def E: reviewFor--> ProductVtx
        into subgraph G|}
    "already defined"

let test_duplicate_label () =
  expect_error_containing
    {|select * from graph def x: ProductVtx --producer--> def x: ProducerVtx
      into subgraph G|}
    "already defined"

let test_and_requires_shared_label () =
  expect_error_containing
    {|select * from graph (ProductVtx --producer--> ProducerVtx)
      and (ReviewVtx --reviewFor--> ProductVtx) into subgraph G|}
    "shared label";
  expect_clean
    {|select * from graph (def p: ProductVtx --producer--> ProducerVtx)
      and (ReviewVtx --reviewFor--> p) into subgraph G|}

let test_contradiction_warnings () =
  let warn_count extra = List.length (Diag.warnings (run_check extra)) in
  (* numeric interval contradiction *)
  check "x>5 and x<3 warns" true
    (warn_count
       "select id from table Products where price > 5 and price < 3"
    >= 1);
  (* equality vs bound *)
  check "eq outside bound warns" true
    (warn_count
       "select id from table Products where price = 10 and price < 5"
    >= 1);
  (* conflicting string equalities *)
  check "two string eqs warn" true
    (warn_count
       "select id from table Products where id = 'a' and id = 'b'"
    >= 1);
  (* satisfiable ranges stay silent *)
  check "x>3 and x<5 ok" true
    (warn_count
       "select id from table Products where price > 3 and price < 5"
    = 0);
  (* boundary: x >= 5 and x <= 5 is satisfiable; x > 5 and x <= 5 is not *)
  check "closed point ok" true
    (warn_count
       "select id from table Products where price >= 5 and price <= 5"
    = 0);
  check "half-open point warns" true
    (warn_count
       "select id from table Products where price > 5 and price <= 5"
    >= 1);
  (* per-attribute tracking: different attrs don't interact *)
  check "different attrs ok" true
    (warn_count
       "select id from table Products where price > 5 and rating < 3"
    = 0);
  (* contradictions inside a path step condition *)
  check "path step contradiction warns" true
    (warn_count
       {|select * from graph ProductVtx (price > 9 and price < 1)
           --producer--> ProducerVtx into subgraph G|}
    >= 1)

let test_variant_step_feasibility_warning () =
  (* No edge type connects Producer -> Review: warning, not error. *)
  let diags =
    run_check
      "select * from graph ProducerVtx --[ ]--> ReviewVtx into subgraph G"
  in
  check "no errors" false (Diag.has_errors diags);
  check_int "one warning" 1 (List.length (Diag.warnings diags))

(* ------------------------------------------------------------------ *)
(* Table select checking                                               *)

let test_group_by_discipline () =
  expect_error_containing
    "select label, count(*) as n from table Products group by id"
    "must appear in group by";
  expect_clean
    "select id, count(*) as n from table Products group by id order by n desc"

let test_aggregate_misuse () =
  expect_error_containing "select sum(*) as s from table Products" "only count(*)";
  expect_error_containing "select frob(id) as x from table Products"
    "unknown aggregate";
  expect_error_containing
    "select id from table Products where count(*) > 1" "not allowed in this context"

let test_top_positive () =
  expect_error_containing "select top 0 id from table Products" "must be positive"

let test_table_select_into_subgraph () =
  expect_error_containing "select id from table Products into subgraph G"
    "cannot produce a subgraph"

let test_param_typing () =
  (* Bound parameter with wrong type. *)
  let diags =
    run_check ~params:[ ("P", Graql_lang.Ast.L_float 1.5) ]
      "select id from table Products where added = %P%"
  in
  check "typed param error" true (Diag.has_errors diags);
  (* Unbound parameter: unknown type, no error. *)
  expect_clean "select id from table Products where added = %Unbound%"

let test_duplicate_entity () =
  expect_error_containing "create table Products(id integer)" "already declared";
  expect_error_containing
    "create vertex ProductVtx(id) from table Products" "already declared"

let test_result_registration_flows () =
  (* A result table registered by one statement is queryable by the next,
     with its inferred schema checked. *)
  expect_clean
    {|select ProductVtx.id from graph ProductVtx --producer--> ProducerVtx into table R
      select id, count(*) as n from table R group by id|};
  expect_error_containing
    {|select ProductVtx.id from graph ProductVtx --producer--> ProducerVtx into table R
      select nope from table R|}
    "unknown column"

let test_subgraph_seed_checked () =
  expect_clean
    {|select * from graph ProductVtx --producer--> ProducerVtx into subgraph S
      select * from graph S.ProductVtx ( ) --producer--> ProducerVtx into subgraph S2|};
  expect_error_containing
    "select * from graph NoSuch.ProductVtx ( ) into subgraph G"
    "no such subgraph"

let test_select_targets_checked () =
  expect_error_containing
    {|select ProducerVtx.id from graph ProductVtx --producer--> ProducerVtx ( )
        into subgraph G
      select * from table Products where id = 1 and label = 2|}
    "cannot compare";
  (* subgraph targets must be steps *)
  expect_error_containing
    {|select ReviewVtx from graph ProductVtx --producer--> ProducerVtx
        into subgraph G|}
    "not a step of this query"

let () =
  Alcotest.run "analysis"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "clean schema" `Quick test_clean_schema;
          Alcotest.test_case "date vs float" `Quick test_date_vs_float;
          Alcotest.test_case "date vs int in path" `Quick test_date_vs_int_in_path;
          Alcotest.test_case "date vs string ok" `Quick test_date_vs_string_ok;
          Alcotest.test_case "vertex where table required" `Quick
            test_vertex_where_table_required;
          Alcotest.test_case "table where vertex required" `Quick
            test_table_where_vertex_required;
          Alcotest.test_case "unknown entities" `Quick test_unknown_entities;
        ] );
      ( "paths",
        [
          Alcotest.test_case "edge direction" `Quick test_edge_direction_mismatch;
          Alcotest.test_case "variant-step conditions" `Quick
            test_conditions_on_variant_steps;
          Alcotest.test_case "unknown attribute" `Quick
            test_unknown_attribute_in_condition;
          Alcotest.test_case "label scoping" `Quick test_label_scoping;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "edge labels" `Quick test_edge_labels;
          Alcotest.test_case "and needs shared label" `Quick
            test_and_requires_shared_label;
          Alcotest.test_case "variant feasibility warning" `Quick
            test_variant_step_feasibility_warning;
          Alcotest.test_case "contradiction warnings" `Quick
            test_contradiction_warnings;
        ] );
      ( "table-selects",
        [
          Alcotest.test_case "group by discipline" `Quick test_group_by_discipline;
          Alcotest.test_case "aggregate misuse" `Quick test_aggregate_misuse;
          Alcotest.test_case "top must be positive" `Quick test_top_positive;
          Alcotest.test_case "into subgraph rejected" `Quick
            test_table_select_into_subgraph;
          Alcotest.test_case "parameter typing" `Quick test_param_typing;
        ] );
      ( "registration",
        [
          Alcotest.test_case "duplicate entity" `Quick test_duplicate_entity;
          Alcotest.test_case "result tables flow" `Quick test_result_registration_flows;
          Alcotest.test_case "subgraph seeds" `Quick test_subgraph_seed_checked;
          Alcotest.test_case "select targets" `Quick test_select_targets_checked;
        ] );
    ]
