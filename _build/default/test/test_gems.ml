(* GEMS pipeline tests: session flow (parse -> check -> IR -> execute),
   strict rejection, catalog service, sharded backend determinism. *)

module Session = Graql_gems.Session
module Shard = Graql_gems.Shard
module Db = Graql_engine.Db
module Script_exec = Graql_engine.Script_exec
module Pool = Graql_parallel.Domain_pool
module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype
module Row_expr = Graql_relational.Row_expr

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mini_schema =
  {|
create table T(id varchar(8), n integer)
create vertex V(id) from table T
ingest table T t.csv
|}

let loader _ = "id,n\na,1\nb,2\nc,3\n"

(* ------------------------------------------------------------------ *)

let test_session_happy_path () =
  let s = Session.create () in
  let results = Session.run_script ~loader s mini_schema in
  check_int "four statements" 3 (List.length results);
  check "no diagnostics" true (Session.last_diagnostics s = []);
  check "ir was shipped" true (Session.ir_bytes_shipped s > 0);
  let times = Session.phase_times s in
  check "phases timed" true
    (times.Session.t_parse >= 0.0 && times.Session.t_execute >= 0.0)

let test_session_strict_rejection () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  match Session.run_script s "select zzz from table T" with
  | _ -> Alcotest.fail "expected rejection"
  | exception Session.Rejected diags ->
      check "has errors" true (Graql_analysis.Diag.has_errors diags)

let test_session_nonstrict_mode () =
  (* Non-strict: static errors do not block; execution then fails (or not)
     on its own terms. *)
  let s = Session.create ~strict:false () in
  ignore (Session.run_script ~loader s mini_schema);
  match Session.run_script s "select zzz from table T" with
  | _ -> Alcotest.fail "execution should still fail on unknown column"
  | exception Script_exec.Script_error _ -> ()

let test_check_does_not_execute () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let before = Table.nrows (Db.find_table_exn (Session.db s) "T") in
  let diags = Session.check s "ingest table T t.csv" in
  check "check is clean" false (Graql_analysis.Diag.has_errors diags);
  check_int "no data touched" before
    (Table.nrows (Db.find_table_exn (Session.db s) "T"))

let test_run_ir_directly () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let blob =
    Graql_ir.Codec.encode_script
      (Graql_lang.Parser.parse_script "select id from table T where n > 1")
  in
  match Session.run_ir s blob with
  | [ (_, Script_exec.O_table t) ] -> check_int "two rows" 2 (Table.nrows t)
  | _ -> Alcotest.fail "expected one table"

let test_catalog_rows () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let rows = Session.catalog_rows s in
  check "table listed with size" true
    (List.exists (fun r -> r = [ "table"; "T"; "3" ]) rows);
  check "vertex listed" true
    (List.exists (function [ "vertex"; "V"; _ ] -> true | _ -> false) rows)

let test_session_warnings_do_not_block () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  (* An empty result table triggers a feasibility warning downstream. *)
  ignore
    (Session.run_script s
       "select id from table T where n > 100 into table Empty");
  match Session.run_script s "select id from table Empty" with
  | [ (_, Script_exec.O_table t) ] ->
      check_int "empty result, no rejection" 0 (Table.nrows t)
  | _ -> Alcotest.fail "expected table"

(* ------------------------------------------------------------------ *)
(* Server: access control, accounts, audit (Sec. III component 2)      *)

module Server = Graql_gems.Server

let test_server_roles () =
  let srv = Server.create () in
  Server.add_user srv ~name:"root" ~role:Server.Admin;
  Server.add_user srv ~name:"ann" ~role:Server.Analyst;
  let root = Server.connect srv ~user:"root" in
  let ann = Server.connect srv ~user:"ann" in
  (* Admin provisions the database. *)
  ignore (Server.run ~loader root mini_schema);
  (* Analyst may query... *)
  (match Server.run ann "select id from table T where n >= 2" with
  | [ (_, Script_exec.O_table t) ] -> check_int "analyst query" 2 (Table.nrows t)
  | _ -> Alcotest.fail "expected table");
  (* ...and bind parameters... *)
  ignore (Server.run ann "set %N% = 2");
  (* ...but not write. *)
  (match Server.run ~loader ann "ingest table T t.csv" with
  | _ -> Alcotest.fail "expected denial"
  | exception Server.Permission_denied msg ->
      check "names the user" true (String.length msg > 0));
  (* Authorization is all-or-nothing: the select before the ingest must
     not have executed either. *)
  (match
     Server.run ~loader ann
       {|select id from table T into table Leak
         ingest table T t.csv|}
   with
  | _ -> Alcotest.fail "expected denial"
  | exception Server.Permission_denied _ ->
      check "nothing leaked" true
        (Db.find_table (Session.db (Server.session srv)) "Leak" = None));
  check_int "table untouched" 3
    (Table.nrows (Db.find_table_exn (Session.db (Server.session srv)) "T"))

let test_server_accounts_and_audit () =
  let srv = Server.create () in
  Server.add_user srv ~name:"root" ~role:Server.Admin;
  Server.add_user srv ~name:"ann" ~role:Server.Analyst;
  Alcotest.check_raises "duplicate user" (Failure "user \"ann\" already exists")
    (fun () -> Server.add_user srv ~name:"ann" ~role:Server.Admin);
  (match Server.connect srv ~user:"bob" with
  | _ -> Alcotest.fail "expected unknown user"
  | exception Server.Unknown_user u -> Alcotest.(check string) "user" "bob" u);
  let root = Server.connect srv ~user:"root" in
  ignore (Server.run ~loader root mini_schema);
  let ann = Server.connect srv ~user:"ann" in
  ignore (Server.run ann "select id from table T");
  (try ignore (Server.run ~loader ann "ingest table T t.csv")
   with Server.Permission_denied _ -> ());
  let stats = Server.user_stats srv in
  check "ann stats" true (List.mem ("ann", 1, 1) stats);
  check "root stats" true (List.mem ("root", 3, 0) stats);
  let log = Server.audit_log srv in
  check_int "audit entries" 4 (List.length log);
  check "audit order" true (fst (List.hd log) = "root");
  check "last entry is ann's select" true
    (match List.rev log with ("ann", _) :: _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)

let test_loader_failure_mid_script () =
  let s = Session.create () in
  let flaky name = if name = "t.csv" then raise (Sys_error "disk gone") else "" in
  (match Session.run_script ~loader:flaky s mini_schema with
  | _ -> Alcotest.fail "expected script error"
  | exception Script_exec.Script_error (_, msg) ->
      check "names the file" true
        (String.length msg > 0 && String.sub msg 0 6 = "ingest"));
  (* The DDL before the failing ingest took effect; the session recovers
     on the next script. *)
  check "table exists, empty" true
    (Table.nrows (Db.find_table_exn (Session.db s) "T") = 0);
  match Session.run_script ~loader s "ingest table T t.csv" with
  | [ (_, Script_exec.O_message _) ] ->
      check_int "recovered" 3 (Table.nrows (Db.find_table_exn (Session.db s) "T"))
  | _ -> Alcotest.fail "expected ingest message"

let test_parallel_script_failure_propagates () =
  let pool = Pool.create ~domains:2 () in
  let s = Session.create ~pool:(Some pool |> Option.get) () in
  ignore (Session.run_script ~loader s mini_schema);
  (* Two independent statements; one dies at runtime (division guard is
     fine — use an unbound parameter). Wave execution must surface the
     error, not swallow it. *)
  (match
     Session.run_script ~parallel:true s
       {|select id from table T where n > 0 into table OK1
         select id from table T where n = %Unbound% into table BAD|}
   with
  | _ -> Alcotest.fail "expected failure"
  | exception Script_exec.Script_error (_, msg) ->
      check "unbound param surfaced" true (msg = "unbound parameter %Unbound%"));
  Pool.shutdown pool

let test_corrupt_ir_rejected_by_backend () =
  let s = Session.create () in
  ignore (Session.run_script ~loader s mini_schema);
  let blob =
    Graql_ir.Codec.encode_script
      (Graql_lang.Parser.parse_script "select id from table T")
  in
  Bytes.set blob (Bytes.length blob - 1) '\xff';
  match Session.run_ir s blob with
  | _ -> Alcotest.fail "expected corrupt IR"
  | exception Graql_ir.Wire.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)

let big_table n =
  let schema = Schema.make [ { Schema.name = "v"; dtype = Dtype.Int } ] in
  let t = Table.create ~name:"big" schema in
  for i = 0 to n - 1 do
    Table.append_row t [ Value.Int (i mod 101) ]
  done;
  t

let test_shard_ranges_cover () =
  let pool = Pool.create ~domains:3 () in
  let t = big_table 1000 in
  List.iter
    (fun shards ->
      let backend = Shard.create ~shards pool in
      let ranges = Shard.ranges backend t in
      check_int "one range per shard" shards (List.length ranges);
      let covered =
        List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ranges
      in
      check_int "full coverage" 1000 covered;
      (* Contiguous and ordered *)
      ignore
        (List.fold_left
           (fun prev (lo, hi) ->
             check "contiguous" true (lo = prev);
             hi)
           0 ranges))
    [ 1; 2; 3; 7; 16 ];
  Pool.shutdown pool

let test_shard_select_deterministic_across_counts () =
  let pool = Pool.create ~domains:4 () in
  let t = big_table 5000 in
  let pred = Row_expr.(Cmp (Lt, Col 0, Const (Value.Int 13))) in
  let base = Shard.parallel_select (Shard.create ~shards:1 pool) t pred in
  List.iter
    (fun shards ->
      let r = Shard.parallel_select (Shard.create ~shards pool) t pred in
      check (Printf.sprintf "same result at %d shards" shards) true (r = base))
    [ 2; 4; 8 ];
  check_int "count agrees" (Array.length base)
    (Shard.parallel_count (Shard.create ~shards:4 pool) t pred);
  Pool.shutdown pool

let test_shard_scan_merge_order () =
  let pool = Pool.create ~domains:4 () in
  let t = big_table 257 in
  let backend = Shard.create ~shards:5 pool in
  let concat =
    Shard.parallel_scan backend t
      ~init:(fun () -> Buffer.create 64)
      ~row:(fun buf r -> Buffer.add_string buf (string_of_int r))
      ~merge:(fun a b ->
        Buffer.add_buffer a b;
        a)
  in
  let expect = String.concat "" (List.init 257 string_of_int) in
  Alcotest.(check string) "row order preserved" expect (Buffer.contents concat);
  Pool.shutdown pool

let test_shard_empty_table () =
  let pool = Pool.create ~domains:2 () in
  let schema = Schema.make [ { Schema.name = "v"; dtype = Dtype.Int } ] in
  let t = Table.create ~name:"empty" schema in
  let backend = Shard.create ~shards:4 pool in
  check_int "empty select" 0
    (Array.length (Shard.parallel_select backend t Row_expr.const_true));
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Cluster capacity planning                                           *)

module Cluster = Graql_gems.Cluster

let berlin_db scale =
  let s = Session.create () in
  Graql_berlin.Berlin_gen.ingest_all ~scale s;
  Session.db s

let test_cluster_items () =
  let db = berlin_db 1 in
  let items = Cluster.database_items ~shards_per_table:2 db in
  check "all bytes non-negative" true
    (List.for_all (fun i -> i.Cluster.it_bytes >= 0) items);
  (* 10 tables x 2 shards + 10 vertex views + 9 edge types *)
  check_int "item count" ((10 * 2) + 10 + 9) (List.length items);
  let total l = List.fold_left (fun a i -> a + i.Cluster.it_bytes) 0 l in
  let bigger = Cluster.database_items (berlin_db 4) in
  check "footprint grows with scale" true (total bigger > total items)

let test_cluster_lpt_balance () =
  let db = berlin_db 2 in
  let plan = Cluster.plan ~nodes:4 ~mem_per_node:max_int db in
  check "skew near 1 with many items" true (plan.Cluster.pl_skew < 1.5);
  check_int "loads cover total" plan.Cluster.pl_total_bytes
    (Array.fold_left ( + ) 0 plan.Cluster.pl_node_bytes);
  check "fits in unlimited memory" true plan.Cluster.pl_fits

let test_cluster_capacity_boundary () =
  let db = berlin_db 1 in
  let tight = Cluster.plan ~nodes:2 ~mem_per_node:1024 db in
  check "tiny nodes don't fit" false tight.Cluster.pl_fits;
  let roomy = Cluster.plan ~nodes:2 ~mem_per_node:(1 lsl 30) db in
  check "1GB nodes fit scale 1" true roomy.Cluster.pl_fits;
  check "report mentions verdict" true
    (String.length (Cluster.report tight) > 0)

let test_table_bytes_monotone () =
  let schema =
    Schema.make [ { Schema.name = "s"; dtype = Dtype.Varchar 16 } ]
  in
  let t = Table.create ~name:"m" schema in
  let before = Table.approx_bytes t in
  for i = 0 to 999 do
    Table.append_row t [ Value.Str (string_of_int i) ]
  done;
  check "bytes grow with rows" true (Table.approx_bytes t > before + 8000)

let () =
  Alcotest.run "gems"
    [
      ( "session",
        [
          Alcotest.test_case "happy path" `Quick test_session_happy_path;
          Alcotest.test_case "strict rejection" `Quick test_session_strict_rejection;
          Alcotest.test_case "non-strict mode" `Quick test_session_nonstrict_mode;
          Alcotest.test_case "check is static only" `Quick test_check_does_not_execute;
          Alcotest.test_case "run_ir backend entry" `Quick test_run_ir_directly;
          Alcotest.test_case "catalog listing" `Quick test_catalog_rows;
          Alcotest.test_case "warnings don't block" `Quick
            test_session_warnings_do_not_block;
        ] );
      ( "server",
        [
          Alcotest.test_case "roles enforced" `Quick test_server_roles;
          Alcotest.test_case "accounts and audit" `Quick
            test_server_accounts_and_audit;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "loader failure mid-script" `Quick
            test_loader_failure_mid_script;
          Alcotest.test_case "parallel failure propagates" `Quick
            test_parallel_script_failure_propagates;
          Alcotest.test_case "corrupt IR rejected" `Quick
            test_corrupt_ir_rejected_by_backend;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "items inventory" `Quick test_cluster_items;
          Alcotest.test_case "LPT balance" `Quick test_cluster_lpt_balance;
          Alcotest.test_case "capacity boundary" `Quick test_cluster_capacity_boundary;
          Alcotest.test_case "table bytes monotone" `Quick test_table_bytes_monotone;
        ] );
      ( "shards",
        [
          Alcotest.test_case "ranges cover" `Quick test_shard_ranges_cover;
          Alcotest.test_case "deterministic across shard counts" `Quick
            test_shard_select_deterministic_across_counts;
          Alcotest.test_case "merge order" `Quick test_shard_scan_merge_order;
          Alcotest.test_case "empty table" `Quick test_shard_empty_table;
        ] );
    ]
