(* The heavyweight property test: the optimized path executor (CSR
   indices, planner reversal, eager projection) must agree with the
   brute-force reference matcher on randomly generated graphs and
   randomly generated well-formed paths — including labels in both
   flavours, both traversal directions, variant steps and conditions. *)

module Db = Graql_engine.Db
module Ddl_exec = Graql_engine.Ddl_exec
module Script_exec = Graql_engine.Script_exec
module Path_exec = Graql_engine.Path_exec
module Reference_exec = Graql_engine.Reference_exec
module Parser = Graql_lang.Parser
module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc

(* ------------------------------------------------------------------ *)
(* Random scenario                                                     *)

type scenario = {
  xa : int list;  (** attribute x per A vertex *)
  xb : int list;
  e_aa : (int * int) list;  (** A->A edges, with possible duplicates *)
  e_ab : (int * int) list;
  e_ba : (int * int) list;
  path : Ast.path;
}

let schema_script =
  {|
create table TA(id varchar(6), x integer)
create table TB(id varchar(6), x integer)
create table EAA(f varchar(6), t varchar(6), w integer)
create table EAB(f varchar(6), t varchar(6), w integer)
create table EBA(f varchar(6), t varchar(6), w integer)
create vertex A(id) from table TA
create vertex B(id) from table TB
create edge eaa with vertices (A as S, A as D) from table EAA
  where EAA.f = S.id and EAA.t = D.id
create edge eab with vertices (A, B) from table EAB
  where EAB.f = A.id and EAB.t = B.id
create edge eba with vertices (B, A) from table EBA
  where EBA.f = B.id and EBA.t = A.id
ingest table TA ta.csv
ingest table TB tb.csv
ingest table EAA eaa.csv
ingest table EAB eab.csv
ingest table EBA eba.csv
|}

let csv_vertices prefix xs =
  "id,x\n"
  ^ String.concat ""
      (List.mapi (fun i x -> Printf.sprintf "%s%d,%d\n" prefix i x) xs)

let csv_edges pf pt edges =
  "f,t,w\n"
  ^ String.concat ""
      (List.mapi
         (fun i (f, t) -> Printf.sprintf "%s%d,%s%d,%d\n" pf f pt t (i mod 5))
         edges)

let build_db s =
  let loader = function
    | "ta.csv" -> csv_vertices "a" s.xa
    | "tb.csv" -> csv_vertices "b" s.xb
    | "eaa.csv" -> csv_edges "a" "a" s.e_aa
    | "eab.csv" -> csv_edges "a" "b" s.e_ab
    | "eba.csv" -> csv_edges "b" "a" s.e_ba
    | f -> raise (Sys_error f)
  in
  let db = Db.create () in
  Ddl_exec.install db;
  ignore
    (Script_exec.exec_script ~loader ~parallel:false db
       (Parser.parse_script schema_script));
  db

(* Path generator: walk the schema graph A --eaa--> A --eab--> B --eba--> A
   choosing a valid (edge, direction) at each step. *)

let gen_cond =
  QCheck.Gen.(
    frequency
      [
        (2, return None);
        ( 1,
          map
            (fun c ->
              Some
                (Ast.E_binop
                   ( Ast.Gt,
                     Ast.E_attr (None, "x", Loc.dummy),
                     Ast.E_lit (Ast.L_int c, Loc.dummy),
                     Loc.dummy )))
            (int_bound 9) );
        ( 1,
          map
            (fun c ->
              Some
                (Ast.E_binop
                   ( Ast.Le,
                     Ast.E_attr (None, "x", Loc.dummy),
                     Ast.E_lit (Ast.L_int c, Loc.dummy),
                     Loc.dummy )))
            (int_bound 9) );
      ])

let gen_edge_cond =
  QCheck.Gen.(
    frequency
      [
        (3, return None);
        ( 1,
          map
            (fun c ->
              Some
                (Ast.E_binop
                   ( Ast.Lt,
                     Ast.E_attr (None, "w", Loc.dummy),
                     Ast.E_lit (Ast.L_int c, Loc.dummy),
                     Loc.dummy )))
            (int_bound 4) );
      ])

(* (edge name, dir, from type, to type) choices per current type *)
let moves = function
  | "A" ->
      [ ("eaa", Ast.Out, "A"); ("eaa", Ast.In, "A"); ("eab", Ast.Out, "B");
        ("eba", Ast.In, "B") ]
  | "B" -> [ ("eab", Ast.In, "A"); ("eba", Ast.Out, "A") ]
  | _ -> assert false

let gen_path =
  let open QCheck.Gen in
  let* start = oneofl [ "A"; "B" ] in
  let* len = int_range 1 3 in
  let* head_cond = gen_cond in
  let* head_label =
    frequency
      [ (3, return None); (1, return (Some (Ast.Set_label "L0")));
        (1, return (Some (Ast.Each_label "L0"))) ]
  in
  let head =
    { Ast.v_kind = Ast.V_named start; v_label = head_label; v_cond = head_cond;
      v_loc = Loc.dummy }
  in
  let rec go cur i acc labels =
    if i > len then return (List.rev acc)
    else
      let* ename, dir, next = oneofl (moves cur) in
      let* econd = gen_edge_cond in
      let estep = { Ast.e_kind = Ast.E_named ename; e_dir = dir; e_label = None;
                    e_cond = econd; e_loc = Loc.dummy } in
      (* Maybe reference an earlier label of the right type instead. *)
      let usable = List.filter (fun (_, t) -> t = next) labels in
      let* use_ref =
        if usable = [] then return None
        else frequency [ (2, return None); (1, map Option.some (oneofl usable)) ]
      in
      match use_ref with
      | Some (lname, _) ->
          let v = { Ast.v_kind = Ast.V_named lname; v_label = None;
                    v_cond = None; v_loc = Loc.dummy } in
          go next (i + 1) (Ast.Seg_step (estep, v) :: acc) labels
      | None ->
          let* cond = gen_cond in
          let* label =
            frequency
              [ (4, return None);
                (1, return (Some (Ast.Set_label (Printf.sprintf "L%d" i))));
                (1, return (Some (Ast.Each_label (Printf.sprintf "L%d" i)))) ]
          in
          let labels =
            match label with
            | Some l -> (Ast.label_name l, next) :: labels
            | None -> labels
          in
          let v = { Ast.v_kind = Ast.V_named next; v_label = label;
                    v_cond = cond; v_loc = Loc.dummy } in
          go next (i + 1) (Ast.Seg_step (estep, v) :: acc) labels
  in
  let labels =
    match head_label with Some l -> [ (Ast.label_name l, start) ] | None -> []
  in
  let* segments = go start 1 [] labels in
  return { Ast.head; segments }

let gen_scenario =
  let open QCheck.Gen in
  let vattrs = list_size (int_range 1 5) (int_bound 9) in
  let edges na nb =
    if na = 0 || nb = 0 then return []
    else
      list_size (int_range 0 10) (pair (int_bound (na - 1)) (int_bound (nb - 1)))
  in
  let* xa = vattrs in
  let* xb = vattrs in
  let na = List.length xa and nb = List.length xb in
  let* e_aa = edges na na in
  let* e_ab = edges na nb in
  let* e_ba = edges nb na in
  let* path = gen_path in
  return { xa; xb; e_aa; e_ab; e_ba; path }

let print_scenario s =
  Format.asprintf "A.x=[%s] B.x=[%s] eaa=%d eab=%d eba=%d path: %a"
    (String.concat ";" (List.map string_of_int s.xa))
    (String.concat ";" (List.map string_of_int s.xb))
    (List.length s.e_aa) (List.length s.e_ab) (List.length s.e_ba)
    Graql_lang.Pretty.path s.path

(* ------------------------------------------------------------------ *)
(* The comparison                                                      *)

let engine_tuples db ~auto_reverse path =
  let res =
    Path_exec.run_multipath ~db
      ~params:(fun _ -> None)
      ~mode:Path_exec.Keep_all ~auto_reverse (Ast.M_path path)
  in
  match res.Path_exec.comps with
  | [ c ] ->
      let order =
        List.sort
          (fun a b ->
            compare c.Path_exec.slots.(a).Path_exec.s_step
              c.Path_exec.slots.(b).Path_exec.s_step)
          (List.init (Array.length c.Path_exec.slots) Fun.id)
      in
      let vcols =
        List.filter (fun i -> c.Path_exec.slots.(i).Path_exec.s_kind = `V) order
      in
      List.sort compare
        (Array.to_list
           (Array.map
              (fun row -> List.map (fun i -> row.(i)) vcols)
              c.Path_exec.rows))
  | _ -> failwith "expected one component"

let reference_tuples db path =
  List.sort compare
    (List.map Array.to_list
       (Reference_exec.run_path ~db ~params:(fun _ -> None) path))

let prop_engine_matches_reference =
  QCheck.Test.make ~name:"path executor = brute-force oracle" ~count:150
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun s ->
      let db = build_db s in
      let expected = reference_tuples db s.path in
      engine_tuples db ~auto_reverse:false s.path = expected
      && engine_tuples db ~auto_reverse:true s.path = expected)

(* Variant steps too: replace every named step by [ ] (dropping conditions
   and labels) — both executors must still agree. *)
let strip_to_variant (p : Ast.path) =
  let v (x : Ast.vstep) =
    { x with Ast.v_kind = Ast.V_any; v_cond = None; v_label = None }
  in
  let e (x : Ast.estep) = { x with Ast.e_kind = Ast.E_any; e_cond = None } in
  {
    Ast.head = v p.Ast.head;
    segments =
      List.map
        (function
          | Ast.Seg_step (es, vs) -> Ast.Seg_step (e es, v vs)
          | seg -> seg)
        p.Ast.segments;
  }

let prop_variant_matches_reference =
  QCheck.Test.make ~name:"variant-step executor = oracle" ~count:75
    (QCheck.make ~print:print_scenario gen_scenario)
    (fun s ->
      let db = build_db s in
      let path = strip_to_variant s.path in
      engine_tuples db ~auto_reverse:false path = reference_tuples db path)

(* ------------------------------------------------------------------ *)
(* Regex segments vs an independent reachability oracle                 *)

(* Single-type scenarios: vertices 0..n-1 of type A, eaa edges. The
   oracle computes reachability with plain BFS over an adjacency list —
   no shared code with the engine's memoized round-based closure. *)

type rx_scenario = {
  rx_n : int;
  rx_edges : (int * int) list;
  rx_op : Ast.rx_op;
  rx_start : int;
}

let print_rx s =
  Format.asprintf "n=%d edges=[%s] start=%d op=%s" s.rx_n
    (String.concat ";"
       (List.map (fun (a, b) -> Printf.sprintf "%d>%d" a b) s.rx_edges))
    s.rx_start
    (match s.rx_op with
    | Ast.Rx_star -> "*"
    | Ast.Rx_plus -> "+"
    | Ast.Rx_count k -> Printf.sprintf "{%d}" k)

let gen_rx_scenario =
  let open QCheck.Gen in
  let* n = int_range 2 6 in
  let* edges =
    list_size (int_range 0 12) (pair (int_bound (n - 1)) (int_bound (n - 1)))
  in
  let* op =
    oneof
      [
        return Ast.Rx_star;
        return Ast.Rx_plus;
        map (fun k -> Ast.Rx_count k) (int_bound 4);
      ]
  in
  let* start = int_bound (n - 1) in
  return { rx_n = n; rx_edges = edges; rx_op = op; rx_start = start }

let rx_db s =
  build_db
    {
      xa = List.init s.rx_n (fun i -> i);
      xb = [ 0 ];
      e_aa = s.rx_edges;
      e_ab = [];
      e_ba = [];
      path = { Ast.head = { Ast.v_kind = Ast.V_any; v_label = None;
                            v_cond = None; v_loc = Loc.dummy };
               segments = [] };
    }

(* Oracle: BFS over adjacency; returns the sorted endpoint set. *)
let rx_oracle s =
  let adj = Array.make s.rx_n [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) s.rx_edges;
  match s.rx_op with
  | Ast.Rx_count k ->
      (* exactly k hops, with per-level dedup *)
      let level = ref [ s.rx_start ] in
      for _ = 1 to k do
        level :=
          List.sort_uniq compare
            (List.concat_map (fun v -> adj.(v)) !level)
      done;
      List.sort_uniq compare !level
  | Ast.Rx_star | Ast.Rx_plus ->
      let visited = Array.make s.rx_n false in
      let rec bfs frontier =
        match frontier with
        | [] -> ()
        | v :: rest ->
            let fresh =
              List.filter
                (fun w ->
                  if visited.(w) then false
                  else begin
                    visited.(w) <- true;
                    true
                  end)
                adj.(v)
            in
            bfs (rest @ fresh)
      in
      if s.rx_op = Ast.Rx_star then visited.(s.rx_start) <- true;
      bfs [ s.rx_start ];
      (* '+' includes the start only if it is reachable in >= 1 hop, which
         the BFS from its successors decides; the seeding above covers '*'. *)
      List.filter (fun v -> visited.(v)) (List.init s.rx_n Fun.id)

let rx_engine db s =
  let path =
    {
      Ast.head =
        {
          Ast.v_kind = Ast.V_named "A";
          v_label = None;
          v_cond =
            Some
              (Ast.E_binop
                 ( Ast.Eq,
                   Ast.E_attr (None, "x", Loc.dummy),
                   Ast.E_lit (Ast.L_int s.rx_start, Loc.dummy),
                   Loc.dummy ));
          v_loc = Loc.dummy;
        };
      segments =
        [
          Ast.Seg_regex
            ( [
                ( { Ast.e_kind = Ast.E_named "eaa"; e_dir = Ast.Out;
                    e_label = None; e_cond = None; e_loc = Loc.dummy },
                  { Ast.v_kind = Ast.V_named "A"; v_label = None;
                    v_cond = None; v_loc = Loc.dummy } );
              ],
              s.rx_op,
              Loc.dummy );
        ];
    }
  in
  let res =
    Path_exec.run_multipath ~db
      ~params:(fun _ -> None)
      ~mode:Path_exec.Keep_all (Ast.M_path path)
  in
  match res.Path_exec.comps with
  | [ c ] ->
      (* Vertex x attribute = its index, so recover indices via x. *)
      let endpoint_col = Array.length c.Path_exec.slots - 1 in
      List.sort_uniq compare
        (Array.to_list
           (Array.map
              (fun row ->
                let cell = row.(endpoint_col) in
                match
                  Graql_graph.Vset.attr_by_name
                    (Graql_engine.Pack.vset_of res.Path_exec.universe cell)
                    ~vertex:(Graql_engine.Pack.id cell) "x"
                with
                | Graql_storage.Value.Int x -> x
                | _ -> -1)
              c.Path_exec.rows))
  | _ -> failwith "one component expected"

let prop_regex_matches_bfs =
  QCheck.Test.make ~name:"regex closure = BFS oracle" ~count:200
    (QCheck.make ~print:print_rx gen_rx_scenario)
    (fun s ->
      let db = rx_db s in
      rx_engine db s = rx_oracle s)

let () =
  Alcotest.run "property"
    [
      ( "path-executor",
        [
          QCheck_alcotest.to_alcotest prop_engine_matches_reference;
          QCheck_alcotest.to_alcotest prop_variant_matches_reference;
          QCheck_alcotest.to_alcotest prop_regex_matches_bfs;
        ] );
    ]
