test/test_util.ml: Alcotest Array Fun Graql_util Hashtbl List QCheck QCheck_alcotest String
