test/test_lang.ml: Alcotest Graql_lang Graql_storage List QCheck QCheck_alcotest
