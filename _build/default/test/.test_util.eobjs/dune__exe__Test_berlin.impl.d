test/test_berlin.ml: Alcotest Array Float Graql_berlin Graql_engine Graql_gems Graql_graph Graql_storage Hashtbl List Printf String
