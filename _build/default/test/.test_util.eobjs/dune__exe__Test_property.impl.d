test/test_property.ml: Alcotest Array Format Fun Graql_engine Graql_graph Graql_lang Graql_storage List Option Printf QCheck QCheck_alcotest String
