test/test_gems.ml: Alcotest Array Buffer Bytes Graql_analysis Graql_berlin Graql_engine Graql_gems Graql_ir Graql_lang Graql_parallel Graql_relational Graql_storage List Option Printf String
