test/test_relational.ml: Alcotest Array Fun Graql_parallel Graql_relational Graql_storage List QCheck QCheck_alcotest String
