test/test_analysis.ml: Alcotest Graql_analysis Graql_lang List String
