test/test_parallel.ml: Alcotest Array Buffer Fun Graql_parallel List String
