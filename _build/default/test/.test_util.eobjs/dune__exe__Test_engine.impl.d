test/test_engine.ml: Alcotest Array Fun Graql_engine Graql_graph Graql_lang Graql_parallel Graql_storage List Printf String
