test/test_ir.ml: Alcotest Bytes Char Graql_berlin Graql_ir Graql_lang Graql_util List Printf QCheck QCheck_alcotest String
