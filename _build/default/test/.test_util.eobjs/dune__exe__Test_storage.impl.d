test/test_storage.ml: Alcotest Graql_storage List QCheck QCheck_alcotest String
