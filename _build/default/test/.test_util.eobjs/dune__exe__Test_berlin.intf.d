test/test_berlin.mli:
