test/test_tutorial.ml: Alcotest Filename Graql_analysis Graql_berlin Graql_engine Graql_gems Graql_lang Graql_storage List String Sys
