test/test_gems.mli:
