test/test_graph.ml: Alcotest Array Fun Graql_graph Graql_relational Graql_storage Graql_util List QCheck QCheck_alcotest
