module Pool = Graql_parallel.Domain_pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_pool ?domains f =
  let pool = Pool.create ?domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_run_tasks () =
  with_pool (fun pool ->
      let results = Array.make 20 0 in
      Pool.run_tasks pool
        (List.init 20 (fun i () -> results.(i) <- i * i));
      check "all tasks ran" true
        (Array.to_list results = List.init 20 (fun i -> i * i)))

let test_run_tasks_empty () =
  with_pool (fun pool -> Pool.run_tasks pool [])

let test_exception_propagates () =
  with_pool (fun pool ->
      match
        Pool.run_tasks pool
          [ (fun () -> ()); (fun () -> failwith "boom"); (fun () -> ()) ]
      with
      | () -> Alcotest.fail "expected exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_parallel_for () =
  with_pool (fun pool ->
      let out = Array.make 1000 0 in
      Pool.parallel_for pool ~lo:0 ~hi:1000 (fun i -> out.(i) <- i + 1);
      check_int "sum" (1000 * 1001 / 2) (Array.fold_left ( + ) 0 out))

let test_parallel_for_empty_range () =
  with_pool (fun pool ->
      let hit = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> hit := true);
      check "no iterations" false !hit)

let test_parallel_map () =
  with_pool (fun pool ->
      let a = Array.init 500 Fun.id in
      let b = Pool.parallel_map_array pool (fun x -> x * 2) a in
      check "mapped" true (b = Array.map (fun x -> x * 2) a))

let test_parallel_reduce_deterministic () =
  with_pool (fun pool ->
      (* Order-sensitive merge: string concatenation. Deterministic because
         chunk results merge in chunk order. *)
      let run () =
        Pool.parallel_reduce pool
          ~init:(fun () -> Buffer.create 16)
          ~body:(fun buf i -> Buffer.add_string buf (string_of_int i))
          ~merge:(fun a b ->
            Buffer.add_buffer a b;
            a)
          ~lo:0 ~hi:200
      in
      let expect = String.concat "" (List.init 200 string_of_int) in
      for _ = 1 to 5 do
        Alcotest.(check string) "stable across runs" expect (Buffer.contents (run ()))
      done)

let test_single_domain_pool () =
  with_pool ~domains:1 (fun pool ->
      check_int "size" 1 (Pool.size pool);
      let acc = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> acc := !acc + i);
      check_int "sequential fallback" 4950 !acc)

let test_nested_run_tasks () =
  (* Statement-level parallelism nests operation-level parallelism; the
     help-drain design must not deadlock. *)
  with_pool ~domains:4 (fun pool ->
      let results = Array.make 4 0 in
      Pool.run_tasks pool
        (List.init 4 (fun i () ->
             let acc = ref 0 in
             Pool.parallel_for pool ~lo:0 ~hi:100 (fun j -> acc := !acc + j);
             (* parallel_for chunks may interleave on this counter; use
                reduce for the checked value instead. *)
             let v =
               Pool.parallel_reduce pool
                 ~init:(fun () -> ref 0)
                 ~body:(fun a j -> a := !a + j)
                 ~merge:(fun a b ->
                   a := !a + !b;
                   a)
                 ~lo:0 ~hi:100
             in
             results.(i) <- !v));
      check "nested results" true (Array.for_all (fun v -> v = 4950) results))

let test_parallel_for_chunks_cover () =
  with_pool (fun pool ->
      let seen = Array.make 777 false in
      Pool.parallel_for_chunks pool ~lo:0 ~hi:777 (fun lo hi ->
          for i = lo to hi - 1 do
            seen.(i) <- true
          done);
      check "full coverage" true (Array.for_all Fun.id seen))

let () =
  Alcotest.run "parallel"
    [
      ( "domain_pool",
        [
          Alcotest.test_case "run_tasks" `Quick test_run_tasks;
          Alcotest.test_case "run_tasks empty" `Quick test_run_tasks_empty;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
          Alcotest.test_case "parallel_map" `Quick test_parallel_map;
          Alcotest.test_case "reduce deterministic" `Quick
            test_parallel_reduce_deterministic;
          Alcotest.test_case "single-domain pool" `Quick test_single_domain_pool;
          Alcotest.test_case "nested tasks no deadlock" `Quick test_nested_run_tasks;
          Alcotest.test_case "chunk coverage" `Quick test_parallel_for_chunks_cover;
        ] );
    ]
