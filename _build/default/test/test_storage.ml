module Date = Graql_storage.Date
module Dtype = Graql_storage.Dtype
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Column = Graql_storage.Column
module Table = Graql_storage.Table
module Csv = Graql_storage.Csv
module Catalog = Graql_storage.Table_catalog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Date                                                                *)

let test_date_roundtrip_known () =
  check_int "epoch" 0 (Date.of_ymd 1970 1 1);
  check_str "epoch string" "1970-01-01" (Date.to_string 0);
  check_str "parse/print" "2008-02-29" (Date.to_string (Date.of_string "2008-02-29"));
  check_int "day after epoch" 1 (Date.of_ymd 1970 1 2);
  check_int "before epoch" (-1) (Date.of_ymd 1969 12 31)

let test_date_leap () =
  check "2008 leap" true (Date.is_leap_year 2008);
  check "1900 not leap" false (Date.is_leap_year 1900);
  check "2000 leap" true (Date.is_leap_year 2000);
  check_int "feb 2008" 29 (Date.days_in_month 2008 2);
  check_int "feb 2007" 28 (Date.days_in_month 2007 2);
  Alcotest.check_raises "invalid day" (Invalid_argument "Date.of_ymd: day")
    (fun () -> ignore (Date.of_ymd 2007 2 29))

let test_date_parse_errors () =
  check "bad shape" true (Date.of_string_opt "2008/01/01" = None);
  check "bad month" true (Date.of_string_opt "2008-13-01" = None);
  check "bad day" true (Date.of_string_opt "2008-04-31" = None);
  check "short" true (Date.of_string_opt "2008-1-1" = None);
  check "garbage" true (Date.of_string_opt "not-a-date" = None)

let test_date_ordering () =
  check "later date greater" true
    (Date.of_string "2008-06-01" > Date.of_string "2008-05-31");
  check_int "add_days" 31
    (Date.add_days (Date.of_ymd 2008 1 1) 31 - Date.of_ymd 2008 1 1)

let prop_date_roundtrip =
  QCheck.Test.make ~name:"date ymd <-> days bijection" ~count:500
    QCheck.(triple (int_range 1900 2100) (int_range 1 12) (int_range 1 28))
    (fun (y, m, d) ->
      let t = Date.of_ymd y m d in
      Date.to_ymd t = (y, m, d)
      && Date.of_string (Date.to_string t) = t)

let prop_date_monotone =
  QCheck.Test.make ~name:"next day is +1" ~count:200
    QCheck.(triple (int_range 1950 2050) (int_range 1 12) (int_range 1 27))
    (fun (y, m, d) -> Date.of_ymd y m (d + 1) = Date.of_ymd y m d + 1)

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value_compare () =
  check "int vs float coerce" true (Value.compare (Value.Int 2) (Value.Float 2.0) = 0);
  check "int < float" true (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  check "null smallest" true (Value.compare Value.Null (Value.Bool false) < 0);
  check "str by content" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  check "date by day" true
    (Value.compare (Value.Date 10) (Value.Date 20) < 0)

let test_value_parse () =
  check "empty is null" true (Value.parse Dtype.Int "" = Value.Null);
  check "int" true (Value.parse Dtype.Int "42" = Value.Int 42);
  check "float" true (Value.parse Dtype.Float "2.5" = Value.Float 2.5);
  check "bool true" true (Value.parse Dtype.Bool "true" = Value.Bool true);
  check "bool 0" true (Value.parse Dtype.Bool "0" = Value.Bool false);
  check "varchar" true (Value.parse (Dtype.Varchar 10) "hey" = Value.Str "hey");
  check "date" true
    (Value.parse Dtype.Date "2008-01-02" = Value.Date (Date.of_ymd 2008 1 2));
  Alcotest.check_raises "bad int" (Failure "cannot parse \"x\" as integer")
    (fun () -> ignore (Value.parse Dtype.Int "x"))

let test_value_accessors () =
  check_int "as_int" 7 (Value.as_int (Value.Int 7));
  check "as_float coerces int" true (Value.as_float (Value.Int 3) = 3.0);
  Alcotest.check_raises "as_int on str" (Invalid_argument "Value.as_int")
    (fun () -> ignore (Value.as_int (Value.Str "x")))

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_exclusive 1000.0);
        map (fun s -> Value.Str s) (string_size (int_bound 8));
        map (fun d -> Value.Date d) (int_bound 20000);
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_value_total_order =
  QCheck.Test.make ~name:"value compare is a total order" ~count:500
    QCheck.(triple value_arb value_arb value_arb)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let prop_value_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    QCheck.(pair value_arb value_arb)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let col n t = { Schema.name = n; dtype = t }

let test_schema_basic () =
  let s = Schema.make [ col "id" Dtype.Int; col "name" (Dtype.Varchar 10) ] in
  check_int "arity" 2 (Schema.arity s);
  check "find case-insensitive" true (Schema.find s "NAME" = Some 1);
  check "missing" true (Schema.find s "zzz" = None);
  Alcotest.check_raises "dup" (Invalid_argument "Schema.make: duplicate column \"ID\"")
    (fun () -> ignore (Schema.make [ col "id" Dtype.Int; col "ID" Dtype.Int ]))

let test_schema_concat () =
  let a = Schema.make [ col "id" Dtype.Int; col "x" Dtype.Float ] in
  let b = Schema.make [ col "id" Dtype.Int; col "y" Dtype.Bool ] in
  let c = Schema.concat a b in
  check_int "concat arity" 4 (Schema.arity c);
  check_str "renamed dup" "id'" (Schema.col_name c 2)

let test_schema_prefix () =
  let a = Schema.make [ col "id" Dtype.Int ] in
  let p = Schema.rename_prefix "T" a in
  check_str "prefixed" "T.id" (Schema.col_name p 0)

(* ------------------------------------------------------------------ *)
(* Column                                                              *)

let test_column_typed () =
  let c = Column.create Dtype.Int in
  Column.append c (Value.Int 1);
  Column.append c Value.Null;
  Column.append c (Value.Int 3);
  check_int "length" 3 (Column.length c);
  check "get 0" true (Column.get c 0 = Value.Int 1);
  check "null" true (Column.get c 1 = Value.Null);
  check "is_null" true (Column.is_null c 1);
  check "not null" false (Column.is_null c 2);
  Alcotest.check_raises "type mismatch"
    (Failure "type mismatch: column is integer, value is x") (fun () ->
      Column.append c (Value.Str "x"))

let test_column_varchar_dict () =
  let c = Column.create (Dtype.Varchar 8) in
  Column.append c (Value.Str "aa");
  Column.append c (Value.Str "bb");
  Column.append c (Value.Str "aa");
  check_int "dict reuse" (Column.get_int c 0) (Column.get_int c 2);
  check "ids differ" true (Column.get_int c 0 <> Column.get_int c 1);
  check "intern_id" true (Column.intern_id c "bb" = Some (Column.get_int c 1));
  check "intern miss" true (Column.intern_id c "zz" = None);
  check_str "dict_lookup" "bb" (Column.dict_lookup c (Column.get_int c 1))

let test_column_float_and_coerce () =
  let c = Column.create Dtype.Float in
  Column.append c (Value.Float 1.5);
  Column.append c (Value.Int 2);
  check "int coerced into float col" true (Column.get c 1 = Value.Float 2.0);
  check "get_float" true (Column.get_float c 0 = 1.5)

let test_column_bool_date () =
  let b = Column.create Dtype.Bool in
  Column.append b (Value.Bool true);
  Column.append b (Value.Bool false);
  check "bool roundtrip" true
    (Column.get b 0 = Value.Bool true && Column.get b 1 = Value.Bool false);
  let d = Column.create Dtype.Date in
  Column.append d (Value.Date 12345);
  check "date roundtrip" true (Column.get d 0 = Value.Date 12345)

let test_column_many_nulls () =
  let c = Column.create Dtype.Int in
  for i = 0 to 999 do
    if i mod 3 = 0 then Column.append_null c else Column.append c (Value.Int i)
  done;
  let nulls = ref 0 in
  for i = 0 to 999 do
    if Column.is_null c i then incr nulls
  done;
  check_int "null count" 334 !nulls

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let people_schema =
  Schema.make
    [ col "id" Dtype.Int; col "name" (Dtype.Varchar 16); col "score" Dtype.Float ]

let mk_people () =
  Table.of_rows ~name:"people" people_schema
    [
      [ Value.Int 1; Value.Str "ada"; Value.Float 9.5 ];
      [ Value.Int 2; Value.Str "bob"; Value.Null ];
      [ Value.Int 3; Value.Str "cyd"; Value.Float 7.0 ];
    ]

let test_table_basic () =
  let t = mk_people () in
  check_int "nrows" 3 (Table.nrows t);
  check_int "arity" 3 (Table.arity t);
  check "cell" true (Table.get t ~row:1 ~col:1 = Value.Str "bob");
  check "by name" true (Table.get_by_name t ~row:2 "SCORE" = Value.Float 7.0);
  check "row" true
    (Table.row t 0 = [| Value.Int 1; Value.Str "ada"; Value.Float 9.5 |])

let test_table_arity_error () =
  let t = mk_people () in
  Alcotest.check_raises "arity"
    (Failure "table people: expected 3 values, got 2") (fun () ->
      Table.append_row t [ Value.Int 4; Value.Str "x" ])

let test_table_type_error_context () =
  let t = mk_people () in
  match Table.append_row t [ Value.Str "x"; Value.Str "y"; Value.Null ] with
  | () -> Alcotest.fail "expected failure"
  | exception Failure msg ->
      check "message names table and column" true
        (String.length msg > 0
        && String.sub msg 0 12 = "table people")

let test_table_rename_shares () =
  let t = mk_people () in
  let r = Table.rename t "people2" in
  check_str "renamed" "people2" (Table.name r);
  check_int "same rows" (Table.nrows t) (Table.nrows r)

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let test_csv_parse_basic () =
  let r = Csv.parse_string "a,b,c\n1,2,3\n" in
  check "two records" true (r = [ [ "a"; "b"; "c" ]; [ "1"; "2"; "3" ] ])

let test_csv_quotes () =
  let r = Csv.parse_string "\"a,b\",\"say \"\"hi\"\"\",\"multi\nline\"\n" in
  check "quoted fields" true (r = [ [ "a,b"; "say \"hi\""; "multi\nline" ] ])

let test_csv_crlf_and_empty () =
  let r = Csv.parse_string "a,b\r\n,\r\n" in
  check "crlf + empty fields" true (r = [ [ "a"; "b" ]; [ ""; "" ] ])

let test_csv_no_trailing_newline () =
  let r = Csv.parse_string "a,b\n1,2" in
  check "last record without newline" true (r = [ [ "a"; "b" ]; [ "1"; "2" ] ])

let test_csv_unterminated_quote () =
  Alcotest.check_raises "unterminated" (Failure "CSV: unterminated quoted field")
    (fun () -> ignore (Csv.parse_string "\"oops\n"))

let test_csv_table_roundtrip () =
  let t = mk_people () in
  let doc = Csv.table_to_csv t in
  let t2 = Csv.table_of_csv ~name:"people" people_schema doc in
  check_int "rows preserved" (Table.nrows t) (Table.nrows t2);
  check "cells preserved" true
    (List.for_all
       (fun i -> Table.row t i = Table.row t2 i)
       [ 0; 1; 2 ])

let test_csv_table_errors () =
  Alcotest.check_raises "arity" (Failure "CSV row 2: expected 3 fields, got 2")
    (fun () -> ignore (Csv.table_of_csv ~name:"p" people_schema "id,name,score\n1,x\n"));
  match Csv.table_of_csv ~name:"p" people_schema "id,name,score\nzz,x,1.0\n" with
  | _ -> Alcotest.fail "expected type error"
  | exception Failure msg ->
      check "row/col context" true
        (msg = "CSV row 2, column id: cannot parse \"zz\" as integer")

let csv_field_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; ','; '"'; '\n'; ' '; 'x' ]) (int_bound 12))

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"csv write/parse roundtrip" ~count:300
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 6) (list_size (int_range 1 5) csv_field_gen)))
    (fun records ->
      (* Normalize ragged rows: writer emits exactly what it's given. *)
      Csv.parse_string (Csv.write_string records) = records)

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let test_catalog () =
  let c = Catalog.create () in
  Catalog.add c (mk_people ());
  check "mem case-insensitive" true (Catalog.mem c "PEOPLE");
  check "row_count" true (Catalog.row_count c "people" = Some 3);
  Alcotest.check_raises "dup" (Failure "table \"people\" already exists")
    (fun () -> Catalog.add c (mk_people ()));
  Catalog.replace c (Table.rename (mk_people ()) "people");
  check_int "names stable" 1 (List.length (Catalog.names c));
  Catalog.remove c "people";
  check "removed" false (Catalog.mem c "people")

let () =
  Alcotest.run "storage"
    [
      ( "date",
        [
          Alcotest.test_case "known values" `Quick test_date_roundtrip_known;
          Alcotest.test_case "leap years" `Quick test_date_leap;
          Alcotest.test_case "parse errors" `Quick test_date_parse_errors;
          Alcotest.test_case "ordering" `Quick test_date_ordering;
          QCheck_alcotest.to_alcotest prop_date_roundtrip;
          QCheck_alcotest.to_alcotest prop_date_monotone;
        ] );
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          QCheck_alcotest.to_alcotest prop_value_total_order;
          QCheck_alcotest.to_alcotest prop_value_hash_consistent;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basic" `Quick test_schema_basic;
          Alcotest.test_case "concat renames" `Quick test_schema_concat;
          Alcotest.test_case "prefix" `Quick test_schema_prefix;
        ] );
      ( "column",
        [
          Alcotest.test_case "typed int + nulls" `Quick test_column_typed;
          Alcotest.test_case "varchar dictionary" `Quick test_column_varchar_dict;
          Alcotest.test_case "float coercion" `Quick test_column_float_and_coerce;
          Alcotest.test_case "bool and date" `Quick test_column_bool_date;
          Alcotest.test_case "many nulls" `Quick test_column_many_nulls;
        ] );
      ( "table",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "arity error" `Quick test_table_arity_error;
          Alcotest.test_case "type error context" `Quick test_table_type_error_context;
          Alcotest.test_case "rename shares storage" `Quick test_table_rename_shares;
        ] );
      ( "csv",
        [
          Alcotest.test_case "basic" `Quick test_csv_parse_basic;
          Alcotest.test_case "quoting" `Quick test_csv_quotes;
          Alcotest.test_case "crlf/empty" `Quick test_csv_crlf_and_empty;
          Alcotest.test_case "no trailing newline" `Quick test_csv_no_trailing_newline;
          Alcotest.test_case "unterminated quote" `Quick test_csv_unterminated_quote;
          Alcotest.test_case "table roundtrip" `Quick test_csv_table_roundtrip;
          Alcotest.test_case "typed errors" `Quick test_csv_table_errors;
          QCheck_alcotest.to_alcotest prop_csv_roundtrip;
        ] );
      ("catalog", [ Alcotest.test_case "basic" `Quick test_catalog ]);
    ]
