module Bitset = Graql_util.Bitset
module Int_vec = Graql_util.Int_vec
module Rng = Graql_util.Rng
module Topk = Graql_util.Topk
module Intern = Graql_util.Intern
module Text_table = Graql_util.Text_table

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  check "fresh is empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 99;
  check_int "cardinal" 4 (Bitset.cardinal b);
  check "mem 63" true (Bitset.mem b 63);
  check "not mem 62" false (Bitset.mem b 62);
  Bitset.clear b 63;
  check "cleared" false (Bitset.mem b 63);
  check_int "cardinal after clear" 3 (Bitset.cardinal b)

let test_bitset_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set b 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> ignore (Bitset.mem b (-1)))

let test_bitset_full () =
  let b = Bitset.create_full 13 in
  check_int "all set" 13 (Bitset.cardinal b);
  check_list "iter order" (List.init 13 Fun.id) (Bitset.to_list b);
  Bitset.fill b false;
  check "emptied" true (Bitset.is_empty b)

let test_bitset_ops () =
  let a = Bitset.of_list 20 [ 1; 5; 9; 19 ] in
  let b = Bitset.of_list 20 [ 5; 6; 19 ] in
  let u = Bitset.copy a in
  Bitset.union_into u b;
  check_list "union" [ 1; 5; 6; 9; 19 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  check_list "inter" [ 5; 19 ] (Bitset.to_list i);
  let d = Bitset.copy a in
  Bitset.diff_into d b;
  check_list "diff" [ 1; 9 ] (Bitset.to_list d);
  Alcotest.check_raises "domain mismatch" (Invalid_argument "Bitset: domain mismatch")
    (fun () -> Bitset.union_into (Bitset.create 10) b)

let test_bitset_choose () =
  check "choose empty" true (Bitset.choose (Bitset.create 5) = None);
  check "choose smallest" true
    (Bitset.choose (Bitset.of_list 40 [ 17; 3; 38 ]) = Some 3)

let test_bitset_zero_len () =
  let b = Bitset.create 0 in
  check "empty domain" true (Bitset.is_empty b);
  check_int "cardinal" 0 (Bitset.cardinal b)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset matches set model" ~count:200
    QCheck.(list (pair (int_bound 199) bool))
    (fun ops ->
      let b = Bitset.create 200 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (i, on) ->
          Bitset.assign b i on;
          if on then Hashtbl.replace model i () else Hashtbl.remove model i)
        ops;
      let expect = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) model []) in
      Bitset.to_list b = expect && Bitset.cardinal b = List.length expect)

(* ------------------------------------------------------------------ *)
(* Int_vec                                                             *)

let test_int_vec () =
  let v = Int_vec.create () in
  for i = 0 to 99 do Int_vec.push v (i * 3) done;
  check_int "length" 100 (Int_vec.length v);
  check_int "get 42" 126 (Int_vec.get v 42);
  Int_vec.set v 42 0;
  check_int "set/get" 0 (Int_vec.get v 42);
  check_int "to_array length" 100 (Array.length (Int_vec.to_array v));
  Int_vec.clear v;
  check_int "cleared" 0 (Int_vec.length v)

let test_int_vec_append_sort () =
  let a = Int_vec.of_array [| 5; 3; 5; 1 |] in
  let b = Int_vec.of_array [| 3; 9 |] in
  Int_vec.append a b;
  check_int "appended length" 6 (Int_vec.length a);
  let u = Int_vec.sort_unique a in
  check_list "sort_unique" [ 1; 3; 5; 9 ] (Array.to_list (Int_vec.to_array u))

let test_int_vec_bounds () =
  let v = Int_vec.of_array [| 1 |] in
  Alcotest.check_raises "oob" (Invalid_argument "Int_vec: out of bounds")
    (fun () -> ignore (Int_vec.get v 1))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.make 123 and b = Rng.make 123 in
  let seq r = List.init 50 (fun _ -> Rng.int r 1000) in
  check "same seed, same stream" true (seq a = seq b);
  let c = Rng.make 124 in
  check "different seed differs" false (seq (Rng.make 123) = seq c)

let test_rng_bounds () =
  let r = Rng.make 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.fail "Rng.int out of bounds"
  done;
  for _ = 1 to 1000 do
    let x = Rng.int_in r (-5) 5 in
    if x < -5 || x > 5 then Alcotest.fail "Rng.int_in out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_split_independent () =
  let parent = Rng.make 9 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let s1 = List.init 20 (fun _ -> Rng.int c1 100) in
  let s2 = List.init 20 (fun _ -> Rng.int c2 100) in
  check "split streams differ" false (s1 = s2)

let test_rng_zipf () =
  let r = Rng.make 3 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let k = Rng.zipf r ~n:10 ~s:1.2 in
    if k < 0 || k >= 10 then Alcotest.fail "zipf out of range";
    counts.(k) <- counts.(k) + 1
  done;
  check "rank 0 most frequent" true (counts.(0) > counts.(5));
  check "rank 0 dominates tail" true (counts.(0) > counts.(9) * 2)

let test_rng_shuffle_permutation () =
  let r = Rng.make 77 in
  let a = Array.init 30 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check "shuffle is a permutation" true (sorted = Array.init 30 Fun.id)

(* ------------------------------------------------------------------ *)
(* Topk                                                                *)

let test_topk_basic () =
  let t = Topk.create ~k:3 ~cmp:compare in
  List.iter (Topk.add t) [ 5; 1; 9; 3; 7; 2 ];
  check_list "keeps 3 largest desc" [ 9; 7; 5 ] (Topk.to_sorted_list t)

let test_topk_fewer_than_k () =
  let t = Topk.create ~k:10 ~cmp:compare in
  List.iter (Topk.add t) [ 2; 1 ];
  check_list "all kept" [ 2; 1 ] (Topk.to_sorted_list t)

let test_topk_zero () =
  let t = Topk.create ~k:0 ~cmp:compare in
  Topk.add t 1;
  check_int "k=0 keeps nothing" 0 (Topk.length t)

let prop_topk_matches_sort =
  QCheck.Test.make ~name:"topk = take k of sorted" ~count:200
    QCheck.(pair (int_bound 20) (list small_int))
    (fun (k, l) ->
      let t = Topk.create ~k ~cmp:compare in
      List.iter (Topk.add t) l;
      let expect =
        List.filteri (fun i _ -> i < k) (List.sort (fun a b -> compare b a) l)
      in
      (* Equal elements are interchangeable; compare as multisets via sort *)
      List.sort compare (Topk.to_sorted_list t) = List.sort compare expect)

(* ------------------------------------------------------------------ *)
(* Intern                                                              *)

let test_intern () =
  let p = Intern.create () in
  let a = Intern.intern p "hello" in
  let b = Intern.intern p "world" in
  let a' = Intern.intern p "hello" in
  check_int "stable id" a a';
  check "distinct ids" true (a <> b);
  Alcotest.(check string) "lookup" "world" (Intern.lookup p b);
  check_int "size" 2 (Intern.size p);
  check "find_opt hit" true (Intern.find_opt p "hello" = Some a);
  check "find_opt miss" true (Intern.find_opt p "nope" = None);
  Alcotest.check_raises "lookup oob" (Invalid_argument "Intern.lookup")
    (fun () -> ignore (Intern.lookup p 99))

let test_intern_many () =
  let p = Intern.create () in
  let ids = List.init 1000 (fun i -> Intern.intern p (string_of_int i)) in
  check_list "dense ids" (List.init 1000 Fun.id) ids;
  check "round trips" true
    (List.for_all (fun i -> Intern.lookup p i = string_of_int i)
       (List.init 1000 Fun.id))

(* ------------------------------------------------------------------ *)
(* Text_table                                                          *)

let test_text_table () =
  let s =
    Text_table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  check "contains header" true
    (String.length s > 0 && String.length (List.nth (String.split_on_char '\n' s) 1) > 0);
  let lines = String.split_on_char '\n' s in
  check_int "6 lines" 6 (List.length lines);
  let widths = List.map String.length lines in
  check "all lines same width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_text_table_align () =
  let s =
    Text_table.render
      ~aligns:[| Text_table.Left; Text_table.Right |]
      ~header:[ "x"; "num" ]
      [ [ "a"; "1" ] ]
  in
  check "right aligned" true
    (let lines = String.split_on_char '\n' s in
     let data = List.nth lines 3 in
     (* "| a | ... 1 |" — the 1 hugs the right separator *)
     String.length data > 0
     && data.[String.length data - 3] = '1')

let () =
  Alcotest.run "util"
    [
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "full/fill" `Quick test_bitset_full;
          Alcotest.test_case "set ops" `Quick test_bitset_ops;
          Alcotest.test_case "choose" `Quick test_bitset_choose;
          Alcotest.test_case "zero length" `Quick test_bitset_zero_len;
          QCheck_alcotest.to_alcotest prop_bitset_model;
        ] );
      ( "int_vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_int_vec;
          Alcotest.test_case "append/sort_unique" `Quick test_int_vec_append_sort;
          Alcotest.test_case "bounds" `Quick test_int_vec_bounds;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "topk",
        [
          Alcotest.test_case "basic" `Quick test_topk_basic;
          Alcotest.test_case "fewer than k" `Quick test_topk_fewer_than_k;
          Alcotest.test_case "k = 0" `Quick test_topk_zero;
          QCheck_alcotest.to_alcotest prop_topk_matches_sort;
        ] );
      ( "intern",
        [
          Alcotest.test_case "basic" `Quick test_intern;
          Alcotest.test_case "many strings" `Quick test_intern_many;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "render" `Quick test_text_table;
          Alcotest.test_case "alignment" `Quick test_text_table_align;
        ] );
    ]
