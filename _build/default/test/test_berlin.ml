(* The Berlin scenario end-to-end: the engine's answers for the paper's
   queries must agree with independent oracles computed straight from the
   generated CSV text. *)

module Session = Graql_gems.Session
module Db = Graql_engine.Db
module Script_exec = Graql_engine.Script_exec
module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Subgraph = Graql_graph.Subgraph
module Graph_store = Graql_graph.Graph_store
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Gen = Graql_berlin.Berlin_gen
module Queries = Graql_berlin.Berlin_queries
module Reference = Graql_berlin.Berlin_reference

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sessions : (int * int, Session.t) Hashtbl.t = Hashtbl.create 4

let session ?(seed = 42) ~scale () =
  match Hashtbl.find_opt sessions (seed, scale) with
  | Some s -> s
  | None ->
      let s = Session.create () in
      Gen.ingest_all ~seed ~scale s;
      Hashtbl.replace sessions (seed, scale) s;
      s

let last_table results =
  match List.rev results with
  | (_, Script_exec.O_table t) :: _ -> t
  | _ -> Alcotest.fail "expected table result"

let set_param s name v = Db.set_param (Session.db s) name (Value.Str v)

(* Compare an engine top-k table (id, count) against a full oracle ranking:
   counts must agree positionally, every reported id's count must match the
   oracle, and no omitted id may beat the reported minimum. *)
let check_topk_against_oracle ~what table oracle =
  let k = Table.nrows table in
  let engine =
    List.init k (fun i ->
        ( Value.to_string (Table.get ~row:i ~col:0 table),
          Value.as_int (Table.get ~row:i ~col:1 table) ))
  in
  let oracle_counts = List.map snd oracle in
  let engine_counts = List.map snd engine in
  let expected_counts = List.filteri (fun i _ -> i < k) oracle_counts in
  if engine_counts <> expected_counts then
    Alcotest.failf "%s: count sequence mismatch: engine [%s], oracle [%s]" what
      (String.concat ";" (List.map string_of_int engine_counts))
      (String.concat ";" (List.map string_of_int expected_counts));
  List.iter
    (fun (id, c) ->
      match List.assoc_opt id oracle with
      | Some oc when oc = c -> ()
      | Some oc -> Alcotest.failf "%s: %s has count %d, oracle %d" what id c oc
      | None -> Alcotest.failf "%s: %s not in oracle" what id)
    engine

let scales = [ 1; 2 ]

(* ------------------------------------------------------------------ *)

let test_ingest_counts () =
  let s = session ~scale:1 () in
  let db = Session.db s in
  let counts = Gen.counts ~scale:1 in
  check_int "products" counts.Gen.n_products
    (Table.nrows (Db.find_table_exn db "Products"));
  check_int "offers" counts.Gen.n_offers
    (Table.nrows (Db.find_table_exn db "Offers"));
  check_int "reviews" counts.Gen.n_reviews
    (Table.nrows (Db.find_table_exn db "Reviews"))

let test_views_built () =
  let s = session ~scale:1 () in
  let g = Db.graph (Session.db s) in
  let counts = Gen.counts ~scale:1 in
  check_int "product vertices" counts.Gen.n_products
    (Vset.size (Graph_store.find_vset_exn g "ProductVtx"));
  check_int "review edges" counts.Gen.n_reviews
    (Eset.size (Graph_store.find_eset_exn g "reviewFor"));
  (* Country views are many-to-one. *)
  check "producer country view" true
    (not (Vset.one_to_one (Graph_store.find_vset_exn g "ProducerCountry")))

let test_q2_matches_oracle () =
  List.iter
    (fun scale ->
      let s = session ~scale () in
      let product = Reference.most_offered_product ~scale () in
      set_param s "Product1" product;
      let table = last_table (Session.run_script s Queries.q2) in
      let oracle = Reference.q2_oracle ~scale ~product () in
      check_topk_against_oracle ~what:(Printf.sprintf "q2@%d" scale) table oracle)
    scales

let test_q2_different_seeds () =
  List.iter
    (fun seed ->
      let s = session ~seed ~scale:1 () in
      let product = Reference.most_offered_product ~seed ~scale:1 () in
      set_param s "Product1" product;
      let table = last_table (Session.run_script s Queries.q2) in
      let oracle = Reference.q2_oracle ~seed ~scale:1 ~product () in
      check_topk_against_oracle ~what:(Printf.sprintf "q2 seed %d" seed) table oracle)
    [ 7; 99 ]

let test_q1_matches_oracle () =
  List.iter
    (fun scale ->
      let s = session ~scale () in
      (* Pick the two most common countries so the result is non-empty. *)
      let c1 = "US" and c2 = "IT" in
      set_param s "Country1" c1;
      set_param s "Country2" c2;
      let table = last_table (Session.run_script s Queries.q1) in
      let oracle = Reference.q1_oracle ~scale ~c1 ~c2 () in
      check_topk_against_oracle ~what:(Printf.sprintf "q1@%d" scale) table oracle)
    scales

let test_fig9_context () =
  let s = session ~scale:1 () in
  let product = Reference.most_offered_product ~scale:1 () in
  set_param s "Product1" product;
  let results = Session.run_script s Queries.fig9_type_matching in
  match results with
  | [ (_, Script_exec.O_subgraph sg) ] ->
      let offers, reviews = Reference.product_context ~scale:1 ~product () in
      check_int "offer vertices" offers
        (List.length (Subgraph.vertex_list sg ~vtype:"OfferVtx"));
      check_int "review vertices" reviews
        (List.length (Subgraph.vertex_list sg ~vtype:"ReviewVtx"));
      check_int "the product itself" 1
        (List.length (Subgraph.vertex_list sg ~vtype:"ProductVtx"));
      check_int "edges" (offers + reviews) (Subgraph.total_edges sg)
  | _ -> Alcotest.fail "expected one subgraph"

let test_export_edges_match_oracle () =
  let s = session ~scale:1 () in
  let g = Db.graph (Session.db s) in
  let export = Graph_store.find_eset_exn g "export" in
  let pc = Graph_store.find_vset_exn g "ProducerCountry" in
  let vc = Graph_store.find_vset_exn g "VendorCountry" in
  let engine =
    List.sort_uniq compare
      (List.init (Eset.size export) (fun e ->
           ( Vset.key_string pc (Eset.src export e),
             Vset.key_string vc (Eset.dst export e) )))
  in
  check "pairs equal oracle" true (engine = Reference.export_pairs ~scale:1 ());
  (* Many-to-one edges are deduped: one edge per country pair. *)
  check_int "deduped" (List.length engine) (Eset.size export)

let test_fig10_regex_reach () =
  let s = session ~scale:1 () in
  let product = Reference.most_offered_product ~scale:1 () in
  set_param s "Product1" product;
  let results = Session.run_script s Queries.fig10_regex in
  match List.filter_map (function (_, Script_exec.O_subgraph sg) -> Some sg | _ -> None) results with
  | [ plus; two ] ->
      check "plus reaches types and features" true
        (Subgraph.vertex_list plus ~vtype:"TypeVtx" <> []
        && Subgraph.vertex_list plus ~vtype:"FeatureVtx" <> []);
      (* {2} ⊆ + as vertex sets per type *)
      List.iter
        (fun vt ->
          let sub = Subgraph.vertex_list two ~vtype:vt in
          let sup = Subgraph.vertex_list plus ~vtype:vt in
          check (vt ^ " subset") true (List.for_all (fun v -> List.mem v sup) sub))
        [ "TypeVtx"; "FeatureVtx"; "ProducerVtx" ]
  | _ -> Alcotest.fail "expected two subgraphs"

let test_fig11_capture () =
  let s = session ~scale:1 () in
  let product = Reference.most_offered_product ~scale:1 () in
  set_param s "Product1" product;
  let results = Session.run_script s Queries.fig11_subgraph_capture in
  match
    List.filter_map
      (function (_, Script_exec.O_subgraph sg) -> Some sg | _ -> None)
      results
  with
  | [ full; endpoints ] ->
      let offers, _ = Reference.product_context ~scale:1 ~product () in
      check_int "full has product edges" offers (Subgraph.total_edges full);
      check_int "endpoints has no edges" 0 (Subgraph.total_edges endpoints);
      check_int "same vertices" (Subgraph.total_vertices full)
        (Subgraph.total_vertices endpoints)
  | _ -> Alcotest.fail "expected two subgraphs"

let test_fig12_seeding () =
  let s = session ~scale:1 () in
  set_param s "Country1" "US";
  let results = Session.run_script s Queries.fig12_seeded in
  match
    List.filter_map
      (function (_, Script_exec.O_subgraph sg) -> Some sg | _ -> None)
      results
  with
  | [ seeds; expanded ] ->
      check "seeds only vendors" true (Subgraph.vtypes seeds = [ "vendorvtx" ]);
      check "expansion adds offers and products" true
        (Subgraph.vertex_list expanded ~vtype:"OfferVtx" <> []
        && Subgraph.vertex_list expanded ~vtype:"ProductVtx" <> []);
      (* Every vendor in the expansion was a seed. *)
      let seed_vendors = Subgraph.vertex_list seeds ~vtype:"VendorVtx" in
      check "vendors preserved" true
        (List.for_all
           (fun v -> List.mem v seed_vendors)
           (Subgraph.vertex_list expanded ~vtype:"VendorVtx"))
  | _ -> Alcotest.fail "expected two subgraphs"

let test_fig13_flatten () =
  let s = session ~scale:1 () in
  let product = Reference.most_offered_product ~scale:1 () in
  set_param s "Product1" product;
  let results = Session.run_script s Queries.fig13_into_table in
  let t = last_table results in
  let _, reviews = Reference.product_context ~scale:1 ~product () in
  check "review count matches" true
    (Table.get_by_name t ~row:0 "reviews" = Value.Int reviews)

let test_eq12_only_same_type_edges () =
  let s = session ~scale:1 () in
  let results = Session.run_script s Queries.eq12_structural in
  match results with
  | [ (_, Script_exec.O_subgraph sg) ] ->
      (* subclass is TypeVtx->TypeVtx; export connects two *different*
         country types, so only subclass hops may appear. *)
      check "only subclass edges" true (Subgraph.etypes sg = [ "subclass" ]);
      check "only type vertices" true (Subgraph.vtypes sg = [ "typevtx" ])
  | _ -> Alcotest.fail "expected one subgraph"

(* ------------------------------------------------------------------ *)
(* Extended BI mix                                                     *)

let test_bi4_rating_by_country () =
  let s = session ~scale:1 () in
  let t = last_table (Session.run_script s Queries.bi4_rating_by_country) in
  let oracle = Reference.bi4_oracle ~scale:1 () in
  check_int "one row per country" (List.length oracle) (Table.nrows t);
  List.iteri
    (fun i (country, reviews, avg) ->
      let ec = Value.to_string (Table.get_by_name t ~row:i "country") in
      let er = Value.as_int (Table.get_by_name t ~row:i "reviews") in
      let ea = Value.as_float (Table.get_by_name t ~row:i "avgRating") in
      if ec <> country then
        Alcotest.failf "bi4 row %d: %s vs oracle %s" i ec country;
      check_int (country ^ " reviews") reviews er;
      if Float.abs (ea -. avg) > 1e-9 then
        Alcotest.failf "bi4 %s: avg %f vs oracle %f" country ea avg)
    oracle

let test_bi6_similar_cheaper () =
  let s = session ~scale:1 () in
  let product = Reference.most_offered_product ~scale:1 () in
  set_param s "Product1" product;
  Db.set_param (Session.db s) "MaxPrice" (Value.Float 2000.0);
  let t = last_table (Session.run_script s Queries.bi6_similar_cheaper) in
  let engine =
    List.init (Table.nrows t) (fun i ->
        Value.to_string (Table.get_by_name t ~row:i "product"))
  in
  let oracle =
    Reference.bi6_oracle ~scale:1 ~product ~max_price:2000.0 ()
  in
  check "bi6 equals oracle" true (engine = oracle)

let test_bi8_product_reach () =
  let s = session ~scale:1 () in
  let product = Reference.most_offered_product ~scale:1 () in
  set_param s "Product1" product;
  let t = last_table (Session.run_script s Queries.bi8_product_reach) in
  let engine =
    List.init (Table.nrows t) (fun i ->
        Value.to_string (Table.get_by_name t ~row:i "country"))
  in
  check "bi8 equals oracle" true
    (engine = Reference.bi8_oracle ~scale:1 ~product ())

let test_bi_mix_smoke () =
  (* Every extended query runs clean through the full pipeline and returns
     a non-empty, sensibly-shaped result. *)
  let s = session ~scale:1 () in
  let product = Reference.most_offered_product ~scale:1 () in
  set_param s "Product1" product;
  Db.set_param (Session.db s) "MaxPrice" (Value.Float 5000.0);
  List.iter
    (fun (name, q) ->
      match List.rev (Session.run_script s q) with
      | (_, Script_exec.O_table t) :: _ ->
          if Table.nrows t = 0 then Alcotest.failf "%s returned no rows" name
      | _ -> Alcotest.failf "%s did not end in a table" name)
    Queries.bi_all

let test_determinism_across_runs () =
  (* Same seed+scale: two sessions, byte-identical query results. *)
  let run () =
    let s = Session.create () in
    Gen.ingest_all ~seed:4242 ~scale:1 s;
    let product = Reference.most_offered_product ~seed:4242 ~scale:1 () in
    Db.set_param (Session.db s) "Product1" (Value.Str product);
    let t = last_table (Session.run_script s Queries.q2) in
    List.init (Table.nrows t) (fun i ->
        Array.to_list (Array.map Value.to_string (Table.row t i)))
  in
  check "identical" true (run () = run ())

let test_csv_deterministic () =
  check "generator deterministic" true
    (Gen.csv_files ~seed:1 ~scale:1 () = Gen.csv_files ~seed:1 ~scale:1 ());
  check "seed changes data" true
    (Gen.csv_files ~seed:1 ~scale:1 () <> Gen.csv_files ~seed:2 ~scale:1 ())

let () =
  Alcotest.run "berlin"
    [
      ( "load",
        [
          Alcotest.test_case "ingest counts" `Quick test_ingest_counts;
          Alcotest.test_case "views built" `Quick test_views_built;
          Alcotest.test_case "generator determinism" `Quick test_csv_deterministic;
        ] );
      ( "queries-vs-oracles",
        [
          Alcotest.test_case "Q2 (fig 6)" `Slow test_q2_matches_oracle;
          Alcotest.test_case "Q2 other seeds" `Slow test_q2_different_seeds;
          Alcotest.test_case "Q1 (fig 7)" `Slow test_q1_matches_oracle;
          Alcotest.test_case "fig 9 type matching" `Quick test_fig9_context;
          Alcotest.test_case "fig 4/5 export edges" `Quick
            test_export_edges_match_oracle;
          Alcotest.test_case "fig 10 regex reach" `Quick test_fig10_regex_reach;
          Alcotest.test_case "fig 11 capture modes" `Quick test_fig11_capture;
          Alcotest.test_case "fig 12 seeding" `Quick test_fig12_seeding;
          Alcotest.test_case "fig 13 flatten + post-process" `Quick test_fig13_flatten;
          Alcotest.test_case "eq 12 structural" `Quick test_eq12_only_same_type_edges;
        ] );
      ( "bi-mix",
        [
          Alcotest.test_case "bi4 vs oracle" `Quick test_bi4_rating_by_country;
          Alcotest.test_case "bi6 vs oracle" `Quick test_bi6_similar_cheaper;
          Alcotest.test_case "bi8 vs oracle" `Quick test_bi8_product_reach;
          Alcotest.test_case "whole mix runs" `Quick test_bi_mix_smoke;
        ] );
      ( "determinism",
        [ Alcotest.test_case "rerun identical" `Quick test_determinism_across_runs ] );
    ]
