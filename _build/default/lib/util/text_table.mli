(** Plain-text table rendering for CLI output and benchmark reports. *)

type align = Left | Right

val render :
  ?aligns:align array ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] draws an ASCII table with column widths fitted to
    the content. [aligns] defaults to left for every column. *)

val render_fmt :
  ?aligns:align array ->
  header:string list ->
  string list list ->
  Format.formatter ->
  unit
