lib/util/rng.mli:
