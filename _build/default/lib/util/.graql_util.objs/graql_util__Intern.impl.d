lib/util/intern.ml: Array Hashtbl
