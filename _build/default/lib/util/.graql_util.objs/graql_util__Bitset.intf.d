lib/util/bitset.mli:
