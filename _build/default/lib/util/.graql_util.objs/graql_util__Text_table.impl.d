lib/util/text_table.ml: Array Format List String
