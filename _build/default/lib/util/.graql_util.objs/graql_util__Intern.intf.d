lib/util/intern.mli:
