lib/util/topk.mli:
