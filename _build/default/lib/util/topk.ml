type 'a t = {
  k : int;
  cmp : 'a -> 'a -> int;
  mutable heap : 'a array; (* min-heap of current keepers, heap.(0) smallest *)
  mutable len : int;
}

let create ~k ~cmp =
  if k < 0 then invalid_arg "Topk.create";
  { k; cmp; heap = [||]; len = 0 }

let length t = t.len

let swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.cmp t.heap.(i) t.heap.(p) < 0 then begin
      swap t.heap i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.len && t.cmp t.heap.(l) t.heap.(!m) < 0 then m := l;
  if r < t.len && t.cmp t.heap.(r) t.heap.(!m) < 0 then m := r;
  if !m <> i then begin
    swap t.heap i !m;
    sift_down t !m
  end

let add t x =
  if t.k = 0 then ()
  else if t.len < t.k then begin
    if t.len >= Array.length t.heap then begin
      let cap = max 4 (min t.k (max 4 (2 * Array.length t.heap))) in
      let heap = Array.make cap x in
      Array.blit t.heap 0 heap 0 t.len;
      t.heap <- heap
    end;
    t.heap.(t.len) <- x;
    t.len <- t.len + 1;
    sift_up t (t.len - 1)
  end
  else if t.cmp x t.heap.(0) > 0 then begin
    t.heap.(0) <- x;
    sift_down t 0
  end

let to_sorted_list t =
  let l = ref [] in
  for i = 0 to t.len - 1 do l := t.heap.(i) :: !l done;
  List.sort (fun a b -> t.cmp b a) !l
