type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* OCaml ints are 63-bit; keep 62 bits so the value stays non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in";
  lo + int t (hi - lo + 1)

let float t x =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick";
  a.(int t (Array.length a))

(* Rejection-free inverse-CDF Zipf is costly to set up per call; callers
   generate many samples with the same (n, s), so memoize the CDF. *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 7

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf";
  let cdf =
    match Hashtbl.find_opt zipf_cache (n, s) with
    | Some c -> c
    | None ->
        let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
        let total = Array.fold_left ( +. ) 0.0 w in
        let acc = ref 0.0 in
        let cdf = Array.map (fun x -> acc := !acc +. (x /. total); !acc) w in
        if Hashtbl.length zipf_cache < 64 then Hashtbl.add zipf_cache (n, s) cdf;
        cdf
  in
  let u = float t 1.0 in
  (* Binary search for first index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
