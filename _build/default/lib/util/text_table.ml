type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let widths header rows =
  let ncols = List.length header in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri
      (fun i cell -> if i < ncols then w.(i) <- max w.(i) (String.length cell))
      row
  in
  feed header;
  List.iter feed rows;
  w

let render ?aligns ~header rows =
  let w = widths header rows in
  let ncols = Array.length w in
  let aligns =
    match aligns with Some a -> a | None -> Array.make ncols Left
  in
  let line row =
    let cells =
      List.mapi
        (fun i cell ->
          let a = if i < Array.length aligns then aligns.(i) else Left in
          pad a w.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w))
    ^ "+"
  in
  let body = List.map line rows in
  String.concat "\n" ((sep :: line header :: sep :: body) @ [ sep ])

let render_fmt ?aligns ~header rows ppf =
  Format.pp_print_string ppf (render ?aligns ~header rows)
