(** Bounded top-k selection with a binary min-heap: keeps the [k] largest
    elements under a caller-supplied ordering. Backs the [top n] relational
    operator without sorting whole tables. *)

type 'a t

val create : k:int -> cmp:('a -> 'a -> int) -> 'a t
(** [create ~k ~cmp] keeps the [k] greatest elements w.r.t. [cmp]. [k >= 0]. *)

val add : 'a t -> 'a -> unit
val length : 'a t -> int

val to_sorted_list : 'a t -> 'a list
(** Elements in decreasing order (greatest first). Does not mutate. *)
