type t = {
  table : (string, int) Hashtbl.t;
  mutable rev : string array;
  mutable len : int;
}

let create () = { table = Hashtbl.create 256; rev = Array.make 16 ""; len = 0 }

let intern t s =
  match Hashtbl.find_opt t.table s with
  | Some id -> id
  | None ->
      let id = t.len in
      if id >= Array.length t.rev then begin
        let rev = Array.make (2 * Array.length t.rev) "" in
        Array.blit t.rev 0 rev 0 t.len;
        t.rev <- rev
      end;
      t.rev.(id) <- s;
      t.len <- t.len + 1;
      Hashtbl.add t.table s id;
      id

let find_opt t s = Hashtbl.find_opt t.table s

let lookup t id =
  if id < 0 || id >= t.len then invalid_arg "Intern.lookup";
  t.rev.(id)

let size t = t.len
