(** Deterministic splittable RNG (SplitMix64 core). All synthetic data in
    the repository flows through this module so every run is reproducible
    and independent of domain count. *)

type t

val make : int -> t
(** [make seed] creates a generator from a seed. *)

val split : t -> t
(** Derive an independent stream; the parent advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> bool
val bits64 : t -> int64

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0, n) with exponent [s]; used for skewed
    degree distributions in workload generators. *)

val shuffle : t -> 'a array -> unit
