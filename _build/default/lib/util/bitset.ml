type t = { len : int; words : Bytes.t }

(* One byte per 8 bits; Bytes gives cheap unsafe access and copy. *)

let nbytes len = (len + 7) lsr 3

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; words = Bytes.make (nbytes len) '\000' }

let length t = t.len

let fill t b =
  Bytes.fill t.words 0 (Bytes.length t.words) (if b then '\xff' else '\000');
  (* Keep bits beyond [len] clear so cardinal/iter stay exact. *)
  if b && t.len land 7 <> 0 then begin
    let last = Bytes.length t.words - 1 in
    let keep = (1 lsl (t.len land 7)) - 1 in
    Bytes.unsafe_set t.words last (Char.unsafe_chr keep)
  end

let create_full len =
  let t = create len in
  fill t true;
  t

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  let b = i lsr 3 and m = 1 lsl (i land 7) in
  Bytes.unsafe_set t.words b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.words b) lor m))

let clear t i =
  check t i;
  let b = i lsr 3 and m = 1 lsl (i land 7) in
  Bytes.unsafe_set t.words b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.words b) land lnot m land 0xff))

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.words (i lsr 3)) land (1 lsl (i land 7)) <> 0

let assign t i b = if b then set t i else clear t i

let popcount_byte =
  let tbl = Array.init 256 (fun i ->
      let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
      go i 0)
  in
  fun c -> Array.unsafe_get tbl (Char.code c)

let cardinal t =
  let n = Bytes.length t.words in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + popcount_byte (Bytes.unsafe_get t.words i)
  done;
  !acc

let is_empty t =
  let n = Bytes.length t.words in
  let rec go i = i >= n || (Bytes.unsafe_get t.words i = '\000' && go (i + 1)) in
  go 0

let binop op dst src =
  if dst.len <> src.len then invalid_arg "Bitset: domain mismatch";
  let n = Bytes.length dst.words in
  for i = 0 to n - 1 do
    let a = Char.code (Bytes.unsafe_get dst.words i)
    and b = Char.code (Bytes.unsafe_get src.words i) in
    Bytes.unsafe_set dst.words i (Char.unsafe_chr (op a b land 0xff))
  done

let union_into dst src = binop ( lor ) dst src
let inter_into dst src = binop ( land ) dst src
let diff_into dst src = binop (fun a b -> a land lnot b) dst src

let copy t = { len = t.len; words = Bytes.copy t.words }

let iter f t =
  let n = Bytes.length t.words in
  for b = 0 to n - 1 do
    let w = Char.code (Bytes.unsafe_get t.words b) in
    if w <> 0 then
      for j = 0 to 7 do
        if w land (1 lsl j) <> 0 then f ((b lsl 3) + j)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list len l =
  let t = create len in
  List.iter (set t) l;
  t

let equal a b = a.len = b.len && Bytes.equal a.words b.words

exception Found of int

let choose t =
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i
