(** Fixed-capacity mutable bit sets over [0, length). Used for null bitmaps,
    row selections and per-step vertex marks. *)

type t

val create : int -> t
(** [create n] is an all-zeros bit set with domain [0, n). *)

val create_full : int -> t
(** [create_full n] is an all-ones bit set with domain [0, n). *)

val length : t -> int
(** Domain size, as given at creation. *)

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val assign : t -> int -> bool -> unit

val cardinal : t -> int
(** Number of set bits; O(words). *)

val is_empty : t -> bool

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst <- dst | src]. Domains must match. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] sets [dst <- dst & src]. Domains must match. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] sets [dst <- dst & ~src]. Domains must match. *)

val copy : t -> t
val fill : t -> bool -> unit

val iter : (int -> unit) -> t -> unit
(** Iterate set bits in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val equal : t -> t -> bool

val choose : t -> int option
(** Smallest set bit, if any. *)
