(** The Berlin (BSBM) business-intelligence schema used throughout the
    paper: Appendix A table declarations, Fig. 2 vertex declarations,
    Fig. 3 edge declarations, and the Fig. 4 many-to-one country
    vertices + export edge. *)

val tables_ddl : string
(** Appendix A, verbatim GraQL. *)

val vertices_ddl : string
(** Fig. 2. *)

val edges_ddl : string
(** Fig. 3. *)

val country_ddl : string
(** Fig. 4: [ProducerCountry], [VendorCountry] and the [export] edge
    (reconstructed: the paper shows the declarations partially). *)

val full_ddl : string
(** All of the above, in order. *)

val ingest_script : (string * string) list -> string
(** [ingest_script files] — one [ingest table T file.csv] line per (table,
    filename) pair. *)
