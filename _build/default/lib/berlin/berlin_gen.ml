module Rng = Graql_util.Rng
module Date = Graql_storage.Date

type counts = {
  n_types : int;
  n_features : int;
  n_producers : int;
  n_products : int;
  n_vendors : int;
  n_offers : int;
  n_persons : int;
  n_reviews : int;
  n_product_types : int;
  n_product_features : int;
}

let counts ~scale =
  let scale = max 1 scale in
  let p = 100 * scale in
  {
    n_types = max 8 (p / 20);
    n_features = max 12 (p / 4);
    n_producers = max 5 (p / 20);
    n_products = p;
    n_vendors = max 5 (p / 20);
    n_offers = p * 4;
    n_persons = max 8 (p / 10);
    n_reviews = p * 2;
    n_product_types = 0 (* filled by generation *);
    n_product_features = 0;
  }

let countries =
  [| "US"; "IT"; "FR"; "DE"; "CN"; "CA"; "JP"; "UK"; "ES"; "RU" |]

let words =
  [|
    "alpha"; "bravo"; "delta"; "echo"; "fox"; "golf"; "hotel"; "india";
    "kilo"; "lima"; "mike"; "nova"; "oscar"; "papa"; "quebec"; "romeo";
    "sierra"; "tango"; "ultra"; "victor"; "whisky"; "xray"; "yankee"; "zulu";
  |]

let word rng = Rng.pick rng words

let date_between rng lo hi = Date.to_string (Rng.int_in rng lo hi)

let d2007 = Date.of_ymd 2007 1 1
let d2008_end = Date.of_ymd 2008 12 31

(* CSV building: all generated fields are alphanumeric, so plain
   concatenation is safe; Csv.write_string would also work but this is the
   generator hot path. *)
let doc header rows =
  let buf = Buffer.create (1024 * (1 + List.length rows)) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun fields ->
      Buffer.add_string buf (String.concat "," fields);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let csv_files ?(seed = 42) ~scale () =
  let c = counts ~scale in
  let rng = Rng.make seed in
  let r_types = Rng.split rng in
  let r_features = Rng.split rng in
  let r_producers = Rng.split rng in
  let r_products = Rng.split rng in
  let r_vendors = Rng.split rng in
  let r_offers = Rng.split rng in
  let r_persons = Rng.split rng in
  let r_reviews = Rng.split rng in
  let r_ptypes = Rng.split rng in
  let r_pfeatures = Rng.split rng in

  (* Types: a forest rooted at t0; each later type subclasses an earlier
     one, biased toward low ids, giving a shallow, wide hierarchy. *)
  let types =
    List.init c.n_types (fun i ->
        let parent =
          if i = 0 then "" else Printf.sprintf "t%d" (Rng.zipf r_types ~n:i ~s:1.2)
        in
        [
          Printf.sprintf "t%d" i;
          "ProductType";
          word r_types ^ "-type";
          parent;
          "pub" ^ string_of_int (Rng.int r_types 5);
          date_between r_types d2007 d2008_end;
        ])
  in
  let features =
    List.init c.n_features (fun i ->
        [
          Printf.sprintf "f%d" i;
          "ProductFeature";
          word r_features;
          word r_features ^ " feature";
          "pub" ^ string_of_int (Rng.int r_features 5);
          date_between r_features d2007 d2008_end;
        ])
  in
  let producers =
    List.init c.n_producers (fun i ->
        [
          Printf.sprintf "m%d" i;
          "Producer";
          word r_producers ^ "-corp";
          "maker of things";
          Printf.sprintf "http-m%d" i;
          Rng.pick r_producers countries;
          "pub" ^ string_of_int (Rng.int r_producers 5);
          date_between r_producers d2007 d2008_end;
        ])
  in
  let products =
    List.init c.n_products (fun i ->
        [
          Printf.sprintf "p%d" i;
          "Product";
          word r_products ^ string_of_int i;
          "a fine product";
          Printf.sprintf "m%d" (Rng.zipf r_products ~n:c.n_producers ~s:1.1);
          string_of_int (Rng.int_in r_products 1 2000);
          string_of_int (Rng.int_in r_products 1 2000);
          string_of_int (Rng.int_in r_products 1 2000);
          string_of_int (Rng.int_in r_products 1 2000);
          string_of_int (Rng.int_in r_products 1 2000);
          word r_products;
          word r_products;
          word r_products;
          word r_products;
          word r_products;
          "pub" ^ string_of_int (Rng.int r_products 5);
          date_between r_products d2007 d2008_end;
        ])
  in
  let vendors =
    List.init c.n_vendors (fun i ->
        [
          Printf.sprintf "v%d" i;
          "Vendor";
          word r_vendors ^ "-shop";
          "sells things";
          Printf.sprintf "http-v%d" i;
          Rng.pick r_vendors countries;
          "pub" ^ string_of_int (Rng.int r_vendors 5);
          date_between r_vendors d2007 d2008_end;
        ])
  in
  let offers =
    List.init c.n_offers (fun i ->
        let from = Rng.int_in r_offers d2007 d2008_end in
        [
          Printf.sprintf "o%d" i;
          "Offer";
          Printf.sprintf "p%d" (Rng.zipf r_offers ~n:c.n_products ~s:0.8);
          Printf.sprintf "v%d" (Rng.int r_offers c.n_vendors);
          Printf.sprintf "%.2f" (5.0 +. Rng.float r_offers 9995.0);
          Date.to_string from;
          Date.to_string (Date.add_days from (Rng.int_in r_offers 10 180));
          string_of_int (Rng.int_in r_offers 1 14);
          Printf.sprintf "http-o%d" i;
          "pub" ^ string_of_int (Rng.int r_offers 5);
          date_between r_offers d2007 d2008_end;
        ])
  in
  let persons =
    List.init c.n_persons (fun i ->
        [
          Printf.sprintf "u%d" i;
          "Person";
          word r_persons ^ string_of_int i;
          Printf.sprintf "u%d@mail" i;
          Rng.pick r_persons countries;
          "pub" ^ string_of_int (Rng.int r_persons 5);
          date_between r_persons d2007 d2008_end;
        ])
  in
  let reviews =
    List.init c.n_reviews (fun i ->
        let rating () =
          (* Occasional missing rating, exercising Null columns. *)
          if Rng.int r_reviews 10 = 0 then ""
          else string_of_int (Rng.int_in r_reviews 1 10)
        in
        [
          Printf.sprintf "r%d" i;
          "Review";
          Printf.sprintf "p%d" (Rng.zipf r_reviews ~n:c.n_products ~s:0.9);
          Printf.sprintf "u%d" (Rng.zipf r_reviews ~n:c.n_persons ~s:0.7);
          date_between r_reviews d2007 d2008_end;
          word r_reviews ^ " review";
          "quite good";
          rating ();
          rating ();
          rating ();
          rating ();
          "pub" ^ string_of_int (Rng.int r_reviews 5);
          date_between r_reviews d2007 d2008_end;
        ])
  in
  (* Each product: 1-2 types, 4-12 distinct features. *)
  let product_types =
    List.concat
      (List.init c.n_products (fun i ->
           let n = 1 + Rng.int r_ptypes 2 in
           let t1 = Rng.int r_ptypes c.n_types in
           let t2 = (t1 + 1 + Rng.int r_ptypes (c.n_types - 1)) mod c.n_types in
           List.map
             (fun t ->
               [ Printf.sprintf "p%d" i; Printf.sprintf "t%d" t ])
             (if n = 1 then [ t1 ] else [ t1; t2 ])))
  in
  let product_features =
    List.concat
      (List.init c.n_products (fun i ->
           let n = Rng.int_in r_pfeatures 4 12 in
           let chosen = Hashtbl.create n in
           let rec pick k acc =
             if k = 0 then acc
             else begin
               let f = Rng.zipf r_pfeatures ~n:c.n_features ~s:0.6 in
               if Hashtbl.mem chosen f then pick k acc
               else begin
                 Hashtbl.replace chosen f ();
                 pick (k - 1)
                   ([ Printf.sprintf "p%d" i; Printf.sprintf "f%d" f ] :: acc)
               end
             end
           in
           pick (min n c.n_features) []))
  in
  [
    ( "types.csv",
      doc "id,type,comment,subclassOf,publisher,date" types );
    ("features.csv", doc "id,type,label,comment,publisher,date" features);
    ( "producers.csv",
      doc "id,type,label,comment,homepage,country,publisher,date" producers );
    ( "products.csv",
      doc
        "id,type,label,comment,producer,propertyNumeric_1,propertyNumeric_2,propertyNumeric_3,propertyNumeric_4,propertyNumeric_5,propertyText_1,propertyText_2,propertyText_3,propertyText_4,propertyText_5,publisher,date"
        products );
    ( "vendors.csv",
      doc "id,type,label,comment,homepage,country,publisher,date" vendors );
    ( "offers.csv",
      doc
        "id,type,product,vendor,price,validFrom,validTo,deliveryDays,offerWebPage,publisher,date"
        offers );
    ("persons.csv", doc "id,type,name,mailbox,country,publisher,date" persons);
    ( "reviews.csv",
      doc
        "id,type,reviewFor,reviewer,reviewDate,title,text,ratings_1,ratings_2,ratings_3,ratings_4,publisher,date"
        reviews );
    ("producttypes.csv", doc "product,type" product_types);
    ("productfeatures.csv", doc "product,feature" product_features);
  ]

let table_files =
  [
    ("Types", "types.csv");
    ("Features", "features.csv");
    ("Producers", "producers.csv");
    ("Products", "products.csv");
    ("Vendors", "vendors.csv");
    ("Offers", "offers.csv");
    ("Persons", "persons.csv");
    ("Reviews", "reviews.csv");
    ("ProductTypes", "producttypes.csv");
    ("ProductFeatures", "productfeatures.csv");
  ]

let loader ?seed ~scale () =
  let files = csv_files ?seed ~scale () in
  fun name ->
    match List.assoc_opt (String.lowercase_ascii name) files with
    | Some doc -> doc
    | None -> raise (Sys_error (Printf.sprintf "no generated file %S" name))

let ingest_all ?seed ~scale session =
  let loader = loader ?seed ~scale () in
  let script =
    Berlin_schema.full_ddl ^ "\n" ^ Berlin_schema.ingest_script table_files
  in
  ignore (Graql_gems.Session.run_script ~loader session script)
