(** Independent oracle implementations of the paper's queries, computed
    directly from the generated CSV text with plain OCaml data structures
    — no engine code involved. Tests compare engine results against
    these. *)

val q2_oracle :
  ?seed:int -> scale:int -> product:string -> unit -> (string * int) list
(** All products sharing at least one feature with [product], with the
    number of shared features, sorted by count descending then id. *)

val q1_oracle :
  ?seed:int -> scale:int -> c1:string -> c2:string -> unit ->
  (string * int) list
(** Type-id discussion counts: for each review written by a person from
    [c2] about a product produced in [c1], every (product, type) entry of
    that product contributes one. Sorted by count desc then id. *)

val export_pairs : ?seed:int -> scale:int -> unit -> (string * string) list
(** Distinct (producer country, vendor country) pairs with an offer
    linking them, producer country <> vendor country — the Fig. 4/5
    [export] edges. Sorted. *)

val product_context :
  ?seed:int -> scale:int -> product:string -> unit -> int * int
(** (number of offers, number of reviews) of a product — the Fig. 9
    subgraph's expected composition. *)

val most_offered_product : ?seed:int -> scale:int -> unit -> string
(** A product that definitely has offers and reviews (the most offered
    one) — a convenient %Product1% for tests. *)

val bi4_oracle :
  ?seed:int -> scale:int -> unit -> (string * int * float) list
(** (producer country, review count, average ratings_1 skipping nulls),
    sorted by average descending then country. *)

val bi6_oracle :
  ?seed:int -> scale:int -> product:string -> max_price:float -> unit ->
  string list
(** Sorted product ids sharing a feature with [product] and having an
    offer strictly below [max_price]. *)

val bi8_oracle :
  ?seed:int -> scale:int -> product:string -> unit -> string list
(** Sorted distinct vendor countries offering [product]. *)
