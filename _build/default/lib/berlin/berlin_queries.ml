(* Fig. 6. The paper's figure body is partially garbled in the published
   text; this is the query as described: "select the top 10 products most
   similar to Product 1, rated by the count of features they have in
   common", with the first select producing "a table of product ids, with
   each id repeated for each feature the product has in common". *)
let q2 =
  {|
select y.id from graph
  ProductVtx (id = %Product1%)
  --feature--> def x: FeatureVtx ( )
  <--feature-- def y: ProductVtx (id != %Product1%)
into table T1

select top 10 id, count(*) as groupCount
from table T1
group by id order by groupCount desc
|}

(* Fig. 7, with the reviewFor edge step the figure's text omits between
   ReviewVtx and ProductVtx. *)
let q1 =
  {|
select TypeVtx.id from graph
  PersonVtx (country = %Country2%)
  <--reviewer-- ReviewVtx
  --reviewFor--> foreach y: ProductVtx
  --producer--> ProducerVtx (country = %Country1%)
and
  (y --type--> TypeVtx ( ))
into table T1

select top 10 id, count(*) as groupCount
from table T1
group by id order by groupCount desc
|}

(* Fig. 9: all reviews and offers of a product — both reviewFor and
   product edges arrive at ProductVtx, so a type-matching in-step
   captures OfferVtx and ReviewVtx instances at once. *)
let fig9_type_matching =
  {|
select * from graph
  ProductVtx (id = %Product1%) <--[ ]-- [ ]
into subgraph productContext
|}

(* Fig. 10: variable-length traversal with regular-expression steps. *)
let fig10_regex =
  {|
select * from graph
  ProductVtx (id = %Product1%) ( --[ ]--> [ ] )+
into subgraph reachPlus

select * from graph
  ProductVtx (id = %Product1%) ( --[ ]--> [ ] ){2}
into subgraph reachTwo
|}

(* Fig. 11: full subgraph capture vs. endpoint capture. *)
let fig11_subgraph_capture =
  {|
select * from graph
  OfferVtx ( ) --product--> ProductVtx (id = %Product1%)
into subgraph resultsG

select OfferVtx, ProductVtx from graph
  OfferVtx ( ) --product--> ProductVtx (id = %Product1%)
into subgraph resultsBE
|}

(* Fig. 12: the result of one query seeds the next. *)
let fig12_seeded =
  {|
select VendorVtx from graph
  OfferVtx ( ) --vendor--> VendorVtx (country = %Country1%)
into subgraph resQ1

select * from graph
  resQ1.VendorVtx ( ) <--vendor-- OfferVtx --product--> ProductVtx
into subgraph resQ2
|}

(* Fig. 13: path match flattened into a table, post-processed with the
   relational operators of Table I. *)
let fig13_into_table =
  {|
select * from graph
  ReviewVtx ( ) --reviewFor--> ProductVtx (id = %Product1%)
into table resultsT

select count(*) as reviews, avg(ReviewVtx.ratings_1) as avgRating
from table resultsT
|}

(* Eq. 12: type-independent structural pattern — an edge between two
   vertices of the same type. *)
let eq12_structural =
  {|
select * from graph
  def X: [ ] --[ ]--> X
into subgraph sameTypeHops
|}

let all =
  [
    ("q1", q1);
    ("q2", q2);
    ("fig9_type_matching", fig9_type_matching);
    ("fig10_regex", fig10_regex);
    ("fig11_subgraph_capture", fig11_subgraph_capture);
    ("fig12_seeded", fig12_seeded);
    ("fig13_into_table", fig13_into_table);
    ("eq12_structural", eq12_structural);
  ]

(* ------------------------------------------------------------------ *)
(* Extended BI mix                                                     *)

let bi3_top_vendors =
  {|
select VendorVtx.id as vendor, ProductVtx.id as product from graph
  VendorVtx ( ) <--vendor-- OfferVtx ( ) --product--> ProductVtx ( )
into table VendorProducts

select distinct vendor, product from table VendorProducts into table VP

select top 10 vendor, count(*) as products
from table VP group by vendor order by products desc
|}

let bi4_rating_by_country =
  {|
select ProducerVtx.country as country, ReviewVtx.ratings_1 as rating
from graph
  ReviewVtx ( ) --reviewFor--> ProductVtx ( ) --producer--> ProducerVtx ( )
into table CountryRatings

select country, count(*) as reviews, avg(rating) as avgRating
from table CountryRatings
group by country order by avgRating desc
|}

let bi5_delivery_pricing =
  {|
select deliveryDays, count(*) as offers, min(price) as cheapest,
       avg(price) as typical, max(price) as steepest
from table Offers
group by deliveryDays order by deliveryDays asc
|}

let bi6_similar_cheaper =
  {|
select y.id as product, OfferVtx.price as price from graph
  (ProductVtx (id = %Product1%)
   --feature--> FeatureVtx ( )
   <--feature-- def y: ProductVtx (id != %Product1%))
and
  (OfferVtx (price < %MaxPrice%) --product--> y)
into table SimilarCheaper

select distinct product from table SimilarCheaper order by product
|}

let bi7_top_reviewers =
  {|
select PersonVtx.id as reviewer, ReviewVtx.ratings_1 as rating from graph
  PersonVtx ( ) <--reviewer-- ReviewVtx ( )
into table ReviewerRatings

select top 10 reviewer, count(*) as reviews, avg(rating) as avgRating
from table ReviewerRatings
group by reviewer order by reviews desc
|}

let bi8_product_reach =
  {|
select VendorVtx.country as country from graph
  ProductVtx (id = %Product1%) <--product-- OfferVtx ( ) --vendor--> VendorVtx ( )
into table ReachT

select distinct country from table ReachT order by country
|}

let bi_all =
  [
    ("bi3_top_vendors", bi3_top_vendors);
    ("bi4_rating_by_country", bi4_rating_by_country);
    ("bi5_delivery_pricing", bi5_delivery_pricing);
    ("bi6_similar_cheaper", bi6_similar_cheaper);
    ("bi7_top_reviewers", bi7_top_reviewers);
    ("bi8_product_reach", bi8_product_reach);
  ]
