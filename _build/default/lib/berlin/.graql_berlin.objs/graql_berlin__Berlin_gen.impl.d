lib/berlin/berlin_gen.ml: Berlin_schema Buffer Graql_gems Graql_storage Graql_util Hashtbl List Printf String
