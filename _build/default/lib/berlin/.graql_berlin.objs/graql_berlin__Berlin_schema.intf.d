lib/berlin/berlin_schema.mli:
