lib/berlin/berlin_schema.ml: List Printf String
