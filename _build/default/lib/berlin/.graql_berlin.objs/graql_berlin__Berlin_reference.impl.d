lib/berlin/berlin_reference.ml: Berlin_gen Graql_storage Hashtbl List Option
