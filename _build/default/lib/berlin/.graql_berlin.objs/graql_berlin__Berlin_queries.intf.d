lib/berlin/berlin_queries.mli:
