lib/berlin/berlin_queries.ml:
