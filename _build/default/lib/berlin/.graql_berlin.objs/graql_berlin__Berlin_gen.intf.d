lib/berlin/berlin_gen.mli: Graql_gems
