lib/berlin/berlin_reference.mli:
