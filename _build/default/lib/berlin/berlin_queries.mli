(** The paper's queries as GraQL text, parameterized the way the figures
    write them ([%Product1%], [%Country1%], [%Country2%]). *)

val q2 : string
(** Fig. 6 — Berlin Query 2: the top 10 products most similar to
    [%Product1%], rated by the count of features in common. Produces
    table [T1] then the top-10 summary. *)

val q1 : string
(** Fig. 7 — Berlin Query 1: the top 10 most discussed product categories
    of products from [%Country1%], based on reviews from reviewers in
    [%Country2%]. *)

val fig9_type_matching : string
(** Fig. 9 — the subgraph of all reviews and offers of [%Product1%] via
    type-matching [ ] steps. *)

val fig10_regex : string
(** Fig. 10-style reachability: everything connected to [%Product1%]
    within one-or-more hops of any edge type. *)

val fig11_subgraph_capture : string
(** Fig. 11 — capture full and endpoint subgraphs of a path. *)

val fig12_seeded : string
(** Fig. 12 — use a query's result subgraph to seed a follow-up query. *)

val fig13_into_table : string
(** Fig. 13 — flatten a path match into a table and post-process it
    relationally. *)

val eq12_structural : string
(** Eq. 12 — the purely structural one-hop cycle-shaped query
    [def X: \[ \] --\[ \]--> X]. *)

val all : (string * string) list
(** (name, text) of every query above. *)

(** {1 Extended BI mix}

    The paper uses a subset of the Berlin business-intelligence use case;
    these round it out with the remaining query shapes that exercise the
    language (multipath with shared labels over offers, graph→table
    aggregation pipelines, pure relational reporting). *)

val bi3_top_vendors : string
(** Vendors ranked by distinct products on offer. *)

val bi4_rating_by_country : string
(** Average first rating of reviews, grouped by producer country. *)

val bi5_delivery_pricing : string
(** Offer price statistics per delivery-days class (pure Table I). *)

val bi6_similar_cheaper : string
(** Products sharing a feature with [%Product1%] that have an offer below
    [%MaxPrice%] — an [and]-composition over a shared product label. *)

val bi7_top_reviewers : string
(** Most active reviewers with their average rating. *)

val bi8_product_reach : string
(** Countries of vendors offering [%Product1%]. *)

val bi_all : (string * string) list
