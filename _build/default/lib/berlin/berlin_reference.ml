module Csv = Graql_storage.Csv

let rows ?seed ~scale file =
  let files = Berlin_gen.csv_files ?seed ~scale () in
  match Csv.parse_string (List.assoc file files) with
  | _header :: rows -> rows
  | [] -> []

let field row i = List.nth row i

let q2_oracle ?seed ~scale ~product () =
  let pf = rows ?seed ~scale "productfeatures.csv" in
  let features_of p =
    List.filter_map
      (fun r -> if field r 0 = p then Some (field r 1) else None)
      pf
  in
  let target = features_of product in
  let shared = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let p = field r 0 and f = field r 1 in
      if p <> product && List.mem f target then
        Hashtbl.replace shared p
          (1 + Option.value ~default:0 (Hashtbl.find_opt shared p)))
    pf;
  let l = Hashtbl.fold (fun p c acc -> (p, c) :: acc) shared [] in
  List.sort (fun (pa, ca) (pb, cb) -> if ca <> cb then compare cb ca else compare pa pb) l

let q1_oracle ?seed ~scale ~c1 ~c2 () =
  let persons = rows ?seed ~scale "persons.csv" in
  let producers = rows ?seed ~scale "producers.csv" in
  let products = rows ?seed ~scale "products.csv" in
  let reviews = rows ?seed ~scale "reviews.csv" in
  let ptypes = rows ?seed ~scale "producttypes.csv" in
  let person_country = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace person_country (field r 0) (field r 4)) persons;
  let producer_country = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace producer_country (field r 0) (field r 5)) producers;
  let product_producer = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace product_producer (field r 0) (field r 4)) products;
  let types_of = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let p = field r 0 in
      Hashtbl.replace types_of p
        (field r 1 :: Option.value ~default:[] (Hashtbl.find_opt types_of p)))
    ptypes;
  let counts = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let product = field r 2 and person = field r 3 in
      let person_ok =
        match Hashtbl.find_opt person_country person with
        | Some c -> c = c2
        | None -> false
      in
      let producer_ok =
        match Hashtbl.find_opt product_producer product with
        | Some m -> (
            match Hashtbl.find_opt producer_country m with
            | Some c -> c = c1
            | None -> false)
        | None -> false
      in
      if person_ok && producer_ok then
        List.iter
          (fun t ->
            Hashtbl.replace counts t
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts t)))
          (Option.value ~default:[] (Hashtbl.find_opt types_of product)))
    reviews;
  let l = Hashtbl.fold (fun t c acc -> (t, c) :: acc) counts [] in
  List.sort (fun (ta, ca) (tb, cb) -> if ca <> cb then compare cb ca else compare ta tb) l

let export_pairs ?seed ~scale () =
  let producers = rows ?seed ~scale "producers.csv" in
  let vendors = rows ?seed ~scale "vendors.csv" in
  let products = rows ?seed ~scale "products.csv" in
  let offers = rows ?seed ~scale "offers.csv" in
  let producer_country = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace producer_country (field r 0) (field r 5)) producers;
  let vendor_country = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace vendor_country (field r 0) (field r 5)) vendors;
  let product_producer = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace product_producer (field r 0) (field r 4)) products;
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let product = field r 2 and vendor = field r 3 in
      match
        ( Option.bind
            (Hashtbl.find_opt product_producer product)
            (Hashtbl.find_opt producer_country),
          Hashtbl.find_opt vendor_country vendor )
      with
      | Some pc, Some vc when pc <> vc -> Hashtbl.replace pairs (pc, vc) ()
      | _ -> ())
    offers;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pairs [])

let product_context ?seed ~scale ~product () =
  let offers = rows ?seed ~scale "offers.csv" in
  let reviews = rows ?seed ~scale "reviews.csv" in
  let n_offers =
    List.length (List.filter (fun r -> field r 2 = product) offers)
  in
  let n_reviews =
    List.length (List.filter (fun r -> field r 2 = product) reviews)
  in
  (n_offers, n_reviews)

let most_offered_product ?seed ~scale () =
  let offers = rows ?seed ~scale "offers.csv" in
  let counts = Hashtbl.create 256 in
  List.iter
    (fun r ->
      let p = field r 2 in
      Hashtbl.replace counts p
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts p)))
    offers;
  let best = ref ("p0", -1) in
  Hashtbl.iter
    (fun p c ->
      let bp, bc = !best in
      if c > bc || (c = bc && p < bp) then best := (p, c))
    counts;
  fst !best

let bi4_oracle ?seed ~scale () =
  let producers = rows ?seed ~scale "producers.csv" in
  let products = rows ?seed ~scale "products.csv" in
  let reviews = rows ?seed ~scale "reviews.csv" in
  let producer_country = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace producer_country (field r 0) (field r 5)) producers;
  let product_producer = Hashtbl.create 256 in
  List.iter (fun r -> Hashtbl.replace product_producer (field r 0) (field r 4)) products;
  (* country -> (review rows incl. null ratings, rating sum, non-null count) *)
  let acc = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match
        Option.bind
          (Hashtbl.find_opt product_producer (field r 2))
          (Hashtbl.find_opt producer_country)
      with
      | None -> ()
      | Some country ->
          let n, sum, nn =
            Option.value ~default:(0, 0, 0) (Hashtbl.find_opt acc country)
          in
          let rating = field r 7 in
          let sum, nn =
            if rating = "" then (sum, nn) else (sum + int_of_string rating, nn + 1)
          in
          Hashtbl.replace acc country (n + 1, sum, nn))
    reviews;
  let l =
    Hashtbl.fold
      (fun country (n, sum, nn) out ->
        let avg = if nn = 0 then nan else float_of_int sum /. float_of_int nn in
        (country, n, avg) :: out)
      acc []
  in
  List.sort
    (fun (ca, _, aa) (cb, _, ab) ->
      if aa <> ab then compare ab aa else compare ca cb)
    l

let bi6_oracle ?seed ~scale ~product ~max_price () =
  let shared = List.map fst (q2_oracle ?seed ~scale ~product ()) in
  let offers = rows ?seed ~scale "offers.csv" in
  let cheap = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if float_of_string (field r 4) < max_price then
        Hashtbl.replace cheap (field r 2) ())
    offers;
  List.sort compare (List.filter (Hashtbl.mem cheap) shared)

let bi8_oracle ?seed ~scale ~product () =
  let offers = rows ?seed ~scale "offers.csv" in
  let vendors = rows ?seed ~scale "vendors.csv" in
  let vendor_country = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace vendor_country (field r 0) (field r 5)) vendors;
  let out = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if field r 2 = product then
        match Hashtbl.find_opt vendor_country (field r 3) with
        | Some c -> Hashtbl.replace out c ()
        | None -> ())
    offers;
  List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) out [])
