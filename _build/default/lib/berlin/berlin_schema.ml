(* Appendix A of the paper, verbatim modulo comment syntax. *)
let tables_ddl =
  {|
create table Types(
  id varchar(10),
  type varchar(10), // ProductType
  comment varchar(255),
  subclassOf varchar(10), // Types.id [1..N]
  publisher varchar(10),
  date date
)

create table Features(
  id varchar(10),
  type varchar(10), // ProductFeatures
  label varchar(10),
  comment varchar(255),
  publisher varchar(10),
  date date
)

create table Producers(
  id varchar(10),
  type varchar(10), // Producer
  label varchar(10),
  comment varchar(255),
  homepage varchar(10),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Products(
  id varchar(10),
  type varchar(10), // Product
  label varchar(10),
  comment varchar(255),
  producer varchar(10), // Producers.id
  propertyNumeric_1 integer,
  propertyNumeric_2 integer,
  propertyNumeric_3 integer,
  propertyNumeric_4 integer,
  propertyNumeric_5 integer,
  propertyText_1 varchar(10),
  propertyText_2 varchar(10),
  propertyText_3 varchar(10),
  propertyText_4 varchar(10),
  propertyText_5 varchar(10),
  publisher varchar(10),
  date date
)

create table Vendors(
  id varchar(10),
  type varchar(10), // Vendor
  label varchar(10),
  comment varchar(255),
  homepage varchar(10),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Offers(
  id varchar(10),
  type varchar(10), // Offer
  product varchar(10), // Products.id
  vendor varchar(10), // Vendors.id
  price float,
  validFrom date,
  validTo date,
  deliveryDays integer,
  offerWebPage varchar(10),
  publisher varchar(10),
  date date
)

create table Persons(
  id varchar(10),
  type varchar(10), // Person
  name varchar(10),
  mailbox varchar(10),
  country varchar(10),
  publisher varchar(10),
  date date
)

create table Reviews(
  id varchar(10),
  type varchar(10), // Review
  reviewFor varchar(10), // Products.id
  reviewer varchar(10), // Persons.id
  reviewDate date,
  title varchar(10),
  text varchar(10),
  ratings_1 integer,
  ratings_2 integer,
  ratings_3 integer,
  ratings_4 integer,
  publisher varchar(10),
  date date
)

create table ProductTypes(
  product varchar(10), // Products.id
  type varchar(10) // Types.id
)

create table ProductFeatures(
  product varchar(10), // Products.id
  feature varchar(10) // Features.id
)
|}

(* Fig. 2. *)
let vertices_ddl =
  {|
create vertex TypeVtx(id) from table Types
create vertex FeatureVtx(id) from table Features
create vertex ProducerVtx(id) from table Producers
create vertex ProductVtx(id) from table Products
create vertex VendorVtx(id) from table Vendors
create vertex OfferVtx(id) from table Offers
create vertex PersonVtx(id) from table Persons
create vertex ReviewVtx(id) from table Reviews
|}

(* Fig. 3. *)
let edges_ddl =
  {|
create edge subclass with
vertices (TypeVtx as A, TypeVtx as B)
where A.subclassOf = B.id

create edge producer with
vertices (ProductVtx, ProducerVtx)
where ProductVtx.producer = ProducerVtx.id

create edge type with
vertices (ProductVtx, TypeVtx)
from table ProductTypes
where ProductTypes.product = ProductVtx.id
and ProductTypes.type = TypeVtx.id

create edge feature with
vertices (ProductVtx, FeatureVtx)
from table ProductFeatures
where ProductFeatures.product = ProductVtx.id
and ProductFeatures.feature = FeatureVtx.id

create edge product with
vertices (OfferVtx, ProductVtx)
where OfferVtx.product = ProductVtx.id

create edge vendor with
vertices (OfferVtx, VendorVtx)
where OfferVtx.vendor = VendorVtx.id

create edge reviewFor with
vertices (ReviewVtx, ProductVtx)
where ReviewVtx.reviewFor = ProductVtx.id

create edge reviewer with
vertices (ReviewVtx, PersonVtx)
where ReviewVtx.reviewer = PersonVtx.id
|}

(* Fig. 4 (the paper shows these declarations partially; reconstructed per
   the described semantics: a vertex per unique country code and an edge
   per product produced in one country and offered by a vendor in
   another). *)
let country_ddl =
  {|
create vertex ProducerCountry(country) from table Producers
create vertex VendorCountry(country) from table Vendors

create edge export with
vertices (ProducerCountry as A, VendorCountry as B)
where Products.producer = Producers.id
and Offers.product = Products.id
and Offers.vendor = Vendors.id
and A.country = Producers.country
and B.country = Vendors.country
and Producers.country != Vendors.country
|}

let full_ddl =
  String.concat "\n" [ tables_ddl; vertices_ddl; edges_ddl; country_ddl ]

let ingest_script files =
  String.concat "\n"
    (List.map
       (fun (table, file) -> Printf.sprintf "ingest table %s %s" table file)
       files)
