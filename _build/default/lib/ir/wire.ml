type writer = Buffer.t

let writer () = Buffer.create 256
let contents w = Buffer.to_bytes w

let tag w t =
  if t < 0 || t > 255 then invalid_arg "Wire.tag";
  Buffer.add_char w (Char.chr t)

let varint w n =
  if n < 0 then invalid_arg "Wire.varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char w (Char.chr n)
    else begin
      Buffer.add_char w (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let zigzag w n =
  let u = if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1 in
  varint w u

let float64 w f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char w
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let string w s =
  varint w (String.length s);
  Buffer.add_string w s

let bool w b = tag w (if b then 1 else 0)

type reader = { data : bytes; mutable pos : int }

exception Corrupt of string

let reader data = { data; pos = 0 }
let at_end r = r.pos >= Bytes.length r.data

let byte r =
  if at_end r then raise (Corrupt "unexpected end of IR");
  let c = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  c

let read_tag = byte

let read_varint r =
  let rec go shift acc =
    if shift > 62 then raise (Corrupt "varint too long");
    let b = byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let read_zigzag r =
  let u = read_varint r in
  if u land 1 = 0 then u lsr 1 else -((u + 1) lsr 1)

let read_float64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_string r =
  let len = read_varint r in
  if r.pos + len > Bytes.length r.data then raise (Corrupt "string overruns IR");
  let s = Bytes.sub_string r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_bool r =
  match read_tag r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Corrupt (Printf.sprintf "invalid bool byte %d" n))
