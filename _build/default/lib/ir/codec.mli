(** The binary intermediate representation (Sec. III): "a GraQL script is
    parsed and compiled into a high-level binary IR that is a convenient
    mechanism for moving the query script from the front-end portion of
    the GEMS system to the backend for execution."

    The IR is a compact, versioned, self-describing binary encoding of the
    checked script. [decode (encode s) = s] is property-tested. *)

val magic : string
val version : int

val encode_script : Graql_lang.Ast.script -> bytes
val decode_script : bytes -> Graql_lang.Ast.script
(** Raises {!Wire.Corrupt} on malformed input, including bad magic or an
    unsupported version. *)

val encode_expr : Graql_lang.Ast.expr -> bytes
val decode_expr : bytes -> Graql_lang.Ast.expr
