module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Dtype = Graql_storage.Dtype

let magic = "GRQL"
let version = 1

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let w_loc w (l : Loc.t) =
  Wire.varint w l.line;
  Wire.varint w l.col

let w_option w f = function
  | None -> Wire.tag w 0
  | Some x ->
      Wire.tag w 1;
      f x

let w_list w f l =
  Wire.varint w (List.length l);
  List.iter f l

let binop_code = function
  | Ast.Eq -> 0
  | Ast.Ne -> 1
  | Ast.Lt -> 2
  | Ast.Le -> 3
  | Ast.Gt -> 4
  | Ast.Ge -> 5
  | Ast.Add -> 6
  | Ast.Sub -> 7
  | Ast.Mul -> 8
  | Ast.Div -> 9
  | Ast.Mod -> 10
  | Ast.And -> 11
  | Ast.Or -> 12
  | Ast.Like -> 13

let binop_of_code = function
  | 0 -> Ast.Eq
  | 1 -> Ast.Ne
  | 2 -> Ast.Lt
  | 3 -> Ast.Le
  | 4 -> Ast.Gt
  | 5 -> Ast.Ge
  | 6 -> Ast.Add
  | 7 -> Ast.Sub
  | 8 -> Ast.Mul
  | 9 -> Ast.Div
  | 10 -> Ast.Mod
  | 11 -> Ast.And
  | 12 -> Ast.Or
  | 13 -> Ast.Like
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad binop code %d" n))

let w_lit w = function
  | Ast.L_int i ->
      Wire.tag w 0;
      Wire.zigzag w i
  | Ast.L_float f ->
      Wire.tag w 1;
      Wire.float64 w f
  | Ast.L_string s ->
      Wire.tag w 2;
      Wire.string w s
  | Ast.L_bool b ->
      Wire.tag w 3;
      Wire.bool w b
  | Ast.L_null -> Wire.tag w 4

let r_lit r =
  match Wire.read_tag r with
  | 0 -> Ast.L_int (Wire.read_zigzag r)
  | 1 -> Ast.L_float (Wire.read_float64 r)
  | 2 -> Ast.L_string (Wire.read_string r)
  | 3 -> Ast.L_bool (Wire.read_bool r)
  | 4 -> Ast.L_null
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad literal tag %d" n))

let rec w_expr w = function
  | Ast.E_lit (l, loc) ->
      Wire.tag w 0;
      w_lit w l;
      w_loc w loc
  | Ast.E_param (p, loc) ->
      Wire.tag w 1;
      Wire.string w p;
      w_loc w loc
  | Ast.E_attr (q, a, loc) ->
      Wire.tag w 2;
      w_option w (Wire.string w) q;
      Wire.string w a;
      w_loc w loc
  | Ast.E_binop (op, a, b, loc) ->
      Wire.tag w 3;
      Wire.tag w (binop_code op);
      w_expr w a;
      w_expr w b;
      w_loc w loc
  | Ast.E_unop (Ast.Not, a, loc) ->
      Wire.tag w 4;
      w_expr w a;
      w_loc w loc
  | Ast.E_unop (Ast.Neg, a, loc) ->
      Wire.tag w 5;
      w_expr w a;
      w_loc w loc
  | Ast.E_is_null (a, negated, loc) ->
      Wire.tag w 6;
      Wire.bool w negated;
      w_expr w a;
      w_loc w loc
  | Ast.E_call (f, args, loc) ->
      Wire.tag w 7;
      Wire.string w f;
      w_list w
        (function
          | Ast.A_star -> Wire.tag w 0
          | Ast.A_expr e ->
              Wire.tag w 1;
              w_expr w e)
        args;
      w_loc w loc

let r_loc r =
  let line = Wire.read_varint r in
  let col = Wire.read_varint r in
  { Loc.line; col }

let r_option r f =
  match Wire.read_tag r with
  | 0 -> None
  | 1 -> Some (f ())
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad option tag %d" n))

let r_list r f =
  let n = Wire.read_varint r in
  List.init n (fun _ -> f ())

let rec r_expr r =
  match Wire.read_tag r with
  | 0 ->
      let l = r_lit r in
      Ast.E_lit (l, r_loc r)
  | 1 ->
      let p = Wire.read_string r in
      Ast.E_param (p, r_loc r)
  | 2 ->
      let q = r_option r (fun () -> Wire.read_string r) in
      let a = Wire.read_string r in
      Ast.E_attr (q, a, r_loc r)
  | 3 ->
      let op = binop_of_code (Wire.read_tag r) in
      let a = r_expr r in
      let b = r_expr r in
      Ast.E_binop (op, a, b, r_loc r)
  | 4 ->
      let a = r_expr r in
      Ast.E_unop (Ast.Not, a, r_loc r)
  | 5 ->
      let a = r_expr r in
      Ast.E_unop (Ast.Neg, a, r_loc r)
  | 6 ->
      let negated = Wire.read_bool r in
      let a = r_expr r in
      Ast.E_is_null (a, negated, r_loc r)
  | 7 ->
      let f = Wire.read_string r in
      let args =
        r_list r (fun () ->
            match Wire.read_tag r with
            | 0 -> Ast.A_star
            | 1 -> Ast.A_expr (r_expr r)
            | n -> raise (Wire.Corrupt (Printf.sprintf "bad call arg tag %d" n)))
      in
      Ast.E_call (f, args, r_loc r)
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad expr tag %d" n))

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

let w_label w = function
  | Ast.Set_label n ->
      Wire.tag w 0;
      Wire.string w n
  | Ast.Each_label n ->
      Wire.tag w 1;
      Wire.string w n

let r_label r =
  match Wire.read_tag r with
  | 0 -> Ast.Set_label (Wire.read_string r)
  | 1 -> Ast.Each_label (Wire.read_string r)
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad label tag %d" n))

let w_vstep w (v : Ast.vstep) =
  (match v.v_kind with
  | Ast.V_named n ->
      Wire.tag w 0;
      Wire.string w n
  | Ast.V_any -> Wire.tag w 1
  | Ast.V_seeded (g, vt) ->
      Wire.tag w 2;
      Wire.string w g;
      Wire.string w vt);
  w_option w (w_label w) v.v_label;
  w_option w (w_expr w) v.v_cond;
  w_loc w v.v_loc

let r_vstep r =
  let v_kind =
    match Wire.read_tag r with
    | 0 -> Ast.V_named (Wire.read_string r)
    | 1 -> Ast.V_any
    | 2 ->
        let g = Wire.read_string r in
        let vt = Wire.read_string r in
        Ast.V_seeded (g, vt)
    | n -> raise (Wire.Corrupt (Printf.sprintf "bad vstep tag %d" n))
  in
  let v_label = r_option r (fun () -> r_label r) in
  let v_cond = r_option r (fun () -> r_expr r) in
  let v_loc = r_loc r in
  { Ast.v_kind; v_label; v_cond; v_loc }

let w_estep w (e : Ast.estep) =
  (match e.e_kind with
  | Ast.E_named n ->
      Wire.tag w 0;
      Wire.string w n
  | Ast.E_any -> Wire.tag w 1);
  Wire.tag w (match e.e_dir with Ast.Out -> 0 | Ast.In -> 1);
  w_option w (w_label w) e.e_label;
  w_option w (w_expr w) e.e_cond;
  w_loc w e.e_loc

let r_estep r =
  let e_kind =
    match Wire.read_tag r with
    | 0 -> Ast.E_named (Wire.read_string r)
    | 1 -> Ast.E_any
    | n -> raise (Wire.Corrupt (Printf.sprintf "bad estep tag %d" n))
  in
  let e_dir =
    match Wire.read_tag r with
    | 0 -> Ast.Out
    | 1 -> Ast.In
    | n -> raise (Wire.Corrupt (Printf.sprintf "bad direction tag %d" n))
  in
  let e_label = r_option r (fun () -> r_label r) in
  let e_cond = r_option r (fun () -> r_expr r) in
  let e_loc = r_loc r in
  { Ast.e_kind; e_dir; e_label; e_cond; e_loc }

let w_segment w = function
  | Ast.Seg_step (e, v) ->
      Wire.tag w 0;
      w_estep w e;
      w_vstep w v
  | Ast.Seg_regex (body, op, loc) ->
      Wire.tag w 1;
      w_list w
        (fun (e, v) ->
          w_estep w e;
          w_vstep w v)
        body;
      (match op with
      | Ast.Rx_star -> Wire.tag w 0
      | Ast.Rx_plus -> Wire.tag w 1
      | Ast.Rx_count n ->
          Wire.tag w 2;
          Wire.varint w n);
      w_loc w loc

let r_segment r =
  match Wire.read_tag r with
  | 0 ->
      let e = r_estep r in
      let v = r_vstep r in
      Ast.Seg_step (e, v)
  | 1 ->
      let body =
        r_list r (fun () ->
            let e = r_estep r in
            let v = r_vstep r in
            (e, v))
      in
      let op =
        match Wire.read_tag r with
        | 0 -> Ast.Rx_star
        | 1 -> Ast.Rx_plus
        | 2 -> Ast.Rx_count (Wire.read_varint r)
        | n -> raise (Wire.Corrupt (Printf.sprintf "bad regex op tag %d" n))
      in
      let loc = r_loc r in
      Ast.Seg_regex (body, op, loc)
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad segment tag %d" n))

let w_path w (p : Ast.path) =
  w_vstep w p.head;
  w_list w (w_segment w) p.segments

let r_path r =
  let head = r_vstep r in
  let segments = r_list r (fun () -> r_segment r) in
  { Ast.head; segments }

let rec w_multipath w = function
  | Ast.M_path p ->
      Wire.tag w 0;
      w_path w p
  | Ast.M_and (a, b) ->
      Wire.tag w 1;
      w_multipath w a;
      w_multipath w b
  | Ast.M_or (a, b) ->
      Wire.tag w 2;
      w_multipath w a;
      w_multipath w b

let rec r_multipath r =
  match Wire.read_tag r with
  | 0 -> Ast.M_path (r_path r)
  | 1 ->
      let a = r_multipath r in
      let b = r_multipath r in
      Ast.M_and (a, b)
  | 2 ->
      let a = r_multipath r in
      let b = r_multipath r in
      Ast.M_or (a, b)
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad multipath tag %d" n))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let w_dtype w = function
  | Dtype.Bool -> Wire.tag w 0
  | Dtype.Int -> Wire.tag w 1
  | Dtype.Float -> Wire.tag w 2
  | Dtype.Date -> Wire.tag w 3
  | Dtype.Varchar n ->
      Wire.tag w 4;
      Wire.varint w n

let r_dtype r =
  match Wire.read_tag r with
  | 0 -> Dtype.Bool
  | 1 -> Dtype.Int
  | 2 -> Dtype.Float
  | 3 -> Dtype.Date
  | 4 -> Dtype.Varchar (Wire.read_varint r)
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad dtype tag %d" n))

let w_into w = function
  | Ast.Into_table n ->
      Wire.tag w 0;
      Wire.string w n
  | Ast.Into_subgraph n ->
      Wire.tag w 1;
      Wire.string w n
  | Ast.Into_nothing -> Wire.tag w 2

let r_into r =
  match Wire.read_tag r with
  | 0 -> Ast.Into_table (Wire.read_string r)
  | 1 -> Ast.Into_subgraph (Wire.read_string r)
  | 2 -> Ast.Into_nothing
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad into tag %d" n))

let w_target w = function
  | Ast.T_star -> Wire.tag w 0
  | Ast.T_expr (e, alias) ->
      Wire.tag w 1;
      w_expr w e;
      w_option w (Wire.string w) alias

let r_target r =
  match Wire.read_tag r with
  | 0 -> Ast.T_star
  | 1 ->
      let e = r_expr r in
      let alias = r_option r (fun () -> Wire.read_string r) in
      Ast.T_expr (e, alias)
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad target tag %d" n))

let w_endpoint w (e : Ast.vertex_endpoint) =
  Wire.string w e.ve_type;
  w_option w (Wire.string w) e.ve_alias

let r_endpoint r =
  let ve_type = Wire.read_string r in
  let ve_alias = r_option r (fun () -> Wire.read_string r) in
  { Ast.ve_type; ve_alias }

let w_stmt w = function
  | Ast.Create_table { ct_name; ct_cols; ct_loc } ->
      Wire.tag w 0;
      Wire.string w ct_name;
      w_list w
        (fun (c : Ast.col_decl) ->
          Wire.string w c.cd_name;
          w_dtype w c.cd_type;
          w_loc w c.cd_loc)
        ct_cols;
      w_loc w ct_loc
  | Ast.Create_vertex { cv_name; cv_key; cv_from; cv_where; cv_loc } ->
      Wire.tag w 1;
      Wire.string w cv_name;
      w_list w (Wire.string w) cv_key;
      Wire.string w cv_from;
      w_option w (w_expr w) cv_where;
      w_loc w cv_loc
  | Ast.Create_edge { ce_name; ce_src; ce_dst; ce_from; ce_where; ce_loc } ->
      Wire.tag w 2;
      Wire.string w ce_name;
      w_endpoint w ce_src;
      w_endpoint w ce_dst;
      w_option w (Wire.string w) ce_from;
      w_option w (w_expr w) ce_where;
      w_loc w ce_loc
  | Ast.Ingest { ing_table; ing_file; ing_loc } ->
      Wire.tag w 3;
      Wire.string w ing_table;
      Wire.string w ing_file;
      w_loc w ing_loc
  | Ast.Select_graph { sg_targets; sg_path; sg_into; sg_loc } ->
      Wire.tag w 4;
      w_list w (w_target w) sg_targets;
      w_multipath w sg_path;
      w_into w sg_into;
      w_loc w sg_loc
  | Ast.Select_table st ->
      Wire.tag w 5;
      Wire.bool w st.st_distinct;
      w_option w (Wire.varint w) st.st_top;
      w_list w (w_target w) st.st_targets;
      (match st.st_from with
      | Ast.From_table (n, alias) ->
          Wire.tag w 0;
          Wire.string w n;
          w_option w (Wire.string w) alias
      | Ast.From_join (srcs, where) ->
          Wire.tag w 1;
          w_list w
            (fun (n, alias) ->
              Wire.string w n;
              w_option w (Wire.string w) alias)
            srcs;
          w_option w (w_expr w) where);
      w_option w (w_expr w) st.st_where;
      w_list w
        (fun (q, c) ->
          w_option w (Wire.string w) q;
          Wire.string w c)
        st.st_group_by;
      w_list w
        (fun (e, d) ->
          w_expr w e;
          Wire.tag w (match d with Ast.Asc -> 0 | Ast.Desc -> 1))
        st.st_order_by;
      w_into w st.st_into;
      w_loc w st.st_loc
  | Ast.Set_param { sp_name; sp_value; sp_loc } ->
      Wire.tag w 6;
      Wire.string w sp_name;
      w_lit w sp_value;
      w_loc w sp_loc

let r_stmt r =
  match Wire.read_tag r with
  | 0 ->
      let ct_name = Wire.read_string r in
      let ct_cols =
        r_list r (fun () ->
            let cd_name = Wire.read_string r in
            let cd_type = r_dtype r in
            let cd_loc = r_loc r in
            { Ast.cd_name; cd_type; cd_loc })
      in
      Ast.Create_table { ct_name; ct_cols; ct_loc = r_loc r }
  | 1 ->
      let cv_name = Wire.read_string r in
      let cv_key = r_list r (fun () -> Wire.read_string r) in
      let cv_from = Wire.read_string r in
      let cv_where = r_option r (fun () -> r_expr r) in
      Ast.Create_vertex { cv_name; cv_key; cv_from; cv_where; cv_loc = r_loc r }
  | 2 ->
      let ce_name = Wire.read_string r in
      let ce_src = r_endpoint r in
      let ce_dst = r_endpoint r in
      let ce_from = r_option r (fun () -> Wire.read_string r) in
      let ce_where = r_option r (fun () -> r_expr r) in
      Ast.Create_edge { ce_name; ce_src; ce_dst; ce_from; ce_where; ce_loc = r_loc r }
  | 3 ->
      let ing_table = Wire.read_string r in
      let ing_file = Wire.read_string r in
      Ast.Ingest { ing_table; ing_file; ing_loc = r_loc r }
  | 4 ->
      let sg_targets = r_list r (fun () -> r_target r) in
      let sg_path = r_multipath r in
      let sg_into = r_into r in
      Ast.Select_graph { sg_targets; sg_path; sg_into; sg_loc = r_loc r }
  | 5 ->
      let st_distinct = Wire.read_bool r in
      let st_top = r_option r (fun () -> Wire.read_varint r) in
      let st_targets = r_list r (fun () -> r_target r) in
      let st_from =
        match Wire.read_tag r with
        | 0 ->
            let n = Wire.read_string r in
            let alias = r_option r (fun () -> Wire.read_string r) in
            Ast.From_table (n, alias)
        | 1 ->
            let srcs =
              r_list r (fun () ->
                  let n = Wire.read_string r in
                  let alias = r_option r (fun () -> Wire.read_string r) in
                  (n, alias))
            in
            let where = r_option r (fun () -> r_expr r) in
            Ast.From_join (srcs, where)
        | n -> raise (Wire.Corrupt (Printf.sprintf "bad from tag %d" n))
      in
      let st_where = r_option r (fun () -> r_expr r) in
      let st_group_by =
        r_list r (fun () ->
            let q = r_option r (fun () -> Wire.read_string r) in
            let c = Wire.read_string r in
            (q, c))
      in
      let st_order_by =
        r_list r (fun () ->
            let e = r_expr r in
            let d =
              match Wire.read_tag r with
              | 0 -> Ast.Asc
              | 1 -> Ast.Desc
              | n -> raise (Wire.Corrupt (Printf.sprintf "bad order tag %d" n))
            in
            (e, d))
      in
      let st_into = r_into r in
      let st_loc = r_loc r in
      Ast.Select_table
        {
          st_distinct;
          st_top;
          st_targets;
          st_from;
          st_where;
          st_group_by;
          st_order_by;
          st_into;
          st_loc;
        }
  | 6 ->
      let sp_name = Wire.read_string r in
      let sp_value = r_lit r in
      Ast.Set_param { sp_name; sp_value; sp_loc = r_loc r }
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad statement tag %d" n))

(* ------------------------------------------------------------------ *)

let encode_script script =
  let w = Wire.writer () in
  String.iter (fun c -> Wire.tag w (Char.code c)) magic;
  Wire.varint w version;
  Wire.varint w (List.length script);
  List.iter (w_stmt w) script;
  Wire.contents w

let check_header r =
  String.iter
    (fun c ->
      if Wire.read_tag r <> Char.code c then
        raise (Wire.Corrupt "bad IR magic"))
    magic;
  let v = Wire.read_varint r in
  if v <> version then
    raise (Wire.Corrupt (Printf.sprintf "unsupported IR version %d" v))

let decode_script data =
  let r = Wire.reader data in
  check_header r;
  let n = Wire.read_varint r in
  let stmts = List.init n (fun _ -> r_stmt r) in
  if not (Wire.at_end r) then raise (Wire.Corrupt "trailing bytes in IR");
  stmts

let encode_expr e =
  let w = Wire.writer () in
  w_expr w e;
  Wire.contents w

let decode_expr data =
  let r = Wire.reader data in
  let e = r_expr r in
  if not (Wire.at_end r) then raise (Wire.Corrupt "trailing bytes in IR");
  e
