(** Low-level binary encoding primitives for the GraQL IR: LEB128-style
    varints, length-prefixed strings, tag bytes. *)

type writer

val writer : unit -> writer
val contents : writer -> bytes
val tag : writer -> int -> unit
(** One byte, 0..255. *)

val varint : writer -> int -> unit
(** Unsigned LEB128; requires non-negative. *)

val zigzag : writer -> int -> unit
(** Signed values (zigzag + varint). *)

val float64 : writer -> float -> unit
val string : writer -> string -> unit
val bool : writer -> bool -> unit

type reader

exception Corrupt of string

val reader : bytes -> reader
val at_end : reader -> bool
val read_tag : reader -> int
val read_varint : reader -> int
val read_zigzag : reader -> int
val read_float64 : reader -> float
val read_string : reader -> string
val read_bool : reader -> bool
