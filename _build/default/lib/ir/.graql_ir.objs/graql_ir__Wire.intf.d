lib/ir/wire.mli:
