lib/ir/wire.ml: Buffer Bytes Char Int64 Printf String
