lib/ir/codec.ml: Char Graql_lang Graql_storage List Printf String Wire
