lib/ir/codec.mli: Graql_lang
