type t = {
  ds_vertices : int;
  ds_edges : int;
  ds_min : int;
  ds_max : int;
  ds_avg : float;
  ds_p50 : int;
  ds_p90 : int;
  ds_p99 : int;
  ds_isolated : int;
}

let of_csr csr =
  let n = Csr.nvertices csr in
  if n = 0 then
    {
      ds_vertices = 0; ds_edges = 0; ds_min = 0; ds_max = 0; ds_avg = 0.0;
      ds_p50 = 0; ds_p90 = 0; ds_p99 = 0; ds_isolated = 0;
    }
  else begin
    let degrees = Array.init n (Csr.degree csr) in
    Array.sort compare degrees;
    let pct p =
      (* Nearest-rank percentile over the sorted degrees. *)
      let rank = int_of_float (Float.of_int n *. p /. 100.0 +. 0.5) in
      degrees.(min (n - 1) (max 0 (rank - 1)))
    in
    let isolated = ref 0 in
    Array.iter (fun d -> if d = 0 then incr isolated) degrees;
    {
      ds_vertices = n;
      ds_edges = Csr.nedges csr;
      ds_min = degrees.(0);
      ds_max = degrees.(n - 1);
      ds_avg = Csr.avg_degree csr;
      ds_p50 = pct 50.0;
      ds_p90 = pct 90.0;
      ds_p99 = pct 99.0;
      ds_isolated = !isolated;
    }
  end

let to_string s =
  Printf.sprintf
    "V=%d E=%d degree min/avg/max %d/%.2f/%d p50/p90/p99 %d/%d/%d isolated %d"
    s.ds_vertices s.ds_edges s.ds_min s.ds_avg s.ds_max s.ds_p50 s.ds_p90
    s.ds_p99 s.ds_isolated

let pp ppf s = Format.pp_print_string ppf (to_string s)
