module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema

type t = {
  name : string;
  key_schema : Schema.t;
  keys : Value.t array array; (* vertex id -> key tuple *)
  key_index : (string, int) Hashtbl.t;
  attr_table : Table.t;
  attr_rows : int array; (* vertex id -> row in attr_table *)
  one_to_one : bool;
  source_table : Table.t;
}

let make ~name ~key_schema ~keys ~key_index ~attr_table ~attr_rows ~one_to_one
    ~source_table =
  { name; key_schema; keys; key_index; attr_table; attr_rows; one_to_one; source_table }

let name t = t.name
let size t = Array.length t.keys
let key_schema t = t.key_schema
let one_to_one t = t.one_to_one
let source_table t = t.source_table
let attr_table t = t.attr_table
let attr_schema t = Table.schema t.attr_table
let attr_row t v = t.attr_rows.(v)

let attr t ~vertex ~col = Table.get t.attr_table ~row:t.attr_rows.(vertex) ~col

let attr_by_name t ~vertex name =
  Table.get_by_name t.attr_table ~row:t.attr_rows.(vertex) name

let key_values t v = t.keys.(v)

let key_of_values kvals =
  String.concat "\x00" (Array.to_list (Array.map Value.to_string kvals))

let key_string t v =
  let kvals = t.keys.(v) in
  if Array.length kvals = 1 then Value.to_string kvals.(0)
  else "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string kvals)) ^ ")"

let find_by_key_string t key = Hashtbl.find_opt t.key_index key

let find_by_key t values =
  find_by_key_string t (key_of_values (Array.of_list values))
