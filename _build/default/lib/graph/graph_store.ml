type t = {
  vsets : (string, Vset.t) Hashtbl.t;
  esets : (string, Eset.t) Hashtbl.t;
  mutable vorder : string list; (* reversed insertion order *)
  mutable eorder : string list;
}

let norm = String.lowercase_ascii

let create () =
  { vsets = Hashtbl.create 16; esets = Hashtbl.create 16; vorder = []; eorder = [] }

let check_free t name =
  let key = norm name in
  if Hashtbl.mem t.vsets key || Hashtbl.mem t.esets key then
    failwith (Printf.sprintf "graph entity %S already exists" name)

let add_vset t v =
  check_free t (Vset.name v);
  Hashtbl.add t.vsets (norm (Vset.name v)) v;
  t.vorder <- norm (Vset.name v) :: t.vorder

let add_eset t e =
  check_free t (Eset.name e);
  Hashtbl.add t.esets (norm (Eset.name e)) e;
  t.eorder <- norm (Eset.name e) :: t.eorder

let find_vset t name = Hashtbl.find_opt t.vsets (norm name)

let find_vset_exn t name =
  match find_vset t name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "no such vertex type: %s" name)

let find_eset t name = Hashtbl.find_opt t.esets (norm name)

let find_eset_exn t name =
  match find_eset t name with
  | Some e -> e
  | None -> failwith (Printf.sprintf "no such edge type: %s" name)

let vset_names t =
  List.rev_map (fun k -> Vset.name (Hashtbl.find t.vsets k)) t.vorder

let eset_names t =
  List.rev_map (fun k -> Eset.name (Hashtbl.find t.esets k)) t.eorder

let esets_filtered t pred =
  List.filter pred
    (List.rev_map (fun k -> Hashtbl.find t.esets k) t.eorder)

let esets_between t ~src ~dst =
  esets_filtered t (fun e ->
      norm (Eset.src_type e) = norm src && norm (Eset.dst_type e) = norm dst)

let esets_from t ~src =
  esets_filtered t (fun e -> norm (Eset.src_type e) = norm src)

let esets_into t ~dst =
  esets_filtered t (fun e -> norm (Eset.dst_type e) = norm dst)

let total_vertices t =
  Hashtbl.fold (fun _ v acc -> acc + Vset.size v) t.vsets 0

let total_edges t = Hashtbl.fold (fun _ e acc -> acc + Eset.size e) t.esets 0

let stats_row t =
  let vrows =
    List.rev_map
      (fun k ->
        let v = Hashtbl.find t.vsets k in
        [ "vertex"; Vset.name v; string_of_int (Vset.size v); "-" ])
      t.vorder
  in
  let erows =
    List.rev_map
      (fun k ->
        let e = Hashtbl.find t.esets k in
        [
          "edge";
          Printf.sprintf "%s (%s -> %s)" (Eset.name e) (Eset.src_type e)
            (Eset.dst_type e);
          string_of_int (Eset.size e);
          Printf.sprintf "%.2f" (Csr.avg_degree (Eset.forward e));
        ])
      t.eorder
  in
  vrows @ erows
