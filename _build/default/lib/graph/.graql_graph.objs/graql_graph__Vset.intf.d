lib/graph/vset.mli: Graql_storage Hashtbl
