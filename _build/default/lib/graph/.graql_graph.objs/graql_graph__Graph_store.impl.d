lib/graph/graph_store.ml: Csr Eset Hashtbl List Printf String Vset
