lib/graph/eset.ml: Array Csr Graql_storage Printf
