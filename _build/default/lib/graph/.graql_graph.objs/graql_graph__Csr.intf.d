lib/graph/csr.mli:
