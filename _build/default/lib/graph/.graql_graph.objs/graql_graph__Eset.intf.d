lib/graph/eset.mli: Csr Graql_storage
