lib/graph/degree_stats.mli: Csr Format
