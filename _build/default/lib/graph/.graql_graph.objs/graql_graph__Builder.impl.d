lib/graph/builder.ml: Array Eset Graql_relational Graql_storage Graql_util Hashtbl List Vset
