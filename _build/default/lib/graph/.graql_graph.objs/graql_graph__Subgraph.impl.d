lib/graph/subgraph.ml: Graql_util Hashtbl List Printf String
