lib/graph/subgraph.mli: Graql_util
