lib/graph/builder.mli: Eset Graql_parallel Graql_relational Graql_storage Vset
