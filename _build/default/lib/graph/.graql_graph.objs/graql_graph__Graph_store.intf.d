lib/graph/graph_store.mli: Eset Vset
