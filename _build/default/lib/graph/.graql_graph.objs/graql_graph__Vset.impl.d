lib/graph/vset.ml: Array Graql_storage Hashtbl String
