lib/graph/degree_stats.ml: Array Csr Float Format Printf
