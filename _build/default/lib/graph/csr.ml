type t = {
  nvertices : int;
  offsets : int array; (* length nvertices + 1 *)
  nbr : int array; (* length nedges: destination vertex *)
  eid : int array; (* length nedges: edge id *)
}

let build ~nvertices ~src ~dst =
  let nedges = Array.length src in
  if Array.length dst <> nedges then invalid_arg "Csr.build: length mismatch";
  let counts = Array.make (nvertices + 1) 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= nvertices then invalid_arg "Csr.build: vertex out of range";
      counts.(s + 1) <- counts.(s + 1) + 1)
    src;
  for i = 1 to nvertices do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let offsets = Array.copy counts in
  let nbr = Array.make nedges 0 and eid = Array.make nedges 0 in
  (* counts now doubles as the write cursor per vertex. *)
  for e = 0 to nedges - 1 do
    let s = src.(e) in
    let pos = counts.(s) in
    nbr.(pos) <- dst.(e);
    eid.(pos) <- e;
    counts.(s) <- pos + 1
  done;
  { nvertices; offsets; nbr; eid }

let nvertices t = t.nvertices
let nedges t = Array.length t.nbr

let degree t v =
  if v < 0 || v >= t.nvertices then invalid_arg "Csr.degree";
  t.offsets.(v + 1) - t.offsets.(v)

let iter_neighbors t v f =
  if v < 0 || v >= t.nvertices then invalid_arg "Csr.iter_neighbors";
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f ~dst:(Array.unsafe_get t.nbr i) ~eid:(Array.unsafe_get t.eid i)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  iter_neighbors t v (fun ~dst ~eid -> acc := f !acc ~dst ~eid);
  !acc

let neighbors t v =
  let lo = t.offsets.(v) and hi = t.offsets.(v + 1) in
  Array.init (hi - lo) (fun i -> (t.nbr.(lo + i), t.eid.(lo + i)))

let max_degree t =
  let m = ref 0 in
  for v = 0 to t.nvertices - 1 do
    m := max !m (degree t v)
  done;
  !m

let avg_degree t =
  if t.nvertices = 0 then 0.0
  else float_of_int (nedges t) /. float_of_int t.nvertices
