(** Constructing vertex and edge views from tables — the executable form
    of Eq. 1 (vertex creation) and Eq. 2 (edge creation). *)

module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Row_expr = Graql_relational.Row_expr

val build_vertices :
  ?pool:Graql_parallel.Domain_pool.t ->
  name:string ->
  source:Table.t ->
  key_cols:int list ->
  ?cond:Row_expr.t ->
  unit ->
  Vset.t
(** Eq. 1: σ over the source, then one vertex per distinct key tuple.
    Rows with any Null key column produce no vertex. If every selected key
    tuple is unique, the type is one-to-one and all source columns become
    attributes; otherwise many-to-one with key-only attributes. *)

val build_edges :
  ?pool:Graql_parallel.Domain_pool.t ->
  name:string ->
  src:Vset.t ->
  dst:Vset.t ->
  driving:Table.t ->
  src_key:int list ->
  dst_key:int list ->
  ?cond:Row_expr.t ->
  ?dedupe:bool ->
  ?keep_attrs:bool ->
  unit ->
  Eset.t
(** Eq. 2 in its general form. [driving] is the relation enumerating
    candidate edges — the associated table when a [from table] clause is
    present, or a join the caller prepared (vertex-table join, or the
    many-to-one multi-way join of Fig. 4/5). [src_key]/[dst_key] are the
    driving columns holding the endpoint keys; rows whose key does not
    identify an existing endpoint vertex are dropped. [dedupe] (default
    false) collapses duplicate (src, dst) pairs — the Fig. 5 many-to-one
    semantics. [keep_attrs] (default true) retains the driving relation as
    the edge attribute table. *)
