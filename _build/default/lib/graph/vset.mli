(** A built vertex type: a *view* over a source table (Eq. 1).

    Vertex instances are dense ids [0, size). One-to-one vertex types
    (each instance is one source row) expose every source column as an
    attribute; many-to-one types (several rows collapse to one instance,
    e.g. [ProducerCountry] from distinct country codes) expose only the
    key columns — exactly the visibility rule in Sec. II-A. *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema

type t

val name : t -> string
val size : t -> int
val key_schema : t -> Schema.t
val one_to_one : t -> bool
val source_table : t -> Table.t

val attr_schema : t -> Schema.t
(** Schema of the attributes visible on instances of this type. *)

val attr : t -> vertex:int -> col:int -> Value.t
(** Read attribute [col] (an index into [attr_schema]) of a vertex. *)

val attr_by_name : t -> vertex:int -> string -> Value.t
val key_values : t -> int -> Value.t array
val key_string : t -> int -> string
(** Canonical display of the key, single values unwrapped. *)

val find_by_key : t -> Value.t list -> int option
(** Vertex id for a key tuple. *)

val find_by_key_string : t -> string -> int option
(** Vertex id for a canonical key string (see {!key_of_values}). *)

val attr_row : t -> int -> int
(** Backing row in [attr_table] for a vertex (hot path for compiled
    conditions). *)

val attr_table : t -> Table.t

(** Construction — used by {!Builder}. *)
val make :
  name:string ->
  key_schema:Schema.t ->
  keys:Value.t array array ->
  key_index:(string, int) Hashtbl.t ->
  attr_table:Table.t ->
  attr_rows:int array ->
  one_to_one:bool ->
  source_table:Table.t ->
  t

val key_of_values : Value.t array -> string
(** The canonical hash key for a key tuple (shared with Builder). *)
