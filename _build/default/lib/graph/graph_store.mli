(** The overall graph G = (V, E): vertex types partition V, edge types
    partition E (Sec. II-A1). Central registry used by the planner and the
    path executor. *)

type t

val create : unit -> t
val add_vset : t -> Vset.t -> unit
(** Raises [Failure] on duplicate name (vertex and edge namespaces are
    shared, matching the catalog's single entity namespace). *)

val add_eset : t -> Eset.t -> unit
val find_vset : t -> string -> Vset.t option
val find_vset_exn : t -> string -> Vset.t
val find_eset : t -> string -> Eset.t option
val find_eset_exn : t -> string -> Eset.t
val vset_names : t -> string list
val eset_names : t -> string list

val esets_between : t -> src:string -> dst:string -> Eset.t list
(** All edge types with the given source and destination vertex types —
    the ⋃ⱼ Eⱼ(Va, Vb) of Sec. II-A1, used by variant steps. *)

val esets_from : t -> src:string -> Eset.t list
val esets_into : t -> dst:string -> Eset.t list

val total_vertices : t -> int
val total_edges : t -> int

val stats_row : t -> string list list
(** One row per entity type: kind, name, size, avg degree — the catalog
    metadata of Sec. III. *)
