(** Query results as (possibly disconnected) subgraphs (Sec. II-C):
    per-vertex-type sets of vertex ids and per-edge-type sets of edge ids
    of an underlying {!Graph_store}. *)

type t

val empty : string -> t
(** [empty name] — a named, empty subgraph. *)

val name : t -> string
val add_vertices : t -> vtype:string -> Graql_util.Bitset.t -> unit
(** Union the ids into the subgraph's set for that vertex type. *)

val add_vertex_list : t -> vtype:string -> int list -> size:int -> unit
val add_edges : t -> etype:string -> int list -> unit
val vertices : t -> vtype:string -> Graql_util.Bitset.t option
val vertex_list : t -> vtype:string -> int list
val edges : t -> etype:string -> int list
val vtypes : t -> string list
val etypes : t -> string list
val total_vertices : t -> int
val total_edges : t -> int

val union : name:string -> t -> t -> t
(** Or-composition of query results (Sec. II-B3). *)

val summary : t -> string
