(** Degree-distribution summaries — the dynamic catalog statistics of
    Sec. III-B: "statistical properties of the degree distribution of a
    vertex type with respect to an edge type (e.g. how many outgoing edges
    of type Ei are there for instances of vertex type Vj)". The planner's
    cardinality estimates and capacity planning both read these. *)

type t = {
  ds_vertices : int;
  ds_edges : int;
  ds_min : int;
  ds_max : int;
  ds_avg : float;
  ds_p50 : int;
  ds_p90 : int;
  ds_p99 : int;
  ds_isolated : int;  (** vertices with degree 0 *)
}

val of_csr : Csr.t -> t
(** Out-degree stats of a forward CSR; pass a reverse CSR for in-degrees. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
