module Bitset = Graql_util.Bitset

type t = {
  name : string;
  vsets : (string, Bitset.t) Hashtbl.t;
  esets : (string, (int, unit) Hashtbl.t) Hashtbl.t;
}

let norm = String.lowercase_ascii

let empty name = { name; vsets = Hashtbl.create 8; esets = Hashtbl.create 8 }
let name t = t.name

let add_vertices t ~vtype bits =
  let key = norm vtype in
  match Hashtbl.find_opt t.vsets key with
  | Some existing ->
      if Bitset.length existing <> Bitset.length bits then
        invalid_arg "Subgraph.add_vertices: domain mismatch";
      Bitset.union_into existing bits
  | None -> Hashtbl.add t.vsets key (Bitset.copy bits)

let add_vertex_list t ~vtype ids ~size =
  add_vertices t ~vtype (Bitset.of_list size ids)

let add_edges t ~etype ids =
  let key = norm etype in
  let set =
    match Hashtbl.find_opt t.esets key with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.add t.esets key s;
        s
  in
  List.iter (fun e -> Hashtbl.replace set e ()) ids

let vertices t ~vtype = Hashtbl.find_opt t.vsets (norm vtype)

let vertex_list t ~vtype =
  match vertices t ~vtype with
  | Some bits -> Bitset.to_list bits
  | None -> []

let edges t ~etype =
  match Hashtbl.find_opt t.esets (norm etype) with
  | Some set -> List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) set [])
  | None -> []

let vtypes t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.vsets [])

let etypes t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.esets [])

let total_vertices t =
  Hashtbl.fold (fun _ bits acc -> acc + Bitset.cardinal bits) t.vsets 0

let total_edges t = Hashtbl.fold (fun _ set acc -> acc + Hashtbl.length set) t.esets 0

let union ~name a b =
  let out = empty name in
  let add_from src =
    Hashtbl.iter (fun vtype bits -> add_vertices out ~vtype bits) src.vsets;
    Hashtbl.iter
      (fun etype set ->
        add_edges out ~etype (Hashtbl.fold (fun e () acc -> e :: acc) set []))
      src.esets
  in
  add_from a;
  add_from b;
  out

let summary t =
  Printf.sprintf "subgraph %s: %d vertices (%s), %d edges (%s)" t.name
    (total_vertices t)
    (String.concat ", " (vtypes t))
    (total_edges t)
    (String.concat ", " (etypes t))
