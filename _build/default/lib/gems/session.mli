(** The full GEMS pipeline for one client session (Sec. III):

    parse → static analysis against the catalog (front-end server) →
    compile to binary IR → "ship" to the backend (encode + decode) →
    dynamic planning and execution on the backend → results.

    Timings of each phase are recorded, so benchmarks can report front-end
    vs. backend cost separately. *)

module Ast = Graql_lang.Ast

type phase_times = {
  mutable t_parse : float;
  mutable t_check : float;
  mutable t_encode : float;
  mutable t_decode : float;
  mutable t_execute : float;
}

type t

val create : ?pool:Graql_parallel.Domain_pool.t -> ?strict:bool -> unit -> t
(** [strict] (default true) refuses to execute scripts with static
    analysis errors. Warnings never block. *)

val db : t -> Graql_engine.Db.t
val last_diagnostics : t -> Graql_analysis.Diag.t list
val phase_times : t -> phase_times
val ir_bytes_shipped : t -> int
(** Total IR bytes moved front-end → backend so far. *)

exception Rejected of Graql_analysis.Diag.t list
(** Raised in strict mode when static analysis finds errors. *)

val check : t -> string -> Graql_analysis.Diag.t list
(** Static analysis only — catalog metadata, no data access. *)

val run_script :
  ?loader:(string -> string) ->
  ?parallel:bool ->
  t ->
  string ->
  (Ast.stmt * Graql_engine.Script_exec.outcome) list
(** The full pipeline on GraQL source text. *)

val run_ir :
  ?loader:(string -> string) ->
  ?parallel:bool ->
  t ->
  bytes ->
  (Ast.stmt * Graql_engine.Script_exec.outcome) list
(** Backend entry point: execute an already-compiled IR blob. *)

val catalog_rows : t -> string list list
(** Server catalog listing: kind, name, size — what clients can browse. *)

val degree_report : t -> string list list
(** Per edge type: name, out-degree and in-degree distribution summaries —
    the dynamic statistics of Sec. III-B the planner consults. Forces the
    graph views to be built. *)
