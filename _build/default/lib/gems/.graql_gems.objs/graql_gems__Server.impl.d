lib/gems/server.ml: Graql_lang Hashtbl List Printf Session
