lib/gems/server.mli: Graql_engine Graql_lang Graql_parallel Session
