lib/gems/shard.mli: Graql_parallel Graql_relational Graql_storage
