lib/gems/cluster.mli: Graql_engine
