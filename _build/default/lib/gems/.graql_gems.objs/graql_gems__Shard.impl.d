lib/gems/shard.ml: Array Graql_parallel Graql_relational Graql_storage Graql_util List
