lib/gems/session.mli: Graql_analysis Graql_engine Graql_lang Graql_parallel
