lib/gems/cluster.ml: Array Graql_engine Graql_graph Graql_storage Graql_util List Printf
