lib/gems/session.ml: Bytes Graql_analysis Graql_engine Graql_graph Graql_ir Graql_lang List Unix
