(** Simulated cluster backend: range-partitioned table shards executed by
    domains.

    GEMS holds tables in the aggregated DRAM of cluster nodes and runs
    scans/joins node-parallel. Here, a {!t} assigns each table a list of
    row ranges ("shards"); operations run one task per shard on the domain
    pool and merge per-shard results in shard order, so results are
    deterministic for any shard count. *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value

type t

val create : ?shards:int -> Graql_parallel.Domain_pool.t -> t
(** [shards] defaults to the pool size. *)

val shards : t -> int
val pool : t -> Graql_parallel.Domain_pool.t

val ranges : t -> Table.t -> (int * int) list
(** The row ranges ([lo, hi)) composing the table, one per shard; empty
    shards included so placement is stable. *)

val parallel_select :
  t -> Table.t -> Graql_relational.Row_expr.t -> int array
(** Shard-parallel filter; row ids in ascending order. *)

val parallel_count :
  t -> Table.t -> Graql_relational.Row_expr.t -> int

val parallel_scan :
  t ->
  Table.t ->
  init:(unit -> 'acc) ->
  row:('acc -> int -> unit) ->
  merge:('acc -> 'acc -> 'acc) ->
  'acc
(** General sharded fold: [row] feeds each row id of a shard into that
    shard's private accumulator; accumulators merge in shard order. *)
