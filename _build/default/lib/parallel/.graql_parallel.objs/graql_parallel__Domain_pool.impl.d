lib/parallel/domain_pool.ml: Array Condition Domain List Mutex Queue
