module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype

type agg =
  | Count_star
  | Count of int
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

type state = {
  mutable count : int;
  mutable sum_i : int;
  mutable sum_f : float;
  mutable saw_float : bool;
  mutable min_v : Value.t;
  mutable max_v : Value.t;
}

let fresh_state () =
  {
    count = 0;
    sum_i = 0;
    sum_f = 0.0;
    saw_float = false;
    min_v = Value.Null;
    max_v = Value.Null;
  }

let feed st v =
  if v <> Value.Null then begin
    st.count <- st.count + 1;
    (match v with
    | Value.Int i -> st.sum_i <- st.sum_i + i
    | Value.Float f ->
        st.saw_float <- true;
        st.sum_f <- st.sum_f +. f
    | _ -> ());
    if st.min_v = Value.Null || Value.compare v st.min_v < 0 then st.min_v <- v;
    if st.max_v = Value.Null || Value.compare v st.max_v > 0 then st.max_v <- v
  end

let sum_value st =
  if st.count = 0 then Value.Null
  else if st.saw_float then Value.Float (st.sum_f +. float_of_int st.sum_i)
  else Value.Int st.sum_i

let finish agg (star_count, st) =
  match agg with
  | Count_star -> Value.Int star_count
  | Count _ -> Value.Int st.count
  | Sum _ -> sum_value st
  | Avg _ ->
      if st.count = 0 then Value.Null
      else
        let total = st.sum_f +. float_of_int st.sum_i in
        Value.Float (total /. float_of_int st.count)
  | Min _ -> st.min_v
  | Max _ -> st.max_v

let source_col = function
  | Count_star -> None
  | Count c | Sum c | Avg c | Min c | Max c -> Some c

let output_dtype table agg =
  let schema = Table.schema table in
  match agg with
  | Count_star | Count _ -> Dtype.Int
  | Avg _ -> Dtype.Float
  | Sum c -> Schema.col_dtype schema c
  | Min c | Max c -> Schema.col_dtype schema c

let group_by ?name table ~keys ~aggs =
  let schema = Table.schema table in
  let out_cols =
    List.map
      (fun k ->
        { Schema.name = Schema.col_name schema k; dtype = Schema.col_dtype schema k })
      keys
    @ List.map
        (fun (agg, alias) -> { Schema.name = alias; dtype = output_dtype table agg })
        aggs
  in
  let out_schema = Schema.make out_cols in
  let name = match name with Some n -> n | None -> Table.name table in
  let out = Table.create ~name out_schema in
  (* group key -> (key values, star count ref, per-agg states) *)
  let groups : (string, Value.t array * int ref * state array) Hashtbl.t =
    Hashtbl.create 256
  in
  let order = ref [] in
  let nagg = List.length aggs in
  let agg_arr = Array.of_list (List.map fst aggs) in
  Table.iter_rows
    (fun r ->
      let kvals =
        Array.of_list (List.map (fun k -> Table.get table ~row:r ~col:k) keys)
      in
      let key =
        String.concat "\x00"
          (Array.to_list (Array.map Value.to_string kvals))
      in
      let _, star, states =
        match Hashtbl.find_opt groups key with
        | Some g -> g
        | None ->
            let g = (kvals, ref 0, Array.init nagg (fun _ -> fresh_state ())) in
            Hashtbl.add groups key g;
            order := key :: !order;
            g
      in
      incr star;
      Array.iteri
        (fun i agg ->
          match source_col agg with
          | Some c -> feed states.(i) (Table.get table ~row:r ~col:c)
          | None -> ())
        agg_arr)
    table;
  let emit key =
    let kvals, star, states = Hashtbl.find groups key in
    let aggvals =
      Array.mapi (fun i agg -> finish agg (!star, states.(i))) agg_arr
    in
    Table.append_row_array out (Array.append kvals aggvals)
  in
  if keys = [] && Hashtbl.length groups = 0 then begin
    (* Global aggregate over empty input: one all-default row. *)
    let states = Array.init nagg (fun _ -> fresh_state ()) in
    let aggvals = Array.mapi (fun i agg -> finish agg (0, states.(i))) agg_arr in
    Table.append_row_array out aggvals
  end
  else List.iter emit (List.rev !order);
  out

let scalar table agg =
  let star = ref 0 in
  let st = fresh_state () in
  Table.iter_rows
    (fun r ->
      incr star;
      match source_col agg with
      | Some c -> feed st (Table.get table ~row:r ~col:c)
      | None -> ())
    table;
  finish agg (!star, st)
