(** Grouped and global aggregation: count / sum / avg / min / max
    (Table I). *)

module Table = Graql_storage.Table
module Value = Graql_storage.Value

type agg =
  | Count_star
  | Count of int  (** non-null count of a column *)
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

val output_dtype : Table.t -> agg -> Graql_storage.Dtype.t

val group_by :
  ?name:string ->
  Table.t ->
  keys:int list ->
  aggs:(agg * string) list ->
  Table.t
(** One output row per distinct key combination (first-seen order), with
    the key columns followed by one column per aggregate. With [keys = []]
    behaves as a single global group (one row even over an empty input,
    matching SQL). *)

val scalar : Table.t -> agg -> Value.t
(** Global aggregate over the whole table. *)
