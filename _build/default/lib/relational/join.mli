(** Equi-joins between tables. The building block behind edge-view
    creation (Eq. 2: S ⋈ σ(A) ⋈ T) and the relational half of GraQL. *)

module Table = Graql_storage.Table

val hash_join :
  ?pool:Graql_parallel.Domain_pool.t ->
  ?name:string ->
  left:Table.t ->
  right:Table.t ->
  on:(int * int) list ->
  unit ->
  Table.t
(** Inner equi-join: [on] pairs (left column, right column). Output schema
    is the concatenation (right-hand name clashes suffixed). Null keys
    never join (SQL semantics). Builds the hash table on the smaller
    input; probe order follows the larger input's row order, so output is
    deterministic. *)

val join_pairs :
  left:Table.t -> right:Table.t -> on:(int * int) list -> (int * int) array
(** Matching (left row, right row) pairs without materializing. *)

val semi_join_left :
  left:Table.t -> right:Table.t -> on:(int * int) list -> int array
(** Left rows that have at least one match. *)
