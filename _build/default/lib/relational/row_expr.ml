module Value = Graql_storage.Value

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div | Mod

type t =
  | Const of Value.t
  | Col of int
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | Like of t * string

let const_true = Const (Value.Bool true)

(* LIKE patterns: '%' = any sequence, '_' = any char. Simple backtracking
   matcher; patterns in queries are short. *)
let like_match pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec go p i =
    if p >= np then i >= ns
    else
      match pattern.[p] with
      | '%' ->
          let rec try_from j = j <= ns && (go (p + 1) j || try_from (j + 1)) in
          try_from i
      | '_' -> i < ns && go (p + 1) (i + 1)
      | c -> i < ns && s.[i] = c && go (p + 1) (i + 1)
  in
  go 0 0

let apply_cmp op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ ->
      let c = Value.compare a b in
      let r =
        match op with
        | Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
      in
      Value.Bool r

let apply_arith op a b =
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div -> if y = 0 then Value.Null else Value.Int (x / y)
      | Mod -> if y = 0 then Value.Null else Value.Int (x mod y))
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      let x = Value.as_float a and y = Value.as_float b in
      (match op with
      | Add -> Value.Float (x +. y)
      | Sub -> Value.Float (x -. y)
      | Mul -> Value.Float (x *. y)
      | Div -> if y = 0.0 then Value.Null else Value.Float (x /. y)
      | Mod -> if y = 0.0 then Value.Null else Value.Float (Float.rem x y))
  | Value.Date d, Value.Int n -> (
      match op with
      | Add -> Value.Date (d + n)
      | Sub -> Value.Date (d - n)
      | Mul | Div | Mod -> failwith "invalid arithmetic on date")
  | Value.Str x, Value.Str y when op = Add -> Value.Str (x ^ y)
  | _ ->
      failwith
        (Printf.sprintf "invalid arithmetic operands: %s, %s"
           (Value.to_string a) (Value.to_string b))

let is_true = function Value.Bool true -> true | _ -> false

let rec eval get e =
  match e with
  | Const v -> v
  | Col i -> get i
  | Cmp (op, a, b) -> apply_cmp op (eval get a) (eval get b)
  | Arith (op, a, b) -> apply_arith op (eval get a) (eval get b)
  | And (a, b) -> (
      (* 3VL and: false dominates Null. *)
      match eval get a with
      | Value.Bool false -> Value.Bool false
      | Value.Bool true -> eval get b
      | Value.Null -> (
          match eval get b with
          | Value.Bool false -> Value.Bool false
          | _ -> Value.Null)
      | v -> failwith ("non-boolean operand to and: " ^ Value.to_string v))
  | Or (a, b) -> (
      match eval get a with
      | Value.Bool true -> Value.Bool true
      | Value.Bool false -> eval get b
      | Value.Null -> (
          match eval get b with
          | Value.Bool true -> Value.Bool true
          | _ -> Value.Null)
      | v -> failwith ("non-boolean operand to or: " ^ Value.to_string v))
  | Not a -> (
      match eval get a with
      | Value.Bool b -> Value.Bool (not b)
      | Value.Null -> Value.Null
      | v -> failwith ("non-boolean operand to not: " ^ Value.to_string v))
  | IsNull a -> Value.Bool (eval get a = Value.Null)
  | Like (a, pattern) -> (
      match eval get a with
      | Value.Null -> Value.Null
      | Value.Str s -> Value.Bool (like_match pattern s)
      | v -> failwith ("non-string operand to like: " ^ Value.to_string v))

let eval_bool get e = is_true (eval get e)

let columns e =
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Col i -> acc := i :: !acc
    | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
        go a;
        go b
    | Not a | IsNull a | Like (a, _) -> go a
  in
  go e;
  List.sort_uniq compare !acc

let rec map_columns f = function
  | Const v -> Const v
  | Col i -> Col (f i)
  | Cmp (op, a, b) -> Cmp (op, map_columns f a, map_columns f b)
  | Arith (op, a, b) -> Arith (op, map_columns f a, map_columns f b)
  | And (a, b) -> And (map_columns f a, map_columns f b)
  | Or (a, b) -> Or (map_columns f a, map_columns f b)
  | Not a -> Not (map_columns f a)
  | IsNull a -> IsNull (map_columns f a)
  | Like (a, p) -> Like (map_columns f a, p)

let cmp_str = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Col i -> Format.fprintf ppf "$%d" i
  | Cmp (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_str op) pp b
  | Arith (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (arith_str op) pp b
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(not %a)" pp a
  | IsNull a -> Format.fprintf ppf "(%a is null)" pp a
  | Like (a, p) -> Format.fprintf ppf "(%a like %S)" pp a p
