(** Fast-path predicate compilation for table scans.

    The generic evaluator boxes every cell into a {!Graql_storage.Value.t}.
    For the common predicate shapes — comparisons of a column against a
    constant, combined with and/or/not, plus null tests — this module
    compiles to a closure reading unboxed column payloads directly:
    ints/dates compare as ints, dictionary-encoded strings compare as
    dictionary ids (equality resolved to one id at compile time), floats as
    floats. Null semantics follow SQL three-valued logic exactly (verified
    by a property test against the generic evaluator).

    [compile] returns [None] when the expression uses a feature outside the
    fast fragment (arithmetic, LIKE, column-to-column comparison); callers
    fall back to {!Row_expr.eval}. *)

val compile :
  Graql_storage.Table.t -> Row_expr.t -> (int -> bool) option
(** [compile table pred] — the closure takes a row id and answers whether
    the predicate is definitely true ([Null] counts as false, as in a SQL
    [where]). *)

val compilable : Row_expr.t -> bool
(** Whether the expression falls inside the fast fragment (for tests and
    planners; [compile] may still return [None] if column types don't
    cooperate). *)
