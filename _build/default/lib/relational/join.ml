module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Int_vec = Graql_util.Int_vec

(* Join keys as value-string tuples. Dictionary ids are per-column, so we
   can't compare raw ints across tables; canonical display strings are a
   correct, simple key. Null appears as a distinguished constructor and is
   filtered before insertion/probe. *)
let key_of table cols r =
  let parts =
    List.map
      (fun c ->
        let v = Table.get table ~row:r ~col:c in
        if v = Value.Null then None else Some (Value.to_string v))
      cols
  in
  if List.exists Option.is_none parts then None
  else Some (String.concat "\x00" (List.map Option.get parts))

let build_side left right on =
  (* Returns (build table, build cols, probe table, probe cols, swapped). *)
  if Table.nrows left <= Table.nrows right then
    (left, List.map fst on, right, List.map snd on, false)
  else (right, List.map snd on, left, List.map fst on, true)

(* Single-column equi-joins on int-payload columns (Int, Date, and
   dictionary-encoded Varchar) hash raw ints instead of building string
   keys — this is the hot path of edge-view construction. [translate]
   maps a probe-side payload to the build side's id space (identity for
   Int/Date; dictionary translation for Varchar). *)
let int_join_pairs ~build ~bcol ~probe ~pcol ~swapped ~translate =
  let bc = Table.column build bcol and pc = Table.column probe pcol in
  let index : (int, int) Hashtbl.t = Hashtbl.create (max 16 (Table.nrows build)) in
  Table.iter_rows
    (fun r ->
      if not (Graql_storage.Column.is_null bc r) then
        Hashtbl.add index (Graql_storage.Column.get_int bc r) r)
    build;
  let out = ref [] in
  Table.iter_rows
    (fun r ->
      if not (Graql_storage.Column.is_null pc r) then
        match translate (Graql_storage.Column.get_int pc r) with
        | None -> ()
        | Some k ->
            List.iter
              (fun b -> out := (if swapped then (r, b) else (b, r)) :: !out)
              (List.rev (Hashtbl.find_all index k)))
    probe;
  Array.of_list (List.rev !out)

let join_pairs ~left ~right ~on =
  let build, bcols, probe, pcols, swapped = build_side left right on in
  let fast =
    match (bcols, pcols) with
    | [ bcol ], [ pcol ] -> (
        let bc = Table.column build bcol and pc = Table.column probe pcol in
        let open Graql_storage.Dtype in
        match (Graql_storage.Column.dtype bc, Graql_storage.Column.dtype pc) with
        | Int, Int | Date, Date ->
            Some
              (int_join_pairs ~build ~bcol ~probe ~pcol ~swapped
                 ~translate:Option.some)
        | Varchar _, Varchar _ ->
            (* Dictionary ids are per-column: translate probe ids into the
               build column's id space, memoized per distinct probe id. *)
            let memo : (int, int option) Hashtbl.t = Hashtbl.create 256 in
            let translate pid =
              match Hashtbl.find_opt memo pid with
              | Some hit -> hit
              | None ->
                  let hit =
                    Graql_storage.Column.intern_id bc
                      (Graql_storage.Column.dict_lookup pc pid)
                  in
                  Hashtbl.replace memo pid hit;
                  hit
            in
            Some (int_join_pairs ~build ~bcol ~probe ~pcol ~swapped ~translate)
        | _ -> None)
    | _ -> None
  in
  match fast with
  | Some pairs -> pairs
  | None ->
      let index = Hashtbl.create (max 16 (Table.nrows build)) in
      Table.iter_rows
        (fun r ->
          match key_of build bcols r with
          | Some k -> Hashtbl.add index k r
          | None -> ())
        build;
      let out = ref [] in
      Table.iter_rows
        (fun r ->
          match key_of probe pcols r with
          | Some k ->
              (* Hashtbl.find_all returns most-recently-added first;
                 reverse for build-row order. *)
              List.iter
                (fun b -> out := (if swapped then (r, b) else (b, r)) :: !out)
                (List.rev (Hashtbl.find_all index k))
          | None -> ())
        probe;
      Array.of_list (List.rev !out)

let hash_join ?pool:_ ?name ~left ~right ~on () =
  let pairs = join_pairs ~left ~right ~on in
  let out_schema = Schema.concat (Table.schema left) (Table.schema right) in
  let name =
    match name with
    | Some n -> n
    | None -> Table.name left ^ "_join_" ^ Table.name right
  in
  let out = Table.create ~name out_schema in
  Array.iter
    (fun (l, r) ->
      Table.append_row_array out
        (Array.append (Table.row left l) (Table.row right r)))
    pairs;
  out

let semi_join_left ~left ~right ~on =
  let rcols = List.map snd on and lcols = List.map fst on in
  let keys = Hashtbl.create (max 16 (Table.nrows right)) in
  Table.iter_rows
    (fun r ->
      match key_of right rcols r with
      | Some k -> Hashtbl.replace keys k ()
      | None -> ())
    right;
  let out = Int_vec.create () in
  Table.iter_rows
    (fun r ->
      match key_of left lcols r with
      | Some k -> if Hashtbl.mem keys k then Int_vec.push out r
      | None -> ())
    left;
  Int_vec.to_array out
