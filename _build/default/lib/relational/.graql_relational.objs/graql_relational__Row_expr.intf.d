lib/relational/row_expr.mli: Format Graql_storage
