lib/relational/relop.mli: Graql_parallel Graql_storage Row_expr
