lib/relational/join.mli: Graql_parallel Graql_storage
