lib/relational/aggregate.ml: Array Graql_storage Hashtbl List String
