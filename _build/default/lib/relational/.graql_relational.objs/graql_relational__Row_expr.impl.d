lib/relational/row_expr.ml: Float Format Graql_storage List Printf String
