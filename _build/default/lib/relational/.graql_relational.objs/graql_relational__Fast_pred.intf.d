lib/relational/fast_pred.mli: Graql_storage Row_expr
