lib/relational/aggregate.mli: Graql_storage
