lib/relational/fast_pred.ml: Graql_storage Option Row_expr
