lib/relational/join.ml: Array Graql_storage Graql_util Hashtbl List Option String
