lib/relational/relop.ml: Array Fast_pred Graql_parallel Graql_storage Graql_util Hashtbl List Printf Row_expr
