module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Pool = Graql_parallel.Domain_pool
module Int_vec = Graql_util.Int_vec

let select_indices ?pool table pred =
  let n = Table.nrows table in
  (* Column-vs-constant predicates compile to an unboxed fast path; the
     generic evaluator is the fallback (Fast_pred is property-tested
     equivalent). *)
  let row_test =
    match Fast_pred.compile table pred with
    | Some fast -> fast
    | None ->
        fun i ->
          let get c = Table.get table ~row:i ~col:c in
          Row_expr.eval_bool get pred
  in
  let eval_range lo hi out =
    for i = lo to hi - 1 do
      if row_test i then Int_vec.push out i
    done
  in
  match pool with
  | Some pool when n >= 4096 ->
      let acc =
        Pool.parallel_reduce pool
          ~init:(fun () -> Int_vec.create ())
          ~body:(fun out i -> if row_test i then Int_vec.push out i)
          ~merge:(fun a b ->
            Int_vec.append a b;
            a)
          ~lo:0 ~hi:n
      in
      Int_vec.to_array acc
  | Some _ | None ->
      let out = Int_vec.create () in
      eval_range 0 n out;
      Int_vec.to_array out

let materialize ?name table rows =
  let name = match name with Some n -> n | None -> Table.name table in
  let out = Table.create ~name (Table.schema table) in
  Array.iter (fun r -> Table.append_row_array out (Table.row table r)) rows;
  out

let select ?pool ?name table pred =
  materialize ?name table (select_indices ?pool table pred)

let project ?name table cols =
  let schema = Table.schema table in
  let out_schema =
    Schema.make
      (List.map
         (fun c ->
           { Schema.name = Schema.col_name schema c; dtype = Schema.col_dtype schema c })
         cols)
  in
  let name = match name with Some n -> n | None -> Table.name table in
  let out = Table.create ~name out_schema in
  let cols = Array.of_list cols in
  Table.iter_rows
    (fun r ->
      Table.append_row_array out
        (Array.map (fun c -> Table.get table ~row:r ~col:c) cols))
    table;
  out

let project_named ?name table specs =
  let out_schema =
    Schema.make
      (List.map (fun (n, dt, _) -> { Schema.name = n; dtype = dt }) specs)
  in
  let name = match name with Some n -> n | None -> Table.name table in
  let out = Table.create ~name out_schema in
  let exprs = Array.of_list (List.map (fun (_, _, e) -> e) specs) in
  Table.iter_rows
    (fun r ->
      let get c = Table.get table ~row:r ~col:c in
      Table.append_row_array out (Array.map (Row_expr.eval get) exprs))
    table;
  out

(* Row-equality hashing for distinct / group by: hash the value tuple. *)
let row_key table r =
  Array.map Value.to_string (Table.row table r) |> Array.to_list

let distinct ?name table =
  let seen = Hashtbl.create 256 in
  let keep = Int_vec.create () in
  Table.iter_rows
    (fun r ->
      let key = row_key table r in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        Int_vec.push keep r
      end)
    table;
  materialize ?name table (Int_vec.to_array keep)

type dir = Asc | Desc

let compare_rows table keys a b =
  let rec go = function
    | [] -> compare a b (* stability by row id *)
    | (col, dir) :: rest ->
        let va = Table.get table ~row:a ~col
        and vb = Table.get table ~row:b ~col in
        let c = Value.compare va vb in
        let c = match dir with Asc -> c | Desc -> -c in
        if c <> 0 then c else go rest
  in
  go keys

let order_by ?name table keys =
  let n = Table.nrows table in
  let idx = Array.init n (fun i -> i) in
  Array.sort (compare_rows table keys) idx;
  materialize ?name table idx

let top_n ?name table ~n ~keys =
  (* Keep the n smallest under the requested ordering: invert the
     comparison for the max-keeping heap. *)
  let cmp a b = compare_rows table keys b a in
  let heap = Graql_util.Topk.create ~k:n ~cmp in
  Table.iter_rows (fun r -> Graql_util.Topk.add heap r) table;
  materialize ?name table (Array.of_list (Graql_util.Topk.to_sorted_list heap))

let limit ?name table n =
  let n = min n (Table.nrows table) in
  materialize ?name table (Array.init n (fun i -> i))

let union_all ?name a b =
  let sa = Table.schema a and sb = Table.schema b in
  if Schema.arity sa <> Schema.arity sb then
    failwith "union: arity mismatch";
  Array.iteri
    (fun i ca ->
      let cb = (Schema.cols sb).(i) in
      if not (Graql_storage.Dtype.compatible ca.Schema.dtype cb.Schema.dtype) then
        failwith
          (Printf.sprintf "union: column %d type mismatch (%s vs %s)" i
             (Graql_storage.Dtype.to_string ca.Schema.dtype)
             (Graql_storage.Dtype.to_string cb.Schema.dtype)))
    (Schema.cols sa);
  let name = match name with Some n -> n | None -> Table.name a in
  let out = Table.create ~name sa in
  Table.iter_rows (fun r -> Table.append_row_array out (Table.row a r)) a;
  Table.iter_rows (fun r -> Table.append_row_array out (Table.row b r)) b;
  out
