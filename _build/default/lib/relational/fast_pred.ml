module Table = Graql_storage.Table
module Column = Graql_storage.Column
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype

(* Three-valued result, SQL-style. *)
type tri = T | F | N

let tri_and a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | _ -> N

let tri_or a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | _ -> N

let tri_not = function T -> F | F -> T | N -> N

let rec compilable = function
  | Row_expr.Cmp (_, Row_expr.Col _, Row_expr.Const _)
  | Row_expr.Cmp (_, Row_expr.Const _, Row_expr.Col _) ->
      true
  | Row_expr.IsNull (Row_expr.Col _) -> true
  | Row_expr.Const _ -> true
  | Row_expr.And (a, b) | Row_expr.Or (a, b) -> compilable a && compilable b
  | Row_expr.Not a -> compilable a
  | Row_expr.Col _ | Row_expr.Cmp _ | Row_expr.Arith _ | Row_expr.IsNull _
  | Row_expr.Like _ ->
      false

(* One flat closure per operator: no inner test-closure indirection on
   the per-row path. *)
let int_atom c op k =
  let open Row_expr in
  match op with
  | Eq -> fun row -> if Column.is_null c row then N else if Column.get_int c row = k then T else F
  | Ne -> fun row -> if Column.is_null c row then N else if Column.get_int c row <> k then T else F
  | Lt -> fun row -> if Column.is_null c row then N else if Column.get_int c row < k then T else F
  | Le -> fun row -> if Column.is_null c row then N else if Column.get_int c row <= k then T else F
  | Gt -> fun row -> if Column.is_null c row then N else if Column.get_int c row > k then T else F
  | Ge -> fun row -> if Column.is_null c row then N else if Column.get_int c row >= k then T else F

let float_atom c op k =
  let open Row_expr in
  match op with
  | Eq -> fun row -> if Column.is_null c row then N else if Column.get_float c row = k then T else F
  | Ne -> fun row -> if Column.is_null c row then N else if Column.get_float c row <> k then T else F
  | Lt -> fun row -> if Column.is_null c row then N else if Column.get_float c row < k then T else F
  | Le -> fun row -> if Column.is_null c row then N else if Column.get_float c row <= k then T else F
  | Gt -> fun row -> if Column.is_null c row then N else if Column.get_float c row > k then T else F
  | Ge -> fun row -> if Column.is_null c row then N else if Column.get_float c row >= k then T else F

let flip op =
  match op with
  | Row_expr.Lt -> Row_expr.Gt
  | Row_expr.Gt -> Row_expr.Lt
  | Row_expr.Le -> Row_expr.Ge
  | Row_expr.Ge -> Row_expr.Le
  | (Row_expr.Eq | Row_expr.Ne) as op -> op

(* Compile one column-vs-constant comparison to a tri-valued row test. *)
let atom table op col const : (int -> tri) option =
  if col < 0 || col >= Table.arity table then None
  else
    let c = Table.column table col in
    match (Column.dtype c, const) with
    | Dtype.Int, Value.Int k | Dtype.Date, Value.Date k ->
        Some (int_atom c op k)
    | Dtype.Int, Value.Float _ | Dtype.Float, (Value.Int _ | Value.Float _) ->
        (* Generic evaluation compares Int and Float numerically. Date vs
           Int/Float is NOT numeric there (distinct ranks), so those
           combinations fall back to the generic path. *)
        Some (float_atom c op (Value.as_float const))
    | Dtype.Bool, Value.Bool b -> (
        let k = if b then 1 else 0 in
        match op with
        | Row_expr.Eq | Row_expr.Ne -> Some (int_atom c op k)
        | _ -> None)
    | Dtype.Varchar _, Value.Str s -> (
        (* Equality against a constant resolves to one dictionary id. *)
        match op with
        | Row_expr.Eq -> (
            match Column.intern_id c s with
            | Some id -> Some (int_atom c Row_expr.Eq id)
            | None -> Some (fun row -> if Column.is_null c row then N else F))
        | Row_expr.Ne -> (
            match Column.intern_id c s with
            | Some id -> Some (int_atom c Row_expr.Ne id)
            | None -> Some (fun row -> if Column.is_null c row then N else T))
        | _ ->
            (* Ordered comparisons need string order, which dictionary ids
               do not preserve: fall back. *)
            None)
    | _, Value.Null -> Some (fun _ -> N)
    | _ -> None

let rec compile_tri table expr : (int -> tri) option =
  match expr with
  | Row_expr.Const (Value.Bool true) -> Some (fun _ -> T)
  | Row_expr.Const (Value.Bool false) -> Some (fun _ -> F)
  | Row_expr.Const Value.Null -> Some (fun _ -> N)
  | Row_expr.Const _ -> None
  | Row_expr.Cmp (op, Row_expr.Col i, Row_expr.Const v) -> atom table op i v
  | Row_expr.Cmp (op, Row_expr.Const v, Row_expr.Col i) ->
      atom table (flip op) i v
  | Row_expr.IsNull (Row_expr.Col i) ->
      if i < 0 || i >= Table.arity table then None
      else
        let c = Table.column table i in
        Some (fun row -> if Column.is_null c row then T else F)
  | Row_expr.And (a, b) -> (
      match (compile_tri table a, compile_tri table b) with
      | Some fa, Some fb -> Some (fun row -> tri_and (fa row) (fb row))
      | _ -> None)
  | Row_expr.Or (a, b) -> (
      match (compile_tri table a, compile_tri table b) with
      | Some fa, Some fb -> Some (fun row -> tri_or (fa row) (fb row))
      | _ -> None)
  | Row_expr.Not a ->
      Option.map (fun fa row -> tri_not (fa row)) (compile_tri table a)
  | Row_expr.Col _ | Row_expr.Cmp _ | Row_expr.Arith _ | Row_expr.IsNull _
  | Row_expr.Like _ ->
      None

let compile table expr =
  Option.map
    (fun f row -> match f row with T -> true | F | N -> false)
    (compile_tri table expr)
