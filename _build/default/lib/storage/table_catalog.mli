(** Registry of named tables plus the metadata the GEMS front-end catalog
    serves: schemas and up-to-date sizes (Sec. III: "the catalog contains
    updated information on the sizes of those objects"). *)

type t

val create : unit -> t
val add : t -> Table.t -> unit
(** Raises [Failure] if a table with the same (case-insensitive) name
    exists. *)

val replace : t -> Table.t -> unit
val find : t -> string -> Table.t option
val find_exn : t -> string -> Table.t
val mem : t -> string -> bool
val remove : t -> string -> unit
val names : t -> string list
(** In registration order. *)

val row_count : t -> string -> int option
