(** Calendar dates as days since the Unix epoch (1970-01-01 = 0).
    GraQL's [date] attribute type: totally ordered, compact (one int),
    parsed from and printed as ISO-8601 [YYYY-MM-DD]. *)

type t = int

val of_ymd : int -> int -> int -> t
(** [of_ymd y m d]; proleptic Gregorian calendar. Raises
    [Invalid_argument] on out-of-range month/day. *)

val to_ymd : t -> int * int * int
val of_string : string -> t
(** Parse [YYYY-MM-DD]. Raises [Failure] on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string
val add_days : t -> int -> t
val is_leap_year : int -> bool
val days_in_month : int -> int -> int
