(** RFC-4180-style CSV reading and writing, used by the [ingest] command.
    Handles quoted fields, embedded commas/newlines/quotes, and CRLF. *)

val parse_string : string -> string list list
(** Parse a whole document into records of fields. A trailing newline does
    not produce an empty record. Raises [Failure] on an unterminated
    quoted field. *)

val parse_file : string -> string list list

val write_string : string list list -> string
(** Quote fields only when needed. *)

val write_file : string -> string list list -> unit

val table_of_csv : name:string -> Schema.t -> ?header:bool -> string -> Table.t
(** [table_of_csv ~name schema doc] parses every record into typed values
    per the schema (the paper: "parsed according to the data types of the
    attributes"). [header] (default [true]) skips the first record. Raises
    [Failure] with row/column context on type or arity errors. *)

val table_to_csv : ?header:bool -> Table.t -> string
