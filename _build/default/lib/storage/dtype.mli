(** Attribute types. GraQL design principle 3: all database elements are
    strongly typed; every column carries one of these. *)

type t =
  | Bool
  | Int
  | Float
  | Varchar of int  (** declared maximum length, as in [varchar(10)] *)
  | Date

val equal : t -> t -> bool
val to_string : t -> string

val compatible : t -> t -> bool
(** Whether two types may be compared/assigned: equal up to varchar width
    (the paper's static analysis rejects e.g. date vs float, but widths are
    a storage hint, not a comparison barrier). *)

val is_numeric : t -> bool
val pp : Format.formatter -> t -> unit
