(** Table schemas: ordered, named, typed columns. *)

type col = { name : string; dtype : Dtype.t }
type t

val make : col list -> t
(** Raises [Invalid_argument] on duplicate column names (case-insensitive,
    matching SQL identifier semantics). *)

val cols : t -> col array
val arity : t -> int
val find : t -> string -> int option
(** Column index by name, case-insensitive. *)

val find_exn : t -> string -> int
val col_name : t -> int -> string
val col_dtype : t -> int -> Dtype.t
val equal : t -> t -> bool
val concat : t -> t -> t
(** Schema of a join result; right-hand duplicates get suffixed with ['].
    Used when flattening path results into tables (Fig. 13). *)

val rename_prefix : string -> t -> t
(** Prefix every column name with ["prefix."]. *)

val pp : Format.formatter -> t -> unit
