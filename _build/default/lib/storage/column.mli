(** Typed columnar storage with null bitmaps.

    Physical layout: Bool/Int/Date live in an unboxed int array; Float in a
    float array; Varchar values are dictionary-encoded through a per-column
    intern pool, so equality joins and group-bys on strings compare ints. *)

type t

val create : Dtype.t -> t
val dtype : t -> Dtype.t
val length : t -> int

val append : t -> Value.t -> unit
(** Raises [Failure] on a type mismatch (the ingest layer surfaces this
    with row context). *)

val get : t -> int -> Value.t

val is_null : t -> int -> bool

val get_int : t -> int -> int
(** Raw payload for Bool (0/1) / Int / Date / Varchar (dictionary id);
    undefined if null, [Invalid_argument] for Float columns. Hot-path
    accessor for joins and graph building. *)

val get_float : t -> int -> float
(** Raw float payload; accepts Int columns too (coerced). *)

val intern_id : t -> string -> int option
(** For Varchar columns: dictionary id of [s] if present. Lets predicates
    compare against a constant with one lookup, then int equality. *)

val dict_lookup : t -> int -> string
(** Inverse of the dictionary encoding for Varchar columns. *)

val append_null : t -> unit

val approx_bytes : t -> int
(** Rough in-memory footprint: unboxed payload + null bitmap + (for
    varchar) the dictionary strings. Used for cluster capacity planning. *)
