type col = { name : string; dtype : Dtype.t }

type t = { columns : col array; index : (string, int) Hashtbl.t }

let norm = String.lowercase_ascii

let make cols =
  let columns = Array.of_list cols in
  let index = Hashtbl.create (Array.length columns) in
  Array.iteri
    (fun i c ->
      let key = norm c.name in
      if Hashtbl.mem index key then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %S" c.name);
      Hashtbl.add index key i)
    columns;
  { columns; index }

let cols t = t.columns
let arity t = Array.length t.columns
let find t name = Hashtbl.find_opt t.index (norm name)

let find_exn t name =
  match find t name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema: no column %S" name)

let col_name t i = t.columns.(i).name
let col_dtype t i = t.columns.(i).dtype

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun x y -> norm x.name = norm y.name && Dtype.equal x.dtype y.dtype)
       a.columns b.columns

let concat a b =
  let used = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace used (norm c.name) ()) a.columns;
  let fresh name =
    let rec go n = if Hashtbl.mem used (norm n) then go (n ^ "'") else n in
    let n = go name in
    Hashtbl.replace used (norm n) ();
    n
  in
  make
    (Array.to_list a.columns
    @ List.map (fun c -> { c with name = fresh c.name }) (Array.to_list b.columns))

let rename_prefix prefix t =
  make
    (List.map
       (fun c -> { c with name = prefix ^ "." ^ c.name })
       (Array.to_list t.columns))

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf c -> Format.fprintf ppf "%s %a" c.name Dtype.pp c.dtype))
    (Array.to_list t.columns)
