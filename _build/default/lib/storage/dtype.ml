type t = Bool | Int | Float | Varchar of int | Date

let equal a b =
  match (a, b) with
  | Bool, Bool | Int, Int | Float, Float | Date, Date -> true
  | Varchar n, Varchar m -> n = m
  | (Bool | Int | Float | Varchar _ | Date), _ -> false

let to_string = function
  | Bool -> "boolean"
  | Int -> "integer"
  | Float -> "float"
  | Varchar n -> Printf.sprintf "varchar(%d)" n
  | Date -> "date"

let compatible a b =
  match (a, b) with
  | Varchar _, Varchar _ -> true
  | _ -> equal a b

let is_numeric = function
  | Int | Float -> true
  | Bool | Varchar _ | Date -> false

let pp ppf t = Format.pp_print_string ppf (to_string t)
