type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of Date.t

let dtype_of = function
  | Null -> None
  | Bool _ -> Some Dtype.Bool
  | Int _ -> Some Dtype.Int
  | Float _ -> Some Dtype.Float
  | Str s -> Some (Dtype.Varchar (String.length s))
  | Date _ -> Some Dtype.Date

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3
  | Date _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool a, Bool b -> Bool.compare a b
  | Int a, Int b -> Int.compare a b
  | Float a, Float b -> Float.compare a b
  | Int a, Float b -> Float.compare (float_of_int a) b
  | Float a, Int b -> Float.compare a (float_of_int b)
  | Str a, Str b -> String.compare a b
  | Date a, Date b -> Int.compare a b
  | (Null | Bool _ | Int _ | Float _ | Str _ | Date _), _ ->
      Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 3 else 5
  | Int i -> Hashtbl.hash i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Hashtbl.hash (int_of_float f)
      else Hashtbl.hash f
  | Str s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (d + 0x44415445)

let to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s
  | Date d -> Date.to_string d

let to_csv_string = function Null -> "" | v -> to_string v

let parse dtype s =
  if s = "" then Null
  else
    match dtype with
    | Dtype.Bool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" -> Bool true
        | "false" | "f" | "0" -> Bool false
        | _ -> failwith (Printf.sprintf "cannot parse %S as boolean" s))
    | Dtype.Int -> (
        match int_of_string_opt s with
        | Some i -> Int i
        | None -> failwith (Printf.sprintf "cannot parse %S as integer" s))
    | Dtype.Float -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> failwith (Printf.sprintf "cannot parse %S as float" s))
    | Dtype.Varchar _ -> Str s
    | Dtype.Date -> (
        match Date.of_string_opt s with
        | Some d -> Date d
        | None -> failwith (Printf.sprintf "cannot parse %S as date" s))

let pp ppf v = Format.pp_print_string ppf (to_string v)

let as_int = function Int i -> i | _ -> invalid_arg "Value.as_int"

let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> invalid_arg "Value.as_float"

let as_string = function Str s -> s | _ -> invalid_arg "Value.as_string"
let as_bool = function Bool b -> b | _ -> invalid_arg "Value.as_bool"
let as_date = function Date d -> d | _ -> invalid_arg "Value.as_date"
