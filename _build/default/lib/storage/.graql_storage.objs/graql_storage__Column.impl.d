lib/storage/column.ml: Array Bytes Char Dtype Graql_util Printf String Value
