lib/storage/table_catalog.mli: Table
