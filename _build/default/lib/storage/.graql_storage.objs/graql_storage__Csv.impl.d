lib/storage/csv.ml: Array Buffer List Printf Schema String Table Value
