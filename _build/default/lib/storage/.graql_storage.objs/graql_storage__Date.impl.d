lib/storage/date.ml: Char Printf String
