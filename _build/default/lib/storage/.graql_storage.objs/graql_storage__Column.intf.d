lib/storage/column.mli: Dtype Value
