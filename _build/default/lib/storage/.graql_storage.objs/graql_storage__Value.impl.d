lib/storage/value.ml: Bool Date Dtype Float Format Hashtbl Int Printf String
