lib/storage/table_catalog.ml: Hashtbl List Option Printf String Table
