lib/storage/table.ml: Array Column Format Graql_util List Printf Schema Value
