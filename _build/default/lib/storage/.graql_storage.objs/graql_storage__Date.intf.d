lib/storage/date.mli:
