lib/storage/dtype.ml: Format Printf
