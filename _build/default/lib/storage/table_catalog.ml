type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let norm = String.lowercase_ascii
let create () = { tables = Hashtbl.create 16; order = [] }

let add t table =
  let key = norm (Table.name table) in
  if Hashtbl.mem t.tables key then
    failwith (Printf.sprintf "table %S already exists" (Table.name table));
  Hashtbl.add t.tables key table;
  t.order <- key :: t.order

let replace t table =
  let key = norm (Table.name table) in
  if not (Hashtbl.mem t.tables key) then t.order <- key :: t.order;
  Hashtbl.replace t.tables key table

let find t name = Hashtbl.find_opt t.tables (norm name)

let find_exn t name =
  match find t name with
  | Some table -> table
  | None -> failwith (Printf.sprintf "no such table: %s" name)

let mem t name = Hashtbl.mem t.tables (norm name)

let remove t name =
  let key = norm name in
  Hashtbl.remove t.tables key;
  t.order <- List.filter (fun k -> k <> key) t.order

let names t =
  List.rev_map (fun key -> Table.name (Hashtbl.find t.tables key)) t.order

let row_count t name = Option.map Table.nrows (find t name)
