(** Runtime attribute values. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of Date.t

val dtype_of : t -> Dtype.t option
(** [None] for [Null]. *)

val equal : t -> t -> bool
(** Structural; [Null] equals only [Null] (three-valued logic lives in the
    expression evaluator, not here). Int/Float cross-comparison coerces. *)

val compare : t -> t -> int
(** Total order: Null < Bool < numeric < Str < Date; numeric values compare
    by value across Int/Float. *)

val hash : t -> int
val to_string : t -> string
(** Display form ([Null] prints as ["null"], dates as ISO). *)

val to_csv_string : t -> string
(** Form used when writing CSV ([Null] prints as the empty field). *)

val parse : Dtype.t -> string -> t
(** Parse a CSV field according to the column type. The empty string parses
    to [Null]. Raises [Failure] with a descriptive message otherwise. *)

val pp : Format.formatter -> t -> unit

val as_int : t -> int
(** Raises [Invalid_argument] unless [Int]. *)

val as_float : t -> float
(** Accepts [Int] or [Float]. *)

val as_string : t -> string
(** Raises [Invalid_argument] unless [Str]. *)

val as_bool : t -> bool
val as_date : t -> Date.t
