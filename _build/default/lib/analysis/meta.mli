(** Metadata-only view of the database: what the GEMS front-end catalog
    serves to static analysis (Sec. III-A — "the only requirement is
    access to the metadata describing the database's entities"). No row
    data lives here, just schemas, entity kinds and (optional) sizes. *)

module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype

type vertex_meta = {
  vm_name : string;
  vm_key : Schema.t;
  vm_attrs : Schema.t;  (** visible attributes: full source row if 1-1, else key *)
  vm_source : string;
  vm_size : int option;
}

type edge_meta = {
  em_name : string;
  em_src : string;  (** source vertex type *)
  em_dst : string;
  em_attrs : Schema.t option;
  em_size : int option;
}

type entity =
  | M_table of Schema.t * int option
  | M_vertex of vertex_meta
  | M_edge of edge_meta
  | M_subgraph of string list  (** vertex types known to appear in it *)

type t

val create : unit -> t
val add_table : t -> string -> Schema.t -> unit
val add_vertex : t -> vertex_meta -> unit
val add_edge : t -> edge_meta -> unit
val add_subgraph : t -> string -> string list -> unit
val set_size : t -> string -> int -> unit
val find : t -> string -> entity option
val find_table : t -> string -> Schema.t option
val find_vertex : t -> string -> vertex_meta option
val find_edge : t -> string -> edge_meta option
val find_subgraph : t -> string -> string list option
val mem : t -> string -> bool
val names : t -> string list

val edges_between : t -> src:string -> dst:string -> edge_meta list
(** For variant-step checking: all edge types connecting the pair. *)
