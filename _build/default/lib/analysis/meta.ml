module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype

type vertex_meta = {
  vm_name : string;
  vm_key : Schema.t;
  vm_attrs : Schema.t;
  vm_source : string;
  vm_size : int option;
}

type edge_meta = {
  em_name : string;
  em_src : string;
  em_dst : string;
  em_attrs : Schema.t option;
  em_size : int option;
}

type entity =
  | M_table of Schema.t * int option
  | M_vertex of vertex_meta
  | M_edge of edge_meta
  | M_subgraph of string list

type t = {
  entities : (string, entity) Hashtbl.t;
  mutable order : string list; (* original display names, reversed *)
}

let norm = String.lowercase_ascii
let create () = { entities = Hashtbl.create 32; order = [] }

let add t name entity =
  let key = norm name in
  if Hashtbl.mem t.entities key then
    failwith (Printf.sprintf "entity %S already declared" name);
  Hashtbl.add t.entities key entity;
  t.order <- name :: t.order

let add_table t name schema = add t name (M_table (schema, None))
let add_vertex t vm = add t vm.vm_name (M_vertex vm)
let add_edge t em = add t em.em_name (M_edge em)

let add_subgraph t name vtypes =
  (* Subgraph results may be overwritten by re-running a script. *)
  let key = norm name in
  if not (Hashtbl.mem t.entities key) then t.order <- name :: t.order;
  Hashtbl.replace t.entities key (M_subgraph vtypes)

let find t name = Hashtbl.find_opt t.entities (norm name)
let mem t name = Hashtbl.mem t.entities (norm name)

let set_size t name size =
  let key = norm name in
  match Hashtbl.find_opt t.entities key with
  | Some (M_table (s, _)) -> Hashtbl.replace t.entities key (M_table (s, Some size))
  | Some (M_vertex vm) ->
      Hashtbl.replace t.entities key (M_vertex { vm with vm_size = Some size })
  | Some (M_edge em) ->
      Hashtbl.replace t.entities key (M_edge { em with em_size = Some size })
  | Some (M_subgraph _) | None -> ()

let find_table t name =
  match find t name with Some (M_table (s, _)) -> Some s | _ -> None

let find_vertex t name =
  match find t name with Some (M_vertex vm) -> Some vm | _ -> None

let find_edge t name =
  match find t name with Some (M_edge em) -> Some em | _ -> None

let find_subgraph t name =
  match find t name with Some (M_subgraph vs) -> Some vs | _ -> None

let names t = List.rev t.order

let edges_between t ~src ~dst =
  List.filter_map
    (fun name ->
      match Hashtbl.find t.entities (norm name) with
      | M_edge em when norm em.em_src = norm src && norm em.em_dst = norm dst ->
          Some em
      | _ -> None)
    (List.rev t.order)
