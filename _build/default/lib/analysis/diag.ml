type severity = Error | Warning

type t = { severity : severity; loc : Graql_lang.Loc.t; message : string }

let errors l = List.filter (fun d -> d.severity = Error) l
let warnings l = List.filter (fun d -> d.severity = Warning) l
let has_errors l = List.exists (fun d -> d.severity = Error) l

let to_string d =
  Printf.sprintf "%s: %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    (Graql_lang.Loc.to_string d.loc)
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)
