(** Static query analysis (Sec. III-A): correctness checks computable from
    catalog metadata alone — no data access.

    Checks implemented, mirroring the paper's list:
    - attribute/constant comparisons of incompatible types (e.g. a date
      against a float);
    - entity-kind misuse (a vertex type where a table is required, and
      vice versa);
    - path well-formedness: edge types must connect the adjacent vertex
      types in the traversal direction; conditions are rejected on variant
      ([ ]) steps; labels must be defined before use and keep their type;
    - limited feasibility: empty entity types and variant steps with no
      connecting edge type produce "result will be empty" warnings when
      sizes are known. *)

val check_script :
  ?params:(string * Graql_lang.Ast.lit) list ->
  Meta.t ->
  Graql_lang.Ast.script ->
  Diag.t list
(** Checks statements in order, registering each statement's definitions
    into [meta] so later statements see them (the paper's scripts are
    DDL-then-query). Diagnostics come back in source order. *)

val check_stmt :
  ?params:(string * Graql_lang.Ast.lit) list ->
  Meta.t ->
  Graql_lang.Ast.stmt ->
  Diag.t list
