lib/analysis/meta.mli: Graql_storage
