lib/analysis/typecheck.mli: Diag Graql_lang Meta
