lib/analysis/meta.ml: Graql_storage Hashtbl List Printf String
