lib/analysis/diag.mli: Format Graql_lang
