lib/analysis/diag.ml: Format Graql_lang List Printf
