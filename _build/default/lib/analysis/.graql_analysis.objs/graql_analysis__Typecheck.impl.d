lib/analysis/typecheck.ml: Array Diag Graql_lang Graql_storage Hashtbl List Meta Option Printf String
