(** Diagnostics produced by static query analysis. *)

type severity = Error | Warning

type t = { severity : severity; loc : Graql_lang.Loc.t; message : string }

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
