lib/lang/lexer.ml: Buffer List Loc String Token
