lib/lang/pretty.ml: Ast Format Graql_storage List Option String
