lib/lang/ast.ml: Graql_storage Loc
