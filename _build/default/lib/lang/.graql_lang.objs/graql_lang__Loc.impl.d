lib/lang/loc.ml: Format Printf
