lib/lang/parser.ml: Array Ast Buffer Graql_storage Lexer List Loc String Token
