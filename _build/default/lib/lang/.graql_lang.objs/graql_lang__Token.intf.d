lib/lang/token.mli:
