(** Source positions for diagnostics. *)

type t = { line : int; col : int }

val dummy : t
val to_string : t -> string
val pp : Format.formatter -> t -> unit

exception Syntax_error of t * string
(** Raised by the lexer and parser; carries position + message. *)

val error : t -> ('a, unit, string, 'b) format4 -> 'a
(** [error loc fmt ...] raises {!Syntax_error} with a formatted message. *)
