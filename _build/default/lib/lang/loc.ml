type t = { line : int; col : int }

let dummy = { line = 0; col = 0 }
let to_string t = Printf.sprintf "line %d, column %d" t.line t.col
let pp ppf t = Format.pp_print_string ppf (to_string t)

exception Syntax_error of t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Syntax_error (loc, msg))) fmt
