(** Recursive-descent parser for GraQL scripts.

    Keywords are contextual and case-insensitive (SQL style); vertex/edge
    arrows [--e-->], [<--e--], type metavariables [\[ \]], labels
    [def X:] / [foreach x:], path regexes [( --\[ \]--> \[ \] )+],
    and the [select ... from graph ... into ...] form are parsed exactly
    as the paper's figures write them. *)

val parse_script : string -> Ast.script
(** Raises {!Loc.Syntax_error} on malformed input. *)

val parse_expr : string -> Ast.expr
(** Entry point for tests: parse a single expression. *)

val parse_statement : string -> Ast.stmt
(** Parse exactly one statement (plus optional trailing [;]). *)
