(** Hand-rolled lexer for GraQL.

    Notable choices, matching the paper's figures:
    - [--], [-->], [<--] are dedicated arrow tokens; a lone [-] is minus.
    - [%Name%] is a query parameter token.
    - [//] starts a line comment (used in the paper's Appendix A), and
      [/* .. */] block comments are accepted as a convenience.
    - Identifiers are [[A-Za-z_][A-Za-z0-9_]*]; keywords are not
      distinguished at the lexical level (the parser matches identifier
      spellings case-insensitively). *)

val tokenize : string -> (Token.t * Loc.t) list
(** Ends with [(EOF, loc)]. Raises {!Loc.Syntax_error} on lexical errors. *)
