module Dtype = Graql_storage.Dtype

type state = { toks : (Token.t * Loc.t) array; mutable pos : int }

let current st = fst st.toks.(st.pos)
let current_loc st = snd st.toks.(st.pos)
let lookahead st k =
  let i = st.pos + k in
  if i < Array.length st.toks then fst st.toks.(i) else Token.EOF

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st fmt = Loc.error (current_loc st) fmt

let expect st tok =
  if current st = tok then advance st
  else
    fail st "expected %s, found %s" (Token.describe tok)
      (Token.describe (current st))

(* ------------------------------------------------------------------ *)
(* Contextual keywords                                                 *)

let kw_eq word = function
  | Token.IDENT s -> String.lowercase_ascii s = word
  | _ -> false

let at_kw st word = kw_eq word (current st)

let eat_kw st word =
  if at_kw st word then (advance st; true) else false

let expect_kw st word =
  if not (eat_kw st word) then
    fail st "expected keyword %S, found %s" word (Token.describe (current st))

let reserved =
  [
    "select"; "create"; "ingest"; "set"; "from"; "where"; "group"; "order";
    "into"; "and"; "or"; "not"; "like"; "is"; "null"; "top"; "distinct";
    "as"; "by"; "asc"; "desc"; "def"; "foreach"; "graph"; "table";
    "subgraph"; "vertex"; "edge"; "vertices"; "with"; "true"; "false";
  ]

let is_reserved s = List.mem (String.lowercase_ascii s) reserved

let ident st =
  match current st with
  | Token.IDENT s ->
      advance st;
      s
  | t -> fail st "expected identifier, found %s" (Token.describe t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_or st =
  let lhs = parse_and st in
  if at_kw st "or" then begin
    let l = current_loc st in
    advance st;
    let rhs = parse_or st in
    Ast.E_binop (Ast.Or, lhs, rhs, l)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if at_kw st "and" then begin
    let l = current_loc st in
    advance st;
    let rhs = parse_and st in
    Ast.E_binop (Ast.And, lhs, rhs, l)
  end
  else lhs

and parse_not st =
  if at_kw st "not" then begin
    let l = current_loc st in
    advance st;
    Ast.E_unop (Ast.Not, parse_not st, l)
  end
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  let l = current_loc st in
  match current st with
  | Token.EQ -> advance st; Ast.E_binop (Ast.Eq, lhs, parse_additive st, l)
  | Token.NE -> advance st; Ast.E_binop (Ast.Ne, lhs, parse_additive st, l)
  | Token.LT -> advance st; Ast.E_binop (Ast.Lt, lhs, parse_additive st, l)
  | Token.LE -> advance st; Ast.E_binop (Ast.Le, lhs, parse_additive st, l)
  | Token.GT -> advance st; Ast.E_binop (Ast.Gt, lhs, parse_additive st, l)
  | Token.GE -> advance st; Ast.E_binop (Ast.Ge, lhs, parse_additive st, l)
  | Token.IDENT s when String.lowercase_ascii s = "like" ->
      advance st;
      Ast.E_binop (Ast.Like, lhs, parse_additive st, l)
  | Token.IDENT s when String.lowercase_ascii s = "is" ->
      advance st;
      let negated = eat_kw st "not" in
      expect_kw st "null";
      Ast.E_is_null (lhs, negated, l)
  | _ -> lhs

and parse_additive st =
  let rec go lhs =
    let l = current_loc st in
    match current st with
    | Token.PLUS -> advance st; go (Ast.E_binop (Ast.Add, lhs, parse_multiplicative st, l))
    | Token.MINUS -> advance st; go (Ast.E_binop (Ast.Sub, lhs, parse_multiplicative st, l))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    let l = current_loc st in
    match current st with
    | Token.STAR -> advance st; go (Ast.E_binop (Ast.Mul, lhs, parse_unary st, l))
    | Token.SLASH -> advance st; go (Ast.E_binop (Ast.Div, lhs, parse_unary st, l))
    | Token.PERCENT -> advance st; go (Ast.E_binop (Ast.Mod, lhs, parse_unary st, l))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match current st with
  | Token.MINUS ->
      let l = current_loc st in
      advance st;
      Ast.E_unop (Ast.Neg, parse_unary st, l)
  | _ -> parse_primary st

and parse_call_args st =
  (* Caller consumed the LPAREN. *)
  if current st = Token.RPAREN then begin
    advance st;
    []
  end
  else if current st = Token.STAR then begin
    advance st;
    expect st Token.RPAREN;
    [ Ast.A_star ]
  end
  else begin
    let rec go acc =
      let arg = Ast.A_expr (parse_or st) in
      if current st = Token.COMMA then begin
        advance st;
        go (arg :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (arg :: acc)
      end
    in
    go []
  end

and parse_primary st =
  let l = current_loc st in
  match current st with
  | Token.INT i -> advance st; Ast.E_lit (Ast.L_int i, l)
  | Token.FLOAT f -> advance st; Ast.E_lit (Ast.L_float f, l)
  | Token.STRING s -> advance st; Ast.E_lit (Ast.L_string s, l)
  | Token.PARAM p -> advance st; Ast.E_param (p, l)
  | Token.LPAREN ->
      advance st;
      let e = parse_or st in
      expect st Token.RPAREN;
      e
  | Token.IDENT s when String.lowercase_ascii s = "true" ->
      advance st;
      Ast.E_lit (Ast.L_bool true, l)
  | Token.IDENT s when String.lowercase_ascii s = "false" ->
      advance st;
      Ast.E_lit (Ast.L_bool false, l)
  | Token.IDENT s when String.lowercase_ascii s = "null" ->
      advance st;
      Ast.E_lit (Ast.L_null, l)
  | Token.IDENT s when not (is_reserved s) -> (
      advance st;
      match current st with
      | Token.DOT ->
          advance st;
          let attr = ident st in
          Ast.E_attr (Some s, attr, l)
      | Token.LPAREN ->
          advance st;
          Ast.E_call (String.lowercase_ascii s, parse_call_args st, l)
      | _ -> Ast.E_attr (None, s, l))
  | t -> fail st "expected expression, found %s" (Token.describe t)

let parse_expr_state = parse_or

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

(* A condition group "( expr )" or "( )" directly after a vertex or edge
   name. The empty parens mean "no filter" (the paper's "( )"). *)
let parse_cond_group st =
  if current st <> Token.LPAREN then None
  else begin
    advance st;
    if current st = Token.RPAREN then begin
      advance st;
      None
    end
    else begin
      let e = parse_expr_state st in
      expect st Token.RPAREN;
      Some e
    end
  end

let parse_label st =
  if at_kw st "def" then begin
    advance st;
    let name = ident st in
    expect st Token.COLON;
    Some (Ast.Set_label name)
  end
  else if at_kw st "foreach" then begin
    advance st;
    let name = ident st in
    expect st Token.COLON;
    Some (Ast.Each_label name)
  end
  else None

(* Is the LPAREN at the current position a regex group (as opposed to a
   condition or a parenthesized sub-path)? Regex groups start with an
   arrow. *)
let lparen_starts_regex st =
  current st = Token.LPAREN
  && (match lookahead st 1 with
     | Token.DASHDASH | Token.LTDASHDASH -> true
     | _ -> false)

let parse_vertex_head st =
  let l = current_loc st in
  match current st with
  | Token.LBRACKET ->
      advance st;
      expect st Token.RBRACKET;
      (Ast.V_any, l)
  | Token.IDENT s when not (is_reserved s) ->
      advance st;
      if current st = Token.DOT then begin
        advance st;
        let vtype = ident st in
        (Ast.V_seeded (s, vtype), l)
      end
      else (Ast.V_named s, l)
  | t -> fail st "expected vertex step, found %s" (Token.describe t)

let parse_vstep st =
  let label = parse_label st in
  let kind, l = parse_vertex_head st in
  (* Guard: "( --" after a vertex is a regex group, not a condition. *)
  let cond = if lparen_starts_regex st then None else parse_cond_group st in
  { Ast.v_kind = kind; v_label = label; v_cond = cond; v_loc = l }

let parse_edge_name st =
  match current st with
  | Token.LBRACKET ->
      advance st;
      expect st Token.RBRACKET;
      Ast.E_any
  | Token.IDENT s when not (is_reserved s) ->
      advance st;
      Ast.E_named s
  | t -> fail st "expected edge type or [ ], found %s" (Token.describe t)

let parse_estep st =
  let l = current_loc st in
  match current st with
  | Token.DASHDASH ->
      advance st;
      let label = parse_label st in
      let kind = parse_edge_name st in
      let cond = parse_cond_group st in
      expect st Token.DASHDASHGT;
      { Ast.e_kind = kind; e_dir = Ast.Out; e_label = label; e_cond = cond; e_loc = l }
  | Token.LTDASHDASH ->
      advance st;
      let label = parse_label st in
      let kind = parse_edge_name st in
      let cond = parse_cond_group st in
      expect st Token.DASHDASH;
      { Ast.e_kind = kind; e_dir = Ast.In; e_label = label; e_cond = cond; e_loc = l }
  | t -> fail st "expected --edge--> or <--edge--, found %s" (Token.describe t)

let at_arrow st =
  match current st with
  | Token.DASHDASH | Token.LTDASHDASH -> true
  | _ -> false

let parse_rx_op st =
  match current st with
  | Token.STAR -> advance st; Ast.Rx_star
  | Token.PLUS -> advance st; Ast.Rx_plus
  | Token.LBRACE -> (
      advance st;
      match current st with
      | Token.INT n ->
          advance st;
          expect st Token.RBRACE;
          Ast.Rx_count n
      | t -> fail st "expected repetition count, found %s" (Token.describe t))
  | t -> fail st "expected *, + or {n} after regex group, found %s" (Token.describe t)

let rec parse_segments st acc =
  if at_arrow st then begin
    let e = parse_estep st in
    let v = parse_vstep st in
    parse_segments st (Ast.Seg_step (e, v) :: acc)
  end
  else if lparen_starts_regex st then begin
    let l = current_loc st in
    advance st;
    let rec pairs acc =
      let e = parse_estep st in
      let v = parse_vstep st in
      let acc = (e, v) :: acc in
      if at_arrow st then pairs acc else List.rev acc
    in
    let body = pairs [] in
    expect st Token.RPAREN;
    let op = parse_rx_op st in
    parse_segments st (Ast.Seg_regex (body, op, l) :: acc)
  end
  else List.rev acc

let parse_path st =
  let head = parse_vstep st in
  let segments = parse_segments st [] in
  { Ast.head; segments }

let rec parse_multipath st = parse_mp_or st

and parse_mp_or st =
  let lhs = parse_mp_and st in
  if at_kw st "or" then begin
    advance st;
    Ast.M_or (lhs, parse_mp_or st)
  end
  else lhs

and parse_mp_and st =
  let lhs = parse_mp_atom st in
  if at_kw st "and" then begin
    advance st;
    Ast.M_and (lhs, parse_mp_and st)
  end
  else lhs

and parse_mp_atom st =
  if current st = Token.LPAREN && not (lparen_starts_regex st) then begin
    advance st;
    let mp = parse_multipath st in
    expect st Token.RPAREN;
    mp
  end
  else Ast.M_path (parse_path st)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let parse_dtype st =
  let l = current_loc st in
  let name = String.lowercase_ascii (ident st) in
  match name with
  | "integer" | "int" -> Dtype.Int
  | "float" | "double" | "real" -> Dtype.Float
  | "date" -> Dtype.Date
  | "boolean" | "bool" -> Dtype.Bool
  | "varchar" | "char" | "text" ->
      if current st = Token.LPAREN then begin
        advance st;
        match current st with
        | Token.INT n ->
            advance st;
            expect st Token.RPAREN;
            Dtype.Varchar n
        | t -> fail st "expected varchar width, found %s" (Token.describe t)
      end
      else Dtype.Varchar 255
  | other -> Loc.error l "unknown type %S" other

let parse_create_table st l =
  let name = ident st in
  expect st Token.LPAREN;
  let rec cols acc =
    let cl = current_loc st in
    let cname = ident st in
    let ctype = parse_dtype st in
    let acc = { Ast.cd_name = cname; cd_type = ctype; cd_loc = cl } :: acc in
    if current st = Token.COMMA then begin
      advance st;
      cols acc
    end
    else begin
      expect st Token.RPAREN;
      List.rev acc
    end
  in
  Ast.Create_table { ct_name = name; ct_cols = cols []; ct_loc = l }

let parse_create_vertex st l =
  let name = ident st in
  expect st Token.LPAREN;
  let rec keys acc =
    let k = ident st in
    if current st = Token.COMMA then begin
      advance st;
      keys (k :: acc)
    end
    else begin
      expect st Token.RPAREN;
      List.rev (k :: acc)
    end
  in
  let key = keys [] in
  expect_kw st "from";
  expect_kw st "table";
  let from = ident st in
  let where = if eat_kw st "where" then Some (parse_expr_state st) else None in
  Ast.Create_vertex { cv_name = name; cv_key = key; cv_from = from; cv_where = where; cv_loc = l }

let parse_endpoint st =
  let ve_type = ident st in
  let ve_alias = if eat_kw st "as" then Some (ident st) else None in
  { Ast.ve_type; ve_alias }

let parse_create_edge st l =
  let name = ident st in
  expect_kw st "with";
  expect_kw st "vertices";
  expect st Token.LPAREN;
  let src = parse_endpoint st in
  expect st Token.COMMA;
  let dst = parse_endpoint st in
  expect st Token.RPAREN;
  let from =
    if at_kw st "from" then begin
      advance st;
      expect_kw st "table";
      Some (ident st)
    end
    else None
  in
  let where = if eat_kw st "where" then Some (parse_expr_state st) else None in
  Ast.Create_edge
    { ce_name = name; ce_src = src; ce_dst = dst; ce_from = from; ce_where = where; ce_loc = l }

let parse_filename st =
  match current st with
  | Token.STRING s ->
      advance st;
      s
  | Token.IDENT _ ->
      (* Bare filename like products.csv — rebuild the dotted name. *)
      let buf = Buffer.create 16 in
      Buffer.add_string buf (ident st);
      let rec go () =
        if current st = Token.DOT then begin
          advance st;
          Buffer.add_char buf '.';
          Buffer.add_string buf (ident st);
          go ()
        end
      in
      go ();
      Buffer.contents buf
  | t -> fail st "expected file name, found %s" (Token.describe t)

let parse_ingest st l =
  expect_kw st "table";
  let table = ident st in
  let file = parse_filename st in
  Ast.Ingest { ing_table = table; ing_file = file; ing_loc = l }

let parse_literal st =
  let l = current_loc st in
  match current st with
  | Token.INT i -> advance st; Ast.L_int i
  | Token.FLOAT f -> advance st; Ast.L_float f
  | Token.STRING s -> advance st; Ast.L_string s
  | Token.MINUS -> (
      advance st;
      match current st with
      | Token.INT i -> advance st; Ast.L_int (-i)
      | Token.FLOAT f -> advance st; Ast.L_float (-.f)
      | t -> fail st "expected number after -, found %s" (Token.describe t))
  | Token.IDENT s when String.lowercase_ascii s = "true" -> advance st; Ast.L_bool true
  | Token.IDENT s when String.lowercase_ascii s = "false" -> advance st; Ast.L_bool false
  | Token.IDENT s when String.lowercase_ascii s = "null" -> advance st; Ast.L_null
  | t -> Loc.error l "expected literal, found %s" (Token.describe t)

let parse_set st l =
  match current st with
  | Token.PARAM name ->
      advance st;
      expect st Token.EQ;
      let v = parse_literal st in
      Ast.Set_param { sp_name = name; sp_value = v; sp_loc = l }
  | t -> fail st "expected %%parameter%% after set, found %s" (Token.describe t)

let parse_targets st =
  if current st = Token.STAR then begin
    advance st;
    [ Ast.T_star ]
  end
  else begin
    let rec go acc =
      let e = parse_expr_state st in
      let alias = if eat_kw st "as" then Some (ident st) else None in
      let acc = Ast.T_expr (e, alias) :: acc in
      if current st = Token.COMMA then begin
        advance st;
        go acc
      end
      else List.rev acc
    in
    go []
  end

let parse_into st =
  if at_kw st "into" then begin
    advance st;
    if eat_kw st "table" then Ast.Into_table (ident st)
    else if eat_kw st "subgraph" then Ast.Into_subgraph (ident st)
    else fail st "expected 'table' or 'subgraph' after into"
  end
  else Ast.Into_nothing

let parse_qualified st =
  let a = ident st in
  if current st = Token.DOT then begin
    advance st;
    let b = ident st in
    (Some a, b)
  end
  else (None, a)

let parse_group_by st =
  if at_kw st "group" then begin
    advance st;
    expect_kw st "by";
    let rec go acc =
      let q = parse_qualified st in
      if current st = Token.COMMA then begin
        advance st;
        go (q :: acc)
      end
      else List.rev (q :: acc)
    in
    go []
  end
  else []

let parse_order_by st =
  if at_kw st "order" then begin
    advance st;
    expect_kw st "by";
    let rec go acc =
      let e = parse_expr_state st in
      let dir =
        if eat_kw st "desc" then Ast.Desc
        else begin
          ignore (eat_kw st "asc");
          Ast.Asc
        end
      in
      if current st = Token.COMMA then begin
        advance st;
        go ((e, dir) :: acc)
      end
      else List.rev ((e, dir) :: acc)
    in
    go []
  end
  else []

let parse_select st l =
  let distinct = eat_kw st "distinct" in
  let top =
    if at_kw st "top" then begin
      advance st;
      match current st with
      | Token.INT n ->
          advance st;
          Some n
      | t -> fail st "expected count after top, found %s" (Token.describe t)
    end
    else None
  in
  let targets = parse_targets st in
  expect_kw st "from";
  if eat_kw st "graph" then begin
    let path = parse_multipath st in
    let into = parse_into st in
    if distinct then Loc.error l "distinct is not supported on graph queries";
    if top <> None then
      Loc.error l "top is not supported on graph queries; post-process the result table";
    Ast.Select_graph { sg_targets = targets; sg_path = path; sg_into = into; sg_loc = l }
  end
  else begin
    ignore (eat_kw st "table");
    let rec sources acc =
      let name = ident st in
      let alias = if eat_kw st "as" then Some (ident st) else None in
      let acc = (name, alias) :: acc in
      if current st = Token.COMMA then begin
        advance st;
        ignore (eat_kw st "table");
        sources acc
      end
      else List.rev acc
    in
    let srcs = sources [] in
    let where = if eat_kw st "where" then Some (parse_expr_state st) else None in
    let group_by = parse_group_by st in
    let order_by = parse_order_by st in
    let into = parse_into st in
    let from =
      match srcs with
      | [ (name, alias) ] ->
          (* single-table: where clause stays as a filter *)
          ignore alias;
          Ast.From_table (name, alias)
      | many -> Ast.From_join (many, where)
    in
    let st_where = match from with Ast.From_join _ -> None | _ -> where in
    Ast.Select_table
      {
        st_distinct = distinct;
        st_top = top;
        st_targets = targets;
        st_from = from;
        st_where;
        st_group_by = group_by;
        st_order_by = order_by;
        st_into = into;
        st_loc = l;
      }
  end

let parse_stmt st =
  let l = current_loc st in
  if eat_kw st "create" then begin
    if eat_kw st "table" then parse_create_table st l
    else if eat_kw st "vertex" then parse_create_vertex st l
    else if eat_kw st "edge" then parse_create_edge st l
    else fail st "expected table, vertex or edge after create"
  end
  else if eat_kw st "ingest" then parse_ingest st l
  else if eat_kw st "set" then parse_set st l
  else if eat_kw st "select" then parse_select st l
  else fail st "expected statement, found %s" (Token.describe (current st))

let skip_semis st =
  while current st = Token.SEMI do
    advance st
  done

let make_state src = { toks = Array.of_list (Lexer.tokenize src); pos = 0 }

let parse_script src =
  let st = make_state src in
  let rec go acc =
    skip_semis st;
    if current st = Token.EOF then List.rev acc
    else begin
      let stmt = parse_stmt st in
      go (stmt :: acc)
    end
  in
  go []

let parse_expr src =
  let st = make_state src in
  let e = parse_expr_state st in
  if current st <> Token.EOF then
    fail st "trailing input after expression: %s" (Token.describe (current st));
  e

let parse_statement src =
  let st = make_state src in
  let stmt = parse_stmt st in
  skip_semis st;
  if current st <> Token.EOF then
    fail st "trailing input after statement: %s" (Token.describe (current st));
  stmt
