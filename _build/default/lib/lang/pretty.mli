(** Pretty-printing of GraQL ASTs back to concrete syntax. The printed
    form re-parses to an equal AST (round-trip property tested). *)

val expr : Format.formatter -> Ast.expr -> unit
val path : Format.formatter -> Ast.path -> unit
val multipath : Format.formatter -> Ast.multipath -> unit
val stmt : Format.formatter -> Ast.stmt -> unit
val script : Format.formatter -> Ast.script -> unit
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val script_to_string : Ast.script -> string
