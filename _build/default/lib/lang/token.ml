type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | PARAM of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | DOT
  | COLON
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | DASHDASH
  | DASHDASHGT
  | LTDASHDASH
  | EOF

let to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> Printf.sprintf "%g" f
  | STRING s -> Printf.sprintf "%S" s
  | PARAM s -> Printf.sprintf "%%%s%%" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | DOT -> "."
  | COLON -> ":"
  | SEMI -> ";"
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | DASHDASH -> "--"
  | DASHDASHGT -> "-->"
  | LTDASHDASH -> "<--"
  | EOF -> "<eof>"

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT _ -> "integer literal"
  | FLOAT _ -> "float literal"
  | STRING _ -> "string literal"
  | PARAM s -> Printf.sprintf "parameter %%%s%%" s
  | EOF -> "end of input"
  | t -> Printf.sprintf "%S" (to_string t)
