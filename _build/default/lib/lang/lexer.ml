let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

type cursor = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let loc cur = { Loc.line = cur.line; col = cur.pos - cur.bol + 1 }

let peek cur k =
  let i = cur.pos + k in
  if i < String.length cur.src then Some cur.src.[i] else None

let advance cur n =
  for _ = 1 to n do
    (match peek cur 0 with
    | Some '\n' ->
        cur.line <- cur.line + 1;
        cur.bol <- cur.pos + 1
    | _ -> ());
    cur.pos <- cur.pos + 1
  done

let lex_string cur quote =
  let start = loc cur in
  advance cur 1;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur 0 with
    | None -> Loc.error start "unterminated string literal"
    | Some c when c = quote ->
        (* Doubled quote escapes itself, SQL-style. *)
        if peek cur 1 = Some quote then begin
          Buffer.add_char buf quote;
          advance cur 2;
          go ()
        end
        else advance cur 1
    | Some '\\' -> (
        match peek cur 1 with
        | Some 'n' -> Buffer.add_char buf '\n'; advance cur 2; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance cur 2; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance cur 2; go ()
        | Some c when c = quote -> Buffer.add_char buf c; advance cur 2; go ()
        | _ -> Buffer.add_char buf '\\'; advance cur 1; go ())
    | Some c ->
        Buffer.add_char buf c;
        advance cur 1;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_number cur =
  let start = cur.pos in
  let startloc = loc cur in
  while (match peek cur 0 with Some c -> is_digit c | None -> false) do
    advance cur 1
  done;
  let is_float =
    match (peek cur 0, peek cur 1) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance cur 1;
    while (match peek cur 0 with Some c -> is_digit c | None -> false) do
      advance cur 1
    done;
    (match peek cur 0 with
    | Some ('e' | 'E') ->
        advance cur 1;
        (match peek cur 0 with
        | Some ('+' | '-') -> advance cur 1
        | _ -> ());
        while (match peek cur 0 with Some c -> is_digit c | None -> false) do
          advance cur 1
        done
    | _ -> ());
    let text = String.sub cur.src start (cur.pos - start) in
    match float_of_string_opt text with
    | Some f -> Token.FLOAT f
    | None -> Loc.error startloc "malformed float literal %S" text
  end
  else begin
    let text = String.sub cur.src start (cur.pos - start) in
    match int_of_string_opt text with
    | Some i -> Token.INT i
    | None -> Loc.error startloc "malformed integer literal %S" text
  end

let lex_param cur =
  (* %Name% — caller verified the shape. *)
  let startloc = loc cur in
  advance cur 1;
  let start = cur.pos in
  while (match peek cur 0 with Some c -> is_ident_char c | None -> false) do
    advance cur 1
  done;
  let name = String.sub cur.src start (cur.pos - start) in
  match peek cur 0 with
  | Some '%' ->
      advance cur 1;
      Token.PARAM name
  | _ -> Loc.error startloc "unterminated parameter %%%s" name

let tokenize src =
  let cur = { src; pos = 0; line = 1; bol = 0 } in
  let out = ref [] in
  let emit tok l = out := (tok, l) :: !out in
  let rec go () =
    match peek cur 0 with
    | None -> emit Token.EOF (loc cur)
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance cur 1;
        go ()
    | Some '/' when peek cur 1 = Some '/' ->
        while peek cur 0 <> None && peek cur 0 <> Some '\n' do
          advance cur 1
        done;
        go ()
    | Some '/' when peek cur 1 = Some '*' ->
        let startloc = loc cur in
        advance cur 2;
        let rec skip () =
          match (peek cur 0, peek cur 1) with
          | Some '*', Some '/' -> advance cur 2
          | None, _ -> Loc.error startloc "unterminated block comment"
          | _ -> advance cur 1; skip ()
        in
        skip ();
        go ()
    | Some c when is_ident_start c ->
        let l = loc cur in
        let start = cur.pos in
        while (match peek cur 0 with Some c -> is_ident_char c | None -> false) do
          advance cur 1
        done;
        emit (Token.IDENT (String.sub cur.src start (cur.pos - start))) l;
        go ()
    | Some c when is_digit c ->
        let l = loc cur in
        emit (lex_number cur) l;
        go ()
    | Some ('\'' | '"') ->
        let l = loc cur in
        let quote = (match peek cur 0 with Some q -> q | None -> assert false) in
        emit (Token.STRING (lex_string cur quote)) l;
        go ()
    | Some '%' when (match peek cur 1 with Some c -> is_ident_start c | None -> false) ->
        (* Disambiguate parameter %X% from modulo: require a closing '%'. *)
        let save_pos = cur.pos and save_line = cur.line and save_bol = cur.bol in
        let l = loc cur in
        (try
           let tok = lex_param cur in
           emit tok l
         with Loc.Syntax_error _ ->
           cur.pos <- save_pos;
           cur.line <- save_line;
           cur.bol <- save_bol;
           advance cur 1;
           emit Token.PERCENT l);
        go ()
    | Some c ->
        let l = loc cur in
        let simple tok n =
          advance cur n;
          emit tok l
        in
        (match (c, peek cur 1, peek cur 2) with
        | '-', Some '-', Some '>' -> simple Token.DASHDASHGT 3
        | '-', Some '-', _ -> simple Token.DASHDASH 2
        | '<', Some '-', Some '-' -> simple Token.LTDASHDASH 3
        | '<', Some '=', _ -> simple Token.LE 2
        | '<', Some '>', _ -> simple Token.NE 2
        | '<', _, _ -> simple Token.LT 1
        | '>', Some '=', _ -> simple Token.GE 2
        | '>', _, _ -> simple Token.GT 1
        | '!', Some '=', _ -> simple Token.NE 2
        | '=', _, _ -> simple Token.EQ 1
        | '(', _, _ -> simple Token.LPAREN 1
        | ')', _, _ -> simple Token.RPAREN 1
        | '[', _, _ -> simple Token.LBRACKET 1
        | ']', _, _ -> simple Token.RBRACKET 1
        | '{', _, _ -> simple Token.LBRACE 1
        | '}', _, _ -> simple Token.RBRACE 1
        | ',', _, _ -> simple Token.COMMA 1
        | '.', _, _ -> simple Token.DOT 1
        | ':', _, _ -> simple Token.COLON 1
        | ';', _, _ -> simple Token.SEMI 1
        | '*', _, _ -> simple Token.STAR 1
        | '+', _, _ -> simple Token.PLUS 1
        | '-', _, _ -> simple Token.MINUS 1
        | '/', _, _ -> simple Token.SLASH 1
        | '%', _, _ -> simple Token.PERCENT 1
        | _ -> Loc.error l "unexpected character %C" c);
        go ()
  in
  go ();
  List.rev !out
