(** GraQL lexical tokens. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string  (** quoted with single or double quotes *)
  | PARAM of string  (** [%Name%] query parameter *)
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | DOT
  | COLON
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  (* path arrows *)
  | DASHDASH  (** [--] opening an out-edge step *)
  | DASHDASHGT  (** [-->] closing an out-edge step *)
  | LTDASHDASH  (** [<--] opening an in-edge step *)
  | EOF

val to_string : t -> string
val describe : t -> string
(** Human form for error messages, e.g. ["identifier"] for [IDENT _]. *)
