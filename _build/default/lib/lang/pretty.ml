open Ast

let binop_str = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | And -> "and"
  | Or -> "or"
  | Like -> "like"

let lit ppf = function
  | L_int i -> Format.pp_print_int ppf i
  | L_float f -> Format.fprintf ppf "%g" f
  | L_string s -> Format.fprintf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | L_bool b -> Format.pp_print_bool ppf b
  | L_null -> Format.pp_print_string ppf "null"

let rec expr ppf = function
  | E_lit (l, _) -> lit ppf l
  | E_param (p, _) -> Format.fprintf ppf "%%%s%%" p
  | E_attr (None, a, _) -> Format.pp_print_string ppf a
  | E_attr (Some q, a, _) -> Format.fprintf ppf "%s.%s" q a
  | E_binop (op, a, b, _) ->
      Format.fprintf ppf "(%a %s %a)" expr a (binop_str op) expr b
  | E_unop (Not, a, _) -> Format.fprintf ppf "(not %a)" expr a
  | E_unop (Neg, a, _) -> Format.fprintf ppf "(- %a)" expr a
  | E_is_null (a, false, _) -> Format.fprintf ppf "(%a is null)" expr a
  | E_is_null (a, true, _) -> Format.fprintf ppf "(%a is not null)" expr a
  | E_call (f, args, _) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf -> function
             | A_star -> Format.pp_print_string ppf "*"
             | A_expr e -> expr ppf e))
        args

let label ppf = function
  | Set_label n -> Format.fprintf ppf "def %s: " n
  | Each_label n -> Format.fprintf ppf "foreach %s: " n

let vstep ppf v =
  Option.iter (label ppf) v.v_label;
  (match v.v_kind with
  | V_named n -> Format.pp_print_string ppf n
  | V_any -> Format.pp_print_string ppf "[ ]"
  | V_seeded (g, vt) -> Format.fprintf ppf "%s.%s" g vt);
  match v.v_cond with
  | Some c -> Format.fprintf ppf " (%a)" expr c
  | None -> ()

let edge_name ppf = function
  | E_named n -> Format.pp_print_string ppf n
  | E_any -> Format.pp_print_string ppf "[ ]"

let estep ppf e =
  let lbl ppf = Option.iter (label ppf) e.e_label in
  let cond ppf =
    match e.e_cond with
    | Some c -> Format.fprintf ppf "(%a)" expr c
    | None -> ()
  in
  match e.e_dir with
  | Out -> Format.fprintf ppf "--%t%a%t-->" lbl edge_name e.e_kind cond
  | In -> Format.fprintf ppf "<--%t%a%t--" lbl edge_name e.e_kind cond

let rx_op ppf = function
  | Rx_star -> Format.pp_print_string ppf "*"
  | Rx_plus -> Format.pp_print_string ppf "+"
  | Rx_count n -> Format.fprintf ppf "{%d}" n

let segment ppf = function
  | Seg_step (e, v) -> Format.fprintf ppf " %a %a" estep e vstep v
  | Seg_regex (body, op, _) ->
      Format.fprintf ppf " (";
      List.iter (fun (e, v) -> Format.fprintf ppf " %a %a" estep e vstep v) body;
      Format.fprintf ppf " )%a" rx_op op

let path ppf p =
  vstep ppf p.head;
  List.iter (segment ppf) p.segments

let rec multipath ppf = function
  | M_path p -> path ppf p
  | M_and (a, b) -> Format.fprintf ppf "(%a) and (%a)" multipath a multipath b
  | M_or (a, b) -> Format.fprintf ppf "(%a) or (%a)" multipath a multipath b

let target ppf = function
  | T_star -> Format.pp_print_string ppf "*"
  | T_expr (e, None) -> expr ppf e
  | T_expr (e, Some a) -> Format.fprintf ppf "%a as %s" expr e a

let targets ppf ts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    target ppf ts

let into ppf = function
  | Into_table n -> Format.fprintf ppf " into table %s" n
  | Into_subgraph n -> Format.fprintf ppf " into subgraph %s" n
  | Into_nothing -> ()

let dtype ppf t = Format.pp_print_string ppf (Graql_storage.Dtype.to_string t)

let stmt ppf = function
  | Create_table { ct_name; ct_cols; _ } ->
      Format.fprintf ppf "create table %s (%a)" ct_name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf c -> Format.fprintf ppf "%s %a" c.cd_name dtype c.cd_type))
        ct_cols
  | Create_vertex { cv_name; cv_key; cv_from; cv_where; _ } ->
      Format.fprintf ppf "create vertex %s(%s) from table %s" cv_name
        (String.concat ", " cv_key) cv_from;
      Option.iter (Format.fprintf ppf " where %a" expr) cv_where
  | Create_edge { ce_name; ce_src; ce_dst; ce_from; ce_where; _ } ->
      let endpoint ppf e =
        Format.pp_print_string ppf e.ve_type;
        Option.iter (Format.fprintf ppf " as %s") e.ve_alias
      in
      Format.fprintf ppf "create edge %s with vertices (%a, %a)" ce_name
        endpoint ce_src endpoint ce_dst;
      Option.iter (Format.fprintf ppf " from table %s") ce_from;
      Option.iter (Format.fprintf ppf " where %a" expr) ce_where
  | Ingest { ing_table; ing_file; _ } ->
      Format.fprintf ppf "ingest table %s '%s'" ing_table ing_file
  | Select_graph { sg_targets; sg_path; sg_into; _ } ->
      Format.fprintf ppf "select %a from graph %a%a" targets sg_targets
        multipath sg_path into sg_into
  | Select_table t ->
      Format.fprintf ppf "select ";
      if t.st_distinct then Format.fprintf ppf "distinct ";
      Option.iter (Format.fprintf ppf "top %d ") t.st_top;
      Format.fprintf ppf "%a from table " targets t.st_targets;
      (match t.st_from with
      | From_table (n, alias) ->
          Format.pp_print_string ppf n;
          Option.iter (Format.fprintf ppf " as %s") alias
      | From_join (srcs, where) ->
          Format.pp_print_string ppf
            (String.concat ", "
               (List.map
                  (fun (n, a) ->
                    match a with Some a -> n ^ " as " ^ a | None -> n)
                  srcs));
          Option.iter (Format.fprintf ppf " where %a" expr) where);
      Option.iter (Format.fprintf ppf " where %a" expr) t.st_where;
      (match t.st_group_by with
      | [] -> ()
      | cols ->
          Format.fprintf ppf " group by %s"
            (String.concat ", "
               (List.map
                  (fun (q, c) ->
                    match q with Some q -> q ^ "." ^ c | None -> c)
                  cols)));
      (match t.st_order_by with
      | [] -> ()
      | keys ->
          Format.fprintf ppf " order by ";
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
            (fun ppf (e, d) ->
              Format.fprintf ppf "%a %s" expr e
                (match d with Asc -> "asc" | Desc -> "desc"))
            ppf keys);
      into ppf t.st_into
  | Set_param { sp_name; sp_value; _ } ->
      Format.fprintf ppf "set %%%s%% = %a" sp_name lit sp_value

let script ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
    stmt ppf stmts

let expr_to_string e = Format.asprintf "%a" expr e
let stmt_to_string s = Format.asprintf "%a" stmt s
let script_to_string s = Format.asprintf "%a" script s
