(** Saving a database back to files: the paper's data sources "reside on a
    high performance parallel filesystem ... for purposes of data ingest
    and eventual output to files". Export writes one CSV per table plus a
    [schema.graql] that reconstructs the DDL and re-ingests the data, so a
    dump can be reloaded with [graql run schema.graql --data-dir DIR]. *)

val ddl_of_db : Db.t -> string
(** The create table / create vertex / create edge statements describing
    the database, in dependency order, followed by ingest statements. *)

val export : Db.t -> dir:string -> unit
(** Write every table as [<name>.csv] (header row included) plus
    [schema.graql] into [dir] (created if missing). Result subgraphs are
    views and are not persisted — re-run their queries after reload. *)

val export_files : Db.t -> (string * string) list
(** The same content as {!export}, as (filename, contents) pairs — used by
    tests and in-memory round-trips. *)
