module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Row_expr = Graql_relational.Row_expr
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Date = Graql_storage.Date

exception Compile_error of Loc.t * string

type col_ref = { cr_index : int; cr_dtype : Dtype.t }
type binder = qual:string option -> attr:string -> Loc.t -> col_ref

let error loc fmt =
  Printf.ksprintf (fun msg -> raise (Compile_error (loc, msg))) fmt

let value_of_lit = function
  | Ast.L_int i -> Value.Int i
  | Ast.L_float f -> Value.Float f
  | Ast.L_string s -> Value.Str s
  | Ast.L_bool b -> Value.Bool b
  | Ast.L_null -> Value.Null

let binop_cmp = function
  | Ast.Eq -> Some Row_expr.Eq
  | Ast.Ne -> Some Row_expr.Ne
  | Ast.Lt -> Some Row_expr.Lt
  | Ast.Le -> Some Row_expr.Le
  | Ast.Gt -> Some Row_expr.Gt
  | Ast.Ge -> Some Row_expr.Ge
  | _ -> None

let binop_arith = function
  | Ast.Add -> Some Row_expr.Add
  | Ast.Sub -> Some Row_expr.Sub
  | Ast.Mul -> Some Row_expr.Mul
  | Ast.Div -> Some Row_expr.Div
  | Ast.Mod -> Some Row_expr.Mod
  | _ -> None

(* Dtype of an already-lowered expression when statically evident. *)
let rec dtype_of binder_types = function
  | Row_expr.Col i -> binder_types i
  | Row_expr.Const v -> Value.dtype_of v
  | Row_expr.Arith (_, a, b) -> (
      match (dtype_of binder_types a, dtype_of binder_types b) with
      | Some Dtype.Date, _ | _, Some Dtype.Date -> Some Dtype.Date
      | Some Dtype.Float, _ | _, Some Dtype.Float -> Some Dtype.Float
      | t, _ -> t)
  | _ -> None

(* Coerce a string constant to a date when compared against a date-typed
   expression: the concrete syntax writes dates as '2008-01-01'. *)
let coerce_for_cmp binder_types a b =
  let coerce target other =
    match (dtype_of binder_types target, other) with
    | Some Dtype.Date, Row_expr.Const (Value.Str s) -> (
        match Date.of_string_opt s with
        | Some d -> Some (Row_expr.Const (Value.Date d))
        | None -> None)
    | _ -> None
  in
  match coerce a b with
  | Some b' -> (a, b')
  | None -> (
      match coerce b a with
      | Some a' -> (a', b)
      | None -> (a, b))

let compile ?(params = fun _ -> None) (binder : binder) expr =
  (* Track column dtypes so comparisons can coerce constants. *)
  let col_types = Hashtbl.create 8 in
  let binder_types i = Hashtbl.find_opt col_types i in
  let bind ~qual ~attr loc =
    let cr = binder ~qual ~attr loc in
    Hashtbl.replace col_types cr.cr_index cr.cr_dtype;
    Row_expr.Col cr.cr_index
  in
  let rec go = function
    | Ast.E_lit (l, _) -> Row_expr.Const (value_of_lit l)
    | Ast.E_param (name, loc) -> (
        match params name with
        | Some v -> Row_expr.Const v
        | None -> error loc "unbound parameter %%%s%%" name)
    | Ast.E_attr (qual, attr, loc) -> bind ~qual ~attr loc
    | Ast.E_binop (op, a, b, loc) -> (
        let la = go a and lb = go b in
        match binop_cmp op with
        | Some cmp ->
            let la, lb = coerce_for_cmp binder_types la lb in
            Row_expr.Cmp (cmp, la, lb)
        | None -> (
            match binop_arith op with
            | Some arith -> Row_expr.Arith (arith, la, lb)
            | None -> (
                match op with
                | Ast.And -> Row_expr.And (la, lb)
                | Ast.Or -> Row_expr.Or (la, lb)
                | Ast.Like -> (
                    match lb with
                    | Row_expr.Const (Value.Str pattern) ->
                        Row_expr.Like (la, pattern)
                    | _ -> error loc "like pattern must be a string literal")
                | _ -> assert false)))
    | Ast.E_unop (Ast.Not, a, _) -> Row_expr.Not (go a)
    | Ast.E_unop (Ast.Neg, a, _) ->
        Row_expr.Arith (Row_expr.Sub, Row_expr.Const (Value.Int 0), go a)
    | Ast.E_is_null (a, negated, _) ->
        let e = Row_expr.IsNull (go a) in
        if negated then Row_expr.Not e else e
    | Ast.E_call (f, _, loc) ->
        error loc "aggregate %s() cannot appear in a condition" f
  in
  go expr

let rec conjuncts = function
  | Ast.E_binop (Ast.And, a, b, _) -> conjuncts a @ conjuncts b
  | e -> [ e ]
