module Ast = Graql_lang.Ast
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Csr = Graql_graph.Csr
module Subgraph = Graql_graph.Subgraph
module Bitset = Graql_util.Bitset

type seed_strategy =
  | Seed_key_lookup of string
  | Seed_scan_filtered
  | Seed_scan_full
  | Seed_subgraph of string
  | Seed_all_types

type step_plan = { sp_label : string; sp_fanout : float; sp_estimate : float }

type plan = {
  pl_direction : [ `Forward | `Backward ];
  pl_seed : seed_strategy;
  pl_seed_estimate : float;
  pl_steps : step_plan list;
}

let norm = String.lowercase_ascii

(* Selectivity guesses mirror the executor's planner: key equality -> one
   row; any other condition -> 10%. *)
let cond_selectivity = 0.1

let seed_of ~db u (v : Ast.vstep) ~params =
  match v.Ast.v_kind with
  | Ast.V_any ->
      let total =
        Array.fold_left (fun acc vs -> acc + Vset.size vs) 0 u.Pack.vtypes
      in
      (Seed_all_types, float_of_int total)
  | Ast.V_seeded (sg, vt) ->
      let size =
        match Db.find_subgraph db sg with
        | Some sub -> (
            match Subgraph.vertices sub ~vtype:vt with
            | Some bits -> Bitset.cardinal bits
            | None -> 0)
        | None -> 0
      in
      let est =
        match v.Ast.v_cond with
        | Some _ -> float_of_int size *. cond_selectivity
        | None -> float_of_int size
      in
      (Seed_subgraph sg, est)
  | Ast.V_named n -> (
      match Pack.vtype_index u n with
      | None -> (Seed_scan_full, 0.0) (* label head: sized by the other path *)
      | Some tidx -> (
          let vset = u.Pack.vtypes.(tidx) in
          let size = float_of_int (Vset.size vset) in
          match v.Ast.v_cond with
          | None -> (Seed_scan_full, size)
          | Some cond ->
              let key_schema = Vset.key_schema vset in
              let key_eq =
                if Schema.arity key_schema <> 1 then None
                else
                  let kname = norm (Schema.col_name key_schema 0) in
                  let value_of = function
                    | Ast.E_lit (l, _) -> Some (Compile_expr.value_of_lit l)
                    | Ast.E_param (p, _) -> params p
                    | _ -> None
                  in
                  List.find_map
                    (function
                      | Ast.E_binop (Ast.Eq, Ast.E_attr (_, a, _), rhs, _)
                        when norm a = kname ->
                          value_of rhs
                      | Ast.E_binop (Ast.Eq, lhs, Ast.E_attr (_, a, _), _)
                        when norm a = kname ->
                          value_of lhs
                      | _ -> None)
                    (Compile_expr.conjuncts cond)
              in
              (match key_eq with
              | Some v -> (Seed_key_lookup (Value.to_string v), 1.0)
              | None -> (Seed_scan_filtered, Float.max 1.0 (size *. cond_selectivity)))))

(* Fan-out of one traversal step from a set of possible source types. *)
let step_stats u (e : Ast.estep) ~from_types ~(to_spec : Ast.vstep) =
  let to_name =
    match to_spec.Ast.v_kind with
    | Ast.V_named n when Pack.vtype_index u n <> None -> Some (norm n)
    | Ast.V_seeded (_, vt) -> Some (norm vt)
    | _ -> None
  in
  let esets = ref [] in
  Array.iter
    (fun eset ->
      let name_ok =
        match e.Ast.e_kind with
        | Ast.E_named n -> norm n = norm (Eset.name eset)
        | Ast.E_any -> true
      in
      if name_ok then begin
        let src = norm (Eset.src_type eset) and dst = norm (Eset.dst_type eset) in
        let from_t, to_t =
          match e.Ast.e_dir with Ast.Out -> (src, dst) | Ast.In -> (dst, src)
        in
        let from_ok =
          match from_types with None -> true | Some ts -> List.mem from_t ts
        in
        let to_ok = match to_name with None -> true | Some t -> t = to_t in
        if from_ok && to_ok then esets := eset :: !esets
      end)
    u.Pack.etypes;
  let fanout =
    List.fold_left
      (fun acc eset ->
        let csr =
          match e.Ast.e_dir with
          | Ast.Out -> Eset.forward eset
          | Ast.In -> Eset.reverse eset
        in
        acc +. Csr.avg_degree csr)
      0.0 !esets
  in
  let names =
    match !esets with
    | [] -> "(no matching edge type)"
    | l -> String.concat "+" (List.rev_map Eset.name l)
  in
  let targets =
    match to_name with Some t -> t | None -> "[ ]"
  in
  let dir = match e.Ast.e_dir with Ast.Out -> "-->" | Ast.In -> "<--" in
  (Printf.sprintf "%s %s %s" dir names targets, fanout)

let reverse_if_needed ~db ~params p =
  match Path_exec.chosen_direction p ~db ~params with
  | `Forward -> (`Forward, p)
  | `Backward ->
      (* Mirror the executor: explain the reversed path. *)
      let flip (e : Ast.estep) =
        {
          e with
          Ast.e_dir = (match e.Ast.e_dir with Ast.Out -> Ast.In | Ast.In -> Ast.Out);
        }
      in
      let steps =
        List.map
          (function
            | Ast.Seg_step (e, v) -> (e, v)
            | Ast.Seg_regex _ -> assert false)
          p.Ast.segments
      in
      let vertices = p.Ast.head :: List.map snd steps in
      let edges = List.map fst steps in
      let rev_vertices = List.rev vertices in
      let rev_edges = List.rev_map flip edges in
      (match rev_vertices with
      | [] -> (`Forward, p)
      | head :: rest ->
          let segments = List.map2 (fun e v -> Ast.Seg_step (e, v)) rev_edges rest in
          (`Backward, { Ast.head; segments }))

let explain_path ~db ~params (p : Ast.path) =
  let u = Pack.universe (Db.graph db) in
  let direction, p = reverse_if_needed ~db ~params p in
  let seed, seed_est = seed_of ~db u p.Ast.head ~params in
  let head_types =
    match p.Ast.head.Ast.v_kind with
    | Ast.V_named n when Pack.vtype_index u n <> None -> Some [ norm n ]
    | Ast.V_seeded (_, vt) -> Some [ norm vt ]
    | _ -> None
  in
  let steps = ref [] in
  let est = ref seed_est in
  let types = ref head_types in
  List.iter
    (fun seg ->
      match seg with
      | Ast.Seg_step (e, v) ->
          let label, fanout = step_stats u e ~from_types:!types ~to_spec:v in
          let sel = match v.Ast.v_cond with Some _ -> cond_selectivity | None -> 1.0 in
          est := !est *. fanout *. sel;
          steps := { sp_label = label; sp_fanout = fanout; sp_estimate = !est } :: !steps;
          types :=
            (match v.Ast.v_kind with
            | Ast.V_named n when Pack.vtype_index u n <> None -> Some [ norm n ]
            | Ast.V_seeded (_, vt) -> Some [ norm vt ]
            | _ -> None)
      | Ast.Seg_regex (body, op, _) ->
          (* Crude: a closure step can reach anything; report the body
             fan-out and stop refining types. *)
          let fanout =
            List.fold_left
              (fun acc (e, v) ->
                let _, f = step_stats u e ~from_types:None ~to_spec:v in
                acc +. f)
              0.0 body
          in
          let opname =
            match op with
            | Ast.Rx_star -> "*"
            | Ast.Rx_plus -> "+"
            | Ast.Rx_count n -> Printf.sprintf "{%d}" n
          in
          est := !est *. Float.max 1.0 fanout;
          steps :=
            {
              sp_label = Printf.sprintf "( regex )%s" opname;
              sp_fanout = fanout;
              sp_estimate = !est;
            }
            :: !steps;
          types := None)
    p.Ast.segments;
  { pl_direction = direction; pl_seed = seed; pl_seed_estimate = seed_est;
    pl_steps = List.rev !steps }

let rec explain_multipath ~db ~params = function
  | Ast.M_path p -> [ explain_path ~db ~params p ]
  | Ast.M_and (a, b) | Ast.M_or (a, b) ->
      explain_multipath ~db ~params a @ explain_multipath ~db ~params b

let seed_string = function
  | Seed_key_lookup v -> Printf.sprintf "key index lookup (= %s)" v
  | Seed_scan_filtered -> "type scan with filter"
  | Seed_scan_full -> "full type scan"
  | Seed_subgraph sg -> Printf.sprintf "subgraph seed (%s)" sg
  | Seed_all_types -> "all vertex types"

let pp ppf plan =
  Format.fprintf ppf "direction: %s@\nseed: %s (est. %.1f)"
    (match plan.pl_direction with `Forward -> "forward" | `Backward -> "backward (reversed via reverse index)")
    (seed_string plan.pl_seed) plan.pl_seed_estimate;
  List.iter
    (fun s ->
      Format.fprintf ppf "@\nstep: %-36s fanout %6.2f   est. frontier %10.1f"
        s.sp_label s.sp_fanout s.sp_estimate)
    plan.pl_steps

let to_string plan = Format.asprintf "%a" pp plan
