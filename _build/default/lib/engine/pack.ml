module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Graph_store = Graql_graph.Graph_store

type t = int

let id_bits = 40
let id_mask = (1 lsl id_bits) - 1

let pack ~tidx ~id =
  if id < 0 || id > id_mask then invalid_arg "Pack.pack: id out of range";
  (tidx lsl id_bits) lor id

let tidx t = t lsr id_bits
let id t = t land id_mask

type universe = {
  vtypes : Vset.t array;
  vindex : (string, int) Hashtbl.t;
  etypes : Eset.t array;
  eindex : (string, int) Hashtbl.t;
}

let norm = String.lowercase_ascii

let universe store =
  let vnames = Graph_store.vset_names store in
  let enames = Graph_store.eset_names store in
  let vtypes =
    Array.of_list (List.map (Graph_store.find_vset_exn store) vnames)
  in
  let etypes =
    Array.of_list (List.map (Graph_store.find_eset_exn store) enames)
  in
  let vindex = Hashtbl.create 16 and eindex = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace vindex (norm (Vset.name v)) i) vtypes;
  Array.iteri (fun i e -> Hashtbl.replace eindex (norm (Eset.name e)) i) etypes;
  { vtypes; vindex; etypes; eindex }

let vtype_index u name = Hashtbl.find_opt u.vindex (norm name)
let etype_index u name = Hashtbl.find_opt u.eindex (norm name)
let vset_of u cell = u.vtypes.(tidx cell)
let eset_of u cell = u.etypes.(tidx cell)
