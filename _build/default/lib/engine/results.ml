module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Subgraph = Graql_graph.Subgraph
module Row_expr = Graql_relational.Row_expr

exception Result_error of Loc.t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Result_error (loc, msg))) fmt
let norm = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Subgraph capture                                                    *)

let slot_matches_name (s : Path_exec.slot) name =
  (match s.Path_exec.s_label with Some l -> norm l = norm name | None -> false)
  || match s.Path_exec.s_type_name with
     | Some t -> norm t = norm name
     | None -> false

let to_subgraph ~name ~targets ~loc (res : Path_exec.result) =
  let u = res.Path_exec.universe in
  let sg = Subgraph.empty name in
  let star = List.exists (fun t -> t = Ast.T_star) targets in
  let wanted_names =
    List.filter_map
      (function
        | Ast.T_star -> None
        | Ast.T_expr (Ast.E_attr (None, n, _), None) -> Some n
        | Ast.T_expr (e, _) ->
            error (Ast.expr_loc e)
              "subgraph output selects steps or labels, not expressions")
      targets
  in
  let add_cell_v seen cell =
    if not (Hashtbl.mem seen cell) then begin
      Hashtbl.replace seen cell ();
      let vset = u.Pack.vtypes.(Pack.tidx cell) in
      Subgraph.add_vertex_list sg ~vtype:(Vset.name vset) [ Pack.id cell ]
        ~size:(Vset.size vset)
    end
  in
  let add_cell_e seen cell =
    if not (Hashtbl.mem seen cell) then begin
      Hashtbl.replace seen cell ();
      let eset = u.Pack.etypes.(Pack.tidx cell) in
      Subgraph.add_edges sg ~etype:(Eset.name eset) [ Pack.id cell ]
    end
  in
  let seen_v = Hashtbl.create 1024 and seen_e = Hashtbl.create 1024 in
  List.iter
    (fun (comp : Path_exec.component) ->
      Array.iteri
        (fun i (slot : Path_exec.slot) ->
          let wanted =
            star
            || List.exists (slot_matches_name slot) wanted_names
          in
          if wanted then
            match slot.Path_exec.s_kind with
            | `V ->
                Array.iter (fun row -> add_cell_v seen_v row.(i)) comp.Path_exec.rows
            | `E ->
                if star then
                  Array.iter (fun row -> add_cell_e seen_e row.(i)) comp.Path_exec.rows)
        comp.Path_exec.slots)
    res.Path_exec.comps;
  if star then List.iter (add_cell_e seen_e) res.Path_exec.regex_edges;
  ignore loc;
  sg

(* ------------------------------------------------------------------ *)
(* Table capture                                                       *)

(* Attribute of a packed cell, by name; Null when absent. *)
let cell_attr u (kind : [ `V | `E ]) cell attr =
  match kind with
  | `V -> (
      let vset = u.Pack.vtypes.(Pack.tidx cell) in
      match Schema.find (Vset.attr_schema vset) attr with
      | Some col -> Vset.attr vset ~vertex:(Pack.id cell) ~col
      | None -> Value.Null)
  | `E -> (
      let eset = u.Pack.etypes.(Pack.tidx cell) in
      match Eset.attr_table eset with
      | Some table -> (
          match Schema.find (Table.schema table) attr with
          | Some col ->
              Table.get table ~row:(Eset.attr_row eset (Pack.id cell)) ~col
          | None -> Value.Null)
      | None -> Value.Null)

(* Positions of slots matching a qualifier; labels take precedence. *)
let resolve_qualifier (comp : Path_exec.component) qual loc =
  let slots = comp.Path_exec.slots in
  let by_label =
    List.filter
      (fun i ->
        match slots.(i).Path_exec.s_label with
        | Some l -> norm l = norm qual
        | None -> false)
      (List.init (Array.length slots) Fun.id)
  in
  match by_label with
  | [ i ] -> i
  | _ :: _ -> error loc "label %S is bound to several columns" qual
  | [] -> (
      let by_type =
        List.filter
          (fun i ->
            match slots.(i).Path_exec.s_type_name with
            | Some t -> norm t = norm qual
            | None -> false)
          (List.init (Array.length slots) Fun.id)
      in
      match by_type with
      | [ i ] -> i
      | [] -> error loc "%S does not name a step or label of this query" qual
      | _ ->
          error loc
            "%S appears at several steps; label the one you mean (def %s:)"
            qual qual)

(* Static dtype of slot.attr when the slot is single-typed. *)
let slot_attr_dtype u (slot : Path_exec.slot) attr =
  match (slot.Path_exec.s_kind, slot.Path_exec.s_type_name) with
  | `V, Some t -> (
      match Pack.vtype_index u t with
      | Some tidx -> (
          let schema = Vset.attr_schema u.Pack.vtypes.(tidx) in
          match Schema.find schema attr with
          | Some i -> Some (Schema.col_dtype schema i)
          | None -> None)
      | None -> None)
  | `E, Some t -> (
      match Pack.etype_index u t with
      | Some tidx -> (
          match Eset.attr_table u.Pack.etypes.(tidx) with
          | Some table -> (
              let schema = Table.schema table in
              match Schema.find schema attr with
              | Some i -> Some (Schema.col_dtype schema i)
              | None -> None)
          | None -> None)
      | None -> None)
  | _, None -> None

(* Compile a target expression against a component layout. Sources are
   (slot position, attr name) pairs resolved per row. *)
let compile_target u (comp : Path_exec.component) ~params expr =
  let sources = ref [] in
  let nsources = ref 0 in
  let add src =
    sources := src :: !sources;
    incr nsources;
    !nsources - 1
  in
  let binder ~qual ~attr loc : Compile_expr.col_ref =
    match qual with
    | None ->
        raise
          (Compile_expr.Compile_error
             ( loc,
               Printf.sprintf
                 "attribute %S must be qualified by a step type or label" attr ))
    | Some q ->
        let pos = resolve_qualifier comp q loc in
        let dtype =
          match slot_attr_dtype u comp.Path_exec.slots.(pos) attr with
          | Some t -> t
          | None -> Dtype.Varchar 255
        in
        { Compile_expr.cr_index = add (pos, attr); cr_dtype = dtype }
  in
  let lowered = Compile_expr.compile ~params binder expr in
  let sources = Array.of_list (List.rev !sources) in
  fun (row : int array) ->
    let get i =
      let pos, attr = sources.(i) in
      let slot = comp.Path_exec.slots.(pos) in
      cell_attr u slot.Path_exec.s_kind row.(pos) attr
    in
    Row_expr.eval get lowered

(* Columns for [select *]: every slot, in display (s_step) order, expanded
   to its full attribute schema, prefixed by label or type name. *)
let star_columns u (comp : Path_exec.component) loc =
  let slots = comp.Path_exec.slots in
  let order =
    List.sort
      (fun a b -> compare slots.(a).Path_exec.s_step slots.(b).Path_exec.s_step)
      (List.init (Array.length slots) Fun.id)
  in
  let used = Hashtbl.create 16 in
  let unique base =
    let rec go n =
      let candidate = if n = 0 then base else Printf.sprintf "%s%d" base (n + 1) in
      if Hashtbl.mem used (norm candidate) then go (n + 1)
      else begin
        Hashtbl.replace used (norm candidate) ();
        candidate
      end
    in
    go 0
  in
  List.concat_map
    (fun pos ->
      let slot = slots.(pos) in
      let display =
        match (slot.Path_exec.s_label, slot.Path_exec.s_type_name) with
        | Some l, _ -> l
        | None, Some t -> t
        | None, None ->
            error loc
              "select * into table is not supported over type-matching [ ] \
               steps; name the outputs instead"
      in
      let schema =
        match (slot.Path_exec.s_kind, slot.Path_exec.s_type_name) with
        | `V, Some t ->
            Vset.attr_schema
              u.Pack.vtypes.(Option.get (Pack.vtype_index u t))
        | `E, Some t -> (
            match
              Eset.attr_table u.Pack.etypes.(Option.get (Pack.etype_index u t))
            with
            | Some table -> Table.schema table
            | None -> Schema.make [])
        | _, None -> error loc "select * over unnamed steps is not supported"
      in
      let prefix = unique display in
      List.map
        (fun i ->
          ( pos,
            Schema.col_name schema i,
            {
              Schema.name = prefix ^ "." ^ Schema.col_name schema i;
              dtype = Schema.col_dtype schema i;
            } ))
        (List.init (Schema.arity schema) Fun.id))
    order

let single_component ~loc (res : Path_exec.result) =
  match res.Path_exec.comps with
  | [ comp ] -> comp
  | [] -> error loc "query produced no result component"
  | _ ->
      error loc
        "'or' alternatives with different shapes cannot be captured into a \
         table; capture a subgraph instead"

let to_table ~name ~targets ~params ~loc (res : Path_exec.result) =
  let u = res.Path_exec.universe in
  let comp = single_component ~loc res in
  if List.exists (fun t -> t = Ast.T_star) targets then begin
    let cols = star_columns u comp loc in
    let schema = Schema.make (List.map (fun (_, _, c) -> c) cols) in
    let out = Table.create ~name schema in
    Array.iter
      (fun row ->
        let values =
          List.map
            (fun (pos, attr, _) ->
              let slot = comp.Path_exec.slots.(pos) in
              cell_attr u slot.Path_exec.s_kind row.(pos) attr)
            cols
        in
        Table.append_row out values)
      comp.Path_exec.rows;
    out
  end
  else begin
    let specs =
      List.map
        (function
          | Ast.T_star -> assert false
          | Ast.T_expr (e, alias) ->
              let cname =
                match (alias, e) with
                | Some a, _ -> a
                | None, Ast.E_attr (_, a, _) -> a
                | None, _ ->
                    error (Ast.expr_loc e)
                      "computed select target needs an 'as' alias"
              in
              let dtype =
                match e with
                | Ast.E_attr (Some q, a, l) -> (
                    let pos = resolve_qualifier comp q l in
                    match slot_attr_dtype u comp.Path_exec.slots.(pos) a with
                    | Some t -> t
                    | None -> Dtype.Varchar 255)
                | _ -> Dtype.Varchar 255
              in
              let eval =
                try compile_target u comp ~params e
                with Compile_expr.Compile_error (l, msg) -> error l "%s" msg
              in
              (cname, dtype, eval))
        targets
    in
    let schema =
      Schema.make (List.map (fun (n, t, _) -> { Schema.name = n; dtype = t }) specs)
    in
    let out = Table.create ~name schema in
    Array.iter
      (fun row ->
        Table.append_row out (List.map (fun (_, _, eval) -> eval row) specs))
      comp.Path_exec.rows;
    out
  end
