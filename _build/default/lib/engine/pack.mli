(** Typed entity handles for the path executor.

    Vertex/edge ids are dense per type; binding-relation cells must carry
    the type too (variant [ ] steps mix types in one column). A cell packs
    (type index, id) into one int: 23 bits of type, 40 bits of id. *)

module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset

type t = int

val pack : tidx:int -> id:int -> t
val tidx : t -> int
val id : t -> int

(** Per-query registry of the graph's vertex and edge types. *)
type universe = {
  vtypes : Vset.t array;
  vindex : (string, int) Hashtbl.t;  (** normalized name -> index *)
  etypes : Eset.t array;
  eindex : (string, int) Hashtbl.t;
}

val universe : Graql_graph.Graph_store.t -> universe
val vtype_index : universe -> string -> int option
val etype_index : universe -> string -> int option
val vset_of : universe -> t -> Vset.t
(** Vertex set of a packed vertex cell. *)

val eset_of : universe -> t -> Eset.t
