(** Execution of relational [select ... from table ...] statements —
    the Table I operation set: selection/projection, where filters,
    group by with count/sum/avg/min/max, order by, distinct, top n,
    aliases, and implicit joins over several tables. *)

module Ast = Graql_lang.Ast
module Table = Graql_storage.Table
module Value = Graql_storage.Value

exception Table_error of Graql_lang.Loc.t * string

val exec :
  db:Db.t ->
  params:(string -> Value.t option) ->
  name:string ->
  Ast.select_table ->
  Table.t
(** Evaluate the statement; the result table is named [name] (the [into]
    target or a temporary display name). *)
