module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype
module Csv = Graql_storage.Csv
module Table_catalog = Graql_storage.Table_catalog
module Pretty = Graql_lang.Pretty
module Ast = Graql_lang.Ast

let csv_name table = String.lowercase_ascii (Table.name table) ^ ".csv"

let create_table_stmt table =
  let schema = Table.schema table in
  let cols =
    List.init (Schema.arity schema) (fun i ->
        Printf.sprintf "%s %s" (Schema.col_name schema i)
          (Dtype.to_string (Schema.col_dtype schema i)))
  in
  Printf.sprintf "create table %s (%s)" (Table.name table)
    (String.concat ", " cols)

let vertex_stmt (vd : Db.vertex_def) =
  let where =
    match vd.Db.vd_where with
    | Some e -> Printf.sprintf " where %s" (Pretty.expr_to_string e)
    | None -> ""
  in
  Printf.sprintf "create vertex %s(%s) from table %s%s" vd.Db.vd_name
    (String.concat ", " vd.Db.vd_key)
    vd.Db.vd_from where

let edge_stmt (ed : Db.edge_def) =
  let endpoint (e : Ast.vertex_endpoint) =
    match e.Ast.ve_alias with
    | Some a -> Printf.sprintf "%s as %s" e.Ast.ve_type a
    | None -> e.Ast.ve_type
  in
  let from =
    match ed.Db.ed_from with
    | Some t -> Printf.sprintf " from table %s" t
    | None -> ""
  in
  let where =
    match ed.Db.ed_where with
    | Some e -> Printf.sprintf " where %s" (Pretty.expr_to_string e)
    | None -> ""
  in
  Printf.sprintf "create edge %s with vertices (%s, %s)%s%s" ed.Db.ed_name
    (endpoint ed.Db.ed_src) (endpoint ed.Db.ed_dst) from where

let ddl_of_db db =
  let tables =
    List.map (Table_catalog.find_exn (Db.tables db)) (Table_catalog.names (Db.tables db))
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf (create_table_stmt t);
      Buffer.add_char buf '\n')
    tables;
  List.iter
    (fun vd ->
      Buffer.add_string buf (vertex_stmt vd);
      Buffer.add_char buf '\n')
    (Db.vertex_defs db);
  List.iter
    (fun ed ->
      Buffer.add_string buf (edge_stmt ed);
      Buffer.add_char buf '\n')
    (Db.edge_defs db);
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "ingest table %s %s\n" (Table.name t) (csv_name t)))
    tables;
  Buffer.contents buf

let export_files db =
  let tables =
    List.map (Table_catalog.find_exn (Db.tables db)) (Table_catalog.names (Db.tables db))
  in
  ("schema.graql", ddl_of_db db)
  :: List.map (fun t -> (csv_name t, Csv.table_to_csv t)) tables

let export db ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, contents) ->
      let oc = open_out_bin (Filename.concat dir name) in
      output_string oc contents;
      close_out oc)
    (export_files db)
