(** Compiled step conditions: a GraQL condition on a vertex/edge step,
    lowered once per (step, candidate type) and then evaluated per
    candidate against the current binding row.

    Supported references: the candidate's own attributes (unqualified or
    qualified by the step's type name) and attributes of labeled earlier
    steps ([label.attr]) — Sec. II-B "attributes can be compared against
    constants, other attributes of the same step, and/or attributes from
    previous steps (if labeled)". *)

module Ast = Graql_lang.Ast
module Value = Graql_storage.Value

type slot_lookup = {
  find_slot : string -> (int * [ `V | `E ]) option;
      (** label name -> (column in the row, vertex or edge slot) *)
}

type t

val compile_vertex :
  params:(string -> Value.t option) ->
  universe:Pack.universe ->
  slots:slot_lookup ->
  self_names:string list ->
  vset:Graql_graph.Vset.t ->
  Ast.expr ->
  t
(** [self_names] — qualifiers that mean "this step" (type name, label). *)

val compile_edge :
  params:(string -> Value.t option) ->
  universe:Pack.universe ->
  slots:slot_lookup ->
  self_names:string list ->
  eset:Graql_graph.Eset.t ->
  Ast.expr ->
  t

val eval_vertex : t -> row:int array -> vertex:int -> bool
(** [vertex] is the raw (unpacked) candidate id. *)

val eval_edge : t -> row:int array -> edge:int -> bool
