(** Lowering of GraQL condition/target expressions to executable
    {!Graql_relational.Row_expr} over a concrete column layout. *)

module Ast = Graql_lang.Ast
module Row_expr = Graql_relational.Row_expr
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype

exception Compile_error of Graql_lang.Loc.t * string

type col_ref = { cr_index : int; cr_dtype : Dtype.t }

type binder = qual:string option -> attr:string -> Graql_lang.Loc.t -> col_ref
(** Maps an attribute reference to a column of the evaluation row. Raise
    {!Compile_error} for unknown references. *)

val value_of_lit : Ast.lit -> Value.t

val compile :
  ?params:(string -> Value.t option) -> binder -> Ast.expr -> Row_expr.t
(** Raises {!Compile_error} on unbound parameters, aggregate calls, or
    binder failures. String constants compared against date columns are
    coerced to dates at compile time. *)

val conjuncts : Ast.expr -> Ast.expr list
(** Flatten top-level [and]s — used by the edge-declaration join planner. *)
