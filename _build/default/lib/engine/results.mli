(** Materialization of path-query results (Sec. II-C): named subgraphs and
    tables. *)

module Ast = Graql_lang.Ast
module Table = Graql_storage.Table
module Value = Graql_storage.Value

exception Result_error of Graql_lang.Loc.t * string

val to_subgraph :
  name:string ->
  targets:Ast.target list ->
  loc:Graql_lang.Loc.t ->
  Path_exec.result ->
  Graql_graph.Subgraph.t
(** [select *] captures every matched vertex and edge (Fig. 11, resultsG);
    named targets capture only those steps' vertices (resultsBE) — the
    possibly-disconnected subgraph of Sec. II-C. *)

val to_table :
  name:string ->
  targets:Ast.target list ->
  params:(string -> Value.t option) ->
  loc:Graql_lang.Loc.t ->
  Path_exec.result ->
  Table.t
(** One output row per match tuple (multiplicity preserved — Berlin Q2
    depends on it). [select *] flattens all attributes of all entities on
    the path (Fig. 13); qualified targets project label/step attributes. *)
