(** Brute-force reference implementation of simple path queries.

    This is the baseline a CSR-indexed engine is measured against, and the
    oracle the optimized executor is property-tested against: no edge
    indices (adjacency by scanning the whole edge array), no planner, no
    projection/dedup, no parallelism. Supports named and [ ] steps in both
    directions, vertex/edge conditions, and set/element-wise labels — the
    full single-path language minus regexes and subgraph seeds.

    Complexity is O(paths × edges) per step; use on small graphs only. *)

module Ast = Graql_lang.Ast
module Value = Graql_storage.Value

exception Unsupported of string

val run_path :
  db:Db.t ->
  params:(string -> Value.t option) ->
  Ast.path ->
  int array list
(** All match tuples, bag semantics. Each tuple holds the packed vertex
    cell of every vertex step, in lexical path order (edges contribute
    multiplicity but are not reported). Raises {!Unsupported} on regex
    segments or seeded steps. *)
