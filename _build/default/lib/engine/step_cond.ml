module Ast = Graql_lang.Ast
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Table = Graql_storage.Table
module Row_expr = Graql_relational.Row_expr
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset

type slot_lookup = { find_slot : string -> (int * [ `V | `E ]) option }

(* Where does virtual column [i] of the compiled expression read from? *)
type source =
  | S_self of int  (** attribute index of the candidate entity *)
  | S_slot of { slot : int; kind : [ `V | `E ]; attr : string }
      (** attribute of a labeled earlier step; resolved by name at eval
          time because a variant-step label mixes types. *)

type self_accessor = {
  sa_get : int -> int -> Value.t;  (** entity id -> attr index -> value *)
  sa_schema : Schema.t;
  sa_what : string;
}

type t = {
  expr : Row_expr.t;
  sources : source array;
  self : self_accessor;
  universe : Pack.universe;
}

let norm = String.lowercase_ascii

let compile_generic ~params ~universe ~slots ~self_names ~(self : self_accessor)
    ast =
  let sources = ref [] in
  let nsources = ref 0 in
  let add src =
    sources := src :: !sources;
    incr nsources;
    !nsources - 1
  in
  let self_names = List.map norm self_names in
  let binder ~qual ~attr loc : Compile_expr.col_ref =
    let self_lookup () =
      match Schema.find self.sa_schema attr with
      | Some i ->
          {
            Compile_expr.cr_index = add (S_self i);
            cr_dtype = Schema.col_dtype self.sa_schema i;
          }
      | None ->
          raise
            (Compile_expr.Compile_error
               ( loc,
                 Printf.sprintf "%s has no attribute %S" self.sa_what attr ))
    in
    match qual with
    | None -> self_lookup ()
    | Some q when List.mem (norm q) self_names -> self_lookup ()
    | Some q -> (
        match slots.find_slot (norm q) with
        | Some (slot, kind) ->
            (* Type resolved per row at eval time; dtype statically unknown
               for variant labels — report from the first vertex type that
               has the attribute, for constant coercion. *)
            let dtype =
              let found = ref None in
              Array.iter
                (fun v ->
                  if !found = None then
                    match Schema.find (Vset.attr_schema v) attr with
                    | Some i -> found := Some (Schema.col_dtype (Vset.attr_schema v) i)
                    | None -> ())
                universe.Pack.vtypes;
              match !found with
              | Some t -> t
              | None -> Graql_storage.Dtype.Varchar 255
            in
            {
              Compile_expr.cr_index = add (S_slot { slot; kind; attr });
              cr_dtype = dtype;
            }
        | None ->
            raise
              (Compile_expr.Compile_error
                 ( loc,
                   Printf.sprintf
                     "unknown qualifier %S (expected this step or a label)" q ))
      )
  in
  let expr = Compile_expr.compile ~params binder ast in
  {
    expr;
    sources = Array.of_list (List.rev !sources);
    self;
    universe;
  }

let vertex_accessor vset =
  {
    sa_get = (fun v attr -> Vset.attr vset ~vertex:v ~col:attr);
    sa_schema = Vset.attr_schema vset;
    sa_what = Printf.sprintf "vertex type %s" (Vset.name vset);
  }

let edge_accessor eset =
  match Eset.attr_table eset with
  | Some table ->
      {
        sa_get = (fun e attr -> Table.get table ~row:(Eset.attr_row eset e) ~col:attr);
        sa_schema = Table.schema table;
        sa_what = Printf.sprintf "edge type %s" (Eset.name eset);
      }
  | None ->
      {
        sa_get = (fun _ _ -> Value.Null);
        sa_schema = Schema.make [];
        sa_what = Printf.sprintf "edge type %s (no attributes)" (Eset.name eset);
      }

let compile_vertex ~params ~universe ~slots ~self_names ~vset ast =
  compile_generic ~params ~universe ~slots ~self_names
    ~self:(vertex_accessor vset) ast

let compile_edge ~params ~universe ~slots ~self_names ~eset ast =
  compile_generic ~params ~universe ~slots ~self_names
    ~self:(edge_accessor eset) ast

let slot_attr universe row slot kind attr =
  let cell = row.(slot) in
  match kind with
  | `V -> (
      let vset = Pack.vset_of universe cell in
      match Schema.find (Vset.attr_schema vset) attr with
      | Some col -> Vset.attr vset ~vertex:(Pack.id cell) ~col
      | None -> Value.Null)
  | `E -> (
      let eset = Pack.eset_of universe cell in
      match Eset.attr_table eset with
      | Some table -> (
          match Schema.find (Table.schema table) attr with
          | Some col ->
              Table.get table ~row:(Eset.attr_row eset (Pack.id cell)) ~col
          | None -> Value.Null)
      | None -> Value.Null)

let eval t ~row ~entity =
  let get i =
    match t.sources.(i) with
    | S_self attr -> t.self.sa_get entity attr
    | S_slot { slot; kind; attr } -> slot_attr t.universe row slot kind attr
  in
  Row_expr.eval_bool get t.expr

let eval_vertex t ~row ~vertex = eval t ~row ~entity:vertex
let eval_edge t ~row ~edge = eval t ~row ~entity:edge
