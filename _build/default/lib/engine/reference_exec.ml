module Ast = Graql_lang.Ast
module Value = Graql_storage.Value
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset

exception Unsupported of string

let norm = String.lowercase_ascii

(* Partial match: packed vertex cells of the vertex steps matched so far,
   most recent first. *)
type partial = int list

type label_info = { li_pos : int (* vstep index *); li_each : bool }

let run_path ~db ~params (p : Ast.path) =
  let u = Pack.universe (Db.graph db) in
  let labels : (string, label_info) Hashtbl.t = Hashtbl.create 4 in
  let no_slots = { Step_cond.find_slot = (fun _ -> None) } in
  (* Conditions may reference labels; resolve label refs by evaluating
     against the partial tuple. We reuse Step_cond with a slot lookup that
     maps label names to positions in the tuple-so-far (vstep indices). *)
  let slots_for_step nmatched =
    {
      Step_cond.find_slot =
        (fun name ->
          match Hashtbl.find_opt labels (norm name) with
          | Some li when li.li_pos < nmatched -> Some (li.li_pos, `V)
          | _ -> None);
    }
  in
  ignore no_slots;
  let row_of (partial : partial) nmatched =
    (* Step_cond reads label slots by position within the row array. *)
    let arr = Array.make nmatched 0 in
    List.iteri (fun i cell -> arr.(nmatched - 1 - i) <- cell) partial;
    arr
  in
  let vertex_ok (v : Ast.vstep) ~step_idx ~partial ~cell =
    match v.Ast.v_cond with
    | None -> true
    | Some cond ->
        let vset = Pack.vset_of u cell in
        let self_names =
          (match v.Ast.v_kind with Ast.V_named n -> [ n ] | _ -> [])
          @ (match v.Ast.v_label with Some l -> [ Ast.label_name l ] | None -> [])
        in
        let compiled =
          Step_cond.compile_vertex ~params ~universe:u
            ~slots:(slots_for_step step_idx) ~self_names ~vset cond
        in
        Step_cond.eval_vertex compiled
          ~row:(row_of partial step_idx)
          ~vertex:(Pack.id cell)
  in
  let edge_ok (e : Ast.estep) ~step_idx ~partial ~eidx ~eid =
    match e.Ast.e_cond with
    | None -> true
    | Some cond ->
        let eset = u.Pack.etypes.(eidx) in
        let compiled =
          Step_cond.compile_edge ~params ~universe:u
            ~slots:(slots_for_step step_idx)
            ~self_names:
              (match e.Ast.e_kind with Ast.E_named n -> [ n ] | Ast.E_any -> [])
            ~eset cond
        in
        Step_cond.eval_edge compiled ~row:(row_of partial step_idx) ~edge:eid
  in
  let register_label (v : Ast.vstep) idx =
    match v.Ast.v_label with
    | Some l ->
        Hashtbl.replace labels
          (norm (Ast.label_name l))
          { li_pos = idx; li_each = (match l with Ast.Each_label _ -> true | _ -> false) }
    | None -> ()
  in
  (* Head candidates. *)
  let head = p.Ast.head in
  let head_cells =
    match head.Ast.v_kind with
    | Ast.V_any ->
        List.concat
          (List.init (Array.length u.Pack.vtypes) (fun tidx ->
               List.init (Vset.size u.Pack.vtypes.(tidx)) (fun id ->
                   Pack.pack ~tidx ~id)))
    | Ast.V_named n -> (
        match Pack.vtype_index u n with
        | Some tidx ->
            List.init (Vset.size u.Pack.vtypes.(tidx)) (fun id ->
                Pack.pack ~tidx ~id)
        | None -> raise (Unsupported (Printf.sprintf "unknown head %S" n)))
    | Ast.V_seeded _ -> raise (Unsupported "seeded steps")
  in
  register_label head 0;
  let partials =
    List.filter_map
      (fun cell ->
        if vertex_ok head ~step_idx:0 ~partial:[] ~cell then Some [ cell ]
        else None)
      head_cells
  in
  (* Step through segments; the label-value set for set-references is the
     set of values at the label position across current partials (the
     forward-culled set — same definition as the engine's). *)
  let step (partials : partial list) vstep_idx (e : Ast.estep) (v : Ast.vstep)
      : partial list =
    let target_spec =
      match v.Ast.v_kind with
      | Ast.V_any -> `Any
      | Ast.V_seeded _ -> raise (Unsupported "seeded steps")
      | Ast.V_named n -> (
          match Hashtbl.find_opt labels (norm n) with
          | Some li when li.li_pos < vstep_idx ->
              if li.li_each then `Each li.li_pos
              else begin
                let set = Hashtbl.create 32 in
                List.iter
                  (fun partial ->
                    let arr = row_of partial vstep_idx in
                    Hashtbl.replace set arr.(li.li_pos) ())
                  partials;
                `Set (li.li_pos, set)
              end
          | _ -> (
              match Pack.vtype_index u n with
              | Some tidx -> `Type tidx
              | None -> raise (Unsupported (Printf.sprintf "unknown step %S" n))))
    in
    let out = ref [] in
    List.iter
      (fun partial ->
        let cur = List.hd partial in
        let arr = row_of partial vstep_idx in
        Array.iteri
          (fun eidx eset ->
            let name_ok =
              match e.Ast.e_kind with
              | Ast.E_named n -> norm n = norm (Eset.name eset)
              | Ast.E_any -> true
            in
            if name_ok then
              (* Scan every edge of the type: the baseline has no index. *)
              for eid = 0 to Eset.size eset - 1 do
                let src_t = Pack.vtype_index u (Eset.src_type eset) in
                let dst_t = Pack.vtype_index u (Eset.dst_type eset) in
                match (src_t, dst_t) with
                | Some st, Some dt ->
                    let scell = Pack.pack ~tidx:st ~id:(Eset.src eset eid) in
                    let dcell = Pack.pack ~tidx:dt ~id:(Eset.dst eset eid) in
                    let from_cell, to_cell =
                      match e.Ast.e_dir with
                      | Ast.Out -> (scell, dcell)
                      | Ast.In -> (dcell, scell)
                    in
                    if from_cell = cur then begin
                      let type_ok =
                        match target_spec with
                        | `Any -> true
                        | `Type t -> Pack.tidx to_cell = t
                        | `Each pos -> to_cell = arr.(pos)
                        | `Set (pos, set) ->
                            Hashtbl.mem set to_cell
                            && Pack.tidx to_cell = Pack.tidx arr.(pos)
                      in
                      if
                        type_ok
                        && edge_ok e ~step_idx:vstep_idx ~partial ~eidx ~eid
                        && vertex_ok v ~step_idx:vstep_idx ~partial
                             ~cell:to_cell
                      then out := (to_cell :: partial) :: !out
                    end
                | _ -> ()
              done)
          u.Pack.etypes)
      partials;
    register_label v vstep_idx;
    List.rev !out
  in
  let final =
    List.fold_left
      (fun (partials, idx) seg ->
        match seg with
        | Ast.Seg_step (e, v) -> (step partials idx e v, idx + 1)
        | Ast.Seg_regex _ -> raise (Unsupported "regex segments"))
      (partials, 1) p.Ast.segments
    |> fst
  in
  List.map (fun partial -> Array.of_list (List.rev partial)) final
