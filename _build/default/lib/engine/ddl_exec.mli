(** Execution of data-definition statements: create table / vertex / edge.

    Vertex and edge declarations are recorded as definitions; the actual
    views are built by {!build_graph}, installed as the {!Db} graph
    builder. Edge building implements Eq. 2 in full generality:

    - associated-table edges (Fig. 3 [type]): the assoc table drives edge
      creation and endpoint keys come from its columns;
    - join edges (Fig. 3 [producer], [subclass]): the source vertex's own
      table drives creation and the target key comes from one of its
      columns — no join materialization needed;
    - multi-way join edges (Fig. 4 [export]): the where clause references
      additional catalog tables, which are equi-joined left-deep into a
      driving relation; endpoint keys are sourced from linked columns and
      residual predicates filter the join. *)

module Ast = Graql_lang.Ast

exception Ddl_error of Graql_lang.Loc.t * string

val install : Db.t -> unit
(** Register {!build_graph} as the database's view builder. *)

val exec_create_table :
  Db.t -> name:string -> cols:Ast.col_decl list -> loc:Graql_lang.Loc.t -> unit

val exec_create_vertex : Db.t -> Db.vertex_def -> unit
val exec_create_edge : Db.t -> Db.edge_def -> unit

val build_graph : Db.t -> Graql_graph.Graph_store.t
(** (Re)build declared views from current table contents (Eq. 1 and
    Eq. 2). Views whose dependency tables are unchanged since the previous
    build are reused rather than rebuilt (selective maintenance); edges
    additionally require both endpoint views to have been reused. Raises
    {!Ddl_error} when a definition cannot be realized. *)

val edge_deps : Db.t -> Db.edge_def -> string list
(** Normalized names of the tables an edge view reads. *)
