(** Statement and script execution, including multi-statement dependence
    scheduling (Sec. III-B1): independent statements run in parallel on
    the domain pool; statements ordered by def/use of named entities (and
    by graph (in)validation) run in sequence. *)

module Ast = Graql_lang.Ast
module Table = Graql_storage.Table

type outcome =
  | O_table of Table.t
  | O_subgraph of Graql_graph.Subgraph.t
  | O_message of string

exception Script_error of Graql_lang.Loc.t * string

val exec_stmt : ?loader:(string -> string) -> Db.t -> Ast.stmt -> outcome
(** Execute one statement against the database. [loader] maps an ingest
    file name to CSV text (defaults to reading the file system). *)

val dependence_edges : Ast.script -> (int * int) list
(** [(i, j)] with [i < j]: statement [j] must wait for statement [i].
    Conservative def/use analysis over entity names, parameters, and the
    derived graph. *)

val exec_script :
  ?loader:(string -> string) ->
  ?parallel:bool ->
  Db.t ->
  Ast.script ->
  (Ast.stmt * outcome) list
(** Run a whole script. With [parallel] (default true when the db has a
    pool), independent statements execute concurrently in dependence-DAG
    waves; outcomes are reported in statement order regardless. *)
