lib/engine/db_io.ml: Buffer Db Filename Graql_lang Graql_storage List Printf String Sys
