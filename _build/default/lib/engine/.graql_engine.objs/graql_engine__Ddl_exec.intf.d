lib/engine/ddl_exec.mli: Db Graql_graph Graql_lang
