lib/engine/pack.mli: Graql_graph Hashtbl
