lib/engine/results.ml: Array Compile_expr Fun Graql_graph Graql_lang Graql_relational Graql_storage Hashtbl List Option Pack Path_exec Printf String
