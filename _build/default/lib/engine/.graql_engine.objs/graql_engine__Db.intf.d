lib/engine/db.mli: Graql_analysis Graql_graph Graql_lang Graql_parallel Graql_storage
