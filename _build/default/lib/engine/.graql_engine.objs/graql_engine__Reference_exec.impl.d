lib/engine/reference_exec.ml: Array Db Graql_graph Graql_lang Graql_storage Hashtbl List Pack Printf Step_cond String
