lib/engine/path_exec.mli: Db Graql_lang Graql_storage Pack
