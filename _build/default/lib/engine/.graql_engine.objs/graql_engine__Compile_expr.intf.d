lib/engine/compile_expr.mli: Graql_lang Graql_relational Graql_storage
