lib/engine/script_exec.ml: Array Compile_expr Db Ddl_exec Fun Graql_graph Graql_lang Graql_parallel Graql_storage List Option Path_exec Printf Results String Table_exec
