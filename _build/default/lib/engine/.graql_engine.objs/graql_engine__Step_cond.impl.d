lib/engine/step_cond.ml: Array Compile_expr Graql_graph Graql_lang Graql_relational Graql_storage List Pack Printf String
