lib/engine/path_exec.ml: Array Compile_expr Db Fun Graql_graph Graql_lang Graql_parallel Graql_storage Graql_util Hashtbl List Option Pack Printf Step_cond String
