lib/engine/compile_expr.ml: Graql_lang Graql_relational Graql_storage Hashtbl Printf
