lib/engine/table_exec.mli: Db Graql_lang Graql_storage
