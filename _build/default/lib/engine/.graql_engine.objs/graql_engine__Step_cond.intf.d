lib/engine/step_cond.mli: Graql_graph Graql_lang Graql_storage Pack
