lib/engine/db_io.mli: Db
