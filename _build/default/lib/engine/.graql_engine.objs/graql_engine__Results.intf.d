lib/engine/results.mli: Graql_graph Graql_lang Graql_storage Path_exec
