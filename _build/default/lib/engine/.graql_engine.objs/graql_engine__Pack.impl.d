lib/engine/pack.ml: Array Graql_graph Hashtbl List String
