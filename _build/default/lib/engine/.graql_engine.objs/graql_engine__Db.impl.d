lib/engine/db.ml: Fun Graql_analysis Graql_graph Graql_lang Graql_parallel Graql_storage Hashtbl List Mutex Option String
