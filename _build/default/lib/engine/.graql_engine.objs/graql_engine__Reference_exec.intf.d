lib/engine/reference_exec.mli: Db Graql_lang Graql_storage
