lib/engine/ddl_exec.ml: Array Compile_expr Db Fun Graql_graph Graql_lang Graql_relational Graql_storage Hashtbl List Option Printf String
