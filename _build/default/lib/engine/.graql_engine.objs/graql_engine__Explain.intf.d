lib/engine/explain.mli: Db Format Graql_lang Graql_storage
