lib/engine/script_exec.mli: Db Graql_graph Graql_lang Graql_storage
