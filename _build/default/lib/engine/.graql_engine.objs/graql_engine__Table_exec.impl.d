lib/engine/table_exec.ml: Compile_expr Db Fun Graql_lang Graql_relational Graql_storage List Option Printf String
