lib/engine/explain.ml: Array Compile_expr Db Float Format Graql_graph Graql_lang Graql_storage Graql_util List Pack Path_exec Printf String
