examples/bio_pathways.ml: Array Buffer Graql Graql_util Hashtbl List Printf
