examples/cybersec_flows.ml: Array Buffer Graql Graql_util List Printf
