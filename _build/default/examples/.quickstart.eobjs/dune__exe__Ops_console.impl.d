examples/ops_console.ml: Graql List Printf String
