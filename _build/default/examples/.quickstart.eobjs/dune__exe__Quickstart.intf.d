examples/quickstart.mli:
