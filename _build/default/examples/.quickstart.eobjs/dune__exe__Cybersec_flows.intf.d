examples/cybersec_flows.mli:
