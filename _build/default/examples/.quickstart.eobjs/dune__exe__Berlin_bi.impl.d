examples/berlin_bi.ml: Array Graql Graql_util List Printf Sys Unix
