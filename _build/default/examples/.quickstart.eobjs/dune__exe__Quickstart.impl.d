examples/quickstart.ml: Graql List
