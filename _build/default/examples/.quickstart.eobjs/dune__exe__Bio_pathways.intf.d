examples/bio_pathways.mli:
