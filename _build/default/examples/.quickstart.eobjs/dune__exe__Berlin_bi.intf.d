examples/berlin_bi.mli:
