examples/ops_console.mli:
