(** In-memory tables: a schema plus columnar storage. The single physical
    representation behind every GraQL entity — base tables, query-result
    tables, and the backing store vertex/edge views select from. *)

type t

val create : name:string -> Schema.t -> t

val reserve : t -> int -> unit
(** Capacity hint: pre-size every column for [n] rows (ingest calls this
    once the record count is known). *)

val name : t -> string
val schema : t -> Schema.t
val nrows : t -> int
val arity : t -> int

val append_row : t -> Value.t list -> unit
(** Raises [Failure] on arity or type mismatch. *)

val append_row_array : t -> Value.t array -> unit

val get : t -> row:int -> col:int -> Value.t
val get_by_name : t -> row:int -> string -> Value.t
val column : t -> int -> Column.t
val column_by_name : t -> string -> Column.t
val row : t -> int -> Value.t array

val iter_rows : (int -> unit) -> t -> unit
val of_rows : name:string -> Schema.t -> Value.t list list -> t
val rename : t -> string -> t
(** Shares storage; only the name differs ([as x] aliasing). *)

val of_columns : name:string -> Schema.t -> Column.t array -> t
(** Wrap pre-built columns (one per schema column, equal lengths) without
    copying. The columnar fast path for join materialization. *)

val copy_structure : ?name:string -> t -> t
(** Fresh empty table with the same schema. *)

val pp : ?max_rows:int -> Format.formatter -> t -> unit
(** Render as an ASCII table (for the CLI and examples). *)

val to_display_string : ?max_rows:int -> t -> string

val approx_bytes : t -> int
(** Estimated resident bytes of the table's columnar storage. *)
