let parse_string doc =
  let n = String.length doc in
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 64 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let rec field i =
    if i >= n then (if !fields <> [] || Buffer.length buf > 0 then flush_record ())
    else
      match doc.[i] with
      | ',' ->
          flush_field ();
          field (i + 1)
      | '\n' ->
          flush_record ();
          field (i + 1)
      | '\r' when i + 1 < n && doc.[i + 1] = '\n' ->
          flush_record ();
          field (i + 2)
      | '"' when Buffer.length buf = 0 && (!fields = [] || true) -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          field (i + 1)
  and quoted i =
    if i >= n then failwith "CSV: unterminated quoted field"
    else
      match doc.[i] with
      | '"' when i + 1 < n && doc.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> field (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  field 0;
  List.rev !records

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let doc = really_input_string ic len in
  close_in ic;
  parse_string doc

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let write_string records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun fields ->
      Buffer.add_string buf (String.concat "," (List.map escape_field fields));
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let write_file path records =
  let oc = open_out_bin path in
  output_string oc (write_string records);
  close_out oc

let table_of_csv ~name schema ?(header = true) doc =
  let records = parse_string doc in
  let records =
    if header then (match records with _ :: r -> r | [] -> []) else records
  in
  let t = Table.create ~name schema in
  Table.reserve t (List.length records);
  let arity = Schema.arity schema in
  List.iteri
    (fun rownum fields ->
      let nf = List.length fields in
      if nf <> arity then
        failwith
          (Printf.sprintf "CSV row %d: expected %d fields, got %d"
             (rownum + if header then 2 else 1)
             arity nf);
      let values =
        List.mapi
          (fun col field ->
            try Value.parse (Schema.col_dtype schema col) field
            with Failure msg ->
              failwith
                (Printf.sprintf "CSV row %d, column %s: %s"
                   (rownum + if header then 2 else 1)
                   (Schema.col_name schema col) msg))
          fields
      in
      Table.append_row t values)
    records;
  t

let table_to_csv ?(header = true) t =
  let schema = Table.schema t in
  let head =
    Array.to_list (Array.map (fun c -> c.Schema.name) (Schema.cols schema))
  in
  let rows = ref [] in
  for i = Table.nrows t - 1 downto 0 do
    rows :=
      Array.to_list (Array.map Value.to_csv_string (Table.row t i)) :: !rows
  done;
  write_string (if header then head :: !rows else !rows)
