(** Typed columnar storage with null bitmaps.

    Physical layout: Bool/Int/Date live in an unboxed int array; Float in a
    float array; Varchar values are dictionary-encoded through a per-column
    intern pool, so equality joins and group-bys on strings compare ints. *)

type t

type stats = {
  st_rows : int;  (** total rows, nulls included *)
  st_nulls : int;
  st_distinct : float;
      (** estimate: dictionary size for Varchar, a linear-counting sketch
          otherwise; capped at the non-null row count *)
  st_min : int option;  (** raw payload min — Int/Date columns only *)
  st_max : int option;
}

val create : ?expected:int -> Dtype.t -> t
(** [expected] is a row-count capacity hint: payload arrays, the null
    bitmap and (bounded) the Varchar dictionary are pre-sized so ingest
    avoids doubling churn. *)

val reserve : t -> int -> unit
(** Grow capacity (not length) to hold [n] rows. *)

val dtype : t -> Dtype.t
val length : t -> int

val stats : t -> stats option
(** Incrementally maintained ingest statistics, or [None] for gathered
    ({!create_sized}) columns whose writes bypass the tracked append path.
    Statistics survive checkpoint/recovery because recovery replays the
    ingest path. *)

val append : t -> Value.t -> unit
(** Raises [Failure] on a type mismatch (the ingest layer surfaces this
    with row context). *)

val get : t -> int -> Value.t

val is_null : t -> int -> bool

val get_int : t -> int -> int
(** Raw payload for Bool (0/1) / Int / Date / Varchar (dictionary id);
    undefined if null, [Invalid_argument] for Float columns. Hot-path
    accessor for joins and graph building. *)

val get_float : t -> int -> float
(** Raw float payload; accepts Int columns too (coerced). *)

val int_data : t -> int array
(** The backing int payload array (Bool/Int/Date/Varchar ids). Only
    indices [0, length) are meaningful; slots under a null bit hold 0 for
    appended columns but are unspecified in general. The batch kernels
    loop over this directly instead of calling {!get_int} per row.
    [Invalid_argument] for Float columns. *)

val float_data : t -> float array
(** The backing float payload array; [Invalid_argument] for int-payload
    columns. Same indexing contract as {!int_data}. *)

val null_mask : t -> Bytes.t
(** The null bitmap (bit [i land 7] of byte [i lsr 3]); consult
    {!has_nulls} first — an all-zero prefix is not guaranteed to cover
    [length] when no null was ever set. *)

val has_nulls : t -> bool
(** Whether any null bit is set (cheap flag, no scan). *)

val same_dict : t -> t -> bool
(** Whether two Varchar columns share one intern pool, making their
    dictionary ids directly comparable. *)

val intern_id : t -> string -> int option
(** For Varchar columns: dictionary id of [s] if present. Lets predicates
    compare against a constant with one lookup, then int equality. *)

val dict_lookup : t -> int -> string
(** Inverse of the dictionary encoding for Varchar columns. *)

val append_null : t -> unit

val dict_size : t -> int
(** Number of distinct strings interned by a Varchar column. Lets joins
    pre-compute whole-dictionary id translations instead of memoizing per
    probe row. *)

val create_sized : ?share_dict_of:t -> Dtype.t -> int -> t
(** [create_sized dtype n] is a column of length [n] whose slots are
    non-null zeros until overwritten via {!gather_into}. Varchar columns
    must pass [share_dict_of] (the column ids will be copied from) so
    dictionary ids stay meaningful. *)

val gather_into : src:t -> rows:int array -> dst:t -> lo:int -> hi:int -> unit
(** [gather_into ~src ~rows ~dst ~lo ~hi] sets [dst.(i) <- src.(rows.(i))]
    for [i] in [lo, hi), nulls included. [dst] must be a {!create_sized}
    column of the same dtype (sharing the dictionary when Varchar).
    Distinct ranges may be filled concurrently from different domains as
    long as range boundaries are multiples of 8. *)

val approx_bytes : t -> int
(** Rough in-memory footprint: unboxed payload + null bitmap + (for
    varchar) the dictionary strings. Used for cluster capacity planning. *)
