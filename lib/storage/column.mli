(** Typed columnar storage with null bitmaps.

    Physical layout: Bool/Int/Date live in an unboxed int array; Float in a
    float array; Varchar values are dictionary-encoded through a per-column
    intern pool, so equality joins and group-bys on strings compare ints. *)

type t

val create : Dtype.t -> t
val dtype : t -> Dtype.t
val length : t -> int

val append : t -> Value.t -> unit
(** Raises [Failure] on a type mismatch (the ingest layer surfaces this
    with row context). *)

val get : t -> int -> Value.t

val is_null : t -> int -> bool

val get_int : t -> int -> int
(** Raw payload for Bool (0/1) / Int / Date / Varchar (dictionary id);
    undefined if null, [Invalid_argument] for Float columns. Hot-path
    accessor for joins and graph building. *)

val get_float : t -> int -> float
(** Raw float payload; accepts Int columns too (coerced). *)

val intern_id : t -> string -> int option
(** For Varchar columns: dictionary id of [s] if present. Lets predicates
    compare against a constant with one lookup, then int equality. *)

val dict_lookup : t -> int -> string
(** Inverse of the dictionary encoding for Varchar columns. *)

val append_null : t -> unit

val dict_size : t -> int
(** Number of distinct strings interned by a Varchar column. Lets joins
    pre-compute whole-dictionary id translations instead of memoizing per
    probe row. *)

val create_sized : ?share_dict_of:t -> Dtype.t -> int -> t
(** [create_sized dtype n] is a column of length [n] whose slots are
    non-null zeros until overwritten via {!gather_into}. Varchar columns
    must pass [share_dict_of] (the column ids will be copied from) so
    dictionary ids stay meaningful. *)

val gather_into : src:t -> rows:int array -> dst:t -> lo:int -> hi:int -> unit
(** [gather_into ~src ~rows ~dst ~lo ~hi] sets [dst.(i) <- src.(rows.(i))]
    for [i] in [lo, hi), nulls included. [dst] must be a {!create_sized}
    column of the same dtype (sharing the dictionary when Varchar).
    Distinct ranges may be filled concurrently from different domains as
    long as range boundaries are multiples of 8. *)

val approx_bytes : t -> int
(** Rough in-memory footprint: unboxed payload + null bitmap + (for
    varchar) the dictionary strings. Used for cluster capacity planning. *)
