type t = { name : string; schema : Schema.t; columns : Column.t array }

let create ~name schema =
  {
    name;
    schema;
    columns = Array.map (fun c -> Column.create c.Schema.dtype) (Schema.cols schema);
  }

let reserve t n = Array.iter (fun c -> Column.reserve c n) t.columns

let name t = t.name
let schema t = t.schema
let arity t = Array.length t.columns
let nrows t = if arity t = 0 then 0 else Column.length t.columns.(0)

let append_row_array t values =
  if Array.length values <> arity t then
    failwith
      (Printf.sprintf "table %s: expected %d values, got %d" t.name (arity t)
         (Array.length values));
  Array.iteri
    (fun i v ->
      try Column.append t.columns.(i) v
      with Failure msg ->
        failwith
          (Printf.sprintf "table %s, column %s: %s" t.name
             (Schema.col_name t.schema i) msg))
    values

let append_row t values = append_row_array t (Array.of_list values)

let get t ~row ~col = Column.get t.columns.(col) row

let get_by_name t ~row name =
  get t ~row ~col:(Schema.find_exn t.schema name)

let column t i = t.columns.(i)
let column_by_name t name = t.columns.(Schema.find_exn t.schema name)
let row t i = Array.init (arity t) (fun c -> get t ~row:i ~col:c)

let iter_rows f t =
  for i = 0 to nrows t - 1 do f i done

let of_rows ~name schema rows =
  let t = create ~name schema in
  List.iter (append_row t) rows;
  t

let rename t name = { t with name }

let of_columns ~name schema columns =
  if Array.length columns <> Schema.arity schema then
    invalid_arg "Table.of_columns: arity mismatch";
  Array.iteri
    (fun i c ->
      if Column.dtype c <> (Schema.cols schema).(i).Schema.dtype then
        invalid_arg "Table.of_columns: dtype mismatch";
      if Column.length c <> Column.length columns.(0) then
        invalid_arg "Table.of_columns: length mismatch")
    columns;
  { name; schema; columns }

let copy_structure ?name t =
  create ~name:(match name with Some n -> n | None -> t.name) t.schema

let pp ?(max_rows = 20) ppf t =
  let header =
    Array.to_list (Array.map (fun c -> c.Schema.name) (Schema.cols t.schema))
  in
  let n = nrows t in
  let shown = min n max_rows in
  let rows =
    List.init shown (fun i ->
        Array.to_list (Array.map Value.to_string (row t i)))
  in
  Graql_util.Text_table.render_fmt ~header rows ppf;
  if n > shown then Format.fprintf ppf "@\n... (%d more rows)" (n - shown);
  Format.fprintf ppf "@\n%d row%s" n (if n = 1 then "" else "s")

let to_display_string ?max_rows t = Format.asprintf "%a" (pp ?max_rows) t

let approx_bytes t =
  Array.fold_left (fun acc c -> acc + Column.approx_bytes c) 0 t.columns
