type payload =
  | Ints of { mutable data : int array }
  | Floats of { mutable data : float array }

(* Incrementally maintained ingest statistics. [t_min]/[t_max] cover the
   raw int payload (meaningful to the planner for Int/Date dtypes); the
   sketch is a linear-counting bitmap over hashed payloads giving a
   distinct estimate for non-varchar columns (Varchar reads its distinct
   count off the dictionary for free). *)
type tracker = {
  mutable t_nulls : int;
  mutable t_min : int;
  mutable t_max : int;
  mutable t_has_range : bool;
  t_sketch : Bytes.t;
}

type stats = {
  st_rows : int;
  st_nulls : int;
  st_distinct : float;
  st_min : int option;
  st_max : int option;
}

type t = {
  dtype : Dtype.t;
  mutable len : int;
  payload : payload;
  dict : Graql_util.Intern.t option;
  mutable nulls : Bytes.t; (* bitmap, grows with the column *)
  mutable any_null : bool;
  tracker : tracker option; (* None for gathered (create_sized) columns *)
}

(* 8192-bit linear-counting sketch: 1 KiB per column, saturates near the
   sketch size — [stats] caps the estimate at the non-null row count. *)
let sketch_bits = 8192

let fresh_tracker () =
  {
    t_nulls = 0;
    t_min = 0;
    t_max = 0;
    t_has_range = false;
    t_sketch = Bytes.make (sketch_bits / 8) '\000';
  }

let sketch_add tr x =
  let h = Graql_util.Int_table.mix x land (sketch_bits - 1) in
  let b = h lsr 3 and m = 1 lsl (h land 7) in
  Bytes.unsafe_set tr.t_sketch b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get tr.t_sketch b) lor m))

let create ?(expected = 16) dtype =
  let expected = max 16 expected in
  let payload =
    match dtype with
    | Dtype.Float -> Floats { data = Array.make expected 0.0 }
    | Dtype.Bool | Dtype.Int | Dtype.Date | Dtype.Varchar _ ->
        Ints { data = Array.make expected 0 }
  in
  let dict =
    match dtype with
    | Dtype.Varchar _ ->
        (* Dictionary capacity: enough to skip the worst of the doubling
           churn on near-unique columns without over-committing memory on
           low-cardinality ones. *)
        Some (Graql_util.Intern.create ~expected:(min expected 16384) ())
    | _ -> None
  in
  {
    dtype;
    len = 0;
    payload;
    dict;
    nulls = Bytes.make (max 2 ((expected + 7) lsr 3)) '\000';
    any_null = false;
    tracker = Some (fresh_tracker ());
  }

let dtype t = t.dtype
let length t = t.len

let grow_ints r n =
  if n > Array.length r then begin
    let cap = ref (Array.length r) in
    while !cap < n do cap := !cap * 2 done;
    let data = Array.make !cap 0 in
    Array.blit r 0 data 0 (Array.length r);
    data
  end
  else r

let grow_floats r n =
  if n > Array.length r then begin
    let cap = ref (Array.length r) in
    while !cap < n do cap := !cap * 2 done;
    let data = Array.make !cap 0.0 in
    Array.blit r 0 data 0 (Array.length r);
    data
  end
  else r

let ensure_nulls t n =
  let need = (n + 7) lsr 3 in
  if need > Bytes.length t.nulls then begin
    let cap = ref (Bytes.length t.nulls) in
    while !cap < need do cap := !cap * 2 done;
    let nulls = Bytes.make !cap '\000' in
    Bytes.blit t.nulls 0 nulls 0 (Bytes.length t.nulls);
    t.nulls <- nulls
  end

let reserve t n =
  (match t.payload with
  | Ints r -> r.data <- grow_ints r.data n
  | Floats r -> r.data <- grow_floats r.data n);
  ensure_nulls t n;
  match t.dict with
  | Some d -> Graql_util.Intern.reserve d (min n 16384)
  | None -> ()

let set_null_bit t i =
  ensure_nulls t (i + 1);
  let b = i lsr 3 and m = 1 lsl (i land 7) in
  Bytes.unsafe_set t.nulls b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.nulls b) lor m));
  t.any_null <- true

let is_null t i =
  t.any_null
  && i lsr 3 < Bytes.length t.nulls
  && Char.code (Bytes.unsafe_get t.nulls (i lsr 3)) land (1 lsl (i land 7)) <> 0

let note_int t x =
  match t.tracker with
  | None -> ()
  | Some tr ->
      if tr.t_has_range then begin
        if x < tr.t_min then tr.t_min <- x;
        if x > tr.t_max then tr.t_max <- x
      end
      else begin
        tr.t_min <- x;
        tr.t_max <- x;
        tr.t_has_range <- true
      end;
      if t.dict = None then sketch_add tr x

let note_float t x =
  match t.tracker with
  | None -> ()
  | Some tr -> sketch_add tr (Int64.to_int (Int64.bits_of_float x))

let push_int t x =
  (match t.payload with
  | Ints r ->
      r.data <- grow_ints r.data (t.len + 1);
      Array.unsafe_set r.data t.len x
  | Floats _ -> invalid_arg "Column: int payload on float column");
  ensure_nulls t (t.len + 1);
  note_int t x;
  t.len <- t.len + 1

let push_float t x =
  (match t.payload with
  | Floats r ->
      r.data <- grow_floats r.data (t.len + 1);
      Array.unsafe_set r.data t.len x
  | Ints _ -> invalid_arg "Column: float payload on int column");
  ensure_nulls t (t.len + 1);
  note_float t x;
  t.len <- t.len + 1

let append_null t =
  (match t.payload with
  | Ints r ->
      r.data <- grow_ints r.data (t.len + 1);
      Array.unsafe_set r.data t.len 0
  | Floats r ->
      r.data <- grow_floats r.data (t.len + 1);
      Array.unsafe_set r.data t.len 0.0);
  set_null_bit t t.len;
  (match t.tracker with
  | Some tr -> tr.t_nulls <- tr.t_nulls + 1
  | None -> ());
  t.len <- t.len + 1

let type_error t v =
  failwith
    (Printf.sprintf "type mismatch: column is %s, value is %s"
       (Dtype.to_string t.dtype) (Value.to_string v))

let append t v =
  match (t.dtype, v) with
  | _, Value.Null -> append_null t
  | Dtype.Bool, Value.Bool b -> push_int t (if b then 1 else 0)
  | Dtype.Int, Value.Int i -> push_int t i
  | Dtype.Date, Value.Date d -> push_int t d
  | Dtype.Float, Value.Float f -> push_float t f
  | Dtype.Float, Value.Int i -> push_float t (float_of_int i)
  | Dtype.Varchar _, Value.Str s -> (
      match t.dict with
      | Some dict -> push_int t (Graql_util.Intern.intern dict s)
      | None -> assert false)
  | (Dtype.Bool | Dtype.Int | Dtype.Date | Dtype.Float | Dtype.Varchar _), _ ->
      type_error t v

let check t i = if i < 0 || i >= t.len then invalid_arg "Column: out of bounds"

let get_int t i =
  check t i;
  match t.payload with
  | Ints r -> Array.unsafe_get r.data i
  | Floats _ -> invalid_arg "Column.get_int on float column"

let get_float t i =
  check t i;
  match t.payload with
  | Floats r -> Array.unsafe_get r.data i
  | Ints r -> float_of_int (Array.unsafe_get r.data i)

(* Raw payload views for the batch kernels: the arrays are at least [len]
   long; slots past [len] are garbage. Callers index [0, len) only. *)
let int_data t =
  match t.payload with
  | Ints r -> r.data
  | Floats _ -> invalid_arg "Column.int_data on float column"

let float_data t =
  match t.payload with
  | Floats r -> r.data
  | Ints _ -> invalid_arg "Column.float_data on int column"

let null_mask t = t.nulls
let has_nulls t = t.any_null

let dict_lookup t id =
  match t.dict with
  | Some dict -> Graql_util.Intern.lookup dict id
  | None -> invalid_arg "Column.dict_lookup on non-varchar column"

let intern_id t s =
  match t.dict with
  | Some dict -> Graql_util.Intern.find_opt dict s
  | None -> invalid_arg "Column.intern_id on non-varchar column"

let dict_size t =
  match t.dict with
  | Some dict -> Graql_util.Intern.size dict
  | None -> invalid_arg "Column.dict_size on non-varchar column"

let same_dict a b =
  match (a.dict, b.dict) with Some x, Some y -> x == y | _ -> false

let stats t =
  match t.tracker with
  | None -> None
  | Some tr ->
      let nonnull = t.len - tr.t_nulls in
      let distinct =
        match t.dict with
        | Some d -> float_of_int (Graql_util.Intern.size d)
        | None ->
            if nonnull = 0 then 0.0
            else begin
              (* Linear counting: -m ln(z/m) for z empty bits of m. *)
              let zeros = ref 0 in
              Bytes.iter
                (fun c ->
                  let c = Char.code c in
                  for b = 0 to 7 do
                    if c land (1 lsl b) = 0 then incr zeros
                  done)
                tr.t_sketch;
              let m = float_of_int sketch_bits in
              let est =
                if !zeros = 0 then float_of_int nonnull
                else -.m *. log (float_of_int !zeros /. m)
              in
              Float.min (Float.max 1.0 est) (float_of_int nonnull)
            end
      in
      let range_ok =
        tr.t_has_range
        && match t.dtype with Dtype.Int | Dtype.Date -> true | _ -> false
      in
      Some
        {
          st_rows = t.len;
          st_nulls = tr.t_nulls;
          st_distinct = distinct;
          st_min = (if range_ok then Some tr.t_min else None);
          st_max = (if range_ok then Some tr.t_max else None);
        }

(* Pre-sized column for scatter/gather fills: length [n], every slot a
   non-null zero until written. Varchar output shares the source column's
   intern pool so dictionary ids can be copied verbatim — interning later
   strings through a shared pool is safe because existing ids never move.
   Gathered columns carry no statistics tracker (writes bypass the ingest
   path); the planner falls back to plain row counts for them. *)
let create_sized ?share_dict_of dtype n =
  let payload =
    match dtype with
    | Dtype.Float -> Floats { data = Array.make (max n 1) 0.0 }
    | Dtype.Bool | Dtype.Int | Dtype.Date | Dtype.Varchar _ ->
        Ints { data = Array.make (max n 1) 0 }
  in
  let dict =
    match dtype with
    | Dtype.Varchar _ -> (
        match share_dict_of with
        | Some { dict = Some d; _ } -> Some d
        | Some { dict = None; _ } | None ->
            invalid_arg "Column.create_sized: varchar requires share_dict_of")
    | _ -> None
  in
  {
    dtype;
    len = n;
    payload;
    dict;
    nulls = Bytes.make (max 2 ((n + 7) lsr 3)) '\000';
    any_null = false;
    tracker = None;
  }

(* [gather_into ~src ~rows ~dst ~lo ~hi] writes src.(rows.(i)) into
   dst.(i) for i in [lo, hi). [dst] must come from [create_sized] with the
   same dtype (and, for varchar, a shared dictionary). Disjoint [lo, hi)
   ranges may be filled from different domains provided the boundaries are
   multiples of 8 (the null bitmap is written bytewise). *)
let gather_into ~src ~rows ~dst ~lo ~hi =
  if src.dtype <> dst.dtype then invalid_arg "Column.gather_into: dtype mismatch";
  (match (src.dict, dst.dict) with
  | Some a, Some b when a != b ->
      invalid_arg "Column.gather_into: varchar dictionaries not shared"
  | _ -> ());
  (match (src.payload, dst.payload) with
  | Ints s, Ints d ->
      for i = lo to hi - 1 do
        Array.unsafe_set d.data i
          (Array.unsafe_get s.data (Array.unsafe_get rows i))
      done
  | Floats s, Floats d ->
      for i = lo to hi - 1 do
        Array.unsafe_set d.data i
          (Array.unsafe_get s.data (Array.unsafe_get rows i))
      done
  | Ints _, Floats _ | Floats _, Ints _ ->
      invalid_arg "Column.gather_into: payload mismatch");
  if src.any_null then begin
    let saw = ref false in
    for i = lo to hi - 1 do
      if is_null src (Array.unsafe_get rows i) then begin
        saw := true;
        let b = i lsr 3 and m = 1 lsl (i land 7) in
        Bytes.unsafe_set dst.nulls b
          (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst.nulls b) lor m))
      end
    done;
    (* Benign when raced from several domains: every writer stores [true],
       and the fork-join barrier publishes the final value. *)
    if !saw then dst.any_null <- true
  end

let get t i =
  check t i;
  if is_null t i then Value.Null
  else
    match t.dtype with
    | Dtype.Bool -> Value.Bool (get_int t i <> 0)
    | Dtype.Int -> Value.Int (get_int t i)
    | Dtype.Date -> Value.Date (get_int t i)
    | Dtype.Float -> Value.Float (get_float t i)
    | Dtype.Varchar _ -> Value.Str (dict_lookup t (get_int t i))

let approx_bytes t =
  let payload =
    match t.payload with
    | Ints _ | Floats _ -> 8 * t.len
  in
  let nulls = (t.len + 7) / 8 in
  let dict =
    match t.dict with
    | None -> 0
    | Some d ->
        let n = Graql_util.Intern.size d in
        let chars = ref 0 in
        for i = 0 to n - 1 do
          chars := !chars + String.length (Graql_util.Intern.lookup d i) + 24
        done;
        !chars
  in
  payload + nulls + dict
