(** GraQL: a query language for high-performance attributed graph
    databases — public API.

    Quickstart:
    {[
      let session = Graql.create_session () in
      let results = Graql.run session {|
        create table People(id varchar(10), name varchar(20), boss varchar(10))
        create vertex PersonVtx(id) from table People
        create edge reportsTo with vertices (PersonVtx as A, PersonVtx as B)
          where A.boss = B.id
        ingest table People people.csv
        select B.id from graph PersonVtx (id = 'alice') --reportsTo--> B: ...
      |} in
      ...
    ]}

    The modules below re-export the full stack, bottom-up:
    storage → relational algebra → graph views → language front-end →
    static analysis → binary IR → execution engine → GEMS session. *)

(* -- storage -------------------------------------------------------- *)
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype
module Date = Graql_storage.Date
module Schema = Graql_storage.Schema
module Table = Graql_storage.Table
module Csv = Graql_storage.Csv

(* -- relational ----------------------------------------------------- *)
module Row_expr = Graql_relational.Row_expr
module Relop = Graql_relational.Relop
module Join = Graql_relational.Join
module Aggregate = Graql_relational.Aggregate

(* -- graph views ---------------------------------------------------- *)
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Csr = Graql_graph.Csr
module Graph_store = Graql_graph.Graph_store
module Subgraph = Graql_graph.Subgraph
module Graph_builder = Graql_graph.Builder

(* -- language ------------------------------------------------------- *)
module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Lexer = Graql_lang.Lexer
module Parser = Graql_lang.Parser
module Pretty = Graql_lang.Pretty

(* -- analysis & IR -------------------------------------------------- *)
module Meta = Graql_analysis.Meta
module Diag = Graql_analysis.Diag
module Typecheck = Graql_analysis.Typecheck
module Ir = Graql_ir.Codec

(* -- engine --------------------------------------------------------- *)
module Db = Graql_engine.Db
module Script_exec = Graql_engine.Script_exec
module Path_exec = Graql_engine.Path_exec
module Pack = Graql_engine.Pack
module Rpq = Graql_engine.Rpq
module Ddl_exec = Graql_engine.Ddl_exec
module Explain = Graql_engine.Explain
module Table_plan = Graql_engine.Table_plan
module Profile_exec = Graql_engine.Profile_exec
module Reference_exec = Graql_engine.Reference_exec
module Db_io = Graql_engine.Db_io
module Wal = Graql_engine.Wal
module Error = Graql_engine.Graql_error

(* -- observability --------------------------------------------------- *)
module Obs = struct
  module Metrics = Graql_obs.Metrics
  module Trace = Graql_obs.Trace
  module Profile = Graql_obs.Profile
  module Slow_log = Graql_obs.Slow_log
  module Slo = Graql_obs.Slo
  module Query_log = Graql_obs.Query_log
  module Ledger = Graql_obs.Ledger
  module Redact = Graql_obs.Redact
  module Http = Graql_obs.Http
end

module Json = Graql_util.Json

(* -- GEMS ----------------------------------------------------------- *)
module Session = Graql_gems.Session
module Shard = Graql_gems.Shard
module Cluster = Graql_gems.Cluster
module Server = Graql_gems.Server
module Telemetry = Graql_gems.Telemetry
module Fault = Graql_gems.Fault
module Repl = Graql_gems.Repl
module Follower = Graql_gems.Follower
module Serve = Graql_gems.Serve
module Client = Graql_gems.Client
module Domain_pool = Graql_parallel.Domain_pool
module Cancel = Graql_parallel.Cancel

(* -- Berlin benchmark ----------------------------------------------- *)
module Berlin = struct
  module Schema_ddl = Graql_berlin.Berlin_schema
  module Gen = Graql_berlin.Berlin_gen
  module Queries = Graql_berlin.Berlin_queries
  module Reference = Graql_berlin.Berlin_reference
end

(* -- SNB deep-traversal workload ------------------------------------ *)
module Snb = struct
  module Schema_ddl = Graql_snb.Snb_schema
  module Gen = Graql_snb.Snb_gen
  module Queries = Graql_snb.Snb_queries
  module Reference = Graql_snb.Snb_reference
end

type outcome = Script_exec.outcome =
  | O_table of Table.t
  | O_subgraph of Subgraph.t
  | O_message of string
  | O_failed of Error.t

type durability = Session.durability = Off | Wal_dir of string

let create_session ?pool ?strict ?faults ?durability ?checkpoint_bytes () =
  Session.create ?pool ?strict ?faults ?durability ?checkpoint_bytes ()

let run ?loader ?parallel ?deadline_ms ?trace session source =
  Session.run_script ?loader ?parallel ?deadline_ms ?trace session source

let check = Session.check

let run_stmt ?loader session source =
  let stmt = Parser.parse_statement source in
  Script_exec.exec_stmt ?loader (Session.db session) stmt

let outcome_to_string = function
  | O_table t -> Table.to_display_string t
  | O_subgraph sg -> Subgraph.summary sg
  | O_message m -> m
  | O_failed err -> "error: " ^ Error.to_string err
