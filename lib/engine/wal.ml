module Ast = Graql_lang.Ast
module Wire = Graql_ir.Wire
module Codec = Graql_ir.Codec
module Crc32 = Graql_util.Crc32

type record =
  | R_stmt of Ast.stmt
  | R_ingest of { table : string; file : string; doc : string }

let magic = "GRAQLWAL"
let version = 1
let header_size = String.length magic + 1 + 4
let file_name ~epoch = Printf.sprintf "wal-%06d.log" epoch

let io_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Graql_error.Error (Graql_error.Io msg)))
    fmt

(* ------------------------------------------------------------------ *)
(* Record payloads (Graql_ir wire format)                              *)

let tag_stmt = 1
let tag_ingest = 2

let encode_record_traced ~trace r =
  let w = Wire.writer () in
  (match r with
  | R_stmt stmt ->
      Wire.tag w tag_stmt;
      Wire.string w (Bytes.to_string (Codec.encode_script [ stmt ]))
  | R_ingest { table; file; doc } ->
      Wire.tag w tag_ingest;
      Wire.string w table;
      Wire.string w file;
      Wire.string w doc);
  (* Trailing trace-id annotation (DESIGN.md §16). Written only for
     traced statements, so untraced logs stay byte-identical to the
     unannotated format and old logs decode unchanged. *)
  if trace <> "" then Wire.string w trace;
  Wire.contents w

let encode_record r = encode_record_traced ~trace:"" r

let decode_record_traced payload =
  let r = Wire.reader payload in
  let record =
    match Wire.read_tag r with
    | t when t = tag_stmt -> (
        match Codec.decode_script (Bytes.of_string (Wire.read_string r)) with
        | [ stmt ] -> R_stmt stmt
        | _ -> raise (Wire.Corrupt "WAL statement record is not one statement"))
    | t when t = tag_ingest ->
        let table = Wire.read_string r in
        let file = Wire.read_string r in
        let doc = Wire.read_string r in
        R_ingest { table; file; doc }
    | t -> raise (Wire.Corrupt (Printf.sprintf "unknown WAL record tag %d" t))
  in
  let trace = if Wire.at_end r then "" else Wire.read_string r in
  if not (Wire.at_end r) then
    raise (Wire.Corrupt "trailing bytes inside WAL record");
  (record, trace)

let decode_record payload = fst (decode_record_traced payload)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)

let header ~epoch =
  let b = Bytes.create header_size in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set b (String.length magic) (Char.chr version);
  Bytes.set_int32_le b (String.length magic + 1) (Int32.of_int epoch);
  b

let frame payload =
  let len = Bytes.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Crc32.bytes payload);
  Bytes.blit payload 0 b 8 len;
  b

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)

type scan = {
  s_epoch : int;
  s_records : record list;
  s_boundaries : int list;
  s_valid_end : int;
  s_torn : int;
}

let read_whole_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | doc -> doc
  | exception Sys_error msg -> io_error "%s: %s" (Filename.basename path) msg

let scan_string ~name data =
  let size = String.length data in
  if size < header_size then
    (* A crash can interrupt the very first header write: everything is
       tail, nothing is lost. *)
    { s_epoch = 0; s_records = []; s_boundaries = []; s_valid_end = 0;
      s_torn = size }
  else begin
    if String.sub data 0 (String.length magic) <> magic then
      io_error "%s: bad WAL magic — not a write-ahead log" name;
    if Char.code data.[String.length magic] <> version then
      io_error "%s: unsupported WAL version %d" name
        (Char.code data.[String.length magic]);
    let epoch =
      Int32.to_int
        (Bytes.get_int32_le
           (Bytes.unsafe_of_string data)
           (String.length magic + 1))
    in
    let records = ref [] and boundaries = ref [ header_size ] in
    let pos = ref header_size and finished = ref false in
    while not !finished do
      let o = !pos in
      if o = size then finished := true
      else if size - o < 8 then (* torn frame header *) finished := true
      else begin
        let b = Bytes.unsafe_of_string data in
        let len = Int32.to_int (Bytes.get_int32_le b o) land 0xFFFFFFFF in
        let crc = Bytes.get_int32_le b (o + 4) in
        if o + 8 + len > size then
          (* Runs past end-of-file: either a crash mid-payload or a torn
             length field; both are tail damage. *)
          finished := true
        else begin
          let payload = Bytes.sub b (o + 8) len in
          if Crc32.bytes payload <> crc then
            if o + 8 + len = size then finished := true
            else
              io_error
                "%s: CRC mismatch at offset %d with %d bytes of log after \
                 it — corrupt WAL, not a torn tail"
                name o
                (size - (o + 8 + len))
          else begin
            (match decode_record payload with
            | r -> records := r :: !records
            | exception Wire.Corrupt msg ->
                (* The checksum vouches for the bytes, so an undecodable
                   payload is genuine corruption wherever it sits. *)
                io_error "%s: undecodable record at offset %d: %s" name o msg);
            pos := o + 8 + len;
            boundaries := !pos :: !boundaries
          end
        end
      end
    done;
    {
      s_epoch = epoch;
      s_records = List.rev !records;
      s_boundaries = List.rev !boundaries;
      s_valid_end = !pos;
      s_torn = size - !pos;
    }
  end

let scan_file path =
  scan_string ~name:(Filename.basename path) (read_whole_file path)

let truncate_file path len =
  try Unix.truncate path len
  with Unix.Unix_error (e, _, _) ->
    io_error "%s: truncate: %s" (Filename.basename path) (Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)

type event =
  | Ev_append of { epoch : int; offset : int; data : bytes; records : int }
  | Ev_advance of { epoch : int }

type t = {
  t_dir : string;
  mutable t_epoch : int;
  mutable t_path : string;
  mutable t_oc : out_channel;
  mutable t_size : int;
  mutable t_appended : int;
  mutable t_records : int;
  mutable t_observer : (event -> unit) option;
  mutex : Mutex.t;
}

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let fsync_dir dir =
  (* Make renames/creates/unlinks in [dir] themselves durable. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let create_fresh ~dir ~epoch path =
  let oc = open_out_bin path in
  output_bytes oc (header ~epoch);
  fsync_channel oc;
  fsync_dir dir;
  (oc, header_size)

let open_log ~dir ~epoch =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (file_name ~epoch) in
  let oc, size, records =
    if not (Sys.file_exists path) then
      let oc, size = create_fresh ~dir ~epoch path in
      (oc, size, 0)
    else begin
      let scan = scan_file path in
      if scan.s_valid_end = 0 then
        (* Header itself was torn: start the file over. *)
        let oc, size = create_fresh ~dir ~epoch path in
        (oc, size, 0)
      else begin
        if scan.s_epoch <> epoch then
          io_error "%s: header epoch %d does not match file name"
            (Filename.basename path) scan.s_epoch;
        if scan.s_torn > 0 then truncate_file path scan.s_valid_end;
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
        in
        (oc, scan.s_valid_end, List.length scan.s_records)
      end
    end
  in
  {
    t_dir = dir;
    t_epoch = epoch;
    t_path = path;
    t_oc = oc;
    t_size = size;
    t_appended = 0;
    t_records = records;
    t_observer = None;
    mutex = Mutex.create ();
  }

let dir t = t.t_dir
let path t = t.t_path
let epoch t = t.t_epoch
let size t = t.t_size
let appended t = t.t_appended
let records t = t.t_records

let set_observer t obs =
  Mutex.lock t.mutex;
  t.t_observer <- obs;
  Mutex.unlock t.mutex

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let m_records = Graql_obs.Metrics.counter "wal.records"
let m_bytes = Graql_obs.Metrics.counter "wal.bytes"
let h_append_us = Graql_obs.Metrics.histogram "wal.append_us"
let h_fsync_us = Graql_obs.Metrics.histogram "wal.fsync_us"

let append t record =
  (* The ambient trace id (set by the executing statement) rides along
     in the record annotation, so a follower replaying shipped bytes can
     tag its apply spans with the originating statement's trace. *)
  let trace = Graql_obs.Trace.current_trace () in
  let framed = frame (encode_record_traced ~trace record) in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let sp = Graql_obs.Trace.begin_span ~cat:"wal" "wal.append" in
      let t0 = Unix.gettimeofday () in
      output_bytes t.t_oc framed;
      (* Durable before the engine applies (or acks) the operation. *)
      let t1 = Unix.gettimeofday () in
      let fsp =
        Graql_obs.Trace.with_parent (Graql_obs.Trace.span_id sp) @@ fun () ->
        Graql_obs.Trace.begin_span ~cat:"wal" "wal.fsync"
      in
      fsync_channel t.t_oc;
      let t2 = Unix.gettimeofday () in
      Graql_obs.Trace.end_span fsp;
      Graql_obs.Trace.end_span sp;
      Graql_obs.Metrics.observe ~exemplar:trace h_append_us ((t2 -. t0) *. 1e6);
      Graql_obs.Metrics.observe ~exemplar:trace h_fsync_us ((t2 -. t1) *. 1e6);
      Graql_obs.Metrics.incr m_records;
      Graql_obs.Metrics.add m_bytes (Bytes.length framed);
      let offset = t.t_size in
      t.t_size <- t.t_size + Bytes.length framed;
      t.t_appended <- t.t_appended + 1;
      t.t_records <- t.t_records + 1;
      (* The record is durable here; a replication primary ships exactly
         these bytes. Called under the mutex, so observers see appends
         and epoch advances in file order. *)
      match t.t_observer with
      | Some f ->
          f (Ev_append
               { epoch = t.t_epoch; offset; data = framed;
                 records = t.t_records })
      | None -> ())

let advance t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let old_path = t.t_path in
      let epoch = t.t_epoch + 1 in
      let path = Filename.concat t.t_dir (file_name ~epoch) in
      let oc, size = create_fresh ~dir:t.t_dir ~epoch path in
      close_out_noerr t.t_oc;
      t.t_oc <- oc;
      t.t_epoch <- epoch;
      t.t_path <- path;
      t.t_size <- size;
      t.t_records <- 0;
      (* The old epoch's records live on in the checkpoint now. *)
      (try Sys.remove old_path with Sys_error _ -> ());
      fsync_dir t.t_dir;
      match t.t_observer with
      | Some f -> f (Ev_advance { epoch })
      | None -> ())

let close t = close_out_noerr t.t_oc
