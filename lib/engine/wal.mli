(** Write-ahead log for the durability subsystem (DESIGN.md §9).

    Every mutating operation — DDL, ingest, parameter bindings, selects
    that materialize into the catalog — is appended (and fsync'd) here
    *before* it is applied, so a crash can lose at most the statement
    that was in flight, never an acknowledged one. A log file holds a
    13-byte header ([magic], a version byte, a little-endian 32-bit
    checkpoint epoch) followed by CRC32-framed, length-prefixed records:

    {v
      +-----------+-----------+------------------+
      | len u32le | crc u32le | payload (len B)  |
      +-----------+-----------+------------------+
    v}

    Record payloads reuse the {!Graql_ir} wire codec: a statement record
    embeds the binary IR of a one-statement script; an ingest record
    additionally inlines the loaded CSV bytes so replay never depends on
    the original input file still existing.

    Torn-tail rule: a record that fails its CRC or runs past end-of-file
    is recoverable damage {e iff it is the last thing in the file} — the
    tail is truncated and replay proceeds with the valid prefix. A bad
    record {e followed by more log data} cannot be explained by a crash
    mid-append and raises [Graql_error.Error (Io _)], as does a mangled
    header or an epoch that contradicts the file name. *)

type record =
  | R_stmt of Graql_lang.Ast.stmt
      (** Any logged statement except ingest: DDL, [set], materializing
          selects. Replay re-executes it. *)
  | R_ingest of { table : string; file : string; doc : string }
      (** An ingest with its loaded bytes inlined. [file] is kept for
          provenance only; replay feeds [doc] straight to the engine. *)

val magic : string
val version : int

val header_size : int
(** Bytes before the first record: [magic] + version + epoch. *)

val file_name : epoch:int -> string
(** ["wal-%06d.log"] — one log file per checkpoint epoch. *)

val encode_record : record -> bytes
val decode_record : bytes -> record
(** Raises {!Graql_ir.Wire.Corrupt} on a malformed payload. *)

val encode_record_traced : trace:string -> record -> bytes
(** Like {!encode_record} but, when [trace] is non-empty, appends the
    trace id as a trailing annotation (DESIGN.md §16). With [trace = ""]
    the bytes are identical to {!encode_record}, so untraced logs keep
    the unannotated format. *)

val decode_record_traced : bytes -> record * string
(** Decode a payload together with its trace-id annotation ([""] when
    absent). {!decode_record} is [fst] of this. *)

val header : epoch:int -> bytes
(** The [header_size] bytes that begin an epoch's log file — a follower
    mirroring the primary's stream writes this itself, so its local file
    stays byte-identical to the primary's. *)

val frame : bytes -> bytes
(** [len u32le | crc u32le | payload] — the record framing, reused by
    the replication protocol for its socket messages. *)

(** {1 Appending} *)

type t

val open_log : dir:string -> epoch:int -> t
(** Open (creating [dir] and the file as needed) the epoch's log for
    appending. An existing file is scanned first: a torn tail is
    truncated away, genuine corruption raises
    [Graql_error.Error (Io _)]. *)

val dir : t -> string
val path : t -> string
val epoch : t -> int

val size : t -> int
(** Current file size in bytes (header included). *)

val appended : t -> int
(** Records appended through this handle (not counting pre-existing
    ones). *)

val records : t -> int
(** Total records in the current epoch's file (pre-existing ones found
    at open plus everything appended since). *)

type event =
  | Ev_append of { epoch : int; offset : int; data : bytes; records : int }
      (** One framed record became durable: [data] is the exact file
          bytes written at [offset]; [records] is the epoch total after
          this append. *)
  | Ev_advance of { epoch : int }
      (** A checkpoint folded the previous epoch; appends now go to the
          (empty) log of [epoch]. *)

val set_observer : t -> (event -> unit) option -> unit
(** Install the single observer (replication primary). It is called
    under the log's mutex, {e after} the record is fsync'd, so it sees
    events in exact file order — keep it quick, and never call back
    into this log from inside it. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** Run [f] with the log's append mutex held: no append or advance (and
    hence no observer event) can interleave. Used by the replication
    primary to snapshot [epoch]/[size] and read the file consistently
    while registering a new follower. Do not call {!append},
    {!advance} or {!set_observer} from inside [f]. *)

val append : t -> record -> unit
(** Frame, write and [fsync] one record. Thread-safe; the record is
    durable when this returns — callers may then apply the operation. *)

val advance : t -> unit
(** Begin the next checkpoint epoch: create and sync the new (empty) log
    file, switch appends to it, then delete the previous epoch's file.
    The caller must have folded the old log into a checkpoint first. *)

val close : t -> unit

(** {1 Scanning / recovery} *)

type scan = {
  s_epoch : int;  (** epoch from the file header *)
  s_records : record list;  (** valid records, in log order *)
  s_boundaries : int list;
      (** every offset at which the file can be cut and still parse:
          [header_size] followed by each record's end offset *)
  s_valid_end : int;  (** offset of the end of the last valid record *)
  s_torn : int;  (** trailing bytes dropped by the torn-tail rule *)
}

val scan_file : string -> scan
(** Parse a log file, applying the torn-tail rule. Raises
    [Graql_error.Error (Io _)] on mid-file corruption, a bad header, or
    an unreadable file. *)

val truncate_file : string -> int -> unit
(** Physically truncate a log to the given offset (used to discard a
    torn tail before reopening for append). *)

val fsync_dir : string -> unit
(** Flush a directory's metadata (renames, creates, unlinks) to stable
    storage; best-effort on filesystems without directory sync. *)
