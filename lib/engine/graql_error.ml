module Loc = Graql_lang.Loc
module Diag = Graql_analysis.Diag
module Pool = Graql_parallel.Domain_pool
module Cancel = Graql_parallel.Cancel

type t =
  | Parse of Loc.t * string
  | Analysis of Diag.t list
  | Exec of Loc.t * string
  | Exec_fault of { site : string; attempts : int }
  | Timeout of { deadline_ms : int }
  | Denied of string
  | Io of string

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Parse (loc, msg) -> Printf.sprintf "parse error at %s: %s" (Loc.to_string loc) msg
  | Analysis diags ->
      Printf.sprintf "static analysis failed:\n%s"
        (String.concat "\n" (List.map Diag.to_string (Diag.errors diags)))
  | Exec (loc, msg) -> Printf.sprintf "execution error at %s: %s" (Loc.to_string loc) msg
  | Exec_fault { site; attempts } ->
      Printf.sprintf "shard fault at %s: still failing after %d attempt(s), no replica left"
        site attempts
  | Timeout { deadline_ms } ->
      if deadline_ms > 0 then Printf.sprintf "query deadline of %d ms exceeded" deadline_ms
      else "query cancelled"
  | Denied msg -> Printf.sprintf "permission denied: %s" msg
  | Io msg -> Printf.sprintf "I/O error: %s" msg

(* Stable CLI exit codes, one per failure class (0 = success, 1 = generic). *)
let exit_code = function
  | Parse _ -> 2
  | Analysis _ -> 3
  | Exec _ -> 4
  | Exec_fault _ -> 5
  | Timeout _ -> 6
  | Denied _ -> 7
  | Io _ -> 8

(* Exceptions that must never be demoted to a per-statement outcome. *)
let is_fatal = function
  | Out_of_memory | Stack_overflow -> true
  | _ -> false

let of_exn = function
  | Error e -> Some e
  | Loc.Syntax_error (loc, msg) -> Some (Parse (loc, msg))
  | Pool.Fault_exhausted { site; attempts } -> Some (Exec_fault { site; attempts })
  | Cancel.Cancelled budget_ms -> Some (Timeout { deadline_ms = budget_ms })
  | Sys_error msg -> Some (Io msg)
  | Failure msg -> Some (Exec (Loc.dummy, msg))
  | e when is_fatal e -> None
  | e -> Some (Exec (Loc.dummy, Printexc.to_string e))
