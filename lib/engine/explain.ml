module Ast = Graql_lang.Ast
module Value = Graql_storage.Value
module Schema = Graql_storage.Schema
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Csr = Graql_graph.Csr
module Subgraph = Graql_graph.Subgraph
module Bitset = Graql_util.Bitset

type seed_strategy =
  | Seed_key_lookup of string
  | Seed_scan_filtered
  | Seed_scan_full
  | Seed_subgraph of string
  | Seed_all_types

type step_plan = { sp_label : string; sp_fanout : float; sp_estimate : float }

type plan = {
  pl_direction : [ `Forward | `Backward ];
  pl_seed : seed_strategy;
  pl_seed_estimate : float;
  pl_steps : step_plan list;
}

let norm = String.lowercase_ascii

(* Selectivity guesses mirror the executor's planner: key equality -> one
   row; any other condition -> 10%. *)
let cond_selectivity = 0.1

let seed_of ~db u (v : Ast.vstep) ~params =
  match v.Ast.v_kind with
  | Ast.V_any ->
      let total =
        Array.fold_left (fun acc vs -> acc + Vset.size vs) 0 u.Pack.vtypes
      in
      (Seed_all_types, float_of_int total)
  | Ast.V_seeded (sg, vt) ->
      let size =
        match Db.find_subgraph db sg with
        | Some sub -> (
            match Subgraph.vertices sub ~vtype:vt with
            | Some bits -> Bitset.cardinal bits
            | None -> 0)
        | None -> 0
      in
      let est =
        match v.Ast.v_cond with
        | Some _ -> float_of_int size *. cond_selectivity
        | None -> float_of_int size
      in
      (Seed_subgraph sg, est)
  | Ast.V_named n -> (
      match Pack.vtype_index u n with
      | None -> (Seed_scan_full, 0.0) (* label head: sized by the other path *)
      | Some tidx -> (
          let vset = u.Pack.vtypes.(tidx) in
          let size = float_of_int (Vset.size vset) in
          match v.Ast.v_cond with
          | None -> (Seed_scan_full, size)
          | Some cond ->
              let key_schema = Vset.key_schema vset in
              let key_eq =
                if Schema.arity key_schema <> 1 then None
                else
                  let kname = norm (Schema.col_name key_schema 0) in
                  let value_of = function
                    | Ast.E_lit (l, _) -> Some (Compile_expr.value_of_lit l)
                    | Ast.E_param (p, _) -> params p
                    | _ -> None
                  in
                  List.find_map
                    (function
                      | Ast.E_binop (Ast.Eq, Ast.E_attr (_, a, _), rhs, _)
                        when norm a = kname ->
                          value_of rhs
                      | Ast.E_binop (Ast.Eq, lhs, Ast.E_attr (_, a, _), _)
                        when norm a = kname ->
                          value_of lhs
                      | _ -> None)
                    (Compile_expr.conjuncts cond)
              in
              (match key_eq with
              | Some v -> (Seed_key_lookup (Value.to_string v), 1.0)
              | None -> (Seed_scan_filtered, Float.max 1.0 (size *. cond_selectivity)))))

(* Fan-out of one traversal step from a set of possible source types. *)
let step_stats u (e : Ast.estep) ~from_types ~(to_spec : Ast.vstep) =
  let to_name =
    match to_spec.Ast.v_kind with
    | Ast.V_named n when Pack.vtype_index u n <> None -> Some (norm n)
    | Ast.V_seeded (_, vt) -> Some (norm vt)
    | _ -> None
  in
  let esets = ref [] in
  Array.iter
    (fun eset ->
      let name_ok =
        match e.Ast.e_kind with
        | Ast.E_named n -> norm n = norm (Eset.name eset)
        | Ast.E_any -> true
      in
      if name_ok then begin
        let src = norm (Eset.src_type eset) and dst = norm (Eset.dst_type eset) in
        let from_t, to_t =
          match e.Ast.e_dir with Ast.Out -> (src, dst) | Ast.In -> (dst, src)
        in
        let from_ok =
          match from_types with None -> true | Some ts -> List.mem from_t ts
        in
        let to_ok = match to_name with None -> true | Some t -> t = to_t in
        if from_ok && to_ok then esets := eset :: !esets
      end)
    u.Pack.etypes;
  let fanout =
    List.fold_left
      (fun acc eset ->
        let csr =
          match e.Ast.e_dir with
          | Ast.Out -> Eset.forward eset
          | Ast.In -> Eset.reverse eset
        in
        acc +. Csr.avg_degree csr)
      0.0 !esets
  in
  let names =
    match !esets with
    | [] -> "(no matching edge type)"
    | l -> String.concat "+" (List.rev_map Eset.name l)
  in
  let targets =
    match to_name with Some t -> t | None -> "[ ]"
  in
  let dir = match e.Ast.e_dir with Ast.Out -> "-->" | Ast.In -> "<--" in
  (Printf.sprintf "%s %s %s" dir names targets, fanout)

(* Per-automaton-state plan rows for a regex segment: one row per state,
   in state order, with the arriving atom's fanout chained from the
   feeding state and capped by the landing type's cardinality (a frontier
   can never exceed the vertex set it lives in — this is what makes star
   estimates saturate instead of diverging). The executor's profiler
   emits per-state actual rows under the same labels, so EXPLAIN ANALYZE
   aligns est vs actual per state. *)
let regex_state_steps u ~incoming (xr : Path_exec.xregex) =
  let infos =
    Rpq.shape ~body:xr.Path_exec.xr_body ~op:xr.Path_exec.xr_op
      ~reversed:xr.Path_exec.xr_reversed
  in
  let n = Array.length infos in
  let total_vertices =
    float_of_int
      (Array.fold_left (fun acc vs -> acc + Vset.size vs) 0 u.Pack.vtypes)
  in
  let cap_of (vo : Ast.vstep option) =
    match vo with
    | Some { Ast.v_kind = Ast.V_named t; _ } -> (
        match Pack.vtype_index u t with
        | Some ti -> float_of_int (Vset.size u.Pack.vtypes.(ti))
        | None -> total_vertices)
    | _ -> total_vertices
  in
  let est = Array.make n incoming in
  let order =
    (* states chain by index; reversed automata feed from the higher
       index (the forward successor) *)
    if xr.Path_exec.xr_reversed then List.init n (fun i -> n - 1 - i)
    else List.init n Fun.id
  in
  let fanouts = Array.make n 0.0 in
  List.iter
    (fun s ->
      match infos.(s).Rpq.si_estep with
      | None -> est.(s) <- incoming
      | Some e ->
          let to_spec =
            match infos.(s).Rpq.si_vstep with
            | Some v -> v
            | None ->
                {
                  Ast.v_kind = Ast.V_any;
                  v_label = None;
                  v_cond = None;
                  v_loc = xr.Path_exec.xr_loc;
                }
          in
          let _, fanout = step_stats u e ~from_types:None ~to_spec in
          fanouts.(s) <- fanout;
          let prev =
            if xr.Path_exec.xr_reversed then
              if s + 1 < n then est.(s + 1) else incoming
            else if s > 0 then est.(s - 1)
            else incoming
          in
          est.(s) <- Float.min (prev *. fanout) (cap_of infos.(s).Rpq.si_vstep))
    order;
  List.init n (fun s ->
      {
        sp_label = infos.(s).Rpq.si_label;
        sp_fanout = fanouts.(s);
        sp_estimate = est.(s);
      })

let explain_path ~db ~params ?(edges_needed = true) (p : Ast.path) =
  let u = Pack.universe (Db.graph db) in
  let plan = Path_exec.plan_path ~db ~params ~edges_needed p in
  let direction = if plan.Path_exec.px_reversed then `Backward else `Forward in
  let head = plan.Path_exec.px_head in
  let seed, seed_est = seed_of ~db u head ~params in
  let head_types =
    match head.Ast.v_kind with
    | Ast.V_named n when Pack.vtype_index u n <> None -> Some [ norm n ]
    | Ast.V_seeded (_, vt) -> Some [ norm vt ]
    | _ -> None
  in
  let steps = ref [] in
  let est = ref seed_est in
  let types = ref head_types in
  List.iter
    (fun xs ->
      match xs with
      | Path_exec.X_step (e, v) ->
          let label, fanout = step_stats u e ~from_types:!types ~to_spec:v in
          let sel = match v.Ast.v_cond with Some _ -> cond_selectivity | None -> 1.0 in
          est := !est *. fanout *. sel;
          steps := { sp_label = label; sp_fanout = fanout; sp_estimate = !est } :: !steps;
          types :=
            (match v.Ast.v_kind with
            | Ast.V_named n when Pack.vtype_index u n <> None -> Some [ norm n ]
            | Ast.V_seeded (_, vt) -> Some [ norm vt ]
            | _ -> None)
      | Path_exec.X_regex xr ->
          let body = xr.Path_exec.xr_body and op = xr.Path_exec.xr_op in
          (* One row per automaton state, then the segment summary row —
             mirroring the executor's per-state profile samples followed
             by the step timer's summary sample. *)
          let state_rows =
            if !Path_exec.use_automaton then
              regex_state_steps u ~incoming:!est xr
            else []
          in
          steps := List.rev_append state_rows !steps;
          let fanout =
            List.fold_left
              (fun acc (e, v) ->
                let _, f = step_stats u e ~from_types:None ~to_spec:v in
                acc +. f)
              0.0 body
          in
          let opname =
            match op with
            | Ast.Rx_star -> "*"
            | Ast.Rx_plus -> "+"
            | Ast.Rx_count n -> Printf.sprintf "{%d}" n
          in
          est := !est *. Float.max 1.0 fanout;
          steps :=
            {
              sp_label = Printf.sprintf "( regex )%s" opname;
              sp_fanout = fanout;
              sp_estimate = !est;
            }
            :: !steps;
          types := None)
    plan.Path_exec.px_steps;
  { pl_direction = direction; pl_seed = seed; pl_seed_estimate = seed_est;
    pl_steps = List.rev !steps }

let rec explain_multipath ~db ~params ?(edges_needed = true) = function
  | Ast.M_path p -> [ explain_path ~db ~params ~edges_needed p ]
  | Ast.M_and (a, b) | Ast.M_or (a, b) ->
      explain_multipath ~db ~params ~edges_needed a
      @ explain_multipath ~db ~params ~edges_needed b

(* Whether a graph-select statement's output can observe the edges
   traversed inside regex segments: only [into subgraph] with a [*]
   target materializes them ([Results.to_subgraph]). Everything else can
   skip edge-noting and lets the planner reverse regex paths. *)
let edges_needed_of_select (sg : Ast.select_graph) =
  match sg.Ast.sg_into with
  | Ast.Into_subgraph _ ->
      List.exists (fun t -> t = Ast.T_star) sg.Ast.sg_targets
  | Ast.Into_table _ | Ast.Into_nothing -> false

let seed_string = function
  | Seed_key_lookup v -> Printf.sprintf "key index lookup (= %s)" v
  | Seed_scan_filtered -> "type scan with filter"
  | Seed_scan_full -> "full type scan"
  | Seed_subgraph sg -> Printf.sprintf "subgraph seed (%s)" sg
  | Seed_all_types -> "all vertex types"

let pp ppf plan =
  Format.fprintf ppf "direction: %s@\nseed: %s (est. %.1f)"
    (match plan.pl_direction with `Forward -> "forward" | `Backward -> "backward (reversed via reverse index)")
    (seed_string plan.pl_seed) plan.pl_seed_estimate;
  List.iter
    (fun s ->
      Format.fprintf ppf "@\nstep: %-36s fanout %6.2f   est. frontier %10.1f"
        s.sp_label s.sp_fanout s.sp_estimate)
    plan.pl_steps

let to_string plan = Format.asprintf "%a" pp plan
