(** Query plan explanation: what the dynamic analysis of Sec. III-B decides
    for a path query, derived from catalog statistics (entity sizes, degree
    distributions) — evaluation direction, seed strategy, and estimated
    frontier cardinality per step. *)

module Ast = Graql_lang.Ast
module Value = Graql_storage.Value

type seed_strategy =
  | Seed_key_lookup of string  (** key index probe with this literal *)
  | Seed_scan_filtered  (** type scan with a compiled condition *)
  | Seed_scan_full  (** unfiltered type scan *)
  | Seed_subgraph of string  (** seeded from a named result subgraph *)
  | Seed_all_types  (** [ ] head: every vertex *)

type step_plan = {
  sp_label : string;  (** printable traversal description *)
  sp_fanout : float;  (** average degree of the index used *)
  sp_estimate : float;  (** estimated frontier size after this step *)
}

type plan = {
  pl_direction : [ `Forward | `Backward ];
  pl_seed : seed_strategy;
  pl_seed_estimate : float;
  pl_steps : step_plan list;  (** in execution order *)
}

val explain_path :
  db:Db.t ->
  params:(string -> Value.t option) ->
  ?edges_needed:bool ->
  Ast.path ->
  plan
(** Renders exactly the plan {!Path_exec.plan_path} would execute —
    direction, reversal rewrite, and (when the automaton engine is on)
    one row per automaton state for every regex segment, followed by the
    segment summary row. [edges_needed] (default [true]) must match what
    the executor will be told; it gates regex-path reversal. *)

val explain_multipath :
  db:Db.t ->
  params:(string -> Value.t option) ->
  ?edges_needed:bool ->
  Ast.multipath ->
  plan list
(** One plan per simple path, left to right. *)

val edges_needed_of_select : Ast.select_graph -> bool
(** Whether this statement's output can observe regex-traversed edges:
    only [into subgraph] with a [*] target. Callers pass the result as
    [edges_needed] to both the executor and the explainer. *)

val seed_string : seed_strategy -> string
val to_string : plan -> string
val pp : Format.formatter -> plan -> unit
