module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Value = Graql_storage.Value
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Csr = Graql_graph.Csr
module Bitset = Graql_util.Bitset
module Pool = Graql_parallel.Domain_pool
module Metrics = Graql_obs.Metrics

exception Rpq_error of Loc.t * string

let error loc fmt = Printf.ksprintf (fun msg -> raise (Rpq_error (loc, msg))) fmt
let norm = String.lowercase_ascii

let no_slots : Step_cond.slot_lookup =
  { Step_cond.find_slot = (fun _ -> None) }

(* [rpq.*] counters are fixed by query and data — BFS levels, visited
   product pairs and noted edges are sets, not schedules — so they stay
   invariant across domain counts like the [path.*] family. *)
let m_compiles = Metrics.counter "rpq.compiles"
let m_evals = Metrics.counter "rpq.evals"
let m_visited = Metrics.counter "rpq.visited_pairs"
let m_noted = Metrics.counter "rpq.noted_edges"
let h_level = Metrics.histogram "rpq.level_pairs"

(* ------------------------------------------------------------------ *)
(* Shape: states and transitions, before any condition compilation     *)

type state_info = {
  si_label : string;
  si_estep : Ast.estep option;
  si_vstep : Ast.vstep option;
  si_initial : bool;
  si_accepting : bool;
}

(* A transition spec: traverse [sp_estep], land on [sp_land] ([None] =
   unconstrained). Forward automata have one spec per body atom; reversed
   automata one per forward transition. *)
type pspec = { sp_estep : Ast.estep; sp_land : Ast.vstep option }

type proto = {
  p_nstates : int;
  p_specs : pspec array;
  p_entry : int option array;  (* arriving spec per state; None at entry *)
  p_trans : (int * int) list array;  (* per state: (spec idx, dst) *)
  p_initial : (int * Ast.vstep option) list;
      (* initial states; the vstep is a constraint the seed must satisfy
         (reversed automata seed at forward-accepting states, so the seed
         must re-pass the forward arrival constraint) *)
  p_accepting : bool array;
  p_chain : (int * int) option array;
      (* backward can-complete chain: at state [s], (spec, s+1) *)
  p_base : int option;  (* final chain state (complete-traversal state) *)
  p_note : [ `Inline | `Sweep | `Off ];
  p_reversed : bool;
}

let flip_estep (e : Ast.estep) =
  {
    e with
    Ast.e_dir = (match e.Ast.e_dir with Ast.Out -> Ast.In | Ast.In -> Ast.Out);
  }

let single_state ~reversed =
  {
    p_nstates = 1;
    p_specs = [||];
    p_entry = [| None |];
    p_trans = [| [] |];
    p_initial = [ (0, None) ];
    p_accepting = [| true |];
    p_chain = [| None |];
    p_base = None;
    p_note = `Off;
    p_reversed = reversed;
  }

(* States are positions in the group body: 0 = entry, j = "j atoms of the
   current traversal matched". [*] and [+] loop the final position back to
   1 (re-entering the body consumes atom 0); [{n}] unrolls the body n
   times into a chain. Every state except the entry has a unique arriving
   atom, which is what lets conditions compile per state. *)
let forward_proto ~(body : (Ast.estep * Ast.vstep) list) ~(op : Ast.rx_op) =
  let atoms = Array.of_list body in
  let k = Array.length atoms in
  let specs =
    Array.map (fun (e, v) -> { sp_estep = e; sp_land = Some v }) atoms
  in
  if k = 0 then single_state ~reversed:false
  else
    match op with
    | Ast.Rx_star | Ast.Rx_plus ->
        let n = k + 1 in
        let entry = Array.init n (fun s -> if s = 0 then None else Some (s - 1)) in
        let trans = Array.make n [] in
        for j = 0 to k - 1 do
          trans.(j) <- [ (j, j + 1) ]
        done;
        trans.(k) <- [ (0, 1) ];
        let accepting = Array.make n false in
        accepting.(k) <- true;
        if op = Ast.Rx_star then accepting.(0) <- true;
        let chain = Array.make n None in
        for s = 1 to k - 1 do
          chain.(s) <- Some (s, s + 1)
        done;
        {
          p_nstates = n;
          p_specs = specs;
          p_entry = entry;
          p_trans = trans;
          p_initial = [ (0, None) ];
          p_accepting = accepting;
          p_chain = chain;
          p_base = Some k;
          p_note = (if k = 1 then `Inline else `Sweep);
          p_reversed = false;
        }
    | Ast.Rx_count c ->
        if c <= 0 then single_state ~reversed:false
        else begin
          let n = (c * k) + 1 in
          let entry =
            Array.init n (fun s -> if s = 0 then None else Some ((s - 1) mod k))
          in
          let trans = Array.make n [] in
          for j = 0 to n - 2 do
            trans.(j) <- [ (j mod k, j + 1) ]
          done;
          let accepting = Array.make n false in
          accepting.(n - 1) <- true;
          let chain = Array.make n None in
          for s = 1 to n - 2 do
            chain.(s) <- Some (s mod k, s + 1)
          done;
          {
            p_nstates = n;
            p_specs = specs;
            p_entry = entry;
            p_trans = trans;
            p_initial = [ (0, None) ];
            p_accepting = accepting;
            p_chain = chain;
            p_base = Some (n - 1);
            p_note = `Sweep;
            p_reversed = false;
          }
        end

(* The reversal of the language: flip every transition's edge direction,
   move the landing constraint to the forward source position (arriving at
   reversed state s means "this vertex sits at forward position s", whose
   constraint is the forward arriving atom of s), seed at forward
   accepting states, accept at the forward entry. Traversed-edge
   reporting is not supported — the planner only reverses when the query
   cannot observe edges. *)
let reversed_proto fwd =
  let specs = ref [] in
  let nspecs = ref 0 in
  let trans = Array.make fwd.p_nstates [] in
  let entry = Array.make fwd.p_nstates None in
  Array.iteri
    (fun s outs ->
      List.iter
        (fun (spec_i, s') ->
          let a = fwd.p_specs.(spec_i) in
          let land_v =
            match fwd.p_entry.(s) with
            | Some e -> fwd.p_specs.(e).sp_land
            | None -> None
          in
          let idx = !nspecs in
          incr nspecs;
          specs := { sp_estep = flip_estep a.sp_estep; sp_land = land_v } :: !specs;
          trans.(s') <- (idx, s) :: trans.(s');
          entry.(s) <- Some idx)
        outs)
    fwd.p_trans;
  let specs = Array.of_list (List.rev !specs) in
  let trans = Array.map List.rev trans in
  let initial = ref [] in
  Array.iteri
    (fun s acc ->
      if acc then
        let check =
          match fwd.p_entry.(s) with
          | Some e -> fwd.p_specs.(e).sp_land
          | None -> None
        in
        initial := (s, check) :: !initial)
    fwd.p_accepting;
  let accepting = Array.make fwd.p_nstates false in
  accepting.(0) <- true;
  {
    p_nstates = fwd.p_nstates;
    p_specs = specs;
    p_entry = entry;
    p_trans = trans;
    p_initial = List.rev !initial;
    p_accepting = accepting;
    p_chain = Array.make fwd.p_nstates None;
    p_base = None;
    p_note = `Off;
    p_reversed = true;
  }

let proto_of ~body ~op ~reversed =
  let fwd = forward_proto ~body ~op in
  if reversed then reversed_proto fwd else fwd

let vstep_name (v : Ast.vstep) =
  match v.Ast.v_kind with
  | Ast.V_named n -> n
  | Ast.V_any -> "[ ]"
  | Ast.V_seeded (sg, vt) -> Printf.sprintf "%s<%s>" vt sg

let spec_label sp =
  let e = sp.sp_estep in
  let ename =
    match e.Ast.e_kind with Ast.E_named n -> n | Ast.E_any -> "[ ]"
  in
  let arrow =
    match e.Ast.e_dir with
    | Ast.Out -> Printf.sprintf "--%s-->" ename
    | Ast.In -> Printf.sprintf "<--%s--" ename
  in
  arrow ^ " "
  ^ (match sp.sp_land with Some v -> vstep_name v | None -> "[ ]")

let states_of_proto p =
  Array.init p.p_nstates (fun s ->
      let initial = List.mem_assoc s p.p_initial in
      let arriving = Option.map (fun i -> p.p_specs.(i)) p.p_entry.(s) in
      let body =
        match arriving with
        | None -> Printf.sprintf "rx s%d (entry)" s
        | Some sp -> Printf.sprintf "rx s%d: %s" s (spec_label sp)
      in
      {
        si_label = (body ^ if p.p_accepting.(s) then " [accept]" else "");
        si_estep = Option.map (fun sp -> sp.sp_estep) arriving;
        si_vstep = Option.bind arriving (fun sp -> sp.sp_land);
        si_initial = initial;
        si_accepting = p.p_accepting.(s);
      })

let shape ~body ~op ~reversed = states_of_proto (proto_of ~body ~op ~reversed)

(* ------------------------------------------------------------------ *)
(* Compilation: bind a proto to one universe                           *)

type traversal = { tr_eidx : int; tr_out : bool; tr_other : int }

type cspec = {
  c_travs : traversal list array;  (* by source vertex-type index *)
  c_econd : Step_cond.t option array;  (* by edge-set index *)
  c_vcond : Step_cond.t option array;  (* by landing vertex-type index *)
}

type tcheck = Ck_pass | Ck_cond of Step_cond.t | Ck_reject

type vcheck = { vc_treq : int option; vc_cond : tcheck array }

type t = {
  a_u : Pack.universe;
  a_nstates : int;
  a_specs : cspec array;
  a_trans : (int * int) list array;
  a_initial : (int * vcheck option) list;
  a_accepting : bool array;
  a_chain : (int * int) option array;
  a_base : int option;
  a_note : [ `Inline | `Sweep | `Off ];
  a_exit : vcheck option;
  a_states : state_info array;
  a_reversed : bool;
}

let nstates a = a.a_nstates
let states a = a.a_states
let is_reversed a = a.a_reversed

(* Which traversals (edge set, CSR direction, landing type) can realize a
   spec from a given left type — the same matching as the row engine. *)
let traversals_of (u : Pack.universe) (e : Ast.estep) ~ltidx ~required_other =
  let lname = norm (Vset.name u.Pack.vtypes.(ltidx)) in
  let consider eidx eset acc =
    let src = norm (Eset.src_type eset) and dst = norm (Eset.dst_type eset) in
    let name_ok =
      match e.Ast.e_kind with
      | Ast.E_named n -> norm n = norm (Eset.name eset)
      | Ast.E_any -> true
    in
    if not name_ok then acc
    else
      match e.Ast.e_dir with
      | Ast.Out ->
          if src <> lname then acc
          else (
            match Pack.vtype_index u (Eset.dst_type eset) with
            | Some o
              when (match required_other with Some r -> r = o | None -> true)
              ->
                { tr_eidx = eidx; tr_out = true; tr_other = o } :: acc
            | _ -> acc)
      | Ast.In ->
          if dst <> lname then acc
          else (
            match Pack.vtype_index u (Eset.src_type eset) with
            | Some o
              when (match required_other with Some r -> r = o | None -> true)
              ->
                { tr_eidx = eidx; tr_out = false; tr_other = o } :: acc
            | _ -> acc)
  in
  let acc = ref [] in
  Array.iteri (fun eidx eset -> acc := consider eidx eset !acc) u.Pack.etypes;
  List.rev !acc

let validate_body ~(u : Pack.universe) body =
  List.iter
    (fun ((e : Ast.estep), (v : Ast.vstep)) ->
      if v.Ast.v_label <> None then
        error v.Ast.v_loc "labels are not supported inside path regexes";
      if e.Ast.e_label <> None then
        error e.Ast.e_loc "labels are not supported inside path regexes";
      match v.Ast.v_kind with
      | Ast.V_seeded _ ->
          error v.Ast.v_loc "subgraph seeds are not allowed inside regexes"
      | Ast.V_named n ->
          if Pack.vtype_index u n = None then
            error v.Ast.v_loc "no such vertex type %S" n
      | Ast.V_any -> ())
    body

let compile_spec ~params ~(u : Pack.universe) (sp : pspec) : cspec =
  let e = sp.sp_estep in
  let required_other =
    match sp.sp_land with
    | Some { Ast.v_kind = Ast.V_named n; _ } -> Pack.vtype_index u n
    | _ -> None
  in
  let nv = Array.length u.Pack.vtypes in
  let ne = Array.length u.Pack.etypes in
  let travs =
    Array.init nv (fun ltidx -> traversals_of u e ~ltidx ~required_other)
  in
  let econd = Array.make ne None in
  let vcond = Array.make nv None in
  let e_self =
    match e.Ast.e_kind with Ast.E_named n -> [ n ] | Ast.E_any -> []
  in
  let v_self =
    match sp.sp_land with
    | Some { Ast.v_kind = Ast.V_named n; _ } -> [ n ]
    | _ -> []
  in
  Array.iter
    (List.iter (fun tr ->
         (match e.Ast.e_cond with
         | Some c when econd.(tr.tr_eidx) = None ->
             let eset = u.Pack.etypes.(tr.tr_eidx) in
             econd.(tr.tr_eidx) <-
               (try
                  Some
                    (Step_cond.compile_edge ~params ~universe:u ~slots:no_slots
                       ~self_names:e_self ~eset c)
                with Compile_expr.Compile_error (loc, msg) -> error loc "%s" msg)
         | _ -> ());
         match Option.bind sp.sp_land (fun v -> v.Ast.v_cond) with
         | Some c when vcond.(tr.tr_other) = None ->
             let vset = u.Pack.vtypes.(tr.tr_other) in
             vcond.(tr.tr_other) <-
               (try
                  Some
                    (Step_cond.compile_vertex ~params ~universe:u
                       ~slots:no_slots ~self_names:v_self ~vset c)
                with Compile_expr.Compile_error (loc, msg) -> error loc "%s" msg)
         | _ -> ()))
    travs;
  { c_travs = travs; c_econd = econd; c_vcond = vcond }

(* A seed/exit constraint: required type plus per-type condition. For
   [\[ \]]-with-condition checks (legal inside bodies) the condition is
   compiled per type; types where it does not compile cannot match. *)
let compile_vcheck ~params ~(u : Pack.universe) ~allow_any_cond
    (v : Ast.vstep) : vcheck option =
  let nv = Array.length u.Pack.vtypes in
  match v.Ast.v_kind with
  | Ast.V_seeded _ ->
      error v.Ast.v_loc "subgraph seeds are not allowed inside regexes"
  | Ast.V_any -> (
      match v.Ast.v_cond with
      | None -> None
      | Some _ when not allow_any_cond ->
          error v.Ast.v_loc "conditions are not allowed on [ ] steps"
      | Some c ->
          let conds =
            Array.init nv (fun t ->
                try
                  Ck_cond
                    (Step_cond.compile_vertex ~params ~universe:u
                       ~slots:no_slots ~self_names:[]
                       ~vset:u.Pack.vtypes.(t) c)
                with Compile_expr.Compile_error _ -> Ck_reject)
          in
          Some { vc_treq = None; vc_cond = conds })
  | Ast.V_named n -> (
      match Pack.vtype_index u n with
      | None -> error v.Ast.v_loc "no such vertex type or label %S" n
      | Some t ->
          let conds = Array.make nv Ck_pass in
          (match v.Ast.v_cond with
          | None -> ()
          | Some c ->
              conds.(t) <-
                (try
                   Ck_cond
                     (Step_cond.compile_vertex ~params ~universe:u
                        ~slots:no_slots ~self_names:[ n ]
                        ~vset:u.Pack.vtypes.(t) c)
                 with Compile_expr.Compile_error (loc, msg) ->
                   error loc "%s" msg));
          Some { vc_treq = Some t; vc_cond = conds })

let vcheck_pass ch cell =
  let t = Pack.tidx cell in
  (match ch.vc_treq with Some r -> r = t | None -> true)
  &&
  match ch.vc_cond.(t) with
  | Ck_pass -> true
  | Ck_reject -> false
  | Ck_cond c -> Step_cond.eval_vertex c ~row:[||] ~vertex:(Pack.id cell)

let compile ~params ~u ?(reversed = false) ?exit_vstep ~body ~op ~loc () =
  (match op with
  | Ast.Rx_count n when n < 0 -> error loc "negative repetition count"
  | _ -> ());
  validate_body ~u body;
  let p = proto_of ~body ~op ~reversed in
  let specs = Array.map (compile_spec ~params ~u) p.p_specs in
  let initial =
    List.map
      (fun (s, v) ->
        ( s,
          Option.bind v (fun v ->
              compile_vcheck ~params ~u ~allow_any_cond:true v) ))
      p.p_initial
  in
  let exit =
    Option.bind exit_vstep (fun v ->
        compile_vcheck ~params ~u ~allow_any_cond:false v)
  in
  Metrics.incr m_compiles;
  {
    a_u = u;
    a_nstates = p.p_nstates;
    a_specs = specs;
    a_trans = p.p_trans;
    a_initial = initial;
    a_accepting = p.p_accepting;
    a_chain = p.p_chain;
    a_base = p.p_base;
    a_note = p.p_note;
    a_exit = exit;
    a_states = states_of_proto p;
    a_reversed = reversed;
  }

(* ------------------------------------------------------------------ *)
(* Determinization (subset construction)                               *)

let determinize a =
  if a.a_reversed then invalid_arg "Rpq.determinize: reversed automaton";
  let key = List.map string_of_int in
  let key l = String.concat "," (key l) in
  let index : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let members = ref [] (* rev list of int list *) in
  let count = ref 0 in
  let worklist = Queue.create () in
  let intern set =
    let k = key set in
    match Hashtbl.find_opt index k with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.replace index k i;
        members := set :: !members;
        Queue.add (i, set) worklist;
        i
  in
  let init_set =
    List.sort_uniq compare (List.map fst a.a_initial)
  in
  let d0 = intern init_set in
  let dtrans = ref [] (* rev list, per dfa state in order: (spec, dst) list *) in
  let nspecs = Array.length a.a_specs in
  while not (Queue.is_empty worklist) do
    let _, set = Queue.pop worklist in
    let outs = ref [] in
    for spec_i = 0 to nspecs - 1 do
      let targets =
        List.sort_uniq compare
          (List.concat_map
             (fun s ->
               List.filter_map
                 (fun (sp, dst) -> if sp = spec_i then Some dst else None)
                 a.a_trans.(s))
             set)
      in
      if targets <> [] then outs := (spec_i, intern targets) :: !outs
    done;
    dtrans := List.rev !outs :: !dtrans
  done;
  let members = Array.of_list (List.rev !members) in
  let dtrans = Array.of_list (List.rev !dtrans) in
  let n = !count in
  let accepting =
    Array.map (List.exists (fun s -> a.a_accepting.(s))) members
  in
  let states =
    Array.init n (fun i ->
        let name =
          "{" ^ String.concat "," (List.map string_of_int members.(i)) ^ "}"
        in
        {
          si_label =
            Printf.sprintf "rx dfa %s%s" name
              (if accepting.(i) then " [accept]" else "");
          si_estep = None;
          si_vstep = None;
          si_initial = i = d0;
          si_accepting = accepting.(i);
        })
  in
  {
    a with
    a_nstates = n;
    a_trans = dtrans;
    a_initial = [ (d0, None) ];
    a_accepting = accepting;
    a_chain = Array.make n None;
    a_base = None;
    a_note = `Off;
    a_states = states;
  }

(* ------------------------------------------------------------------ *)
(* Evaluation: frontier BFS over the graph × automaton product          *)

let par_threshold = 2048

let eval a ?pool ?stats ?note ~start () =
  Metrics.incr m_evals;
  let u = a.a_u in
  let nv = Array.length u.Pack.vtypes in
  (* visited.(state).(tidx): lazily allocated bitset rows *)
  let vis = Array.init a.a_nstates (fun _ -> Array.make nv None) in
  let get_vis s t =
    match vis.(s).(t) with
    | Some b -> b
    | None ->
        let b = Bitset.create (Vset.size u.Pack.vtypes.(t)) in
        vis.(s).(t) <- Some b;
        b
  in
  let mem_vis s t id =
    match vis.(s).(t) with Some b -> Bitset.mem b id | None -> false
  in
  let stidx = Pack.tidx start and sid = Pack.id start in
  let frontier = ref [] in
  List.iter
    (fun (s, check) ->
      let ok = match check with Some ch -> vcheck_pass ch start | None -> true in
      if ok && not (mem_vis s stidx sid) then begin
        Bitset.set (get_vis s stidx) sid;
        frontier := (s, start) :: !frontier
      end)
    a.a_initial;
  let do_note =
    match note with
    | Some f ->
        fun ecell ->
          Metrics.incr m_noted;
          f ecell
    | None -> fun _ -> ()
  in
  let inline = a.a_note = `Inline && note <> None in
  (* Expand one product pair; [emit] receives each valid traversal. *)
  let expand_pair (s, cell) emit =
    let ct = Pack.tidx cell and cid = Pack.id cell in
    List.iter
      (fun (spec_i, dst) ->
        let sp = a.a_specs.(spec_i) in
        List.iter
          (fun tr ->
            let eset = u.Pack.etypes.(tr.tr_eidx) in
            let csr = if tr.tr_out then Eset.forward eset else Eset.reverse eset in
            Csr.iter_neighbors csr cid (fun ~dst:nbr ~eid ->
                let eok =
                  match sp.c_econd.(tr.tr_eidx) with
                  | Some c -> Step_cond.eval_edge c ~row:[||] ~edge:eid
                  | None -> true
                in
                if eok then
                  let vok =
                    match sp.c_vcond.(tr.tr_other) with
                    | Some c -> Step_cond.eval_vertex c ~row:[||] ~vertex:nbr
                    | None -> true
                  in
                  if vok then
                    emit ~dst ~tidx:tr.tr_other ~nbr
                      ~ecell:(Pack.pack ~tidx:tr.tr_eidx ~id:eid)))
          sp.c_travs.(ct))
      a.a_trans.(s)
  in
  let absorb next ~dst ~tidx ~nbr ~ecell =
    if inline then do_note ecell;
    let b = get_vis dst tidx in
    if not (Bitset.mem b nbr) then begin
      Bitset.set b nbr;
      next := (dst, Pack.pack ~tidx ~id:nbr) :: !next
    end
  in
  let rec loop fr =
    match fr with
    | [] -> ()
    | _ ->
        let n = List.length fr in
        Metrics.observe h_level (float_of_int n);
        let next = ref [] in
        (match pool with
        | Some pool when n >= par_threshold ->
            let arr = Array.of_list fr in
            (* Chunk-parallel level expansion: workers only read the
               visited bitsets; discoveries merge in chunk order and the
               per-level visited sets are plain set unions, so results are
               identical at any domain count. *)
            let acc =
              Pool.parallel_reduce pool
                ~init:(fun () -> ref [])
                ~body:(fun out i ->
                  expand_pair arr.(i) (fun ~dst ~tidx ~nbr ~ecell ->
                      out := (dst, tidx, nbr, ecell) :: !out))
                ~merge:(fun x y ->
                  x := List.rev_append (List.rev !y) !x;
                  x)
                ~lo:0 ~hi:n
            in
            List.iter
              (fun (dst, tidx, nbr, ecell) -> absorb next ~dst ~tidx ~nbr ~ecell)
              (List.rev !acc)
        | _ ->
            List.iter (fun pair -> expand_pair pair (absorb next)) fr);
        loop (List.rev !next)
  in
  loop (List.rev !frontier);
  (* Per-state visited sizes: profile rows and rpq.* counters. *)
  let total = ref 0 in
  Array.iteri
    (fun s row ->
      let c =
        Array.fold_left
          (fun acc b -> match b with Some b -> acc + Bitset.cardinal b | None -> acc)
          0 row
      in
      total := !total + c;
      match stats with
      | Some st when s < Array.length st -> st.(s) <- st.(s) + c
      | _ -> ())
    vis;
  Metrics.add m_visited !total;
  (* Edge noting for multi-atom bodies and {n}: an edge is on a complete
     (and for {n}, full-length) traversal iff its source is visited at the
     transition's state and its target can still complete — the backward
     "can-complete" chain from the final body position. *)
  (if note <> None && a.a_note = `Sweep then
     match a.a_base with
     | None -> ()
     | Some base ->
         let cc = Array.init a.a_nstates (fun _ -> Array.make nv None) in
         cc.(base) <- vis.(base);
         let can_complete s tidx id =
           match cc.(s).(tidx) with Some b -> Bitset.mem b id | None -> false
         in
         let reaches sp t uid next =
           let hit = ref false in
           List.iter
             (fun tr ->
               if not !hit then
                 let eset = u.Pack.etypes.(tr.tr_eidx) in
                 let csr =
                   if tr.tr_out then Eset.forward eset else Eset.reverse eset
                 in
                 Csr.iter_neighbors csr uid (fun ~dst:nbr ~eid ->
                     if not !hit then
                       let eok =
                         match sp.c_econd.(tr.tr_eidx) with
                         | Some c -> Step_cond.eval_edge c ~row:[||] ~edge:eid
                         | None -> true
                       in
                       if eok then
                         let vok =
                           match sp.c_vcond.(tr.tr_other) with
                           | Some c ->
                               Step_cond.eval_vertex c ~row:[||] ~vertex:nbr
                           | None -> true
                         in
                         if vok && can_complete next tr.tr_other nbr then
                           hit := true))
             sp.c_travs.(t);
           !hit
         in
         for s = base - 1 downto 1 do
           match a.a_chain.(s) with
           | None -> ()
           | Some (spec_i, next) ->
               let sp = a.a_specs.(spec_i) in
               Array.iteri
                 (fun t bo ->
                   match bo with
                   | None -> ()
                   | Some b ->
                       let keep = Bitset.create (Bitset.length b) in
                       Bitset.iter
                         (fun uid -> if reaches sp t uid next then Bitset.set keep uid)
                         b;
                       if not (Bitset.is_empty keep) then cc.(s).(t) <- Some keep)
                 vis.(s)
         done;
         Array.iteri
           (fun s outs ->
             List.iter
               (fun (spec_i, dst) ->
                 let sp = a.a_specs.(spec_i) in
                 Array.iteri
                   (fun t bo ->
                     match bo with
                     | None -> ()
                     | Some b ->
                         Bitset.iter
                           (fun uid ->
                             List.iter
                               (fun tr ->
                                 let eset = u.Pack.etypes.(tr.tr_eidx) in
                                 let csr =
                                   if tr.tr_out then Eset.forward eset
                                   else Eset.reverse eset
                                 in
                                 Csr.iter_neighbors csr uid (fun ~dst:nbr ~eid ->
                                     let eok =
                                       match sp.c_econd.(tr.tr_eidx) with
                                       | Some c ->
                                           Step_cond.eval_edge c ~row:[||]
                                             ~edge:eid
                                       | None -> true
                                     in
                                     if eok then
                                       let vok =
                                         match sp.c_vcond.(tr.tr_other) with
                                         | Some c ->
                                             Step_cond.eval_vertex c ~row:[||]
                                               ~vertex:nbr
                                         | None -> true
                                       in
                                       if
                                         vok
                                         && can_complete dst tr.tr_other nbr
                                       then
                                         do_note
                                           (Pack.pack ~tidx:tr.tr_eidx ~id:eid)))
                               sp.c_travs.(t))
                           b)
                   vis.(s))
               outs)
           a.a_trans);
  (* Endpoints: visited cells at accepting states, ascending packed order
     — [Pack.pack] is monotonic in (tidx, id), so per-type ascending
     bitset iteration is exactly the closure engine's [List.sort compare]. *)
  let exit_pass cell =
    match a.a_exit with None -> true | Some ch -> vcheck_pass ch cell
  in
  let out = ref [] in
  for t = 0 to nv - 1 do
    let rows =
      List.filter_map
        (fun s -> if a.a_accepting.(s) then vis.(s).(t) else None)
        (List.init a.a_nstates Fun.id)
    in
    let merged =
      match rows with
      | [] -> None
      | [ b ] -> Some b
      | b :: rest ->
          let m = Bitset.copy b in
          List.iter (fun b2 -> Bitset.union_into m b2) rest;
          Some m
    in
    match merged with
    | None -> ()
    | Some b ->
        Bitset.iter
          (fun id ->
            let cell = Pack.pack ~tidx:t ~id in
            if exit_pass cell then out := cell :: !out)
          b
  done;
  List.rev !out
