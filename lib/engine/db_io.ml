module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype
module Value = Graql_storage.Value
module Date = Graql_storage.Date
module Csv = Graql_storage.Csv
module Table_catalog = Graql_storage.Table_catalog
module Pretty = Graql_lang.Pretty
module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc

let csv_name table = String.lowercase_ascii (Table.name table) ^ ".csv"

let create_table_stmt table =
  let schema = Table.schema table in
  let cols =
    List.init (Schema.arity schema) (fun i ->
        Printf.sprintf "%s %s" (Schema.col_name schema i)
          (Dtype.to_string (Schema.col_dtype schema i)))
  in
  Printf.sprintf "create table %s (%s)" (Table.name table)
    (String.concat ", " cols)

let vertex_stmt (vd : Db.vertex_def) =
  let where =
    match vd.Db.vd_where with
    | Some e -> Printf.sprintf " where %s" (Pretty.expr_to_string e)
    | None -> ""
  in
  Printf.sprintf "create vertex %s(%s) from table %s%s" vd.Db.vd_name
    (String.concat ", " vd.Db.vd_key)
    vd.Db.vd_from where

let edge_stmt (ed : Db.edge_def) =
  let endpoint (e : Ast.vertex_endpoint) =
    match e.Ast.ve_alias with
    | Some a -> Printf.sprintf "%s as %s" e.Ast.ve_type a
    | None -> e.Ast.ve_type
  in
  let from =
    match ed.Db.ed_from with
    | Some t -> Printf.sprintf " from table %s" t
    | None -> ""
  in
  let where =
    match ed.Db.ed_where with
    | Some e -> Printf.sprintf " where %s" (Pretty.expr_to_string e)
    | None -> ""
  in
  Printf.sprintf "create edge %s with vertices (%s, %s)%s%s" ed.Db.ed_name
    (endpoint ed.Db.ed_src) (endpoint ed.Db.ed_dst) from where

(* Parameters survive a checkpoint as [set] statements. Dates have no
   literal form in the language, so they reload as their string form and
   coerce where used; floats print at full precision. *)
let param_stmt name v =
  let lit =
    match v with
    | Value.Null -> "null"
    | Value.Bool b -> string_of_bool b
    | Value.Int i -> string_of_int i
    | Value.Float f -> Printf.sprintf "%.17g" f
    | Value.Str s ->
        Pretty.expr_to_string (Ast.E_lit (Ast.L_string s, Loc.dummy))
    | Value.Date d ->
        Pretty.expr_to_string
          (Ast.E_lit (Ast.L_string (Date.to_string d), Loc.dummy))
  in
  Printf.sprintf "set %%%s%% = %s" name lit

let ddl_of_db db =
  let tables =
    List.map (Table_catalog.find_exn (Db.tables db)) (Table_catalog.names (Db.tables db))
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf (create_table_stmt t);
      Buffer.add_char buf '\n')
    tables;
  List.iter
    (fun vd ->
      Buffer.add_string buf (vertex_stmt vd);
      Buffer.add_char buf '\n')
    (Db.vertex_defs db);
  List.iter
    (fun ed ->
      Buffer.add_string buf (edge_stmt ed);
      Buffer.add_char buf '\n')
    (Db.edge_defs db);
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (param_stmt name v);
      Buffer.add_char buf '\n')
    (Db.params db);
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "ingest table %s %s\n" (Table.name t) (csv_name t)))
    tables;
  Buffer.contents buf

let export_files db =
  let tables =
    List.map (Table_catalog.find_exn (Db.tables db)) (Table_catalog.names (Db.tables db))
  in
  ("schema.graql", ddl_of_db db)
  :: List.map (fun t -> (csv_name t, Csv.table_to_csv t)) tables

(* ------------------------------------------------------------------ *)
(* Atomic export + manifest                                            *)

let manifest_name = "MANIFEST"

let manifest_of_files files =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, contents) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %s\n"
           (Digest.to_hex (Digest.string contents))
           (String.length contents) name))
    files;
  Buffer.contents buf

let parse_manifest doc =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ md5; size; name ] -> (
          match int_of_string_opt size with
          | Some size when String.length md5 = 32 -> Some (name, (md5, size))
          | _ -> raise (Graql_error.Error (Graql_error.Io
              (Printf.sprintf "%s: malformed line %S" manifest_name line))))
      | [ "" ] | [] -> None
      | _ ->
          raise (Graql_error.Error (Graql_error.Io
              (Printf.sprintf "%s: malformed line %S" manifest_name line))))
    (String.split_on_char '\n' doc)

(* Write-to-temp then rename: a crash mid-export leaves the previous file
   (or no file) in place, never a torn one. The temp file lives in the
   destination directory so the rename stays within one filesystem. The
   temp file is fsync'd before the rename — rename alone only orders
   metadata, not data, so without it a power failure could publish a
   correctly-named file full of zeroes. *)
let write_atomic ~dir name contents =
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ name) ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp (Filename.concat dir name)

let export db ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let files = export_files db in
  List.iter (fun (name, contents) -> write_atomic ~dir name contents) files;
  (* The manifest goes last: its presence certifies a complete dump. *)
  write_atomic ~dir manifest_name (manifest_of_files files);
  (* ...and the renames themselves must survive a power failure. *)
  Wal.fsync_dir dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_manifest ~dir =
  let path = Filename.concat dir manifest_name in
  if Sys.file_exists path then Some (parse_manifest (read_file path)) else None

let verify_file ~entries ~name contents =
  match List.assoc_opt name entries with
  | None -> ()
  | Some (md5, size) ->
      if String.length contents <> size then
        raise (Graql_error.Error (Graql_error.Io
            (Printf.sprintf
               "%s: size mismatch (%d bytes on disk, %d in %s) — half-written dump?"
               name (String.length contents) size manifest_name)));
      if Digest.to_hex (Digest.string contents) <> md5 then
        raise (Graql_error.Error (Graql_error.Io
            (Printf.sprintf "%s: checksum mismatch against %s — corrupt dump"
               name manifest_name)))

let verify ~dir =
  match load_manifest ~dir with
  | None -> []
  | Some entries ->
      List.filter_map
        (fun (name, _) ->
          let path = Filename.concat dir name in
          if not (Sys.file_exists path) then
            Some (name, "missing file listed in " ^ manifest_name)
          else
            match verify_file ~entries ~name (read_file path) with
            | () -> None
            | exception Graql_error.Error (Graql_error.Io msg) -> Some (name, msg))
        entries

let checked_loader ~dir =
  let entries = lazy (load_manifest ~dir) in
  fun name ->
    let contents = read_file (Filename.concat dir name) in
    (match Lazy.force entries with
    | Some entries -> verify_file ~entries ~name contents
    | None -> ());
    contents

(* ------------------------------------------------------------------ *)
(* Durability: checkpoints + crash recovery (DESIGN.md §9)              *)

let io_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Graql_error.Error (Graql_error.Io msg)))
    fmt

let checkpoint_prefix = "checkpoint-"

let checkpoint_dir_name ~epoch = Printf.sprintf "checkpoint-%06d" epoch

let epoch_of_checkpoint_name name =
  let pl = String.length checkpoint_prefix in
  if String.length name > pl && String.sub name 0 pl = checkpoint_prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let epoch_of_wal_name name =
  if
    String.length name > 8
    && String.sub name 0 4 = "wal-"
    && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 (String.length name - 8))
  else None

(* The newest checkpoint whose MANIFEST made it to disk. A directory
   without a manifest is a checkpoint that was interrupted mid-export:
   ignored, never deleted here (the next successful checkpoint cleans
   up). *)
let latest_checkpoint ~dir =
  if not (Sys.file_exists dir) then None
  else
    Array.fold_left
      (fun best name ->
        match epoch_of_checkpoint_name name with
        | Some epoch
          when Sys.file_exists
                 (Filename.concat (Filename.concat dir name) manifest_name)
               && (match best with Some (e, _) -> epoch > e | None -> true) ->
            Some (epoch, Filename.concat dir name)
        | _ -> best)
      None (Sys.readdir dir)

type recovery = {
  rec_epoch : int;  (** checkpoint epoch the database restarted from *)
  rec_checkpoint : bool;  (** a checkpoint snapshot was loaded *)
  rec_replayed : int;  (** WAL records re-applied on top of it *)
  rec_truncated : int;  (** torn-tail bytes dropped from the WAL *)
}

(* Replay one logged operation. Statements that failed in the original
   run were logged before they died; they fail identically here and are
   skipped the same way a live script degrades per statement. Only
   genuinely fatal conditions propagate. *)
let replay db record =
  match
    match record with
    | Wal.R_stmt stmt -> ignore (Script_exec.exec_stmt db stmt)
    | Wal.R_ingest { table; file; doc } ->
        ignore
          (Script_exec.exec_stmt
             ~loader:(fun _ -> doc)
             db
             (Ast.Ingest
                { ing_table = table; ing_file = file; ing_loc = Loc.dummy }))
  with
  | () -> ()
  | exception e -> (
      match Graql_error.of_exn e with Some _ -> () | None -> raise e)

let load_checkpoint db ~cp_dir =
  let loader = checked_loader ~dir:cp_dir in
  let source =
    try loader "schema.graql"
    with Sys_error msg -> io_error "checkpoint %s: %s" cp_dir msg
  in
  let script =
    try Graql_lang.Parser.parse_script source
    with Graql_lang.Loc.Syntax_error (loc, msg) ->
      io_error "checkpoint %s: schema.graql:%s: %s" cp_dir
        (Graql_lang.Loc.to_string loc) msg
  in
  List.iter
    (fun stmt ->
      try ignore (Script_exec.exec_stmt ~loader db stmt)
      with
      | Graql_error.Error (Graql_error.Io _) as e -> raise e
      | Script_exec.Script_error (loc, msg) ->
          io_error "checkpoint %s: %s: %s" cp_dir
            (Graql_lang.Loc.to_string loc) msg)
    script

(* Expected-but-noteworthy: a torn WAL tail after a crash is exactly
   what the durability contract allows, but operators should be able to
   see that it happened on /metrics after the restart. *)
let m_torn_tail =
  Graql_obs.Metrics.counter
    ~help:"Torn write-ahead-log tails truncated during recovery."
    "wal.torn_tail"

let recover db ~dir =
  (match Db.wal db with
  | Some _ ->
      invalid_arg "Db_io.recover: detach the WAL first (replay must not re-log)"
  | None -> ());
  let epoch, checkpoint_loaded =
    match latest_checkpoint ~dir with
    | Some (epoch, cp_dir) ->
        load_checkpoint db ~cp_dir;
        (epoch, true)
    | None -> (0, false)
  in
  let wal_path = Filename.concat dir (Wal.file_name ~epoch) in
  let replayed, truncated =
    if not (Sys.file_exists wal_path) then (0, 0)
    else begin
      let scan = Wal.scan_file wal_path in
      if scan.Wal.s_valid_end > 0 && scan.Wal.s_epoch <> epoch then
        io_error "%s: WAL header epoch %d does not match its file name"
          (Filename.basename wal_path) scan.Wal.s_epoch;
      (* Drop the torn tail now so the reopened log appends after the
         last intact record. A torn *header* truncates to empty;
         [Wal.open_log] rewrites it. *)
      if scan.Wal.s_torn > 0 then begin
        Graql_obs.Metrics.incr m_torn_tail;
        Printf.eprintf
          "graql: warning: %s: truncated %d-byte torn WAL tail (crash \
           mid-append; last acknowledged record is intact)\n%!"
          (Filename.basename wal_path) scan.Wal.s_torn;
        Wal.truncate_file wal_path scan.Wal.s_valid_end
      end;
      List.iter (replay db) scan.Wal.s_records;
      (List.length scan.Wal.s_records, scan.Wal.s_torn)
    end
  in
  {
    rec_epoch = epoch;
    rec_checkpoint = checkpoint_loaded;
    rec_replayed = replayed;
    rec_truncated = truncated;
  }

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Fold the log into a fresh snapshot and start the next epoch. Crash
   windows are all recoverable: before the new MANIFEST lands, recovery
   still finds the old checkpoint + full WAL; between the manifest and
   [Wal.advance], recovery finds the new checkpoint and no WAL for its
   epoch (the stale log is superseded, its effects are in the
   snapshot). Superseded epochs are deleted last, best-effort. *)
let gc_superseded ~dir ~epoch =
  Array.iter
    (fun name ->
      let stale =
        match epoch_of_checkpoint_name name with
        | Some e -> e < epoch
        | None -> (
            match epoch_of_wal_name name with Some e -> e < epoch | None -> false)
      in
      if stale then
        try rm_rf (Filename.concat dir name) with Sys_error _ -> ())
    (Sys.readdir dir);
  Wal.fsync_dir dir

let checkpoint db w =
  let dir = Wal.dir w in
  let epoch = Wal.epoch w + 1 in
  export db ~dir:(Filename.concat dir (checkpoint_dir_name ~epoch));
  Wal.advance w;
  gc_superseded ~dir ~epoch
