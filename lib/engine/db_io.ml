module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Dtype = Graql_storage.Dtype
module Csv = Graql_storage.Csv
module Table_catalog = Graql_storage.Table_catalog
module Pretty = Graql_lang.Pretty
module Ast = Graql_lang.Ast

let csv_name table = String.lowercase_ascii (Table.name table) ^ ".csv"

let create_table_stmt table =
  let schema = Table.schema table in
  let cols =
    List.init (Schema.arity schema) (fun i ->
        Printf.sprintf "%s %s" (Schema.col_name schema i)
          (Dtype.to_string (Schema.col_dtype schema i)))
  in
  Printf.sprintf "create table %s (%s)" (Table.name table)
    (String.concat ", " cols)

let vertex_stmt (vd : Db.vertex_def) =
  let where =
    match vd.Db.vd_where with
    | Some e -> Printf.sprintf " where %s" (Pretty.expr_to_string e)
    | None -> ""
  in
  Printf.sprintf "create vertex %s(%s) from table %s%s" vd.Db.vd_name
    (String.concat ", " vd.Db.vd_key)
    vd.Db.vd_from where

let edge_stmt (ed : Db.edge_def) =
  let endpoint (e : Ast.vertex_endpoint) =
    match e.Ast.ve_alias with
    | Some a -> Printf.sprintf "%s as %s" e.Ast.ve_type a
    | None -> e.Ast.ve_type
  in
  let from =
    match ed.Db.ed_from with
    | Some t -> Printf.sprintf " from table %s" t
    | None -> ""
  in
  let where =
    match ed.Db.ed_where with
    | Some e -> Printf.sprintf " where %s" (Pretty.expr_to_string e)
    | None -> ""
  in
  Printf.sprintf "create edge %s with vertices (%s, %s)%s%s" ed.Db.ed_name
    (endpoint ed.Db.ed_src) (endpoint ed.Db.ed_dst) from where

let ddl_of_db db =
  let tables =
    List.map (Table_catalog.find_exn (Db.tables db)) (Table_catalog.names (Db.tables db))
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf (create_table_stmt t);
      Buffer.add_char buf '\n')
    tables;
  List.iter
    (fun vd ->
      Buffer.add_string buf (vertex_stmt vd);
      Buffer.add_char buf '\n')
    (Db.vertex_defs db);
  List.iter
    (fun ed ->
      Buffer.add_string buf (edge_stmt ed);
      Buffer.add_char buf '\n')
    (Db.edge_defs db);
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "ingest table %s %s\n" (Table.name t) (csv_name t)))
    tables;
  Buffer.contents buf

let export_files db =
  let tables =
    List.map (Table_catalog.find_exn (Db.tables db)) (Table_catalog.names (Db.tables db))
  in
  ("schema.graql", ddl_of_db db)
  :: List.map (fun t -> (csv_name t, Csv.table_to_csv t)) tables

(* ------------------------------------------------------------------ *)
(* Atomic export + manifest                                            *)

let manifest_name = "MANIFEST"

let manifest_of_files files =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, contents) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %d %s\n"
           (Digest.to_hex (Digest.string contents))
           (String.length contents) name))
    files;
  Buffer.contents buf

let parse_manifest doc =
  List.filter_map
    (fun line ->
      match String.split_on_char ' ' (String.trim line) with
      | [ md5; size; name ] -> (
          match int_of_string_opt size with
          | Some size when String.length md5 = 32 -> Some (name, (md5, size))
          | _ -> raise (Graql_error.Error (Graql_error.Io
              (Printf.sprintf "%s: malformed line %S" manifest_name line))))
      | [ "" ] | [] -> None
      | _ ->
          raise (Graql_error.Error (Graql_error.Io
              (Printf.sprintf "%s: malformed line %S" manifest_name line))))
    (String.split_on_char '\n' doc)

(* Write-to-temp then rename: a crash mid-export leaves the previous file
   (or no file) in place, never a torn one. The temp file lives in the
   destination directory so the rename stays within one filesystem. *)
let write_atomic ~dir name contents =
  let tmp = Filename.temp_file ~temp_dir:dir ("." ^ name) ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp (Filename.concat dir name)

let export db ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let files = export_files db in
  List.iter (fun (name, contents) -> write_atomic ~dir name contents) files;
  (* The manifest goes last: its presence certifies a complete dump. *)
  write_atomic ~dir manifest_name (manifest_of_files files)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_manifest ~dir =
  let path = Filename.concat dir manifest_name in
  if Sys.file_exists path then Some (parse_manifest (read_file path)) else None

let verify_file ~entries ~name contents =
  match List.assoc_opt name entries with
  | None -> ()
  | Some (md5, size) ->
      if String.length contents <> size then
        raise (Graql_error.Error (Graql_error.Io
            (Printf.sprintf
               "%s: size mismatch (%d bytes on disk, %d in %s) — half-written dump?"
               name (String.length contents) size manifest_name)));
      if Digest.to_hex (Digest.string contents) <> md5 then
        raise (Graql_error.Error (Graql_error.Io
            (Printf.sprintf "%s: checksum mismatch against %s — corrupt dump"
               name manifest_name)))

let verify ~dir =
  match load_manifest ~dir with
  | None -> []
  | Some entries ->
      List.filter_map
        (fun (name, _) ->
          let path = Filename.concat dir name in
          if not (Sys.file_exists path) then
            Some (name, "missing file listed in " ^ manifest_name)
          else
            match verify_file ~entries ~name (read_file path) with
            | () -> None
            | exception Graql_error.Error (Graql_error.Io msg) -> Some (name, msg))
        entries

let checked_loader ~dir =
  let entries = lazy (load_manifest ~dir) in
  fun name ->
    let contents = read_file (Filename.concat dir name) in
    (match Lazy.force entries with
    | Some entries -> verify_file ~entries ~name contents
    | None -> ());
    contents
