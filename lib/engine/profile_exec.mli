(** EXPLAIN ANALYZE: execute a statement with profiling armed and
    report the planner's estimates side by side with what actually
    happened — per-step frontier sizes, per-operator row counts, and
    wall times.

    Unlike {!Explain}, which never touches the data, profiling runs the
    statement for real (including its side effects: result tables and
    subgraphs are registered, WAL records written). *)

module Ast = Graql_lang.Ast

type row = {
  pr_label : string;  (** step or operator description *)
  pr_est : float option;
      (** planner-estimated frontier size; [None] when the plan has no
          estimate for this step (relational operators, padded steps) *)
  pr_rows : int;  (** actual frontier size / output rows *)
  pr_ms : float;
}

type report = {
  r_stmt : Ast.stmt;
  r_outcome : Script_exec.outcome;
  r_ms : float;  (** total statement wall time *)
  r_paths : (Explain.plan option * row list) list;
      (** per simple path, in execution order; the first row of each
          path is the seed *)
  r_ops : row list;  (** relational operators, in execution order *)
  r_ledger : Graql_obs.Ledger.t;
      (** per-statement resource accounting (rows/bytes scanned, GC
          words, pool wait/run, retries) captured around the run *)
}

val profile_stmt : ?loader:(string -> string) -> Db.t -> Ast.stmt -> report
(** Execute one statement with a profile collector installed. Failures
    are captured as an [O_failed] outcome, never raised. *)

val profile_script :
  ?loader:(string -> string) -> Db.t -> Ast.stmt list -> report list
(** Profile each statement in order (sequentially — profiling wants
    per-statement attribution, not inter-statement overlap). *)

val render : report -> string
(** Human-readable report: per-path step tables with estimated and
    actual frontier sizes, the operator table, outcome, the resource
    ledger line, and total time. *)
