module Table = Graql_storage.Table
module Value = Graql_storage.Value
module Table_catalog = Graql_storage.Table_catalog
module Schema = Graql_storage.Schema
module Graph_store = Graql_graph.Graph_store
module Subgraph = Graql_graph.Subgraph
module Vset = Graql_graph.Vset
module Eset = Graql_graph.Eset
module Meta = Graql_analysis.Meta
module Ast = Graql_lang.Ast

type vertex_def = {
  vd_name : string;
  vd_key : string list;
  vd_from : string;
  vd_where : Ast.expr option;
}

type edge_def = {
  ed_name : string;
  ed_src : Ast.vertex_endpoint;
  ed_dst : Ast.vertex_endpoint;
  ed_from : string option;
  ed_where : Ast.expr option;
}

type t = {
  tables : Table_catalog.t;
  mutable vertex_defs : vertex_def list; (* reversed *)
  mutable edge_defs : edge_def list; (* reversed *)
  mutable built : Graph_store.t option;
  (* Previous build kept for selective view reuse, plus the (table,
     version) dependency fingerprint each view was built against. *)
  mutable last_built : Graph_store.t option;
  mutable view_fingerprints : (string * (string * int) list) list;
  table_versions : (string, int) Hashtbl.t;
  mutable builder : (t -> Graph_store.t) option;
  subgraphs : (string, Subgraph.t) Hashtbl.t;
  mutable subgraph_order : string list;
  params : (string, Value.t) Hashtbl.t;
  pool : Graql_parallel.Domain_pool.t option;
  (* Durability sink: when set, Script_exec logs every mutating statement
     here (fsync'd) before applying it. None = in-memory database. *)
  mutable wal : Wal.t option;
  mutex : Mutex.t;
  (* Reader-writer epoch (serve-layer concurrency): read-only statements
     hold the shared side and pin the epoch for their lifetime; mutating
     statements hold the exclusive side (writer-preferring, so a stream
     of readers cannot starve ingest) and bump the epoch on release. The
     epoch counts completed write sections — two reads pinning the same
     epoch observed the same database state. *)
  rw_mu : Mutex.t;
  rw_cv : Condition.t;
  mutable rw_readers : int;
  mutable rw_writer : bool;
  mutable rw_waiting_writers : int;
  mutable rw_epoch : int;
}

let create ?pool () =
  {
    tables = Table_catalog.create ();
    vertex_defs = [];
    edge_defs = [];
    built = None;
    last_built = None;
    view_fingerprints = [];
    table_versions = Hashtbl.create 16;
    builder = None;
    subgraphs = Hashtbl.create 8;
    subgraph_order = [];
    params = Hashtbl.create 8;
    pool;
    wal = None;
    mutex = Mutex.create ();
    rw_mu = Mutex.create ();
    rw_cv = Condition.create ();
    rw_readers = 0;
    rw_writer = false;
    rw_waiting_writers = 0;
    rw_epoch = 0;
  }

let pool t = t.pool
let wal t = t.wal
let set_wal t w = t.wal <- w
let tables t = t.tables
let add_table t table = Table_catalog.add t.tables table
let find_table t name = Table_catalog.find t.tables name
let find_table_exn t name = Table_catalog.find_exn t.tables name

let invalidate_graph t =
  (match t.built with Some g -> t.last_built <- Some g | None -> ());
  t.built <- None

let table_version t name =
  Option.value ~default:0
    (Hashtbl.find_opt t.table_versions (String.lowercase_ascii name))

let touch_table t name =
  Hashtbl.replace t.table_versions
    (String.lowercase_ascii name)
    (table_version t name + 1);
  invalidate_graph t

let last_built t = t.last_built
let view_fingerprints t = t.view_fingerprints
let set_view_fingerprints t fps = t.view_fingerprints <- fps

let add_vertex_def t vd =
  t.vertex_defs <- vd :: t.vertex_defs;
  invalidate_graph t

let add_edge_def t ed =
  t.edge_defs <- ed :: t.edge_defs;
  invalidate_graph t

let vertex_defs t = List.rev t.vertex_defs
let edge_defs t = List.rev t.edge_defs

let set_builder t f = t.builder <- Some f

let graph t =
  match t.built with
  | Some g -> g
  | None -> (
      match t.builder with
      | None -> failwith "Db.graph: no view builder installed"
      | Some build ->
          let g = build t in
          t.built <- Some g;
          g)

let norm = String.lowercase_ascii

let add_subgraph t sg =
  let key = norm (Subgraph.name sg) in
  if not (Hashtbl.mem t.subgraphs key) then
    t.subgraph_order <- key :: t.subgraph_order;
  Hashtbl.replace t.subgraphs key sg

let find_subgraph t name = Hashtbl.find_opt t.subgraphs (norm name)

let subgraph_names t =
  List.rev_map
    (fun key -> Subgraph.name (Hashtbl.find t.subgraphs key))
    t.subgraph_order

let set_param t name v = Hashtbl.replace t.params name v
let find_param t name = Hashtbl.find_opt t.params name

let params t =
  List.sort compare (Hashtbl.fold (fun n v acc -> (n, v) :: acc) t.params [])

let register_result_table t table = Table_catalog.replace t.tables table

let meta t =
  let m = Meta.create () in
  List.iter
    (fun name ->
      let table = Table_catalog.find_exn t.tables name in
      Meta.add_table m name (Table.schema table);
      Meta.set_size m name (Table.nrows table))
    (Table_catalog.names t.tables);
  (* Prefer built views (real sizes + one-to-one attribute visibility); fall
     back to definitions when the graph has not been built yet. *)
  (match t.built with
  | Some g ->
      List.iter
        (fun vname ->
          let v = Graph_store.find_vset_exn g vname in
          Meta.add_vertex m
            {
              Meta.vm_name = vname;
              vm_key = Vset.key_schema v;
              vm_attrs = Vset.attr_schema v;
              vm_source = Table.name (Vset.source_table v);
              vm_size = Some (Vset.size v);
            })
        (Graph_store.vset_names g);
      List.iter
        (fun ename ->
          let e = Graph_store.find_eset_exn g ename in
          Meta.add_edge m
            {
              Meta.em_name = ename;
              em_src = Eset.src_type e;
              em_dst = Eset.dst_type e;
              em_attrs = Option.map Table.schema (Eset.attr_table e);
              em_size = Some (Eset.size e);
            })
        (Graph_store.eset_names g)
  | None ->
      List.iter
        (fun vd ->
          match Table_catalog.find t.tables vd.vd_from with
          | Some table ->
              let schema = Table.schema table in
              let key_cols =
                List.filter_map
                  (fun k ->
                    Option.map
                      (fun i ->
                        { Schema.name = k; dtype = Schema.col_dtype schema i })
                      (Schema.find schema k))
                  vd.vd_key
              in
              Meta.add_vertex m
                {
                  Meta.vm_name = vd.vd_name;
                  vm_key = Schema.make key_cols;
                  vm_attrs = schema;
                  vm_source = vd.vd_from;
                  vm_size = None;
                }
          | None -> ())
        (vertex_defs t);
      List.iter
        (fun ed ->
          Meta.add_edge m
            {
              Meta.em_name = ed.ed_name;
              em_src = ed.ed_src.Ast.ve_type;
              em_dst = ed.ed_dst.Ast.ve_type;
              em_attrs =
                Option.bind ed.ed_from (fun tn ->
                    Option.map Table.schema (Table_catalog.find t.tables tn));
              em_size = None;
            })
        (edge_defs t));
  List.iter
    (fun sgname ->
      let sg = Hashtbl.find t.subgraphs (norm sgname) in
      Meta.add_subgraph m sgname (Subgraph.vtypes sg))
    (subgraph_names t);
  m

let lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* Reader-writer epoch                                                 *)

let epoch t =
  Mutex.lock t.rw_mu;
  let e = t.rw_epoch in
  Mutex.unlock t.rw_mu;
  e

let read_locked t f =
  Mutex.lock t.rw_mu;
  (* Writer preference: an arriving reader also yields to *waiting*
     writers, so ingest cannot be starved by a read flood. *)
  while t.rw_writer || t.rw_waiting_writers > 0 do
    Condition.wait t.rw_cv t.rw_mu
  done;
  t.rw_readers <- t.rw_readers + 1;
  let e = t.rw_epoch in
  Mutex.unlock t.rw_mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.rw_mu;
      t.rw_readers <- t.rw_readers - 1;
      if t.rw_readers = 0 then Condition.broadcast t.rw_cv;
      Mutex.unlock t.rw_mu)
    (fun () -> (e, f ()))

let write_locked t f =
  Mutex.lock t.rw_mu;
  t.rw_waiting_writers <- t.rw_waiting_writers + 1;
  while t.rw_writer || t.rw_readers > 0 do
    Condition.wait t.rw_cv t.rw_mu
  done;
  t.rw_waiting_writers <- t.rw_waiting_writers - 1;
  t.rw_writer <- true;
  Mutex.unlock t.rw_mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.rw_mu;
      t.rw_writer <- false;
      (* Bump unconditionally: a failed write may have partially
         mutated state, so snapshots pinned before it must not be
         considered equal to snapshots pinned after. *)
      t.rw_epoch <- t.rw_epoch + 1;
      Condition.broadcast t.rw_cv;
      Mutex.unlock t.rw_mu)
    f
