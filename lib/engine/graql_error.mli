(** The typed error taxonomy for the whole pipeline.

    Every way a statement or script can fail is one of these constructors,
    so callers (the session, the server, the CLI) can distinguish a query
    that was rejected up front ([Parse], [Analysis], [Denied]) from one the
    backend could not finish ([Exec], [Exec_fault], [Timeout], [Io]) — and
    the CLI can map each class to a stable exit code. [Script_exec] reports
    statement failures as [O_failed] outcomes carrying one of these, so one
    dead statement no longer aborts the rest of a script. *)

type t =
  | Parse of Graql_lang.Loc.t * string  (** source text did not parse *)
  | Analysis of Graql_analysis.Diag.t list
      (** static analysis errors (strict sessions refuse to execute) *)
  | Exec of Graql_lang.Loc.t * string  (** runtime statement failure *)
  | Exec_fault of { site : string; attempts : int }
      (** a shard stayed dead through every retry and replica *)
  | Timeout of { deadline_ms : int }  (** query deadline exceeded *)
  | Denied of string  (** role-based authorization refused the script *)
  | Io of string  (** filesystem / ingest / export failure *)

exception Error of t

val raise_error : t -> 'a
val to_string : t -> string

val exit_code : t -> int
(** Stable per-class CLI exit codes: Parse 2, Analysis 3, Exec 4,
    Exec_fault 5, Timeout 6, Denied 7, Io 8. *)

val of_exn : exn -> t option
(** Classify an exception; [None] means fatal (out of memory, stack
    overflow) and must be re-raised, everything else maps into the
    taxonomy (unrecognized exceptions become [Exec] at a dummy
    location). *)
