module Ast = Graql_lang.Ast
module Pretty = Graql_lang.Pretty
module Text_table = Graql_util.Text_table
module Profile = Graql_obs.Profile
module Ledger = Graql_obs.Ledger

type row = {
  pr_label : string;
  pr_est : float option;  (** planner estimate; None when no plan covers it *)
  pr_rows : int;
  pr_ms : float;
}

type report = {
  r_stmt : Ast.stmt;
  r_outcome : Script_exec.outcome;
  r_ms : float;
  r_paths : (Explain.plan option * row list) list;
  r_ops : row list;
  r_ledger : Ledger.t;
}

(* Planner estimates for one path, positionally aligned with the
   executor's samples: the seed is the first sample, then one per
   segment. Both [Explain.explain_multipath] and the executor's [go]
   traversal enumerate simple paths left to right, and both compute
   along the same chosen direction, so zipping is sound. *)
let estimates_of_plan plan =
  plan.Explain.pl_seed_estimate
  :: List.map (fun s -> s.Explain.sp_estimate) plan.Explain.pl_steps

let zip_path plan samples =
  let ests =
    match plan with Some p -> estimates_of_plan p | None -> []
  in
  let rec go ests samples =
    match samples with
    | [] -> []
    | s :: rest ->
        let est, ests' =
          match ests with e :: tl -> (Some e, tl) | [] -> (None, [])
        in
        {
          pr_label = s.Profile.sa_label;
          pr_est = est;
          pr_rows = s.Profile.sa_rows;
          pr_ms = s.Profile.sa_ms;
        }
        :: go ests' rest
  in
  (plan, go ests samples)

let plans_of_stmt db stmt =
  match stmt with
  | Ast.Select_graph sg -> (
      try
        Explain.explain_multipath ~db ~params:(Db.find_param db)
          ~edges_needed:(Explain.edges_needed_of_select sg)
          sg.Ast.sg_path
      with _ -> [])
  | _ -> []

(* (label, estimated rows) for the table operators a select-table
   statement will run, in the planner's emission order. Estimates attach
   to operator samples by label: each sample consumes the first
   still-unclaimed estimate with its label, so scans (observed in textual
   order) and planned filters/joins line up even when the plan reorders
   them. *)
let op_estimates_of_stmt db stmt =
  match stmt with
  | Ast.Select_table st -> (
      try
        Table_plan.op_estimates
          (Table_plan.of_select ~db ~params:(Db.find_param db) st)
      with _ -> [])
  | _ -> []

let attach_op_estimates ests ops =
  let remaining = ref ests in
  let take label =
    let rec go acc = function
      | [] -> None
      | (l, e) :: tl when l = label ->
          remaining := List.rev_append acc tl;
          Some e
      | hd :: tl -> go (hd :: acc) tl
    in
    go [] !remaining
  in
  List.map
    (fun s ->
      {
        pr_label = s.Profile.sa_label;
        pr_est = take s.Profile.sa_label;
        pr_rows = s.Profile.sa_rows;
        pr_ms = s.Profile.sa_ms;
      })
    ops

let profile_stmt ?loader db stmt =
  let plans = plans_of_stmt db stmt in
  let op_ests = op_estimates_of_stmt db stmt in
  let coll = Profile.create () in
  let lg0 = Ledger.start () in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Profile.with_collector coll (fun () ->
        try Script_exec.exec_stmt ?loader db stmt with
        | Script_exec.Script_error (l, m) ->
            Script_exec.O_failed (Graql_error.Exec (l, m))
        | e -> (
            match Graql_error.of_exn e with
            | Some err -> Script_exec.O_failed err
            | None -> raise e))
  in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let rows_out =
    match outcome with
    | Script_exec.O_table t -> Graql_storage.Table.nrows t
    | _ -> 0
  in
  let ledger = Ledger.finish ~rows_out lg0 in
  let sampled = Profile.paths coll in
  (* Pad whichever side is shorter: a failed path leaves no samples, a
     cross-path label reference leaves no plan. *)
  let rec pair plans sampled =
    match (plans, sampled) with
    | [], [] -> []
    | p :: ps, s :: ss -> zip_path (Some p) s :: pair ps ss
    | [], s :: ss -> zip_path None s :: pair [] ss
    | _ :: _, [] -> []
  in
  {
    r_stmt = stmt;
    r_outcome = outcome;
    r_ms = ms;
    r_paths = pair plans sampled;
    r_ops = attach_op_estimates op_ests (Profile.ops coll);
    r_ledger = ledger;
  }

let profile_script ?loader db script =
  List.map (fun stmt -> profile_stmt ?loader db stmt) script

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let outcome_string = function
  | Script_exec.O_table t ->
      Printf.sprintf "table %s (%d rows)" (Graql_storage.Table.name t)
        (Graql_storage.Table.nrows t)
  | Script_exec.O_subgraph s ->
      Printf.sprintf "subgraph %s" (Graql_graph.Subgraph.name s)
  | Script_exec.O_message m -> m
  | Script_exec.O_failed e -> "failed: " ^ Graql_error.to_string e

let err_factor ~est ~actual =
  match est with
  | None -> "-"
  | Some e when e <= 0.0 -> if actual = 0 then "1.0" else "-"
  | Some e ->
      let a = float_of_int actual in
      if a = 0.0 then "-"
      else
        let f = if a > e then a /. e else e /. a in
        Printf.sprintf "%.1f" f

let step_table rows =
  Text_table.render
    ~aligns:[| Text_table.Left; Right; Right; Right; Right |]
    ~header:[ "step"; "est. rows"; "actual"; "x err"; "ms" ]
    (List.map
       (fun r ->
         [
           r.pr_label;
           (match r.pr_est with Some e -> Printf.sprintf "%.1f" e | None -> "-");
           string_of_int r.pr_rows;
           err_factor ~est:r.pr_est ~actual:r.pr_rows;
           Printf.sprintf "%.2f" r.pr_ms;
         ])
       rows)

let op_table rows =
  if List.exists (fun r -> r.pr_est <> None) rows then
    (* A table plan supplied estimates: render them next to actuals,
       like the path-step table. *)
    Text_table.render
      ~aligns:[| Text_table.Left; Right; Right; Right; Right |]
      ~header:[ "operator"; "est. rows"; "actual"; "x err"; "ms" ]
      (List.map
         (fun r ->
           [
             r.pr_label;
             (match r.pr_est with
             | Some e -> Printf.sprintf "%.1f" e
             | None -> "-");
             string_of_int r.pr_rows;
             err_factor ~est:r.pr_est ~actual:r.pr_rows;
             Printf.sprintf "%.2f" r.pr_ms;
           ])
         rows)
  else
    Text_table.render
      ~aligns:[| Text_table.Left; Right; Right |]
      ~header:[ "operator"; "rows"; "ms" ]
      (List.map
         (fun r ->
           [ r.pr_label; string_of_int r.pr_rows; Printf.sprintf "%.2f" r.pr_ms ])
         rows)

let add_block buf s =
  Buffer.add_string buf s;
  if s <> "" && s.[String.length s - 1] <> '\n' then Buffer.add_char buf '\n'

let render report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("profile: " ^ Pretty.stmt_to_string report.r_stmt);
  Buffer.add_char buf '\n';
  List.iteri
    (fun i (plan, rows) ->
      if List.length report.r_paths > 1 then
        Buffer.add_string buf (Printf.sprintf "path %d:\n" (i + 1));
      (match plan with
      | Some p ->
          Buffer.add_string buf
            (Printf.sprintf "direction: %s   seed: %s\n"
               (match p.Explain.pl_direction with
               | `Forward -> "forward"
               | `Backward -> "backward (reversed via reverse index)")
               (Explain.seed_string p.Explain.pl_seed))
      | None -> ());
      if rows <> [] then add_block buf (step_table rows))
    report.r_paths;
  if report.r_ops <> [] then add_block buf (op_table report.r_ops);
  Buffer.add_string buf
    (Printf.sprintf "outcome: %s\nresources: %s\ntotal: %.2f ms\n"
       (outcome_string report.r_outcome)
       (Ledger.summary report.r_ledger)
       report.r_ms);
  Buffer.contents buf
