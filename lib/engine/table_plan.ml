(* Cost-based planning for table selects: conjunct classification
   (pushdown vs join atom vs residual), statistics-driven selectivity
   estimates, and a greedy left-deep join order by estimated output
   cardinality. The executor ({!Table_exec}) follows the plan; EXPLAIN
   and EXPLAIN ANALYZE render it with estimated vs actual rows.

   Estimates never change query semantics — only operator order (filters
   push below joins, joins reorder), which is result-set-preserving for
   inner equi-joins under a conjunctive predicate. *)

module Ast = Graql_lang.Ast
module Loc = Graql_lang.Loc
module Table = Graql_storage.Table
module Schema = Graql_storage.Schema
module Column = Graql_storage.Column
module Value = Graql_storage.Value
module Dtype = Graql_storage.Dtype

exception Plan_error of Loc.t * string

let norm = String.lowercase_ascii

(* Fallback selectivity when statistics cannot size a condition; matches
   the path planner's guess ({!Explain.cond_selectivity}). *)
let default_selectivity = 0.1

type rel = {
  r_names : string list;  (** lowercased table name, then alias *)
  r_table : Table.t;
}

(* Display name (the table name) and unique identity (names + alias —
   two aliases of one table are distinct relations). *)
let rel_key r = List.hd r.r_names
let rel_id r = String.concat "/" r.r_names

(* ------------------------------------------------------------------ *)
(* Selectivity estimation                                              *)

let col_stats table attr =
  match Schema.find (Table.schema table) attr with
  | None -> None
  | Some i -> Column.stats (Table.column table i)

(* Literal / resolved-parameter value of an expression, if it is one. *)
let const_of ~params e =
  match e with
  | Ast.E_lit (l, _) -> Some (Compile_expr.value_of_lit l)
  | Ast.E_param (p, _) -> params p
  | _ -> None

let clamp01 s = Float.min 1.0 (Float.max 0.0 s)

(* Fraction of the [min, max] payload span admitted by a comparison with
   [c]. Only Int/Date columns expose min/max (dates are day numbers). *)
let range_fraction ~lo ~hi op c =
  let span = float_of_int (hi - lo + 1) in
  let frac =
    match op with
    | Ast.Lt -> float_of_int (c - lo) /. span
    | Ast.Le -> float_of_int (c - lo + 1) /. span
    | Ast.Gt -> float_of_int (hi - c) /. span
    | Ast.Ge -> float_of_int (hi - c + 1) /. span
    | _ -> default_selectivity
  in
  clamp01 frac

let int_of_value = function
  | Value.Int i -> Some i
  | Value.Date d -> Some d
  | _ -> None

let eq_selectivity table a op =
  match col_stats table a with
  | Some st when st.Column.st_distinct >= 1.0 ->
      let eq = 1.0 /. st.Column.st_distinct in
      if op = Ast.Eq then eq else clamp01 (1.0 -. eq)
  | _ -> default_selectivity

(* Estimated fraction of [table]'s rows satisfying [conj]. Statistics
   give exact shapes for the common atoms; everything else falls back to
   {!default_selectivity}. And/Or/Not combine assuming independence. *)
let rec selectivity ~params table conj =
  match conj with
  | Ast.E_binop (Ast.And, a, b, _) ->
      selectivity ~params table a *. selectivity ~params table b
  | Ast.E_binop (Ast.Or, a, b, _) ->
      let sa = selectivity ~params table a
      and sb = selectivity ~params table b in
      clamp01 ((sa +. sb) -. (sa *. sb))
  | Ast.E_unop (Ast.Not, a, _) -> clamp01 (1.0 -. selectivity ~params table a)
  | Ast.E_is_null (Ast.E_attr (_, a, _), positive, _) -> (
      match col_stats table a with
      | Some st when st.Column.st_rows > 0 ->
          let f =
            float_of_int st.Column.st_nulls /. float_of_int st.Column.st_rows
          in
          if positive then f else clamp01 (1.0 -. f)
      | _ -> default_selectivity)
  | Ast.E_binop (((Ast.Eq | Ast.Ne) as op), Ast.E_attr (_, a, _), rhs, _)
    when const_of ~params rhs <> None ->
      eq_selectivity table a op
  | Ast.E_binop (((Ast.Eq | Ast.Ne) as op), lhs, Ast.E_attr (_, a, _), _)
    when const_of ~params lhs <> None ->
      eq_selectivity table a op
  | Ast.E_binop
      (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), Ast.E_attr (_, a, _), rhs, _)
    when const_of ~params rhs <> None -> (
      match (col_stats table a, Option.bind (const_of ~params rhs) int_of_value)
      with
      | Some { Column.st_min = Some lo; st_max = Some hi; _ }, Some c
        when hi >= lo ->
          range_fraction ~lo ~hi op c
      | _ -> default_selectivity)
  | Ast.E_binop
      (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), lhs, Ast.E_attr (_, a, _), _)
    when const_of ~params lhs <> None -> (
      (* [c < x] is [x > c], etc. *)
      let flip =
        match op with
        | Ast.Lt -> Ast.Gt
        | Ast.Le -> Ast.Ge
        | Ast.Gt -> Ast.Lt
        | Ast.Ge -> Ast.Le
        | _ -> op
      in
      match (col_stats table a, Option.bind (const_of ~params lhs) int_of_value)
      with
      | Some { Column.st_min = Some lo; st_max = Some hi; _ }, Some c
        when hi >= lo ->
          range_fraction ~lo ~hi flip c
      | _ -> default_selectivity)
  | _ -> default_selectivity

(* Distinct-value estimate of [attr] in [rel]'s base table, for join
   cardinality; at least 1, at most the base row count. *)
let distinct_of table attr =
  match col_stats table attr with
  | Some st when st.Column.st_distinct >= 1.0 -> st.Column.st_distinct
  | _ -> Float.max 1.0 (float_of_int (Table.nrows table) *. default_selectivity)

(* ------------------------------------------------------------------ *)
(* Conjunct classification                                             *)

type atom = {
  a_rel : string;  (** rel key of the left operand *)
  a_attr : string;
  a_loc : Loc.t;
  b_rel : string;
  b_attr : string;
  b_loc : Loc.t;
}

type classified = {
  c_atoms : atom list;  (** cross-relation equality join conditions *)
  c_pushed : (string * Ast.expr) list;  (** rel key -> single-rel conjunct *)
  c_residual : Ast.expr list;
}

let rel_of_qual rels q =
  List.find_opt (fun r -> List.mem (norm q) r.r_names) rels

let rel_of_attr rels a =
  match
    List.filter (fun r -> Schema.find (Table.schema r.r_table) a <> None) rels
  with
  | [ r ] -> Some r
  | _ -> None

(* The single relation every attribute of [e] resolves to, if there is
   exactly one. [None] sends the conjunct to the residual filter, where
   compilation reproduces today's unknown/ambiguous-column errors. *)
let rec rel_of_expr rels e =
  let merge a b =
    match (a, b) with
    | `None, x | x, `None -> x
    | `One ka, `One kb when ka = kb -> `One ka
    | _ -> `Many
  in
  match e with
  | Ast.E_lit _ | Ast.E_param _ -> `None
  | Ast.E_attr (Some q, a, _) -> (
      match rel_of_qual rels q with
      | Some r -> `One (rel_id r)
      | None -> (
          (* Flattened path tables answer to dotted "Q.attr" columns. *)
          match rel_of_attr rels (q ^ "." ^ a) with
          | Some r -> `One (rel_id r)
          | None -> `Many))
  | Ast.E_attr (None, a, _) -> (
      match rel_of_attr rels a with Some r -> `One (rel_id r) | None -> `Many)
  | Ast.E_binop (_, a, b, _) -> merge (rel_of_expr rels a) (rel_of_expr rels b)
  | Ast.E_unop (_, a, _) | Ast.E_is_null (a, _, _) -> rel_of_expr rels a
  | Ast.E_call (_, args, _) ->
      List.fold_left
        (fun acc arg ->
          match arg with
          | Ast.A_star -> acc
          | Ast.A_expr e -> merge acc (rel_of_expr rels e))
        `None args

let classify rels conjs =
  let atoms = ref [] and pushed = ref [] and residual = ref [] in
  List.iter
    (fun conj ->
      match conj with
      | Ast.E_binop
          (Ast.Eq, Ast.E_attr (qa, aa, la), Ast.E_attr (qb, ab, lb), _) -> (
          let resolve q a =
            match q with
            | Some q -> rel_of_qual rels q
            | None -> rel_of_attr rels a
          in
          match (resolve qa aa, resolve qb ab) with
          | Some ra, Some rb when rel_id ra <> rel_id rb ->
              atoms :=
                {
                  a_rel = rel_id ra;
                  a_attr = aa;
                  a_loc = la;
                  b_rel = rel_id rb;
                  b_attr = ab;
                  b_loc = lb;
                }
                :: !atoms
          | Some r, Some _ ->
              (* Same relation on both sides: a pushable filter. *)
              pushed := (rel_id r, conj) :: !pushed
          | _ -> residual := conj :: !residual)
      | _ -> (
          match rel_of_expr rels conj with
          | `One k -> pushed := (k, conj) :: !pushed
          | `None | `Many -> residual := conj :: !residual))
    conjs;
  {
    c_atoms = List.rev !atoms;
    c_pushed = List.rev !pushed;
    c_residual = List.rev !residual;
  }

(* ------------------------------------------------------------------ *)
(* Join ordering                                                       *)

type scan_step = {
  sc_rel : rel;
  sc_pushed : Ast.expr list;  (** conjuncts filtered at the scan *)
  sc_rows : int;  (** actual base-table rows *)
  sc_est : float;  (** estimated rows after pushdown *)
}

type join_step = {
  js_rel : rel;  (** relation joined at this step *)
  js_est : float;  (** estimated rows after this join *)
  js_build_right : bool;
      (** statistics pick the incoming relation as hash build side *)
}

type t = {
  tp_scans : scan_step list;  (** all relations, in chosen join order *)
  tp_joins : join_step list;  (** length [scans - 1] *)
  tp_atoms : atom list;  (** every cross-relation equality conjunct *)
  tp_residual : Ast.expr list;
  tp_residual_est : float option;  (** estimate after the residual filter *)
}

let scan_of ~params classified r =
  let pushed =
    List.filter_map
      (fun (k, c) -> if k = rel_id r then Some c else None)
      classified.c_pushed
  in
  let rows = Table.nrows r.r_table in
  let sel =
    List.fold_left
      (fun acc c -> acc *. selectivity ~params r.r_table c)
      1.0 pushed
  in
  { sc_rel = r; sc_pushed = pushed; sc_rows = rows; sc_est = float_of_int rows *. sel }

(* Estimated |L ⋈ R|: one factor 1/max(d_L, d_R) per join atom between
   the joined set and the incoming relation, distincts capped at the
   current cardinality estimates. *)
let join_estimate ~joined_est ~joined_keys ~(incoming : scan_step) atoms =
  let cap d est = Float.max 1.0 (Float.min d (Float.max est 1.0)) in
  let applicable =
    List.filter_map
      (fun a ->
        if a.a_rel = rel_id incoming.sc_rel && List.mem_assoc a.b_rel joined_keys
        then Some (a.a_attr, List.assoc a.b_rel joined_keys, a.b_attr)
        else if
          a.b_rel = rel_id incoming.sc_rel && List.mem_assoc a.a_rel joined_keys
        then Some (a.b_attr, List.assoc a.a_rel joined_keys, a.a_attr)
        else None)
      atoms
  in
  if applicable = [] then None
  else
    Some
      (List.fold_left
         (fun acc (in_attr, joined_rel, j_attr) ->
           let d_in =
             cap (distinct_of incoming.sc_rel.r_table in_attr) incoming.sc_est
           in
           let d_j = cap (distinct_of joined_rel.r_table j_attr) joined_est in
           acc /. Float.max d_in d_j)
         (joined_est *. incoming.sc_est)
         applicable)

let plan ~params ~loc rels conjs =
  let classified = classify rels conjs in
  let scans = List.map (scan_of ~params classified) rels in
  match scans with
  | [] -> raise (Plan_error (loc, "empty from clause"))
  | [ only ] ->
      let residual = classified.c_residual in
      let residual_est =
        if residual = [] then None
        else
          Some
            (only.sc_est
            *. (default_selectivity ** float_of_int (List.length residual)))
      in
      {
        tp_scans = [ only ];
        tp_joins = [];
        tp_atoms = classified.c_atoms;
        tp_residual = residual;
        tp_residual_est = residual_est;
      }
  | _ ->
      (* Start from the smallest estimated scan; ties keep textual order
         (fold keeps the earliest on strict <). *)
      let first =
        List.fold_left
          (fun best s -> if s.sc_est < best.sc_est then s else best)
          (List.hd scans) (List.tl scans)
      in
      let order = ref [ first ] in
      let joins = ref [] in
      let joined_keys = ref [ (rel_id first.sc_rel, first.sc_rel) ] in
      let joined_est = ref first.sc_est in
      let remaining =
        ref (List.filter (fun s -> rel_id s.sc_rel <> rel_id first.sc_rel) scans)
      in
      while !remaining <> [] do
        let candidates =
          List.filter_map
            (fun s ->
              match
                join_estimate ~joined_est:!joined_est ~joined_keys:!joined_keys
                  ~incoming:s classified.c_atoms
              with
              | Some est -> Some (s, est)
              | None -> None)
            !remaining
        in
        match candidates with
        | [] ->
            raise
              (Plan_error
                 (loc, "from-clause tables are not connected by join conditions"))
        | c :: cs ->
            let s, est =
              List.fold_left
                (fun ((_, be) as best) ((_, e) as cand) ->
                  if e < be then cand else best)
                c cs
            in
            joins :=
              { js_rel = s.sc_rel; js_est = est; js_build_right = s.sc_est <= !joined_est }
              :: !joins;
            order := s :: !order;
            joined_keys := (rel_id s.sc_rel, s.sc_rel) :: !joined_keys;
            joined_est := est;
            remaining :=
              List.filter (fun x -> rel_id x.sc_rel <> rel_id s.sc_rel) !remaining
      done;
      let residual = classified.c_residual in
      let residual_est =
        if residual = [] then None
        else
          (* Residual conjuncts span relations; independence again. *)
          Some (!joined_est *. (default_selectivity ** float_of_int (List.length residual)))
      in
      {
        tp_scans = List.rev !order;
        tp_joins = List.rev !joins;
        tp_atoms = classified.c_atoms;
        tp_residual = residual;
        tp_residual_est = residual_est;
      }

(* The join atoms between one incoming relation and the already-joined
   set, as (joined rel key, joined attr, joined loc, incoming attr,
   incoming loc); consumed by the executor to form [on] pairs. *)
let atoms_for t ~incoming ~joined =
  List.filter_map
    (fun a ->
      if a.a_rel = incoming && List.mem a.b_rel joined then
        Some (a.b_rel, a.b_attr, a.b_loc, a.a_attr, a.a_loc)
      else if a.b_rel = incoming && List.mem a.a_rel joined then
        Some (a.a_rel, a.a_attr, a.a_loc, a.b_attr, a.b_loc)
      else None)
    t.tp_atoms

(* Plan straight from a select-table AST, resolving tables through the
   catalog — the EXPLAIN / EXPLAIN ANALYZE entry point (the executor
   builds its rels itself so scans go through its observation hook). *)
let of_select ~db ~params (st : Ast.select_table) =
  let loc = st.Ast.st_loc in
  let lookup name =
    match Db.find_table db name with
    | Some t -> t
    | None -> raise (Plan_error (loc, Printf.sprintf "no such table %S" name))
  in
  let rel_of (name, alias) =
    {
      r_names =
        (norm name :: (match alias with Some a -> [ norm a ] | None -> []));
      r_table = lookup name;
    }
  in
  let rels, where =
    match st.Ast.st_from with
    | Ast.From_table (name, alias) -> ([ rel_of (name, alias) ], st.Ast.st_where)
    | Ast.From_join (sources, where) -> (List.map rel_of sources, where)
  in
  let conjs = match where with Some w -> Compile_expr.conjuncts w | None -> [] in
  plan ~params ~loc rels conjs

(* ------------------------------------------------------------------ *)
(* Rendering (EXPLAIN)                                                 *)

let step_strings t =
  let scan_line s =
    let filt =
      if s.sc_pushed = [] then ""
      else Printf.sprintf " + filter (est. %.1f)" s.sc_est
    in
    Printf.sprintf "scan %s (%d rows)%s" (rel_key s.sc_rel) s.sc_rows filt
  in
  let joins =
    List.map
      (fun j ->
        Printf.sprintf "join %s (est. %.1f rows, build %s)" (rel_key j.js_rel)
          j.js_est
          (if j.js_build_right then rel_key j.js_rel else "left"))
      t.tp_joins
  in
  let residual =
    match t.tp_residual_est with
    | Some e ->
        [
          Printf.sprintf "filter %d residual conjunct(s) (est. %.1f rows)"
            (List.length t.tp_residual) e;
        ]
    | None ->
        if t.tp_residual = [] then []
        else
          [
            Printf.sprintf "filter %d residual conjunct(s)"
              (List.length t.tp_residual);
          ]
  in
  List.map scan_line t.tp_scans @ joins @ residual

let to_string t =
  String.concat "\n" ("table plan:" :: List.map (fun s -> "  " ^ s) (step_strings t))

(* Estimated rows for the operator sequence the executor emits, keyed by
   the same labels [Table_exec] passes to its profiler hook. EXPLAIN
   ANALYZE matches these against actual operator samples. *)
let op_estimates t =
  match t.tp_scans with
  | [ s ] ->
      (* Single-table select: the executor evaluates the whole where
         clause as one un-detailed "filter" operator. *)
      let scan = ("scan:" ^ rel_key s.sc_rel, float_of_int s.sc_rows) in
      let filter_est =
        match t.tp_residual_est with
        | Some e -> Some e
        | None -> if s.sc_pushed = [] then None else Some s.sc_est
      in
      scan :: (match filter_est with Some e -> [ ("filter", e) ] | None -> [])
  | scans ->
      let scan_ests =
        List.map
          (fun s -> ("scan:" ^ rel_key s.sc_rel, float_of_int s.sc_rows))
          scans
      in
      let filters =
        List.filter_map
          (fun s ->
            if s.sc_pushed = [] then None
            else Some ("filter:" ^ rel_key s.sc_rel, s.sc_est))
          scans
      in
      let joins =
        List.map (fun j -> ("join:" ^ rel_key j.js_rel, j.js_est)) t.tp_joins
      in
      let residual =
        match t.tp_residual_est with Some e -> [ ("filter", e) ] | None -> []
      in
      scan_ests @ filters @ joins @ residual
