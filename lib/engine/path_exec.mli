(** The path-query executor: forward frontier expansion over a binding
    relation (Sec. II-B semantics).

    A query's intermediate state is a relation whose columns ("slots") are
    the vertex/edge instances matched at tracked steps; each row is one
    partial match. Stepping expands every row along the requested edge
    type(s) through the CSR indices, applying compiled step conditions.

    - [def X:] (set label, Eq. 6): a later reference filters candidates by
      membership in the set of X-values across live rows — forward-culled,
      exactly the σ(Vi)-culled set of Eq. 7.
    - [foreach x:] (element-wise, Eq. 8): a later reference requires the
      candidate to equal the row's own x binding.
    - Rows that cannot extend die; surviving rows at the end are full
      matches, which realizes the backward culling of Eq. 5 for every
      reported step set.
    - [and] composition joins operand relations on shared label columns;
      [or] composition unions compatible relations (and merges per-type
      sets for subgraph output).
    - Path regexes (Fig. 10) expand per-row via memoized BFS over the
      group body; [*] includes the trivial traversal, [+] at least one,
      [{n}] exactly n rounds.

    The executor picks the evaluation direction using both edge indices
    (Sec. III-B): when a path carries no labels or seeds, it is run
    backwards if the tail's estimated seed cardinality is smaller. *)

module Ast = Graql_lang.Ast
module Value = Graql_storage.Value

type mode =
  | Keep_all  (** table output / [select *]: every step stays a column *)
  | Keep_minimal of string list
      (** subgraph output: keep labels + the named steps (normalized),
          project the rest away and dedupe rows (set semantics) *)

type slot = {
  s_kind : [ `V | `E ];
  s_label : string option;
  s_type_name : string option;  (** declared type, if the step was named *)
  s_step : int;
}

type component = { slots : slot array; rows : int array array }

type result = {
  comps : component list;  (** >1 only for [or] of incompatible layouts *)
  universe : Pack.universe;
  regex_edges : int list;  (** packed edge cells traversed inside regexes *)
}

exception Exec_error of Graql_lang.Loc.t * string

val default_max_cells : int

val use_automaton : bool ref
(** When true (the default), regex segments run on the {!Rpq}
    product-automaton engine; when false, on the original memoized-closure
    evaluator (kept as the reference implementation). Results are
    byte-identical either way. *)

val rpq_determinize : bool ref
(** Experimental: determinize regex automata by subset construction when
    the query cannot observe traversed edges. Default false. *)

val run_multipath :
  db:Db.t ->
  params:(string -> Value.t option) ->
  mode:mode ->
  ?auto_reverse:bool ->
  ?edges_needed:bool ->
  ?max_cells:int ->
  Ast.multipath ->
  result
(** Raises {!Exec_error} on unresolvable names (the static checker should
    reject these earlier) and when the binding relation exceeds
    [max_cells] (default {!default_max_cells}) — the paper's "large
    intermediate results" are surfaced as a diagnosable failure instead of
    memory exhaustion. [auto_reverse] defaults to [true]. [edges_needed]
    (default [true], the conservative choice) tells the planner whether
    the statement's output can observe regex-traversed edges; only
    [select ... into subgraph] with a [*] target can, and passing [false]
    both skips edge-noting work and lets the planner reverse regex
    paths. *)

(* ------------------------------------------------------------------ *)
(* Planned paths (shared with EXPLAIN)                                 *)

type xregex = {
  xr_body : (Ast.estep * Ast.vstep) list;
  xr_op : Ast.rx_op;
  xr_loc : Graql_lang.Loc.t;
  xr_reversed : bool;
  xr_exit : Ast.vstep option;
      (** reversed only: the forward pre-regex vertex, applied as an
          endpoint filter *)
}

type xstep = X_step of Ast.estep * Ast.vstep | X_regex of xregex

type path_plan = {
  px_head : Ast.vstep;
  px_steps : xstep list;
  px_reversed : bool;
}

val plan_path :
  db:Db.t ->
  params:(string -> Value.t option) ->
  ?auto_reverse:bool ->
  ?edges_needed:bool ->
  Ast.path ->
  path_plan
(** Direction choice plus the reversal rewrite, as one reusable planning
    step — the executor runs exactly this plan and EXPLAIN renders it, so
    the two can never disagree about orientation. *)

val chosen_direction :
  ?edges_needed:bool ->
  Ast.path ->
  db:Db.t ->
  params:(string -> Value.t option) ->
  [ `Forward | `Backward ]
(** Planner decision exposure, for tests and the planner-ablation bench. *)
